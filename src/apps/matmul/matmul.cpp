#include "apps/matmul/matmul.hpp"

#include <vector>

namespace hlsmpc::apps::matmul {

namespace {

/// Block-level access trace of C <- A*B + C, ikj-blocked. For each block
/// triple (ib,kb,jb) the stream touches each line of A(ib,kb), B(kb,jb)
/// and C(ib,jb) once, with the block's compute charged across the
/// touches. Matrices are row-major n*n doubles.
class DgemmStream final : public cachesim::CoreStream {
 public:
  DgemmStream(const Config& cfg, std::uint64_t a, std::uint64_t b,
              std::uint64_t c, bool b_writer)
      : cfg_(cfg), a_(a), b_(b), c_(c), b_writer_(b_writer) {
    nb_ = (cfg_.n + cfg_.block - 1) / cfg_.block;
    // flops per block triple spread over its line touches.
    const double flops = 2.0 * cfg_.block * cfg_.block * cfg_.block;
    const double touches = 3.0 * cfg_.block * cfg_.block * 8.0 / 64.0;
    compute_per_touch_ = static_cast<std::uint32_t>(
        flops / touches * cfg_.cycles_per_flop);
  }

  bool next(cachesim::Access& out) override {
    while (true) {
      if (step_ >= cfg_.timesteps) return false;
      if (phase_ == Phase::enter_single) {
        phase_ = Phase::update_b;
        out = cachesim::barrier_access();  // single entry / MPI_Barrier
        return true;
      }
      if (phase_ == Phase::update_b) {
        const bool writes_now = b_writer_ && (cfg_.update_b || step_ == 0);
        const std::uint64_t bytes =
            static_cast<std::uint64_t>(cfg_.n) * cfg_.n * sizeof(double);
        if (writes_now && bpos_ < bytes) {
          out = {b_ + bpos_, true, 1, false};
          bpos_ += 64;
          return true;
        }
        bpos_ = 0;
        phase_ = Phase::multiply;
        out = cachesim::barrier_access();  // single exit
        return true;
      }
      // multiply phase: iterate block triples, inside them line touches.
      if (ib_ >= nb_) {
        ib_ = 0;
        ++step_;
        phase_ = Phase::enter_single;
        continue;
      }
      // Current block triple (ib_,kb_,jb_); emit its touches.
      if (emit_block_touch(out)) return true;
      // Advance the triple: jb fastest, then kb, then ib.
      if (++jb_ >= nb_) {
        jb_ = 0;
        if (++kb_ >= nb_) {
          kb_ = 0;
          ++ib_;
        }
      }
      touch_ = 0;
    }
  }

 private:
  enum class Phase { enter_single, update_b, multiply };

  /// Emit touch number touch_ of the current block triple; false when the
  /// triple is exhausted.
  bool emit_block_touch(cachesim::Access& out) {
    // Touch order: A block lines, then B block lines, then C block lines.
    const int lines_per_row = (cfg_.block * 8 + 63) / 64;
    const int rows = std::min(cfg_.block, cfg_.n - ib_ * cfg_.block);
    const int lines_per_block = rows * lines_per_row;
    if (touch_ >= 3 * lines_per_block) return false;
    const int which = touch_ / lines_per_block;  // 0=A, 1=B, 2=C
    const int within = touch_ % lines_per_block;
    const int row = within / lines_per_row;
    const int line = within % lines_per_row;
    std::uint64_t base;
    int brow, bcol;
    bool write = false;
    if (which == 0) {
      base = a_;
      brow = ib_ * cfg_.block + row;
      bcol = kb_ * cfg_.block;
    } else if (which == 1) {
      base = b_;
      brow = kb_ * cfg_.block + row;
      bcol = jb_ * cfg_.block;
    } else {
      base = c_;
      brow = ib_ * cfg_.block + row;
      bcol = jb_ * cfg_.block;
      write = true;  // C accumulates
    }
    const std::uint64_t addr =
        base + (static_cast<std::uint64_t>(brow) * cfg_.n + bcol) *
                   sizeof(double) +
        static_cast<std::uint64_t>(line) * 64;
    out = {addr, write, compute_per_touch_};
    ++touch_;
    return true;
  }

  Config cfg_;
  std::uint64_t a_, b_, c_;
  bool b_writer_;
  int nb_ = 0;
  std::uint32_t compute_per_touch_ = 0;
  Phase phase_ = Phase::enter_single;
  int step_ = 0;
  std::uint64_t bpos_ = 0;
  int ib_ = 0, kb_ = 0, jb_ = 0;
  int touch_ = 0;
};

topo::ScopeSpec scope_for(Mode m) {
  return m == Mode::hls_node ? topo::node_scope() : topo::numa_scope();
}

}  // namespace

const char* to_string(Mode m) {
  switch (m) {
    case Mode::sequential:
      return "sequential";
    case Mode::mpi_private:
      return "MPI";
    case Mode::hls_node:
      return "HLS node";
    case Mode::hls_numa:
      return "HLS numa";
  }
  return "?";
}

SimResult simulate(const topo::Machine& machine, const Config& cfg,
                   Mode mode, int ntasks) {
  if (mode == Mode::sequential) ntasks = 1;
  cachesim::Hierarchy hier(machine);
  const topo::ScopeMap sm(machine);
  const std::size_t mat_bytes =
      static_cast<std::size_t>(cfg.n) * cfg.n * sizeof(double);

  std::vector<std::uint64_t> b_of_task(static_cast<std::size_t>(ntasks));
  std::vector<bool> writer(static_cast<std::size_t>(ntasks), false);
  if (mode == Mode::sequential || mode == Mode::mpi_private) {
    for (int t = 0; t < ntasks; ++t) {
      b_of_task[static_cast<std::size_t>(t)] = hier.alloc_region(mat_bytes);
      writer[static_cast<std::size_t>(t)] = true;
    }
  } else {
    const topo::ScopeSpec scope = scope_for(mode);
    std::vector<std::uint64_t> region(
        static_cast<std::size_t>(sm.num_instances(scope)), 0);
    for (int t = 0; t < ntasks; ++t) {
      const int inst = sm.instance_of(scope, t);
      if (region[static_cast<std::size_t>(inst)] == 0) {
        region[static_cast<std::size_t>(inst)] = hier.alloc_region(mat_bytes);
        writer[static_cast<std::size_t>(t)] = true;
      }
      b_of_task[static_cast<std::size_t>(t)] =
          region[static_cast<std::size_t>(inst)];
    }
  }

  std::vector<int> cpus;
  std::vector<std::unique_ptr<cachesim::CoreStream>> streams;
  for (int t = 0; t < ntasks; ++t) {
    const std::uint64_t a = hier.alloc_region(mat_bytes);
    const std::uint64_t c = hier.alloc_region(mat_bytes);
    cpus.push_back(t);
    streams.push_back(std::make_unique<DgemmStream>(
        cfg, a, b_of_task[static_cast<std::size_t>(t)], c,
        writer[static_cast<std::size_t>(t)]));
  }
  cachesim::Runner runner(hier, std::move(cpus), std::move(streams));
  const cachesim::RunResult rr = runner.run();

  SimResult result;
  result.makespan = rr.makespan;
  result.total_flops = 2.0 * cfg.n * cfg.n * cfg.n * cfg.timesteps * ntasks;
  result.perf = result.makespan == 0
                    ? 0.0
                    : result.total_flops /
                          static_cast<double>(result.makespan) /
                          static_cast<double>(ntasks);
  result.stats = hier.stats();
  return result;
}

double run_on_node(mpc::Node& node, const Config& cfg, Mode mode) {
  const int n = cfg.n;
  const std::size_t nn = static_cast<std::size_t>(n) * n;
  const auto b_value = [n](int i, int j, int step) {
    return 0.25 * ((i * 31 + j * 17 + step * 7) % 16 - 8);
  };
  double checksum = 0.0;
  std::mutex mu;

  hls::ArrayVar<double> hls_b;
  const bool use_hls = mode == Mode::hls_node || mode == Mode::hls_numa;
  if (use_hls) {
    hls::ModuleBuilder mb(node.hls_rt().registry(), "matmul");
    hls_b = hls::add_array<double>(mb, "B", nn, scope_for(mode));
    mb.commit();
  }

  node.run([&](mpi::Comm& world, hls::TaskView& view) {
    auto& ctx = view.context();
    const int me = world.rank(ctx);

    memtrack::Buffer a_buf(node.tracker(), memtrack::Category::app,
                           nn * sizeof(double));
    memtrack::Buffer c_buf(node.tracker(), memtrack::Category::app,
                           nn * sizeof(double));
    double* A = a_buf.as<double>();
    double* C = c_buf.as<double>();
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        A[static_cast<std::size_t>(i) * n + j] =
            0.125 * ((i * 13 + j * 5) % 8);
        C[static_cast<std::size_t>(i) * n + j] = 0.0;
      }
    }

    memtrack::Buffer b_private;
    double* B = nullptr;
    const auto fill_b = [&](int step) {
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
          B[static_cast<std::size_t>(i) * n + j] = b_value(i, j, step);
        }
      }
    };
    if (use_hls) {
      B = view.get(hls_b);
      // Listing 4: allocation/initialization under a single.
      view.single({hls_b.handle()}, [&] { fill_b(0); });
    } else {
      b_private = memtrack::Buffer(node.tracker(), memtrack::Category::app,
                                   nn * sizeof(double));
      B = b_private.as<double>();
      fill_b(0);
    }

    const int bs = cfg.block;
    for (int step = 0; step < cfg.timesteps; ++step) {
      if (cfg.update_b && step > 0) {
        if (use_hls) {
          view.single({hls_b.handle()}, [&] { fill_b(step); });
        } else {
          fill_b(step);
        }
      }
      // Blocked C += A*B.
      for (int ib = 0; ib < n; ib += bs) {
        for (int kb = 0; kb < n; kb += bs) {
          for (int jb = 0; jb < n; jb += bs) {
            const int imax = std::min(ib + bs, n);
            const int kmax = std::min(kb + bs, n);
            const int jmax = std::min(jb + bs, n);
            for (int i = ib; i < imax; ++i) {
              for (int k = kb; k < kmax; ++k) {
                const double a = A[static_cast<std::size_t>(i) * n + k];
                for (int j = jb; j < jmax; ++j) {
                  C[static_cast<std::size_t>(i) * n + j] +=
                      a * B[static_cast<std::size_t>(k) * n + j];
                }
              }
            }
          }
        }
      }
      world.barrier(ctx);
      if (use_hls) view.barrier({hls_b.handle()});
    }

    double local = 0.0;
    for (std::size_t i = 0; i < nn; ++i) local += C[i];
    const double global = world.allreduce_value(ctx, local, mpi::Op::sum);
    if (me == 0) {
      std::lock_guard<std::mutex> lk(mu);
      checksum = global;
    }
  });
  return checksum;
}

}  // namespace hlsmpc::apps::matmul
