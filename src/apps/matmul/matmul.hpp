// Matrix-multiplication benchmark (paper §II.D.2, Figure 3).
//
// Every MPI task repeatedly computes C <- A*B + C where B is common to
// all tasks (listing 4). With HLS the single shared copy of B both frees
// LLC capacity and lets tasks reuse each other's fetches of B. The
// `update` variant rewrites B between timesteps inside a single.
//
// simulate() models a blocked dgemm's memory behaviour at cache-line
// granularity (block-panel traversal, compute cycles charged per line
// touch) and reports performance in flops/cycle — the y-axis shape of
// Figure 3. run_on_node() executes a real blocked dgemm on the runtime
// for correctness and memory accounting.
#pragma once

#include <cstdint>

#include "cachesim/runner.hpp"
#include "mpc/node.hpp"

namespace hlsmpc::apps::matmul {

enum class Mode { sequential, mpi_private, hls_node, hls_numa };
const char* to_string(Mode m);

struct Config {
  int n = 96;          ///< square matrix dimension
  int block = 8;       ///< blocking factor (doubles per block edge)
  int timesteps = 2;   ///< repeated multiplications (reuse across steps)
  bool update_b = false;
  double cycles_per_flop = 0.5;
};

struct SimResult {
  std::uint64_t makespan = 0;
  double total_flops = 0.0;
  /// flops per cycle per task: the normalized performance of Figure 3.
  double perf = 0.0;
  cachesim::HierarchyStats stats;
};

SimResult simulate(const topo::Machine& machine, const Config& cfg,
                   Mode mode, int ntasks);

/// Real blocked dgemm on the runtime. Returns the checksum of C summed
/// over ranks; identical across modes for identical inputs.
double run_on_node(mpc::Node& node, const Config& cfg, Mode mode);

}  // namespace hlsmpc::apps::matmul
