// Mesh-update benchmark (paper §II.D.1, Table I).
//
// Each MPI task owns a sub-domain of cells; every timestep each cell is
// updated with a value interpolated from a common table, accessed
// uniformly at random ("to mimic an irregular access pattern"). The table
// is the HLS candidate: without HLS every task holds a private copy (8
// copies thrash the socket's shared LLC), with HLS one copy per scope
// instance. The `update` variant rewrites the table between timesteps
// inside a `single`, which distinguishes the node scope (writer
// invalidates every other socket's cached copy) from the numa scope (one
// writer per socket, copies stay valid).
//
// Two facets:
//  - simulate(): drives the cache simulator and returns the parallel
//    efficiency t_seq / t_par reported in Table I;
//  - run_on_node(): the same algorithm executed for real on the MPI+HLS
//    runtime, returning a mode-independent checksum (used to show HLS
//    preserves the program's semantics) and exercising the memory
//    accounting.
#pragma once

#include <cstdint>

#include "cachesim/runner.hpp"
#include "mpc/node.hpp"

namespace hlsmpc::apps::meshupdate {

enum class Mode { no_hls, hls_node, hls_numa, hls_cache_llc, hls_core };
const char* to_string(Mode m);

struct Config {
  std::size_t cells_per_task = 8192;  ///< sub-domain cells (doubles)
  std::size_t table_cells = 65536;    ///< common table cells (doubles)
  int timesteps = 3;
  bool update_table = false;  ///< rewrite the table each step (in a single)
  Mode mode = Mode::no_hls;
  std::uint64_t seed = 42;
  int table_reads_per_cell = 1;
  /// Cycles of interpolation/update arithmetic per access. The paper's
  /// kernel interpolates into the table and updates the cell, so compute
  /// is comparable to a miss; 100 cycles puts the no-HLS efficiency in
  /// the paper's 30-40 % band instead of making the trace purely
  /// latency-bound.
  std::uint32_t compute_per_access = 100;
};

struct SimResult {
  std::uint64_t t_par = 0;  ///< makespan of the parallel run (cycles)
  std::uint64_t t_seq = 0;  ///< same per-task work on one core
  double efficiency = 0.0;  ///< t_seq / t_par (weak scaling)
  cachesim::HierarchyStats par_stats;
};

/// Run the benchmark through the cache simulator with `ntasks` tasks
/// pinned to cpus 0..ntasks-1 of `machine`.
SimResult simulate(const topo::Machine& machine, const Config& cfg,
                   int ntasks);

/// Execute the real algorithm on a node runtime; returns the global
/// checksum (allreduced mesh sum), identical across modes.
double run_on_node(mpc::Node& node, const Config& cfg);

}  // namespace hlsmpc::apps::meshupdate
