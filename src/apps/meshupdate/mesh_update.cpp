#include "apps/meshupdate/mesh_update.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace hlsmpc::apps::meshupdate {

namespace {

/// splitmix64: small deterministic PRNG for the random table indices.
struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

/// Trace generator for one task: per timestep, optionally rewrite the
/// table (the `single`), then sweep the sub-domain with random table
/// reads per cell.
class MeshStream final : public cachesim::CoreStream {
 public:
  MeshStream(const Config& cfg, std::uint64_t table_base,
             std::uint64_t mesh_base, bool table_writer, std::uint64_t seed)
      : cfg_(cfg),
        table_base_(table_base),
        mesh_base_(mesh_base),
        table_writer_(table_writer),
        rng_{seed} {}

  bool next(cachesim::Access& out) override {
    while (true) {
      if (step_ >= cfg_.timesteps) return false;
      if (phase_ == Phase::enter_single) {
        // The single's entry barrier (everyone waits for the writer).
        phase_ = Phase::write_table;
        out = cachesim::barrier_access();
        return true;
      }
      if (phase_ == Phase::write_table) {
        const bool writes_now =
            table_writer_ && (cfg_.update_table || step_ == 0);
        if (writes_now && write_pos_ < table_bytes()) {
          // Sequential rewrite of the whole table, one access per line.
          out = {table_base_ + write_pos_, true, 1, false};
          write_pos_ += 64;
          return true;
        }
        write_pos_ = 0;
        phase_ = Phase::leave_single;
        out = cachesim::barrier_access();  // the single's exit barrier
        return true;
      }
      if (phase_ == Phase::leave_single) {
        phase_ = Phase::sweep;
        continue;
      }
      // Sweep phase: table reads then the cell write.
      if (cell_ >= cfg_.cells_per_task) {
        cell_ = 0;
        read_ = 0;
        ++step_;
        phase_ = Phase::enter_single;
        continue;
      }
      if (read_ < cfg_.table_reads_per_cell) {
        const std::uint64_t idx = rng_.next() % cfg_.table_cells;
        ++read_;
        out = {table_base_ + idx * sizeof(double), false,
               cfg_.compute_per_access, false};
        return true;
      }
      out = {mesh_base_ + cell_ * sizeof(double), true,
             cfg_.compute_per_access, false};
      ++cell_;
      read_ = 0;
      return true;
    }
  }

 private:
  enum class Phase { enter_single, write_table, leave_single, sweep };
  std::uint64_t table_bytes() const {
    return cfg_.table_cells * sizeof(double);
  }

  Config cfg_;
  std::uint64_t table_base_;
  std::uint64_t mesh_base_;
  bool table_writer_;
  Rng rng_;
  Phase phase_ = Phase::enter_single;
  int step_ = 0;
  std::uint64_t write_pos_ = 0;
  std::size_t cell_ = 0;
  int read_ = 0;
};

topo::ScopeSpec scope_for(Mode m) {
  switch (m) {
    case Mode::hls_node:
      return topo::node_scope();
    case Mode::hls_numa:
      return topo::numa_scope();
    case Mode::hls_cache_llc:
      return topo::cache_scope(0);
    case Mode::hls_core:
      return topo::core_scope();
    case Mode::no_hls:
      break;
  }
  throw std::logic_error("meshupdate: no scope for this mode");
}

}  // namespace

const char* to_string(Mode m) {
  switch (m) {
    case Mode::no_hls:
      return "without HLS";
    case Mode::hls_node:
      return "HLS node";
    case Mode::hls_numa:
      return "HLS numa";
    case Mode::hls_cache_llc:
      return "HLS cache(llc)";
    case Mode::hls_core:
      return "HLS core";
  }
  return "?";
}

SimResult simulate(const topo::Machine& machine, const Config& cfg,
                   int ntasks) {
  SimResult result;

  // ---- parallel run ----
  {
    cachesim::Hierarchy hier(machine);
    const topo::ScopeMap sm(machine);
    const std::size_t table_bytes = cfg.table_cells * sizeof(double);

    // Table placement: one region per copy that exists in this mode.
    std::vector<std::uint64_t> table_of_task(
        static_cast<std::size_t>(ntasks));
    std::vector<bool> writer(static_cast<std::size_t>(ntasks), false);
    if (cfg.mode == Mode::no_hls) {
      for (int t = 0; t < ntasks; ++t) {
        table_of_task[static_cast<std::size_t>(t)] =
            hier.alloc_region(table_bytes);
        writer[static_cast<std::size_t>(t)] = true;  // everyone owns a copy
      }
    } else {
      const topo::ScopeSpec scope = scope_for(cfg.mode);
      std::vector<std::uint64_t> region_of_instance(
          static_cast<std::size_t>(sm.num_instances(scope)), 0);
      std::vector<bool> instance_seen(region_of_instance.size(), false);
      for (int t = 0; t < ntasks; ++t) {
        const int inst = sm.instance_of(scope, t);  // task t pinned to cpu t
        if (region_of_instance[static_cast<std::size_t>(inst)] == 0) {
          region_of_instance[static_cast<std::size_t>(inst)] =
              hier.alloc_region(table_bytes);
        }
        table_of_task[static_cast<std::size_t>(t)] =
            region_of_instance[static_cast<std::size_t>(inst)];
        if (!instance_seen[static_cast<std::size_t>(inst)]) {
          instance_seen[static_cast<std::size_t>(inst)] = true;
          writer[static_cast<std::size_t>(t)] = true;  // the `single` task
        }
      }
    }

    std::vector<int> cpus;
    std::vector<std::unique_ptr<cachesim::CoreStream>> streams;
    for (int t = 0; t < ntasks; ++t) {
      const std::uint64_t mesh =
          hier.alloc_region(cfg.cells_per_task * sizeof(double));
      cpus.push_back(t);
      streams.push_back(std::make_unique<MeshStream>(
          cfg, table_of_task[static_cast<std::size_t>(t)], mesh,
          writer[static_cast<std::size_t>(t)],
          cfg.seed + static_cast<std::uint64_t>(t)));
    }
    cachesim::Runner runner(hier, std::move(cpus), std::move(streams));
    const cachesim::RunResult rr = runner.run();
    result.t_par = rr.makespan;
    result.par_stats = hier.stats();
  }

  // ---- sequential baseline: same per-task work, alone on the machine ----
  {
    cachesim::Hierarchy hier(machine);
    const std::uint64_t table =
        hier.alloc_region(cfg.table_cells * sizeof(double));
    const std::uint64_t mesh =
        hier.alloc_region(cfg.cells_per_task * sizeof(double));
    std::vector<int> cpus = {0};
    std::vector<std::unique_ptr<cachesim::CoreStream>> streams;
    streams.push_back(
        std::make_unique<MeshStream>(cfg, table, mesh, true, cfg.seed));
    cachesim::Runner runner(hier, std::move(cpus), std::move(streams));
    result.t_seq = runner.run().makespan;
  }

  result.efficiency = result.t_par == 0
                          ? 0.0
                          : static_cast<double>(result.t_seq) /
                                static_cast<double>(result.t_par);
  return result;
}

double run_on_node(mpc::Node& node, const Config& cfg) {
  // Deterministic "physics": table value depends only on (index, step),
  // so private and shared copies hold identical data and the checksum is
  // mode-independent.
  const auto table_value = [](std::size_t j, int step) {
    return std::sin(static_cast<double>(j % 1000) * 0.001) +
           0.01 * static_cast<double>(step);
  };
  double checksum = 0.0;
  std::mutex checksum_mu;

  hls::ArrayVar<double> hls_table;
  if (cfg.mode != Mode::no_hls) {
    hls::ModuleBuilder mb(node.hls_rt().registry(), "meshupdate");
    hls_table = hls::add_array<double>(mb, "table", cfg.table_cells,
                                       scope_for(cfg.mode));
    mb.commit();
  }

  node.run([&](mpi::Comm& world, hls::TaskView& view) {
    auto& ctx = view.context();
    const int me = world.rank(ctx);

    memtrack::Buffer mesh_buf(node.tracker(), memtrack::Category::app,
                              cfg.cells_per_task * sizeof(double));
    double* mesh = mesh_buf.as<double>();
    for (std::size_t i = 0; i < cfg.cells_per_task; ++i) {
      mesh[i] = static_cast<double>(me % 7) * 0.125;
    }

    memtrack::Buffer private_table;
    double* table = nullptr;
    if (cfg.mode == Mode::no_hls) {
      private_table = memtrack::Buffer(node.tracker(),
                                       memtrack::Category::app,
                                       cfg.table_cells * sizeof(double));
      table = private_table.as<double>();
      for (std::size_t j = 0; j < cfg.table_cells; ++j) {
        table[j] = table_value(j, 0);
      }
    } else {
      table = view.get(hls_table);
      // Listing 3: the table is loaded by one task per scope instance.
      view.single({hls_table.handle()}, [&] {
        for (std::size_t j = 0; j < cfg.table_cells; ++j) {
          table[j] = table_value(j, 0);
        }
      });
    }

    Rng rng{cfg.seed + static_cast<std::uint64_t>(me)};
    for (int step = 0; step < cfg.timesteps; ++step) {
      if (cfg.update_table && step > 0) {
        if (cfg.mode == Mode::no_hls) {
          for (std::size_t j = 0; j < cfg.table_cells; ++j) {
            table[j] = table_value(j, step);
          }
        } else {
          view.single({hls_table.handle()}, [&] {
            for (std::size_t j = 0; j < cfg.table_cells; ++j) {
              table[j] = table_value(j, step);
            }
          });
        }
      }
      for (std::size_t i = 0; i < cfg.cells_per_task; ++i) {
        const std::size_t idx = rng.next() % cfg.table_cells;
        mesh[i] = 0.5 * (mesh[i] + table[idx]);
      }
      world.barrier(ctx);
      if (cfg.mode != Mode::no_hls) view.barrier({hls_table.handle()});
    }

    double local = 0.0;
    for (std::size_t i = 0; i < cfg.cells_per_task; ++i) local += mesh[i];
    const double global = world.allreduce_value(ctx, local, mpi::Op::sum);
    if (me == 0) {
      std::lock_guard<std::mutex> lk(checksum_mu);
      checksum = global;
    }
  });
  return checksum;
}

}  // namespace hlsmpc::apps::meshupdate
