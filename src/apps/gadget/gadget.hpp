// Gadget-2 mini-app (paper §V.B.2, Table III).
//
// Cosmological N-body step: short-range forces over a neighbour sample
// plus the periodic-boundary Ewald correction, obtained by trilinear
// interpolation from a precomputed 3-D table — constant across all MPI
// tasks, hence the HLS candidate. With HLS the table is node-scope and
// filled once per node under a single.
#pragma once

#include "apps/eulermhd/eulermhd.hpp"  // RunStats
#include "mpc/node.hpp"

namespace hlsmpc::apps::gadget {

struct Config {
  int particles_per_rank = 2048;
  int ewald_dim = 24;      ///< table is ewald_dim^3 doubles per component
  int timesteps = 3;
  int total_ranks = 256;
  int neighbor_sample = 24;
  bool use_hls = false;
};

RunStats run(mpc::Node& node, const Config& cfg);

}  // namespace hlsmpc::apps::gadget
