#include "apps/gadget/gadget.hpp"

#include <chrono>
#include <cmath>

namespace hlsmpc::apps::gadget {

namespace {

double ewald_value(int i, int j, int k, int dim) {
  const double x = (static_cast<double>(i) + 0.5) / dim - 0.5;
  const double y = (static_cast<double>(j) + 0.5) / dim - 0.5;
  const double z = (static_cast<double>(k) + 0.5) / dim - 0.5;
  const double r2 = x * x + y * y + z * z + 1e-4;
  return x / (r2 * std::sqrt(r2));  // leading Ewald force component
}

double trilinear(const double* t, int dim, double x, double y, double z) {
  const auto clampf = [dim](double v) {
    return std::min(std::max(v, 0.0), 0.999) * (dim - 1);
  };
  const double fx = clampf(x), fy = clampf(y), fz = clampf(z);
  const int ix = static_cast<int>(fx), iy = static_cast<int>(fy),
            iz = static_cast<int>(fz);
  const double ax = fx - ix, ay = fy - iy, az = fz - iz;
  const auto at = [&](int a, int b, int c) {
    return t[(static_cast<std::size_t>(a) * dim + b) * dim + c];
  };
  double v = 0.0;
  for (int da = 0; da < 2; ++da) {
    for (int db = 0; db < 2; ++db) {
      for (int dc = 0; dc < 2; ++dc) {
        const double w = (da ? ax : 1 - ax) * (db ? ay : 1 - ay) *
                         (dc ? az : 1 - az);
        v += w * at(ix + da, iy + db, iz + dc);
      }
    }
  }
  return v;
}

}  // namespace

RunStats run(mpc::Node& node, const Config& cfg) {
  const std::size_t table_cells = static_cast<std::size_t>(cfg.ewald_dim) *
                                  cfg.ewald_dim * cfg.ewald_dim;
  const int np = cfg.particles_per_rank;

  hls::ArrayVar<double> hls_table;
  if (cfg.use_hls) {
    hls::ModuleBuilder mb(node.hls_rt().registry(), "gadget");
    hls_table = hls::add_array<double>(mb, "ewald_table", table_cells,
                                       topo::node_scope());
    mb.commit();
  }

  RunStats stats;
  memtrack::Sampler sampler(node.tracker());
  std::mutex mu;
  const auto t0 = std::chrono::steady_clock::now();

  node.run([&](mpi::Comm& world, hls::TaskView& view) {
    auto& ctx = view.context();
    const int me = world.rank(ctx);
    const int n = world.size();

    // Particle state: position (3), velocity (3), one array each.
    memtrack::Buffer pbuf(node.tracker(), memtrack::Category::app,
                          static_cast<std::size_t>(np) * 6 * sizeof(double));
    double* pos = pbuf.as<double>();
    double* vel = pos + static_cast<std::size_t>(np) * 3;
    for (int p = 0; p < np; ++p) {
      for (int d = 0; d < 3; ++d) {
        pos[p * 3 + d] =
            0.5 + 0.4 * std::sin(0.1 * (p + d) + 0.01 * me);
        vel[p * 3 + d] = 0.0;
      }
    }

    const auto fill_table = [&](double* t) {
      for (int i = 0; i < cfg.ewald_dim; ++i) {
        for (int j = 0; j < cfg.ewald_dim; ++j) {
          for (int k = 0; k < cfg.ewald_dim; ++k) {
            t[(static_cast<std::size_t>(i) * cfg.ewald_dim + j) *
                  cfg.ewald_dim +
              k] = ewald_value(i, j, k, cfg.ewald_dim);
          }
        }
      }
    };
    memtrack::Buffer private_table;
    double* table = nullptr;
    if (cfg.use_hls) {
      table = view.get(hls_table);
      view.single({hls_table.handle()}, [&] { fill_table(table); });
    } else {
      private_table = memtrack::Buffer(node.tracker(),
                                       memtrack::Category::app,
                                       table_cells * sizeof(double));
      table = private_table.as<double>();
      fill_table(table);
    }

    for (int step = 0; step < cfg.timesteps; ++step) {
      // Domain statistics exchanged like gadget's load balancing chatter.
      double local_min = 1e30, local_max = -1e30;
      for (int p = 0; p < np; ++p) {
        local_min = std::min(local_min, pos[p * 3]);
        local_max = std::max(local_max, pos[p * 3]);
      }
      (void)world.allreduce_value(ctx, local_min, mpi::Op::min);
      (void)world.allreduce_value(ctx, local_max, mpi::Op::max);

      // Forces: neighbour sample + Ewald correction from the table.
      for (int p = 0; p < np; ++p) {
        double f[3] = {0, 0, 0};
        for (int s = 1; s <= cfg.neighbor_sample; ++s) {
          const int q = (p + s * 97) % np;
          double d2 = 1e-5;
          double dx[3];
          for (int d = 0; d < 3; ++d) {
            dx[d] = pos[q * 3 + d] - pos[p * 3 + d];
            d2 += dx[d] * dx[d];
          }
          const double inv = 1.0 / (d2 * std::sqrt(d2));
          for (int d = 0; d < 3; ++d) f[d] += dx[d] * inv * 1e-6;
        }
        const double corr = trilinear(table, cfg.ewald_dim, pos[p * 3],
                                      pos[p * 3 + 1], pos[p * 3 + 2]);
        f[0] += 1e-6 * corr;
        for (int d = 0; d < 3; ++d) {
          vel[p * 3 + d] += f[d];
          pos[p * 3 + d] =
              std::fmod(pos[p * 3 + d] + vel[p * 3 + d] + 1.0, 1.0);
        }
      }

      // Boundary particle exchange with the ring neighbour.
      const int count = 16;
      std::vector<double> out(static_cast<std::size_t>(count) * 3);
      std::vector<double> in(out.size());
      for (int i = 0; i < count * 3; ++i) {
        out[static_cast<std::size_t>(i)] = pos[i];
      }
      world.sendrecv(ctx, out.data(), out.size() * sizeof(double),
                     (me + 1) % n, 20, in.data(), in.size() * sizeof(double),
                     (me - 1 + n) % n, 20);

      if (me == 0) {
        std::lock_guard<std::mutex> lk(mu);
        sampler.sample();
      }
      world.barrier(ctx);
    }

    double local = 0.0;
    for (int p = 0; p < np; ++p) local += vel[p * 3] * vel[p * 3];
    const double global = world.allreduce_value(ctx, local, mpi::Op::sum);
    if (me == 0) {
      std::lock_guard<std::mutex> lk(mu);
      stats.checksum = global;
    }
  });

  stats.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  stats.avg_mb = sampler.avg_mb();
  stats.max_mb = sampler.max_mb();
  return stats;
}

}  // namespace hlsmpc::apps::gadget
