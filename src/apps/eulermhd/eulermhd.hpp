// EulerMHD mini-app (paper §V.B.1, Table II).
//
// A 2-D Cartesian solver whose gas equation of state is a large constant
// 2-D table (pressure as a function of density and internal energy),
// identical in every MPI task — the paper's HLS candidate. One node of
// the cluster is simulated: it hosts 8 of `total_ranks` job ranks, each
// owning a block of rows of the fixed global mesh, exchanging halo rows
// with ring neighbours and reducing a global dt each step. With HLS the
// EOS table is declared node-scope and initialized under a single; the
// expected per-node gain is 7x the table size.
#pragma once

#include <cstdint>

#include "mpc/node.hpp"

namespace hlsmpc::apps {

/// Per-run measurements matching the tables' columns.
struct RunStats {
  double seconds = 0.0;
  double avg_mb = 0.0;   ///< time-average of node memory (paper's probe)
  double max_mb = 0.0;   ///< max over time
  double checksum = 0.0; ///< mode-independent result checksum
};

namespace eulermhd {

struct Config {
  int global_nx = 256;     ///< global mesh columns (scaled from 4096)
  int global_ny = 256;     ///< global mesh rows, split across the job
  int eos_dim = 256;       ///< EOS table is eos_dim^2 doubles
  int timesteps = 4;
  int total_ranks = 256;   ///< job size (this node hosts its 8 local ranks)
  bool use_hls = false;
};

RunStats run(mpc::Node& node, const Config& cfg);

}  // namespace eulermhd
}  // namespace hlsmpc::apps
