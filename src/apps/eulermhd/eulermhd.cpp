#include "apps/eulermhd/eulermhd.hpp"

#include <chrono>
#include <cmath>
#include <vector>

namespace hlsmpc::apps::eulermhd {

namespace {

/// EOS: pressure from (density, internal energy) by bilinear
/// interpolation in the table; the table itself is a smooth analytic
/// surface so all copies are bit-identical.
double eos_value(int i, int j, int dim) {
  const double x = static_cast<double>(i) / dim;
  const double y = static_cast<double>(j) / dim;
  return (0.4 + 0.1 * std::sin(6.28 * x)) * y + 1e-3;
}

double interp(const double* table, int dim, double density, double energy) {
  const double fx = std::min(std::max(density, 0.0), 0.999) * (dim - 1);
  const double fy = std::min(std::max(energy, 0.0), 0.999) * (dim - 1);
  const int ix = static_cast<int>(fx);
  const int iy = static_cast<int>(fy);
  const double ax = fx - ix;
  const double ay = fy - iy;
  const double* row0 = table + static_cast<std::size_t>(ix) * dim;
  const double* row1 = table + static_cast<std::size_t>(ix + 1) * dim;
  return (1 - ax) * ((1 - ay) * row0[iy] + ay * row0[iy + 1]) +
         ax * ((1 - ay) * row1[iy] + ay * row1[iy + 1]);
}

}  // namespace

RunStats run(mpc::Node& node, const Config& cfg) {
  const int nlocal = node.mpi_rt().nranks();
  const int rows_per_rank =
      std::max(1, cfg.global_ny / std::max(cfg.total_ranks, 1));
  const int nx = cfg.global_nx;
  const std::size_t table_cells =
      static_cast<std::size_t>(cfg.eos_dim) * cfg.eos_dim;

  hls::ArrayVar<double> hls_table;
  if (cfg.use_hls) {
    hls::ModuleBuilder mb(node.hls_rt().registry(), "eulermhd");
    hls_table =
        hls::add_array<double>(mb, "eos_table", table_cells,
                               topo::node_scope());
    mb.commit();
  }

  RunStats stats;
  memtrack::Sampler sampler(node.tracker());
  std::mutex mu;
  const auto t0 = std::chrono::steady_clock::now();

  node.run([&](mpi::Comm& world, hls::TaskView& view) {
    auto& ctx = view.context();
    const int me = world.rank(ctx);
    const int next = (me + 1) % nlocal;
    const int prev = (me - 1 + nlocal) % nlocal;

    // Conserved fields: density, energy, vx, vy (+2 halo rows each).
    const std::size_t field_cells =
        static_cast<std::size_t>(rows_per_rank + 2) * nx;
    memtrack::Buffer fields(node.tracker(), memtrack::Category::app,
                            4 * field_cells * sizeof(double));
    double* rho = fields.as<double>();
    double* en = rho + field_cells;
    double* vx = en + field_cells;
    double* vy = vx + field_cells;
    for (std::size_t c = 0; c < field_cells; ++c) {
      const std::size_t cell = c % (static_cast<std::size_t>(nx));
      rho[c] = 0.3 + 0.2 * std::sin(0.01 * static_cast<double>(cell + me));
      en[c] = 0.5 + 0.1 * std::cos(0.02 * static_cast<double>(cell));
      vx[c] = 0.0;
      vy[c] = 0.0;
    }

    // EOS table: one copy per rank without HLS, one per node with.
    memtrack::Buffer private_table;
    double* table = nullptr;
    const auto fill_table = [&](double* t) {
      for (int i = 0; i < cfg.eos_dim; ++i) {
        for (int j = 0; j < cfg.eos_dim; ++j) {
          t[static_cast<std::size_t>(i) * cfg.eos_dim + j] =
              eos_value(i, j, cfg.eos_dim);
        }
      }
    };
    if (cfg.use_hls) {
      table = view.get(hls_table);
      view.single({hls_table.handle()}, [&] { fill_table(table); });
    } else {
      private_table = memtrack::Buffer(node.tracker(),
                                       memtrack::Category::app,
                                       table_cells * sizeof(double));
      table = private_table.as<double>();
      fill_table(table);
    }

    const std::size_t row_bytes = static_cast<std::size_t>(nx) *
                                  sizeof(double);
    for (int step = 0; step < cfg.timesteps; ++step) {
      // Halo exchange on the density and energy fields (ring).
      for (double* f : {rho, en}) {
        double* first_row = f + nx;
        double* last_row = f + static_cast<std::size_t>(rows_per_rank) * nx;
        double* halo_top = f;
        double* halo_bot = f + static_cast<std::size_t>(rows_per_rank + 1) * nx;
        world.sendrecv(ctx, last_row, row_bytes, next, 10, halo_top,
                       row_bytes, prev, 10);
        world.sendrecv(ctx, first_row, row_bytes, prev, 11, halo_bot,
                       row_bytes, next, 11);
      }
      // Pressure-driven update with EOS lookups.
      double max_c = 0.0;
      for (int r = 1; r <= rows_per_rank; ++r) {
        for (int c = 0; c < nx; ++c) {
          const std::size_t idx = static_cast<std::size_t>(r) * nx + c;
          const double p = interp(table, cfg.eos_dim, rho[idx], en[idx]);
          const double p_up = interp(table, cfg.eos_dim, rho[idx - nx],
                                     en[idx - nx]);
          const double p_dn = interp(table, cfg.eos_dim, rho[idx + nx],
                                     en[idx + nx]);
          vy[idx] += 0.1 * (p_up - p_dn);
          vx[idx] *= 0.999;
          rho[idx] += 0.01 * (rho[idx - nx] + rho[idx + nx] - 2 * rho[idx]);
          en[idx] += 0.005 * (p_up + p_dn - 2 * p);
          max_c = std::max(max_c, std::abs(p));
        }
      }
      // Global dt: the usual allreduce.
      (void)world.allreduce_value(ctx, max_c, mpi::Op::max);
      if (me == 0) {
        std::lock_guard<std::mutex> lk(mu);
        sampler.sample();  // the paper's periodic memory probe
      }
      world.barrier(ctx);
    }

    double local = 0.0;
    for (std::size_t c = 0; c < field_cells; ++c) local += rho[c] + en[c];
    const double global = world.allreduce_value(ctx, local, mpi::Op::sum);
    if (me == 0) {
      std::lock_guard<std::mutex> lk(mu);
      stats.checksum = global;
    }
  });

  stats.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  stats.avg_mb = sampler.avg_mb();
  stats.max_mb = sampler.max_mb();
  return stats;
}

}  // namespace hlsmpc::apps::eulermhd
