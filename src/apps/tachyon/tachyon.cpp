#include "apps/tachyon/tachyon.hpp"

#include <chrono>
#include <cmath>
#include <vector>

namespace hlsmpc::apps::tachyon {

namespace {

struct Sphere {
  double cx, cy, cz, r;
  int texture_offset;
};

/// Deterministic scene build so every copy is identical.
void build_spheres(Sphere* s, int n, std::size_t texture_floats) {
  for (int i = 0; i < n; ++i) {
    s[i].cx = -2.0 + 4.0 * ((i * 37) % 97) / 97.0;
    s[i].cy = -2.0 + 4.0 * ((i * 53) % 89) / 89.0;
    s[i].cz = 3.0 + ((i * 29) % 11);
    s[i].r = 0.3 + 0.2 * ((i * 13) % 7) / 7.0;
    s[i].texture_offset =
        static_cast<int>((static_cast<std::size_t>(i) * 7919) %
                         (texture_floats - 256));
  }
}

void build_textures(float* t, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    t[i] = 0.5f + 0.5f * std::sin(0.001f * static_cast<float>(i % 10007));
  }
}

/// Trace one primary ray; returns an RGB-ish scalar triple.
void trace(double px, double py, const Sphere* spheres, int ns,
           const float* textures, float rgb[3]) {
  // Camera at origin looking down +z.
  const double dx = px, dy = py, dz = 1.0;
  const double norm = 1.0 / std::sqrt(dx * dx + dy * dy + dz * dz);
  double best_t = 1e30;
  int hit = -1;
  for (int i = 0; i < ns; ++i) {
    const Sphere& s = spheres[i];
    const double ox = -s.cx, oy = -s.cy, oz = -s.cz;
    const double b = 2.0 * (ox * dx + oy * dy + oz * dz) * norm;
    const double c = ox * ox + oy * oy + oz * oz - s.r * s.r;
    const double disc = b * b - 4 * c;
    if (disc < 0) continue;
    const double t = (-b - std::sqrt(disc)) / 2.0;
    if (t > 1e-6 && t < best_t) {
      best_t = t;
      hit = i;
    }
  }
  if (hit < 0) {
    rgb[0] = 0.1f;
    rgb[1] = 0.1f;
    rgb[2] = static_cast<float>(0.2 + 0.1 * py);
    return;
  }
  const Sphere& s = spheres[hit];
  const int tex = s.texture_offset +
                  static_cast<int>(std::fabs(px * 100 + py * 71)) % 256;
  const float shade = textures[tex];
  rgb[0] = shade;
  rgb[1] = shade * 0.8f;
  rgb[2] = shade * 0.6f;
}

}  // namespace

TachyonStats run(mpc::Node& node, const Config& cfg) {
  const int nlocal = node.mpi_rt().nranks();
  const std::size_t image_floats =
      static_cast<std::size_t>(cfg.width) * cfg.height * 3;
  const std::size_t scene_bytes =
      cfg.texture_floats * sizeof(float) +
      static_cast<std::size_t>(cfg.num_spheres) * sizeof(Sphere);

  // HLS variables: the split structure of the paper — the shareable part
  // (scene + image) is HLS, communication state stays private per task.
  hls::ArrayVar<std::byte> hls_scene;
  hls::ArrayVar<float> hls_image;
  if (cfg.use_hls) {
    hls::ModuleBuilder mb(node.hls_rt().registry(), "tachyon");
    hls_scene = hls::add_array<std::byte>(mb, "scene", scene_bytes,
                                          topo::node_scope());
    hls_image = hls::add_array<float>(mb, "image", image_floats,
                                      topo::node_scope());
    mb.commit();
  }

  TachyonStats stats;
  memtrack::Sampler sampler(node.tracker());
  std::mutex mu;
  const std::uint64_t elided_before =
      node.mpi_rt().stats().copies_elided.load();
  const auto t0 = std::chrono::steady_clock::now();

  node.run([&](mpi::Comm& world, hls::TaskView& view) {
    auto& ctx = view.context();
    const int me = world.rank(ctx);

    // ---- scene ----
    memtrack::Buffer private_scene;
    std::byte* scene = nullptr;
    if (cfg.use_hls) {
      scene = view.get(hls_scene);
      view.single({hls_scene.handle()}, [&] {
        build_spheres(reinterpret_cast<Sphere*>(scene), cfg.num_spheres,
                      cfg.texture_floats);
        build_textures(reinterpret_cast<float*>(
                           scene + static_cast<std::size_t>(cfg.num_spheres) *
                                       sizeof(Sphere)),
                       cfg.texture_floats);
      });
    } else {
      private_scene = memtrack::Buffer(node.tracker(),
                                       memtrack::Category::app, scene_bytes);
      scene = private_scene.data();
      build_spheres(reinterpret_cast<Sphere*>(scene), cfg.num_spheres,
                    cfg.texture_floats);
      build_textures(reinterpret_cast<float*>(
                         scene + static_cast<std::size_t>(cfg.num_spheres) *
                                     sizeof(Sphere)),
                     cfg.texture_floats);
    }
    const Sphere* spheres = reinterpret_cast<const Sphere*>(scene);
    const float* textures = reinterpret_cast<const float*>(
        scene + static_cast<std::size_t>(cfg.num_spheres) * sizeof(Sphere));

    // ---- image (full resolution everywhere, as in the original code) ----
    memtrack::Buffer private_image;
    float* image = nullptr;
    if (cfg.use_hls) {
      image = view.get(hls_image);
    } else {
      private_image = memtrack::Buffer(node.tracker(),
                                       memtrack::Category::app,
                                       image_floats * sizeof(float));
      image = private_image.as<float>();
    }

    // Row partition over local ranks.
    const int rows = cfg.height / nlocal;
    const int row0 = me * rows;
    const int row1 = me == nlocal - 1 ? cfg.height : row0 + rows;

    for (int frame = 0; frame < cfg.frames; ++frame) {
      for (int y = row0; y < row1; ++y) {
        for (int x = 0; x < cfg.width; ++x) {
          const double px = -1.0 + 2.0 * x / cfg.width + 1e-4 * frame;
          const double py = -1.0 + 2.0 * y / cfg.height;
          float rgb[3];
          trace(px, py, spheres, cfg.num_spheres, textures, rgb);
          float* dst = image + (static_cast<std::size_t>(y) * cfg.width + x) * 3;
          dst[0] = rgb[0];
          dst[1] = rgb[1];
          dst[2] = rgb[2];
        }
      }
      // Task 0 assembles the frame from everyone's rows. With the HLS
      // image, source and destination coincide and the copy is elided.
      const std::size_t my_floats =
          static_cast<std::size_t>(row1 - row0) * cfg.width * 3;
      if (me == 0) {
        for (int r = 1; r < nlocal; ++r) {
          const int rr0 = r * rows;
          const int rr1 = r == nlocal - 1 ? cfg.height : rr0 + rows;
          float* dst = image + static_cast<std::size_t>(rr0) * cfg.width * 3;
          world.recv(ctx, dst,
                     static_cast<std::size_t>(rr1 - rr0) * cfg.width * 3 *
                         sizeof(float),
                     r, 30 + frame);
        }
        std::lock_guard<std::mutex> lk(mu);
        sampler.sample();
      } else {
        world.send(ctx, image + static_cast<std::size_t>(row0) * cfg.width * 3,
                   my_floats * sizeof(float), 0, 30 + frame);
      }
      world.barrier(ctx);
      if (cfg.use_hls) view.barrier({hls_image.handle()});
    }

    if (me == 0) {
      double local = 0.0;
      for (std::size_t i = 0; i < image_floats; i += 101) {
        local += image[i];
      }
      std::lock_guard<std::mutex> lk(mu);
      stats.checksum = local;
    }
  });

  stats.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  stats.avg_mb = sampler.avg_mb();
  stats.max_mb = sampler.max_mb();
  stats.gather_copies_elided =
      node.mpi_rt().stats().copies_elided.load() - elided_before;
  return stats;
}

}  // namespace hlsmpc::apps::tachyon
