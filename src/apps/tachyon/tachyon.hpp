// Tachyon mini-app (paper §V.B.3, Table IV).
//
// Ray tracer with the paper's memory structure: a scene (objects +
// textures) replicated in every MPI task because rays bounce
// unpredictably, and a full-resolution image also replicated "for code
// simplicity" although each task only renders its rows; task 0 assembles
// the frame from everyone's rows. Both structures are HLS candidates: the
// scene is read-only during rendering, and the image's per-task regions
// do not overlap. Sharing the image additionally removes the intra-node
// gather copies on task 0's node — the runtime detects that source and
// destination coincide and elides the memcpy (§IV / §V.B.3), which is
// why the paper measured *faster* execution with HLS here.
#pragma once

#include "apps/eulermhd/eulermhd.hpp"  // RunStats
#include "mpc/node.hpp"

namespace hlsmpc::apps::tachyon {

struct Config {
  int width = 256;
  int height = 256;
  int num_spheres = 32;
  std::size_t texture_floats = 1 << 20;  ///< bulk of the scene's bytes
  int frames = 2;
  int total_ranks = 736;
  bool use_hls = false;  ///< scene + image node-scope
};

struct TachyonStats : RunStats {
  std::uint64_t gather_copies_elided = 0;
};

TachyonStats run(mpc::Node& node, const Config& cfg);

}  // namespace hlsmpc::apps::tachyon
