#include "mpc/node.hpp"

namespace hlsmpc::mpc {

Node::Node(const topo::Machine& machine, NodeOptions opts,
           memtrack::Tracker* tracker)
    : owned_tracker_(tracker == nullptr ? std::make_unique<memtrack::Tracker>()
                                        : nullptr),
      tracker_(tracker != nullptr ? tracker : owned_tracker_.get()),
      mpi_(machine, opts.mpi, tracker_),
      hls_(machine, mpi_.nranks(), tracker_) {}

void Node::run(const std::function<void(mpi::Comm&, hls::TaskView&)>& body) {
  mpi_.run([&](mpi::Comm& world, ult::TaskContext& ctx) {
    hls::TaskView view(hls_, ctx);
    body(world, view);
  });
}

void Node::move_task(hls::TaskView& view, int new_cpu) {
  // The HLS migration check first: an ineligible move must not re-pin.
  view.migrate(new_cpu);
  // Fiber back end: actually move the user-level thread to the worker
  // responsible for the destination cpu (takes effect at the yield).
  if (auto* fiber_ctx =
          dynamic_cast<ult::FiberTaskContext*>(&view.context())) {
    fiber_ctx->set_target_worker(new_cpu);  // scheduler maps cpu % workers
    fiber_ctx->yield();
  }
}

}  // namespace hlsmpc::mpc
