#include "mpc/node.hpp"

namespace hlsmpc::mpc {

namespace {

// The MPI runtime applies the same default when Options.nranks == 0;
// computing it here lets the HLS runtime (constructed first, it owns the
// shared recorder) size itself identically.
int resolve_nranks(const topo::Machine& machine, const mpi::Options& o) {
  return o.nranks > 0 ? o.nranks : machine.num_cpus();
}

mpi::Options with_obs(mpi::Options o, obs::Recorder* obs) {
  o.obs = obs;
  return o;
}

}  // namespace

Node::Node(const topo::Machine& machine, NodeOptions opts,
           memtrack::Tracker* tracker)
    : owned_tracker_(tracker == nullptr ? std::make_unique<memtrack::Tracker>()
                                        : nullptr),
      tracker_(tracker != nullptr ? tracker : owned_tracker_.get()),
      hls_(machine, resolve_nranks(machine, opts.mpi),
           hls::Runtime::Options{.tracker = tracker_,
                                 .obs = opts.obs,
                                 .obs_sink = opts.obs_sink,
                                 .obs_ring_capacity = opts.obs_ring_capacity,
                                 .watchdog_ms = opts.watchdog_ms}),
      mpi_(machine, with_obs(opts.mpi, hls_.obs()), tracker_) {}

void Node::run(const std::function<void(mpi::Comm&, hls::TaskView&)>& body) {
  mpi_.run([&](mpi::Comm& world, ult::TaskContext& ctx) {
    hls::TaskView view(hls_, ctx);
    body(world, view);
  });
}

void Node::move_task(hls::TaskView& view, int new_cpu) {
  // The HLS migration check first: an ineligible move must not re-pin.
  view.migrate(new_cpu);
  // Fiber back end: actually move the user-level thread to the worker
  // responsible for the destination cpu (takes effect at the yield).
  if (auto* fiber_ctx =
          dynamic_cast<ult::FiberTaskContext*>(&view.context())) {
    fiber_ctx->set_target_worker(new_cpu);  // scheduler maps cpu % workers
    fiber_ctx->yield();
  }
}

}  // namespace hlsmpc::mpc
