// One simulated computational node running an MPI program with HLS
// support — the "MPC with the HLS mechanism enabled" configuration of the
// paper's experiments. Combines the thread-based MPI runtime and the HLS
// runtime over a single memory tracker, so per-node measurements cover
// application data, HLS storage and MPI runtime buffers together, like
// the paper's whole-node probe (§V.B).
#pragma once

#include <functional>

#include "hls/var.hpp"
#include "mpi/runtime.hpp"

namespace hlsmpc::mpc {

struct NodeOptions {
  mpi::Options mpi;
};

class Node {
 public:
  Node(const topo::Machine& machine, NodeOptions opts,
       memtrack::Tracker* tracker = nullptr);
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Run the MPI+HLS program: `body(world, hls_view)` once per rank.
  void run(const std::function<void(mpi::Comm&, hls::TaskView&)>& body);

  /// MPC_Move: migrate the calling task to `new_cpu`. Performs the HLS
  /// counter check (§IV.A, throws hls::HlsError on mismatch), updates the
  /// task's pinning, and — on the fiber back end — re-pins the fiber to
  /// the worker carrying that cpu at the next yield.
  static void move_task(hls::TaskView& view, int new_cpu);

  mpi::Runtime& mpi_rt() { return mpi_; }
  hls::Runtime& hls_rt() { return hls_; }
  memtrack::Tracker& tracker() { return *tracker_; }
  const topo::Machine& machine() const { return mpi_.machine(); }

 private:
  std::unique_ptr<memtrack::Tracker> owned_tracker_;
  memtrack::Tracker* tracker_;
  mpi::Runtime mpi_;
  hls::Runtime hls_;
};

}  // namespace hlsmpc::mpc
