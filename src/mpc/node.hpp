// One simulated computational node running an MPI program with HLS
// support — the "MPC with the HLS mechanism enabled" configuration of the
// paper's experiments. Combines the thread-based MPI runtime and the HLS
// runtime over a single memory tracker, so per-node measurements cover
// application data, HLS storage and MPI runtime buffers together, like
// the paper's whole-node probe (§V.B).
#pragma once

#include <functional>

#include "hls/hls.hpp"
#include "mpi/runtime.hpp"

namespace hlsmpc::mpc {

struct NodeOptions {
  mpi::Options mpi;
  /// Observability recorder shared by both runtimes. Null = the HLS
  /// runtime owns one and the MPI runtime records into it too (when the
  /// layer is compiled in). Node always wires `mpi.obs` itself; a value
  /// set there directly is overwritten.
  obs::Recorder* obs = nullptr;
  /// Extra sink chained onto the node's event stream.
  obs::Sink* obs_sink = nullptr;
  std::size_t obs_ring_capacity = 4096;
  /// Sync watchdog deadline for the HLS runtime (0 = off); see
  /// hls::Runtime::Options::watchdog_ms.
  int watchdog_ms = 0;
};

class Node {
 public:
  Node(const topo::Machine& machine, NodeOptions opts,
       memtrack::Tracker* tracker = nullptr);
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Run the MPI+HLS program: `body(world, hls_view)` once per rank.
  void run(const std::function<void(mpi::Comm&, hls::TaskView&)>& body);

  /// MPC_Move: migrate the calling task to `new_cpu`. Performs the HLS
  /// counter check (§IV.A, throws hls::HlsError on mismatch), updates the
  /// task's pinning, and — on the fiber back end — re-pins the fiber to
  /// the worker carrying that cpu at the next yield.
  static void move_task(hls::TaskView& view, int new_cpu);

  mpi::Runtime& mpi_rt() { return mpi_; }
  hls::Runtime& hls_rt() { return hls_; }
  memtrack::Tracker& tracker() { return *tracker_; }
  const topo::Machine& machine() const { return mpi_.machine(); }
  /// The node-wide recorder (HLS + MPI + scheduler); nullptr when the
  /// observability layer is compiled out.
  obs::Recorder* obs() const { return hls_.obs(); }

 private:
  std::unique_ptr<memtrack::Tracker> owned_tracker_;
  memtrack::Tracker* tracker_;
  // hls_ first: it owns (or adopts) the recorder the MPI runtime shares.
  hls::Runtime hls_;
  mpi::Runtime mpi_;
};

}  // namespace hlsmpc::mpc
