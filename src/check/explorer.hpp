// Schedule exploration driver.
//
// Replays an `attempt` — a closure that builds fresh state and runs its
// task bodies on the executor it is handed — across many deterministic
// schedules: a systematic round-robin-with-preemption-bound sweep first,
// then seeded random schedules. Any exception out of the attempt (a
// failed invariant thrown by the test body, an HlsError, or the
// executor's DeadlockError) counts as a failure; the failing schedule is
// then shrunk to a minimal pick trace that still fails, and the result
// carries everything needed to replay it.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "check/deterministic_executor.hpp"

namespace hlsmpc::check {

struct ExploreOptions {
  /// Total schedules to try (systematic sweep + random remainder).
  int schedules = 500;
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
  /// Scheduling-step budget per run (DeadlockError beyond it).
  long max_steps = 50000;
  bool shrink = true;
  /// Upper bound on re-runs spent shrinking a failing trace.
  int max_shrink_runs = 400;
};

struct ExploreResult {
  bool ok = true;
  int schedules_run = 0;
  /// Index of the first failing schedule (-1 if none failed).
  int failing_schedule = -1;
  /// Shrunk pick trace reproducing the failure (empty when ok).
  ScheduleTrace failing_trace;
  /// what() of the original failure.
  std::string error;
  /// Human-readable reproduction recipe (trace + error of the shrunk run).
  std::string repro;
};

class ScheduleExplorer {
 public:
  /// Must build fresh state on every call and run its tasks on `ex`;
  /// throw to signal an invariant violation.
  using Attempt = std::function<void(ult::Executor&)>;

  explicit ScheduleExplorer(ExploreOptions opts = {}) : opts_(opts) {}

  ExploreResult explore(const Attempt& attempt);

  /// Re-run one specific schedule; rethrows whatever the attempt throws.
  void replay(const Attempt& attempt, const ScheduleTrace& trace) const;

 private:
  bool fails(const Attempt& attempt, const ScheduleTrace& trace,
             std::string* error) const;
  ScheduleTrace shrink(const Attempt& attempt, ScheduleTrace failing) const;

  ExploreOptions opts_;
};

}  // namespace hlsmpc::check
