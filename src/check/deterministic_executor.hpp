// Deterministic single-threaded executor for systematic concurrency
// testing.
//
// All task bodies run as fibers on the ONE calling kernel thread; every
// fiber yield — including the yields injected at each SyncManager
// wait/notify edge via ult::TaskContext::sync_point — returns control to a
// scheduling loop that asks a SchedulePolicy which task to resume next.
// Because the policy is deterministic, a run is fully described by its
// pick sequence (ScheduleTrace): re-running the same trace replays the
// same interleaving, which is what makes failures shrinkable and
// reproducible (see explorer.hpp).
#pragma once

#include <cstdint>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "ult/fiber.hpp"
#include "ult/scheduler.hpp"
#include "ult/task_context.hpp"

namespace hlsmpc::check {

/// A schedule, recorded as the task id chosen at each scheduling decision.
struct ScheduleTrace {
  std::vector<int> picks;

  bool empty() const { return picks.empty(); }
  std::size_t size() const { return picks.size(); }
};

std::string to_string(const ScheduleTrace& t);
/// Inverse of to_string: whitespace-separated task ids.
ScheduleTrace parse_trace(const std::string& text);

/// Decides which task runs next. reset() is called once per run.
class SchedulePolicy {
 public:
  virtual ~SchedulePolicy() = default;
  virtual void reset(int ntasks) { (void)ntasks; }
  /// `runnable` is the ascending list of unfinished task ids (non-empty).
  /// Must return one of its elements.
  virtual int pick(const std::vector<int>& runnable) = 0;
};

/// Uniformly random pick from a seeded PRNG; same seed => same schedule.
class RandomPolicy final : public SchedulePolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed) : seed_(seed), rng_(seed) {}
  void reset(int ntasks) override;
  int pick(const std::vector<int>& runnable) override;

 private:
  std::uint64_t seed_;
  std::mt19937_64 rng_;
};

/// Round-robin with a preemption bound: each task runs for up to `quantum`
/// consecutive scheduling points before the next task (in id order,
/// starting offset `rotation`) takes over. quantum=1, rotation=0 is plain
/// round-robin; larger quanta approximate coarser preemption.
class RoundRobinPolicy final : public SchedulePolicy {
 public:
  explicit RoundRobinPolicy(int quantum = 1, int rotation = 0);
  void reset(int ntasks) override;
  int pick(const std::vector<int>& runnable) override;

 private:
  int quantum_;
  int rotation_;
  int current_ = -1;
  int used_ = 0;
};

/// Replays an explicit pick sequence. When the trace is exhausted, or a
/// recorded pick names a finished task, falls back to fair round-robin so
/// truncated (shrunk) traces still complete clean runs.
class TracePolicy final : public SchedulePolicy {
 public:
  explicit TracePolicy(ScheduleTrace trace) : trace_(std::move(trace)) {}
  void reset(int ntasks) override;
  int pick(const std::vector<int>& runnable) override;

 private:
  ScheduleTrace trace_;
  std::size_t next_ = 0;
  std::size_t fallback_ = 0;
};

/// Thrown when the scheduling-step budget is exhausted with unfinished
/// tasks. Under a fair bounded policy that means no task can make real
/// progress any more: a lost wakeup, deadlock, or livelock.
class DeadlockError : public std::runtime_error {
 public:
  DeadlockError(const std::string& what, ScheduleTrace trace)
      : std::runtime_error(what), trace_(std::move(trace)) {}
  const ScheduleTrace& trace() const { return trace_; }

 private:
  ScheduleTrace trace_;
};

class DeterministicExecutor final : public ult::Executor,
                                    public ult::ScheduleHook {
 public:
  /// `policy` must outlive the executor. `max_steps` bounds the number of
  /// scheduling decisions per run; exceeding it raises DeadlockError.
  explicit DeterministicExecutor(SchedulePolicy& policy,
                                 long max_steps = 200000,
                                 std::size_t stack_bytes = 256 * 1024)
      : policy_(&policy), max_steps_(max_steps), stack_bytes_(stack_bytes) {}

  void run(int n, const std::vector<int>& pins,
           const std::function<void(ult::TaskContext&)>& body) override;
  const char* name() const override { return "deterministic"; }

  /// ScheduleHook: every instrumented sync edge suspends the running task
  /// so the policy can interleave another one.
  void on_sync_point(ult::TaskContext& ctx, const char* where) override;

  /// Pick sequence of the most recent run (complete even if it threw).
  const ScheduleTrace& last_trace() const { return trace_; }
  long steps() const { return steps_; }

 private:
  SchedulePolicy* policy_;
  long max_steps_;
  std::size_t stack_bytes_;
  ScheduleTrace trace_;
  long steps_ = 0;
};

}  // namespace hlsmpc::check
