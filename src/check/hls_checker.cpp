#include "check/hls_checker.hpp"

#include <algorithm>
#include <sstream>

#include "hb/analyzer.hpp"
#include "hb/trace.hpp"

namespace hlsmpc::check {

namespace {

using hls::SyncEvent;

bool is_enter(SyncEvent::Kind k) {
  return k == SyncEvent::Kind::barrier_enter ||
         k == SyncEvent::Kind::single_enter;
}

bool is_migrate(SyncEvent::Kind k) {
  return k == SyncEvent::Kind::migrate_ok ||
         k == SyncEvent::Kind::migrate_rejected;
}

bool is_rma(SyncEvent::Kind k) {
  switch (k) {
    case SyncEvent::Kind::rma_put:
    case SyncEvent::Kind::rma_get:
    case SyncEvent::Kind::rma_acc:
    case SyncEvent::Kind::rma_fence_enter:
    case SyncEvent::Kind::rma_fence_exit:
    case SyncEvent::Kind::rma_lock:
    case SyncEvent::Kind::rma_unlock:
      return true;
    default:
      return false;
  }
}

bool is_rma_access(SyncEvent::Kind k) {
  return k == SyncEvent::Kind::rma_put || k == SyncEvent::Kind::rma_get ||
         k == SyncEvent::Kind::rma_acc;
}

topo::ScopeSpec spec_of(const hls::CanonicalScope& scope) {
  return topo::ScopeSpec{scope.kind, scope.cache_level};
}

bool contains(const std::vector<int>& v, int x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

std::string describe(const SyncEvent& e) {
  std::ostringstream os;
  os << hls::to_string(e.kind) << " task=" << e.task << " cpu=" << e.cpu;
  if (is_rma(e.kind)) {
    os << " win=" << e.instance;
    if (e.rma_target >= 0) os << " target=" << e.rma_target;
    if (is_rma_access(e.kind)) {
      os << " range=[" << e.rma_offset << ", "
         << (e.rma_offset + e.rma_bytes) << ")";
    }
    if (e.kind == SyncEvent::Kind::rma_fence_enter ||
        e.kind == SyncEvent::Kind::rma_fence_exit) {
      os << " epoch=" << e.task_count;
    }
    if (e.kind == SyncEvent::Kind::rma_lock ||
        e.kind == SyncEvent::Kind::rma_unlock) {
      os << (e.rma_excl ? " exclusive" : " shared");
    }
  } else if (!is_migrate(e.kind)) {
    os << " scope=" << hls::to_string(e.scope) << " inst=" << e.instance
       << " task_count=" << e.task_count
       << " instance_count=" << e.instance_count;
  }
  return os.str();
}

}  // namespace

const char* to_string(Diagnostic::Code c) {
  switch (c) {
    case Diagnostic::Code::single_overlap:
      return "single_overlap";
    case Diagnostic::Code::single_unordered:
      return "single_unordered";
    case Diagnostic::Code::counter_regression:
      return "counter_regression";
    case Diagnostic::Code::migrate_mismatch:
      return "migrate_mismatch";
    case Diagnostic::Code::migrate_in_single:
      return "migrate_in_single";
    case Diagnostic::Code::rma_race:
      return "rma_race";
    case Diagnostic::Code::rma_lock_overlap:
      return "rma_lock_overlap";
    case Diagnostic::Code::structural:
      return "structural";
  }
  return "?";
}

HlsChecker::HlsChecker(const topo::ScopeMap& sm, int ntasks)
    : sm_(&sm),
      ntasks_(ntasks),
      single_depth_(static_cast<std::size_t>(std::max(0, ntasks)), 0) {
  if (ntasks < 1) throw hls::HlsError("HlsChecker: need at least one task");
}

void HlsChecker::add(Diagnostic::Code code, const SyncEvent& e,
                     std::string msg) {
  Diagnostic d;
  d.code = code;
  d.message = std::move(msg);
  d.task = e.task;
  d.scope = e.scope;
  d.instance = e.instance;
  diags_.push_back(std::move(d));
}

void HlsChecker::check_counters(const SyncEvent& e) {
  const auto task_key = std::make_pair(e.scope, e.task);
  auto it = last_task_count_.find(task_key);
  if (it != last_task_count_.end() && e.task_count < it->second) {
    add(Diagnostic::Code::counter_regression, e,
        "task episode counter went backwards (" +
            std::to_string(it->second) + " -> " +
            std::to_string(e.task_count) + ") at " + describe(e));
  }
  last_task_count_[task_key] = e.task_count;

  // Instance counts are compared per observing task: two tasks' emissions
  // can legitimately land in the log out of counter order.
  const auto inst_key = std::make_tuple(e.scope, e.instance, e.task);
  auto iit = last_instance_count_.find(inst_key);
  if (iit != last_instance_count_.end() && e.instance_count < iit->second) {
    add(Diagnostic::Code::counter_regression, e,
        "instance episode counter went backwards (" +
            std::to_string(iit->second) + " -> " +
            std::to_string(e.instance_count) + ") at " + describe(e));
  }
  last_instance_count_[inst_key] = e.instance_count;

  auto& floor = instance_floor_[std::make_pair(e.scope, e.instance)];
  floor = std::max(floor, e.instance_count);
}

void HlsChecker::check_exclusion(const SyncEvent& e) {
  const ScopeKey key{e.scope, e.instance};
  if (e.kind == SyncEvent::Kind::single_exec_begin) {
    auto it = active_executor_.find(key);
    if (it != active_executor_.end()) {
      add(Diagnostic::Code::single_overlap, e,
          "task " + std::to_string(e.task) +
              " elected single executor while task " +
              std::to_string(it->second) + " still runs the block on " +
              hls::to_string(e.scope) + " instance " +
              std::to_string(e.instance));
    }
    active_executor_[key] = e.task;
    if (e.task >= 0 && e.task < ntasks_) {
      ++single_depth_[static_cast<std::size_t>(e.task)];
    }
  } else if (e.kind == SyncEvent::Kind::single_exec_end) {
    auto it = active_executor_.find(key);
    if (it == active_executor_.end() || it->second != e.task) {
      add(Diagnostic::Code::structural, e,
          "single_exec_end without matching single_exec_begin: " +
              describe(e));
    } else {
      active_executor_.erase(it);
    }
    if (e.task >= 0 && e.task < ntasks_ &&
        single_depth_[static_cast<std::size_t>(e.task)] > 0) {
      --single_depth_[static_cast<std::size_t>(e.task)];
    }
  }
}

void HlsChecker::check_migration(const SyncEvent& e) {
  if (e.kind != SyncEvent::Kind::migrate_ok) return;
  migration_seen_ = true;
  if (e.task >= 0 && e.task < ntasks_ &&
      single_depth_[static_cast<std::size_t>(e.task)] > 0) {
    add(Diagnostic::Code::migrate_in_single, e,
        "task " + std::to_string(e.task) + " migrated to cpu " +
            std::to_string(e.cpu) + " while inside a single block");
  }
  // Mirror the §IV.A legality check against what the log proves: every
  // instance count the checker ever saw is a floor on the true count, so
  // floor(destination) > task's count means the counters could not have
  // matched when the move was accepted. (The converse needs an upper
  // bound the log cannot give, so wrong rejections are not flagged here.)
  for (const auto& [floor_key, floor] : instance_floor_) {
    const hls::CanonicalScope& scope = floor_key.first;
    const int dest_inst = sm_->instance_of(spec_of(scope), e.cpu);
    if (dest_inst != floor_key.second) continue;
    std::uint64_t task_cnt = 0;
    auto it = last_task_count_.find(std::make_pair(scope, e.task));
    if (it != last_task_count_.end()) task_cnt = it->second;
    if (floor > task_cnt) {
      add(Diagnostic::Code::migrate_mismatch, e,
          "task " + std::to_string(e.task) + " moved to cpu " +
              std::to_string(e.cpu) + " with " + hls::to_string(scope) +
              " count " + std::to_string(task_cnt) +
              " but destination instance " + std::to_string(dest_inst) +
              " had already completed " + std::to_string(floor) +
              " episodes");
    }
  }
}

void HlsChecker::check_rma(const SyncEvent& e) {
  const auto word_key = std::make_pair(e.instance, e.rma_target);
  switch (e.kind) {
    case SyncEvent::Kind::rma_lock: {
      LockState& ls = rma_locks_[word_key];
      // Win emits the lock event after the winning CAS and the unlock
      // event before the releasing store, so genuinely serialized
      // critical sections can never interleave in the log: any overlap
      // seen here is a real protocol violation.
      if (e.rma_excl) {
        if (ls.excl >= 0 || !ls.shared.empty()) {
          add(Diagnostic::Code::rma_lock_overlap, e,
              "task " + std::to_string(e.task) +
                  " acquired rank " + std::to_string(e.rma_target) +
                  "'s lock of window " + std::to_string(e.instance) +
                  " exclusively while " +
                  (ls.excl >= 0
                       ? "task " + std::to_string(ls.excl) + " holds it"
                       : std::to_string(ls.shared.size()) +
                             " shared holder(s) remain"));
        }
        ls.excl = e.task;
      } else {
        if (ls.excl >= 0) {
          add(Diagnostic::Code::rma_lock_overlap, e,
              "task " + std::to_string(e.task) + " acquired rank " +
                  std::to_string(e.rma_target) + "'s lock of window " +
                  std::to_string(e.instance) +
                  " shared while task " + std::to_string(ls.excl) +
                  " holds it exclusively");
        }
        ls.shared.insert(e.task);
      }
      break;
    }
    case SyncEvent::Kind::rma_unlock: {
      LockState& ls = rma_locks_[word_key];
      if (e.rma_excl) {
        if (ls.excl != e.task) {
          add(Diagnostic::Code::structural, e,
              "exclusive unlock by a task that does not hold the lock: " +
                  describe(e));
        } else {
          ls.excl = -1;
        }
      } else if (ls.shared.erase(e.task) == 0) {
        add(Diagnostic::Code::structural, e,
            "shared unlock by a task that does not hold the lock: " +
                describe(e));
      }
      break;
    }
    case SyncEvent::Kind::rma_fence_enter: {
      auto& last = rma_fence_epoch_[std::make_pair(e.instance, e.task)];
      if (e.task_count <= last) {
        add(Diagnostic::Code::counter_regression, e,
            "fence epoch did not advance (" + std::to_string(last) +
                " -> " + std::to_string(e.task_count) + ") at " +
                describe(e));
      }
      last = e.task_count;
      break;
    }
    default:
      break;  // accesses and fence exits carry no incremental invariant
  }
}

void HlsChecker::on_sync_event(const SyncEvent& e) {
  std::lock_guard<std::mutex> lk(mu_);
  log_.push_back(e);
  if (is_migrate(e.kind)) {
    check_migration(e);
    return;
  }
  // RMA events carry window coordinates, not scope/episode counters —
  // routing them through the scope checks would trip counter_regression
  // on the defaulted fields.
  if (is_rma(e.kind)) {
    check_rma(e);
    return;
  }
  check_counters(e);
  check_exclusion(e);
}

void HlsChecker::assign_episodes(std::vector<Episode>& episodes,
                                 std::vector<long>& episode_of) {
  episode_of.assign(log_.size(), -1);
  // Open episodes per (scope, instance), oldest first. Episodes complete
  // in generation order, so releases match FIFO; an arrival after the
  // release would have joined the *next* generation, hence sealing.
  std::map<ScopeKey, std::vector<long>> open;

  auto find_open = [&](const ScopeKey& key, auto&& pred) -> long {
    auto it = open.find(key);
    if (it == open.end()) return -1;
    for (long idx : it->second) {
      if (pred(episodes[static_cast<std::size_t>(idx)])) return idx;
    }
    return -1;
  };
  auto close_if_done = [&](const ScopeKey& key, long idx) {
    if (!episode_complete(episodes[static_cast<std::size_t>(idx)])) return;
    auto& vec = open[key];
    vec.erase(std::find(vec.begin(), vec.end(), idx));
  };

  for (std::size_t k = 0; k < log_.size(); ++k) {
    const SyncEvent& e = log_[k];
    const ScopeKey key{e.scope, e.instance};
    switch (e.kind) {
      case SyncEvent::Kind::barrier_enter:
      case SyncEvent::Kind::single_enter: {
        const bool single = e.kind == SyncEvent::Kind::single_enter;
        long idx = find_open(key, [&](const Episode& ep) {
          return ep.is_single == single && !ep.sealed &&
                 !contains(ep.participants, e.task);
        });
        if (idx < 0) {
          Episode ep;
          ep.is_single = single;
          ep.key = key;
          ep.uid = static_cast<long>(episodes.size());
          episodes.push_back(std::move(ep));
          idx = static_cast<long>(episodes.size()) - 1;
          open[key].push_back(idx);
        }
        episodes[static_cast<std::size_t>(idx)].participants.push_back(e.task);
        episode_of[k] = idx;
        break;
      }
      case SyncEvent::Kind::single_exec_begin: {
        const long idx = find_open(key, [&](const Episode& ep) {
          return ep.is_single && ep.executor < 0 &&
                 contains(ep.participants, e.task);
        });
        if (idx < 0) {
          add(Diagnostic::Code::structural, e,
              "single_exec_begin with no open episode: " + describe(e));
          break;
        }
        Episode& ep = episodes[static_cast<std::size_t>(idx)];
        ep.executor = e.task;
        ep.sealed = true;
        episode_of[k] = idx;
        break;
      }
      case SyncEvent::Kind::single_exec_end: {
        const long idx = find_open(key, [&](const Episode& ep) {
          return ep.is_single && ep.executor == e.task && !ep.exec_end_seen;
        });
        if (idx < 0) break;  // already flagged by check_exclusion
        episodes[static_cast<std::size_t>(idx)].exec_end_seen = true;
        episode_of[k] = idx;
        close_if_done(key, idx);
        break;
      }
      case SyncEvent::Kind::single_exit:
      case SyncEvent::Kind::barrier_exit: {
        const bool single = e.kind == SyncEvent::Kind::single_exit;
        const long idx = find_open(key, [&](const Episode& ep) {
          return ep.is_single == single && ep.executor != e.task &&
                 contains(ep.participants, e.task) &&
                 ep.exited.find(e.task) == ep.exited.end();
        });
        if (idx < 0) {
          add(Diagnostic::Code::structural, e,
              "exit with no matching arrival: " + describe(e));
          break;
        }
        Episode& ep = episodes[static_cast<std::size_t>(idx)];
        ep.sealed = true;
        ep.exited.insert(e.task);
        episode_of[k] = idx;
        close_if_done(key, idx);
        break;
      }
      default:
        break;  // nowait/migrate events take no part in episodes
    }
  }
}

bool HlsChecker::episode_complete(const Episode& ep) {
  if (ep.is_single) {
    return ep.executor >= 0 && ep.exec_end_seen &&
           ep.exited.size() + 1 == ep.participants.size();
  }
  return ep.sealed && ep.exited.size() == ep.participants.size();
}

bool HlsChecker::verify() {
  std::lock_guard<std::mutex> lk(mu_);

  std::vector<Episode> episodes;
  std::vector<long> episode_of;
  assign_episodes(episodes, episode_of);

  // ---- RMA reconstruction, pass 1: plan the hb messages -------------
  // Message tags continue after the episode uids so the two families
  // never collide (episodes use uid*2 / uid*2+1 with uid < size()).
  long next_uid = static_cast<long>(episodes.size());
  struct Msg {
    int peer;
    long tag;
  };
  std::map<std::size_t, std::vector<Msg>> rma_sends;  // log index -> sends
  std::map<std::size_t, std::vector<Msg>> rma_recvs;  // log index -> recvs

  // Fence groups, keyed (window, epoch). A group only contributes edges
  // when every rank that ever fences on the window entered AND exited
  // this epoch — a real fence cannot complete with a participant missing,
  // so anything less is a truncated log (crash, throw) and modeling it
  // would leave unmatched receives.
  {
    std::map<int, std::set<int>> fencers;  // window -> every fencing task
    struct Group {
      std::set<int> enters, exits;
      long uid = -1;
    };
    std::map<std::pair<int, std::uint64_t>, Group> groups;
    for (const SyncEvent& e : log_) {
      if (e.kind == SyncEvent::Kind::rma_fence_enter) {
        fencers[e.instance].insert(e.task);
        groups[{e.instance, e.task_count}].enters.insert(e.task);
      } else if (e.kind == SyncEvent::Kind::rma_fence_exit) {
        groups[{e.instance, e.task_count}].exits.insert(e.task);
      }
    }
    for (auto& [key, g] : groups) {
      const std::set<int>& all = fencers[key.first];
      if (all.size() < 2) continue;  // no cross-task edge to model
      if (g.enters == all && g.exits == all) g.uid = next_uid++;
    }
    for (std::size_t k = 0; k < log_.size(); ++k) {
      const SyncEvent& e = log_[k];
      if (e.kind != SyncEvent::Kind::rma_fence_enter &&
          e.kind != SyncEvent::Kind::rma_fence_exit) {
        continue;
      }
      auto git = groups.find({e.instance, e.task_count});
      if (git == groups.end() || git->second.uid < 0) continue;
      const Group& g = git->second;
      const int rep = *g.enters.begin();
      const long in_tag = g.uid * 2;
      const long out_tag = g.uid * 2 + 1;
      if (e.kind == SyncEvent::Kind::rma_fence_enter) {
        // Every participant's pre-fence work flows to the representative…
        if (e.task != rep) rma_sends[k].push_back({rep, in_tag});
      } else if (e.task == rep) {
        // …who forwards the merged front to everyone at its exit (Win
        // logs an enter before publishing the epoch and an exit only
        // after acquiring every publication, so enters precede exits in
        // the log and every send lands before its receive).
        for (int p : g.enters) {
          if (p != rep) rma_recvs[k].push_back({p, in_tag});
        }
        for (int p : g.enters) {
          if (p != rep) rma_sends[k].push_back({p, out_tag});
        }
      } else {
        rma_recvs[k].push_back({rep, out_tag});
      }
    }
  }

  // Lock-release chains per (window, target) word: an exclusive
  // acquisition synchronizes with the previous exclusive release and
  // every shared release since (the CAS from 0 reads the end of that
  // release sequence); a shared acquisition synchronizes with the
  // previous exclusive release alone. Win's emission discipline (lock
  // after the CAS, unlock before the store) guarantees each edge's
  // unlock precedes its lock in the log.
  {
    struct WordChain {
      long last_excl_unlock = -1;          // log index, -1 none
      std::vector<long> shared_unlocks;    // since last_excl_unlock
    };
    std::map<std::pair<int, int>, WordChain> chains;
    auto edge = [&](long from, std::size_t to) {
      const int src = log_[static_cast<std::size_t>(from)].task;
      const int dst = log_[to].task;
      if (src == dst) return;  // program order already covers it
      const long tag = (next_uid++) * 2;
      rma_sends[static_cast<std::size_t>(from)].push_back({dst, tag});
      rma_recvs[to].push_back({src, tag});
    };
    for (std::size_t k = 0; k < log_.size(); ++k) {
      const SyncEvent& e = log_[k];
      if (e.kind == SyncEvent::Kind::rma_lock) {
        WordChain& c = chains[{e.instance, e.rma_target}];
        if (c.last_excl_unlock >= 0) edge(c.last_excl_unlock, k);
        if (e.rma_excl) {
          for (long s : c.shared_unlocks) edge(s, k);
        }
      } else if (e.kind == SyncEvent::Kind::rma_unlock) {
        WordChain& c = chains[{e.instance, e.rma_target}];
        if (e.rma_excl) {
          c.last_excl_unlock = static_cast<long>(k);
          c.shared_unlocks.clear();
        } else {
          c.shared_unlocks.push_back(static_cast<long>(k));
        }
      }
    }
  }

  // Rebuild the log as an hb::Trace: per episode, every participant sends
  // to the representative (the single executor, or the lowest-id
  // participant for a barrier) on arrival; the representative receives
  // them all at its release point, does the episode's write if it is a
  // single block, and sends each participant its release, received at the
  // participant's exit. Tags are unique per episode and direction, so
  // matching is unambiguous. Only complete episodes are emitted — a
  // partial one would leave unmatched receives the Analyzer rejects.
  hb::Trace trace(ntasks_);
  auto rep_of = [](const Episode& ep) {
    return ep.is_single
               ? ep.executor
               : *std::min_element(ep.participants.begin(),
                                   ep.participants.end());
  };
  auto var_of = [](const Episode& ep) {
    return "single:" + hls::to_string(ep.key.first) + ":" +
           std::to_string(ep.key.second);
  };

  struct SingleWrite {
    int event_id;
    long episode;
  };
  std::map<ScopeKey, std::vector<SingleWrite>> writes;

  /// One one-sided access as a node in the trace, for the pairwise
  /// conflict scan below.
  struct RmaAccess {
    int event_id;
    std::size_t log_idx;
  };
  std::vector<RmaAccess> accesses;
  long next_value = next_uid;  // unique write values for access nodes

  for (std::size_t k = 0; k < log_.size(); ++k) {
    if (is_rma(log_[k].kind)) {
      const SyncEvent& re = log_[k];
      if (re.task < 0 || re.task >= ntasks_) continue;
      // Receives, then the access node, then sends: a fence exit's
      // incoming edges land before its outgoing ones, and accesses sit
      // between the epoch edges that order them.
      auto rit = rma_recvs.find(k);
      if (rit != rma_recvs.end()) {
        for (const Msg& m : rit->second) trace.recv(re.task, m.peer, m.tag);
      }
      if (is_rma_access(re.kind)) {
        accesses.push_back({static_cast<int>(trace.events().size()), k});
        trace.write(re.task,
                    "rma:" + std::to_string(re.instance) + ":" +
                        std::to_string(re.rma_target),
                    next_value++);
      }
      auto sit = rma_sends.find(k);
      if (sit != rma_sends.end()) {
        for (const Msg& m : sit->second) trace.send(re.task, m.peer, m.tag);
      }
      continue;
    }
    const long idx = episode_of[k];
    if (idx < 0) continue;
    const Episode& ep = episodes[static_cast<std::size_t>(idx)];
    if (!episode_complete(ep)) continue;
    const SyncEvent& e = log_[k];
    const int rep = rep_of(ep);
    const long in_tag = ep.uid * 2;
    const long out_tag = ep.uid * 2 + 1;
    const bool release_point =
        e.kind == SyncEvent::Kind::single_exec_begin ||
        (e.kind == SyncEvent::Kind::barrier_exit && e.task == rep);
    if (is_enter(e.kind)) {
      if (e.task != rep) trace.send(e.task, rep, in_tag);
    }
    if (release_point) {
      for (int p : ep.participants) {
        if (p != rep) trace.recv(rep, p, in_tag);
      }
      if (ep.is_single) {
        writes[ep.key].push_back(
            {static_cast<int>(trace.events().size()), ep.uid});
        trace.write(rep, var_of(ep), ep.uid);
      }
    }
    if (e.kind == SyncEvent::Kind::single_exec_end ||
        (e.kind == SyncEvent::Kind::barrier_exit && e.task == rep)) {
      for (int p : ep.participants) {
        if (p != rep) trace.send(rep, p, out_tag);
      }
    }
    if ((e.kind == SyncEvent::Kind::single_exit ||
         e.kind == SyncEvent::Kind::barrier_exit) &&
        e.task != rep) {
      trace.recv(e.task, rep, out_tag);
    }
  }

  if (!trace.events().empty()) {
    try {
      hb::Analyzer hb(trace);
      for (const auto& [key, ws] : writes) {
        for (std::size_t i = 0; i < ws.size(); ++i) {
          for (std::size_t j = i + 1; j < ws.size(); ++j) {
            if (!hb.parallel(ws[i].event_id, ws[j].event_id)) continue;
            const Episode& a = episodes[static_cast<std::size_t>(ws[i].episode)];
            const Episode& b = episodes[static_cast<std::size_t>(ws[j].episode)];
            if (migration_seen_) {
              // After a legal move, consecutive episodes of one instance
              // can have disjoint participant sets with no hb edge between
              // them; only flag pairs a shared participant should order.
              bool shared = false;
              for (int p : a.participants) {
                if (contains(b.participants, p)) shared = true;
              }
              if (!shared) continue;
            }
            Diagnostic d;
            d.code = Diagnostic::Code::single_unordered;
            d.scope = key.first;
            d.instance = key.second;
            d.task = a.executor;
            d.message =
                "single blocks of episodes " + std::to_string(a.uid) +
                " (executor task " + std::to_string(a.executor) + ") and " +
                std::to_string(b.uid) + " (executor task " +
                std::to_string(b.executor) + ") on " +
                hls::to_string(key.first) + " instance " +
                std::to_string(key.second) +
                " are not ordered by happens-before";
            diags_.push_back(std::move(d));
          }
        }
      }
      // Conflicting one-sided accesses: same window, same target rank,
      // overlapping byte ranges, not both reads — racy unless some epoch
      // (fence group or lock chain) orders them. Win::accumulate applies
      // the ReduceFn without element atomicity, so unlike MPI_Accumulate
      // two concurrent accumulates DO conflict here.
      for (std::size_t i = 0; i < accesses.size(); ++i) {
        const SyncEvent& a = log_[accesses[i].log_idx];
        for (std::size_t j = i + 1; j < accesses.size(); ++j) {
          const SyncEvent& b = log_[accesses[j].log_idx];
          if (a.instance != b.instance || a.rma_target != b.rma_target) {
            continue;
          }
          if (a.task == b.task) continue;  // program order
          if (a.kind == SyncEvent::Kind::rma_get &&
              b.kind == SyncEvent::Kind::rma_get) {
            continue;
          }
          if (a.rma_offset + a.rma_bytes <= b.rma_offset ||
              b.rma_offset + b.rma_bytes <= a.rma_offset) {
            continue;
          }
          if (!hb.parallel(accesses[i].event_id, accesses[j].event_id)) {
            continue;
          }
          Diagnostic d;
          d.code = Diagnostic::Code::rma_race;
          d.task = a.task;
          d.instance = a.instance;
          d.message = "one-sided accesses race on window " +
                      std::to_string(a.instance) + " rank " +
                      std::to_string(a.rma_target) + ": " + describe(a) +
                      " and " + describe(b) +
                      " overlap and no epoch orders them";
          diags_.push_back(std::move(d));
        }
      }
    } catch (const hls::HlsError& err) {
      Diagnostic d;
      d.code = Diagnostic::Code::structural;
      d.message = std::string("event log cannot be replayed: ") + err.what();
      diags_.push_back(std::move(d));
    }
  }
  return diags_.empty();
}

bool HlsChecker::ok() const {
  std::lock_guard<std::mutex> lk(mu_);
  return diags_.empty();
}

std::vector<Diagnostic> HlsChecker::violations() const {
  std::lock_guard<std::mutex> lk(mu_);
  return diags_;
}

std::string HlsChecker::report() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::ostringstream os;
  for (const Diagnostic& d : diags_) {
    os << "[" << to_string(d.code) << "] " << d.message << "\n";
  }
  return os.str();
}

std::size_t HlsChecker::events_recorded() const {
  std::lock_guard<std::mutex> lk(mu_);
  return log_.size();
}

std::vector<hls::SyncEvent> HlsChecker::events() const {
  std::lock_guard<std::mutex> lk(mu_);
  return log_;
}

}  // namespace hlsmpc::check
