#include "check/hls_checker.hpp"

#include <algorithm>
#include <sstream>

#include "hb/analyzer.hpp"
#include "hb/trace.hpp"

namespace hlsmpc::check {

namespace {

using hls::SyncEvent;

bool is_enter(SyncEvent::Kind k) {
  return k == SyncEvent::Kind::barrier_enter ||
         k == SyncEvent::Kind::single_enter;
}

bool is_migrate(SyncEvent::Kind k) {
  return k == SyncEvent::Kind::migrate_ok ||
         k == SyncEvent::Kind::migrate_rejected;
}

topo::ScopeSpec spec_of(const hls::CanonicalScope& scope) {
  return topo::ScopeSpec{scope.kind, scope.cache_level};
}

bool contains(const std::vector<int>& v, int x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

std::string describe(const SyncEvent& e) {
  std::ostringstream os;
  os << hls::to_string(e.kind) << " task=" << e.task << " cpu=" << e.cpu;
  if (!is_migrate(e.kind)) {
    os << " scope=" << hls::to_string(e.scope) << " inst=" << e.instance
       << " task_count=" << e.task_count
       << " instance_count=" << e.instance_count;
  }
  return os.str();
}

}  // namespace

const char* to_string(Diagnostic::Code c) {
  switch (c) {
    case Diagnostic::Code::single_overlap:
      return "single_overlap";
    case Diagnostic::Code::single_unordered:
      return "single_unordered";
    case Diagnostic::Code::counter_regression:
      return "counter_regression";
    case Diagnostic::Code::migrate_mismatch:
      return "migrate_mismatch";
    case Diagnostic::Code::migrate_in_single:
      return "migrate_in_single";
    case Diagnostic::Code::structural:
      return "structural";
  }
  return "?";
}

HlsChecker::HlsChecker(const topo::ScopeMap& sm, int ntasks)
    : sm_(&sm),
      ntasks_(ntasks),
      single_depth_(static_cast<std::size_t>(std::max(0, ntasks)), 0) {
  if (ntasks < 1) throw hls::HlsError("HlsChecker: need at least one task");
}

void HlsChecker::add(Diagnostic::Code code, const SyncEvent& e,
                     std::string msg) {
  Diagnostic d;
  d.code = code;
  d.message = std::move(msg);
  d.task = e.task;
  d.scope = e.scope;
  d.instance = e.instance;
  diags_.push_back(std::move(d));
}

void HlsChecker::check_counters(const SyncEvent& e) {
  const auto task_key = std::make_pair(e.scope, e.task);
  auto it = last_task_count_.find(task_key);
  if (it != last_task_count_.end() && e.task_count < it->second) {
    add(Diagnostic::Code::counter_regression, e,
        "task episode counter went backwards (" +
            std::to_string(it->second) + " -> " +
            std::to_string(e.task_count) + ") at " + describe(e));
  }
  last_task_count_[task_key] = e.task_count;

  // Instance counts are compared per observing task: two tasks' emissions
  // can legitimately land in the log out of counter order.
  const auto inst_key = std::make_tuple(e.scope, e.instance, e.task);
  auto iit = last_instance_count_.find(inst_key);
  if (iit != last_instance_count_.end() && e.instance_count < iit->second) {
    add(Diagnostic::Code::counter_regression, e,
        "instance episode counter went backwards (" +
            std::to_string(iit->second) + " -> " +
            std::to_string(e.instance_count) + ") at " + describe(e));
  }
  last_instance_count_[inst_key] = e.instance_count;

  auto& floor = instance_floor_[std::make_pair(e.scope, e.instance)];
  floor = std::max(floor, e.instance_count);
}

void HlsChecker::check_exclusion(const SyncEvent& e) {
  const ScopeKey key{e.scope, e.instance};
  if (e.kind == SyncEvent::Kind::single_exec_begin) {
    auto it = active_executor_.find(key);
    if (it != active_executor_.end()) {
      add(Diagnostic::Code::single_overlap, e,
          "task " + std::to_string(e.task) +
              " elected single executor while task " +
              std::to_string(it->second) + " still runs the block on " +
              hls::to_string(e.scope) + " instance " +
              std::to_string(e.instance));
    }
    active_executor_[key] = e.task;
    if (e.task >= 0 && e.task < ntasks_) {
      ++single_depth_[static_cast<std::size_t>(e.task)];
    }
  } else if (e.kind == SyncEvent::Kind::single_exec_end) {
    auto it = active_executor_.find(key);
    if (it == active_executor_.end() || it->second != e.task) {
      add(Diagnostic::Code::structural, e,
          "single_exec_end without matching single_exec_begin: " +
              describe(e));
    } else {
      active_executor_.erase(it);
    }
    if (e.task >= 0 && e.task < ntasks_ &&
        single_depth_[static_cast<std::size_t>(e.task)] > 0) {
      --single_depth_[static_cast<std::size_t>(e.task)];
    }
  }
}

void HlsChecker::check_migration(const SyncEvent& e) {
  if (e.kind != SyncEvent::Kind::migrate_ok) return;
  migration_seen_ = true;
  if (e.task >= 0 && e.task < ntasks_ &&
      single_depth_[static_cast<std::size_t>(e.task)] > 0) {
    add(Diagnostic::Code::migrate_in_single, e,
        "task " + std::to_string(e.task) + " migrated to cpu " +
            std::to_string(e.cpu) + " while inside a single block");
  }
  // Mirror the §IV.A legality check against what the log proves: every
  // instance count the checker ever saw is a floor on the true count, so
  // floor(destination) > task's count means the counters could not have
  // matched when the move was accepted. (The converse needs an upper
  // bound the log cannot give, so wrong rejections are not flagged here.)
  for (const auto& [floor_key, floor] : instance_floor_) {
    const hls::CanonicalScope& scope = floor_key.first;
    const int dest_inst = sm_->instance_of(spec_of(scope), e.cpu);
    if (dest_inst != floor_key.second) continue;
    std::uint64_t task_cnt = 0;
    auto it = last_task_count_.find(std::make_pair(scope, e.task));
    if (it != last_task_count_.end()) task_cnt = it->second;
    if (floor > task_cnt) {
      add(Diagnostic::Code::migrate_mismatch, e,
          "task " + std::to_string(e.task) + " moved to cpu " +
              std::to_string(e.cpu) + " with " + hls::to_string(scope) +
              " count " + std::to_string(task_cnt) +
              " but destination instance " + std::to_string(dest_inst) +
              " had already completed " + std::to_string(floor) +
              " episodes");
    }
  }
}

void HlsChecker::on_sync_event(const SyncEvent& e) {
  std::lock_guard<std::mutex> lk(mu_);
  log_.push_back(e);
  if (is_migrate(e.kind)) {
    check_migration(e);
    return;
  }
  check_counters(e);
  check_exclusion(e);
}

void HlsChecker::assign_episodes(std::vector<Episode>& episodes,
                                 std::vector<long>& episode_of) {
  episode_of.assign(log_.size(), -1);
  // Open episodes per (scope, instance), oldest first. Episodes complete
  // in generation order, so releases match FIFO; an arrival after the
  // release would have joined the *next* generation, hence sealing.
  std::map<ScopeKey, std::vector<long>> open;

  auto find_open = [&](const ScopeKey& key, auto&& pred) -> long {
    auto it = open.find(key);
    if (it == open.end()) return -1;
    for (long idx : it->second) {
      if (pred(episodes[static_cast<std::size_t>(idx)])) return idx;
    }
    return -1;
  };
  auto close_if_done = [&](const ScopeKey& key, long idx) {
    if (!episode_complete(episodes[static_cast<std::size_t>(idx)])) return;
    auto& vec = open[key];
    vec.erase(std::find(vec.begin(), vec.end(), idx));
  };

  for (std::size_t k = 0; k < log_.size(); ++k) {
    const SyncEvent& e = log_[k];
    const ScopeKey key{e.scope, e.instance};
    switch (e.kind) {
      case SyncEvent::Kind::barrier_enter:
      case SyncEvent::Kind::single_enter: {
        const bool single = e.kind == SyncEvent::Kind::single_enter;
        long idx = find_open(key, [&](const Episode& ep) {
          return ep.is_single == single && !ep.sealed &&
                 !contains(ep.participants, e.task);
        });
        if (idx < 0) {
          Episode ep;
          ep.is_single = single;
          ep.key = key;
          ep.uid = static_cast<long>(episodes.size());
          episodes.push_back(std::move(ep));
          idx = static_cast<long>(episodes.size()) - 1;
          open[key].push_back(idx);
        }
        episodes[static_cast<std::size_t>(idx)].participants.push_back(e.task);
        episode_of[k] = idx;
        break;
      }
      case SyncEvent::Kind::single_exec_begin: {
        const long idx = find_open(key, [&](const Episode& ep) {
          return ep.is_single && ep.executor < 0 &&
                 contains(ep.participants, e.task);
        });
        if (idx < 0) {
          add(Diagnostic::Code::structural, e,
              "single_exec_begin with no open episode: " + describe(e));
          break;
        }
        Episode& ep = episodes[static_cast<std::size_t>(idx)];
        ep.executor = e.task;
        ep.sealed = true;
        episode_of[k] = idx;
        break;
      }
      case SyncEvent::Kind::single_exec_end: {
        const long idx = find_open(key, [&](const Episode& ep) {
          return ep.is_single && ep.executor == e.task && !ep.exec_end_seen;
        });
        if (idx < 0) break;  // already flagged by check_exclusion
        episodes[static_cast<std::size_t>(idx)].exec_end_seen = true;
        episode_of[k] = idx;
        close_if_done(key, idx);
        break;
      }
      case SyncEvent::Kind::single_exit:
      case SyncEvent::Kind::barrier_exit: {
        const bool single = e.kind == SyncEvent::Kind::single_exit;
        const long idx = find_open(key, [&](const Episode& ep) {
          return ep.is_single == single && ep.executor != e.task &&
                 contains(ep.participants, e.task) &&
                 ep.exited.find(e.task) == ep.exited.end();
        });
        if (idx < 0) {
          add(Diagnostic::Code::structural, e,
              "exit with no matching arrival: " + describe(e));
          break;
        }
        Episode& ep = episodes[static_cast<std::size_t>(idx)];
        ep.sealed = true;
        ep.exited.insert(e.task);
        episode_of[k] = idx;
        close_if_done(key, idx);
        break;
      }
      default:
        break;  // nowait/migrate events take no part in episodes
    }
  }
}

bool HlsChecker::episode_complete(const Episode& ep) {
  if (ep.is_single) {
    return ep.executor >= 0 && ep.exec_end_seen &&
           ep.exited.size() + 1 == ep.participants.size();
  }
  return ep.sealed && ep.exited.size() == ep.participants.size();
}

bool HlsChecker::verify() {
  std::lock_guard<std::mutex> lk(mu_);

  std::vector<Episode> episodes;
  std::vector<long> episode_of;
  assign_episodes(episodes, episode_of);

  // Rebuild the log as an hb::Trace: per episode, every participant sends
  // to the representative (the single executor, or the lowest-id
  // participant for a barrier) on arrival; the representative receives
  // them all at its release point, does the episode's write if it is a
  // single block, and sends each participant its release, received at the
  // participant's exit. Tags are unique per episode and direction, so
  // matching is unambiguous. Only complete episodes are emitted — a
  // partial one would leave unmatched receives the Analyzer rejects.
  hb::Trace trace(ntasks_);
  auto rep_of = [](const Episode& ep) {
    return ep.is_single
               ? ep.executor
               : *std::min_element(ep.participants.begin(),
                                   ep.participants.end());
  };
  auto var_of = [](const Episode& ep) {
    return "single:" + hls::to_string(ep.key.first) + ":" +
           std::to_string(ep.key.second);
  };

  struct SingleWrite {
    int event_id;
    long episode;
  };
  std::map<ScopeKey, std::vector<SingleWrite>> writes;

  for (std::size_t k = 0; k < log_.size(); ++k) {
    const long idx = episode_of[k];
    if (idx < 0) continue;
    const Episode& ep = episodes[static_cast<std::size_t>(idx)];
    if (!episode_complete(ep)) continue;
    const SyncEvent& e = log_[k];
    const int rep = rep_of(ep);
    const long in_tag = ep.uid * 2;
    const long out_tag = ep.uid * 2 + 1;
    const bool release_point =
        e.kind == SyncEvent::Kind::single_exec_begin ||
        (e.kind == SyncEvent::Kind::barrier_exit && e.task == rep);
    if (is_enter(e.kind)) {
      if (e.task != rep) trace.send(e.task, rep, in_tag);
    }
    if (release_point) {
      for (int p : ep.participants) {
        if (p != rep) trace.recv(rep, p, in_tag);
      }
      if (ep.is_single) {
        writes[ep.key].push_back(
            {static_cast<int>(trace.events().size()), ep.uid});
        trace.write(rep, var_of(ep), ep.uid);
      }
    }
    if (e.kind == SyncEvent::Kind::single_exec_end ||
        (e.kind == SyncEvent::Kind::barrier_exit && e.task == rep)) {
      for (int p : ep.participants) {
        if (p != rep) trace.send(rep, p, out_tag);
      }
    }
    if ((e.kind == SyncEvent::Kind::single_exit ||
         e.kind == SyncEvent::Kind::barrier_exit) &&
        e.task != rep) {
      trace.recv(e.task, rep, out_tag);
    }
  }

  if (!trace.events().empty()) {
    try {
      hb::Analyzer hb(trace);
      for (const auto& [key, ws] : writes) {
        for (std::size_t i = 0; i < ws.size(); ++i) {
          for (std::size_t j = i + 1; j < ws.size(); ++j) {
            if (!hb.parallel(ws[i].event_id, ws[j].event_id)) continue;
            const Episode& a = episodes[static_cast<std::size_t>(ws[i].episode)];
            const Episode& b = episodes[static_cast<std::size_t>(ws[j].episode)];
            if (migration_seen_) {
              // After a legal move, consecutive episodes of one instance
              // can have disjoint participant sets with no hb edge between
              // them; only flag pairs a shared participant should order.
              bool shared = false;
              for (int p : a.participants) {
                if (contains(b.participants, p)) shared = true;
              }
              if (!shared) continue;
            }
            Diagnostic d;
            d.code = Diagnostic::Code::single_unordered;
            d.scope = key.first;
            d.instance = key.second;
            d.task = a.executor;
            d.message =
                "single blocks of episodes " + std::to_string(a.uid) +
                " (executor task " + std::to_string(a.executor) + ") and " +
                std::to_string(b.uid) + " (executor task " +
                std::to_string(b.executor) + ") on " +
                hls::to_string(key.first) + " instance " +
                std::to_string(key.second) +
                " are not ordered by happens-before";
            diags_.push_back(std::move(d));
          }
        }
      }
    } catch (const hls::HlsError& err) {
      Diagnostic d;
      d.code = Diagnostic::Code::structural;
      d.message = std::string("event log cannot be replayed: ") + err.what();
      diags_.push_back(std::move(d));
    }
  }
  return diags_.empty();
}

bool HlsChecker::ok() const {
  std::lock_guard<std::mutex> lk(mu_);
  return diags_.empty();
}

std::vector<Diagnostic> HlsChecker::violations() const {
  std::lock_guard<std::mutex> lk(mu_);
  return diags_;
}

std::string HlsChecker::report() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::ostringstream os;
  for (const Diagnostic& d : diags_) {
    os << "[" << to_string(d.code) << "] " << d.message << "\n";
  }
  return os.str();
}

std::size_t HlsChecker::events_recorded() const {
  std::lock_guard<std::mutex> lk(mu_);
  return log_.size();
}

std::vector<hls::SyncEvent> HlsChecker::events() const {
  std::lock_guard<std::mutex> lk(mu_);
  return log_;
}

}  // namespace hlsmpc::check
