// Runtime verifier for the paper's HLS correctness conditions.
//
// Installed as a SyncObserver, the checker consumes the SyncEvent stream
// and verifies, incrementally:
//  - single-block mutual exclusion: never two elected executors on one
//    scope instance at the same time;
//  - counter monotonicity: per-task and per-instance episode counters in
//    SyncManager never go backwards;
//  - migration legality (§IV.A): MPC_Move must only succeed when the
//    task's episode counters match the destination instance's, and never
//    while the task is inside a single block.
//  - RMA epoch discipline (mpi/rma.hpp): at most one exclusive holder
//    (and no readers beside a writer) per window lock word, and strictly
//    increasing fence epochs per rank.
// verify() then re-checks exclusion with the vector-clock machinery from
// src/hb/: each completed episode is rebuilt from the log and modeled as
// message traffic (participants -> representative -> participants), each
// single block as a write on its instance; two writes on one instance
// that the happens-before order leaves parallel are a violation. RMA
// events join the same trace — fence groups as all-to-all message
// exchanges through a representative, lock-release chains as messages
// from each unlock to the lock acquisitions it released, and every
// put/get/accumulate as an access node — so conflicting one-sided
// accesses that neither an epoch nor a lock orders are flagged as races.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "hls/sync.hpp"
#include "topo/scope_map.hpp"

namespace hlsmpc::check {

struct Diagnostic {
  enum class Code {
    single_overlap,      ///< two executors active on one instance at once
    single_unordered,    ///< hb analysis: two single blocks left parallel
    counter_regression,  ///< an episode counter went backwards
    migrate_mismatch,    ///< move accepted despite counter mismatch
    migrate_in_single,   ///< move accepted inside a single block
    rma_race,            ///< hb analysis: conflicting one-sided accesses
                         ///< that no epoch orders
    rma_lock_overlap,    ///< RMA lock protocol violated (incompatible
                         ///< holders observed concurrently)
    structural,          ///< malformed event stream
  };

  Code code = Code::structural;
  std::string message;
  int task = -1;
  hls::CanonicalScope scope;
  int instance = -1;
};

const char* to_string(Diagnostic::Code c);

class HlsChecker final : public hls::SyncObserver {
 public:
  HlsChecker(const topo::ScopeMap& sm, int ntasks);

  /// SyncObserver: thread-safe; records the event and runs the
  /// incremental checks.
  void on_sync_event(const hls::SyncEvent& e) override;

  /// Post-hoc pass: rebuild episodes from the log, derive happens-before
  /// with hb::Analyzer, and flag parallel single blocks per instance.
  /// Returns ok() afterwards. Call once tasks have joined.
  bool verify();

  bool ok() const;
  std::vector<Diagnostic> violations() const;
  /// Human-readable summary of all violations ("" when ok).
  std::string report() const;

  std::size_t events_recorded() const;
  std::vector<hls::SyncEvent> events() const;

 private:
  using ScopeKey = std::pair<hls::CanonicalScope, int>;  // (scope, instance)

  /// One reconstructed barrier/single episode on a scope instance.
  struct Episode {
    bool is_single = false;
    ScopeKey key;
    std::vector<int> participants;  // in arrival (log) order
    int executor = -1;              // single only
    bool sealed = false;            // release observed: no more arrivals
    bool exec_end_seen = false;
    std::set<int> exited;
    long uid = 0;  // globally unique; doubles as the message tag base
  };

  void add(Diagnostic::Code code, const hls::SyncEvent& e, std::string msg);
  void check_counters(const hls::SyncEvent& e);
  void check_exclusion(const hls::SyncEvent& e);
  void check_migration(const hls::SyncEvent& e);
  /// Incremental RMA checks: lock-word holder compatibility and fence
  /// epoch monotonicity. RMA events carry no scope, so they route here
  /// and never through check_counters/check_exclusion.
  void check_rma(const hls::SyncEvent& e);
  /// Pass 1 of verify(): episode reconstruction. Fills `episodes` and the
  /// per-log-index assignment (-1 = not part of an episode).
  void assign_episodes(std::vector<Episode>& episodes,
                       std::vector<long>& episode_of);
  static bool episode_complete(const Episode& ep);

  const topo::ScopeMap* sm_;
  int ntasks_;

  mutable std::mutex mu_;
  std::vector<hls::SyncEvent> log_;
  std::vector<Diagnostic> diags_;

  // Incremental state.
  std::map<std::pair<hls::CanonicalScope, int>, std::uint64_t>
      last_task_count_;  // (scope, task) -> last emitted count
  std::map<std::tuple<hls::CanonicalScope, int, int>, std::uint64_t>
      last_instance_count_;  // (scope, inst, task) -> last count seen by task
  std::map<std::pair<hls::CanonicalScope, int>, std::uint64_t>
      instance_floor_;  // (scope, inst) -> max instance count ever observed
  std::map<ScopeKey, int> active_executor_;
  std::vector<int> single_depth_;  // per task
  bool migration_seen_ = false;

  // Incremental RMA state, keyed by (window id, target rank).
  struct LockState {
    int excl = -1;          // task holding exclusively, -1 none
    std::set<int> shared;   // tasks holding shared
  };
  std::map<std::pair<int, int>, LockState> rma_locks_;
  std::map<std::pair<int, int>, std::uint64_t>
      rma_fence_epoch_;  // (win, task) -> last fence epoch entered
};

}  // namespace hlsmpc::check
