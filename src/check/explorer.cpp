#include "check/explorer.hpp"

#include <algorithm>
#include <memory>
#include <vector>

namespace hlsmpc::check {

namespace {

ScheduleTrace prefix(const ScheduleTrace& t, std::size_t len) {
  ScheduleTrace p;
  p.picks.assign(t.picks.begin(),
                 t.picks.begin() + static_cast<std::ptrdiff_t>(
                                       std::min(len, t.picks.size())));
  return p;
}

}  // namespace

bool ScheduleExplorer::fails(const Attempt& attempt,
                             const ScheduleTrace& trace,
                             std::string* error) const {
  TracePolicy policy(trace);
  DeterministicExecutor ex(policy, opts_.max_steps);
  try {
    attempt(ex);
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    return true;
  } catch (...) {
    if (error != nullptr) *error = "(non-standard exception)";
    return true;
  }
  return false;
}

void ScheduleExplorer::replay(const Attempt& attempt,
                              const ScheduleTrace& trace) const {
  TracePolicy policy(trace);
  DeterministicExecutor ex(policy, opts_.max_steps);
  attempt(ex);
}

ScheduleTrace ScheduleExplorer::shrink(const Attempt& attempt,
                                       ScheduleTrace failing) const {
  int runs_left = opts_.max_shrink_runs;
  auto still_fails = [&](const ScheduleTrace& t) {
    if (runs_left <= 0) return false;
    --runs_left;
    return fails(attempt, t, nullptr);
  };

  // 1. Truncation: the recorded trace of a deadlocked run is as long as
  //    the step budget, but the damage is usually done in the first few
  //    picks. Binary-search the shortest failing prefix (TracePolicy's
  //    fair fallback completes the run deterministically past the prefix).
  std::size_t lo = 0;
  std::size_t hi = failing.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (still_fails(prefix(failing, mid))) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  ScheduleTrace best = prefix(failing, hi);
  if (!fails(attempt, best, nullptr)) return failing;  // non-monotone guard

  // 2. Pick removal: drop individual decisions that the failure does not
  //    depend on, back to front, iterating to a fixpoint.
  if (best.size() <= 512) {
    bool changed = true;
    while (changed && runs_left > 0) {
      changed = false;
      for (std::size_t i = best.size(); i-- > 0 && runs_left > 0;) {
        ScheduleTrace candidate = best;
        candidate.picks.erase(candidate.picks.begin() +
                              static_cast<std::ptrdiff_t>(i));
        if (still_fails(candidate)) {
          best = std::move(candidate);
          changed = true;
        }
      }
    }
  }
  return best;
}

ExploreResult ScheduleExplorer::explore(const Attempt& attempt) {
  ExploreResult result;

  // Systematic sweep first: plain and rotated round-robin with growing
  // preemption quanta cover the "almost sequential" schedules a random
  // walk rarely produces.
  std::vector<std::unique_ptr<SchedulePolicy>> systematic;
  for (const int quantum : {1, 2, 3, 4}) {
    for (int rotation = 0; rotation < 4; ++rotation) {
      systematic.push_back(
          std::make_unique<RoundRobinPolicy>(quantum, rotation));
    }
  }

  for (int i = 0; i < opts_.schedules; ++i) {
    std::unique_ptr<SchedulePolicy> random_policy;
    SchedulePolicy* policy = nullptr;
    if (i < static_cast<int>(systematic.size())) {
      policy = systematic[static_cast<std::size_t>(i)].get();
    } else {
      random_policy = std::make_unique<RandomPolicy>(
          opts_.seed + static_cast<std::uint64_t>(i));
      policy = random_policy.get();
    }
    DeterministicExecutor ex(*policy, opts_.max_steps);
    ++result.schedules_run;
    try {
      attempt(ex);
    } catch (const std::exception& e) {
      result.ok = false;
      result.failing_schedule = i;
      result.error = e.what();
      result.failing_trace = ex.last_trace();
    } catch (...) {
      result.ok = false;
      result.failing_schedule = i;
      result.error = "(non-standard exception)";
      result.failing_trace = ex.last_trace();
    }
    if (!result.ok) break;
  }

  if (!result.ok) {
    if (opts_.shrink) {
      result.failing_trace = shrink(attempt, std::move(result.failing_trace));
    }
    std::string shrunk_error;
    fails(attempt, result.failing_trace, &shrunk_error);
    result.repro =
        "schedule #" + std::to_string(result.failing_schedule) +
        " failed: " + result.error + "\nshrunk pick trace (" +
        std::to_string(result.failing_trace.size()) + " picks): \"" +
        to_string(result.failing_trace) +
        "\"\nreplay with: ScheduleExplorer::replay(attempt, parse_trace(\"" +
        to_string(result.failing_trace) + "\"))" +
        (shrunk_error.empty() ? "" : "\nshrunk run fails with: " + shrunk_error);
  }
  return result;
}

}  // namespace hlsmpc::check
