#include "check/deterministic_executor.hpp"

#include <algorithm>
#include <memory>
#include <sstream>

#include "fault/injector.hpp"

namespace hlsmpc::check {

std::string to_string(const ScheduleTrace& t) {
  std::ostringstream os;
  for (std::size_t i = 0; i < t.picks.size(); ++i) {
    if (i > 0) os << ' ';
    os << t.picks[i];
  }
  return os.str();
}

ScheduleTrace parse_trace(const std::string& text) {
  ScheduleTrace t;
  std::istringstream is(text);
  int pick = 0;
  while (is >> pick) t.picks.push_back(pick);
  return t;
}

void RandomPolicy::reset(int) { rng_.seed(seed_); }

int RandomPolicy::pick(const std::vector<int>& runnable) {
  return runnable[static_cast<std::size_t>(rng_() % runnable.size())];
}

RoundRobinPolicy::RoundRobinPolicy(int quantum, int rotation)
    : quantum_(std::max(1, quantum)), rotation_(std::max(0, rotation)) {}

void RoundRobinPolicy::reset(int ntasks) {
  current_ = ntasks > 0 ? rotation_ % ntasks : 0;
  used_ = 0;
}

int RoundRobinPolicy::pick(const std::vector<int>& runnable) {
  // Keep the current task while it is runnable and has quantum left.
  const bool current_runnable =
      std::find(runnable.begin(), runnable.end(), current_) != runnable.end();
  if (!current_runnable || used_ >= quantum_) {
    // Next runnable task after current_, wrapping (id order).
    auto it = std::upper_bound(runnable.begin(), runnable.end(), current_);
    current_ = it == runnable.end() ? runnable.front() : *it;
    used_ = 0;
  }
  ++used_;
  return current_;
}

void TracePolicy::reset(int) {
  next_ = 0;
  fallback_ = 0;
}

int TracePolicy::pick(const std::vector<int>& runnable) {
  while (next_ < trace_.picks.size()) {
    const int want = trace_.picks[next_++];
    if (std::find(runnable.begin(), runnable.end(), want) != runnable.end()) {
      return want;
    }
    // Recorded task already finished under this (edited) trace; skip.
  }
  // Trace exhausted: fair rotation, so every live task keeps progressing
  // (picking a fixed task would spin a poll-yield waiter forever).
  return runnable[fallback_++ % runnable.size()];
}

namespace {

/// Cooperative context for checked tasks: runs inside a fiber on the
/// executor's kernel thread.
class DetTaskContext final : public ult::TaskContext {
 public:
  void yield() override { ult::Fiber::yield(); }
  bool cooperative() const override { return true; }
};

}  // namespace

void DeterministicExecutor::on_sync_point(ult::TaskContext&, const char*) {
  // Advance the fault injector's sync-point clock: arm_at_sync_point()
  // places faults relative to this count, giving schedule-positioned
  // injection (no-op when no injector is installed).
  fault::tick_sync_point();
  // Turn the sync edge into a scheduling decision. Only meaningful while
  // a fiber is running (i.e. during run()).
  if (ult::Fiber::current() != nullptr) ult::Fiber::yield();
}

void DeterministicExecutor::run(
    int n, const std::vector<int>& pins,
    const std::function<void(ult::TaskContext&)>& body) {
  if (static_cast<int>(pins.size()) != n) {
    throw std::invalid_argument("DeterministicExecutor: pins.size() != n");
  }
  trace_.picks.clear();
  steps_ = 0;
  if (n == 0) return;
  policy_->reset(n);

  std::vector<DetTaskContext> ctxs(static_cast<std::size_t>(n));
  std::vector<std::unique_ptr<ult::Fiber>> fibers;
  fibers.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto& ctx = ctxs[static_cast<std::size_t>(i)];
    ctx.set_task_id(i);
    ctx.set_cpu(pins[static_cast<std::size_t>(i)]);
    ctx.set_schedule_hook(this);
    fibers.push_back(std::make_unique<ult::Fiber>(
        [&body, &ctx] { body(ctx); }, stack_bytes_));
  }

  std::vector<int> runnable(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) runnable[static_cast<std::size_t>(i)] = i;

  while (!runnable.empty()) {
    if (steps_ >= max_steps_) {
      throw DeadlockError(
          "DeterministicExecutor: no completion after " +
              std::to_string(max_steps_) + " scheduling steps with " +
              std::to_string(runnable.size()) +
              " unfinished task(s) — lost wakeup or deadlock",
          trace_);
    }
    int t = policy_->pick(runnable);
    if (std::find(runnable.begin(), runnable.end(), t) == runnable.end()) {
      t = runnable.front();  // defensive: policies must pick runnable tasks
    }
    trace_.picks.push_back(t);
    ++steps_;
    // A task exception propagates immediately; last_trace() still holds
    // the schedule that led to it.
    const bool finished = fibers[static_cast<std::size_t>(t)]->resume();
    if (finished) {
      runnable.erase(std::find(runnable.begin(), runnable.end(), t));
    }
  }
}

}  // namespace hlsmpc::check
