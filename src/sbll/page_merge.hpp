// SBLLmalloc-style automatic page merging (paper §VI related work).
//
// The paper contrasts HLS with SBLLmalloc [23], which "automatically
// merges identical virtual operating system pages of MPI tasks on the
// same node": a scanner periodically hashes pages, maps identical ones to
// a single read-only physical page, and a write fault unmerges them. The
// paper's criticism is threefold — scan overhead, fault overhead, and
// page granularity — and HLS avoids all three by being declarative.
//
// This model quantifies that comparison. Regions are registered with a
// per-rank copy count; page contents are tracked as version stamps
// (equal stamp == byte-identical page). scan() merges equal-stamp pages
// and charges scan cost; write() dirties a page (unmerging it if merged)
// and charges a copy-on-write fault when needed. physical_bytes() is the
// resident footprint an RSS probe would see.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

namespace hlsmpc::sbll {

struct Config {
  std::size_t page_bytes = 4096;
  /// Cycles to hash + compare one page during a scan pass.
  std::uint64_t scan_cost_per_page = 500;
  /// Cycles for one copy-on-write unmerge fault.
  std::uint64_t fault_cost = 4000;
};

struct MergeStats {
  std::uint64_t scan_passes = 0;
  std::uint64_t pages_scanned = 0;
  std::uint64_t pages_merged = 0;     // currently merged (per scan: new)
  std::uint64_t unmerge_faults = 0;
  std::uint64_t overhead_cycles = 0;  // scans + faults
};

class PageMergeModel {
 public:
  explicit PageMergeModel(const Config& cfg = {}) : cfg_(cfg) {}

  /// Register a region replicated over `copies` ranks. All copies start
  /// with identical content (stamp 0 per page). Returns a region id.
  int add_region(std::size_t bytes, int copies);

  /// Rank writes somewhere in [offset, offset+bytes): stamps the touched
  /// pages with a content version. `rank_dependent` marks content that
  /// differs per rank (never re-mergeable); otherwise all ranks writing
  /// the same region/page with the same version stay identical.
  void write(int region, int rank, std::size_t offset, std::size_t bytes,
             std::uint64_t version, bool rank_dependent);

  /// One scanner pass over all pages: merges pages whose stamps agree
  /// across all copies; charges scan cost.
  void scan();

  /// Physical bytes resident right now (merged pages counted once).
  std::size_t physical_bytes() const;
  /// Bytes a plain allocator would hold (all copies distinct).
  std::size_t virtual_bytes() const;

  const MergeStats& stats() const { return stats_; }

 private:
  struct Page {
    std::vector<std::uint64_t> stamp;  // per copy; equal => identical
    bool merged = false;
  };
  struct Region {
    std::size_t bytes = 0;
    int copies = 1;
    std::vector<Page> pages;
  };

  static constexpr std::uint64_t kRankDependent =
      0x8000000000000000ull;  // high bit marks per-rank content

  Config cfg_;
  std::vector<Region> regions_;
  MergeStats stats_;
};

}  // namespace hlsmpc::sbll
