#include "sbll/page_merge.hpp"

#include <algorithm>

namespace hlsmpc::sbll {

int PageMergeModel::add_region(std::size_t bytes, int copies) {
  if (bytes == 0 || copies < 1) {
    throw std::invalid_argument("PageMergeModel: degenerate region");
  }
  Region r;
  r.bytes = bytes;
  r.copies = copies;
  const std::size_t npages = (bytes + cfg_.page_bytes - 1) / cfg_.page_bytes;
  r.pages.resize(npages);
  for (Page& p : r.pages) {
    p.stamp.assign(static_cast<std::size_t>(copies), 0);
  }
  regions_.push_back(std::move(r));
  return static_cast<int>(regions_.size()) - 1;
}

void PageMergeModel::write(int region, int rank, std::size_t offset,
                           std::size_t bytes, std::uint64_t version,
                           bool rank_dependent) {
  if (region < 0 || region >= static_cast<int>(regions_.size())) {
    throw std::out_of_range("PageMergeModel: bad region");
  }
  Region& r = regions_[static_cast<std::size_t>(region)];
  if (rank < 0 || rank >= r.copies) {
    throw std::out_of_range("PageMergeModel: bad rank for region");
  }
  if (bytes == 0 || offset + bytes > r.bytes) {
    throw std::out_of_range("PageMergeModel: write outside region");
  }
  const std::size_t first = offset / cfg_.page_bytes;
  const std::size_t last = (offset + bytes - 1) / cfg_.page_bytes;
  for (std::size_t p = first; p <= last; ++p) {
    Page& page = r.pages[p];
    if (page.merged) {
      // Copy-on-write fault: the written copy splits off.
      page.merged = false;
      ++stats_.unmerge_faults;
      stats_.overhead_cycles += cfg_.fault_cost;
    }
    std::uint64_t stamp = version & ~kRankDependent;
    if (rank_dependent) {
      // Fold the rank in so stamps of different ranks never collide.
      stamp = kRankDependent | (version * 1315423911ull) |
              (static_cast<std::uint64_t>(rank) << 40);
    }
    page.stamp[static_cast<std::size_t>(rank)] = stamp;
  }
}

void PageMergeModel::scan() {
  ++stats_.scan_passes;
  std::uint64_t merged_now = 0;
  for (Region& r : regions_) {
    for (Page& page : r.pages) {
      stats_.pages_scanned += static_cast<std::uint64_t>(r.copies);
      stats_.overhead_cycles +=
          cfg_.scan_cost_per_page * static_cast<std::uint64_t>(r.copies);
      if (page.merged || r.copies < 2) continue;
      const bool identical =
          std::all_of(page.stamp.begin(), page.stamp.end(),
                      [&](std::uint64_t s) {
                        return s == page.stamp[0] &&
                               (s & kRankDependent) == 0;
                      });
      if (identical) {
        page.merged = true;
        ++merged_now;
      }
    }
  }
  stats_.pages_merged += merged_now;
}

std::size_t PageMergeModel::physical_bytes() const {
  std::size_t total = 0;
  for (const Region& r : regions_) {
    for (const Page& page : r.pages) {
      total += cfg_.page_bytes *
               (page.merged ? 1 : static_cast<std::size_t>(r.copies));
    }
  }
  return total;
}

std::size_t PageMergeModel::virtual_bytes() const {
  std::size_t total = 0;
  for (const Region& r : regions_) {
    total += r.pages.size() * cfg_.page_bytes *
             static_cast<std::size_t>(r.copies);
  }
  return total;
}

}  // namespace hlsmpc::sbll
