// Execution context seen by a running MPI task.
//
// MPC executes MPI tasks inside user-level threads pinned to cores (paper
// §IV); blocking runtime operations must therefore yield control
// cooperatively instead of blocking the kernel thread, or every other task
// scheduled on the same core would starve. TaskContext abstracts over the
// two execution back ends we provide (kernel threads and fibers): the
// runtime's synchronisation primitives are written once against this
// interface via wait_until() below.
#pragma once

#include <condition_variable>
#include <mutex>
#include <thread>

namespace hlsmpc::ult {

class TaskContext;

/// Observer of named synchronization points (wait/notify edges) inside the
/// runtime. The deterministic checking executor (src/check/) installs one
/// to turn every sync edge into a scheduling decision; production contexts
/// carry none and pay a single predicted branch per edge.
class ScheduleHook {
 public:
  virtual ~ScheduleHook() = default;
  /// Called at an instrumented sync edge. May suspend the task (yield to a
  /// co-scheduled one) before returning; callers therefore must not hold
  /// any lock across a sync_point.
  virtual void on_sync_point(TaskContext& ctx, const char* where) = 0;
};

class TaskContext {
 public:
  virtual ~TaskContext() = default;

  /// Give up the cpu so co-scheduled tasks can progress.
  virtual void yield() = 0;

  /// True when tasks share kernel threads cooperatively (fiber back end).
  /// Cooperative contexts must never sleep on a condition variable: the
  /// kernel thread they would park is needed to run the task they wait for.
  virtual bool cooperative() const = 0;

  int task_id() const { return task_id_; }
  /// Hardware thread this task is currently pinned to (topology index).
  int cpu() const { return cpu_; }

  void set_task_id(int id) { task_id_ = id; }
  void set_cpu(int cpu) { cpu_ = cpu; }

  ScheduleHook* schedule_hook() const { return hook_; }
  void set_schedule_hook(ScheduleHook* hook) { hook_ = hook; }

  /// Invoked by runtime code at instrumented synchronization edges
  /// (barrier arrival, single entry/exit, nowait claim, migration). Must
  /// be called with no locks held: the hook may suspend the task.
  void sync_point(const char* where) {
    if (hook_ != nullptr) hook_->on_sync_point(*this, where);
  }

 private:
  int task_id_ = -1;
  int cpu_ = -1;
  ScheduleHook* hook_ = nullptr;
};

/// Block until `pred()` holds. `lk` must be locked on entry and is locked
/// on return. Preemptive contexts park on `cv`; cooperative contexts poll
/// with the lock released, yielding between probes. Wakers must call
/// cv.notify_all() after changing the predicate's inputs (harmless but
/// unnecessary for cooperative waiters).
template <typename Pred>
void wait_until(TaskContext& ctx, std::unique_lock<std::mutex>& lk,
                std::condition_variable& cv, Pred pred) {
  if (!ctx.cooperative()) {
    cv.wait(lk, pred);
    return;
  }
  while (!pred()) {
    lk.unlock();
    ctx.yield();
    lk.lock();
  }
}

/// Processor hint that the caller is in a spin loop (PAUSE / YIELD);
/// falls back to a thread yield where no such instruction exists.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

/// Adaptive spin / yield / block waiter for the runtime's lock-free
/// primitives.
///
/// Cooperative (fiber) contexts yield on *every* probe: the kernel thread
/// they would spin on is needed to run the task they are waiting for, and
/// under the deterministic checking executor each yield is a scheduling
/// decision, so every probe stays an interposable wait edge — and they
/// never block (should_block() is always false). Preemptive contexts
/// escalate: spin with cpu_relax (a barrier partner on another core
/// usually arrives within the spin window), then a few thread yields,
/// then should_block() tells the caller to park on the atomic word it
/// polls (std::atomic::wait) so oversubscribed runs stop burning whole
/// scheduler quanta on runnable-but-idle waiters.
class Backoff {
 public:
  explicit Backoff(TaskContext& ctx)
      : ctx_(&ctx),
        cooperative_(ctx.cooperative()),
        spin_probes_(machine_spin_probes()) {}

  void pause() {
    if (cooperative_ || ++probes_ > spin_probes_) {
      ctx_->yield();
    } else {
      cpu_relax();
    }
  }

  /// True once the spin and yield phases are exhausted: the caller should
  /// block on its polled word instead of calling pause() again. Whoever
  /// changes that word must notify it (see SyncManager::flat_arrive).
  bool should_block() const {
    return !cooperative_ && probes_ >= spin_probes_ + kYieldProbes;
  }

 private:
  static constexpr int kYieldProbes = 4;

  /// Busy-waiting can only ever pay off if the partner we wait for runs
  /// simultaneously on another hardware thread; on a single-cpu host every
  /// relax is stolen from the task we are waiting for, so skip straight to
  /// yielding there.
  static int machine_spin_probes() {
    static const int v = std::thread::hardware_concurrency() > 1 ? 128 : 0;
    return v;
  }

  TaskContext* ctx_;
  bool cooperative_;
  int spin_probes_;
  int probes_ = 0;
};

/// TaskContext for plain kernel threads (one std::thread per MPI task).
class ThreadTaskContext final : public TaskContext {
 public:
  void yield() override { std::this_thread::yield(); }
  bool cooperative() const override { return false; }
};

}  // namespace hlsmpc::ult
