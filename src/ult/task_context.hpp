// Execution context seen by a running MPI task.
//
// MPC executes MPI tasks inside user-level threads pinned to cores (paper
// §IV); blocking runtime operations must therefore yield control
// cooperatively instead of blocking the kernel thread, or every other task
// scheduled on the same core would starve. TaskContext abstracts over the
// two execution back ends we provide (kernel threads and fibers): the
// runtime's synchronisation primitives are written once against this
// interface via wait_until() below.
#pragma once

#include <condition_variable>
#include <mutex>
#include <thread>

namespace hlsmpc::ult {

class TaskContext {
 public:
  virtual ~TaskContext() = default;

  /// Give up the cpu so co-scheduled tasks can progress.
  virtual void yield() = 0;

  /// True when tasks share kernel threads cooperatively (fiber back end).
  /// Cooperative contexts must never sleep on a condition variable: the
  /// kernel thread they would park is needed to run the task they wait for.
  virtual bool cooperative() const = 0;

  int task_id() const { return task_id_; }
  /// Hardware thread this task is currently pinned to (topology index).
  int cpu() const { return cpu_; }

  void set_task_id(int id) { task_id_ = id; }
  void set_cpu(int cpu) { cpu_ = cpu; }

 private:
  int task_id_ = -1;
  int cpu_ = -1;
};

/// Block until `pred()` holds. `lk` must be locked on entry and is locked
/// on return. Preemptive contexts park on `cv`; cooperative contexts poll
/// with the lock released, yielding between probes. Wakers must call
/// cv.notify_all() after changing the predicate's inputs (harmless but
/// unnecessary for cooperative waiters).
template <typename Pred>
void wait_until(TaskContext& ctx, std::unique_lock<std::mutex>& lk,
                std::condition_variable& cv, Pred pred) {
  if (!ctx.cooperative()) {
    cv.wait(lk, pred);
    return;
  }
  while (!pred()) {
    lk.unlock();
    ctx.yield();
    lk.lock();
  }
}

/// TaskContext for plain kernel threads (one std::thread per MPI task).
class ThreadTaskContext final : public TaskContext {
 public:
  void yield() override { std::this_thread::yield(); }
  bool cooperative() const override { return false; }
};

}  // namespace hlsmpc::ult
