// Single-word sense-reversing episode barrier.
//
// Extracted from hls::SyncManager so the MPI shared-memory collective
// engine (src/mpi/coll_shm.*) can reuse the exact machinery the HLS
// barrier/single primitives are built on, without sharing SyncManager's
// per-task episode accounting (those counters gate migration legality and
// must not be advanced by MPI collectives).
//
// The whole barrier state lives in ONE atomic word so arrival, completion
// and release are single RMWs with no mutex/condvar (a parked kernel
// thread under a user-level-thread scheduler stalls every fiber it
// carries):
//
//   bits [32, 64)  episode generation (the "sense"; waiters leave when it
//                  moves past the value they arrived under)
//   bit  31        claimed — an arriver was elected the episode's single
//                  executor and holds it open until release()
//   bit  30       poke — flipped by poke() to wake blocked waiters into a
//                  re-evaluation of their expected participant count
//   bits [0, 30)   arrivals in the current episode
//
// Arrive = fetch_add(1). Complete = CAS to (generation+1, 0, 0), which
// releases every waiter by flipping the sense; elect (hold_last) = CAS
// setting the claimed bit. Waiters escalate spin -> yield -> block
// (ult::Backoff + std::atomic::wait on this word), re-evaluating the
// expected participant count on every probe, so an episode whose expected
// count shrinks completes without a dedicated waker thread.
#pragma once

#include <atomic>
#include <cstdint>

#include "ult/task_context.hpp"

namespace hlsmpc::ult {

struct alignas(64) EpisodeBarrier {
  static constexpr int kGenShift = 32;
  static constexpr std::uint64_t kClaimedBit = 1ull << 31;
  static constexpr std::uint64_t kPokeBit = 1ull << 30;
  static constexpr std::uint64_t kArrivedMask = kPokeBit - 1;

  static constexpr std::uint64_t generation_of(std::uint64_t s) {
    return s >> kGenShift;
  }
  static constexpr std::uint64_t arrived_of(std::uint64_t s) {
    return s & kArrivedMask;
  }
  static constexpr bool claimed(std::uint64_t s) {
    return (s & kClaimedBit) != 0;
  }

  std::atomic<std::uint64_t> state{0};

  /// Arrive at the barrier. With `hold_last` the effective last arriver
  /// returns true immediately, generation not yet advanced (single
  /// semantics: it must call release() later); otherwise the last arriver
  /// flips the sense, releasing everyone, and returns true. `expected` is
  /// re-evaluated on every waiting probe, so a shrinking participant count
  /// can turn a waiter into the completing arrival.
  ///
  /// `poll`, when non-null, is invoked on every waiting probe and the wait
  /// loop never blocks on the word (it stays in the spin/yield phases) —
  /// the hook for SyncManager's watchdog, whose deadline check needs
  /// periodic control and whose std::atomic::wait has no timeout. `poll`
  /// may throw; the arrival is then abandoned mid-episode (the watchdog
  /// path, which tears the runtime down).
  template <typename ExpectedFn, typename PollFn>
  bool arrive(TaskContext& ctx, const ExpectedFn& expected, bool hold_last,
              const PollFn* poll) {
    // The release half of the RMW chains this task's prior writes into the
    // episode; the completing CAS below acquires the whole chain. Blocked
    // waiters are only woken on transitions they can act on — a sense flip
    // or a poke. A plain arrival needs no notify: the arriver itself runs
    // the completion check before it ever blocks, so sleeping peers never
    // miss an episode they were supposed to finish.
    std::uint64_t s = state.fetch_add(1, std::memory_order_acq_rel) + 1;
    const std::uint64_t g = generation_of(s);
    Backoff backoff(ctx);
    for (;;) {
      if (generation_of(s) != g) {
        // Sense flipped: the episode completed (possibly while we probed).
        // The acquire load/CAS-failure that gave us `s` synchronizes with
        // the completer's release, so episode-protected writes are visible.
        return false;
      }
      // Complete the episode as the effective last arrival. Any waiter can
      // take over the last-arriver duty when `expected` shrinks below the
      // arrivals already in, or the barrier would wait for a participant
      // that left and never comes.
      if (!claimed(s) &&
          arrived_of(s) >= static_cast<std::uint64_t>(expected())) {
        const std::uint64_t next =
            hold_last ? (s | kClaimedBit)        // elected: hold episode open
                      : ((g + 1) << kGenShift);  // flip sense, release all
        if (state.compare_exchange_weak(s, next, std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
          // The sense flip releases every waiter; a claim only parks them
          // deeper (they still wait for release()), so it needs no wake.
          if (!hold_last) state.notify_all();
          return true;
        }
        continue;  // `s` reloaded by the failed CAS; re-examine
      }
      if (poll != nullptr) {
        // Polled mode: blocking on the word is off the table, stay in the
        // spin/yield phases and give the caller control on every probe.
        (*poll)();
        backoff.pause();
      } else if (backoff.should_block()) {
        // Spin and yield phases exhausted (oversubscribed run): park on the
        // word until it changes — next arrival, claim, sense flip, or a
        // poke. Never reached by cooperative contexts.
        state.wait(s, std::memory_order_acquire);
      } else {
        backoff.pause();
      }
      s = state.load(std::memory_order_acquire);
    }
  }

  template <typename ExpectedFn>
  bool arrive(TaskContext& ctx, const ExpectedFn& expected, bool hold_last) {
    // Dummy poll type; the nullptr disables polled mode.
    using NoPoll = void (*)();
    return arrive(ctx, expected, hold_last, static_cast<const NoPoll*>(nullptr));
  }

  /// Release an episode held open by a hold_last winner: flip the sense
  /// and reset the arrival count. An arrival that slipped in after the
  /// claim is wiped with the count but leaves via the generation check.
  void release() {
    const std::uint64_t s = state.load(std::memory_order_relaxed);
    state.store((generation_of(s) + 1) << kGenShift,
                std::memory_order_release);
    state.notify_all();
  }

  /// Wake blocked waiters into a re-evaluation of their expected count
  /// without completing the episode (used after a participant migrates).
  void poke() {
    state.fetch_xor(kPokeBit, std::memory_order_acq_rel);
    state.notify_all();
  }
};

}  // namespace hlsmpc::ult
