#include "ult/scheduler.hpp"

#include <chrono>
#include <stdexcept>

#include "obs/recorder.hpp"

namespace hlsmpc::ult {

void Scheduler::set_obs(obs::Recorder* obs) {
#if HLSMPC_OBS_ENABLED
  obs_ = obs;
#else
  (void)obs;
#endif
}

void FiberExecutor::set_obs(obs::Recorder* obs) {
#if HLSMPC_OBS_ENABLED
  obs_ = obs;
#else
  (void)obs;
#endif
}

Scheduler::Scheduler(int num_workers) {
  if (num_workers < 1) {
    throw std::invalid_argument("Scheduler: need at least one worker");
  }
  workers_.reserve(static_cast<std::size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
}

void Scheduler::spawn(int worker, int task_id, int cpu,
                      std::function<void(FiberTaskContext&)> body,
                      std::size_t stack_bytes) {
  if (worker < 0 || worker >= num_workers()) {
    throw std::out_of_range("Scheduler::spawn: bad worker index");
  }
  auto task = std::make_unique<Task>();
  task->ctx.set_task_id(task_id);
  task->ctx.set_cpu(cpu);
  task->ctx.set_target_worker(worker);
  Task* raw = task.get();
  task->fiber = std::make_unique<Fiber>(
      [raw, fn = std::move(body)] { fn(raw->ctx); }, stack_bytes);
  tasks_.push_back(std::move(task));
}

void Scheduler::enqueue(Task* t) {
  // target_worker may be expressed as a cpu index by migration callers;
  // wrap onto the actual worker count (cpu -> carrying worker).
  const int w_idx = t->ctx.target_worker() % num_workers();
  Worker& w = *workers_[static_cast<std::size_t>(w_idx)];
  {
    std::lock_guard<std::mutex> lk(w.mu);
    w.ready.push_back(t);
  }
  w.cv.notify_one();
}

void Scheduler::run() {
  remaining_.store(static_cast<int>(tasks_.size()));
  done_.store(tasks_.empty());
  for (auto& t : tasks_) enqueue(t.get());

  std::vector<std::thread> threads;
  threads.reserve(workers_.size());
  for (int i = 0; i < num_workers(); ++i) {
    threads.emplace_back([this, i] { worker_loop(i); });
  }
  for (auto& th : threads) th.join();
  tasks_.clear();
  if (first_error_) std::rethrow_exception(first_error_);
}

void Scheduler::worker_loop(int index) {
  Worker& w = *workers_[static_cast<std::size_t>(index)];
  while (!done_.load(std::memory_order_acquire)) {
    Task* task = nullptr;
    {
      std::unique_lock<std::mutex> lk(w.mu);
      if (w.ready.empty()) {
        // Bounded wait: another worker may finish the last task or
        // migrate one here; re-check done_ regularly.
        w.cv.wait_for(lk, std::chrono::milliseconds(1));
        continue;
      }
      task = w.ready.front();
      w.ready.pop_front();
    }
    bool finished = false;
#if HLSMPC_OBS_ENABLED
    // Counting from the worker is safe: the task's fiber resumes on this
    // very thread next, so the bump is sequenced before the task's own
    // writes to its block (still effectively single-writer).
    if (obs_ != nullptr) {
      const int tid = task->ctx.task_id();
      obs_->count(tid, obs::Counter::ctx_switches);
      obs::Event e;
      e.kind = obs::EventKind::ctx_switch;
      e.task = tid;
      e.cpu = task->ctx.cpu();
      e.t0 = e.t1 = obs_->now();
      e.arg = index;
      obs_->record(e);
    }
#endif
    try {
      finished = task->fiber->resume();
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(error_mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      finished = true;  // the fiber is dead either way
    }
    if (finished) {
      if (remaining_.fetch_sub(1) == 1) {
        done_.store(true, std::memory_order_release);
        for (auto& other : workers_) other->cv.notify_all();
      }
    } else {
      enqueue(task);  // honours target_worker, so migration is a re-pin + yield
    }
  }
}

void ThreadExecutor::run(int n, const std::vector<int>& pins,
                         const std::function<void(TaskContext&)>& body) {
  if (static_cast<int>(pins.size()) != n) {
    throw std::invalid_argument("ThreadExecutor: pins.size() != n");
  }
  std::vector<std::thread> threads;
  std::mutex error_mu;
  std::exception_ptr first_error;
  threads.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads.emplace_back([&, i] {
      ThreadTaskContext ctx;
      ctx.set_task_id(i);
      ctx.set_cpu(pins[static_cast<std::size_t>(i)]);
      try {
        body(ctx);
      } catch (...) {
        std::lock_guard<std::mutex> lk(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& th : threads) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

void FiberExecutor::run(int n, const std::vector<int>& pins,
                        const std::function<void(TaskContext&)>& body) {
  if (static_cast<int>(pins.size()) != n) {
    throw std::invalid_argument("FiberExecutor: pins.size() != n");
  }
  Scheduler sched(num_workers_);
#if HLSMPC_OBS_ENABLED
  sched.set_obs(obs_);
#endif
  for (int i = 0; i < n; ++i) {
    const int cpu = pins[static_cast<std::size_t>(i)];
    sched.spawn(cpu % num_workers_, i, cpu,
                [&body](FiberTaskContext& ctx) { body(ctx); }, stack_bytes_);
  }
  sched.run();
}

}  // namespace hlsmpc::ult
