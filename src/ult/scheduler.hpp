// Cooperative scheduler multiplexing fibers over per-core workers.
//
// Mirrors MPC's execution model: each worker stands for one hardware
// thread of the node; MPI tasks are fibers pinned to a worker and only
// move when the application explicitly migrates them (MPC_Move, paper
// §IV.A). The Executor interface at the bottom lets the MPI runtime run
// the same task body on either back end (kernel threads or fibers).
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/event.hpp"
#include "ult/fiber.hpp"
#include "ult/task_context.hpp"

namespace hlsmpc::obs {
class Recorder;
}  // namespace hlsmpc::obs

namespace hlsmpc::ult {

class Scheduler;

/// TaskContext for fiber-backed tasks. yield() suspends the fiber and
/// requeues it on its (possibly new) worker.
class FiberTaskContext final : public TaskContext {
 public:
  void yield() override { Fiber::yield(); }
  bool cooperative() const override { return true; }

  /// Worker this task will run on after its next yield.
  int target_worker() const { return target_worker_.load(); }

  /// Re-pin the task; takes effect at the next yield. Used to implement
  /// task migration. Callers must also update cpu() via set_cpu().
  void set_target_worker(int w) { target_worker_.store(w); }

 private:
  std::atomic<int> target_worker_{0};
};

class Scheduler {
 public:
  explicit Scheduler(int num_workers);
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Record every fiber resume (counter + instant event) into `obs`.
  /// Call before run(); no-op when observability is compiled out.
  void set_obs(obs::Recorder* obs);

  /// Register a task before run(). `worker` is the initial pinning;
  /// the body receives the task's context.
  void spawn(int worker, int task_id, int cpu,
             std::function<void(FiberTaskContext&)> body,
             std::size_t stack_bytes = 256 * 1024);

  /// Run all spawned tasks to completion. Rethrows the first task
  /// exception after all workers have stopped.
  void run();

 private:
  struct Task {
    std::unique_ptr<Fiber> fiber;
    FiberTaskContext ctx;
  };

  struct Worker {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Task*> ready;
  };

  void worker_loop(int index);
  void enqueue(Task* t);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::unique_ptr<Task>> tasks_;
#if HLSMPC_OBS_ENABLED
  obs::Recorder* obs_ = nullptr;
#endif
  std::atomic<int> remaining_{0};
  std::atomic<bool> done_{false};
  std::mutex error_mu_;
  std::exception_ptr first_error_;
};

/// Runs `n` task bodies to completion; pins[i] is the hardware thread of
/// task i (drives HLS scope resolution and, in fiber mode, the worker).
class Executor {
 public:
  virtual ~Executor() = default;
  virtual void run(int n, const std::vector<int>& pins,
                   const std::function<void(TaskContext&)>& body) = 0;
  virtual const char* name() const = 0;
};

/// One kernel thread per task. Preemptive; tasks may outnumber cpus.
class ThreadExecutor final : public Executor {
 public:
  void run(int n, const std::vector<int>& pins,
           const std::function<void(TaskContext&)>& body) override;
  const char* name() const override { return "thread"; }
};

/// Fibers over `num_workers` kernel threads; task i starts on worker
/// pins[i] % num_workers, matching MPC's task-per-core placement.
class FiberExecutor final : public Executor {
 public:
  explicit FiberExecutor(int num_workers, std::size_t stack_bytes = 256 * 1024)
      : num_workers_(num_workers), stack_bytes_(stack_bytes) {}
  void run(int n, const std::vector<int>& pins,
           const std::function<void(TaskContext&)>& body) override;
  const char* name() const override { return "fiber"; }

  /// Forwarded to the Scheduler of every run(). No-op when observability
  /// is compiled out.
  void set_obs(obs::Recorder* obs);

 private:
  int num_workers_;
  std::size_t stack_bytes_;
#if HLSMPC_OBS_ENABLED
  obs::Recorder* obs_ = nullptr;
#endif
};

}  // namespace hlsmpc::ult
