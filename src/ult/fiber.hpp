// Stackful user-level threads over POSIX ucontext.
//
// A Fiber owns a private stack and a body function. resume() transfers
// control from the calling kernel thread into the fiber; the fiber returns
// control either by finishing its body or by calling Fiber::yield() from
// inside. This is the mechanism MPC uses to run many MPI "tasks" per
// kernel thread; the Scheduler (scheduler.hpp) multiplexes fibers over
// per-core workers.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>
#include <stdexcept>

namespace hlsmpc::ult {

class Fiber {
 public:
  using Body = std::function<void()>;

  /// Default stack matches MPC-style lightweight tasks; raise it for deep
  /// call chains in application code.
  explicit Fiber(Body body, std::size_t stack_bytes = 256 * 1024);
  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;
  ~Fiber();

  /// Run the fiber until it yields or finishes. Must not be called from
  /// inside any fiber. Returns true if the fiber finished.
  bool resume();

  /// Yield from inside the currently running fiber back to its resumer.
  /// Throws if no fiber is running on this kernel thread.
  static void yield();

  /// Fiber currently running on this kernel thread, or nullptr.
  static Fiber* current();

  bool done() const { return done_; }

 private:
  static void trampoline();
  void san_create();
  void san_destroy();
  void san_enter_fiber();
  void san_land_in_fiber();
  void san_leave_fiber(bool dying);
  void san_land_in_thread();

  Body body_;
  std::unique_ptr<std::byte[]> stack_;
  std::size_t stack_bytes_;
  ucontext_t ctx_{};
  ucontext_t return_ctx_{};
  bool started_ = false;
  bool done_ = false;
  std::exception_ptr error_;

  // Sanitizer bookkeeping (unused in plain builds). TSan and ASan must be
  // told about stack switches or they misattribute every fiber frame; see
  // the annotation helpers in fiber.cpp.
  void* san_fiber_ = nullptr;          ///< TSan fiber handle
  void* san_resumer_ = nullptr;        ///< TSan handle of the resumer
  void* san_own_fake_ = nullptr;       ///< ASan fake stack of this fiber
  void* san_resumer_fake_ = nullptr;   ///< ASan fake stack of the resumer
  const void* san_resumer_bottom_ = nullptr;
  std::size_t san_resumer_size_ = 0;
};

}  // namespace hlsmpc::ult
