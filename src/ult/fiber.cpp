#include "ult/fiber.hpp"

// Sanitizer fiber annotations. ucontext switches move execution between
// stacks without the sanitizers noticing: TSan would attribute the events
// of every fiber on a kernel thread to one logical thread (masking or
// fabricating races), and ASan would flag stack frames of a resumed fiber
// as out-of-bounds. Both provide an explicit fiber API; we drive it at the
// four switch edges (thread->fiber entry, fiber landing, fiber->thread
// departure, thread landing).
#if defined(__SANITIZE_THREAD__)
#define HLSMPC_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HLSMPC_TSAN 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__)
#define HLSMPC_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define HLSMPC_ASAN 1
#endif
#endif

#ifdef HLSMPC_TSAN
#include <sanitizer/tsan_interface.h>
#endif
#ifdef HLSMPC_ASAN
#include <sanitizer/common_interface_defs.h>
#endif

namespace hlsmpc::ult {

namespace {
thread_local Fiber* g_current_fiber = nullptr;
}  // namespace

// --- annotation helpers (no-ops without the corresponding sanitizer) ----

void Fiber::san_create() {
#ifdef HLSMPC_TSAN
  if (san_fiber_ == nullptr) san_fiber_ = __tsan_create_fiber(0);
#endif
}

void Fiber::san_destroy() {
#ifdef HLSMPC_TSAN
  if (san_fiber_ != nullptr) {
    __tsan_destroy_fiber(san_fiber_);
    san_fiber_ = nullptr;
  }
#endif
}

/// Resumer side, just before swapping into the fiber.
void Fiber::san_enter_fiber() {
#ifdef HLSMPC_ASAN
  __sanitizer_start_switch_fiber(&san_resumer_fake_, stack_.get(),
                                 stack_bytes_);
#endif
#ifdef HLSMPC_TSAN
  san_resumer_ = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(san_fiber_, 0);
#endif
}

/// Fiber side, first instruction after landing on the fiber stack.
void Fiber::san_land_in_fiber() {
#ifdef HLSMPC_ASAN
  __sanitizer_finish_switch_fiber(san_own_fake_, &san_resumer_bottom_,
                                  &san_resumer_size_);
#endif
}

/// Fiber side, just before swapping back to the resumer. A dying fiber
/// passes no save slot so ASan releases its fake stack.
void Fiber::san_leave_fiber(bool dying) {
#ifdef HLSMPC_ASAN
  __sanitizer_start_switch_fiber(dying ? nullptr : &san_own_fake_,
                                 san_resumer_bottom_, san_resumer_size_);
#else
  (void)dying;
#endif
#ifdef HLSMPC_TSAN
  __tsan_switch_to_fiber(san_resumer_, 0);
#endif
}

/// Resumer side, first instruction after the fiber yielded or finished.
void Fiber::san_land_in_thread() {
#ifdef HLSMPC_ASAN
  __sanitizer_finish_switch_fiber(san_resumer_fake_, nullptr, nullptr);
#endif
}

// ------------------------------------------------------------------------

Fiber::Fiber(Body body, std::size_t stack_bytes)
    : body_(std::move(body)),
      stack_(new std::byte[stack_bytes]),
      stack_bytes_(stack_bytes) {
  if (!body_) throw std::invalid_argument("Fiber: empty body");
  if (stack_bytes_ < 16 * 1024) {
    throw std::invalid_argument("Fiber: stack too small");
  }
}

Fiber::~Fiber() { san_destroy(); }

void Fiber::trampoline() {
  Fiber* self = g_current_fiber;
  self->san_land_in_fiber();
  try {
    self->body_();
  } catch (...) {
    self->error_ = std::current_exception();
  }
  self->done_ = true;
  // Return to the resumer; ctx_'s uc_link is unused because we always
  // swap back explicitly (swapcontext keeps the error path uniform).
  self->san_leave_fiber(/*dying=*/true);
  swapcontext(&self->ctx_, &self->return_ctx_);
}

bool Fiber::resume() {
  if (done_) throw std::logic_error("Fiber::resume: fiber already finished");
  if (g_current_fiber != nullptr) {
    throw std::logic_error("Fiber::resume: nested fibers are not supported");
  }
  if (!started_) {
    if (getcontext(&ctx_) != 0) {
      throw std::runtime_error("Fiber: getcontext failed");
    }
    ctx_.uc_stack.ss_sp = stack_.get();
    ctx_.uc_stack.ss_size = stack_bytes_;
    ctx_.uc_link = nullptr;
    makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 0);
    san_create();
    started_ = true;
  }
  g_current_fiber = this;
  san_enter_fiber();
  swapcontext(&return_ctx_, &ctx_);
  san_land_in_thread();
  g_current_fiber = nullptr;
  if (done_ && error_) std::rethrow_exception(error_);
  return done_;
}

void Fiber::yield() {
  Fiber* self = g_current_fiber;
  if (self == nullptr) {
    throw std::logic_error("Fiber::yield: called outside any fiber");
  }
  // Clear before leaving so the worker thread observes "no fiber running";
  // restored by the next resume().
  g_current_fiber = nullptr;
  self->san_leave_fiber(/*dying=*/false);
  swapcontext(&self->ctx_, &self->return_ctx_);
  self->san_land_in_fiber();
  g_current_fiber = self;
}

Fiber* Fiber::current() { return g_current_fiber; }

}  // namespace hlsmpc::ult
