#include "ult/fiber.hpp"

namespace hlsmpc::ult {

namespace {
thread_local Fiber* g_current_fiber = nullptr;
}

Fiber::Fiber(Body body, std::size_t stack_bytes)
    : body_(std::move(body)),
      stack_(new std::byte[stack_bytes]),
      stack_bytes_(stack_bytes) {
  if (!body_) throw std::invalid_argument("Fiber: empty body");
  if (stack_bytes_ < 16 * 1024) {
    throw std::invalid_argument("Fiber: stack too small");
  }
}

Fiber::~Fiber() = default;

void Fiber::trampoline() {
  Fiber* self = g_current_fiber;
  try {
    self->body_();
  } catch (...) {
    self->error_ = std::current_exception();
  }
  self->done_ = true;
  // Return to the resumer; ctx_'s uc_link is unused because we always
  // swap back explicitly (swapcontext keeps the error path uniform).
  swapcontext(&self->ctx_, &self->return_ctx_);
}

bool Fiber::resume() {
  if (done_) throw std::logic_error("Fiber::resume: fiber already finished");
  if (g_current_fiber != nullptr) {
    throw std::logic_error("Fiber::resume: nested fibers are not supported");
  }
  if (!started_) {
    if (getcontext(&ctx_) != 0) {
      throw std::runtime_error("Fiber: getcontext failed");
    }
    ctx_.uc_stack.ss_sp = stack_.get();
    ctx_.uc_stack.ss_size = stack_bytes_;
    ctx_.uc_link = nullptr;
    makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 0);
    started_ = true;
  }
  g_current_fiber = this;
  swapcontext(&return_ctx_, &ctx_);
  g_current_fiber = nullptr;
  if (done_ && error_) std::rethrow_exception(error_);
  return done_;
}

void Fiber::yield() {
  Fiber* self = g_current_fiber;
  if (self == nullptr) {
    throw std::logic_error("Fiber::yield: called outside any fiber");
  }
  // Clear before leaving so the worker thread observes "no fiber running";
  // restored by the next resume().
  g_current_fiber = nullptr;
  swapcontext(&self->ctx_, &self->return_ctx_);
  g_current_fiber = self;
}

Fiber* Fiber::current() { return g_current_fiber; }

}  // namespace hlsmpc::ult
