// Versioned file-backed checkpoints of HLS scope storage.
//
// A CheckpointStore snapshots every materialized region of one canonical
// scope into a single self-describing file ("HLSCKPT1" header, per-region
// manifest, CRC-32C trailer) published atomically: the writer streams into
// a pid-stamped temporary, fsyncs, then renames to "<tag>.<scope>.v<N>".
// Readers walk versions newest-first and take the first one whose CRC and
// region manifest verify — a torn write (crash or the "ckpt:write"
// injection) costs one version, never the store. This is the warm-restart
// half of shrink-and-recover: a respawned node restores the committed
// scope data its predecessor checkpointed (ClusterComm::shrink /
// SimCluster::respawn handle the membership half).
//
// Files are host-local (native endianness, no cross-machine portability):
// the intended reader is a replacement process on the same node, per the
// paper's single-address-space node model.
#pragma once

#ifndef HLSMPC_RECOVERY_ENABLED
#define HLSMPC_RECOVERY_ENABLED 1
#endif

#if HLSMPC_RECOVERY_ENABLED

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "hls/registry.hpp"
#include "hls/storage.hpp"

namespace hlsmpc::hls {

/// CRC-32C (Castagnoli, reflected polynomial 0x82F63B78). Uses the x86
/// crc32 instruction when the CPU has SSE4.2, falling back to slice-by-8
/// tables that produce identical values — so verification throughput
/// stays within the bench gate's small multiple of memcpy, and a file
/// checksummed on either path verifies on the other. `seed` chains
/// incremental updates (pass the previous return value; 0 starts a
/// fresh sum).
std::uint32_t crc32c(const void* data, std::size_t bytes,
                     std::uint32_t seed = 0);

class CheckpointStore {
 public:
  struct Options {
    /// Directory holding the version files; created if missing (one
    /// level — the parent must exist).
    std::string dir;
    /// Filename prefix separating stores sharing a directory.
    std::string tag = "hls";
    /// Newest versions retained per scope after a save. At least 2, so a
    /// torn newest version always leaves a consistent fallback.
    int keep = 2;
  };

  /// Opens the store (creating `dir` if needed) and reclaims temporaries
  /// leaked by crashed writers (pid-stamped, like shm segment names).
  explicit CheckpointStore(Options opts);

  struct Report {
    std::uint64_t version = 0;
    std::size_t payload_bytes = 0;  ///< region payload total (manifest excl.)
    int regions = 0;
  };

  /// Snapshot every materialized region of `scope` into a new version.
  /// Quiescent callers only (no task mutating the scope's storage).
  /// Returns the published version; prunes versions beyond `keep`.
  Report save(StorageManager& storage, const Registry& reg,
              const CanonicalScope& scope);

  /// Rehydrate `scope` from the newest version that passes validation
  /// (magic, scope identity, CRC, and every region matching the current
  /// registry layout). Regions not yet materialized are first-touched
  /// before being overwritten. Throws HlsError when no version survives:
  /// ErrorCode::corruption if candidates existed (all torn or stale),
  /// ErrorCode::invalid_argument if the store holds none for this scope.
  Report restore(StorageManager& storage, const Registry& reg,
                 const CanonicalScope& scope);

  /// Version numbers present for `scope`, ascending (torn files included —
  /// consistency is only established by restore()).
  std::vector<std::uint64_t> versions(const CanonicalScope& scope) const;

  /// Unlink temporaries whose writing process is gone. Returns the number
  /// removed. The constructor runs this once; long-lived stores may rerun
  /// it at will.
  int cleanup_stale_tmp() const;

  const std::string& dir() const { return opts_.dir; }

 private:
  std::string stem(const CanonicalScope& scope) const;

  Options opts_;
};

}  // namespace hlsmpc::hls

#endif  // HLSMPC_RECOVERY_ENABLED
