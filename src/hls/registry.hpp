// HLS variable registry: modules, variables, offsets.
//
// The paper's compiler flags each `#pragma hls`-marked global like a TLS
// variable and identifies it at run time by a (module, offset) pair filled
// in by the linker (§IV.A). This registry is that mechanism made explicit:
// a Module groups the HLS variables of one translation unit / library,
// assigns each an offset inside a per-scope region, and records an
// initializer (the value the variable would have been statically
// initialized with). Storage instances are materialized lazily per scope
// instance by the StorageManager.
#pragma once

#include <cstddef>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/error.hpp"
#include "topo/scope_map.hpp"

namespace hlsmpc::hls {

using hlsmpc::ErrorCode;

class HlsError : public std::runtime_error {
 public:
  explicit HlsError(const std::string& what,
                    ErrorCode code = ErrorCode::invalid_argument)
      : std::runtime_error(what), code_(code) {}

  ErrorCode code() const { return code_; }
  /// Recoverable (caller can retry / fall back) vs fatal (runtime state
  /// is suspect — a stuck barrier, a dead task). See fault/error.hpp.
  bool recoverable() const { return hlsmpc::recoverable(code_); }

 private:
  ErrorCode code_;
};

/// Scope with the cache level resolved against a concrete machine, so it
/// can key maps ((cache,0) and (cache,llc_level) collapse to one entry).
struct CanonicalScope {
  topo::ScopeKind kind = topo::ScopeKind::node;
  int cache_level = 0;  // only for kind == cache

  friend auto operator<=>(const CanonicalScope&,
                          const CanonicalScope&) = default;
};

CanonicalScope canonicalize(const topo::ScopeMap& sm,
                            const topo::ScopeSpec& s);
std::string to_string(const CanonicalScope& s);

/// Dense id of a canonical scope (see topo::DenseScopeTable). Canonical
/// scopes carry resolved levels, so this is a pure O(1) switch.
inline int scope_id(const topo::DenseScopeTable& t, const CanonicalScope& s) {
  return t.id(s.kind, s.cache_level);
}

/// Initializer run exactly once per scope instance when the module's
/// region is first touched there (paper: "allocate and initialize memory
/// if first use").
using VarInitFn = std::function<void(void*)>;

struct VarInfo {
  std::string name;
  topo::ScopeSpec scope;     // as declared
  CanonicalScope canonical;  // resolved against the machine
  std::size_t size = 0;
  std::size_t align = alignof(std::max_align_t);
  std::size_t offset = 0;  // within the module's region for `canonical`
  VarInitFn init;          // may be empty (zero-initialized)
};

/// Untyped reference to a registered HLS variable: exactly the
/// (module, offset) pair of the paper plus the scope the access functions
/// are selected by.
struct VarHandle {
  int module = -1;
  int var = -1;  // index within the module (for diagnostics)
  CanonicalScope scope;
  /// Dense id of `scope` (scope_id()), precomputed at registration so the
  /// per-access fast path needs no scope decoding. -1 on hand-built
  /// handles; resolvers fall back to scope_id() then.
  int sid = -1;
  std::size_t offset = 0;
  std::size_t size = 0;

  bool valid() const { return module >= 0; }
};

struct Module {
  std::string name;
  std::vector<VarInfo> vars;
  /// Bytes of storage one scope instance needs for this module, per scope
  /// that appears in `vars`.
  std::vector<std::pair<CanonicalScope, std::size_t>> region_bytes;
  bool committed = false;

  std::size_t region_size(const CanonicalScope& s) const;
};

/// Node-wide table of loaded modules ("the module array", §IV.A).
class Registry {
 public:
  explicit Registry(const topo::ScopeMap& sm)
      : sm_(&sm), scopes_(sm.machine()) {}

  /// Reserve a module slot; filled by commit_module.
  int reserve_module(const std::string& name);
  void commit_module(int id, Module m);

  int num_modules() const;
  bool committed(int id) const;
  const Module& module(int id) const;
  const topo::ScopeMap& scope_map() const { return *sm_; }
  /// Frozen dense scope index space shared by the hot-path resolvers.
  const topo::DenseScopeTable& scopes() const { return scopes_; }

  /// Diagnostic lookup for error messages.
  const VarInfo& var(const VarHandle& h) const;

 private:
  const topo::ScopeMap* sm_;
  topo::DenseScopeTable scopes_;
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, Module>> modules_;  // name, module
  std::vector<bool> committed_;
};

/// Builds one module: the API equivalent of writing `#pragma hls
/// scope(var)` on a set of globals. Offsets are assigned on the fly;
/// commit() publishes the module, after which no more variables may be
/// added (the directive's "variable must not have been accessed yet"
/// constraint maps to "module must not be in use yet").
class ModuleBuilder {
 public:
  ModuleBuilder(Registry& reg, std::string name);
  ModuleBuilder(const ModuleBuilder&) = delete;
  ModuleBuilder& operator=(const ModuleBuilder&) = delete;

  /// Register an untyped blob (typed helpers in var.hpp wrap this).
  VarHandle add_raw(const std::string& var_name, const topo::ScopeSpec& scope,
                    std::size_t size, std::size_t align, VarInitFn init);

  /// Publish the module; returns the module id.
  int commit();
  int id() const { return id_; }

 private:
  Registry* reg_;
  int id_;
  Module m_;
  std::vector<std::pair<CanonicalScope, std::size_t>> cursor_;  // per scope
  bool committed_ = false;
};

}  // namespace hlsmpc::hls
