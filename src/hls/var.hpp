// Typed HLS variables and the per-task view.
//
// The paper's directives annotate C/Fortran globals; this header is the
// equivalent declaration surface for the C++ API. A Var<T>/ArrayVar<T>
// corresponds to `T v; #pragma hls <scope>(v)`, and a TaskView bundles the
// runtime with the calling task so application code reads like the
// directive examples of §II.D:
//
//   auto table = hls::add_array<double>(mb, "table", N, topo::node_scope());
//   ...
//   hls::TaskView view(rt, ctx);
//   view.single({table.handle()}, [&] { load(view.get(table)); });
//   double* t = view.get(table);
#pragma once

#include <type_traits>
#include <utility>

#include "hls/runtime.hpp"

namespace hlsmpc::hls {

template <typename T>
class Var {
  static_assert(std::is_trivially_copyable_v<T>,
                "HLS variables mirror C globals: trivially copyable only");

 public:
  Var() = default;
  explicit Var(VarHandle h) : h_(h) {}
  const VarHandle& handle() const { return h_; }
  bool valid() const { return h_.valid(); }

 private:
  VarHandle h_;
};

template <typename T>
class ArrayVar {
  static_assert(std::is_trivially_copyable_v<T>,
                "HLS variables mirror C globals: trivially copyable only");

 public:
  ArrayVar() = default;
  ArrayVar(VarHandle h, std::size_t count) : h_(h), count_(count) {}
  const VarHandle& handle() const { return h_; }
  std::size_t size() const { return count_; }
  bool valid() const { return h_.valid(); }

 private:
  VarHandle h_;
  std::size_t count_ = 0;
};

/// Declare a scalar HLS variable with an initial value.
template <typename T>
Var<T> add_var(ModuleBuilder& mb, const std::string& name,
               const topo::ScopeSpec& scope, T initial = T{}) {
  VarHandle h = mb.add_raw(name, scope, sizeof(T), alignof(T),
                           [initial](void* p) { new (p) T(initial); });
  return Var<T>(h);
}

/// Declare an HLS array; `init` (optional) fills each fresh copy.
template <typename T, typename InitFn = std::nullptr_t>
ArrayVar<T> add_array(ModuleBuilder& mb, const std::string& name,
                      std::size_t count, const topo::ScopeSpec& scope,
                      InitFn init = nullptr) {
  VarInitFn fn;
  if constexpr (!std::is_same_v<InitFn, std::nullptr_t>) {
    fn = [init, count](void* p) { init(static_cast<T*>(p), count); };
  }
  VarHandle h =
      mb.add_raw(name, scope, sizeof(T) * count, alignof(T), std::move(fn));
  return ArrayVar<T>(h, count);
}

/// The calling task's window onto the HLS runtime. Cheap to construct;
/// binds the task's pinning on construction.
class TaskView {
 public:
  TaskView(Runtime& rt, ult::TaskContext& ctx) : rt_(&rt), ctx_(&ctx) {
    rt_->bind_task(ctx);
  }

  Runtime& runtime() { return *rt_; }
  ult::TaskContext& context() { return *ctx_; }
  int cpu() const { return ctx_->cpu(); }

  template <typename T>
  T& get(const Var<T>& v) {
    return *static_cast<T*>(rt_->get_addr(v.handle(), *ctx_));
  }
  template <typename T>
  T* get(const ArrayVar<T>& v) {
    return static_cast<T*>(rt_->get_addr(v.handle(), *ctx_));
  }

  /// Resolve a directive's variable list once; reuse inside loops to skip
  /// the per-call list walk (the ScopeSet overloads below dispatch
  /// straight to the scope core).
  ScopeSet scopes(std::initializer_list<VarHandle> vars) const {
    return ScopeSet(*rt_, vars);
  }

  /// #pragma hls barrier(vars...)
  void barrier(std::initializer_list<VarHandle> vars) {
    rt_->barrier(vars, *ctx_);
  }
  void barrier(const ScopeSet& s) { rt_->barrier(s, *ctx_); }

  /// #pragma hls single(vars...) { fn(); } — one task (the last to
  /// arrive) runs fn; everyone leaves together.
  template <typename Fn>
  void single(std::initializer_list<VarHandle> vars, Fn&& fn) {
    single(ScopeSet(*rt_, vars), std::forward<Fn>(fn));
  }
  template <typename Fn>
  void single(const ScopeSet& s, Fn&& fn) {
    if (rt_->single_enter(s, *ctx_)) {
      std::forward<Fn>(fn)();
      rt_->single_done(s, *ctx_);
    }
  }

  /// #pragma hls single(vars...) nowait { fn(); } — the first task to
  /// reach the site runs fn; nobody waits. Returns true for the runner.
  template <typename Fn>
  bool single_nowait(std::initializer_list<VarHandle> vars, Fn&& fn) {
    return single_nowait(ScopeSet(*rt_, vars), std::forward<Fn>(fn));
  }
  template <typename Fn>
  bool single_nowait(const ScopeSet& s, Fn&& fn) {
    if (rt_->single_nowait(s, *ctx_)) {
      std::forward<Fn>(fn)();
      return true;
    }
    return false;
  }

  /// MPC_Move.
  void migrate(int new_cpu) { rt_->migrate(*ctx_, new_cpu); }

 private:
  Runtime* rt_;
  ult::TaskContext* ctx_;
};

}  // namespace hlsmpc::hls
