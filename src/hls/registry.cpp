#include "hls/registry.hpp"

#include <algorithm>

namespace hlsmpc::hls {

CanonicalScope canonicalize(const topo::ScopeMap& sm,
                            const topo::ScopeSpec& s) {
  CanonicalScope c;
  c.kind = s.kind;
  if (s.kind == topo::ScopeKind::cache) {
    c.cache_level = sm.resolved_cache_level(s);
  } else if (s.kind == topo::ScopeKind::numa && s.level >= 2 &&
             sm.machine().desc().numa_per_socket > 1) {
    // numa level(2) = per socket; collapses to plain numa when each
    // socket holds a single NUMA domain.
    c.cache_level = 2;
  }
  return c;
}

std::string to_string(const CanonicalScope& s) {
  if (s.kind == topo::ScopeKind::cache) {
    return "cache(" + std::to_string(s.cache_level) + ")";
  }
  return topo::to_string(topo::ScopeSpec{s.kind, 0});
}

std::size_t Module::region_size(const CanonicalScope& s) const {
  for (const auto& [scope, bytes] : region_bytes) {
    if (scope == s) return bytes;
  }
  return 0;
}

int Registry::reserve_module(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  modules_.push_back({name, Module{}});
  committed_.push_back(false);
  return static_cast<int>(modules_.size()) - 1;
}

void Registry::commit_module(int id, Module m) {
  std::lock_guard<std::mutex> lk(mu_);
  if (id < 0 || id >= static_cast<int>(modules_.size())) {
    throw HlsError("commit_module: unknown module id");
  }
  if (committed_[static_cast<std::size_t>(id)]) {
    throw HlsError("commit_module: module '" +
                   modules_[static_cast<std::size_t>(id)].first +
                   "' already committed");
  }
  m.committed = true;
  modules_[static_cast<std::size_t>(id)].second = std::move(m);
  committed_[static_cast<std::size_t>(id)] = true;
}

int Registry::num_modules() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<int>(modules_.size());
}

bool Registry::committed(int id) const {
  std::lock_guard<std::mutex> lk(mu_);
  return id >= 0 && id < static_cast<int>(committed_.size()) &&
         committed_[static_cast<std::size_t>(id)];
}

const Module& Registry::module(int id) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (id < 0 || id >= static_cast<int>(modules_.size())) {
    throw HlsError("Registry::module: unknown module id");
  }
  if (!committed_[static_cast<std::size_t>(id)]) {
    throw HlsError("Registry::module: module '" +
                   modules_[static_cast<std::size_t>(id)].first +
                   "' used before commit");
  }
  return modules_[static_cast<std::size_t>(id)].second;
}

const VarInfo& Registry::var(const VarHandle& h) const {
  const Module& m = module(h.module);
  if (h.var < 0 || h.var >= static_cast<int>(m.vars.size())) {
    throw HlsError("Registry::var: bad variable index");
  }
  return m.vars[static_cast<std::size_t>(h.var)];
}

ModuleBuilder::ModuleBuilder(Registry& reg, std::string name)
    : reg_(&reg), id_(reg.reserve_module(name)) {
  m_.name = std::move(name);
}

VarHandle ModuleBuilder::add_raw(const std::string& var_name,
                                 const topo::ScopeSpec& scope,
                                 std::size_t size, std::size_t align,
                                 VarInitFn init) {
  if (committed_) {
    throw HlsError("ModuleBuilder: cannot add '" + var_name +
                   "' after commit (variable would already be in use)");
  }
  if (size == 0) throw HlsError("ModuleBuilder: zero-sized variable");
  if (align == 0 || (align & (align - 1)) != 0) {
    throw HlsError("ModuleBuilder: alignment must be a power of two");
  }
  for (const VarInfo& v : m_.vars) {
    if (v.name == var_name) {
      throw HlsError("ModuleBuilder: duplicate variable '" + var_name + "'");
    }
  }
  const CanonicalScope canon = canonicalize(reg_->scope_map(), scope);

  // Bump-allocate within this module's region for the variable's scope.
  std::size_t* cur = nullptr;
  for (auto& [s, bytes] : cursor_) {
    if (s == canon) cur = &bytes;
  }
  if (cur == nullptr) {
    cursor_.push_back({canon, 0});
    cur = &cursor_.back().second;
  }
  const std::size_t offset = (*cur + align - 1) & ~(align - 1);
  *cur = offset + size;

  VarInfo info;
  info.name = var_name;
  info.scope = scope;
  info.canonical = canon;
  info.size = size;
  info.align = align;
  info.offset = offset;
  info.init = std::move(init);
  m_.vars.push_back(std::move(info));

  VarHandle h;
  h.module = id_;
  h.var = static_cast<int>(m_.vars.size()) - 1;
  h.scope = canon;
  h.sid = scope_id(reg_->scopes(), canon);
  h.offset = offset;
  h.size = size;
  return h;
}

int ModuleBuilder::commit() {
  if (committed_) throw HlsError("ModuleBuilder: double commit");
  committed_ = true;
  m_.region_bytes = cursor_;
  reg_->commit_module(id_, std::move(m_));
  return id_;
}

}  // namespace hlsmpc::hls
