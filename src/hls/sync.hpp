// HLS synchronization: barrier, single, single nowait (paper §IV.B).
//
// Three mechanisms per scope instance:
//  - barrier: for scopes no wider than a shared cache, a flat
//    counter+generation barrier; for wider scopes (numa/node spanning
//    several LLC domains) the paper's shared-cache-aware algorithm: tasks
//    synchronize within their LLC group first, one representative per
//    group proceeds to a top-level barrier, then releases its group.
//  - single: a *modified barrier* — the last task to arrive executes the
//    code block before releasing the others (no second barrier needed).
//  - single nowait: generation counters; the first task whose private
//    counter runs ahead of the instance counter executes the block.
//
// Every completed episode advances per-task and per-instance counters;
// migration (MPC_Move) is legal only when the task's counters match the
// destination's (§IV.A).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "hls/registry.hpp"
#include "obs/event.hpp"
#include "ult/episode_barrier.hpp"
#include "ult/task_context.hpp"

namespace hlsmpc::obs {
class Recorder;
}  // namespace hlsmpc::obs

namespace hlsmpc::hls {

/// One observable synchronization step. Emitted by SyncManager (and by
/// Runtime::migrate via report_migration) when an observer is installed;
/// the race checker in src/check/ consumes these to verify the paper's
/// correctness conditions at run time.
struct SyncEvent {
  enum class Kind {
    barrier_enter,      ///< task reached a barrier directive
    barrier_exit,       ///< task left the barrier (episode complete for it)
    single_enter,       ///< task reached a single directive
    single_exec_begin,  ///< task was elected executor and starts the block
    single_exec_end,    ///< executor finished the block (before releases)
    single_exit,        ///< non-executor released from the single
    nowait_claim,       ///< task claimed a single-nowait site
    nowait_skip,        ///< task skipped an already-claimed nowait site
    migrate_ok,         ///< MPC_Move accepted (cpu = destination)
    migrate_rejected,   ///< MPC_Move refused (cpu = attempted destination)
    // One-sided RMA steps, emitted by mpi::rma::Win when an observer is
    // installed (window id in `instance`, details in the rma_* fields;
    // `scope` is unused). Emission order is disciplined so log order
    // respects the real synchronization order: fence_enter precedes the
    // epoch publication, fence_exit follows the last acquire, lock
    // follows the acquiring CAS, unlock precedes the releasing store.
    rma_put,            ///< one-sided put by `task` into rma_target
    rma_get,            ///< one-sided get by `task` from rma_target
    rma_acc,            ///< one-sided accumulate by `task` into rma_target
    rma_fence_enter,    ///< task entered a window fence (task_count = epoch)
    rma_fence_exit,     ///< task left the fence (saw all ranks at the epoch)
    rma_lock,           ///< passive-target lock acquired (rma_excl set)
    rma_unlock,         ///< passive-target lock about to be released
  };

  Kind kind = Kind::barrier_enter;
  int task = -1;
  int cpu = -1;       ///< task's cpu (destination cpu for migrate events)
  CanonicalScope scope;
  int instance = -1;  ///< scope instance index; window id for rma events
  /// Task's episode count for `scope` at emission time (incl. nowait);
  /// the fence epoch number for rma_fence_* events.
  std::uint64_t task_count = 0;
  /// Instance's episode count for `scope` at emission time (incl. nowait).
  std::uint64_t instance_count = 0;
  // RMA payload (rma_* kinds only).
  int rma_target = -1;          ///< target rank of the op / lock word
  std::uint64_t rma_offset = 0; ///< byte offset inside the target region
  std::uint64_t rma_bytes = 0;  ///< bytes touched by the op
  bool rma_excl = false;        ///< lock/unlock: exclusive (vs shared)
};

const char* to_string(SyncEvent::Kind k);

/// Receives every SyncEvent; may be called concurrently from all tasks.
/// Install before tasks start running and keep alive until they joined.
class SyncObserver {
 public:
  virtual ~SyncObserver() = default;
  virtual void on_sync_event(const SyncEvent& e) = 0;
};

class SyncManager {
 public:
  /// `ntasks` MPI tasks; initial pinning provided via set_task_cpu before
  /// any synchronization call. `obs`, when given (and when the
  /// observability layer is compiled in), receives episode counters and
  /// timed barrier/single/nowait events.
  SyncManager(const topo::ScopeMap& sm, int ntasks,
              obs::Recorder* obs = nullptr);
  SyncManager(const SyncManager&) = delete;
  SyncManager& operator=(const SyncManager&) = delete;

  void set_task_cpu(int task, int cpu);
  int task_cpu(int task) const;

  void barrier(const CanonicalScope& scope, ult::TaskContext& ctx);
  /// Returns true for exactly one task (the last to arrive), which must
  /// execute the protected block and then call single_done. All other
  /// tasks return false only after single_done ran.
  bool single_enter(const CanonicalScope& scope, ult::TaskContext& ctx);
  void single_done(const CanonicalScope& scope, ult::TaskContext& ctx);
  /// Returns true for the first task reaching this (per-task counted)
  /// nowait site; never blocks.
  bool single_nowait(const CanonicalScope& scope, ult::TaskContext& ctx);

  /// Synchronization episodes the task has completed for `scope`.
  std::uint64_t task_sync_count(int task, const CanonicalScope& scope) const;
  /// Episodes completed by the instance of `scope` containing `cpu`.
  std::uint64_t instance_sync_count(const CanonicalScope& scope,
                                    int cpu) const;
  /// Number of tasks currently pinned inside the instance of `scope`
  /// containing `cpu` — the barrier's expected arrival count.
  int participants(const CanonicalScope& scope, int cpu) const;

  /// Use the hierarchical algorithm for scopes spanning several LLC
  /// domains (true on multi-socket machines for numa/node). Exposed for
  /// the micro-benchmarks' flat-vs-hierarchical comparison.
  bool uses_hierarchy(const CanonicalScope& scope) const;
  void force_flat(bool v) { force_flat_ = v; }

  /// Install an event observer (nullptr to detach). Must happen before
  /// tasks synchronize; emission is skipped entirely when unset.
  void set_observer(SyncObserver* o) { observer_ = o; }
  SyncObserver* observer() const { return observer_; }

  /// Opt-in sync watchdog: a task waiting inside a barrier/single longer
  /// than `ms` throws HlsError(ErrorCode::deadlock) with a diagnostic dump
  /// naming the tasks that arrived and, for each missing participant, its
  /// cpu, last sync epoch, and where it currently is (idle / stuck in
  /// another primitive). 0 (the default) disables the watchdog and keeps
  /// the wait loop byte-for-byte on its lock-free fast path. Set before
  /// tasks synchronize. With the watchdog armed, waiters poll (yield)
  /// instead of blocking on the barrier word — std::atomic::wait has no
  /// timeout — so enable it for debugging runs, not peak-throughput ones.
  void set_watchdog_ms(int ms);
  int watchdog_ms() const {
    return watchdog_ms_.load(std::memory_order_relaxed);
  }

  /// True while `task` executes a single block (between being elected
  /// executor and its single_done). Migration is illegal in that window.
  bool in_single(int task) const;

  /// Forward a migration decision to the observer (called by
  /// Runtime::migrate; `to_cpu` is the attempted destination).
  void report_migration(const ult::TaskContext& ctx, int to_cpu, bool ok);

 private:
  /// Cache-line-padded sense-reversing episode barrier. The word layout
  /// and wait loop live in ult::EpisodeBarrier (shared with the MPI
  /// shared-memory collective engine); SyncManager layers the HLS
  /// specifics on top: watchdog polling, watch-slot diagnostics, and the
  /// per-task episode counters that gate migration legality.
  using Flat = ult::EpisodeBarrier;

  struct alignas(64) InstanceSync {
    Flat top;
    std::vector<Flat> groups;  // one per LLC domain inside (hierarchy only)
    std::atomic<std::uint64_t> episodes{0};
    std::atomic<std::uint64_t> nowait_count{0};
  };

  /// Per-task watchdog diagnostics slot, written by its own task (and only
  /// when the watchdog is armed): which primitive/scope instance the task
  /// is currently inside, and its episode count for that scope at entry.
  /// The firing task reads every slot to name who arrived and who is
  /// missing.
  struct alignas(64) WatchSlot {
    /// 0 = not inside a sync primitive; else 1 | sid << 8 | inst << 32.
    std::atomic<std::uint64_t> where{0};
    std::atomic<const char*> prim{nullptr};
    std::atomic<std::uint64_t> epoch{0};
  };

  int sid(const CanonicalScope& scope) const {
    return scope_id(scopes_, scope);
  }
  InstanceSync& instance(const CanonicalScope& scope, int cpu, int* inst_out);
  /// Arrive at a flat barrier. With `hold_last` the last arriver returns
  /// true immediately (generation not yet advanced: single semantics);
  /// otherwise the last arriver releases everyone. `expected` is
  /// re-evaluated on every waiting probe: a migration can shrink the
  /// instance's participant count, turning a waiter into the completing
  /// arrival.
  bool flat_arrive(Flat& f, const std::function<int()>& expected,
                   ult::TaskContext& ctx, bool hold_last,
                   const CanonicalScope& scope, int inst, const char* prim);
  void flat_release(Flat& f);
  /// Build the stuck-sync diagnostic, emit it as an obs::Event, and throw
  /// HlsError(ErrorCode::deadlock). Called from flat_arrive's wait loop
  /// when the watchdog deadline passes.
  [[noreturn]] void watchdog_fire(const CanonicalScope& scope, int inst,
                                  const char* prim, ult::TaskContext& ctx,
                                  long long waited_ms);
  int group_index(const CanonicalScope& scope, int inst, int cpu) const;
  int group_participants(const CanonicalScope& scope, int inst,
                         int group) const;
  int active_groups(const CanonicalScope& scope, int inst) const;
  void bump_task(int task, const CanonicalScope& scope);
  void emit(SyncEvent::Kind kind, const CanonicalScope& scope, int inst,
            const InstanceSync* is, const ult::TaskContext& ctx);

  const topo::ScopeMap* sm_;
  topo::DenseScopeTable scopes_;
  int llc_span_ = 1;  ///< cpus per last-level-cache instance
  SyncObserver* observer_ = nullptr;
#if HLSMPC_OBS_ENABLED
  obs::Recorder* obs_ = nullptr;
  /// Per-task stash of the single_enter timestamp, so the executor's
  /// single_done can emit one single_exec event spanning the whole block.
  /// Each slot is written only by its own task.
  std::vector<std::uint64_t> single_t0_;
#endif
  std::vector<std::atomic<int>> task_cpu_;
  std::vector<std::atomic<int>> single_depth_;
  // Per-task counters indexed [task][sid]; each row written only by its
  // own task. Barrier / single episodes and nowait sites are counted
  // separately because the nowait claim compares the task's site count
  // against the instance's nowait counter alone.
  std::vector<std::vector<std::uint64_t>> task_counts_;
  std::vector<std::vector<std::uint64_t>> task_nowait_counts_;
  // [sid][instance]; fully materialized at construction (the dense index
  // space is frozen then), so resolution never takes a lock.
  std::vector<std::vector<std::unique_ptr<InstanceSync>>> instances_;
  bool force_flat_ = false;
  /// 0 = off. Loaded (relaxed) once per primitive entry; the slow-path
  /// wait loop re-checks the deadline only when armed.
  std::atomic<int> watchdog_ms_{0};
  std::vector<WatchSlot> watch_;  // [task], written by owner when armed
};

}  // namespace hlsmpc::hls
