// Umbrella header: the public HLS API in one include.
//
//   #include "hls/hls.hpp"
//
// pulls in everything an application needs:
//  - hls::Runtime, hls::Runtime::Options, hls::ScopeSet  (runtime.hpp)
//  - hls::Var<T>, hls::ArrayVar<T>, hls::TaskView, add_var/add_array
//    (var.hpp)
//  - hls::VarHandle, hls::ModuleBuilder, hls::CanonicalScope, hls::HlsError
//    (registry.hpp)
//  - topo scope specs: topo::node_scope() etc. (topo/scope_map.hpp)
//  - the observability surface: obs::Recorder, obs::Snapshot + to_json,
//    obs::write_chrome_trace, obs::Sink/Event/Counter
//
// Applications and tests should include this header rather than the
// individual pieces; the split headers remain for the runtime's internal
// layering only.
#pragma once

#include "hls/registry.hpp"
#include "hls/runtime.hpp"
#include "hls/var.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/recorder.hpp"
#include "obs/snapshot.hpp"
#include "topo/scope_map.hpp"
