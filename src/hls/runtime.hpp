// HLS runtime facade: ties registry, storage and synchronization together.
//
// This is the library a `-fhls`-style compiler would generate calls into
// (paper §IV): get_addr resolves a (module, offset, scope) triple for the
// calling task; single_enter/single_done and barrier implement the
// directives; migrate implements MPC_Move's counter check. The typed
// front end (Var<T>, TaskView) lives in var.hpp; applications include the
// umbrella header hls/hls.hpp.
//
// Directive surface: the four `*_scope` entry points are the canonical
// core — what compiled calls hit after the compiler resolved a variable
// list to one scope. The variable-list forms are thin inline wrappers
// that resolve a ScopeSet; call sites inside loops should build the
// ScopeSet once and pass it directly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <vector>

#include "hls/registry.hpp"
#include "hls/storage.hpp"
#include "hls/sync.hpp"
#include "memtrack/memtrack.hpp"
#include "obs/recorder.hpp"

#ifndef HLSMPC_RMA_ENABLED
#define HLSMPC_RMA_ENABLED 1
#endif

#ifndef HLSMPC_RECOVERY_ENABLED
#define HLSMPC_RECOVERY_ENABLED 1
#endif

namespace hlsmpc::hls {

class Runtime;
#if HLSMPC_RECOVERY_ENABLED
class CheckpointStore;
#endif

/// A directive's variable list with its scope checks done once: the
/// common scope (what `single` needs — all variables share it) and the
/// widest scope (what `barrier` synchronizes). Resolve once per call
/// site, then every directive call through it is a direct `*_scope`
/// dispatch with no per-call list walk.
class ScopeSet {
 public:
  ScopeSet() = default;
  /// Validates every handle and resolves both scopes. Throws HlsError on
  /// an invalid handle or an empty list. A mixed-scope list is legal here
  /// (barrier accepts it); common() then throws, like the compiler
  /// rejecting `single` on variables of different scopes (§II.B.2).
  ScopeSet(const Runtime& rt, std::initializer_list<VarHandle> vars);

  bool valid() const { return valid_; }
  /// True when every variable in the list shares one scope.
  bool single_scoped() const { return single_scoped_; }

  /// Scope shared by all variables (single/single_nowait). Throws
  /// HlsError when the list mixes scopes.
  const CanonicalScope& common() const;
  /// Widest scope in the list (barrier).
  const CanonicalScope& widest() const;

 private:
  CanonicalScope common_{};
  CanonicalScope widest_{};
  bool valid_ = false;
  bool single_scoped_ = false;
};

class Runtime {
 public:
  /// Construction-time knobs. Pass the node tracker to account HLS
  /// storage alongside app/runtime memory; pass a shared obs::Recorder to
  /// merge this runtime's counters/events with the rest of the node
  /// (mpc::Node does), or leave it null to let the runtime own one.
  struct Options {
    memtrack::Tracker* tracker = nullptr;
    /// Observability recorder. Null = the runtime owns a private one
    /// (when HLSMPC_OBS is compiled in). Must be sized for >= ntasks.
    obs::Recorder* obs = nullptr;
    /// Extra sink chained onto the event stream (correctness tracers,
    /// exporters). Must outlive the runtime's tasks.
    obs::Sink* obs_sink = nullptr;
    /// Ring capacity of the owned recorder (events per task; 0 = counters
    /// only). Ignored when `obs` is supplied.
    std::size_t obs_ring_capacity = 4096;
    /// Sync watchdog deadline: a task stuck inside a barrier/single for
    /// longer than this throws HlsError(ErrorCode::deadlock) with a dump
    /// naming the arrived and missing tasks (see
    /// SyncManager::set_watchdog_ms). 0 = off (the default; keeps the
    /// sync hot paths untouched).
    int watchdog_ms = 0;
  };

  /// `ntasks` MPI tasks will use this runtime.
  Runtime(const topo::Machine& machine, int ntasks, Options opts);
  /// Default options (owned tracker, owned recorder when compiled in).
  Runtime(const topo::Machine& machine, int ntasks);
  /// Legacy form; forwards to the Options constructor.
  Runtime(const topo::Machine& machine, int ntasks,
          memtrack::Tracker* tracker)
      : Runtime(machine, ntasks, Options{.tracker = tracker}) {}
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  const topo::Machine& machine() const { return machine_; }
  const topo::ScopeMap& scope_map() const { return sm_; }
  Registry& registry() { return reg_; }
  StorageManager& storage() { return storage_; }
  SyncManager& sync() { return sync_; }
  int ntasks() const { return ntasks_; }

  /// The runtime's observability recorder; nullptr when the layer was
  /// compiled out (HLSMPC_OBS=OFF).
#if HLSMPC_OBS_ENABLED
  obs::Recorder* obs() const { return obs_; }
#else
  obs::Recorder* obs() const { return nullptr; }
#endif

  /// Must be called by each task before any other HLS operation
  /// (TaskView's constructor does it): records the task's pinning.
  void bind_task(const ult::TaskContext& ctx);

  /// hls_get_addr_<scope> — the accessor the compiler would emit. Warm
  /// calls hit the task's resolved-address cache: one array load plus an
  /// offset add, no atomics and no locks. `ctx` is non-const because a
  /// cold call may suspend at the first-touch sync_point.
  void* get_addr(const VarHandle& h, ult::TaskContext& ctx);

  // Scope-level entry points — THE canonical directive core (what the
  // compiled calls pass after the compiler resolved the variable lists).
  void barrier_scope(const CanonicalScope& s, ult::TaskContext& ctx);
  bool single_enter_scope(const CanonicalScope& s, ult::TaskContext& ctx);
  void single_done_scope(const CanonicalScope& s, ult::TaskContext& ctx);
  bool single_nowait_scope(const CanonicalScope& s, ult::TaskContext& ctx);

  // Pre-resolved list forms: direct dispatch to the scope core.
  void barrier(const ScopeSet& s, ult::TaskContext& ctx) {
    barrier_scope(s.widest(), ctx);
  }
  bool single_enter(const ScopeSet& s, ult::TaskContext& ctx) {
    return single_enter_scope(s.common(), ctx);
  }
  void single_done(const ScopeSet& s, ult::TaskContext& ctx) {
    single_done_scope(s.common(), ctx);
  }
  bool single_nowait(const ScopeSet& s, ult::TaskContext& ctx) {
    return single_nowait_scope(s.common(), ctx);
  }

  // Variable-list conveniences: thin wrappers resolving a ScopeSet per
  // call. They validate variables the way the compiler would: `single`
  // requires all variables to share one scope (§II.B.2); `barrier`
  // synchronizes the *largest* scope in its list.
  void barrier(std::initializer_list<VarHandle> vars, ult::TaskContext& ctx) {
    barrier(ScopeSet(*this, vars), ctx);
  }
  bool single_enter(std::initializer_list<VarHandle> vars,
                    ult::TaskContext& ctx) {
    return single_enter(ScopeSet(*this, vars), ctx);
  }
  void single_done(std::initializer_list<VarHandle> vars,
                   ult::TaskContext& ctx) {
    single_done(ScopeSet(*this, vars), ctx);
  }
  bool single_nowait(std::initializer_list<VarHandle> vars,
                     ult::TaskContext& ctx) {
    return single_nowait(ScopeSet(*this, vars), ctx);
  }

  /// MPC_Move: re-pin the task to `new_cpu`. Throws HlsError unless the
  /// task has seen exactly as many single/barrier episodes as the
  /// destination's scope instances (paper §IV.A).
  void migrate(ult::TaskContext& ctx, int new_cpu);

#if HLSMPC_RMA_ENABLED
  /// Scope backing for a one-sided RMA window (mpi::rma): registers a
  /// fresh single-variable module "rma:<name>" of `bytes` per scope
  /// instance and returns its handle. At the default core scope every
  /// task resolves a private region (one task per core), which each rank
  /// passes to Comm::win_create — the window then IS scope storage, so
  /// put/get are single-copy loads/stores into HLS-placed memory. Wider
  /// scopes alias ranks sharing an instance onto one region (deliberate:
  /// that is the paper's flexible-sharing knob).
  VarHandle rma_backing(const std::string& name, std::size_t bytes,
                        const topo::ScopeSpec& scope = topo::core_scope());
#endif

#if HLSMPC_RECOVERY_ENABLED
  /// Snapshot every materialized region of `scope` into `store` as a new
  /// checkpoint version (see hls/checkpoint.hpp for format and atomic
  /// publication). Quiescent callers only: run it between episodes, after
  /// a barrier of at least `scope`, so the payload is committed data.
  /// Counts the bytes to obs::Counter::ckpt_bytes. Returns the version.
  std::uint64_t checkpoint(CheckpointStore& store,
                           const topo::ScopeSpec& scope);
  /// Rehydrate `scope` storage from the newest consistent version in
  /// `store` — the warm-restart path of a respawned node. Regions never
  /// touched in this runtime are first-touched before being overwritten,
  /// so a fresh process restores straight into lazily-built storage.
  /// In-place overwrite: resolved addresses (and task caches) stay valid.
  /// Throws HlsError when no version passes validation. Returns the
  /// version restored.
  std::uint64_t restore(CheckpointStore& store, const topo::ScopeSpec& scope);
#endif

  /// Scope shared by all variables of the list (throws if mixed: the
  /// paper's "same HLS scope" compile-time check for single).
  CanonicalScope common_scope(std::initializer_list<VarHandle> vars) const;
  /// Widest scope of the list (for barrier).
  CanonicalScope widest_scope(std::initializer_list<VarHandle> vars) const;

 private:
  /// One resolved (module, scope) region as seen from the task's current
  /// cpu. `base` doubles as the valid flag.
  struct CacheEntry {
    std::byte* base = nullptr;
    std::size_t size = 0;
  };
  /// Per-task resolved-address cache, indexed `module * num_scopes + sid`.
  /// Owned and touched exclusively by its task, so no synchronization is
  /// needed — but it MUST be dropped whenever the task changes cpu
  /// (migrate / bind_task): a cached pointer names a scope *instance*,
  /// and the instance containing the task follows its cpu. The `cpu`
  /// field double-checks that rule on every hit.
  struct alignas(64) TaskCache {
    int cpu = -1;
    std::vector<CacheEntry> entries;
#if HLSMPC_OBS_ENABLED
    /// The task's get_addr_warm counter cell, resolved once at
    /// construction: the warm path bumps it with one relaxed
    /// load/add/store instead of going through Recorder::count()'s
    /// bounds check and block indexing (which cost ~25% of the ~4ns
    /// path). Null when the recorder is sized below this task id.
    std::atomic<std::uint64_t>* warm_hits = nullptr;
#endif
  };

  void invalidate_cache(int task);

  topo::Machine machine_;
  topo::ScopeMap sm_;
  std::unique_ptr<memtrack::Tracker> owned_tracker_;
  memtrack::Tracker* tracker_;
  Registry reg_;
#if HLSMPC_OBS_ENABLED
  std::unique_ptr<obs::Recorder> owned_obs_;
  obs::Recorder* obs_;
#endif
  StorageManager storage_;
  SyncManager sync_;
  int ntasks_;
  int num_scopes_;
  std::vector<TaskCache> caches_;
};

}  // namespace hlsmpc::hls
