// HLS runtime facade: ties registry, storage and synchronization together.
//
// This is the library a `-fhls`-style compiler would generate calls into
// (paper §IV): get_addr resolves a (module, offset, scope) triple for the
// calling task; single_enter/single_done and barrier implement the
// directives; migrate implements MPC_Move's counter check. The typed
// front end (Var<T>, TaskView) lives in var.hpp.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <memory>
#include <vector>

#include "hls/registry.hpp"
#include "hls/storage.hpp"
#include "hls/sync.hpp"
#include "memtrack/memtrack.hpp"

namespace hlsmpc::hls {

class Runtime {
 public:
  /// `ntasks` MPI tasks will use this runtime; pass the node tracker to
  /// account HLS storage alongside app/runtime memory.
  Runtime(const topo::Machine& machine, int ntasks,
          memtrack::Tracker* tracker = nullptr);
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  const topo::Machine& machine() const { return machine_; }
  const topo::ScopeMap& scope_map() const { return sm_; }
  Registry& registry() { return reg_; }
  StorageManager& storage() { return storage_; }
  SyncManager& sync() { return sync_; }
  int ntasks() const { return ntasks_; }

  /// Must be called by each task before any other HLS operation
  /// (TaskView's constructor does it): records the task's pinning.
  void bind_task(const ult::TaskContext& ctx);

  /// hls_get_addr_<scope> — the accessor the compiler would emit. Warm
  /// calls hit the task's resolved-address cache: one array load plus an
  /// offset add, no atomics and no locks. `ctx` is non-const because a
  /// cold call may suspend at the first-touch sync_point.
  void* get_addr(const VarHandle& h, ult::TaskContext& ctx);

  // Directive-shaped entry points. The list forms validate variables the
  // way the compiler would: `single` requires all variables to share one
  // scope (compile error otherwise, §II.B.2); `barrier` synchronizes the
  // *largest* scope in its list.
  void barrier(std::initializer_list<VarHandle> vars, ult::TaskContext& ctx);
  bool single_enter(std::initializer_list<VarHandle> vars,
                    ult::TaskContext& ctx);
  void single_done(std::initializer_list<VarHandle> vars,
                   ult::TaskContext& ctx);
  bool single_nowait_enter(std::initializer_list<VarHandle> vars,
                           ult::TaskContext& ctx);

  /// Scope-level entry points (what the compiled calls pass after the
  /// compiler resolved the variable lists).
  void barrier_scope(const CanonicalScope& s, ult::TaskContext& ctx);
  bool single_enter_scope(const CanonicalScope& s, ult::TaskContext& ctx);
  void single_done_scope(const CanonicalScope& s, ult::TaskContext& ctx);
  bool single_nowait_scope(const CanonicalScope& s, ult::TaskContext& ctx);

  /// MPC_Move: re-pin the task to `new_cpu`. Throws HlsError unless the
  /// task has seen exactly as many single/barrier episodes as the
  /// destination's scope instances (paper §IV.A).
  void migrate(ult::TaskContext& ctx, int new_cpu);

  /// Scope shared by all variables of the list (throws if mixed: the
  /// paper's "same HLS scope" compile-time check for single).
  CanonicalScope common_scope(std::initializer_list<VarHandle> vars) const;
  /// Widest scope of the list (for barrier).
  CanonicalScope widest_scope(std::initializer_list<VarHandle> vars) const;

 private:
  /// One resolved (module, scope) region as seen from the task's current
  /// cpu. `base` doubles as the valid flag.
  struct CacheEntry {
    std::byte* base = nullptr;
    std::size_t size = 0;
  };
  /// Per-task resolved-address cache, indexed `module * num_scopes + sid`.
  /// Owned and touched exclusively by its task, so no synchronization is
  /// needed — but it MUST be dropped whenever the task changes cpu
  /// (migrate / bind_task): a cached pointer names a scope *instance*,
  /// and the instance containing the task follows its cpu. The `cpu`
  /// field double-checks that rule on every hit.
  struct alignas(64) TaskCache {
    int cpu = -1;
    std::vector<CacheEntry> entries;
  };

  void invalidate_cache(int task);

  topo::Machine machine_;
  topo::ScopeMap sm_;
  std::unique_ptr<memtrack::Tracker> owned_tracker_;
  memtrack::Tracker* tracker_;
  Registry reg_;
  StorageManager storage_;
  SyncManager sync_;
  int ntasks_;
  int num_scopes_;
  std::vector<TaskCache> caches_;
};

}  // namespace hlsmpc::hls
