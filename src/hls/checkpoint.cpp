#include "hls/checkpoint.hpp"

#if HLSMPC_RECOVERY_ENABLED

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "fault/injector.hpp"

namespace hlsmpc::hls {

namespace {

// Mirrors shm/segment.cpp's liveness probe for pid-stamped temporaries.
// Local copy on purpose: hls does not link against shm (layering rule in
// src/CMakeLists.txt), and the probe is two lines.
bool process_alive(long pid) {
  return kill(static_cast<pid_t>(pid), 0) == 0 || errno != ESRCH;
}

constexpr char kMagic[8] = {'H', 'L', 'S', 'C', 'K', 'P', 'T', '1'};
constexpr std::uint32_t kFormat = 1;

struct FileHeader {
  char magic[8];
  std::uint32_t format = kFormat;
  std::int32_t scope_kind = 0;
  std::int32_t cache_level = 0;
  std::uint32_t nregions = 0;
  std::uint64_t version = 0;
  std::uint64_t payload_bytes = 0;
};

struct RegionHeader {
  std::int32_t module = 0;
  std::int32_t instance = 0;
  std::uint64_t bytes = 0;
};

[[noreturn]] void throw_errno(const std::string& what) {
  throw HlsError(what + ": " + std::strerror(errno));
}

void write_all(int fd, const void* data, std::size_t bytes,
               const char* what) {
  const char* p = static_cast<const char*>(data);
  while (bytes > 0) {
    const ssize_t n = ::write(fd, p, bytes);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno(std::string("checkpoint: write of ") + what + " failed");
    }
    p += n;
    bytes -= static_cast<std::size_t>(n);
  }
}

/// Streams file contents while folding them into a running CRC, so the
/// trailer covers exactly the bytes on disk.
struct CrcWriter {
  int fd;
  std::uint32_t crc = 0;

  void write(const void* data, std::size_t bytes, const char* what) {
    crc = crc32c(data, bytes, crc);
    write_all(fd, data, bytes, what);
  }
};

/// Read-only view of a version file. mmap when possible — restore then
/// checksums and imports straight from the page cache, no intermediate
/// copy — falling back to a buffered read on filesystems that refuse to
/// map (the bench gate's restore-vs-memcpy bound assumes the mmap path).
struct FileView {
  const char* data = nullptr;
  std::size_t size = 0;

  FileView() = default;
  FileView(const FileView&) = delete;
  FileView& operator=(const FileView&) = delete;
  ~FileView() {
    if (map_ != nullptr) ::munmap(map_, size);
  }

  bool load(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return false;
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
      ::close(fd);
      return false;
    }
    size = static_cast<std::size_t>(st.st_size);
    if (size == 0) {
      ::close(fd);
      data = nullptr;
      return true;  // header-size validation rejects it downstream
    }
    void* m = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (m != MAP_FAILED) {
      map_ = m;
      data = static_cast<const char*>(m);
      ::close(fd);
      return true;
    }
    buf_.resize(size);
    std::size_t got = 0;
    while (got < size) {
      const ssize_t n = ::read(fd, buf_.data() + got, size - got);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        return false;
      }
      if (n == 0) break;  // truncated under us: short view fails CRC
      got += static_cast<std::size_t>(n);
    }
    ::close(fd);
    size = got;
    data = buf_.data();
    return true;
  }

 private:
  void* map_ = nullptr;
  std::vector<char> buf_;
};

/// Parse a strictly-numeric version suffix; -1 on anything else.
long long parse_version(const std::string& name, const std::string& prefix) {
  if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix) != 0) {
    return -1;
  }
  const std::string digits = name.substr(prefix.size());
  char* end = nullptr;
  const long long v = std::strtoll(digits.c_str(), &end, 10);
  if (end != digits.c_str() + digits.size() || v < 0) return -1;
  return v;
}

std::string scope_token(const CanonicalScope& s) {
  switch (s.kind) {
    case topo::ScopeKind::core:
      return "core";
    case topo::ScopeKind::cache:
      return "cacheL" + std::to_string(s.cache_level);
    case topo::ScopeKind::numa:
      return s.cache_level == 2 ? "numaS" : "numa";
    case topo::ScopeKind::node:
      return "node";
  }
  return "scope";
}

}  // namespace

namespace {

/// Software CRC-32C: slice-by-8 tables, built once — table[0] is the
/// classic byte table, table[k] shifts it k extra bytes so eight lookups
/// retire eight input bytes per iteration.
std::uint32_t crc32c_sw(const unsigned char* p, std::size_t bytes,
                        std::uint32_t crc) {
  static const auto tables = [] {
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c >> 1) ^ ((c & 1u) != 0 ? 0x82F63B78u : 0u);
      }
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = t[0][i];
      for (std::size_t k = 1; k < 8; ++k) {
        c = t[0][c & 0xffu] ^ (c >> 8);
        t[k][i] = c;
      }
    }
    return t;
  }();

  while (bytes >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = tables[7][lo & 0xffu] ^ tables[6][(lo >> 8) & 0xffu] ^
          tables[5][(lo >> 16) & 0xffu] ^ tables[4][lo >> 24] ^
          tables[3][hi & 0xffu] ^ tables[2][(hi >> 8) & 0xffu] ^
          tables[1][(hi >> 16) & 0xffu] ^ tables[0][hi >> 24];
    p += 8;
    bytes -= 8;
  }
  while (bytes-- > 0) {
    crc = tables[0][(crc ^ *p++) & 0xffu] ^ (crc >> 8);
  }
  return crc;
}

#if defined(__x86_64__) && defined(__GNUC__)
/// Hardware CRC-32C via SSE4.2 (the instruction implements exactly the
/// Castagnoli polynomial, so the value matches crc32c_sw bit for bit).
__attribute__((target("sse4.2"))) std::uint32_t crc32c_hw(
    const unsigned char* p, std::size_t bytes, std::uint32_t crc) {
  std::uint64_t c = crc;
  while (bytes >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    c = __builtin_ia32_crc32di(c, word);
    p += 8;
    bytes -= 8;
  }
  std::uint32_t c32 = static_cast<std::uint32_t>(c);
  while (bytes-- > 0) {
    c32 = __builtin_ia32_crc32qi(c32, *p++);
  }
  return c32;
}

bool have_sse42() {
  static const bool have = __builtin_cpu_supports("sse4.2");
  return have;
}
#endif

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t bytes,
                     std::uint32_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  const std::uint32_t crc = ~seed;
#if defined(__x86_64__) && defined(__GNUC__)
  if (have_sse42()) return ~crc32c_hw(p, bytes, crc);
#endif
  return ~crc32c_sw(p, bytes, crc);
}

CheckpointStore::CheckpointStore(Options opts) : opts_(std::move(opts)) {
  if (opts_.dir.empty()) {
    throw HlsError("CheckpointStore: empty directory");
  }
  if (opts_.tag.empty()) {
    throw HlsError("CheckpointStore: empty tag");
  }
  if (opts_.keep < 2) opts_.keep = 2;
  if (::mkdir(opts_.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    throw_errno("CheckpointStore: mkdir '" + opts_.dir + "' failed");
  }
  cleanup_stale_tmp();
}

std::string CheckpointStore::stem(const CanonicalScope& scope) const {
  return opts_.tag + "." + scope_token(scope);
}

std::vector<std::uint64_t> CheckpointStore::versions(
    const CanonicalScope& scope) const {
  const std::string prefix = stem(scope) + ".v";
  std::vector<std::uint64_t> out;
  DIR* dir = ::opendir(opts_.dir.c_str());
  if (dir == nullptr) return out;
  while (dirent* e = ::readdir(dir)) {
    const long long v = parse_version(e->d_name, prefix);
    if (v >= 0) out.push_back(static_cast<std::uint64_t>(v));
  }
  ::closedir(dir);
  std::sort(out.begin(), out.end());
  return out;
}

int CheckpointStore::cleanup_stale_tmp() const {
  const std::string marker = ".tmp.";
  int removed = 0;
  DIR* dir = ::opendir(opts_.dir.c_str());
  if (dir == nullptr) return 0;
  while (dirent* e = ::readdir(dir)) {
    const std::string name = e->d_name;
    if (name.compare(0, opts_.tag.size() + 1, opts_.tag + ".") != 0) continue;
    const std::size_t pos = name.rfind(marker);
    if (pos == std::string::npos) continue;
    const std::string digits = name.substr(pos + marker.size());
    char* end = nullptr;
    const long pid = std::strtol(digits.c_str(), &end, 10);
    if (end != digits.c_str() + digits.size() || pid <= 0) continue;
    if (process_alive(pid)) continue;
    if (::unlink((opts_.dir + "/" + name).c_str()) == 0) ++removed;
  }
  ::closedir(dir);
  return removed;
}

CheckpointStore::Report CheckpointStore::save(StorageManager& storage,
                                              const Registry& reg,
                                              const CanonicalScope& scope) {
  (void)reg;
  struct Entry {
    int instance;
    int module;
    StorageManager::Resolved r;
  };
  std::vector<Entry> entries;
  storage.for_each_materialized(
      scope, [&](int instance, int module, StorageManager::Resolved r) {
        entries.push_back(Entry{instance, module, r});
      });

  const std::vector<std::uint64_t> existing = versions(scope);
  const std::uint64_t version = existing.empty() ? 1 : existing.back() + 1;

  FileHeader hdr;
  std::memcpy(hdr.magic, kMagic, sizeof(kMagic));
  hdr.scope_kind = static_cast<std::int32_t>(scope.kind);
  hdr.cache_level = scope.cache_level;
  hdr.nregions = static_cast<std::uint32_t>(entries.size());
  hdr.version = version;
  for (const Entry& e : entries) hdr.payload_bytes += e.r.size;

  const std::string base = stem(scope);
  const std::string tmp = opts_.dir + "/" + base + ".tmp." +
                          std::to_string(static_cast<long>(::getpid()));
  const std::string final_path =
      opts_.dir + "/" + base + ".v" + std::to_string(version);

  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) throw_errno("checkpoint: open '" + tmp + "' failed");

  bool torn = false;
  try {
    CrcWriter w{fd};
    w.write(&hdr, sizeof(hdr), "header");
    for (const Entry& e : entries) {
      RegionHeader rh;
      rh.module = e.module;
      rh.instance = e.instance;
      rh.bytes = e.r.size;
      w.write(&rh, sizeof(rh), "region header");
      // Torn-write injection: a crash mid-payload leaves a short file
      // that still gets published (the rename below) — exactly the
      // half-written version restore() must reject by CRC/size and fall
      // back past. Half of one region keeps the tear unambiguous.
      if (fault::should_fail("ckpt:write")) {
        write_all(fd, e.r.base, e.r.size / 2, "torn payload");
        torn = true;
        break;
      }
      w.write(e.r.base, e.r.size, "region payload");
    }
    if (!torn) {
      write_all(fd, &w.crc, sizeof(w.crc), "crc trailer");
    }
    if (::fsync(fd) != 0) throw_errno("checkpoint: fsync failed");
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), final_path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw_errno("checkpoint: rename to '" + final_path + "' failed");
  }

  // Prune beyond `keep`, oldest first. The just-published version counts;
  // a torn newest plus keep >= 2 still leaves a consistent fallback.
  std::vector<std::uint64_t> all = versions(scope);
  while (static_cast<int>(all.size()) > opts_.keep) {
    const std::string victim =
        opts_.dir + "/" + base + ".v" + std::to_string(all.front());
    ::unlink(victim.c_str());
    all.erase(all.begin());
  }

  Report rep;
  rep.version = version;
  rep.payload_bytes = hdr.payload_bytes;
  rep.regions = static_cast<int>(entries.size());
  return rep;
}

CheckpointStore::Report CheckpointStore::restore(StorageManager& storage,
                                                 const Registry& reg,
                                                 const CanonicalScope& scope) {
  std::vector<std::uint64_t> all = versions(scope);
  if (all.empty()) {
    throw HlsError("restore: no checkpoint of scope " + to_string(scope) +
                   " under '" + opts_.dir + "' (tag '" + opts_.tag + "')");
  }

  const std::string base = stem(scope);
  for (auto it = all.rbegin(); it != all.rend(); ++it) {
    const std::string path =
        opts_.dir + "/" + base + ".v" + std::to_string(*it);
    FileView file;
    if (!file.load(path)) continue;
    if (file.size < sizeof(FileHeader) + sizeof(std::uint32_t)) continue;

    FileHeader hdr;
    std::memcpy(&hdr, file.data, sizeof(hdr));
    if (std::memcmp(hdr.magic, kMagic, sizeof(kMagic)) != 0) continue;
    if (hdr.format != kFormat) continue;
    if (hdr.scope_kind != static_cast<std::int32_t>(scope.kind) ||
        hdr.cache_level != scope.cache_level) {
      continue;
    }

    const std::size_t body = file.size - sizeof(std::uint32_t);
    std::uint32_t trailer;
    std::memcpy(&trailer, file.data + body, sizeof(trailer));
    if (crc32c(file.data, body, 0) != trailer) continue;

    // Manifest walk: bounds-check the declared regions against the file,
    // then against the current registry layout. Any mismatch disqualifies
    // the whole version — imports below are all-or-nothing.
    struct Pending {
      RegionHeader rh;
      const char* payload;
    };
    std::vector<Pending> pending;
    pending.reserve(hdr.nregions);
    std::size_t off = sizeof(FileHeader);
    std::uint64_t payload_total = 0;
    bool valid = true;
    for (std::uint32_t i = 0; i < hdr.nregions; ++i) {
      if (off + sizeof(RegionHeader) > body) {
        valid = false;
        break;
      }
      RegionHeader rh;
      std::memcpy(&rh, file.data + off, sizeof(rh));
      off += sizeof(rh);
      if (rh.bytes > body - off) {
        valid = false;
        break;
      }
      pending.push_back(Pending{rh, file.data + off});
      off += rh.bytes;
      payload_total += rh.bytes;
    }
    if (!valid || off != body || payload_total != hdr.payload_bytes) continue;
    const int ninst = reg.scopes().num_instances(scope_id(reg.scopes(), scope));
    for (const Pending& p : pending) {
      if (p.rh.instance < 0 || p.rh.instance >= ninst || p.rh.module < 0 ||
          p.rh.module >= reg.num_modules() || !reg.committed(p.rh.module) ||
          reg.module(p.rh.module).region_size(scope) != p.rh.bytes) {
        valid = false;
        break;
      }
    }
    if (!valid) continue;

    for (const Pending& p : pending) {
      storage.import_region(scope, p.rh.instance, p.rh.module, p.payload,
                            p.rh.bytes);
    }
    Report rep;
    rep.version = hdr.version;
    rep.payload_bytes = hdr.payload_bytes;
    rep.regions = static_cast<int>(pending.size());
    return rep;
  }

  throw HlsError("restore: no consistent checkpoint of scope " +
                     to_string(scope) + " under '" + opts_.dir +
                     "' — every version failed validation",
                 ErrorCode::corruption);
}

}  // namespace hlsmpc::hls

#endif  // HLSMPC_RECOVERY_ENABLED
