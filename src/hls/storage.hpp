// Per-scope-instance storage: the hls_get_addr_<scope> machinery.
//
// One ScopeInstanceStorage exists per (canonical scope, instance index);
// tasks pinned to cpus of the same instance resolve a VarHandle to the
// same address, which is the entire HLS sharing mechanism (paper fig. 2).
//
// Resolution is lock-free: scope instances are indexed through the
// registry's frozen DenseScopeTable, and each instance holds a chunked
// array of atomic ModuleRegion pointers, so a warm lookup is three
// dependent acquire loads (chunk -> region -> published base) and never
// touches a mutex. Module regions are still allocated and initialized
// lazily on first access — "allocate and initialize memory if first use",
// §IV.A — but the per-(instance, module) lock of the paper is demoted to a
// double-checked slow path behind an atomic publish of the region base.
#pragma once

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "hls/registry.hpp"
#include "memtrack/memtrack.hpp"
#include "obs/event.hpp"
#include "ult/task_context.hpp"

namespace hlsmpc::obs {
class Recorder;
}  // namespace hlsmpc::obs

namespace hlsmpc::hls {

class StorageManager {
 public:
  /// `obs`, when given (and the observability layer is compiled in),
  /// receives a first_touch counter/event plus per-scope-level byte
  /// accounting for every region this manager materializes.
  StorageManager(const Registry& reg, memtrack::Tracker& tracker,
                 obs::Recorder* obs = nullptr);
  StorageManager(const StorageManager&) = delete;
  StorageManager& operator=(const StorageManager&) = delete;
  ~StorageManager();

  /// A materialized module region: base address and byte size of the copy
  /// owned by one scope instance.
  struct Resolved {
    std::byte* base = nullptr;
    std::size_t size = 0;
  };

  /// Resolve the region of (scope, module) for the instance containing
  /// `cpu`, materializing and initializing it on first touch. `ctx`, when
  /// given, receives sync_point callbacks on the first-touch path (never
  /// with a lock held) so the deterministic checker can interleave tasks
  /// inside the lazy-initialization race window.
  Resolved resolve(const CanonicalScope& scope, int module, int cpu,
                   ult::TaskContext* ctx = nullptr);

  /// hls_get_addr_<scope>(module, offset) for the task pinned to `cpu`.
  /// Validates the whole accessed range: [offset, offset + size) must lie
  /// inside the module's region for `scope`.
  void* get_addr(const CanonicalScope& scope, int module, std::size_t offset,
                 std::size_t size, int cpu, ult::TaskContext* ctx = nullptr);
  void* get_addr(const VarHandle& h, int cpu) {
    return get_addr(h.scope, h.module, h.offset, h.size, cpu);
  }

  /// Enumerate every materialized (instance, module) region of `scope` in
  /// ascending (instance, module) order — the checkpoint writer's stable
  /// iteration. Published bases are read with acquire loads, so `fn` sees
  /// fully initialized regions; the *contents* are only a consistent
  /// snapshot if the caller is quiescent (no task mutating scope storage
  /// while the walk runs), which is the checkpoint contract.
  void for_each_materialized(
      const CanonicalScope& scope,
      const std::function<void(int instance, int module, Resolved)>& fn) const;

  /// Checkpoint-restore hook: materialize (scope, instance, module) — as
  /// a first touch, initializers and all, if the region was never resolved
  /// — then overwrite its payload with `bytes` bytes from `data`. Throws
  /// HlsError(corruption) when `bytes` differs from the module's region
  /// size for `scope`: the checkpoint was taken against a different module
  /// layout and importing it would tear the region.
  void import_region(const CanonicalScope& scope, int instance, int module,
                     const void* data, std::size_t bytes);

  /// Bytes currently materialized for HLS storage (all scopes/instances).
  std::size_t bytes_allocated() const;
  /// Number of distinct materialized copies of `module`'s region for
  /// `scope` — the data-duplication factor the paper's tables measure.
  int copies(const CanonicalScope& scope, int module) const;

 private:
  struct ModuleRegion {
    std::atomic<std::byte*> base{nullptr};  ///< published last (release)
    std::size_t bytes = 0;                  ///< valid once base is non-null
    std::mutex init_mu;  // first-touch only ("a lock per module", §IV.A)
    memtrack::Buffer mem;
  };

  // Module slots are reached through a fixed two-level table of atomic
  // pointers: readers never see a resize (there is none), so lookups are
  // lock-free while modules keep being committed concurrently.
  static constexpr int kChunkBits = 6;
  static constexpr int kChunkSize = 1 << kChunkBits;  // regions per chunk
  static constexpr int kMaxChunks = 64;  // kChunkSize * kMaxChunks modules
  struct Chunk {
    std::array<std::atomic<ModuleRegion*>, kChunkSize> slots{};
  };
  struct InstanceStorage {
    std::array<std::atomic<Chunk*>, kMaxChunks> chunks{};
  };

  ModuleRegion& region_slot(InstanceStorage& st, int module);
  Resolved materialize(ModuleRegion& region, const CanonicalScope& scope,
                       int module, ult::TaskContext* ctx, bool* did_init);

  const Registry* reg_;
  memtrack::Tracker* tracker_;
#if HLSMPC_OBS_ENABLED
  obs::Recorder* obs_ = nullptr;
#endif
  // [sid][instance]; fully sized at construction from the frozen table.
  std::vector<std::vector<std::unique_ptr<InstanceStorage>>> instances_;
};

}  // namespace hlsmpc::hls
