// Per-scope-instance storage: the hls_get_addr_<scope> machinery.
//
// One ScopeInstanceStorage exists per (canonical scope, instance index);
// tasks pinned to cpus of the same instance resolve a VarHandle to the
// same address, which is the entire HLS sharing mechanism (paper fig. 2).
// Module regions are allocated and initialized lazily on first access,
// under a per-(instance, module) lock, exactly as described in §IV.A.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "hls/registry.hpp"
#include "memtrack/memtrack.hpp"

namespace hlsmpc::hls {

class StorageManager {
 public:
  StorageManager(const Registry& reg, memtrack::Tracker& tracker);
  StorageManager(const StorageManager&) = delete;
  StorageManager& operator=(const StorageManager&) = delete;

  /// hls_get_addr_<scope>(module, offset) for the task pinned to `cpu`.
  void* get_addr(const CanonicalScope& scope, int module, std::size_t offset,
                 int cpu);
  void* get_addr(const VarHandle& h, int cpu) {
    return get_addr(h.scope, h.module, h.offset, cpu);
  }

  /// Bytes currently materialized for HLS storage (all scopes/instances).
  std::size_t bytes_allocated() const;
  /// Number of distinct materialized copies of `module`'s region for
  /// `scope` — the data-duplication factor the paper's tables measure.
  int copies(const CanonicalScope& scope, int module) const;

 private:
  struct ModuleRegion {
    std::mutex mu;  // paper: "a lock is associated to each module"
    memtrack::Buffer mem;
    bool initialized = false;
  };
  struct InstanceStorage {
    // Lazily sized to the registry's module count on first use.
    std::vector<std::unique_ptr<ModuleRegion>> regions;
  };

  InstanceStorage& instance(const CanonicalScope& scope, int inst);
  topo::ScopeSpec spec_of(const CanonicalScope& scope) const;

  const Registry* reg_;
  memtrack::Tracker* tracker_;
  mutable std::mutex mu_;  // guards the instance map ("module array" lock)
  std::map<CanonicalScope, std::vector<std::unique_ptr<InstanceStorage>>>
      instances_;
};

}  // namespace hlsmpc::hls
