#include "hls/sync.hpp"

namespace hlsmpc::hls {

const char* to_string(SyncEvent::Kind k) {
  switch (k) {
    case SyncEvent::Kind::barrier_enter:
      return "barrier_enter";
    case SyncEvent::Kind::barrier_exit:
      return "barrier_exit";
    case SyncEvent::Kind::single_enter:
      return "single_enter";
    case SyncEvent::Kind::single_exec_begin:
      return "single_exec_begin";
    case SyncEvent::Kind::single_exec_end:
      return "single_exec_end";
    case SyncEvent::Kind::single_exit:
      return "single_exit";
    case SyncEvent::Kind::nowait_claim:
      return "nowait_claim";
    case SyncEvent::Kind::nowait_skip:
      return "nowait_skip";
    case SyncEvent::Kind::migrate_ok:
      return "migrate_ok";
    case SyncEvent::Kind::migrate_rejected:
      return "migrate_rejected";
  }
  return "?";
}

SyncManager::SyncManager(const topo::ScopeMap& sm, int ntasks)
    : sm_(&sm),
      task_cpu_(static_cast<std::size_t>(ntasks)),
      single_depth_(static_cast<std::size_t>(ntasks)),
      task_counts_(static_cast<std::size_t>(ntasks)),
      task_nowait_counts_(static_cast<std::size_t>(ntasks)) {
  if (ntasks < 1) throw HlsError("SyncManager: need at least one task");
  // Default MPC pinning (task i -> cpu i, wrapping) is established up
  // front: barrier arrival counts must be stable before the first task
  // reaches a synchronization point, not trickle in as tasks start.
  const int ncpus = sm.machine().num_cpus();
  for (std::size_t i = 0; i < task_cpu_.size(); ++i) {
    task_cpu_[i].store(static_cast<int>(i) % ncpus);
  }
}

void SyncManager::set_task_cpu(int task, int cpu) {
  if (task < 0 || task >= static_cast<int>(task_cpu_.size())) {
    throw HlsError("SyncManager: bad task id");
  }
  if (cpu < 0 || cpu >= sm_->machine().num_cpus()) {
    throw HlsError("SyncManager: bad cpu");
  }
  task_cpu_[static_cast<std::size_t>(task)].store(cpu);
  // A migration changes barrier arrival counts. Wake every parked waiter
  // (after the store, holding each flat's mutex so no wakeup is lost) so
  // flat_arrive re-evaluates its expected participant count.
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& entry : instances_) {
    for (auto& is : entry.second) {
      {
        std::lock_guard<std::mutex> flk(is->top.mu);
        is->top.cv.notify_all();
      }
      for (auto& gf : is->groups) {
        std::lock_guard<std::mutex> flk(gf->mu);
        gf->cv.notify_all();
      }
    }
  }
}

int SyncManager::task_cpu(int task) const {
  return task_cpu_[static_cast<std::size_t>(task)].load();
}

topo::ScopeSpec SyncManager::spec_of(const CanonicalScope& scope) const {
  // cache_level doubles as the numa level for numa(2) scopes.
  return topo::ScopeSpec{scope.kind, scope.cache_level};
}

bool SyncManager::uses_hierarchy(const CanonicalScope& scope) const {
  if (force_flat_) return false;
  const int llc = sm_->machine().llc_level();
  const int llc_span = sm_->machine().cache_level(llc).cpus_per_instance;
  return sm_->cpus_per_instance(spec_of(scope)) > llc_span;
}

SyncManager::InstanceSync& SyncManager::instance(const CanonicalScope& scope,
                                                 int cpu, int* inst_out) {
  const topo::ScopeSpec spec = spec_of(scope);
  const int inst = sm_->instance_of(spec, cpu);
  if (inst_out != nullptr) *inst_out = inst;
  std::lock_guard<std::mutex> lk(mu_);
  auto& vec = instances_[scope];
  if (vec.empty()) {
    const int n = sm_->num_instances(spec);
    const int llc = sm_->machine().llc_level();
    const int llc_span = sm_->machine().cache_level(llc).cpus_per_instance;
    const int ngroups =
        std::max(1, sm_->cpus_per_instance(spec) / llc_span);
    for (int i = 0; i < n; ++i) {
      auto is = std::make_unique<InstanceSync>();
      for (int gi = 0; gi < ngroups; ++gi) {
        is->groups.push_back(std::make_unique<Flat>());
      }
      vec.push_back(std::move(is));
    }
  }
  return *vec[static_cast<std::size_t>(inst)];
}

int SyncManager::group_index(const CanonicalScope& scope, int inst,
                             int cpu) const {
  const int llc = sm_->machine().llc_level();
  const int llc_inst = sm_->machine().cache_instance_of_cpu(llc, cpu);
  const int llc_span = sm_->machine().cache_level(llc).cpus_per_instance;
  const int first_cpu = inst * sm_->cpus_per_instance(spec_of(scope));
  const int first_group = first_cpu / llc_span;
  return llc_inst - first_group;
}

int SyncManager::group_participants(const CanonicalScope& scope, int inst,
                                    int group) const {
  const int llc_span =
      sm_->machine().cache_level(sm_->machine().llc_level())
          .cpus_per_instance;
  const int first_cpu =
      inst * sm_->cpus_per_instance(spec_of(scope)) + group * llc_span;
  int count = 0;
  for (const auto& c : task_cpu_) {
    const int cpu = c.load();
    if (cpu >= first_cpu && cpu < first_cpu + llc_span) ++count;
  }
  return count;
}

int SyncManager::active_groups(const CanonicalScope& scope, int inst) const {
  const int llc_span =
      sm_->machine().cache_level(sm_->machine().llc_level())
          .cpus_per_instance;
  const int span = sm_->cpus_per_instance(spec_of(scope));
  const int first_cpu = inst * span;
  const int ngroups = std::max(1, span / llc_span);
  int active = 0;
  for (int g = 0; g < ngroups; ++g) {
    for (const auto& c : task_cpu_) {
      const int cpu = c.load();
      if (cpu >= first_cpu + g * llc_span &&
          cpu < first_cpu + (g + 1) * llc_span) {
        ++active;
        break;
      }
    }
  }
  return active;
}

int SyncManager::participants(const CanonicalScope& scope, int cpu) const {
  const topo::ScopeSpec spec = spec_of(scope);
  const int inst = sm_->instance_of(spec, cpu);
  const int span = sm_->cpus_per_instance(spec);
  const int first = inst * span;
  int count = 0;
  for (const auto& c : task_cpu_) {
    const int t_cpu = c.load();
    if (t_cpu >= first && t_cpu < first + span) ++count;
  }
  return count;
}

bool SyncManager::flat_arrive(Flat& f, const std::function<int()>& expected,
                              ult::TaskContext& ctx, bool hold_last) {
  // Preemption window between deciding to arrive and arriving: the
  // deterministic checker schedules through here to expose ordering bugs.
  ctx.sync_point("flat:arrive");
  std::unique_lock<std::mutex> lk(f.mu);
  const std::uint64_t g = f.generation;
  ++f.arrived;
  // Complete the episode as the effective last arrival (called under lk).
  auto complete = [&]() -> bool {
    if (hold_last) {
      f.single_active = true;
      return true;  // caller runs the block, then flat_release()s
    }
    f.arrived = 0;
    ++f.generation;
    lk.unlock();
    f.cv.notify_all();
    return true;
  };
  if (f.arrived >= expected()) return complete();
  // `expected` can shrink while we wait: a migration out of this instance
  // lowers the participant count (set_task_cpu wakes every waiter so the
  // recount happens), and the arrivals already in may then form a complete
  // episode. One waiter must take over the last-arriver duty, or the
  // barrier would wait for a task that left and never comes.
  for (;;) {
    ult::wait_until(ctx, lk, f.cv, [&] {
      return f.generation != g ||
             (!f.single_active && f.arrived >= expected());
    });
    if (f.generation != g) return false;
    if (!f.single_active && f.arrived >= expected()) return complete();
  }
}

void SyncManager::flat_release(Flat& f) {
  {
    std::lock_guard<std::mutex> lk(f.mu);
    f.arrived = 0;
    f.single_active = false;
    ++f.generation;
  }
  f.cv.notify_all();
}

void SyncManager::bump_task(int task, const CanonicalScope& scope) {
  ++task_counts_[static_cast<std::size_t>(task)][scope];
}

bool SyncManager::in_single(int task) const {
  if (task < 0 || task >= static_cast<int>(single_depth_.size())) return false;
  return single_depth_[static_cast<std::size_t>(task)].load() > 0;
}

void SyncManager::emit(SyncEvent::Kind kind, const CanonicalScope& scope,
                       int inst, const InstanceSync* is,
                       const ult::TaskContext& ctx) {
  if (observer_ == nullptr) return;
  SyncEvent e;
  e.kind = kind;
  e.task = ctx.task_id();
  e.cpu = ctx.cpu();
  e.scope = scope;
  e.instance = inst;
  e.task_count = task_sync_count(ctx.task_id(), scope);
  if (is != nullptr) {
    e.instance_count = is->episodes.load(std::memory_order_relaxed) +
                       is->nowait_count.load(std::memory_order_relaxed);
  }
  observer_->on_sync_event(e);
}

void SyncManager::report_migration(const ult::TaskContext& ctx, int to_cpu,
                                   bool ok) {
  if (observer_ == nullptr) return;
  SyncEvent e;
  e.kind = ok ? SyncEvent::Kind::migrate_ok : SyncEvent::Kind::migrate_rejected;
  e.task = ctx.task_id();
  e.cpu = to_cpu;
  observer_->on_sync_event(e);
}

void SyncManager::barrier(const CanonicalScope& scope,
                          ult::TaskContext& ctx) {
  int inst = 0;
  InstanceSync& is = instance(scope, ctx.cpu(), &inst);
  emit(SyncEvent::Kind::barrier_enter, scope, inst, &is, ctx);
  ctx.sync_point("barrier:enter");
  if (!uses_hierarchy(scope)) {
    const int cpu = ctx.cpu();
    if (flat_arrive(is.top, [&, cpu] { return participants(scope, cpu); },
                    ctx, /*hold_last=*/false)) {
      is.episodes.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    // Shared-cache-aware barrier: synchronize inside the LLC group, send
    // one representative up, then release the group (paper §IV.B).
    const int gi = group_index(scope, inst, ctx.cpu());
    Flat& group = *is.groups[static_cast<std::size_t>(gi)];
    if (flat_arrive(group,
                    [&] { return group_participants(scope, inst, gi); }, ctx,
                    /*hold_last=*/true)) {
      if (flat_arrive(is.top, [&] { return active_groups(scope, inst); }, ctx,
                      /*hold_last=*/false)) {
        is.episodes.fetch_add(1, std::memory_order_relaxed);
      }
      flat_release(group);
    }
  }
  bump_task(ctx.task_id(), scope);
  emit(SyncEvent::Kind::barrier_exit, scope, inst, &is, ctx);
  ctx.sync_point("barrier:exit");
}

bool SyncManager::single_enter(const CanonicalScope& scope,
                               ult::TaskContext& ctx) {
  int inst = 0;
  InstanceSync& is = instance(scope, ctx.cpu(), &inst);
  emit(SyncEvent::Kind::single_enter, scope, inst, &is, ctx);
  ctx.sync_point("single:enter");
  bool executor = false;
  if (!uses_hierarchy(scope)) {
    const int cpu = ctx.cpu();
    executor = flat_arrive(is.top, [&, cpu] { return participants(scope, cpu); },
                           ctx, /*hold_last=*/true);
  } else {
    const int gi = group_index(scope, inst, ctx.cpu());
    Flat& group = *is.groups[static_cast<std::size_t>(gi)];
    if (flat_arrive(group,
                    [&] { return group_participants(scope, inst, gi); }, ctx,
                    /*hold_last=*/true)) {
      if (flat_arrive(is.top, [&] { return active_groups(scope, inst); }, ctx,
                      /*hold_last=*/true)) {
        executor = true;  // releases happen in single_done
      } else {
        // Top single completed by the executor; release my LLC group.
        flat_release(group);
      }
    }
  }
  if (executor) {
    ++single_depth_[static_cast<std::size_t>(ctx.task_id())];
    emit(SyncEvent::Kind::single_exec_begin, scope, inst, &is, ctx);
    ctx.sync_point("single:exec");
  } else {
    bump_task(ctx.task_id(), scope);
    emit(SyncEvent::Kind::single_exit, scope, inst, &is, ctx);
    ctx.sync_point("single:exit");
  }
  return executor;
}

void SyncManager::single_done(const CanonicalScope& scope,
                              ult::TaskContext& ctx) {
  int inst = 0;
  InstanceSync& is = instance(scope, ctx.cpu(), &inst);
  is.episodes.fetch_add(1, std::memory_order_relaxed);
  bump_task(ctx.task_id(), scope);
  // Emit before the releases so the executor's exec_end is always logged
  // ahead of the waiters' exits (the checker's episode reconstruction
  // relies on that order).
  emit(SyncEvent::Kind::single_exec_end, scope, inst, &is, ctx);
  if (!uses_hierarchy(scope)) {
    flat_release(is.top);
  } else {
    flat_release(is.top);  // other representatives release their groups
    const int gi = group_index(scope, inst, ctx.cpu());
    flat_release(*is.groups[static_cast<std::size_t>(gi)]);
  }
  --single_depth_[static_cast<std::size_t>(ctx.task_id())];
  ctx.sync_point("single:done");
}

bool SyncManager::single_nowait(const CanonicalScope& scope,
                                ult::TaskContext& ctx) {
  int inst = 0;
  InstanceSync& is = instance(scope, ctx.cpu(), &inst);
  ctx.sync_point("nowait:enter");
  // Paper §IV.B: each task counts the nowait sites it passed; a task whose
  // private counter runs ahead of the instance counter claims the site.
  const std::uint64_t mine =
      ++task_nowait_counts_[static_cast<std::size_t>(ctx.task_id())][scope];
  // Window between counting the site and claiming it: the claim must stay
  // exactly-once under any interleaving here.
  ctx.sync_point("nowait:claim");
  std::uint64_t shared = is.nowait_count.load(std::memory_order_relaxed);
  bool claimed = false;
  while (mine > shared) {
    if (is.nowait_count.compare_exchange_weak(shared, mine,
                                              std::memory_order_acq_rel)) {
      claimed = true;
      break;
    }
  }
  emit(claimed ? SyncEvent::Kind::nowait_claim : SyncEvent::Kind::nowait_skip,
       scope, inst, &is, ctx);
  return claimed;
}

std::uint64_t SyncManager::task_sync_count(int task,
                                           const CanonicalScope& scope) const {
  const auto& counts = task_counts_[static_cast<std::size_t>(task)];
  const auto& nowaits = task_nowait_counts_[static_cast<std::size_t>(task)];
  auto it = counts.find(scope);
  auto itn = nowaits.find(scope);
  return (it == counts.end() ? 0 : it->second) +
         (itn == nowaits.end() ? 0 : itn->second);
}

std::uint64_t SyncManager::instance_sync_count(const CanonicalScope& scope,
                                               int cpu) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = instances_.find(scope);
  if (it == instances_.end()) return 0;
  const topo::ScopeSpec spec{scope.kind, scope.cache_level};
  const int inst = sm_->instance_of(spec, cpu);
  const InstanceSync& is = *it->second[static_cast<std::size_t>(inst)];
  return is.episodes.load(std::memory_order_relaxed) +
         is.nowait_count.load(std::memory_order_relaxed);
}

}  // namespace hlsmpc::hls
