#include "hls/sync.hpp"

namespace hlsmpc::hls {

SyncManager::SyncManager(const topo::ScopeMap& sm, int ntasks)
    : sm_(&sm),
      task_cpu_(static_cast<std::size_t>(ntasks)),
      task_counts_(static_cast<std::size_t>(ntasks)),
      task_nowait_counts_(static_cast<std::size_t>(ntasks)) {
  if (ntasks < 1) throw HlsError("SyncManager: need at least one task");
  // Default MPC pinning (task i -> cpu i, wrapping) is established up
  // front: barrier arrival counts must be stable before the first task
  // reaches a synchronization point, not trickle in as tasks start.
  const int ncpus = sm.machine().num_cpus();
  for (std::size_t i = 0; i < task_cpu_.size(); ++i) {
    task_cpu_[i].store(static_cast<int>(i) % ncpus);
  }
}

void SyncManager::set_task_cpu(int task, int cpu) {
  if (task < 0 || task >= static_cast<int>(task_cpu_.size())) {
    throw HlsError("SyncManager: bad task id");
  }
  if (cpu < 0 || cpu >= sm_->machine().num_cpus()) {
    throw HlsError("SyncManager: bad cpu");
  }
  task_cpu_[static_cast<std::size_t>(task)].store(cpu);
}

int SyncManager::task_cpu(int task) const {
  return task_cpu_[static_cast<std::size_t>(task)].load();
}

topo::ScopeSpec SyncManager::spec_of(const CanonicalScope& scope) const {
  // cache_level doubles as the numa level for numa(2) scopes.
  return topo::ScopeSpec{scope.kind, scope.cache_level};
}

bool SyncManager::uses_hierarchy(const CanonicalScope& scope) const {
  if (force_flat_) return false;
  const int llc = sm_->machine().llc_level();
  const int llc_span = sm_->machine().cache_level(llc).cpus_per_instance;
  return sm_->cpus_per_instance(spec_of(scope)) > llc_span;
}

SyncManager::InstanceSync& SyncManager::instance(const CanonicalScope& scope,
                                                 int cpu, int* inst_out) {
  const topo::ScopeSpec spec = spec_of(scope);
  const int inst = sm_->instance_of(spec, cpu);
  if (inst_out != nullptr) *inst_out = inst;
  std::lock_guard<std::mutex> lk(mu_);
  auto& vec = instances_[scope];
  if (vec.empty()) {
    const int n = sm_->num_instances(spec);
    const int llc = sm_->machine().llc_level();
    const int llc_span = sm_->machine().cache_level(llc).cpus_per_instance;
    const int ngroups =
        std::max(1, sm_->cpus_per_instance(spec) / llc_span);
    for (int i = 0; i < n; ++i) {
      auto is = std::make_unique<InstanceSync>();
      for (int gi = 0; gi < ngroups; ++gi) {
        is->groups.push_back(std::make_unique<Flat>());
      }
      vec.push_back(std::move(is));
    }
  }
  return *vec[static_cast<std::size_t>(inst)];
}

int SyncManager::group_index(const CanonicalScope& scope, int inst,
                             int cpu) const {
  const int llc = sm_->machine().llc_level();
  const int llc_inst = sm_->machine().cache_instance_of_cpu(llc, cpu);
  const int llc_span = sm_->machine().cache_level(llc).cpus_per_instance;
  const int first_cpu = inst * sm_->cpus_per_instance(spec_of(scope));
  const int first_group = first_cpu / llc_span;
  return llc_inst - first_group;
}

int SyncManager::group_participants(const CanonicalScope& scope, int inst,
                                    int group) const {
  const int llc_span =
      sm_->machine().cache_level(sm_->machine().llc_level())
          .cpus_per_instance;
  const int first_cpu =
      inst * sm_->cpus_per_instance(spec_of(scope)) + group * llc_span;
  int count = 0;
  for (const auto& c : task_cpu_) {
    const int cpu = c.load();
    if (cpu >= first_cpu && cpu < first_cpu + llc_span) ++count;
  }
  return count;
}

int SyncManager::active_groups(const CanonicalScope& scope, int inst) const {
  const int llc_span =
      sm_->machine().cache_level(sm_->machine().llc_level())
          .cpus_per_instance;
  const int span = sm_->cpus_per_instance(spec_of(scope));
  const int first_cpu = inst * span;
  const int ngroups = std::max(1, span / llc_span);
  int active = 0;
  for (int g = 0; g < ngroups; ++g) {
    for (const auto& c : task_cpu_) {
      const int cpu = c.load();
      if (cpu >= first_cpu + g * llc_span &&
          cpu < first_cpu + (g + 1) * llc_span) {
        ++active;
        break;
      }
    }
  }
  return active;
}

int SyncManager::participants(const CanonicalScope& scope, int cpu) const {
  const topo::ScopeSpec spec = spec_of(scope);
  const int inst = sm_->instance_of(spec, cpu);
  const int span = sm_->cpus_per_instance(spec);
  const int first = inst * span;
  int count = 0;
  for (const auto& c : task_cpu_) {
    const int t_cpu = c.load();
    if (t_cpu >= first && t_cpu < first + span) ++count;
  }
  return count;
}

bool SyncManager::flat_arrive(Flat& f, int expected, ult::TaskContext& ctx,
                              bool hold_last) {
  std::unique_lock<std::mutex> lk(f.mu);
  const std::uint64_t g = f.generation;
  if (++f.arrived == expected) {
    if (hold_last) {
      f.single_active = true;
      return true;  // caller runs the block, then flat_release()s
    }
    f.arrived = 0;
    ++f.generation;
    lk.unlock();
    f.cv.notify_all();
    return true;
  }
  ult::wait_until(ctx, lk, f.cv, [&] { return f.generation != g; });
  return false;
}

void SyncManager::flat_release(Flat& f) {
  {
    std::lock_guard<std::mutex> lk(f.mu);
    f.arrived = 0;
    f.single_active = false;
    ++f.generation;
  }
  f.cv.notify_all();
}

void SyncManager::bump_task(int task, const CanonicalScope& scope) {
  ++task_counts_[static_cast<std::size_t>(task)][scope];
}

void SyncManager::barrier(const CanonicalScope& scope,
                          ult::TaskContext& ctx) {
  int inst = 0;
  InstanceSync& is = instance(scope, ctx.cpu(), &inst);
  if (!uses_hierarchy(scope)) {
    const int expected = participants(scope, ctx.cpu());
    if (flat_arrive(is.top, expected, ctx, /*hold_last=*/false)) {
      is.episodes.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    // Shared-cache-aware barrier: synchronize inside the LLC group, send
    // one representative up, then release the group (paper §IV.B).
    const int gi = group_index(scope, inst, ctx.cpu());
    Flat& group = *is.groups[static_cast<std::size_t>(gi)];
    const int eg = group_participants(scope, inst, gi);
    if (flat_arrive(group, eg, ctx, /*hold_last=*/true)) {
      const int ng = active_groups(scope, inst);
      if (flat_arrive(is.top, ng, ctx, /*hold_last=*/false)) {
        is.episodes.fetch_add(1, std::memory_order_relaxed);
      }
      flat_release(group);
    }
  }
  bump_task(ctx.task_id(), scope);
}

bool SyncManager::single_enter(const CanonicalScope& scope,
                               ult::TaskContext& ctx) {
  int inst = 0;
  InstanceSync& is = instance(scope, ctx.cpu(), &inst);
  bool executor = false;
  if (!uses_hierarchy(scope)) {
    const int expected = participants(scope, ctx.cpu());
    executor = flat_arrive(is.top, expected, ctx, /*hold_last=*/true);
  } else {
    const int gi = group_index(scope, inst, ctx.cpu());
    Flat& group = *is.groups[static_cast<std::size_t>(gi)];
    const int eg = group_participants(scope, inst, gi);
    if (flat_arrive(group, eg, ctx, /*hold_last=*/true)) {
      const int ng = active_groups(scope, inst);
      if (flat_arrive(is.top, ng, ctx, /*hold_last=*/true)) {
        executor = true;  // releases happen in single_done
      } else {
        // Top single completed by the executor; release my LLC group.
        flat_release(group);
      }
    }
  }
  if (!executor) bump_task(ctx.task_id(), scope);
  return executor;
}

void SyncManager::single_done(const CanonicalScope& scope,
                              ult::TaskContext& ctx) {
  int inst = 0;
  InstanceSync& is = instance(scope, ctx.cpu(), &inst);
  is.episodes.fetch_add(1, std::memory_order_relaxed);
  if (!uses_hierarchy(scope)) {
    flat_release(is.top);
  } else {
    flat_release(is.top);  // other representatives release their groups
    const int gi = group_index(scope, inst, ctx.cpu());
    flat_release(*is.groups[static_cast<std::size_t>(gi)]);
  }
  bump_task(ctx.task_id(), scope);
}

bool SyncManager::single_nowait(const CanonicalScope& scope,
                                ult::TaskContext& ctx) {
  int inst = 0;
  InstanceSync& is = instance(scope, ctx.cpu(), &inst);
  // Paper §IV.B: each task counts the nowait sites it passed; a task whose
  // private counter runs ahead of the instance counter claims the site.
  const std::uint64_t mine =
      ++task_nowait_counts_[static_cast<std::size_t>(ctx.task_id())][scope];
  std::uint64_t shared = is.nowait_count.load(std::memory_order_relaxed);
  while (mine > shared) {
    if (is.nowait_count.compare_exchange_weak(shared, mine,
                                              std::memory_order_acq_rel)) {
      return true;
    }
  }
  return false;
}

std::uint64_t SyncManager::task_sync_count(int task,
                                           const CanonicalScope& scope) const {
  const auto& counts = task_counts_[static_cast<std::size_t>(task)];
  const auto& nowaits = task_nowait_counts_[static_cast<std::size_t>(task)];
  auto it = counts.find(scope);
  auto itn = nowaits.find(scope);
  return (it == counts.end() ? 0 : it->second) +
         (itn == nowaits.end() ? 0 : itn->second);
}

std::uint64_t SyncManager::instance_sync_count(const CanonicalScope& scope,
                                               int cpu) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = instances_.find(scope);
  if (it == instances_.end()) return 0;
  const topo::ScopeSpec spec{scope.kind, scope.cache_level};
  const int inst = sm_->instance_of(spec, cpu);
  const InstanceSync& is = *it->second[static_cast<std::size_t>(inst)];
  return is.episodes.load(std::memory_order_relaxed) +
         is.nowait_count.load(std::memory_order_relaxed);
}

}  // namespace hlsmpc::hls
