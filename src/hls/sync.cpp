#include "hls/sync.hpp"

#include <algorithm>
#include <chrono>

#include "obs/recorder.hpp"

namespace hlsmpc::hls {

const char* to_string(SyncEvent::Kind k) {
  switch (k) {
    case SyncEvent::Kind::barrier_enter:
      return "barrier_enter";
    case SyncEvent::Kind::barrier_exit:
      return "barrier_exit";
    case SyncEvent::Kind::single_enter:
      return "single_enter";
    case SyncEvent::Kind::single_exec_begin:
      return "single_exec_begin";
    case SyncEvent::Kind::single_exec_end:
      return "single_exec_end";
    case SyncEvent::Kind::single_exit:
      return "single_exit";
    case SyncEvent::Kind::nowait_claim:
      return "nowait_claim";
    case SyncEvent::Kind::nowait_skip:
      return "nowait_skip";
    case SyncEvent::Kind::migrate_ok:
      return "migrate_ok";
    case SyncEvent::Kind::migrate_rejected:
      return "migrate_rejected";
    case SyncEvent::Kind::rma_put:
      return "rma_put";
    case SyncEvent::Kind::rma_get:
      return "rma_get";
    case SyncEvent::Kind::rma_acc:
      return "rma_acc";
    case SyncEvent::Kind::rma_fence_enter:
      return "rma_fence_enter";
    case SyncEvent::Kind::rma_fence_exit:
      return "rma_fence_exit";
    case SyncEvent::Kind::rma_lock:
      return "rma_lock";
    case SyncEvent::Kind::rma_unlock:
      return "rma_unlock";
  }
  return "?";
}

SyncManager::SyncManager(const topo::ScopeMap& sm, int ntasks,
                         obs::Recorder* obs)
    : sm_(&sm),
      scopes_(sm.machine()),
#if HLSMPC_OBS_ENABLED
      obs_(obs),
      single_t0_(static_cast<std::size_t>(std::max(ntasks, 1))),
#endif
      task_cpu_(static_cast<std::size_t>(std::max(ntasks, 1))),
      single_depth_(static_cast<std::size_t>(std::max(ntasks, 1))),
      task_counts_(static_cast<std::size_t>(std::max(ntasks, 1)),
                   std::vector<std::uint64_t>(
                       static_cast<std::size_t>(scopes_.num_scopes()))),
      task_nowait_counts_(static_cast<std::size_t>(std::max(ntasks, 1)),
                          std::vector<std::uint64_t>(
                              static_cast<std::size_t>(scopes_.num_scopes()))),
      watch_(static_cast<std::size_t>(std::max(ntasks, 1))) {
  if (ntasks < 1) throw HlsError("SyncManager: need at least one task");
#if !HLSMPC_OBS_ENABLED
  (void)obs;
#endif
  // Default MPC pinning (task i -> cpu i, wrapping) is established up
  // front: barrier arrival counts must be stable before the first task
  // reaches a synchronization point, not trickle in as tasks start.
  const int ncpus = sm.machine().num_cpus();
  for (std::size_t i = 0; i < task_cpu_.size(); ++i) {
    task_cpu_[i].store(static_cast<int>(i) % ncpus);
  }
  llc_span_ =
      sm.machine().cache_level(sm.machine().llc_level()).cpus_per_instance;
  // The dense index space freezes here: every (scope, instance) gets its
  // barrier state up front, so the sync hot path is pure array indexing.
  instances_.resize(static_cast<std::size_t>(scopes_.num_scopes()));
  for (int s = 0; s < scopes_.num_scopes(); ++s) {
    const int span = scopes_.cpus_per_instance(s);
    const int ngroups = span > llc_span_ ? span / llc_span_ : 0;
    auto& vec = instances_[static_cast<std::size_t>(s)];
    vec.reserve(static_cast<std::size_t>(scopes_.num_instances(s)));
    for (int i = 0; i < scopes_.num_instances(s); ++i) {
      auto is = std::make_unique<InstanceSync>();
      is->groups = std::vector<Flat>(static_cast<std::size_t>(ngroups));
      vec.push_back(std::move(is));
    }
  }
}

void SyncManager::set_task_cpu(int task, int cpu) {
  if (task < 0 || task >= static_cast<int>(task_cpu_.size())) {
    throw HlsError("SyncManager: bad task id");
  }
  if (cpu < 0 || cpu >= sm_->machine().num_cpus()) {
    throw HlsError("SyncManager: bad cpu");
  }
  task_cpu_[static_cast<std::size_t>(task)].store(cpu,
                                                  std::memory_order_release);
  // A migration changes barrier arrival counts. Spinning/yielding waiters
  // re-evaluate their expected participant count on every probe, but a
  // waiter that escalated to blocking (atomic wait) only wakes when its
  // Flat word *changes* — so flip the poke bit on every barrier word. The
  // woken waiters re-read task_cpu_ and recount; one of them takes over
  // the now-complete episode if the shrink finished it. This replaces the
  // old implementation's condvar broadcast (migration is rare; the walk
  // is off every hot path).
  for (auto& per_scope : instances_) {
    for (auto& is : per_scope) {
      is->top.poke();
      for (Flat& g : is->groups) g.poke();
    }
  }
}

int SyncManager::task_cpu(int task) const {
  return task_cpu_[static_cast<std::size_t>(task)].load();
}

bool SyncManager::uses_hierarchy(const CanonicalScope& scope) const {
  if (force_flat_) return false;
  return scopes_.cpus_per_instance(sid(scope)) > llc_span_;
}

SyncManager::InstanceSync& SyncManager::instance(const CanonicalScope& scope,
                                                 int cpu, int* inst_out) {
  const int s = sid(scope);
  const int inst = scopes_.instance_of(s, cpu);
  if (inst_out != nullptr) *inst_out = inst;
  return *instances_[static_cast<std::size_t>(s)]
                    [static_cast<std::size_t>(inst)];
}

int SyncManager::group_index(const CanonicalScope& scope, int inst,
                             int cpu) const {
  const int llc = sm_->machine().llc_level();
  const int llc_inst = sm_->machine().cache_instance_of_cpu(llc, cpu);
  const int first_cpu = inst * scopes_.cpus_per_instance(sid(scope));
  const int first_group = first_cpu / llc_span_;
  return llc_inst - first_group;
}

int SyncManager::group_participants(const CanonicalScope& scope, int inst,
                                    int group) const {
  const int first_cpu =
      inst * scopes_.cpus_per_instance(sid(scope)) + group * llc_span_;
  int count = 0;
  for (const auto& c : task_cpu_) {
    const int cpu = c.load(std::memory_order_acquire);
    if (cpu >= first_cpu && cpu < first_cpu + llc_span_) ++count;
  }
  return count;
}

int SyncManager::active_groups(const CanonicalScope& scope, int inst) const {
  const int span = scopes_.cpus_per_instance(sid(scope));
  const int first_cpu = inst * span;
  const int ngroups = std::max(1, span / llc_span_);
  int active = 0;
  for (int g = 0; g < ngroups; ++g) {
    for (const auto& c : task_cpu_) {
      const int cpu = c.load(std::memory_order_acquire);
      if (cpu >= first_cpu + g * llc_span_ &&
          cpu < first_cpu + (g + 1) * llc_span_) {
        ++active;
        break;
      }
    }
  }
  return active;
}

int SyncManager::participants(const CanonicalScope& scope, int cpu) const {
  const int s = sid(scope);
  const int inst = scopes_.instance_of(s, cpu);
  const int span = scopes_.cpus_per_instance(s);
  const int first = inst * span;
  int count = 0;
  for (const auto& c : task_cpu_) {
    const int t_cpu = c.load(std::memory_order_acquire);
    if (t_cpu >= first && t_cpu < first + span) ++count;
  }
  return count;
}

bool SyncManager::flat_arrive(Flat& f, const std::function<int()>& expected,
                              ult::TaskContext& ctx, bool hold_last,
                              const CanonicalScope& scope, int inst,
                              const char* prim) {
  // Preemption window between deciding to arrive and arriving: the
  // deterministic checker schedules through here to expose ordering bugs.
  ctx.sync_point("flat:arrive");
  const int wd_ms = watchdog_ms_.load(std::memory_order_relaxed);
  if (wd_ms == 0) {
    // Fast path: the extracted barrier's wait loop, nothing layered on.
    return f.arrive(ctx, expected, hold_last);
  }
  // Watchdog armed. Publish where this task is about to wait, so a peer
  // whose watchdog fires can name it as arrived (or as stuck elsewhere),
  // and run the barrier in polled mode: blocking on the word is off the
  // table (std::atomic::wait has no timeout), so the poll hook checks the
  // deadline on every spin/yield probe. The slot stays published on fire
  // (watchdog_fire throws through arrive) so peers that fire later still
  // see us here.
  WatchSlot& slot = watch_[static_cast<std::size_t>(ctx.task_id())];
  slot.prim.store(prim, std::memory_order_relaxed);
  slot.epoch.store(task_sync_count(ctx.task_id(), scope),
                   std::memory_order_relaxed);
  slot.where.store(1ull | (static_cast<std::uint64_t>(sid(scope)) << 8) |
                       (static_cast<std::uint64_t>(inst) << 32),
                   std::memory_order_release);
  const auto wd_start = std::chrono::steady_clock::now();
  const auto poll = [&] {
    const auto waited = std::chrono::steady_clock::now() - wd_start;
    if (waited >= std::chrono::milliseconds(wd_ms)) {
      watchdog_fire(
          scope, inst, prim, ctx,
          std::chrono::duration_cast<std::chrono::milliseconds>(waited)
              .count());
    }
  };
  const bool won = f.arrive(ctx, expected, hold_last, &poll);
  slot.where.store(0, std::memory_order_release);
  return won;
}

void SyncManager::set_watchdog_ms(int ms) {
  if (ms < 0) throw HlsError("SyncManager: watchdog_ms must be >= 0");
  watchdog_ms_.store(ms, std::memory_order_release);
}

void SyncManager::watchdog_fire(const CanonicalScope& scope, int inst,
                                const char* prim, ult::TaskContext& ctx,
                                long long waited_ms) {
  const int s = sid(scope);
  const int span = scopes_.cpus_per_instance(s);
  const int first_cpu = inst * span;
  const std::uint64_t here = 1ull | (static_cast<std::uint64_t>(s) << 8) |
                             (static_cast<std::uint64_t>(inst) << 32);

  std::string arrived_list, missing_list;
  std::int64_t missing_mask = 0;
  int n_arrived = 0;
  int n_expected = 0;
  for (int t = 0; t < static_cast<int>(task_cpu_.size()); ++t) {
    const int cpu =
        task_cpu_[static_cast<std::size_t>(t)].load(std::memory_order_acquire);
    if (cpu < first_cpu || cpu >= first_cpu + span) continue;  // not a member
    ++n_expected;
    const WatchSlot& slot = watch_[static_cast<std::size_t>(t)];
    const std::uint64_t where = slot.where.load(std::memory_order_acquire);
    if (where == here) {
      if (!arrived_list.empty()) arrived_list += ", ";
      arrived_list += std::to_string(t);
      ++n_arrived;
      continue;
    }
    if (t < 64) missing_mask |= std::int64_t{1} << t;
    if (!missing_list.empty()) missing_list += "; ";
    missing_list += "task " + std::to_string(t) + " (cpu " +
                    std::to_string(cpu) + ", last sync epoch " +
                    std::to_string(slot.epoch.load(std::memory_order_relaxed));
    if (where == 0) {
      missing_list += ", not in any sync primitive";
    } else {
      const char* p = slot.prim.load(std::memory_order_relaxed);
      missing_list += std::string(", inside ") + (p != nullptr ? p : "?") +
                      " of sid " + std::to_string((where >> 8) & 0xffffff) +
                      " instance " + std::to_string(where >> 32);
    }
#if HLSMPC_OBS_ENABLED
    // Counter snapshot for the missing task: how much it synchronized at
    // all (a task with zero entries never reached the directive; one with
    // many is stuck elsewhere or livelocked).
    if (obs_ != nullptr) {
      missing_list +=
          ", obs barriers=" +
          std::to_string(obs_->counter(t, obs::Counter::barrier_entries)) +
          " singles=" +
          std::to_string(obs_->counter(t, obs::Counter::single_wins) +
                         obs_->counter(t, obs::Counter::single_losses));
    }
#endif
    missing_list += ")";
  }

  std::string msg = std::string("watchdog: ") + prim + " on scope " +
                    to_string(scope) + " instance " + std::to_string(inst) +
                    " stuck for " + std::to_string(waited_ms) + " ms: " +
                    std::to_string(n_arrived) + "/" +
                    std::to_string(n_expected) + " participant task(s) arrived";
  if (!arrived_list.empty()) msg += " (" + arrived_list + ")";
  if (!missing_list.empty()) msg += "; missing: " + missing_list;

#if HLSMPC_OBS_ENABLED
  if (obs_ != nullptr) {
    obs::Event e;
    e.kind = obs::EventKind::watchdog;
    e.sid = static_cast<std::int16_t>(s);
    e.task = ctx.task_id();
    e.cpu = ctx.cpu();
    e.instance = inst;
    e.t0 = e.t1 = obs_->now();
    e.arg = waited_ms;
    e.arg2 = missing_mask;
    obs_->record(e);
  }
#endif
  throw HlsError(msg, ErrorCode::deadlock);
}

void SyncManager::flat_release(Flat& f) {
  // Only the claimed single executor releases. An arrival that slipped in
  // after the claim (a task migrating into the instance) is wiped with the
  // count but leaves via the generation check, exactly as it would have
  // under the old mutex/condvar episode accounting.
  f.release();
}

void SyncManager::bump_task(int task, const CanonicalScope& scope) {
  ++task_counts_[static_cast<std::size_t>(task)]
                [static_cast<std::size_t>(sid(scope))];
}

bool SyncManager::in_single(int task) const {
  if (task < 0 || task >= static_cast<int>(single_depth_.size())) return false;
  return single_depth_[static_cast<std::size_t>(task)].load() > 0;
}

void SyncManager::emit(SyncEvent::Kind kind, const CanonicalScope& scope,
                       int inst, const InstanceSync* is,
                       const ult::TaskContext& ctx) {
  if (observer_ == nullptr) return;
  SyncEvent e;
  e.kind = kind;
  e.task = ctx.task_id();
  e.cpu = ctx.cpu();
  e.scope = scope;
  e.instance = inst;
  e.task_count = task_sync_count(ctx.task_id(), scope);
  if (is != nullptr) {
    e.instance_count = is->episodes.load(std::memory_order_relaxed) +
                       is->nowait_count.load(std::memory_order_relaxed);
  }
  observer_->on_sync_event(e);
}

void SyncManager::report_migration(const ult::TaskContext& ctx, int to_cpu,
                                   bool ok) {
  if (observer_ == nullptr) return;
  SyncEvent e;
  e.kind = ok ? SyncEvent::Kind::migrate_ok : SyncEvent::Kind::migrate_rejected;
  e.task = ctx.task_id();
  e.cpu = to_cpu;
  observer_->on_sync_event(e);
}

void SyncManager::barrier(const CanonicalScope& scope,
                          ult::TaskContext& ctx) {
  int inst = 0;
  InstanceSync& is = instance(scope, ctx.cpu(), &inst);
#if HLSMPC_OBS_ENABLED
  std::uint64_t obs_t0 = 0;
  if (obs_ != nullptr) {
    obs_->count(ctx.task_id(), obs::Counter::barrier_entries);
    obs_t0 = obs_->now();
  }
#endif
  emit(SyncEvent::Kind::barrier_enter, scope, inst, &is, ctx);
  ctx.sync_point("barrier:enter");
  if (!uses_hierarchy(scope)) {
    const int cpu = ctx.cpu();
    if (flat_arrive(is.top, [&, cpu] { return participants(scope, cpu); },
                    ctx, /*hold_last=*/false, scope, inst, "barrier")) {
      is.episodes.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    // Shared-cache-aware barrier: synchronize inside the LLC group, send
    // one representative up, then release the group (paper §IV.B).
    const int gi = group_index(scope, inst, ctx.cpu());
    Flat& group = is.groups[static_cast<std::size_t>(gi)];
    if (flat_arrive(group,
                    [&] { return group_participants(scope, inst, gi); }, ctx,
                    /*hold_last=*/true, scope, inst, "barrier:group")) {
      if (flat_arrive(is.top, [&] { return active_groups(scope, inst); }, ctx,
                      /*hold_last=*/false, scope, inst, "barrier:top")) {
        is.episodes.fetch_add(1, std::memory_order_relaxed);
      }
      flat_release(group);
    }
  }
  bump_task(ctx.task_id(), scope);
#if HLSMPC_OBS_ENABLED
  if (obs_ != nullptr) {
    obs::Event e;
    e.kind = obs::EventKind::barrier;
    e.sid = static_cast<std::int16_t>(sid(scope));
    e.task = ctx.task_id();
    e.cpu = ctx.cpu();
    e.instance = inst;
    e.t0 = obs_t0;
    e.t1 = obs_->now();
    obs_->record(e);
  }
#endif
  emit(SyncEvent::Kind::barrier_exit, scope, inst, &is, ctx);
  ctx.sync_point("barrier:exit");
}

bool SyncManager::single_enter(const CanonicalScope& scope,
                               ult::TaskContext& ctx) {
  int inst = 0;
  InstanceSync& is = instance(scope, ctx.cpu(), &inst);
#if HLSMPC_OBS_ENABLED
  std::uint64_t obs_t0 = 0;
  if (obs_ != nullptr) obs_t0 = obs_->now();
#endif
  emit(SyncEvent::Kind::single_enter, scope, inst, &is, ctx);
  ctx.sync_point("single:enter");
  bool executor = false;
  if (!uses_hierarchy(scope)) {
    const int cpu = ctx.cpu();
    executor = flat_arrive(is.top, [&, cpu] { return participants(scope, cpu); },
                           ctx, /*hold_last=*/true, scope, inst, "single");
  } else {
    const int gi = group_index(scope, inst, ctx.cpu());
    Flat& group = is.groups[static_cast<std::size_t>(gi)];
    if (flat_arrive(group,
                    [&] { return group_participants(scope, inst, gi); }, ctx,
                    /*hold_last=*/true, scope, inst, "single:group")) {
      if (flat_arrive(is.top, [&] { return active_groups(scope, inst); }, ctx,
                      /*hold_last=*/true, scope, inst, "single:top")) {
        executor = true;  // releases happen in single_done
      } else {
        // Top single completed by the executor; release my LLC group.
        flat_release(group);
      }
    }
  }
  if (executor) {
    ++single_depth_[static_cast<std::size_t>(ctx.task_id())];
#if HLSMPC_OBS_ENABLED
    if (obs_ != nullptr) {
      obs_->count(ctx.task_id(), obs::Counter::single_wins);
      // Stashed until single_done closes the single_exec event.
      single_t0_[static_cast<std::size_t>(ctx.task_id())] = obs_t0;
    }
#endif
    emit(SyncEvent::Kind::single_exec_begin, scope, inst, &is, ctx);
    ctx.sync_point("single:exec");
  } else {
    bump_task(ctx.task_id(), scope);
#if HLSMPC_OBS_ENABLED
    if (obs_ != nullptr) {
      obs_->count(ctx.task_id(), obs::Counter::single_losses);
      obs::Event e;
      e.kind = obs::EventKind::single_wait;
      e.sid = static_cast<std::int16_t>(sid(scope));
      e.task = ctx.task_id();
      e.cpu = ctx.cpu();
      e.instance = inst;
      e.t0 = obs_t0;
      e.t1 = obs_->now();
      obs_->record(e);
    }
#endif
    emit(SyncEvent::Kind::single_exit, scope, inst, &is, ctx);
    ctx.sync_point("single:exit");
  }
  return executor;
}

void SyncManager::single_done(const CanonicalScope& scope,
                              ult::TaskContext& ctx) {
  int inst = 0;
  InstanceSync& is = instance(scope, ctx.cpu(), &inst);
  is.episodes.fetch_add(1, std::memory_order_relaxed);
  bump_task(ctx.task_id(), scope);
#if HLSMPC_OBS_ENABLED
  if (obs_ != nullptr) {
    obs::Event e;
    e.kind = obs::EventKind::single_exec;
    e.sid = static_cast<std::int16_t>(sid(scope));
    e.task = ctx.task_id();
    e.cpu = ctx.cpu();
    e.instance = inst;
    e.t0 = single_t0_[static_cast<std::size_t>(ctx.task_id())];
    e.t1 = obs_->now();
    obs_->record(e);
  }
#endif
  // Emit before the releases so the executor's exec_end is always logged
  // ahead of the waiters' exits (the checker's episode reconstruction
  // relies on that order).
  emit(SyncEvent::Kind::single_exec_end, scope, inst, &is, ctx);
  if (!uses_hierarchy(scope)) {
    flat_release(is.top);
  } else {
    flat_release(is.top);  // other representatives release their groups
    const int gi = group_index(scope, inst, ctx.cpu());
    flat_release(is.groups[static_cast<std::size_t>(gi)]);
  }
  --single_depth_[static_cast<std::size_t>(ctx.task_id())];
  ctx.sync_point("single:done");
}

bool SyncManager::single_nowait(const CanonicalScope& scope,
                                ult::TaskContext& ctx) {
  int inst = 0;
  InstanceSync& is = instance(scope, ctx.cpu(), &inst);
  ctx.sync_point("nowait:enter");
  // Paper §IV.B: each task counts the nowait sites it passed; a task whose
  // private counter runs ahead of the instance counter claims the site.
  const std::uint64_t mine =
      ++task_nowait_counts_[static_cast<std::size_t>(ctx.task_id())]
                           [static_cast<std::size_t>(sid(scope))];
  // Window between counting the site and claiming it: the claim must stay
  // exactly-once under any interleaving here.
  ctx.sync_point("nowait:claim");
  std::uint64_t shared = is.nowait_count.load(std::memory_order_relaxed);
  bool claimed_site = false;
  while (mine > shared) {
    if (is.nowait_count.compare_exchange_weak(shared, mine,
                                              std::memory_order_acq_rel)) {
      claimed_site = true;
      break;
    }
  }
#if HLSMPC_OBS_ENABLED
  // Counters only on this path: nowait is a ~30ns wait-free operation and
  // a clock read would dominate it (see DESIGN.md §9 overhead budget).
  if (obs_ != nullptr) {
    obs_->count(ctx.task_id(), claimed_site ? obs::Counter::nowait_claims
                                            : obs::Counter::nowait_skips);
  }
#endif
  emit(claimed_site ? SyncEvent::Kind::nowait_claim
                    : SyncEvent::Kind::nowait_skip,
       scope, inst, &is, ctx);
  return claimed_site;
}

std::uint64_t SyncManager::task_sync_count(int task,
                                           const CanonicalScope& scope) const {
  const std::size_t s = static_cast<std::size_t>(sid(scope));
  return task_counts_[static_cast<std::size_t>(task)][s] +
         task_nowait_counts_[static_cast<std::size_t>(task)][s];
}

std::uint64_t SyncManager::instance_sync_count(const CanonicalScope& scope,
                                               int cpu) const {
  const int s = sid(scope);
  const int inst = scopes_.instance_of(s, cpu);
  const InstanceSync& is =
      *instances_[static_cast<std::size_t>(s)][static_cast<std::size_t>(inst)];
  return is.episodes.load(std::memory_order_relaxed) +
         is.nowait_count.load(std::memory_order_relaxed);
}

}  // namespace hlsmpc::hls
