#include "hls/storage.hpp"

namespace hlsmpc::hls {

StorageManager::StorageManager(const Registry& reg,
                               memtrack::Tracker& tracker)
    : reg_(&reg), tracker_(&tracker) {}

topo::ScopeSpec StorageManager::spec_of(const CanonicalScope& scope) const {
  // cache_level doubles as the numa level for numa(2) scopes.
  return topo::ScopeSpec{scope.kind, scope.cache_level};
}

StorageManager::InstanceStorage& StorageManager::instance(
    const CanonicalScope& scope, int inst) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& vec = instances_[scope];
  if (vec.empty()) {
    const int n = reg_->scope_map().num_instances(spec_of(scope));
    vec.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      vec.push_back(std::make_unique<InstanceStorage>());
    }
  }
  if (inst < 0 || inst >= static_cast<int>(vec.size())) {
    throw HlsError("StorageManager: bad scope instance");
  }
  return *vec[static_cast<std::size_t>(inst)];
}

void* StorageManager::get_addr(const CanonicalScope& scope, int module,
                               std::size_t offset, int cpu) {
  const Module& m = reg_->module(module);  // throws if not committed
  const int inst = reg_->scope_map().instance_of(spec_of(scope), cpu);
  InstanceStorage& st = instance(scope, inst);

  ModuleRegion* region_ptr = nullptr;
  {
    // Pointer must be captured under the map lock: a concurrent first
    // access to another module may resize the vector.
    std::lock_guard<std::mutex> lk(mu_);
    if (st.regions.size() < static_cast<std::size_t>(reg_->num_modules())) {
      st.regions.resize(static_cast<std::size_t>(reg_->num_modules()));
    }
    if (!st.regions[static_cast<std::size_t>(module)]) {
      st.regions[static_cast<std::size_t>(module)] =
          std::make_unique<ModuleRegion>();
    }
    region_ptr = st.regions[static_cast<std::size_t>(module)].get();
  }
  ModuleRegion& region = *region_ptr;

  // Lazy allocation + one-time initialization under the module lock
  // ("allocate and initialize memory if first use", §IV.A).
  {
    std::lock_guard<std::mutex> lk(region.mu);
    if (!region.initialized) {
      const std::size_t bytes = m.region_size(scope);
      if (bytes == 0) {
        throw HlsError("get_addr: module '" + m.name +
                       "' has no variables with scope " + to_string(scope));
      }
      region.mem = memtrack::Buffer(*tracker_,
                                    memtrack::Category::hls_shared, bytes);
      for (const VarInfo& v : m.vars) {
        if (v.canonical == scope && v.init) {
          v.init(region.mem.data() + v.offset);
        }
      }
      region.initialized = true;
    }
  }
  if (offset >= region.mem.size()) {
    throw HlsError("get_addr: offset beyond module region");
  }
  return region.mem.data() + offset;
}

std::size_t StorageManager::bytes_allocated() const {
  return tracker_->current(memtrack::Category::hls_shared);
}

int StorageManager::copies(const CanonicalScope& scope, int module) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = instances_.find(scope);
  if (it == instances_.end()) return 0;
  int count = 0;
  for (const auto& inst : it->second) {
    if (inst && static_cast<std::size_t>(module) < inst->regions.size() &&
        inst->regions[static_cast<std::size_t>(module)] &&
        inst->regions[static_cast<std::size_t>(module)]->initialized) {
      ++count;
    }
  }
  return count;
}

}  // namespace hlsmpc::hls
