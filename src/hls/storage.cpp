#include "hls/storage.hpp"

#include "fault/injector.hpp"
#include "obs/recorder.hpp"

namespace hlsmpc::hls {

StorageManager::StorageManager(const Registry& reg, memtrack::Tracker& tracker,
                               obs::Recorder* obs)
    : reg_(&reg),
      tracker_(&tracker)
#if HLSMPC_OBS_ENABLED
      ,
      obs_(obs)
#endif
{
#if !HLSMPC_OBS_ENABLED
  (void)obs;
#endif
  const topo::DenseScopeTable& t = reg.scopes();
  instances_.resize(static_cast<std::size_t>(t.num_scopes()));
  for (int sid = 0; sid < t.num_scopes(); ++sid) {
    auto& vec = instances_[static_cast<std::size_t>(sid)];
    vec.reserve(static_cast<std::size_t>(t.num_instances(sid)));
    for (int i = 0; i < t.num_instances(sid); ++i) {
      vec.push_back(std::make_unique<InstanceStorage>());
    }
  }
}

StorageManager::~StorageManager() {
  for (auto& per_scope : instances_) {
    for (auto& inst : per_scope) {
      for (auto& chunk_slot : inst->chunks) {
        Chunk* chunk = chunk_slot.load(std::memory_order_acquire);
        if (chunk == nullptr) continue;
        for (auto& region_slot : chunk->slots) {
          delete region_slot.load(std::memory_order_acquire);
        }
        delete chunk;
      }
    }
  }
}

StorageManager::ModuleRegion& StorageManager::region_slot(InstanceStorage& st,
                                                          int module) {
  if (module < 0 || module >= kChunkSize * kMaxChunks) {
    throw HlsError("StorageManager: module id out of slot-table range");
  }
  auto& chunk_slot = st.chunks[static_cast<std::size_t>(module >> kChunkBits)];
  Chunk* chunk = chunk_slot.load(std::memory_order_acquire);
  if (chunk == nullptr) {
    auto fresh = std::make_unique<Chunk>();
    if (chunk_slot.compare_exchange_strong(chunk, fresh.get(),
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
      chunk = fresh.release();
    }
    // CAS loser: `chunk` now holds the winner's pointer; `fresh` frees.
  }
  auto& slot = chunk->slots[static_cast<std::size_t>(module & (kChunkSize - 1))];
  ModuleRegion* region = slot.load(std::memory_order_acquire);
  if (region == nullptr) {
    auto fresh = std::make_unique<ModuleRegion>();
    if (slot.compare_exchange_strong(region, fresh.get(),
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
      region = fresh.release();
    }
  }
  return *region;
}

StorageManager::Resolved StorageManager::materialize(ModuleRegion& region,
                                                     const CanonicalScope& scope,
                                                     int module,
                                                     ult::TaskContext* ctx,
                                                     bool* did_init) {
  const Module& m = reg_->module(module);  // throws if not committed
  // Window between losing the fast path and claiming the init lock: the
  // deterministic checker schedules through here so racing first touches
  // are exercised. Must be hook-free of locks (sync_point may suspend).
  if (ctx != nullptr) ctx->sync_point("storage:first-touch");
  std::lock_guard<std::mutex> lk(region.init_mu);
  std::byte* base = region.base.load(std::memory_order_relaxed);
  if (base == nullptr) {
    const std::size_t bytes = m.region_size(scope);
    if (bytes == 0) {
      throw HlsError("get_addr: module '" + m.name +
                     "' has no variables with scope " + to_string(scope));
    }
    // First-touch allocation is the runtime's only demand-driven memory
    // acquisition — the injectable OOM path (recoverable: nothing was
    // published, a later touch may succeed).
    if (fault::should_fail("storage:first_touch")) {
      throw HlsError("get_addr: first-touch allocation of " +
                         std::to_string(bytes) + " bytes for module '" +
                         m.name + "' (scope " + to_string(scope) +
                         ") failed: out of memory",
                     ErrorCode::out_of_memory);
    }
    region.mem =
        memtrack::Buffer(*tracker_, memtrack::Category::hls_shared, bytes);
    for (const VarInfo& v : m.vars) {
      if (v.canonical == scope && v.init) {
        v.init(region.mem.data() + v.offset);
      }
    }
    region.bytes = bytes;
    // Publish last: a reader that acquires a non-null base sees the fully
    // initialized region contents and `bytes`.
    base = region.mem.data();
    region.base.store(base, std::memory_order_release);
    if (did_init != nullptr) *did_init = true;
  }
  return Resolved{base, region.bytes};
}

StorageManager::Resolved StorageManager::resolve(const CanonicalScope& scope,
                                                 int module, int cpu,
                                                 ult::TaskContext* ctx) {
  const topo::DenseScopeTable& t = reg_->scopes();
  const int sid = scope_id(t, scope);
  const int inst = t.instance_of(sid, cpu);
  InstanceStorage& st =
      *instances_[static_cast<std::size_t>(sid)][static_cast<std::size_t>(inst)];
  ModuleRegion& region = region_slot(st, module);
  std::byte* base = region.base.load(std::memory_order_acquire);
  if (base != nullptr) return Resolved{base, region.bytes};
#if HLSMPC_OBS_ENABLED
  const std::uint64_t obs_t0 = obs_ != nullptr ? obs_->now() : 0;
#endif
  bool did_init = false;
  const Resolved r = materialize(region, scope, module, ctx, &did_init);
#if HLSMPC_OBS_ENABLED
  // Only the task that actually initialized the region counts a first
  // touch; racers that waited on init_mu resolved, not materialized.
  if (did_init && obs_ != nullptr) {
    const int task = ctx != nullptr ? ctx->task_id() : -1;
    obs_->count(task, obs::Counter::first_touches);
    obs_->count_scope_bytes(task, sid, r.size);
    obs::Event e;
    e.kind = obs::EventKind::first_touch;
    e.sid = static_cast<std::int16_t>(sid);
    e.task = task;
    e.cpu = cpu;
    e.instance = inst;
    e.t0 = obs_t0;
    e.t1 = obs_->now();
    e.arg = static_cast<std::int64_t>(r.size);
    obs_->record(e);
  }
#endif
  return r;
}

void* StorageManager::get_addr(const CanonicalScope& scope, int module,
                               std::size_t offset, std::size_t size, int cpu,
                               ult::TaskContext* ctx) {
  const Resolved r = resolve(scope, module, cpu, ctx);
  if (offset > r.size || size > r.size - offset) {
    throw HlsError("get_addr: accessed range [offset, offset + size) beyond "
                   "module region");
  }
  return r.base + offset;
}

std::size_t StorageManager::bytes_allocated() const {
  return tracker_->current(memtrack::Category::hls_shared);
}

int StorageManager::copies(const CanonicalScope& scope, int module) const {
  if (module < 0 || module >= kChunkSize * kMaxChunks) return 0;
  const topo::DenseScopeTable& t = reg_->scopes();
  const int sid = scope_id(t, scope);
  int count = 0;
  for (const auto& inst : instances_[static_cast<std::size_t>(sid)]) {
    const Chunk* chunk =
        inst->chunks[static_cast<std::size_t>(module >> kChunkBits)].load(
            std::memory_order_acquire);
    if (chunk == nullptr) continue;
    const ModuleRegion* region =
        chunk->slots[static_cast<std::size_t>(module & (kChunkSize - 1))].load(
            std::memory_order_acquire);
    if (region != nullptr &&
        region->base.load(std::memory_order_acquire) != nullptr) {
      ++count;
    }
  }
  return count;
}

}  // namespace hlsmpc::hls
