#include "hls/storage.hpp"

#include <cstring>
#include <string>

#include "fault/injector.hpp"
#include "obs/recorder.hpp"

namespace hlsmpc::hls {

StorageManager::StorageManager(const Registry& reg, memtrack::Tracker& tracker,
                               obs::Recorder* obs)
    : reg_(&reg),
      tracker_(&tracker)
#if HLSMPC_OBS_ENABLED
      ,
      obs_(obs)
#endif
{
#if !HLSMPC_OBS_ENABLED
  (void)obs;
#endif
  const topo::DenseScopeTable& t = reg.scopes();
  instances_.resize(static_cast<std::size_t>(t.num_scopes()));
  for (int sid = 0; sid < t.num_scopes(); ++sid) {
    auto& vec = instances_[static_cast<std::size_t>(sid)];
    vec.reserve(static_cast<std::size_t>(t.num_instances(sid)));
    for (int i = 0; i < t.num_instances(sid); ++i) {
      vec.push_back(std::make_unique<InstanceStorage>());
    }
  }
}

StorageManager::~StorageManager() {
  for (auto& per_scope : instances_) {
    for (auto& inst : per_scope) {
      for (auto& chunk_slot : inst->chunks) {
        Chunk* chunk = chunk_slot.load(std::memory_order_acquire);
        if (chunk == nullptr) continue;
        for (auto& region_slot : chunk->slots) {
          delete region_slot.load(std::memory_order_acquire);
        }
        delete chunk;
      }
    }
  }
}

StorageManager::ModuleRegion& StorageManager::region_slot(InstanceStorage& st,
                                                          int module) {
  if (module < 0 || module >= kChunkSize * kMaxChunks) {
    throw HlsError("StorageManager: module id out of slot-table range");
  }
  auto& chunk_slot = st.chunks[static_cast<std::size_t>(module >> kChunkBits)];
  Chunk* chunk = chunk_slot.load(std::memory_order_acquire);
  if (chunk == nullptr) {
    auto fresh = std::make_unique<Chunk>();
    if (chunk_slot.compare_exchange_strong(chunk, fresh.get(),
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
      chunk = fresh.release();
    }
    // CAS loser: `chunk` now holds the winner's pointer; `fresh` frees.
  }
  auto& slot = chunk->slots[static_cast<std::size_t>(module & (kChunkSize - 1))];
  ModuleRegion* region = slot.load(std::memory_order_acquire);
  if (region == nullptr) {
    auto fresh = std::make_unique<ModuleRegion>();
    if (slot.compare_exchange_strong(region, fresh.get(),
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
      region = fresh.release();
    }
  }
  return *region;
}

StorageManager::Resolved StorageManager::materialize(ModuleRegion& region,
                                                     const CanonicalScope& scope,
                                                     int module,
                                                     ult::TaskContext* ctx,
                                                     bool* did_init) {
  const Module& m = reg_->module(module);  // throws if not committed
  // Window between losing the fast path and claiming the init lock: the
  // deterministic checker schedules through here so racing first touches
  // are exercised. Must be hook-free of locks (sync_point may suspend).
  if (ctx != nullptr) ctx->sync_point("storage:first-touch");
  std::lock_guard<std::mutex> lk(region.init_mu);
  std::byte* base = region.base.load(std::memory_order_relaxed);
  if (base == nullptr) {
    const std::size_t bytes = m.region_size(scope);
    if (bytes == 0) {
      throw HlsError("get_addr: module '" + m.name +
                     "' has no variables with scope " + to_string(scope));
    }
    // First-touch allocation is the runtime's only demand-driven memory
    // acquisition — the injectable OOM path (recoverable: nothing was
    // published, a later touch may succeed).
    if (fault::should_fail("storage:first_touch")) {
      throw HlsError("get_addr: first-touch allocation of " +
                         std::to_string(bytes) + " bytes for module '" +
                         m.name + "' (scope " + to_string(scope) +
                         ") failed: out of memory",
                     ErrorCode::out_of_memory);
    }
    region.mem =
        memtrack::Buffer(*tracker_, memtrack::Category::hls_shared, bytes);
    for (const VarInfo& v : m.vars) {
      if (v.canonical == scope && v.init) {
        v.init(region.mem.data() + v.offset);
      }
    }
    region.bytes = bytes;
    // Publish last: a reader that acquires a non-null base sees the fully
    // initialized region contents and `bytes`.
    base = region.mem.data();
    region.base.store(base, std::memory_order_release);
    if (did_init != nullptr) *did_init = true;
  }
  return Resolved{base, region.bytes};
}

StorageManager::Resolved StorageManager::resolve(const CanonicalScope& scope,
                                                 int module, int cpu,
                                                 ult::TaskContext* ctx) {
  const topo::DenseScopeTable& t = reg_->scopes();
  const int sid = scope_id(t, scope);
  const int inst = t.instance_of(sid, cpu);
  InstanceStorage& st =
      *instances_[static_cast<std::size_t>(sid)][static_cast<std::size_t>(inst)];
  ModuleRegion& region = region_slot(st, module);
  std::byte* base = region.base.load(std::memory_order_acquire);
  if (base != nullptr) return Resolved{base, region.bytes};
#if HLSMPC_OBS_ENABLED
  const std::uint64_t obs_t0 = obs_ != nullptr ? obs_->now() : 0;
#endif
  bool did_init = false;
  const Resolved r = materialize(region, scope, module, ctx, &did_init);
#if HLSMPC_OBS_ENABLED
  // Only the task that actually initialized the region counts a first
  // touch; racers that waited on init_mu resolved, not materialized.
  if (did_init && obs_ != nullptr) {
    const int task = ctx != nullptr ? ctx->task_id() : -1;
    obs_->count(task, obs::Counter::first_touches);
    obs_->count_scope_bytes(task, sid, r.size);
    obs::Event e;
    e.kind = obs::EventKind::first_touch;
    e.sid = static_cast<std::int16_t>(sid);
    e.task = task;
    e.cpu = cpu;
    e.instance = inst;
    e.t0 = obs_t0;
    e.t1 = obs_->now();
    e.arg = static_cast<std::int64_t>(r.size);
    obs_->record(e);
  }
#endif
  return r;
}

void* StorageManager::get_addr(const CanonicalScope& scope, int module,
                               std::size_t offset, std::size_t size, int cpu,
                               ult::TaskContext* ctx) {
  const Resolved r = resolve(scope, module, cpu, ctx);
  if (offset > r.size || size > r.size - offset) {
    throw HlsError("get_addr: accessed range [offset, offset + size) beyond "
                   "module region");
  }
  return r.base + offset;
}

void StorageManager::for_each_materialized(
    const CanonicalScope& scope,
    const std::function<void(int, int, Resolved)>& fn) const {
  const topo::DenseScopeTable& t = reg_->scopes();
  const int sid = scope_id(t, scope);
  const auto& per_scope = instances_[static_cast<std::size_t>(sid)];
  for (std::size_t inst = 0; inst < per_scope.size(); ++inst) {
    const InstanceStorage& st = *per_scope[inst];
    for (int c = 0; c < kMaxChunks; ++c) {
      const Chunk* chunk =
          st.chunks[static_cast<std::size_t>(c)].load(std::memory_order_acquire);
      if (chunk == nullptr) continue;
      for (int s = 0; s < kChunkSize; ++s) {
        const ModuleRegion* region =
            chunk->slots[static_cast<std::size_t>(s)].load(
                std::memory_order_acquire);
        if (region == nullptr) continue;
        std::byte* base = region->base.load(std::memory_order_acquire);
        if (base == nullptr) continue;
        fn(static_cast<int>(inst), c * kChunkSize + s,
           Resolved{base, region->bytes});
      }
    }
  }
}

void StorageManager::import_region(const CanonicalScope& scope, int instance,
                                   int module, const void* data,
                                   std::size_t bytes) {
  const topo::DenseScopeTable& t = reg_->scopes();
  const int sid = scope_id(t, scope);
  if (instance < 0 || instance >= t.num_instances(sid)) {
    throw HlsError("import_region: instance " + std::to_string(instance) +
                   " out of range for scope " + to_string(scope));
  }
  // resolve() keys materialization by cpu; any cpu of the instance names
  // the same region.
  int cpu = -1;
  for (int c = 0; c < t.num_cpus(); ++c) {
    if (t.instance_of(sid, c) == instance) {
      cpu = c;
      break;
    }
  }
  if (cpu < 0) {
    throw HlsError("import_region: scope instance contains no cpus");
  }
  const Resolved r = resolve(scope, module, cpu);
  if (r.size != bytes) {
    throw HlsError("import_region: checkpoint payload of " +
                       std::to_string(bytes) + " bytes does not match the " +
                       std::to_string(r.size) + "-byte region of module " +
                       std::to_string(module) + " at scope " +
                       to_string(scope) + " — module layout changed",
                   ErrorCode::corruption);
  }
  if (bytes > 0) std::memcpy(r.base, data, bytes);
}

std::size_t StorageManager::bytes_allocated() const {
  return tracker_->current(memtrack::Category::hls_shared);
}

int StorageManager::copies(const CanonicalScope& scope, int module) const {
  if (module < 0 || module >= kChunkSize * kMaxChunks) return 0;
  const topo::DenseScopeTable& t = reg_->scopes();
  const int sid = scope_id(t, scope);
  int count = 0;
  for (const auto& inst : instances_[static_cast<std::size_t>(sid)]) {
    const Chunk* chunk =
        inst->chunks[static_cast<std::size_t>(module >> kChunkBits)].load(
            std::memory_order_acquire);
    if (chunk == nullptr) continue;
    const ModuleRegion* region =
        chunk->slots[static_cast<std::size_t>(module & (kChunkSize - 1))].load(
            std::memory_order_acquire);
    if (region != nullptr &&
        region->base.load(std::memory_order_acquire) != nullptr) {
      ++count;
    }
  }
  return count;
}

}  // namespace hlsmpc::hls
