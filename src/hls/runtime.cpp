#include "hls/runtime.hpp"

#include <algorithm>

#if HLSMPC_RECOVERY_ENABLED
#include "hls/checkpoint.hpp"
#endif

namespace hlsmpc::hls {

ScopeSet::ScopeSet(const Runtime& rt, std::initializer_list<VarHandle> vars) {
  if (vars.size() == 0) {
    throw HlsError("ScopeSet: empty variable list");
  }
  const topo::ScopeMap& sm = rt.scope_map();
  auto spec = [](const CanonicalScope& c) {
    return topo::ScopeSpec{c.kind, c.cache_level};
  };
  const CanonicalScope first = vars.begin()->scope;
  CanonicalScope widest = first;
  bool same = true;
  for (const VarHandle& h : vars) {
    if (!h.valid()) throw HlsError("ScopeSet: invalid variable handle");
    if (!(h.scope == first)) same = false;
    if (sm.wider_or_equal(spec(h.scope), spec(widest))) widest = h.scope;
  }
  common_ = first;
  widest_ = widest;
  single_scoped_ = same;
  valid_ = true;
}

const CanonicalScope& ScopeSet::common() const {
  if (!valid_) throw HlsError("ScopeSet: unresolved (default-constructed)");
  if (!single_scoped_) {
    throw HlsError(
        "single: variables with different HLS scopes in one directive — "
        "the compiler rejects this (paper §II.B.2)");
  }
  return common_;
}

const CanonicalScope& ScopeSet::widest() const {
  if (!valid_) throw HlsError("ScopeSet: unresolved (default-constructed)");
  return widest_;
}

Runtime::Runtime(const topo::Machine& machine, int ntasks)
    : Runtime(machine, ntasks, Options()) {}

Runtime::Runtime(const topo::Machine& machine, int ntasks, Options opts)
    : machine_(machine),
      sm_(machine_),
      owned_tracker_(opts.tracker == nullptr
                         ? std::make_unique<memtrack::Tracker>()
                         : nullptr),
      tracker_(opts.tracker != nullptr ? opts.tracker : owned_tracker_.get()),
      reg_(sm_),
#if HLSMPC_OBS_ENABLED
      owned_obs_(opts.obs == nullptr
                     ? std::make_unique<obs::Recorder>(obs::RecorderOptions{
                           .ntasks = std::max(ntasks, 1),
                           .num_scopes = reg_.scopes().num_scopes(),
                           .ring_capacity = opts.obs_ring_capacity})
                     : nullptr),
      obs_(opts.obs != nullptr ? opts.obs : owned_obs_.get()),
      storage_(reg_, *tracker_, obs_),
      sync_(sm_, ntasks, obs_),
#else
      storage_(reg_, *tracker_),
      sync_(sm_, ntasks),
#endif
      ntasks_(ntasks),
      num_scopes_(reg_.scopes().num_scopes()),
      caches_(static_cast<std::size_t>(std::max(ntasks, 1))) {
  if (opts.watchdog_ms != 0) sync_.set_watchdog_ms(opts.watchdog_ms);
#if HLSMPC_OBS_ENABLED
  if (opts.obs_sink != nullptr) obs_->chain(opts.obs_sink);
  for (std::size_t t = 0; t < caches_.size(); ++t) {
    caches_[t].warm_hits =
        obs_->counter_cell(static_cast<int>(t), obs::Counter::get_addr_warm);
  }
#else
  (void)opts;
#endif
}

void Runtime::invalidate_cache(int task) {
  if (task < 0 || task >= static_cast<int>(caches_.size())) return;
  caches_[static_cast<std::size_t>(task)].cpu = -1;
  caches_[static_cast<std::size_t>(task)].entries.clear();
}

void Runtime::bind_task(const ult::TaskContext& ctx) {
  sync_.set_task_cpu(ctx.task_id(), ctx.cpu());
  const int task = ctx.task_id();
  if (task >= 0 && task < static_cast<int>(caches_.size())) {
    TaskCache& c = caches_[static_cast<std::size_t>(task)];
    if (c.cpu != ctx.cpu()) {
      // Re-bound on a different cpu (e.g. external re-pinning): the cached
      // instance pointers belong to the old cpu's instances. Drop them.
      c.entries.clear();
      c.cpu = ctx.cpu();
    }
  }
}

void* Runtime::get_addr(const VarHandle& h, ult::TaskContext& ctx) {
  if (!h.valid()) throw HlsError("get_addr: invalid variable handle");
  const int sid = h.sid >= 0 ? h.sid : scope_id(reg_.scopes(), h.scope);
  const std::size_t idx =
      static_cast<std::size_t>(h.module) *
          static_cast<std::size_t>(num_scopes_) +
      static_cast<std::size_t>(sid);
  const int task = ctx.task_id();
  TaskCache* cache = nullptr;
  if (task >= 0 && task < static_cast<int>(caches_.size())) {
    cache = &caches_[static_cast<std::size_t>(task)];
    // Warm path: one array load plus an offset add. The cpu check guards
    // against any path that changed the task's cpu without dropping the
    // cache (belt and braces on top of migrate/bind_task invalidation).
    if (cache->cpu == ctx.cpu() && idx < cache->entries.size()) {
      const CacheEntry& e = cache->entries[idx];
      if (e.base != nullptr) {
        if (h.offset > e.size || h.size > e.size - h.offset) {
          throw HlsError(
              "get_addr: accessed range [offset, offset + size) beyond "
              "module region");
        }
#if HLSMPC_OBS_ENABLED
        if (std::atomic<std::uint64_t>* c = cache->warm_hits) {
          c->store(c->load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
        }
#endif
        return e.base + h.offset;
      }
    }
  }
  // Cold (or post-move) path: resolve through storage, then fill the
  // cache for this cpu.
  const StorageManager::Resolved r =
      storage_.resolve(h.scope, h.module, ctx.cpu(), &ctx);
  if (h.offset > r.size || h.size > r.size - h.offset) {
    throw HlsError(
        "get_addr: accessed range [offset, offset + size) beyond "
        "module region");
  }
  if (cache != nullptr) {
    if (cache->cpu != ctx.cpu()) {
      cache->entries.clear();
      cache->cpu = ctx.cpu();
    }
    if (idx >= cache->entries.size()) cache->entries.resize(idx + 1);
    cache->entries[idx] = CacheEntry{r.base, r.size};
  }
#if HLSMPC_OBS_ENABLED
  obs_->count(task, obs::Counter::get_addr_cold);
#endif
  return r.base + h.offset;
}

#if HLSMPC_RMA_ENABLED
VarHandle Runtime::rma_backing(const std::string& name, std::size_t bytes,
                               const topo::ScopeSpec& scope) {
  if (bytes == 0) {
    throw HlsError("rma_backing: window region must be non-empty");
  }
  // A window's backing is an ordinary HLS module registered after the
  // initial commit wave (the registry supports late modules); storage
  // materializes lazily on each instance's first get_addr like any other
  // scope variable.
  ModuleBuilder mb(reg_, "rma:" + name);
  VarHandle h =
      mb.add_raw(name, scope, bytes, alignof(std::max_align_t), VarInitFn{});
  mb.commit();
  return h;
}
#endif  // HLSMPC_RMA_ENABLED

#if HLSMPC_RECOVERY_ENABLED
std::uint64_t Runtime::checkpoint(CheckpointStore& store,
                                  const topo::ScopeSpec& scope) {
  const CanonicalScope c = canonicalize(sm_, scope);
  const CheckpointStore::Report rep = store.save(storage_, reg_, c);
#if HLSMPC_OBS_ENABLED
  obs_->count(0, obs::Counter::ckpt_bytes, rep.payload_bytes);
#endif
  return rep.version;
}

std::uint64_t Runtime::restore(CheckpointStore& store,
                               const topo::ScopeSpec& scope) {
  const CanonicalScope c = canonicalize(sm_, scope);
  const CheckpointStore::Report rep = store.restore(storage_, reg_, c);
#if HLSMPC_OBS_ENABLED
  obs_->count(0, obs::Counter::ckpt_bytes, rep.payload_bytes);
#endif
  return rep.version;
}
#endif  // HLSMPC_RECOVERY_ENABLED

CanonicalScope Runtime::common_scope(
    std::initializer_list<VarHandle> vars) const {
  if (vars.size() == 0) {
    throw HlsError("single: empty variable list");
  }
  const CanonicalScope first = vars.begin()->scope;
  for (const VarHandle& h : vars) {
    if (!h.valid()) throw HlsError("single: invalid variable handle");
    if (!(h.scope == first)) {
      throw HlsError(
          "single: variables with different HLS scopes in one directive (" +
          to_string(first) + " vs " + to_string(h.scope) +
          ") — the compiler rejects this (paper §II.B.2)");
    }
  }
  return first;
}

CanonicalScope Runtime::widest_scope(
    std::initializer_list<VarHandle> vars) const {
  if (vars.size() == 0) {
    throw HlsError("barrier: empty variable list");
  }
  CanonicalScope widest = vars.begin()->scope;
  auto spec = [](const CanonicalScope& c) {
    return topo::ScopeSpec{c.kind, c.cache_level};
  };
  for (const VarHandle& h : vars) {
    if (!h.valid()) throw HlsError("barrier: invalid variable handle");
    if (sm_.wider_or_equal(spec(h.scope), spec(widest))) widest = h.scope;
  }
  return widest;
}

void Runtime::barrier_scope(const CanonicalScope& s, ult::TaskContext& ctx) {
  sync_.barrier(s, ctx);
}

bool Runtime::single_enter_scope(const CanonicalScope& s,
                                 ult::TaskContext& ctx) {
  return sync_.single_enter(s, ctx);
}

void Runtime::single_done_scope(const CanonicalScope& s,
                                ult::TaskContext& ctx) {
  sync_.single_done(s, ctx);
}

bool Runtime::single_nowait_scope(const CanonicalScope& s,
                                  ult::TaskContext& ctx) {
  return sync_.single_nowait(s, ctx);
}

void Runtime::migrate(ult::TaskContext& ctx, int new_cpu) {
  if (new_cpu < 0 || new_cpu >= machine_.num_cpus()) {
    throw HlsError("migrate: bad cpu");
  }
  ctx.sync_point("migrate:enter");
#if HLSMPC_OBS_ENABLED
  const std::uint64_t mig_t0 = obs_->now();
  auto obs_migration = [&](bool ok) {
    obs_->count(ctx.task_id(), ok ? obs::Counter::migrations_ok
                                  : obs::Counter::migrations_rejected);
    obs::Event e;
    e.kind = obs::EventKind::migration;
    e.flag = ok;
    e.task = ctx.task_id();
    e.cpu = ctx.cpu();
    e.t0 = mig_t0;
    e.t1 = obs_->now();
    e.arg = new_cpu;
    obs_->record(e);
  };
#endif
  auto reject = [&](const std::string& why) {
#if HLSMPC_OBS_ENABLED
    obs_migration(/*ok=*/false);
#endif
    sync_.report_migration(ctx, new_cpu, /*ok=*/false);
    // Rejection is not an error in the runtime's state: the task keeps
    // running where it is and may retry after the next episode.
    throw HlsError(why, ErrorCode::not_eligible);
  };
  // A task inside a single block holds the instance's exclusivity; its
  // episode counters are mid-update, so MPC_Move is never legal here.
  if (sync_.in_single(ctx.task_id())) {
    reject("migrate: task is inside a single block");
  }
  // Paper §IV.A: a task may only move if it has encountered the same
  // number of single and barrier directives as the destination.
  auto check_scope = [&](const CanonicalScope& s) {
    const auto task_count = sync_.task_sync_count(ctx.task_id(), s);
    const auto dest_count = sync_.instance_sync_count(s, new_cpu);
    if (task_count != dest_count) {
      reject("migrate: task saw " + std::to_string(task_count) +
             " episodes for " + to_string(s) + " but destination saw " +
             std::to_string(dest_count));
    }
  };
  for (const topo::ScopeKind kind :
       {topo::ScopeKind::node, topo::ScopeKind::numa, topo::ScopeKind::cache,
        topo::ScopeKind::core}) {
    if (kind == topo::ScopeKind::cache) {
      for (int level = 1; level <= machine_.num_cache_levels(); ++level) {
        check_scope(CanonicalScope{kind, level});
      }
    } else {
      // numa has two possible canonical levels (domain / socket).
      const int max_level = kind == topo::ScopeKind::numa &&
                                    machine_.desc().numa_per_socket > 1
                                ? 2
                                : 0;
      for (int level = 0; level <= max_level; level += 2) {
        check_scope(CanonicalScope{kind, level});
      }
    }
  }
  ctx.set_cpu(new_cpu);
  sync_.set_task_cpu(ctx.task_id(), new_cpu);
  // The move changed which scope instances contain the task; every cached
  // instance pointer may now be wrong. Drop them all (the next get_addr
  // refills for the new cpu).
  invalidate_cache(ctx.task_id());
#if HLSMPC_OBS_ENABLED
  obs_migration(/*ok=*/true);
#endif
  sync_.report_migration(ctx, new_cpu, /*ok=*/true);
}

}  // namespace hlsmpc::hls
