// Deterministic fault injection for the runtime's resource-failure paths.
//
// Real failures (mmap returning ENOMEM, fork hitting EAGAIN, a rank dying
// mid-barrier) are impossible to provoke reliably from a test, so every
// such path stays untested until production finds it. The FaultInjector
// makes them deterministically reachable: the runtime's cold paths carry
// *named injection sites* — `fault::should_fail("shm:mmap")` — that are
// inert until a test installs an injector and arms a site.
//
// Arming modes (all deterministic):
//  - site-count: fire on the nth hit of a site (optionally only when the
//    site's integer operand — e.g. the forking rank — matches);
//  - seeded: every site hit rolls a seeded PRNG against a probability;
//    with a fixed seed and a deterministic execution order (the
//    check::DeterministicExecutor provides one) the firing pattern is a
//    pure function of the seed;
//  - schedule-based: fire only once the global sync-point clock has
//    passed N. The clock is ticked by check::DeterministicExecutor at
//    every instrumented sync edge, so a fault can be placed "after the
//    k-th scheduling decision" of an explored schedule.
//
// Sites in the runtime (site string, index operand):
//   shm:anon_mmap        -    AnonymousSegment mmap
//   shm:shm_open         -    NamedSegment shm_open
//   shm:ftruncate        -    NamedSegment ftruncate
//   shm:mmap             -    NamedSegment mmap
//   shm:map_address      -    NamedSegment mapped at the wrong address
//   arena:allocate       -    Arena::allocate forced exhaustion
//   storage:first_touch  -    StorageManager first-touch allocation (OOM)
//   process:fork         rank ProcessNode fork of that rank
//   process:child_exit   rank child crashes (SIGKILL) right after fork
//   process:barrier_locked rank child crashes while HOLDING the robust
//                             sync mutex (exercises EOWNERDEAD recovery)
//   shm:flap             ep   transiently failing intra-node endpoint;
//                             the transport retries with backoff
//   fabric:flap          ep   transiently failing fabric endpoint (link
//                             flap); retried like shm:flap
//   ckpt:write           -    torn checkpoint write: the version file is
//                             published with a truncated payload and no
//                             CRC trailer (restore must fall back)
//   cluster:respawn      node replacement-node launch failure in
//                             SimCluster::respawn
//
// Injection checks cost one relaxed atomic load when no injector is
// installed, and sit on cold paths only (never on warm get_addr or the
// flat-barrier arrival word).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <random>
#include <string>

namespace hlsmpc::fault {

class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Seeded mode: every should_fail() rolls the PRNG; fires with
  /// `probability`. Deterministic given a deterministic hit order.
  void seed(std::uint64_t seed, double probability);

  /// Fire on the `nth` (1-based) hit of `site`, for `times` consecutive
  /// hits. `index >= 0` restricts matching to hits whose index operand
  /// equals it (hits with other indices don't advance the countdown).
  void arm(const std::string& site, std::uint64_t nth = 1, int index = -1,
           int times = 1);
  /// Fire on every hit of `site` (matching `index` when >= 0).
  void arm_always(const std::string& site, int index = -1);
  /// Like arm(), but the site stays dormant until the global sync-point
  /// clock (ticked by check::DeterministicExecutor) reaches `sync_point`.
  void arm_at_sync_point(const std::string& site, std::uint64_t sync_point,
                         int index = -1);
  void disarm(const std::string& site);

  /// Called by injection sites. Counts the hit; true = fail now.
  bool should_fail(const char* site, int index);

  std::uint64_t hits(const std::string& site) const;
  std::uint64_t fired(const std::string& site) const;

  /// Sync-point clock (see arm_at_sync_point).
  void tick_sync_point() { sync_clock_.fetch_add(1, std::memory_order_relaxed); }
  std::uint64_t sync_points() const {
    return sync_clock_.load(std::memory_order_relaxed);
  }

  // -- process-global installation (what the sites consult) --
  static FaultInjector* global() {
    return global_.load(std::memory_order_acquire);
  }
  static void install(FaultInjector* inj) {
    global_.store(inj, std::memory_order_release);
  }

 private:
  struct Arming {
    std::uint64_t remaining_skips = 0;  ///< matching hits before firing
    int remaining_fires = 1;            ///< -1 = fire forever
    int index = -1;                     ///< -1 = any index operand
    std::uint64_t after_sync_point = 0;
    bool armed = false;
  };
  struct SiteState {
    std::uint64_t hits = 0;
    std::uint64_t fired = 0;
    Arming arming;
  };

  mutable std::mutex mu_;
  std::map<std::string, SiteState, std::less<>> sites_;
  bool seeded_ = false;
  double probability_ = 0.0;
  std::mt19937_64 rng_;
  std::atomic<std::uint64_t> sync_clock_{0};

  static std::atomic<FaultInjector*> global_;
};

/// RAII installation: sites consult `inj` for the scope's lifetime.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(FaultInjector& inj) {
    FaultInjector::install(&inj);
  }
  ~ScopedFaultInjection() { FaultInjector::install(nullptr); }
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

/// The check an injection site compiles to: one relaxed load when no
/// injector is installed.
inline bool should_fail(const char* site, int index = -1) {
  FaultInjector* inj = FaultInjector::global();
  return inj != nullptr && inj->should_fail(site, index);
}

/// Tick the global injector's sync-point clock (no-op when none is
/// installed). Called by check::DeterministicExecutor at every sync edge.
inline void tick_sync_point() {
  if (FaultInjector* inj = FaultInjector::global()) inj->tick_sync_point();
}

}  // namespace hlsmpc::fault
