// Structured error taxonomy for the runtime (failure-containment layer).
//
// Every HlsError/ShmError carries an ErrorCode so callers can distinguish
// *degradation* (a resource request failed cleanly; the runtime's shared
// state is intact and the caller may retry, shrink, or fall back) from
// *corruption/loss* (a peer died mid-update, shared metadata failed
// validation, or a sync primitive is provably stuck; the only safe move
// is to tear the node down). recoverable() encodes that split.
//
// Header-only on purpose: shm must not link against hls (or vice versa),
// but both error types share one taxonomy.
#pragma once

namespace hlsmpc {

enum class ErrorCode {
  // --- recoverable: no shared state was mutated past a consistent point ---
  invalid_argument,  ///< API misuse (bad handle, bad id, double commit...)
  not_eligible,      ///< legal call refused by a runtime check (MPC_Move
                     ///< counter mismatch, migrate inside a single)
  out_of_memory,     ///< allocation failed cleanly (first-touch OOM)
  segment_create,    ///< shm_open / ftruncate / mmap failed
  segment_address,   ///< mapping did not land at the requested address
  arena_exhausted,   ///< shared arena out of space
  fork_failed,       ///< task process spawn failed; partial fork cleaned up
  transport_exhausted,  ///< transport unexpected-message capacity exceeded;
                        ///< no message was enqueued, the caller may drain
                        ///< and retry

  // --- fatal: shared state may be torn; tear the node down ---
  task_died,     ///< a peer task process died mid-run
  sync_timeout,  ///< a rank timed out inside a sync primitive
  deadlock,      ///< watchdog: barrier/single stuck past its deadline
  corruption,    ///< shared metadata failed validation
  node_unreachable,  ///< a whole peer node stopped responding (dead-rank
                     ///< supervision lifted to the node level); in-flight
                     ///< traffic to/from it is lost
};

/// True when the error describes clean degradation: the runtime's shared
/// state is intact and the caller can retry, shrink, or fall back.
constexpr bool recoverable(ErrorCode c) {
  switch (c) {
    case ErrorCode::invalid_argument:
    case ErrorCode::not_eligible:
    case ErrorCode::out_of_memory:
    case ErrorCode::segment_create:
    case ErrorCode::segment_address:
    case ErrorCode::arena_exhausted:
    case ErrorCode::fork_failed:
    case ErrorCode::transport_exhausted:
      return true;
    case ErrorCode::task_died:
    case ErrorCode::sync_timeout:
    case ErrorCode::deadlock:
    case ErrorCode::corruption:
    case ErrorCode::node_unreachable:
      return false;
  }
  return false;
}

constexpr const char* to_string(ErrorCode c) {
  switch (c) {
    case ErrorCode::invalid_argument:
      return "invalid_argument";
    case ErrorCode::not_eligible:
      return "not_eligible";
    case ErrorCode::out_of_memory:
      return "out_of_memory";
    case ErrorCode::segment_create:
      return "segment_create";
    case ErrorCode::segment_address:
      return "segment_address";
    case ErrorCode::arena_exhausted:
      return "arena_exhausted";
    case ErrorCode::fork_failed:
      return "fork_failed";
    case ErrorCode::transport_exhausted:
      return "transport_exhausted";
    case ErrorCode::task_died:
      return "task_died";
    case ErrorCode::sync_timeout:
      return "sync_timeout";
    case ErrorCode::deadlock:
      return "deadlock";
    case ErrorCode::corruption:
      return "corruption";
    case ErrorCode::node_unreachable:
      return "node_unreachable";
  }
  return "?";
}

}  // namespace hlsmpc
