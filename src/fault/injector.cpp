#include "fault/injector.hpp"

namespace hlsmpc::fault {

std::atomic<FaultInjector*> FaultInjector::global_{nullptr};

void FaultInjector::seed(std::uint64_t seed, double probability) {
  std::lock_guard<std::mutex> lk(mu_);
  seeded_ = true;
  probability_ = probability;
  rng_.seed(seed);
}

void FaultInjector::arm(const std::string& site, std::uint64_t nth, int index,
                        int times) {
  std::lock_guard<std::mutex> lk(mu_);
  Arming& a = sites_[site].arming;
  a.remaining_skips = nth > 0 ? nth - 1 : 0;
  a.remaining_fires = times;
  a.index = index;
  a.after_sync_point = 0;
  a.armed = true;
}

void FaultInjector::arm_always(const std::string& site, int index) {
  arm(site, 1, index, -1);
}

void FaultInjector::arm_at_sync_point(const std::string& site,
                                      std::uint64_t sync_point, int index) {
  std::lock_guard<std::mutex> lk(mu_);
  Arming& a = sites_[site].arming;
  a.remaining_skips = 0;
  a.remaining_fires = 1;
  a.index = index;
  a.after_sync_point = sync_point;
  a.armed = true;
}

void FaultInjector::disarm(const std::string& site) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = sites_.find(site);
  if (it != sites_.end()) it->second.arming.armed = false;
}

bool FaultInjector::should_fail(const char* site, int index) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = sites_.find(std::string_view(site));
  if (it == sites_.end()) {
    it = sites_.emplace(std::string(site), SiteState{}).first;
  }
  SiteState& st = it->second;
  ++st.hits;

  bool fire = false;
  Arming& a = st.arming;
  if (a.armed && (a.index < 0 || a.index == index) &&
      sync_clock_.load(std::memory_order_relaxed) >= a.after_sync_point) {
    if (a.remaining_skips > 0) {
      --a.remaining_skips;
    } else {
      fire = true;
      if (a.remaining_fires > 0 && --a.remaining_fires == 0) a.armed = false;
    }
  }
  if (!fire && seeded_) {
    fire = std::uniform_real_distribution<double>(0.0, 1.0)(rng_) <
           probability_;
  }
  if (fire) ++st.fired;
  return fire;
}

std::uint64_t FaultInjector::hits(const std::string& site) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

std::uint64_t FaultInjector::fired(const std::string& site) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fired;
}

}  // namespace hlsmpc::fault
