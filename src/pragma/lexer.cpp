#include "pragma/lexer.hpp"

#include <cctype>

namespace hlsmpc::pragma {

namespace {
bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
}  // namespace

std::vector<Token> tokenize(const std::string& line) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token t;
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < line.size() && ident_char(line[j])) ++j;
      t.kind = Token::Kind::ident;
      t.text = line.substr(i, j - i);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < line.size() &&
             std::isdigit(static_cast<unsigned char>(line[j]))) {
        ++j;
      }
      t.kind = Token::Kind::number;
      t.text = line.substr(i, j - i);
      i = j;
    } else {
      t.kind = Token::Kind::punct;
      t.text = std::string(1, c);
      ++i;
    }
    tokens.push_back(std::move(t));
  }
  return tokens;
}

bool is_hls_pragma(const std::string& line) {
  std::size_t i = line.find_first_not_of(" \t");
  if (i == std::string::npos || line[i] != '#') return false;
  const std::vector<Token> toks = tokenize(line.substr(i));
  return toks.size() >= 3 && toks[0].text == "#" && toks[1].text == "pragma" &&
         toks[2].text == "hls";
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

std::string strip_noncode(const std::string& line, bool& in_block) {
  std::string out;
  out.reserve(line.size());
  std::size_t i = 0;
  while (i < line.size()) {
    if (in_block) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        in_block = false;
        out += "  ";
        i += 2;
      } else {
        out += ' ';
        ++i;
      }
      continue;
    }
    const char c = line[i];
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
      out.append(line.size() - i, ' ');
      break;
    }
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      in_block = true;
      out += "  ";
      i += 2;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      out += quote;
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\' && i + 1 < line.size()) {
          out += "  ";
          i += 2;
          continue;
        }
        if (line[i] == quote) {
          out += quote;
          ++i;
          break;
        }
        out += ' ';
        ++i;
      }
      continue;
    }
    out += c;
    ++i;
  }
  return out;
}

namespace {
bool word_at(const std::string& code, std::size_t pos,
             const std::string& ident) {
  if (pos + ident.size() > code.size()) return false;
  if (code.compare(pos, ident.size(), ident) != 0) return false;
  if (pos > 0 && ident_char(code[pos - 1])) return false;
  const std::size_t end = pos + ident.size();
  if (end < code.size() && ident_char(code[end])) return false;
  return true;
}
}  // namespace

bool contains_identifier(const std::string& code, const std::string& ident) {
  for (std::size_t pos = code.find(ident); pos != std::string::npos;
       pos = code.find(ident, pos + 1)) {
    if (word_at(code, pos, ident)) return true;
  }
  return false;
}

std::string replace_identifier(const std::string& code,
                               const std::string& ident,
                               const std::string& replacement) {
  return replace_identifier_in_code(code, code, ident, replacement);
}

std::string replace_identifier_in_code(const std::string& raw,
                                       const std::string& code,
                                       const std::string& ident,
                                       const std::string& replacement) {
  if (raw.size() != code.size()) {
    // Defensive: strip_noncode is length-preserving; fall back to raw.
    return replace_identifier(raw, ident, replacement);
  }
  std::string out;
  out.reserve(raw.size());
  std::size_t i = 0;
  while (i < raw.size()) {
    if (word_at(code, i, ident)) {
      out += replacement;
      i += ident.size();
    } else {
      out += raw[i];
      ++i;
    }
  }
  return out;
}

}  // namespace hlsmpc::pragma
