#include "pragma/parser.hpp"

#include <algorithm>

#include "pragma/lexer.hpp"

namespace hlsmpc::pragma {

namespace {

/// Directive-level scope width used by barrier's "largest scope" rule.
int width_rank(const topo::ScopeSpec& s) {
  switch (s.kind) {
    case topo::ScopeKind::node:
      return 1000;
    case topo::ScopeKind::numa:
      return 900;
    case topo::ScopeKind::cache:
      // level 0 = llc, wider than any numbered level.
      return s.level == 0 ? 800 : 100 + s.level;
    case topo::ScopeKind::core:
      return 0;
  }
  return -1;
}

struct PragmaParse {
  std::optional<Directive> directive;
  std::vector<Diagnostic> diags;
};

/// Parse the token list of one `#pragma hls ...` line.
PragmaParse parse_pragma_line(const std::vector<Token>& toks, int line) {
  PragmaParse out;
  auto err = [&](const std::string& m) {
    out.diags.push_back({line, true, m});
  };
  // toks: # pragma hls <head> ( list ) [tail...]
  if (toks.size() < 4) {
    err("incomplete HLS pragma");
    return out;
  }
  const std::string head = toks[3].text;
  std::size_t i = 4;
  if (i >= toks.size() || toks[i].text != "(") {
    err("expected '(' after 'hls " + head + "'");
    return out;
  }
  ++i;
  std::vector<std::string> vars;
  while (i < toks.size() && toks[i].text != ")") {
    if (toks[i].kind != Token::Kind::ident) {
      err("expected variable name in '" + head + "' list, got '" +
          toks[i].text + "'");
      return out;
    }
    vars.push_back(toks[i].text);
    ++i;
    if (i < toks.size() && toks[i].text == ",") ++i;
  }
  if (i >= toks.size()) {
    err("missing ')' in HLS pragma");
    return out;
  }
  ++i;  // consume ')'
  if (vars.empty()) {
    err("empty variable list in 'hls " + head + "'");
    return out;
  }

  Directive d;
  d.line = line;
  d.vars = vars;

  // Optional tail: level(L) for scope directives, nowait for single.
  std::optional<int> level;
  bool nowait = false;
  while (i < toks.size()) {
    if (toks[i].text == "level") {
      if (i + 3 < toks.size() + 1 && i + 1 < toks.size() &&
          toks[i + 1].text == "(" && i + 2 < toks.size()) {
        if (toks[i + 2].kind == Token::Kind::number) {
          level = std::stoi(toks[i + 2].text);
        } else if (toks[i + 2].text == "llc") {
          level = 0;
        } else {
          err("level() expects a number or 'llc'");
          return out;
        }
        if (i + 3 >= toks.size() || toks[i + 3].text != ")") {
          err("missing ')' after level clause");
          return out;
        }
        i += 4;
        continue;
      }
      err("malformed level clause");
      return out;
    }
    if (toks[i].text == "nowait") {
      nowait = true;
      ++i;
      continue;
    }
    err("unexpected token '" + toks[i].text + "' in HLS pragma");
    return out;
  }

  if (head == "single") {
    d.kind = DirectiveKind::single;
    d.nowait = nowait;
    if (level) {
      err("'single' does not accept a level clause");
      return out;
    }
  } else if (head == "barrier") {
    d.kind = DirectiveKind::barrier;
    if (nowait || level) {
      err("'barrier' accepts no clauses");
      return out;
    }
  } else if (head == "node" || head == "numa" || head == "cache" ||
             head == "core") {
    d.kind = DirectiveKind::scope;
    if (nowait) {
      err("'nowait' is only valid on 'single'");
      return out;
    }
    if (head == "node") d.scope = topo::node_scope();
    if (head == "numa") d.scope = topo::numa_scope();
    if (head == "core") d.scope = topo::core_scope();
    if (head == "cache") d.scope = topo::cache_scope(level.value_or(0));
    if (level && head != "cache" && head != "numa") {
      err("level clause is only valid for 'cache' and 'numa' scopes");
      return out;
    }
    if (level && head == "cache" && *level < 0) {
      err("cache level must be >= 1 or 'llc'");
      return out;
    }
  } else {
    err("unknown HLS directive '" + head + "'");
    return out;
  }
  out.directive = d;
  return out;
}

/// Extremely small top-level declaration matcher: at brace depth 0,
/// `type name;`, `type name[expr];`, `type *name;` and comma lists.
/// Returns declared names (and a type guess).
std::vector<std::pair<std::string, bool>> match_declaration(
    const std::string& code, std::string* type_out) {
  std::vector<std::pair<std::string, bool>> decls;  // name, is_array
  const std::vector<Token> toks = tokenize(code);
  if (toks.size() < 3) return decls;
  // Needs to end with ';'
  if (toks.back().text != ";") return decls;
  // First token must be an identifier (type name); skip qualifiers.
  std::size_t i = 0;
  static const char* kQualifiers[] = {"static", "const", "unsigned",
                                      "signed", "long", "short", "struct"};
  std::string type;
  while (i < toks.size() && toks[i].kind == Token::Kind::ident) {
    bool qualifier = false;
    for (const char* q : kQualifiers) {
      if (toks[i].text == q) qualifier = true;
    }
    type = toks[i].text;
    ++i;
    if (!qualifier) break;
  }
  if (type.empty() || i >= toks.size()) return decls;
  // Reject control keywords masquerading as types.
  for (const char* kw : {"return", "if", "while", "for", "else", "typedef"}) {
    if (type == kw) return decls;
  }
  if (type_out != nullptr) *type_out = type;
  // Declarators.
  while (i < toks.size() && toks[i].text != ";") {
    while (i < toks.size() && toks[i].text == "*") ++i;  // pointers
    if (i >= toks.size() || toks[i].kind != Token::Kind::ident) return {};
    const std::string name = toks[i].text;
    ++i;
    bool is_array = false;
    while (i < toks.size() && toks[i].text == "[") {
      is_array = true;
      int depth = 1;
      ++i;
      while (i < toks.size() && depth > 0) {
        if (toks[i].text == "[") ++depth;
        if (toks[i].text == "]") --depth;
        ++i;
      }
    }
    // Initializers make the declaration fine but stop simple parsing of
    // further declarators; accept `= ...` up to ',' or ';'.
    if (i < toks.size() && toks[i].text == "=") {
      while (i < toks.size() && toks[i].text != "," && toks[i].text != ";") {
        ++i;
      }
    }
    decls.push_back({name, is_array});
    if (i < toks.size() && toks[i].text == ",") ++i;
  }
  return decls;
}

}  // namespace

const HlsVariable* ParseResult::find_var(const std::string& name) const {
  for (const HlsVariable& v : variables) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

topo::ScopeSpec widest_scope(const std::vector<topo::ScopeSpec>& scopes) {
  if (scopes.empty()) {
    throw std::invalid_argument("widest_scope: empty list");
  }
  topo::ScopeSpec best = scopes.front();
  for (const topo::ScopeSpec& s : scopes) {
    if (width_rank(s) > width_rank(best)) best = s;
  }
  return best;
}

ParseResult parse(const std::string& source) {
  ParseResult result;
  const std::vector<std::string> lines = split_lines(source);

  struct Global {
    std::string name;
    int line;
    std::string type;
    bool is_array;
    bool used = false;
  };
  std::vector<Global> globals;
  auto find_global = [&](const std::string& n) -> Global* {
    for (Global& g : globals) {
      if (g.name == n) return &g;
    }
    return nullptr;
  };

  int depth = 0;
  bool in_block_comment = false;
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const int line_no = static_cast<int>(li) + 1;
    const std::string& raw = lines[li];
    if (is_hls_pragma(raw)) {
      std::size_t start = raw.find_first_not_of(" \t");
      PragmaParse pp = parse_pragma_line(tokenize(raw.substr(start)), line_no);
      for (Diagnostic& d : pp.diags) result.diagnostics.push_back(d);
      if (!pp.directive) continue;
      Directive& d = *pp.directive;

      if (d.kind == DirectiveKind::scope) {
        for (const std::string& v : d.vars) {
          Global* g = find_global(v);
          if (g == nullptr) {
            result.diagnostics.push_back(
                {line_no, true,
                 "HLS scope directive on '" + v +
                     "' which is not a declared global variable"});
            continue;
          }
          if (g->used) {
            result.diagnostics.push_back(
                {line_no, true,
                 "variable '" + v +
                     "' was already accessed before its HLS directive"});
            continue;
          }
          if (result.find_var(v) != nullptr) {
            result.diagnostics.push_back(
                {line_no, true, "variable '" + v + "' is already HLS"});
            continue;
          }
          HlsVariable hv;
          hv.name = v;
          hv.scope = d.scope;
          hv.declared_line = g->line;
          hv.pragma_line = line_no;
          hv.decl_type = g->type;
          hv.is_array = g->is_array;
          result.variables.push_back(std::move(hv));
        }
      } else {
        // single / barrier argument checks.
        std::vector<topo::ScopeSpec> scopes;
        bool args_ok = true;
        for (const std::string& v : d.vars) {
          const HlsVariable* hv = result.find_var(v);
          if (hv == nullptr) {
            result.diagnostics.push_back(
                {line_no, true,
                 "'" + v + "' in hls " +
                     (d.kind == DirectiveKind::single ? std::string("single")
                                                      : std::string("barrier")) +
                     " is not an HLS variable"});
            args_ok = false;
            continue;
          }
          scopes.push_back(hv->scope);
        }
        if (args_ok && d.kind == DirectiveKind::single) {
          for (const topo::ScopeSpec& s : scopes) {
            if (!(s == scopes.front())) {
              result.diagnostics.push_back(
                  {line_no, true,
                   "hls single requires all variables to share one scope "
                   "(paper §II.B.2)"});
              break;
            }
          }
        }
      }
      result.directives.push_back(std::move(d));
      continue;
    }

    const std::string code = strip_noncode(raw, in_block_comment);
    // Track use of known globals (any identifier occurrence in code that
    // is not its own declaration line).
    for (Global& g : globals) {
      if (contains_identifier(code, g.name)) g.used = true;
    }
    // Top-level declarations only.
    if (depth == 0) {
      std::string type;
      for (auto& [name, is_array] : match_declaration(code, &type)) {
        if (find_global(name) == nullptr) {
          globals.push_back({name, line_no, type, is_array, false});
        }
      }
    }
    for (char c : code) {
      if (c == '{') ++depth;
      if (c == '}') --depth;
    }
  }
  return result;
}

}  // namespace hlsmpc::pragma
