// Source rewriter: the code-generation half of the paper's compiler
// support (§IV.A-B), as a source-to-source transformation.
//
//   int a;                      int *ptr_a;
//   #pragma hls node(a)    =>   ptr_a = hls_get_addr_node(HLS_MOD_main,
//   a = 3;                                                HLS_OFF_a);
//                               (*ptr_a) = 3;
//
//   #pragma hls single(a)       if (hls_single(node)) {
//   { f(&a); }             =>     f(&(*ptr_a));
//                                 hls_single_done(node);
//                               }
//
//   #pragma hls barrier(a,b) => hls_barrier(node);   // widest scope
//
// Module ids and offsets are emitted as symbolic macros (HLS_MOD_*,
// HLS_OFF_*): "the linker is then responsible for filling the right
// module id and the offset" (§IV.A). StripMode removes the pragmas
// untouched — the paper's guarantee that an HLS-unaware compiler still
// produces a correct program.
#pragma once

#include "pragma/parser.hpp"

namespace hlsmpc::pragma {

enum class RewriteMode {
  translate,  ///< full rewrite to runtime calls
  strip,      ///< remove pragmas only (ignore-mode semantics)
};

struct RewriteResult {
  bool ok = false;
  std::string text;
  std::vector<Diagnostic> diagnostics;
  std::vector<HlsVariable> variables;
};

RewriteResult rewrite(const std::string& source,
                      RewriteMode mode = RewriteMode::translate,
                      const std::string& module_name = "main");

}  // namespace hlsmpc::pragma
