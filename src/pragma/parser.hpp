// Parser for HLS directives in C-like source (paper §II.B).
//
// Recognized forms:
//   #pragma hls node(v1, v2, ...)          -- also numa / core
//   #pragma hls cache(v1, ...) level(L)    -- L = 1..llc
//   #pragma hls numa(v1, ...) level(L)
//   #pragma hls single(v1, ...) [nowait]
//   #pragma hls barrier(v1, ...)
//
// The parser also performs the static checks the paper's compiler makes:
// scope directives must name global variables that are declared but not
// yet used; single lists must share one scope; barrier/single arguments
// must already be HLS variables. Violations are reported as diagnostics
// with line numbers; the rewriter refuses to run on errors.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "topo/scope_map.hpp"

namespace hlsmpc::pragma {

struct Diagnostic {
  int line = 0;  // 1-based
  bool error = true;
  std::string message;
};

enum class DirectiveKind { scope, single, barrier };

struct Directive {
  DirectiveKind kind = DirectiveKind::scope;
  topo::ScopeSpec scope;  // for kind == scope
  std::vector<std::string> vars;
  bool nowait = false;
  int line = 0;  // 1-based
};

struct HlsVariable {
  std::string name;
  topo::ScopeSpec scope;
  int declared_line = 0;
  int pragma_line = 0;
  std::string decl_type;  ///< textual element type guess, e.g. "double"
  bool is_array = false;
};

struct ParseResult {
  std::vector<Directive> directives;
  std::vector<HlsVariable> variables;
  std::vector<Diagnostic> diagnostics;

  bool ok() const {
    for (const Diagnostic& d : diagnostics) {
      if (d.error) return false;
    }
    return true;
  }
  const HlsVariable* find_var(const std::string& name) const;
};

/// Parse source text, returning directives, the HLS variable table, and
/// diagnostics (including all static-check violations).
ParseResult parse(const std::string& source);

/// Widest scope of a variable list: node > numa > cache(L2) > cache(L1)
/// > core (machine-independent directive-level ordering; llc==cache(0)
/// sorts above any explicit level).
topo::ScopeSpec widest_scope(const std::vector<topo::ScopeSpec>& scopes);

}  // namespace hlsmpc::pragma
