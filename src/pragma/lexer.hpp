// Minimal lexical utilities for the HLS directive processor.
//
// The directive translator works on C-like source text. It needs three
// things from a lexer: tokenizing a `#pragma hls` line, recognizing
// top-level variable declarations, and finding identifier uses in code
// (respecting word boundaries, skipping string/char literals and
// comments). Full C parsing is out of scope — the checks mirror what the
// paper's GCC patch enforces for the directive arguments themselves.
#pragma once

#include <string>
#include <vector>

namespace hlsmpc::pragma {

struct Token {
  enum class Kind { ident, number, punct, end };
  Kind kind = Kind::end;
  std::string text;
};

/// Tokenize one line (identifiers, numbers, single-char punctuation).
std::vector<Token> tokenize(const std::string& line);

/// True if `line` is an HLS pragma (`#pragma hls ...` after whitespace).
bool is_hls_pragma(const std::string& line);

/// Split source text into lines (keeps no terminators).
std::vector<std::string> split_lines(const std::string& text);

/// Strip // and /* */ comments and string/char literal *contents* from a
/// line so identifier searches cannot match inside them. `in_block`
/// carries /* ... */ state across lines.
std::string strip_noncode(const std::string& line, bool& in_block);

/// True if `ident` occurs as a whole word in (already-stripped) code.
bool contains_identifier(const std::string& code, const std::string& ident);

/// Replace whole-word occurrences of `ident` with `replacement`.
std::string replace_identifier(const std::string& code,
                               const std::string& ident,
                               const std::string& replacement);

/// Replace occurrences in `raw`, but only at positions where the
/// (length-preserving) stripped view `code` contains the identifier —
/// i.e. never inside strings or comments.
std::string replace_identifier_in_code(const std::string& raw,
                                       const std::string& code,
                                       const std::string& ident,
                                       const std::string& replacement);

}  // namespace hlsmpc::pragma
