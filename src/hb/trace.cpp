#include "hb/trace.hpp"

#include <algorithm>

namespace hlsmpc::hb {

Trace::Trace(int ntasks) : ntasks_(ntasks), per_task_(static_cast<std::size_t>(ntasks)) {
  if (ntasks < 1) throw hls::HlsError("Trace: need at least one task");
}

const std::vector<int>& Trace::program_order(int task) const {
  if (task < 0 || task >= ntasks_) throw hls::HlsError("Trace: bad task");
  return per_task_[static_cast<std::size_t>(task)];
}

Event& Trace::append(int task, EventKind kind) {
  if (task < 0 || task >= ntasks_) throw hls::HlsError("Trace: bad task");
  Event e;
  e.id = static_cast<int>(events_.size());
  e.task = task;
  e.kind = kind;
  events_.push_back(e);
  per_task_[static_cast<std::size_t>(task)].push_back(e.id);
  return events_.back();
}

void Trace::read(int task, const std::string& var, long value) {
  Event& e = append(task, EventKind::read);
  e.var = var;
  e.value = value;
}

void Trace::write(int task, const std::string& var, long value) {
  Event& e = append(task, EventKind::write);
  e.var = var;
  e.value = value;
}

void Trace::send(int task, int to, long tag) {
  if (to < 0 || to >= ntasks_) throw hls::HlsError("Trace: bad peer");
  Event& e = append(task, EventKind::send);
  e.peer = to;
  e.tag = tag;
}

void Trace::recv(int task, int from, long tag) {
  if (from < 0 || from >= ntasks_) throw hls::HlsError("Trace: bad peer");
  Event& e = append(task, EventKind::recv);
  e.peer = from;
  e.tag = tag;
}

void Trace::barrier() {
  const int wave = next_barrier_++;
  for (int t = 0; t < ntasks_; ++t) {
    Event& e = append(t, EventKind::barrier);
    e.barrier_id = wave;
  }
}

std::vector<std::string> Trace::variables() const {
  std::vector<std::string> vars;
  for (const Event& e : events_) {
    if (e.kind == EventKind::read || e.kind == EventKind::write) {
      vars.push_back(e.var);
    }
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

}  // namespace hlsmpc::hb
