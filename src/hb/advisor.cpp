#include "hb/advisor.hpp"

namespace hlsmpc::hb {

const char* to_string(Recommendation r) {
  switch (r) {
    case Recommendation::share_as_is:
      return "share as-is";
    case Recommendation::wrap_writes_in_single:
      return "wrap writes in single";
    case Recommendation::keep_private:
      return "keep private";
  }
  return "?";
}

bool Advisor::spmd_identical_writes(const Trace& trace,
                                    const std::string& var) {
  const auto& events = trace.events();
  std::vector<std::vector<long>> seq(
      static_cast<std::size_t>(trace.ntasks()));
  for (int t = 0; t < trace.ntasks(); ++t) {
    for (int id : trace.program_order(t)) {
      const Event& e = events[static_cast<std::size_t>(id)];
      if (e.kind == EventKind::write && e.var == var) {
        seq[static_cast<std::size_t>(t)].push_back(e.value);
      }
    }
  }
  for (int t = 1; t < trace.ntasks(); ++t) {
    if (seq[static_cast<std::size_t>(t)] != seq[0]) return false;
  }
  return !seq[0].empty();
}

std::vector<Advice> Advisor::advise(const Trace& trace) {
  Analyzer analyzer(trace);
  const AnalysisResult analysis = analyzer.analyze();
  std::vector<Advice> out;
  for (const VarReport& report : analysis.vars) {
    Advice a;
    a.var = report.var;
    a.eligibility = report.eligibility;
    a.spmd_identical_writes = spmd_identical_writes(trace, report.var);
    switch (report.eligibility) {
      case Eligibility::eligible:
        a.recommendation = Recommendation::share_as_is;
        a.text = "'" + a.var +
                 "' is coherent under the existing synchronizations; mark "
                 "it `#pragma hls <scope>` with no further changes.";
        break;
      case Eligibility::needs_synchronization:
        if (a.spmd_identical_writes) {
          a.recommendation = Recommendation::wrap_writes_in_single;
          a.text = "'" + a.var +
                   "' is written identically by every task; wrap each "
                   "write in `#pragma hls single` to make it HLS (paper "
                   "§III.C).";
        } else {
          a.recommendation = Recommendation::keep_private;
          a.text = "'" + a.var +
                   "' could satisfy condition (3) but its writes are not "
                   "SPMD-identical; no mechanical single insertion applies.";
        }
        break;
      case Eligibility::ineligible:
        a.recommendation = Recommendation::keep_private;
        a.text = "'" + a.var +
                 "' has reads no added synchronization can make coherent; "
                 "keep it private.";
        break;
    }
    out.push_back(std::move(a));
  }
  return out;
}

}  // namespace hlsmpc::hb
