// Event traces for the happens-before analysis (paper §III).
//
// A Trace records, per MPI task, the sequence of reads/writes to named
// global variables plus the synchronizing events (message send/recv pairs
// and global barriers). The Analyzer derives the happens-before partial
// order and decides which variables are HLS-eligible; the Advisor
// proposes `single` placements — the paper's future-work automatic
// detection, built on its §III formalism.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hls/registry.hpp"  // HlsError

namespace hlsmpc::hb {

enum class EventKind { read, write, send, recv, barrier };

struct Event {
  int id = -1;
  int task = -1;
  EventKind kind = EventKind::read;
  std::string var;      // read/write
  long value = 0;       // read/write
  int peer = -1;        // send: destination, recv: source
  long tag = 0;         // send/recv matching
  int barrier_id = -1;  // barrier wave
};

class Trace {
 public:
  explicit Trace(int ntasks);

  int ntasks() const { return ntasks_; }
  const std::vector<Event>& events() const { return events_; }
  /// Event ids of `task`, in program order.
  const std::vector<int>& program_order(int task) const;

  void read(int task, const std::string& var, long value);
  void write(int task, const std::string& var, long value);
  void send(int task, int to, long tag = 0);
  void recv(int task, int from, long tag = 0);
  /// Global barrier: one event per task, same wave.
  void barrier();

  /// Variables appearing in the trace (sorted, unique).
  std::vector<std::string> variables() const;

 private:
  Event& append(int task, EventKind kind);

  int ntasks_;
  int next_barrier_ = 0;
  std::vector<Event> events_;
  std::vector<std::vector<int>> per_task_;
};

}  // namespace hlsmpc::hb
