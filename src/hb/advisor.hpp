// Synchronization advisor (paper §III.C + the conclusion's future work).
//
// For variables that are not HLS-eligible as-is, the paper observes that
// SPMD programs usually write such variables identically in every task:
// "If each MPI task executes the same sequence of write operations to a
// variable ... we can encapsulate each of those write operations with
// single pragmas." The advisor detects that pattern per variable and
// emits a concrete recommendation.
#pragma once

#include "hb/analyzer.hpp"

namespace hlsmpc::hb {

enum class Recommendation {
  share_as_is,            ///< eligible without changes
  wrap_writes_in_single,  ///< SPMD-identical writes: add singles
  keep_private,           ///< cannot be made HLS
};

const char* to_string(Recommendation r);

struct Advice {
  std::string var;
  Eligibility eligibility;
  bool spmd_identical_writes = false;
  Recommendation recommendation = Recommendation::keep_private;
  std::string text;  ///< human-readable summary
};

class Advisor {
 public:
  /// Analyze the trace and advise per variable.
  static std::vector<Advice> advise(const Trace& trace);

  /// True if every task writes the same sequence of values to `var`.
  static bool spmd_identical_writes(const Trace& trace,
                                    const std::string& var);
};

}  // namespace hlsmpc::hb
