#include "hb/analyzer.hpp"

#include <algorithm>
#include <map>

namespace hlsmpc::hb {

const char* to_string(Eligibility e) {
  switch (e) {
    case Eligibility::eligible:
      return "eligible";
    case Eligibility::needs_synchronization:
      return "needs synchronization";
    case Eligibility::ineligible:
      return "ineligible";
  }
  return "?";
}

const VarReport& AnalysisResult::for_var(const std::string& name) const {
  for (const VarReport& r : vars) {
    if (r.var == name) return r;
  }
  throw hls::HlsError("AnalysisResult: variable '" + name +
                      "' not in the trace");
}

Analyzer::Analyzer(const Trace& trace) : trace_(&trace) { compute_clocks(); }

void Analyzer::compute_clocks() {
  const int n = trace_->ntasks();
  const auto& events = trace_->events();
  vc_.assign(events.size(), std::vector<std::uint32_t>(
                                static_cast<std::size_t>(n), 0));
  pos_.assign(events.size(), 0);

  // Round-robin replay: advance each task while its next event's
  // dependencies (matching send, or full barrier wave) are satisfied.
  std::vector<std::size_t> cursor(static_cast<std::size_t>(n), 0);
  std::vector<std::vector<std::uint32_t>> task_vc(
      static_cast<std::size_t>(n),
      std::vector<std::uint32_t>(static_cast<std::size_t>(n), 0));
  // Matched channels: (src,dst,tag) -> queue of send event ids already
  // processed; recv consumes in order.
  std::map<std::tuple<int, int, int>, std::vector<int>> sent;
  std::map<std::tuple<int, int, int>, std::size_t> consumed;

  auto join = [n](std::vector<std::uint32_t>& a,
                  const std::vector<std::uint32_t>& b) {
    for (int i = 0; i < n; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      a[idx] = std::max(a[idx], b[idx]);
    }
  };

  bool progress = true;
  std::size_t done = 0;
  const std::size_t total = events.size();
  while (done < total) {
    if (!progress) {
      throw hls::HlsError(
          "Analyzer: trace cannot be replayed (unmatched recv or "
          "incomplete barrier wave)");
    }
    progress = false;

    // Barrier waves need all participants at the barrier simultaneously.
    // First try to complete a wave.
    for (int wave_try = 0; wave_try < 1; ++wave_try) {
      bool all_at_barrier = n > 0;
      int wave = -1;
      for (int t = 0; t < n; ++t) {
        const auto& order = trace_->program_order(t);
        const std::size_t c = cursor[static_cast<std::size_t>(t)];
        if (c >= order.size() ||
            events[static_cast<std::size_t>(order[c])].kind !=
                EventKind::barrier) {
          all_at_barrier = false;
          break;
        }
        const int w = events[static_cast<std::size_t>(order[c])].barrier_id;
        if (wave == -1) wave = w;
        if (w != wave) all_at_barrier = false;
      }
      if (all_at_barrier) {
        // Join all clocks, stamp every barrier event with the join.
        std::vector<std::uint32_t> merged(static_cast<std::size_t>(n), 0);
        for (int t = 0; t < n; ++t) {
          auto& tv = task_vc[static_cast<std::size_t>(t)];
          tv[static_cast<std::size_t>(t)] += 1;
          join(merged, tv);
        }
        for (int t = 0; t < n; ++t) {
          const auto& order = trace_->program_order(t);
          const int id = order[cursor[static_cast<std::size_t>(t)]];
          vc_[static_cast<std::size_t>(id)] = merged;
          pos_[static_cast<std::size_t>(id)] =
              merged[static_cast<std::size_t>(t)];
          task_vc[static_cast<std::size_t>(t)] = merged;
          ++cursor[static_cast<std::size_t>(t)];
          ++done;
        }
        progress = true;
        continue;
      }
    }

    // Then advance non-barrier events.
    for (int t = 0; t < n; ++t) {
      const auto& order = trace_->program_order(t);
      while (cursor[static_cast<std::size_t>(t)] < order.size()) {
        const int id = order[cursor[static_cast<std::size_t>(t)]];
        const Event& e = events[static_cast<std::size_t>(id)];
        if (e.kind == EventKind::barrier) break;  // handled above
        auto& tv = task_vc[static_cast<std::size_t>(t)];
        if (e.kind == EventKind::recv) {
          const auto key = std::make_tuple(e.peer, t, e.tag);
          auto& queue = sent[key];
          auto& used = consumed[key];
          if (used >= queue.size()) break;  // matching send not yet replayed
          const int send_id = queue[used++];
          tv[static_cast<std::size_t>(t)] += 1;
          join(tv, vc_[static_cast<std::size_t>(send_id)]);
        } else {
          tv[static_cast<std::size_t>(t)] += 1;
          if (e.kind == EventKind::send) {
            sent[std::make_tuple(t, e.peer, e.tag)].push_back(id);
          }
        }
        vc_[static_cast<std::size_t>(id)] = tv;
        pos_[static_cast<std::size_t>(id)] = tv[static_cast<std::size_t>(t)];
        ++cursor[static_cast<std::size_t>(t)];
        ++done;
        progress = true;
      }
    }
  }
}

bool Analyzer::happens_before(int a, int b) const {
  if (a == b) return false;
  const Event& ea = trace_->events()[static_cast<std::size_t>(a)];
  // a < b iff b's clock has seen a's position in a's task component —
  // strictly: vc(b)[task(a)] >= pos(a) and not the symmetric case.
  const auto& vb = vc_[static_cast<std::size_t>(b)];
  if (vb[static_cast<std::size_t>(ea.task)] < pos_[static_cast<std::size_t>(a)]) {
    return false;
  }
  // Distinguish equality (same event) handled above; barrier events of one
  // wave share clocks — treat them as unordered among themselves.
  const auto& va = vc_[static_cast<std::size_t>(a)];
  if (va == vb) return false;
  return true;
}

AnalysisResult Analyzer::analyze() const {
  AnalysisResult result;
  const auto& events = trace_->events();
  for (const std::string& var : trace_->variables()) {
    VarReport report;
    report.var = var;
    std::vector<int> writes;
    std::vector<int> reads;
    for (const Event& e : events) {
      if (e.var != var) continue;
      if (e.kind == EventKind::write) writes.push_back(e.id);
      if (e.kind == EventKind::read) reads.push_back(e.id);
    }
    bool all_coherent = true;
    bool cond3_ok = true;
    for (int r : reads) {
      const long rv = events[static_cast<std::size_t>(r)].value;
      bool coherent = true;
      bool some_candidate_matches = false;
      bool any_candidate = false;
      for (int w : writes) {
        const long wv = events[static_cast<std::size_t>(w)].value;
        if (parallel(w, r)) {
          any_candidate = true;
          if (wv == rv) some_candidate_matches = true;
          if (wv != rv) coherent = false;  // condition (1)
        } else if (happens_before(w, r)) {
          // Condition (2): only *last* writes before r matter.
          bool intervening = false;
          for (int w2 : writes) {
            if (w2 != w && happens_before(w, w2) && happens_before(w2, r)) {
              intervening = true;
              break;
            }
          }
          if (!intervening) {
            any_candidate = true;
            if (wv == rv) some_candidate_matches = true;
            if (wv != rv) coherent = false;
          }
        }
      }
      if (!coherent) {
        all_coherent = false;
        report.incoherent_reads.push_back(r);
        // Condition (3): some considered write must produce the value.
        if (!any_candidate || !some_candidate_matches) cond3_ok = false;
      }
    }
    if (all_coherent) {
      report.eligibility = Eligibility::eligible;
    } else if (cond3_ok) {
      report.eligibility = Eligibility::needs_synchronization;
    } else {
      report.eligibility = Eligibility::ineligible;
    }
    result.vars.push_back(std::move(report));
  }
  return result;
}

}  // namespace hlsmpc::hb
