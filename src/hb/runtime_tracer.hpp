// Automatic HLS-eligibility detection over a live run (the paper's
// conclusion / future work, built on the §III formalism).
//
// Attach a RuntimeTracer to the MPI runtime before running a program:
// every point-to-point completion is recorded automatically via the
// runtime's TraceHook (collectives are built over p2p, so their
// synchronization structure is captured too). The application reports
// reads/writes to candidate global variables through on_read/on_write —
// the instrumentation a compiler pass would insert. After the run,
// trace() assembles an hb::Trace and advise() runs the Advisor.
//
//   hb::RuntimeTracer tracer(nranks);
//   runtime.set_trace_hook(&tracer);
//   runtime.run([&](Comm& world, TaskContext& ctx) {
//     ...
//     tracer.on_write(ctx.task_id(), "table", checksum);
//     ...
//   });
//   runtime.set_trace_hook(nullptr);
//   for (auto& a : tracer.advise()) ...
//
// Limitations (documented, by design): receives are recorded at wait()
// (use wait, not bare test-loops, in traced programs), and value tracking
// is by the caller-provided long (hash large objects).
#pragma once

#include <mutex>

#include "hb/advisor.hpp"
#include "mpi/trace_hook.hpp"
#include "obs/event.hpp"

namespace hlsmpc::hb {

/// Attachable two ways: as the runtime's TraceHook (set_trace_hook) or as
/// an obs::Sink chained onto an obs::Recorder's event stream — the sink
/// path decodes p2p_send/p2p_recv events into the same send/recv records.
/// Attach through one of the two, not both, or every p2p completion is
/// recorded twice.
class RuntimeTracer final : public mpi::TraceHook, public obs::Sink {
 public:
  explicit RuntimeTracer(int ntasks);

  // Application-side instrumentation.
  void on_read(int task, const std::string& var, long value);
  void on_write(int task, const std::string& var, long value);

  // mpi::TraceHook (called by the runtime).
  void on_send(int task, int peer_task, int context, int tag) override;
  void on_recv(int task, int peer_task, int context, int tag) override;

  // obs::Sink: p2p events feed the same record stream; everything else is
  // ignored (barriers/collectives are captured through their p2p parts).
  void on_event(const obs::Event& e) override;

  /// Assemble the recorded events into an analyzable trace.
  Trace trace() const;
  /// Full pipeline: trace -> happens-before -> per-variable advice.
  std::vector<Advice> advise() const { return Advisor::advise(trace()); }

  std::size_t num_events() const;

 private:
  struct Recorded {
    EventKind kind;
    std::string var;
    long value = 0;
    int peer = -1;
    long tag = 0;
  };
  struct PerTask {
    mutable std::mutex mu;
    std::vector<Recorded> events;
  };

  static long combined_tag(int context, int tag) {
    return (static_cast<long>(context) << 32) |
           static_cast<long>(static_cast<unsigned>(tag));
  }

  int ntasks_;
  std::vector<PerTask> per_task_;
};

}  // namespace hlsmpc::hb
