// Happens-before analysis and HLS eligibility (paper §III).
//
// Vector clocks are propagated through program order, matched send/recv
// pairs (k-th send from t to u with tag g matches the k-th such recv) and
// barrier waves. A read r of variable v returning value val is *coherent*
// iff
//   (1) every write w to v with w || r has value(w) == val, and
//   (2) every last-write-before w (w < r with no other write to v between)
//       has value(w) == val.
// A variable is HLS-eligible without synchronization iff all its reads
// are coherent (§III.B). If not, condition (3) — some candidate write has
// the right value — decides whether added synchronization (e.g. the
// single directive) can make it eligible (§III.C).
#pragma once

#include "hb/trace.hpp"

namespace hlsmpc::hb {

enum class Eligibility {
  eligible,            ///< shareable as-is (all reads coherent)
  needs_synchronization,  ///< shareable if singles are added (cond. 3 holds)
  ineligible,          ///< some read can never be made coherent
};

const char* to_string(Eligibility e);

struct VarReport {
  std::string var;
  Eligibility eligibility = Eligibility::eligible;
  std::vector<int> incoherent_reads;  // event ids
};

struct AnalysisResult {
  std::vector<VarReport> vars;
  const VarReport& for_var(const std::string& name) const;
};

class Analyzer {
 public:
  explicit Analyzer(const Trace& trace);

  /// Strict happens-before between two event ids.
  bool happens_before(int a, int b) const;
  bool parallel(int a, int b) const {
    return a != b && !happens_before(a, b) && !happens_before(b, a);
  }

  AnalysisResult analyze() const;

  const std::vector<std::vector<std::uint32_t>>& clocks() const {
    return vc_;
  }

 private:
  void compute_clocks();

  const Trace* trace_;
  std::vector<std::vector<std::uint32_t>> vc_;  // per event id
  std::vector<std::uint32_t> pos_;              // program-order index
};

}  // namespace hlsmpc::hb
