#include "hb/runtime_tracer.hpp"

namespace hlsmpc::hb {

RuntimeTracer::RuntimeTracer(int ntasks)
    : ntasks_(ntasks), per_task_(static_cast<std::size_t>(ntasks)) {
  if (ntasks < 1) throw hls::HlsError("RuntimeTracer: need >= 1 task");
}

void RuntimeTracer::on_read(int task, const std::string& var, long value) {
  PerTask& pt = per_task_.at(static_cast<std::size_t>(task));
  std::lock_guard<std::mutex> lk(pt.mu);
  pt.events.push_back({EventKind::read, var, value, -1, 0});
}

void RuntimeTracer::on_write(int task, const std::string& var, long value) {
  PerTask& pt = per_task_.at(static_cast<std::size_t>(task));
  std::lock_guard<std::mutex> lk(pt.mu);
  pt.events.push_back({EventKind::write, var, value, -1, 0});
}

void RuntimeTracer::on_send(int task, int peer_task, int context, int tag) {
  PerTask& pt = per_task_.at(static_cast<std::size_t>(task));
  std::lock_guard<std::mutex> lk(pt.mu);
  pt.events.push_back(
      {EventKind::send, {}, 0, peer_task, combined_tag(context, tag)});
}

void RuntimeTracer::on_recv(int task, int peer_task, int context, int tag) {
  PerTask& pt = per_task_.at(static_cast<std::size_t>(task));
  std::lock_guard<std::mutex> lk(pt.mu);
  pt.events.push_back(
      {EventKind::recv, {}, 0, peer_task, combined_tag(context, tag)});
}

void RuntimeTracer::on_event(const obs::Event& e) {
  // The p2p events carry peer in arg and context<<32|tag in arg2 — the
  // same combined tag on_send/on_recv compute, so both attachment paths
  // produce identical traces.
  if (e.task < 0 || e.task >= ntasks_) return;
  if (e.kind != obs::EventKind::p2p_send &&
      e.kind != obs::EventKind::p2p_recv) {
    return;
  }
  PerTask& pt = per_task_[static_cast<std::size_t>(e.task)];
  std::lock_guard<std::mutex> lk(pt.mu);
  pt.events.push_back({e.kind == obs::EventKind::p2p_send ? EventKind::send
                                                          : EventKind::recv,
                       {},
                       0,
                       static_cast<int>(e.arg),
                       static_cast<long>(e.arg2)});
}

Trace RuntimeTracer::trace() const {
  Trace t(ntasks_);
  for (int task = 0; task < ntasks_; ++task) {
    const PerTask& pt = per_task_[static_cast<std::size_t>(task)];
    std::lock_guard<std::mutex> lk(pt.mu);
    for (const Recorded& r : pt.events) {
      switch (r.kind) {
        case EventKind::read:
          t.read(task, r.var, r.value);
          break;
        case EventKind::write:
          t.write(task, r.var, r.value);
          break;
        case EventKind::send:
          t.send(task, r.peer, r.tag);
          break;
        case EventKind::recv:
          t.recv(task, r.peer, r.tag);
          break;
        case EventKind::barrier:
          break;  // not produced by the tracer
      }
    }
  }
  return t;
}

std::size_t RuntimeTracer::num_events() const {
  std::size_t n = 0;
  for (const PerTask& pt : per_task_) {
    std::lock_guard<std::mutex> lk(pt.mu);
    n += pt.events.size();
  }
  return n;
}

}  // namespace hlsmpc::hb
