// Process-shared arena allocator inside a shared segment.
//
// Under process-based MPI, heap memory referenced by an HLS variable must
// live in the shared segment (paper §IV.C: "overload dynamic memory
// allocations ... when the call is inside a single directive"). The arena
// is a first-fit free list with coalescing whose entire state — including
// its lock — lives inside the segment, so any attached process can
// allocate and free. Offsets, not pointers, are stored internally; with
// the segment mapped at one common address, offset arithmetic and pointer
// identity agree across processes.
#pragma once

#include <pthread.h>

#include <cstddef>
#include <cstdint>

#include "shm/segment.hpp"

namespace hlsmpc::shm {

class Arena {
 public:
  /// Initialize a fresh arena over [base, base+bytes) — call once, in the
  /// owning process, before other processes attach.
  static Arena* create(void* base, std::size_t bytes);
  /// View an already-initialized arena (attaching process).
  static Arena* attach(void* base);

  void* allocate(std::size_t bytes, std::size_t align = 16);
  void deallocate(void* p);

  std::size_t bytes_free() const;
  std::size_t bytes_used() const;
  /// Number of free-list blocks (coalescing keeps this small).
  int free_blocks() const;

  /// Total overhead the arena needs beyond user payload for n blocks.
  static std::size_t min_bytes();

 private:
  Arena() = default;

  struct Block {
    std::uint64_t size;       // payload bytes
    std::uint64_t next_free;  // offset of next free block, 0 = none
    std::uint64_t prev_size;  // payload size of the preceding block, 0 = first
    std::uint32_t free;
    std::uint32_t magic;
  };

  Block* block_at(std::uint64_t off);
  const Block* block_at(std::uint64_t off) const;
  std::uint64_t offset_of(const Block* b) const;
  void remove_free(Block* b);
  void push_free(Block* b);
  Block* next_in_memory(Block* b);
  Block* prev_in_memory(Block* b);

  // --- all state below lives in the shared segment ---
  pthread_mutex_t mu_;
  std::uint64_t total_;
  std::uint64_t used_;
  std::uint64_t first_free_;
  std::uint32_t magic_;
};

}  // namespace hlsmpc::shm
