#include "shm/arena.hpp"

#include <cstring>
#include <new>

#include "fault/injector.hpp"

namespace hlsmpc::shm {

namespace {
constexpr std::uint32_t kArenaMagic = 0xA11CA7EDu;
constexpr std::uint32_t kBlockMagic = 0xB10CB10Cu;
constexpr std::uint64_t kSlackMagic = 0x51ACC0FFEE51ACC0ull;
constexpr std::size_t kHeader = 128;  // Arena header region, padded

std::size_t align_up(std::size_t v, std::size_t a) {
  return (v + a - 1) & ~(a - 1);
}
}  // namespace

std::size_t Arena::min_bytes() { return kHeader + sizeof(Block) + 64; }

Arena* Arena::create(void* base, std::size_t bytes) {
  static_assert(sizeof(Arena) <= kHeader, "Arena header region too small");
  if (bytes < min_bytes()) {
    throw ShmError("Arena: segment too small", ErrorCode::invalid_argument);
  }
  auto* a = new (base) Arena();
  pthread_mutexattr_t attr;
  pthread_mutexattr_init(&attr);
  pthread_mutexattr_setpshared(&attr, PTHREAD_PROCESS_SHARED);
  pthread_mutex_init(&a->mu_, &attr);
  pthread_mutexattr_destroy(&attr);
  a->total_ = bytes - kHeader;
  a->used_ = 0;
  a->magic_ = kArenaMagic;

  Block* first = a->block_at(kHeader);
  first->size = a->total_ - sizeof(Block);
  first->next_free = 0;
  first->prev_size = 0;
  first->free = 1;
  first->magic = kBlockMagic;
  a->first_free_ = kHeader;
  return a;
}

Arena* Arena::attach(void* base) {
  auto* a = static_cast<Arena*>(base);
  if (a->magic_ != kArenaMagic) {
    throw ShmError("Arena::attach: no arena at this address",
                   ErrorCode::corruption);
  }
  return a;
}

Arena::Block* Arena::block_at(std::uint64_t off) {
  return reinterpret_cast<Block*>(reinterpret_cast<std::byte*>(this) + off);
}

const Arena::Block* Arena::block_at(std::uint64_t off) const {
  return reinterpret_cast<const Block*>(
      reinterpret_cast<const std::byte*>(this) + off);
}

std::uint64_t Arena::offset_of(const Block* b) const {
  return static_cast<std::uint64_t>(reinterpret_cast<const std::byte*>(b) -
                                    reinterpret_cast<const std::byte*>(this));
}

void Arena::remove_free(Block* b) {
  std::uint64_t* link = &first_free_;
  while (*link != 0) {
    Block* cur = block_at(*link);
    if (cur == b) {
      *link = b->next_free;
      b->next_free = 0;
      return;
    }
    link = &cur->next_free;
  }
  throw ShmError("Arena: free-list corruption (block not found)",
                 ErrorCode::corruption);
}

void Arena::push_free(Block* b) {
  b->free = 1;
  b->next_free = first_free_;
  first_free_ = offset_of(b);
}

Arena::Block* Arena::next_in_memory(Block* b) {
  const std::uint64_t off = offset_of(b) + sizeof(Block) + b->size;
  if (off >= kHeader + total_) return nullptr;
  return block_at(off);
}

Arena::Block* Arena::prev_in_memory(Block* b) {
  if (b->prev_size == 0 && offset_of(b) == kHeader) return nullptr;
  const std::uint64_t off = offset_of(b) - sizeof(Block) - b->prev_size;
  return block_at(off);
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  if (bytes == 0) bytes = 1;
  if (align < 16 || (align & (align - 1)) != 0) align = 16;
  // Block payloads are 16-aligned by construction (header multiple of 16);
  // larger alignments are served by over-allocating.
  const std::size_t need = align_up(bytes + (align > 16 ? align : 0), 16);

  pthread_mutex_lock(&mu_);
  // Forced-exhaustion injection site: tests make the "shared arena is
  // full" path deterministically reachable without actually burning the
  // segment. Checked under the lock so hit counts are exact.
  std::uint64_t* link =
      fault::should_fail("arena:allocate") ? nullptr : &first_free_;
  while (link != nullptr && *link != 0) {
    Block* b = block_at(*link);
    if (b->size >= need) {
      *link = b->next_free;
      b->next_free = 0;
      b->free = 0;
      // Split if the remainder can hold another block.
      if (b->size >= need + sizeof(Block) + 16) {
        const std::uint64_t remainder = b->size - need - sizeof(Block);
        b->size = need;
        Block* rest = next_in_memory(b);
        rest->size = remainder;
        rest->prev_size = b->size;
        rest->magic = kBlockMagic;
        rest->next_free = 0;
        push_free(rest);
        Block* after = next_in_memory(rest);
        if (after != nullptr) after->prev_size = rest->size;
      }
      used_ += b->size;
      const std::uint64_t block_off = offset_of(b);
      pthread_mutex_unlock(&mu_);
      std::byte* payload = reinterpret_cast<std::byte*>(b) + sizeof(Block);
      const std::size_t mis =
          reinterpret_cast<std::uintptr_t>(payload) % align;
      if (mis == 0) return payload;
      // Shift forward for over-alignment and leave a marker right before
      // the returned pointer so deallocate can find the block header.
      std::byte* ret = payload + (align - mis);
      auto* marker = reinterpret_cast<std::uint64_t*>(ret - 16);
      marker[0] = kSlackMagic;
      marker[1] = block_off;
      return ret;
    }
    link = &b->next_free;
  }
  pthread_mutex_unlock(&mu_);
  throw ShmError("Arena: out of space (" + std::to_string(need) +
                     " bytes requested, " +
                     std::to_string(static_cast<std::size_t>(total_ - used_)) +
                     " free but fragmented or exhausted)",
                 ErrorCode::arena_exhausted);
}

void Arena::deallocate(void* p) {
  if (p == nullptr) return;
  pthread_mutex_lock(&mu_);
  // Either the pointer sits right after its block header, or it was
  // shifted for over-alignment and a slack marker precedes it.
  std::byte* q = static_cast<std::byte*>(p);
  Block* b = nullptr;
  auto* direct = reinterpret_cast<Block*>(q - sizeof(Block));
  if (direct->magic == kBlockMagic && !direct->free) {
    b = direct;
  } else {
    const auto* marker = reinterpret_cast<const std::uint64_t*>(q - 16);
    if (marker[0] == kSlackMagic) {
      Block* cand = block_at(marker[1]);
      if (cand->magic == kBlockMagic && !cand->free) b = cand;
    }
  }
  if (b == nullptr) {
    pthread_mutex_unlock(&mu_);
    throw ShmError("Arena::deallocate: not an arena pointer",
                   ErrorCode::corruption);
  }
  used_ -= b->size;
  // Coalesce with free neighbours.
  Block* nxt = next_in_memory(b);
  if (nxt != nullptr && nxt->free) {
    remove_free(nxt);
    b->size += sizeof(Block) + nxt->size;
    nxt->magic = 0;
  }
  Block* prv = prev_in_memory(b);
  if (prv != nullptr && prv->free) {
    remove_free(prv);
    prv->size += sizeof(Block) + b->size;
    b->magic = 0;
    b = prv;
  }
  Block* after = next_in_memory(b);
  if (after != nullptr) after->prev_size = b->size;
  push_free(b);
  pthread_mutex_unlock(&mu_);
}

std::size_t Arena::bytes_free() const {
  return static_cast<std::size_t>(total_ - used_);
}

std::size_t Arena::bytes_used() const {
  return static_cast<std::size_t>(used_);
}

int Arena::free_blocks() const {
  int n = 0;
  std::uint64_t off = first_free_;
  while (off != 0) {
    ++n;
    off = block_at(off)->next_free;
  }
  return n;
}

}  // namespace hlsmpc::shm
