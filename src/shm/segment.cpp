#include "shm/segment.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "fault/injector.hpp"

#ifndef MAP_FIXED_NOREPLACE
#define MAP_FIXED_NOREPLACE 0x100000
#endif

namespace hlsmpc::shm {

namespace {

// EINTR-safe shm_open/ftruncate (a profiler or the ProcessNode parent's
// SIGCHLD can interrupt either mid-call).
int shm_open_retry(const char* name, int flags, mode_t mode) {
  int fd;
  do {
    fd = shm_open(name, flags, mode);
  } while (fd < 0 && errno == EINTR);
  return fd;
}

int ftruncate_retry(int fd, off_t length) {
  int rc;
  do {
    rc = ftruncate(fd, length);
  } while (rc != 0 && errno == EINTR);
  return rc;
}

/// Pid embedded in a unique_name()-shaped basename ("hlsmpc.<prefix>.
/// <pid>.<seq>"), or -1 when the name has a different shape.
long embedded_pid(const std::string& basename, const std::string& prefix) {
  const std::string head = "hlsmpc." + prefix + ".";
  if (basename.rfind(head, 0) != 0) return -1;
  const std::size_t pid_begin = head.size();
  const std::size_t pid_end = basename.find('.', pid_begin);
  if (pid_end == std::string::npos || pid_end == pid_begin) return -1;
  char* end = nullptr;
  const long pid =
      std::strtol(basename.c_str() + pid_begin, &end, 10);
  if (end != basename.c_str() + pid_end || pid <= 0) return -1;
  return pid;
}

bool process_alive(long pid) {
  return kill(static_cast<pid_t>(pid), 0) == 0 || errno != ESRCH;
}

}  // namespace

AnonymousSegment::AnonymousSegment(std::size_t bytes) : size_(bytes) {
  void* p = MAP_FAILED;
  if (!fault::should_fail("shm:anon_mmap")) {
    p = mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  } else {
    errno = ENOMEM;
  }
  if (p == MAP_FAILED) {
    throw ShmError(std::string("AnonymousSegment: mmap failed: ") +
                       std::strerror(errno),
                   ErrorCode::segment_create);
  }
  base_ = p;
}

AnonymousSegment::~AnonymousSegment() {
  if (base_ != nullptr) munmap(base_, size_);
}

NamedSegment::NamedSegment(const std::string& name, std::size_t bytes,
                           void* address_hint, bool owner)
    : name_(name), size_(bytes), owner_(owner) {
  int flags = O_RDWR;
  if (owner) flags |= O_CREAT | O_EXCL;
  int fd = -1;
  if (fault::should_fail("shm:shm_open")) {
    errno = EMFILE;
  } else {
    fd = shm_open_retry(name.c_str(), flags, 0600);
    if (fd < 0 && owner && errno == EEXIST) {
      // A same-named segment exists. If it is the corpse of a crashed run
      // — any "hlsmpc.<...>.<pid>.<seq>" name whose embedded pid is gone —
      // reclaim the name; a live owner keeps it and the collision stays an
      // error.
      const std::string base = name.substr(1);
      const std::size_t last_dot = base.rfind('.');
      const std::size_t pid_dot =
          last_dot == std::string::npos ? std::string::npos
                                        : base.rfind('.', last_dot - 1);
      if (base.rfind("hlsmpc.", 0) == 0 && pid_dot != std::string::npos) {
        char* end = nullptr;
        const long owner_pid =
            std::strtol(base.c_str() + pid_dot + 1, &end, 10);
        if (end == base.c_str() + last_dot && owner_pid > 0 &&
            !process_alive(owner_pid)) {
          shm_unlink(name.c_str());
          fd = shm_open_retry(name.c_str(), flags, 0600);
        }
      }
      if (fd < 0) errno = EEXIST;
    }
  }
  if (fd < 0) {
    throw ShmError(
        "NamedSegment: shm_open('" + name + "') failed: " +
            std::strerror(errno),
        ErrorCode::segment_create);
  }
  const bool truncate_fails = fault::should_fail("shm:ftruncate");
  if (owner &&
      (truncate_fails || ftruncate_retry(fd, static_cast<off_t>(bytes)) != 0)) {
    if (truncate_fails) errno = ENOSPC;
    const int saved = errno;
    close(fd);
    shm_unlink(name.c_str());
    throw ShmError(std::string("NamedSegment: ftruncate failed: ") +
                       std::strerror(saved),
                   ErrorCode::segment_create);
  }
  // The same virtual address in every process: map with an explicit hint
  // and refuse to silently relocate.
  void* p = MAP_FAILED;
  if (fault::should_fail("shm:mmap")) {
    errno = ENOMEM;
  } else {
    p = mmap(address_hint, bytes, PROT_READ | PROT_WRITE,
             MAP_SHARED | (address_hint != nullptr ? MAP_FIXED_NOREPLACE : 0),
             fd, 0);
  }
  close(fd);
  const bool wrong_address =
      p != MAP_FAILED &&
      ((address_hint != nullptr && p != address_hint) ||
       fault::should_fail("shm:map_address"));
  if (p == MAP_FAILED || wrong_address) {
    if (p != MAP_FAILED) munmap(p, bytes);
    if (owner) shm_unlink(name.c_str());
    throw ShmError(
        "NamedSegment: cannot map '" + name + "' at the requested address: " +
            std::strerror(errno),
        wrong_address ? ErrorCode::segment_address : ErrorCode::segment_create);
  }
  base_ = p;
}

NamedSegment::~NamedSegment() {
  if (base_ != nullptr) munmap(base_, size_);
  if (owner_) shm_unlink(name_.c_str());
}

std::string NamedSegment::unique_name(const std::string& prefix) {
  static std::atomic<unsigned long> seq{0};
  return "/hlsmpc." + prefix + "." + std::to_string(getpid()) + "." +
         std::to_string(seq.fetch_add(1, std::memory_order_relaxed));
}

int NamedSegment::cleanup_stale(const std::string& prefix) {
  DIR* dir = opendir("/dev/shm");
  if (dir == nullptr) return 0;
  int removed = 0;
  while (dirent* e = readdir(dir)) {
    const std::string base = e->d_name;
    const long pid = embedded_pid(base, prefix);
    if (pid > 0 && !process_alive(pid)) {
      if (shm_unlink(("/" + base).c_str()) == 0) ++removed;
    }
  }
  closedir(dir);
  return removed;
}

}  // namespace hlsmpc::shm
