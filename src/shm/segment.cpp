#include "shm/segment.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#ifndef MAP_FIXED_NOREPLACE
#define MAP_FIXED_NOREPLACE 0x100000
#endif

namespace hlsmpc::shm {

AnonymousSegment::AnonymousSegment(std::size_t bytes) : size_(bytes) {
  base_ = mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (base_ == MAP_FAILED) {
    throw ShmError(std::string("AnonymousSegment: mmap failed: ") +
                   std::strerror(errno));
  }
}

AnonymousSegment::~AnonymousSegment() {
  if (base_ != nullptr) munmap(base_, size_);
}

NamedSegment::NamedSegment(const std::string& name, std::size_t bytes,
                           void* address_hint, bool owner)
    : name_(name), size_(bytes), owner_(owner) {
  int flags = O_RDWR;
  if (owner) flags |= O_CREAT | O_EXCL;
  const int fd = shm_open(name.c_str(), flags, 0600);
  if (fd < 0) {
    throw ShmError("NamedSegment: shm_open('" + name +
                   "') failed: " + std::strerror(errno));
  }
  if (owner && ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    close(fd);
    shm_unlink(name.c_str());
    throw ShmError(std::string("NamedSegment: ftruncate failed: ") +
                   std::strerror(errno));
  }
  // The same virtual address in every process: map with an explicit hint
  // and refuse to silently relocate.
  base_ = mmap(address_hint, bytes, PROT_READ | PROT_WRITE,
               MAP_SHARED | (address_hint != nullptr ? MAP_FIXED_NOREPLACE : 0),
               fd, 0);
  close(fd);
  if (base_ == MAP_FAILED || (address_hint != nullptr && base_ != address_hint)) {
    if (base_ != MAP_FAILED) munmap(base_, bytes);
    if (owner) shm_unlink(name.c_str());
    throw ShmError("NamedSegment: cannot map '" + name +
                   "' at the requested address: " + std::strerror(errno));
  }
}

NamedSegment::~NamedSegment() {
  if (base_ != nullptr) munmap(base_, size_);
  if (owner_) shm_unlink(name_.c_str());
}

}  // namespace hlsmpc::shm
