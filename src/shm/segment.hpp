// Shared-memory segments mapped at the same virtual address in every
// process of a node — the substrate for HLS under process-based MPI
// (paper §IV.C, the isomalloc technique of PM2).
//
// Two flavours:
//  - AnonymousSegment: MAP_SHARED|MAP_ANONYMOUS, created before fork();
//    children inherit the mapping at the same address. This is the form
//    the ProcessNode harness uses.
//  - NamedSegment: shm_open + mmap with an explicit address hint and
//    MAP_FIXED_NOREPLACE, attachable by unrelated processes at the same
//    virtual address (the general mechanism the paper describes).
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace hlsmpc::shm {

class ShmError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class AnonymousSegment {
 public:
  explicit AnonymousSegment(std::size_t bytes);
  ~AnonymousSegment();
  AnonymousSegment(const AnonymousSegment&) = delete;
  AnonymousSegment& operator=(const AnonymousSegment&) = delete;

  void* base() const { return base_; }
  std::size_t size() const { return size_; }

 private:
  void* base_ = nullptr;
  std::size_t size_ = 0;
};

class NamedSegment {
 public:
  /// Create (owner=true) or attach (owner=false) the segment `name`,
  /// mapping it at `address_hint` (must be identical in all attachers —
  /// that is the whole point). Throws ShmError if the address is taken.
  NamedSegment(const std::string& name, std::size_t bytes, void* address_hint,
               bool owner);
  ~NamedSegment();
  NamedSegment(const NamedSegment&) = delete;
  NamedSegment& operator=(const NamedSegment&) = delete;

  void* base() const { return base_; }
  std::size_t size() const { return size_; }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  void* base_ = nullptr;
  std::size_t size_ = 0;
  bool owner_ = false;
};

}  // namespace hlsmpc::shm
