// Shared-memory segments mapped at the same virtual address in every
// process of a node — the substrate for HLS under process-based MPI
// (paper §IV.C, the isomalloc technique of PM2).
//
// Two flavours:
//  - AnonymousSegment: MAP_SHARED|MAP_ANONYMOUS, created before fork();
//    children inherit the mapping at the same address. This is the form
//    the ProcessNode harness uses.
//  - NamedSegment: shm_open + mmap with an explicit address hint and
//    MAP_FIXED_NOREPLACE, attachable by unrelated processes at the same
//    virtual address (the general mechanism the paper describes).
//
// Failure containment: every system-call failure surfaces as a ShmError
// carrying an ErrorCode (recoverable resource failures vs fatal
// corruption — see fault/error.hpp); syscalls are EINTR-safe; and
// unique_name()/cleanup_stale() give crashed runs a way to not poison
// /dev/shm forever.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

#include "fault/error.hpp"

namespace hlsmpc::shm {

class ShmError : public std::runtime_error {
 public:
  explicit ShmError(const std::string& what,
                    ErrorCode code = ErrorCode::invalid_argument)
      : std::runtime_error(what), code_(code) {}

  ErrorCode code() const { return code_; }
  /// Degradation (retryable resource failure) vs torn shared state.
  bool recoverable() const { return hlsmpc::recoverable(code_); }

 private:
  ErrorCode code_;
};

class AnonymousSegment {
 public:
  explicit AnonymousSegment(std::size_t bytes);
  ~AnonymousSegment();
  AnonymousSegment(const AnonymousSegment&) = delete;
  AnonymousSegment& operator=(const AnonymousSegment&) = delete;

  void* base() const { return base_; }
  std::size_t size() const { return size_; }

 private:
  void* base_ = nullptr;
  std::size_t size_ = 0;
};

class NamedSegment {
 public:
  /// Create (owner=true) or attach (owner=false) the segment `name`,
  /// mapping it at `address_hint` (must be identical in all attachers —
  /// that is the whole point). Throws ShmError if the address is taken.
  /// An owner whose name collides with a segment orphaned by a crashed
  /// run (a unique_name() embedding a dead pid) unlinks the corpse and
  /// retries once.
  NamedSegment(const std::string& name, std::size_t bytes, void* address_hint,
               bool owner);
  ~NamedSegment();
  NamedSegment(const NamedSegment&) = delete;
  NamedSegment& operator=(const NamedSegment&) = delete;

  void* base() const { return base_; }
  std::size_t size() const { return size_; }
  const std::string& name() const { return name_; }

  /// Collision-safe segment name: "/hlsmpc.<prefix>.<pid>.<seq>". The
  /// embedded pid is what cleanup_stale() checks for liveness; the
  /// process-wide sequence number makes concurrent callers collision-free
  /// within one process, O_EXCL catches the rest.
  static std::string unique_name(const std::string& prefix);

  /// Unlink /dev/shm segments named by unique_name(prefix) whose creating
  /// process is gone (crashed runs leak their segments: no destructor ran).
  /// Returns the number of segments removed.
  static int cleanup_stale(const std::string& prefix);

 private:
  std::string name_;
  void* base_ = nullptr;
  std::size_t size_ = 0;
  bool owner_ = false;
};

}  // namespace hlsmpc::shm
