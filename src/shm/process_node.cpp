#include "shm/process_node.hpp"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace hlsmpc::shm {

namespace {
std::size_t align_up(std::size_t v, std::size_t a) {
  return (v + a - 1) & ~(a - 1);
}
}  // namespace

ProcessNode::ProcessNode(const topo::Machine& machine, int nranks,
                         std::size_t arena_bytes)
    : machine_(machine),
      sm_(machine_),
      nranks_(nranks),
      arena_bytes_(arena_bytes) {
  if (nranks < 1 || nranks > machine.num_cpus()) {
    throw ShmError("ProcessNode: nranks must fit the machine");
  }
}

ProcessNode::~ProcessNode() = default;

void ProcessNode::add_var(const std::string& name, std::size_t bytes,
                          const topo::ScopeSpec& scope) {
  if (seg_) {
    throw ShmError("ProcessNode: cannot add variables after run()");
  }
  for (const VarInfo& v : vars_) {
    if (v.name == name) throw ShmError("ProcessNode: duplicate var " + name);
  }
  VarInfo v;
  v.name = name;
  v.bytes = bytes;
  v.scope = scope;
  const int n = sm_.num_instances(scope);
  v.base_offset = align_up(cursor_, 64);
  cursor_ = v.base_offset + align_up(bytes, 64) * static_cast<std::size_t>(n);
  v.sync_offset = align_up(cursor_, 64);
  cursor_ = v.sync_offset + sizeof(SyncState) * static_cast<std::size_t>(n);
  vars_.push_back(std::move(v));
}

const ProcessNode::VarInfo& ProcessNode::find_var(
    const std::string& name) const {
  for (const VarInfo& v : vars_) {
    if (v.name == name) return v;
  }
  throw ShmError("ProcessNode: unknown HLS variable '" + name + "'");
}

ProcessNode::SyncState* ProcessNode::sync_of(const VarInfo& v, int rank) {
  const int inst = sm_.instance_of(v.scope, rank);
  auto* base = static_cast<std::byte*>(seg_->base());
  return reinterpret_cast<SyncState*>(base + v.sync_offset +
                                      sizeof(SyncState) *
                                          static_cast<std::size_t>(inst));
}

void* ProcessNode::addr_of(const VarInfo& v, int rank) {
  const int inst = sm_.instance_of(v.scope, rank);
  auto* base = static_cast<std::byte*>(seg_->base());
  return base + v.base_offset +
         align_up(v.bytes, 64) * static_cast<std::size_t>(inst);
}

int ProcessNode::participants(const VarInfo& v, int rank) const {
  const int inst = sm_.instance_of(v.scope, rank);
  const int per = sm_.cpus_per_instance(v.scope);
  const int first = inst * per;
  // Default pinning rank i -> cpu i: members are ranks within the range.
  int count = 0;
  for (int r = 0; r < nranks_; ++r) {
    if (r >= first && r < first + per) ++count;
  }
  return count;
}

void ProcessNode::run(const std::function<void(ProcessTask&)>& body) {
  if (ran_) throw ShmError("ProcessNode: run() may only be called once");
  ran_ = true;

  const std::size_t total =
      align_up(cursor_, 64) + align_up(arena_bytes_, 4096) + 4096;
  seg_ = std::make_unique<AnonymousSegment>(align_up(total, 4096));

  // Initialize process-shared sync state for every scope instance.
  pthread_mutexattr_t ma;
  pthread_condattr_t ca;
  pthread_mutexattr_init(&ma);
  pthread_mutexattr_setpshared(&ma, PTHREAD_PROCESS_SHARED);
  pthread_condattr_init(&ca);
  pthread_condattr_setpshared(&ca, PTHREAD_PROCESS_SHARED);
  for (const VarInfo& v : vars_) {
    const int n = sm_.num_instances(v.scope);
    for (int i = 0; i < n; ++i) {
      auto* base = static_cast<std::byte*>(seg_->base());
      auto* s = reinterpret_cast<SyncState*>(
          base + v.sync_offset + sizeof(SyncState) * static_cast<std::size_t>(i));
      pthread_mutex_init(&s->mu, &ma);
      pthread_cond_init(&s->cv, &ca);
      s->arrived = 0;
      s->generation = 0;
    }
  }
  pthread_mutexattr_destroy(&ma);
  pthread_condattr_destroy(&ca);

  // Shared arena at the tail of the segment.
  auto* arena_base = static_cast<std::byte*>(seg_->base()) +
                     align_up(cursor_, 4096);
  arena_ = Arena::create(arena_base, align_up(arena_bytes_, 4096));

  // Fork one process per rank (children inherit the mapping at the same
  // virtual address — the §IV.C requirement). Flush first or children
  // re-flush the parent's buffered output.
  std::fflush(nullptr);
  std::vector<pid_t> pids;
  for (int r = 0; r < nranks_; ++r) {
    const pid_t pid = fork();
    if (pid < 0) throw ShmError("ProcessNode: fork failed");
    if (pid == 0) {
      int code = 0;
      try {
        ProcessTask task(this, r);
        body(task);
      } catch (const std::exception&) {
        code = 42;
      }
      std::fflush(nullptr);  // _exit skips stdio flushing
      _exit(code);           // no C++ teardown in the child
    }
    pids.push_back(pid);
  }
  int failures = 0;
  for (pid_t pid : pids) {
    int status = 0;
    waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) ++failures;
  }
  if (failures > 0) {
    throw ShmError("ProcessNode: " + std::to_string(failures) +
                   " task process(es) failed");
  }
}

int ProcessTask::nranks() const { return node_->nranks_; }

void* ProcessTask::var(const std::string& name) {
  return node_->addr_of(node_->find_var(name), rank_);
}

void ProcessTask::barrier(const std::string& var_name) {
  const auto& v = node_->find_var(var_name);
  ProcessNode::SyncState* s = node_->sync_of(v, rank_);
  const int expected = node_->participants(v, rank_);
  pthread_mutex_lock(&s->mu);
  const std::uint64_t g = s->generation;
  if (++s->arrived == expected) {
    s->arrived = 0;
    ++s->generation;
    pthread_cond_broadcast(&s->cv);
  } else {
    while (s->generation == g) pthread_cond_wait(&s->cv, &s->mu);
  }
  pthread_mutex_unlock(&s->mu);
}

bool ProcessTask::single_enter(const std::string& var_name) {
  const auto& v = node_->find_var(var_name);
  ProcessNode::SyncState* s = node_->sync_of(v, rank_);
  const int expected = node_->participants(v, rank_);
  pthread_mutex_lock(&s->mu);
  const std::uint64_t g = s->generation;
  if (++s->arrived == expected) {
    // Last arriver executes (generation advances in single_done).
    pthread_mutex_unlock(&s->mu);
    return true;
  }
  while (s->generation == g) pthread_cond_wait(&s->cv, &s->mu);
  pthread_mutex_unlock(&s->mu);
  return false;
}

void ProcessTask::single_done(const std::string& var_name) {
  const auto& v = node_->find_var(var_name);
  ProcessNode::SyncState* s = node_->sync_of(v, rank_);
  pthread_mutex_lock(&s->mu);
  s->arrived = 0;
  ++s->generation;
  pthread_cond_broadcast(&s->cv);
  pthread_mutex_unlock(&s->mu);
}

void* ProcessTask::shared_malloc(std::size_t bytes) {
  return node_->arena_->allocate(bytes);
}

void ProcessTask::shared_free(void* p) { node_->arena_->deallocate(p); }

}  // namespace hlsmpc::shm
