#include "shm/process_node.hpp"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "fault/injector.hpp"

namespace hlsmpc::shm {

namespace {

std::size_t align_up(std::size_t v, std::size_t a) {
  return (v + a - 1) & ~(a - 1);
}

timespec monotonic_after_ms(int ms) {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  ts.tv_sec += ms / 1000;
  ts.tv_nsec += static_cast<long>(ms % 1000) * 1000000L;
  if (ts.tv_nsec >= 1000000000L) {
    ts.tv_sec += 1;
    ts.tv_nsec -= 1000000000L;
  }
  return ts;
}

bool reached(const timespec& t) {
  timespec now;
  clock_gettime(CLOCK_MONOTONIC, &now);
  return now.tv_sec > t.tv_sec ||
         (now.tv_sec == t.tv_sec && now.tv_nsec >= t.tv_nsec);
}

/// Blocks SIGCHLD for the supervision loop's sigtimedwait and restores
/// the previous mask on every exit path (including thrown ShmErrors).
class SigchldBlock {
 public:
  SigchldBlock() {
    sigemptyset(&mask_);
    sigaddset(&mask_, SIGCHLD);
    pthread_sigmask(SIG_BLOCK, &mask_, &old_);
  }
  ~SigchldBlock() { pthread_sigmask(SIG_SETMASK, &old_, nullptr); }
  SigchldBlock(const SigchldBlock&) = delete;
  SigchldBlock& operator=(const SigchldBlock&) = delete;

  const sigset_t* mask() const { return &mask_; }
  const sigset_t* old_mask() const { return &old_; }

 private:
  sigset_t mask_;
  sigset_t old_;
};

pid_t waitpid_retry(pid_t pid, int* status, int flags) {
  pid_t w;
  do {
    w = waitpid(pid, status, flags);
  } while (w < 0 && errno == EINTR);
  return w;
}

}  // namespace

ProcessNode::ProcessNode(const topo::Machine& machine, int nranks,
                         Options opts)
    : machine_(machine), sm_(machine_), nranks_(nranks), opts_(opts) {
  if (nranks < 1 || nranks > machine.num_cpus()) {
    throw ShmError("ProcessNode: nranks must fit the machine");
  }
}

ProcessNode::~ProcessNode() = default;

void ProcessNode::add_var(const std::string& name, std::size_t bytes,
                          const topo::ScopeSpec& scope) {
  if (seg_) {
    throw ShmError("ProcessNode: cannot add variables after run()");
  }
  for (const VarInfo& v : vars_) {
    if (v.name == name) throw ShmError("ProcessNode: duplicate var " + name);
  }
  VarInfo v;
  v.name = name;
  v.bytes = bytes;
  v.scope = scope;
  const int n = sm_.num_instances(scope);
  v.base_offset = align_up(cursor_, 64);
  cursor_ = v.base_offset + align_up(bytes, 64) * static_cast<std::size_t>(n);
  v.sync_offset = align_up(cursor_, 64);
  cursor_ = v.sync_offset + sizeof(SyncState) * static_cast<std::size_t>(n);
  vars_.push_back(std::move(v));
}

const ProcessNode::VarInfo& ProcessNode::find_var(
    const std::string& name) const {
  for (const VarInfo& v : vars_) {
    if (v.name == name) return v;
  }
  throw ShmError("ProcessNode: unknown HLS variable '" + name + "'");
}

ProcessNode::SyncState* ProcessNode::sync_of(const VarInfo& v, int rank) {
  const int inst = sm_.instance_of(v.scope, rank);
  auto* base = static_cast<std::byte*>(seg_->base());
  return reinterpret_cast<SyncState*>(base + v.sync_offset +
                                      sizeof(SyncState) *
                                          static_cast<std::size_t>(inst));
}

void* ProcessNode::addr_of(const VarInfo& v, int rank) {
  const int inst = sm_.instance_of(v.scope, rank);
  auto* base = static_cast<std::byte*>(seg_->base());
  return base + v.base_offset +
         align_up(v.bytes, 64) * static_cast<std::size_t>(inst);
}

int ProcessNode::participants(const VarInfo& v, int rank) const {
  const int inst = sm_.instance_of(v.scope, rank);
  const int per = sm_.cpus_per_instance(v.scope);
  const int first = inst * per;
  // Default pinning rank i -> cpu i: members are ranks within the range.
  int count = 0;
  for (int r = 0; r < nranks_; ++r) {
    if (r >= first && r < first + per) ++count;
  }
  return count;
}

void ProcessNode::child_die(SyncState* locked, int exit_code) {
  if (locked != nullptr) pthread_mutex_unlock(&locked->mu);
  std::fflush(nullptr);
  _exit(exit_code);
}

bool ProcessNode::lock_sync(SyncState* s) {
  const int rc = pthread_mutex_lock(&s->mu);
  if (rc == EOWNERDEAD) {
    // A peer died holding this sync state: make the mutex usable again so
    // everyone can observe the poison mark and leave, but never complete
    // the episode — arrived/generation may be mid-update.
    pthread_mutex_consistent(&s->mu);
    s->poisoned = 1;
    pthread_cond_broadcast(&s->cv);
  }
  return s->poisoned == 0 && ctrl_->abort_flag == 0;
}

void ProcessNode::wait_generation(SyncState* s, std::uint64_t g) {
  const timespec deadline = monotonic_after_ms(opts_.sync_timeout_ms);
  while (s->generation == g) {
    if (s->poisoned != 0 || ctrl_->abort_flag != 0) {
      child_die(s, kPeerAbort);
    }
    if (reached(deadline)) child_die(s, kSyncTimeout);
    const timespec next = monotonic_after_ms(opts_.poll_interval_ms);
    const int rc = pthread_cond_timedwait(&s->cv, &s->mu, &next);
    if (rc == EOWNERDEAD) {
      pthread_mutex_consistent(&s->mu);
      s->poisoned = 1;
      pthread_cond_broadcast(&s->cv);
      child_die(s, kPeerAbort);
    }
  }
}

void ProcessNode::run(const std::function<void(ProcessTask&)>& body) {
  if (ran_) throw ShmError("ProcessNode: run() may only be called once");
  ran_ = true;

  const std::size_t ctrl_off = align_up(cursor_, 64);
  const std::size_t arena_off = align_up(ctrl_off + sizeof(Control), 4096);
  const std::size_t arena_bytes = align_up(opts_.arena_bytes, 4096);
  seg_ = std::make_unique<AnonymousSegment>(
      align_up(arena_off + arena_bytes, 4096));

  // Initialize process-shared ROBUST sync state for every scope instance:
  // a lock whose owner dies must hand EOWNERDEAD to the next locker, not
  // deadlock the instance.
  pthread_mutexattr_t ma;
  pthread_condattr_t ca;
  pthread_mutexattr_init(&ma);
  pthread_mutexattr_setpshared(&ma, PTHREAD_PROCESS_SHARED);
  pthread_mutexattr_setrobust(&ma, PTHREAD_MUTEX_ROBUST);
  pthread_condattr_init(&ca);
  pthread_condattr_setpshared(&ca, PTHREAD_PROCESS_SHARED);
  pthread_condattr_setclock(&ca, CLOCK_MONOTONIC);
  for (const VarInfo& v : vars_) {
    const int n = sm_.num_instances(v.scope);
    for (int i = 0; i < n; ++i) {
      auto* base = static_cast<std::byte*>(seg_->base());
      auto* s = reinterpret_cast<SyncState*>(
          base + v.sync_offset + sizeof(SyncState) * static_cast<std::size_t>(i));
      pthread_mutex_init(&s->mu, &ma);
      pthread_cond_init(&s->cv, &ca);
      s->arrived = 0;
      s->poisoned = 0;
      s->generation = 0;
    }
  }
  pthread_mutexattr_destroy(&ma);
  pthread_condattr_destroy(&ca);

  auto* base = static_cast<std::byte*>(seg_->base());
  ctrl_ = reinterpret_cast<Control*>(base + ctrl_off);
  ctrl_->abort_flag = 0;

  // Shared arena at the tail of the segment.
  arena_ = Arena::create(base + arena_off, arena_bytes);

  // Supervision needs SIGCHLD observable via sigtimedwait; block it before
  // the first fork so no death is missed (children restore the old mask).
  SigchldBlock sigchld;

  // Fork one process per rank (children inherit the mapping at the same
  // virtual address — the §IV.C requirement). Flush first or children
  // re-flush the parent's buffered output.
  std::fflush(nullptr);
  std::vector<pid_t> pids(static_cast<std::size_t>(nranks_), -1);
  for (int r = 0; r < nranks_; ++r) {
    pid_t pid = -1;
    if (fault::should_fail("process:fork", r)) {
      errno = EAGAIN;
    } else {
      pid = fork();
    }
    if (pid < 0) {
      // Mid-loop fork failure: the ranks already forked are waiting at
      // their first sync point and must not be leaked as orphans. Kill
      // and reap them before surfacing the error.
      const int err = errno;
      int reaped = 0;
      for (pid_t p : pids) {
        if (p > 0) kill(p, SIGKILL);
      }
      for (pid_t p : pids) {
        if (p > 0) {
          int st = 0;
          waitpid_retry(p, &st, 0);
          ++reaped;
        }
      }
      throw ShmError(
          "ProcessNode: fork failed for rank " + std::to_string(r) + ": " +
              std::strerror(err) + " (killed and reaped " +
              std::to_string(reaped) + " already-forked task(s))",
          ErrorCode::fork_failed);
    }
    if (pid == 0) {
      pthread_sigmask(SIG_SETMASK, sigchld.old_mask(), nullptr);
      // Deterministic early-crash site: the child dies as if the rank's
      // process was lost right after spawn.
      if (fault::should_fail("process:child_exit", r)) raise(SIGKILL);
      int code = 0;
      try {
        ProcessTask task(this, r);
        body(task);
      } catch (const std::exception&) {
        code = kBodyException;
      }
      std::fflush(nullptr);  // _exit skips stdio flushing
      _exit(code);           // no C++ teardown in the child
    }
    pids[static_cast<std::size_t>(r)] = pid;
  }

  // SIGCHLD-aware supervision loop: reap ready children without blocking,
  // classify every abnormal exit, raise the shared abort flag on the
  // first failure, give survivors a grace window to notice it, then
  // SIGKILL the stragglers. waitpid can never hang on a rank that is
  // waiting for a dead peer.
  struct Failure {
    int rank;
    std::string what;
    ErrorCode code;
  };
  std::vector<bool> live_rank(static_cast<std::size_t>(nranks_), true);
  std::vector<bool> killed_by_us(static_cast<std::size_t>(nranks_), false);
  std::vector<Failure> failures;
  int live = nranks_;
  bool grace_expired = false;
  timespec grace_deadline{};

  auto raise_abort = [&] {
    if (ctrl_->abort_flag == 0) {
      ctrl_->abort_flag = 1;
      grace_deadline = monotonic_after_ms(opts_.term_grace_ms);
    }
  };

  while (live > 0) {
    for (int r = 0; r < nranks_; ++r) {
      if (!live_rank[static_cast<std::size_t>(r)]) continue;
      int status = 0;
      const pid_t w =
          waitpid_retry(pids[static_cast<std::size_t>(r)], &status, WNOHANG);
      if (w != pids[static_cast<std::size_t>(r)]) continue;
      live_rank[static_cast<std::size_t>(r)] = false;
      --live;
      const std::string who = "rank " + std::to_string(r) + " (pid " +
                              std::to_string(w) + ")";
      if (WIFSIGNALED(status)) {
        if (!killed_by_us[static_cast<std::size_t>(r)]) {
          const int sig = WTERMSIG(status);
          failures.push_back({r,
                              who + " killed by signal " +
                                  std::to_string(sig) + " (" +
                                  strsignal(sig) + ")",
                              ErrorCode::task_died});
          raise_abort();
        }
      } else if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
        const int code = WEXITSTATUS(status);
        if (code == kPeerAbort) {
          // The child saw EOWNERDEAD or the abort flag: a symptom of a
          // peer failure, not a cause — but if nothing else failed yet it
          // is the only evidence of one (the dead rank may still be
          // unreaped), so make sure the node comes down either way.
          raise_abort();
        } else if (code == kSyncTimeout) {
          failures.push_back({r,
                              who + " timed out inside a sync primitive (" +
                                  std::to_string(opts_.sync_timeout_ms) +
                                  " ms)",
                              ErrorCode::sync_timeout});
          raise_abort();
        } else if (code == kBodyException) {
          failures.push_back(
              {r, who + " failed with an exception in the task body",
               ErrorCode::task_died});
          raise_abort();
        } else {
          failures.push_back(
              {r, who + " exited with code " + std::to_string(code),
               ErrorCode::task_died});
          raise_abort();
        }
      }
    }
    if (live == 0) break;
    if (ctrl_->abort_flag != 0 && !grace_expired && reached(grace_deadline)) {
      grace_expired = true;
      for (int r = 0; r < nranks_; ++r) {
        if (live_rank[static_cast<std::size_t>(r)]) {
          killed_by_us[static_cast<std::size_t>(r)] = true;
          kill(pids[static_cast<std::size_t>(r)], SIGKILL);
        }
      }
    }
    // Sleep until a child changes state (SIGCHLD is blocked, so deaths
    // since the last sweep are queued and wake us immediately) or the
    // poll interval elapses — never an unbounded block.
    timespec ts;
    ts.tv_sec = 0;
    ts.tv_nsec = static_cast<long>(opts_.poll_interval_ms) * 1000000L;
    sigtimedwait(sigchld.mask(), nullptr, &ts);
  }

  if (!failures.empty()) {
    // Report the root cause: the first hard failure observed.
    const Failure& primary = failures.front();
    std::string msg = "ProcessNode: " + primary.what;
    if (failures.size() > 1) {
      msg += "; " + std::to_string(failures.size() - 1) +
             " further rank failure(s) followed";
    }
    const int survivors = nranks_ - 1 - static_cast<int>(failures.size() - 1);
    if (survivors > 0) {
      msg += "; " + std::to_string(survivors) +
             " surviving rank(s) aborted and reaped";
    }
    throw ShmError(msg, primary.code);
  }
  // A rank that exited kPeerAbort with no recorded failure means a peer
  // died without the parent ever seeing a bad status — should be
  // impossible, but the abort flag being raised with clean exits all
  // around still deserves a diagnostic.
  if (ctrl_->abort_flag != 0) {
    throw ShmError(
        "ProcessNode: tasks aborted on a peer-failure signal but every "
        "child status was clean (EOWNERDEAD observed in the segment?)",
        ErrorCode::task_died);
  }
}

int ProcessTask::nranks() const { return node_->nranks_; }

void* ProcessTask::var(const std::string& name) {
  return node_->addr_of(node_->find_var(name), rank_);
}

void ProcessTask::barrier(const std::string& var_name) {
  const auto& v = node_->find_var(var_name);
  ProcessNode::SyncState* s = node_->sync_of(v, rank_);
  const int expected = node_->participants(v, rank_);
  if (!node_->lock_sync(s)) node_->child_die(s, ProcessNode::kPeerAbort);
  // Crash site INSIDE the critical section: the rank dies holding the
  // robust mutex, forcing peers through EOWNERDEAD recovery.
  if (fault::should_fail("process:barrier_locked", rank_)) raise(SIGKILL);
  const std::uint64_t g = s->generation;
  if (++s->arrived == expected) {
    s->arrived = 0;
    ++s->generation;
    pthread_cond_broadcast(&s->cv);
  } else {
    node_->wait_generation(s, g);
  }
  pthread_mutex_unlock(&s->mu);
}

bool ProcessTask::single_enter(const std::string& var_name) {
  const auto& v = node_->find_var(var_name);
  ProcessNode::SyncState* s = node_->sync_of(v, rank_);
  const int expected = node_->participants(v, rank_);
  if (!node_->lock_sync(s)) node_->child_die(s, ProcessNode::kPeerAbort);
  const std::uint64_t g = s->generation;
  if (++s->arrived == expected) {
    // Last arriver executes (generation advances in single_done).
    pthread_mutex_unlock(&s->mu);
    return true;
  }
  node_->wait_generation(s, g);
  pthread_mutex_unlock(&s->mu);
  return false;
}

void ProcessTask::single_done(const std::string& var_name) {
  const auto& v = node_->find_var(var_name);
  ProcessNode::SyncState* s = node_->sync_of(v, rank_);
  if (!node_->lock_sync(s)) node_->child_die(s, ProcessNode::kPeerAbort);
  s->arrived = 0;
  ++s->generation;
  pthread_cond_broadcast(&s->cv);
  pthread_mutex_unlock(&s->mu);
}

void* ProcessTask::shared_malloc(std::size_t bytes) {
  return node_->arena_->allocate(bytes);
}

void ProcessTask::shared_free(void* p) { node_->arena_->deallocate(p); }

}  // namespace hlsmpc::shm
