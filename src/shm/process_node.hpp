// Process-based node harness: HLS for MPI implementations whose tasks
// are UNIX processes (paper §IV.C).
//
// The parent sets up one shared segment (inherited by fork at the same
// virtual address), carves it into
//   - a sync block of process-shared mutex/condvar barrier+single state,
//   - per-scope-instance HLS variable regions,
//   - a shared Arena for heap allocations made inside a single,
// then forks one child per MPI task. Children use ProcessTask to reach
// their scope instance's variables, synchronize, and allocate shared
// heap memory — the full §IV.C feature set.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "shm/arena.hpp"
#include "shm/segment.hpp"
#include "topo/scope_map.hpp"

namespace hlsmpc::shm {

class ProcessNode;

/// Handle used inside a forked task.
class ProcessTask {
 public:
  int rank() const { return rank_; }
  int nranks() const;
  int cpu() const { return rank_; }  // default pinning, task i -> cpu i

  /// Address of the HLS variable `name` for this task's scope instance.
  void* var(const std::string& name);
  template <typename T>
  T* var_as(const std::string& name) {
    return static_cast<T*>(var(name));
  }

  /// Node-wide barrier over the variable's scope instance members.
  void barrier(const std::string& var_name);
  /// single over the variable's scope: returns true for the task that
  /// must run the block; call single_done afterwards. All members wait.
  bool single_enter(const std::string& var_name);
  void single_done(const std::string& var_name);

  /// Shared-heap allocation (what an LD_PRELOADed malloc would do inside
  /// a single); the returned pointer is valid in every process.
  void* shared_malloc(std::size_t bytes);
  void shared_free(void* p);

 private:
  friend class ProcessNode;
  ProcessTask(ProcessNode* node, int rank) : node_(node), rank_(rank) {}
  ProcessNode* node_;
  int rank_;
};

class ProcessNode {
 public:
  /// `machine` supplies the scope geometry; `nranks` forked tasks.
  ProcessNode(const topo::Machine& machine, int nranks,
              std::size_t arena_bytes = 4 << 20);
  ~ProcessNode();
  ProcessNode(const ProcessNode&) = delete;
  ProcessNode& operator=(const ProcessNode&) = delete;

  /// Declare an HLS variable before run(). One copy per instance of
  /// `scope` will live in the shared segment.
  void add_var(const std::string& name, std::size_t bytes,
               const topo::ScopeSpec& scope);

  /// Fork one process per rank, run `body`, wait for all children.
  /// Throws ShmError if any child exits nonzero or crashes.
  void run(const std::function<void(ProcessTask&)>& body);

 private:
  friend class ProcessTask;

  struct SyncState {  // lives in the segment, one per scope instance
    pthread_mutex_t mu;
    pthread_cond_t cv;
    int arrived;
    std::uint64_t generation;
  };

  struct VarInfo {
    std::string name;
    std::size_t bytes = 0;
    topo::ScopeSpec scope;
    std::size_t base_offset = 0;   // first instance's offset in segment
    std::size_t sync_offset = 0;   // first instance's SyncState offset
  };

  const VarInfo& find_var(const std::string& name) const;
  SyncState* sync_of(const VarInfo& v, int rank);
  void* addr_of(const VarInfo& v, int rank);
  int participants(const VarInfo& v, int rank) const;

  topo::Machine machine_;
  topo::ScopeMap sm_;
  int nranks_;
  std::vector<VarInfo> vars_;
  std::size_t cursor_ = 0;  // layout cursor (bytes) within the segment
  std::size_t arena_bytes_;
  std::unique_ptr<AnonymousSegment> seg_;
  Arena* arena_ = nullptr;
  bool ran_ = false;
};

}  // namespace hlsmpc::shm
