// Process-based node harness: HLS for MPI implementations whose tasks
// are UNIX processes (paper §IV.C).
//
// The parent sets up one shared segment (inherited by fork at the same
// virtual address), carves it into
//   - a control block (abort flag the supervisor raises on peer death),
//   - a sync block of process-shared ROBUST mutex/condvar barrier+single
//     state per scope instance,
//   - per-scope-instance HLS variable regions,
//   - a shared Arena for heap allocations made inside a single,
// then forks one child per MPI task. Children use ProcessTask to reach
// their scope instance's variables, synchronize, and allocate shared
// heap memory — the full §IV.C feature set.
//
// Failure containment: a sync primitive must never assume every
// participant survives to the release. Children wait on robust
// process-shared mutexes (EOWNERDEAD from a rank that died holding the
// lock is recovered with pthread_mutex_consistent and treated as a peer
// failure) with *timed* condvar waits, re-checking the shared abort flag
// every poll. The parent reaps through a SIGCHLD-aware supervision loop:
// a rank dying abnormally raises the abort flag, gives survivors
// `term_grace_ms` to notice and exit, SIGKILLs the stragglers, reaps
// everything, and throws a ShmError naming the dead rank and its
// signal/exit code — the run terminates with a diagnosis instead of
// hanging waitpid forever.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "shm/arena.hpp"
#include "shm/segment.hpp"
#include "topo/scope_map.hpp"

namespace hlsmpc::shm {

class ProcessNode;

/// Handle used inside a forked task.
class ProcessTask {
 public:
  int rank() const { return rank_; }
  int nranks() const;
  int cpu() const { return rank_; }  // default pinning, task i -> cpu i

  /// Address of the HLS variable `name` for this task's scope instance.
  void* var(const std::string& name);
  template <typename T>
  T* var_as(const std::string& name) {
    return static_cast<T*>(var(name));
  }

  /// Node-wide barrier over the variable's scope instance members.
  void barrier(const std::string& var_name);
  /// single over the variable's scope: returns true for the task that
  /// must run the block; call single_done afterwards. All members wait.
  bool single_enter(const std::string& var_name);
  void single_done(const std::string& var_name);

  /// Shared-heap allocation (what an LD_PRELOADed malloc would do inside
  /// a single); the returned pointer is valid in every process.
  void* shared_malloc(std::size_t bytes);
  void shared_free(void* p);

 private:
  friend class ProcessNode;
  ProcessTask(ProcessNode* node, int rank) : node_(node), rank_(rank) {}
  ProcessNode* node_;
  int rank_;
};

class ProcessNode {
 public:
  struct Options {
    std::size_t arena_bytes = 4 << 20;
    /// A child stuck in barrier/single longer than this exits with a
    /// sync-timeout code the parent reports as ErrorCode::sync_timeout —
    /// a livelocked peer (as opposed to a dead one) cannot hang the node.
    int sync_timeout_ms = 30000;
    /// Interval at which waiting children re-check the abort flag.
    int poll_interval_ms = 50;
    /// After a peer death, survivors get this long to notice the abort
    /// flag and exit cleanly before the supervisor SIGKILLs them.
    int term_grace_ms = 2000;
  };

  /// `machine` supplies the scope geometry; `nranks` forked tasks.
  ProcessNode(const topo::Machine& machine, int nranks, Options opts);
  ProcessNode(const topo::Machine& machine, int nranks,
              std::size_t arena_bytes = 4 << 20)
      : ProcessNode(machine, nranks, Options{.arena_bytes = arena_bytes}) {}
  ~ProcessNode();
  ProcessNode(const ProcessNode&) = delete;
  ProcessNode& operator=(const ProcessNode&) = delete;

  /// Declare an HLS variable before run(). One copy per instance of
  /// `scope` will live in the shared segment.
  void add_var(const std::string& name, std::size_t bytes,
               const topo::ScopeSpec& scope);

  /// Fork one process per rank, run `body`, wait for all children.
  /// Throws ShmError if any child exits nonzero, crashes, or times out in
  /// a sync primitive; the message names the first failed rank and its
  /// signal/exit code, the code() classifies the failure (task_died,
  /// sync_timeout, fork_failed).
  void run(const std::function<void(ProcessTask&)>& body);

 private:
  friend class ProcessTask;

  // Child exit codes the supervisor interprets (see reap loop).
  static constexpr int kBodyException = 42;   ///< body threw
  static constexpr int kPeerAbort = 43;       ///< saw abort flag / EOWNERDEAD
  static constexpr int kSyncTimeout = 44;     ///< timed out in barrier/single

  struct SyncState {  // lives in the segment, one per scope instance
    pthread_mutex_t mu;
    pthread_cond_t cv;
    int arrived;
    /// A rank died holding mu (EOWNERDEAD observed): the protected state
    /// is suspect; every member exits instead of completing the episode.
    int poisoned;
    std::uint64_t generation;
  };

  struct Control {  // lives in the segment, one per run
    /// Raised by the supervisor on the first abnormal child exit; waiting
    /// children exit with kPeerAbort at their next poll.
    volatile int abort_flag;
  };

  struct VarInfo {
    std::string name;
    std::size_t bytes = 0;
    topo::ScopeSpec scope;
    std::size_t base_offset = 0;   // first instance's offset in segment
    std::size_t sync_offset = 0;   // first instance's SyncState offset
  };

  const VarInfo& find_var(const std::string& name) const;
  SyncState* sync_of(const VarInfo& v, int rank);
  void* addr_of(const VarInfo& v, int rank);
  int participants(const VarInfo& v, int rank) const;

  /// Lock `s->mu` handling EOWNERDEAD (peer died holding it): the lock is
  /// made consistent and the state marked poisoned. Returns false when
  /// the caller must abandon the episode (poisoned or abort raised).
  bool lock_sync(SyncState* s);
  /// Wait until `s->generation` moves past `g` with timed polls; exits
  /// the child process on abort, poison, or sync timeout. `s->mu` held on
  /// entry and exit.
  void wait_generation(SyncState* s, std::uint64_t g);
  [[noreturn]] void child_die(SyncState* locked, int exit_code);

  topo::Machine machine_;
  topo::ScopeMap sm_;
  int nranks_;
  Options opts_;
  std::vector<VarInfo> vars_;
  std::size_t cursor_ = 0;  // layout cursor (bytes) within the segment
  std::unique_ptr<AnonymousSegment> seg_;
  Control* ctrl_ = nullptr;
  Arena* arena_ = nullptr;
  bool ran_ = false;
};

}  // namespace hlsmpc::shm
