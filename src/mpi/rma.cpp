#include "mpi/rma.hpp"

#if HLSMPC_RMA_ENABLED

#include <chrono>
#include <cstring>
#include <sstream>

#include "obs/recorder.hpp"

namespace hlsmpc::mpi::rma {

namespace {

std::atomic<int> next_win_id{0};

long long ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

Win::Win(std::vector<MemRegion> regions, WinOptions opts)
    : regions_(std::move(regions)),
      opts_(std::move(opts)),
      n_(static_cast<int>(regions_.size())),
      id_(next_win_id.fetch_add(1, std::memory_order_relaxed)) {
  if (n_ == 0) throw MpiError("Win: a window needs at least one rank");
  for (int r = 0; r < n_; ++r) {
    if (regions_[static_cast<std::size_t>(r)].base == nullptr &&
        regions_[static_cast<std::size_t>(r)].bytes != 0) {
      throw MpiError("Win: rank " + std::to_string(r) +
                     " exposes " +
                     std::to_string(regions_[static_cast<std::size_t>(r)].bytes) +
                     " bytes at a null base");
    }
  }
  slots_ = std::make_unique<Slot[]>(static_cast<std::size_t>(n_));
  held_.assign(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_), 0);
  lock_t0_.assign(held_.size(), 0);
}

const MemRegion& Win::region(int rank, const char* what) const {
  if (rank < 0 || rank >= n_) {
    throw MpiError(std::string(what) + ": rank " + std::to_string(rank) +
                   " outside window of size " + std::to_string(n_));
  }
  return regions_[static_cast<std::size_t>(rank)];
}

void Win::check_me(int me, const char* what) const {
  if (me < 0 || me >= n_) {
    throw MpiError(std::string(what) + ": calling rank " + std::to_string(me) +
                   " outside window of size " + std::to_string(n_));
  }
}

void Win::check_range(int target, std::size_t offset, std::size_t nbytes,
                      const char* what) const {
  const MemRegion& r = region(target, what);
  if (offset > r.bytes || nbytes > r.bytes - offset) {
    throw MpiError(std::string(what) + ": [" + std::to_string(offset) + ", " +
                   std::to_string(offset + nbytes) + ") outside rank " +
                   std::to_string(target) + "'s " + std::to_string(r.bytes) +
                   "-byte region of window '" + opts_.name + "'");
  }
}

void Win::emit(hls::SyncEvent::Kind kind, const ult::TaskContext& ctx, int me,
               int target, std::uint64_t offset, std::uint64_t nbytes,
               bool excl, std::uint64_t epoch) const {
  if (opts_.observer == nullptr) return;
  hls::SyncEvent e;
  e.kind = kind;
  e.task = task_of(ctx, me);
  e.cpu = ctx.cpu();
  e.instance = id_;
  e.task_count = epoch;
  e.rma_target = target;
  e.rma_offset = offset;
  e.rma_bytes = nbytes;
  e.rma_excl = excl;
  opts_.observer->on_sync_event(e);
}

void Win::record_op(const ult::TaskContext& ctx, int me, obs::RmaOp op,
                    std::uint64_t nbytes, std::uint64_t t0) const {
#if HLSMPC_OBS_ENABLED
  if (opts_.obs == nullptr) return;
  const int task = task_of(ctx, me);
  const obs::Counter ctr = op == obs::RmaOp::put   ? obs::Counter::rma_puts
                      : op == obs::RmaOp::get ? obs::Counter::rma_gets
                                              : obs::Counter::rma_accs;
  opts_.obs->count(task, ctr);
  opts_.obs->count(task, obs::Counter::rma_bytes, nbytes);
  obs::Event e;
  e.kind = obs::EventKind::rma_op;
  e.task = task;
  e.cpu = ctx.cpu();
  e.instance = id_;
  e.t0 = t0;
  e.t1 = opts_.obs->now();
  e.arg = static_cast<std::int64_t>(op);
  e.arg2 = static_cast<std::int64_t>(nbytes);
  opts_.obs->record(e);
#else
  (void)ctx;
  (void)me;
  (void)op;
  (void)nbytes;
  (void)t0;
#endif
}

void Win::put(ult::TaskContext& ctx, int me, const void* src,
              std::size_t nbytes, int target, std::size_t target_offset) {
  check_me(me, "Win::put");
  check_range(target, target_offset, nbytes, "Win::put");
  ctx.sync_point("rma:put");
  std::uint64_t t0 = 0;
#if HLSMPC_OBS_ENABLED
  if (opts_.obs != nullptr) t0 = opts_.obs->now();
#endif
  // Same-node transfer: the window region is directly addressable, so a
  // put is one copy. memmove, not memcpy — a rank may put a slice of its
  // own exposed region onto itself at an overlapping offset.
  std::memmove(static_cast<std::byte*>(
                   regions_[static_cast<std::size_t>(target)].base) +
                   target_offset,
               src, nbytes);
  emit(hls::SyncEvent::Kind::rma_put, ctx, me, target, target_offset, nbytes,
       false, 0);
  record_op(ctx, me, obs::RmaOp::put, nbytes, t0);
}

void Win::get(ult::TaskContext& ctx, int me, void* dst, std::size_t nbytes,
              int target, std::size_t target_offset) {
  check_me(me, "Win::get");
  check_range(target, target_offset, nbytes, "Win::get");
  ctx.sync_point("rma:get");
  std::uint64_t t0 = 0;
#if HLSMPC_OBS_ENABLED
  if (opts_.obs != nullptr) t0 = opts_.obs->now();
#endif
  std::memmove(dst,
               static_cast<const std::byte*>(
                   regions_[static_cast<std::size_t>(target)].base) +
                   target_offset,
               nbytes);
  emit(hls::SyncEvent::Kind::rma_get, ctx, me, target, target_offset, nbytes,
       false, 0);
  record_op(ctx, me, obs::RmaOp::get, nbytes, t0);
}

void Win::accumulate(ult::TaskContext& ctx, int me, const void* src,
                     std::size_t count, std::size_t elem_bytes,
                     const ReduceFn& fn, int target,
                     std::size_t target_offset) {
  check_me(me, "Win::accumulate");
  if (!fn) throw MpiError("Win::accumulate: empty reduce function");
  const std::size_t nbytes = count * elem_bytes;
  check_range(target, target_offset, nbytes, "Win::accumulate");
  ctx.sync_point("rma:acc");
  std::uint64_t t0 = 0;
#if HLSMPC_OBS_ENABLED
  if (opts_.obs != nullptr) t0 = opts_.obs->now();
#endif
  // ReduceFn left-operand contract (see comm.hpp): the target region is
  // the accumulator and the LEFT operand; `src` folds in from the right.
  fn(static_cast<std::byte*>(
         regions_[static_cast<std::size_t>(target)].base) +
         target_offset,
     src, count);
  emit(hls::SyncEvent::Kind::rma_acc, ctx, me, target, target_offset, nbytes,
       false, 0);
  record_op(ctx, me, obs::RmaOp::accumulate, nbytes, t0);
}

void Win::fence(ult::TaskContext& ctx, int me) {
  check_me(me, "Win::fence");
  ctx.sync_point("rma:fence");
  std::uint64_t t0 = 0;
#if HLSMPC_OBS_ENABLED
  if (opts_.obs != nullptr) t0 = opts_.obs->now();
#endif
  Slot& mine = slots_[static_cast<std::size_t>(me)];
  const std::uint64_t next = mine.epoch.load(std::memory_order_relaxed) + 1;
  emit(hls::SyncEvent::Kind::rma_fence_enter, ctx, me, -1, 0, 0, false, next);
  // Release-publish my epoch: everything this rank did before the fence
  // is ordered before the store every peer acquires below.
  mine.epoch.store(next, std::memory_order_release);
  const int wd = opts_.watchdog_ms;
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < n_; ++r) {
    ult::Backoff backoff(ctx);
    while (slots_[static_cast<std::size_t>(r)].epoch.load(
               std::memory_order_acquire) < next) {
      if (wd > 0 && ms_since(start) > wd) fence_stuck(ctx, me, next, wd);
      backoff.pause();
    }
  }
  emit(hls::SyncEvent::Kind::rma_fence_exit, ctx, me, -1, 0, 0, false, next);
#if HLSMPC_OBS_ENABLED
  if (opts_.obs != nullptr) {
    const int task = task_of(ctx, me);
    opts_.obs->count(task, obs::Counter::rma_fences);
    obs::Event e;
    e.kind = obs::EventKind::rma_epoch;
    e.task = task;
    e.cpu = ctx.cpu();
    e.instance = id_;
    e.t0 = t0;
    e.t1 = opts_.obs->now();
    e.arg = 0;
    opts_.obs->record(e);
  }
#endif
}

void Win::lock(ult::TaskContext& ctx, int me, LockKind kind, int target) {
  check_me(me, "Win::lock");
  region(target, "Win::lock");
  std::uint8_t& held =
      held_[static_cast<std::size_t>(me) * static_cast<std::size_t>(n_) +
            static_cast<std::size_t>(target)];
  if (held != 0) {
    throw MpiError("Win::lock: rank " + std::to_string(me) +
                   " already holds a lock on rank " + std::to_string(target) +
                   " of window '" + opts_.name + "'");
  }
  ctx.sync_point(kind == LockKind::exclusive ? "rma:lock:excl"
                                             : "rma:lock:shared");
  std::uint64_t t0 = 0;
#if HLSMPC_OBS_ENABLED
  if (opts_.obs != nullptr) t0 = opts_.obs->now();
#endif
  std::atomic<std::uint64_t>& word =
      slots_[static_cast<std::size_t>(target)].lockword;
  const int wd = opts_.watchdog_ms;
  const auto start = std::chrono::steady_clock::now();
  ult::Backoff backoff(ctx);
  if (kind == LockKind::exclusive) {
    const std::uint64_t mine =
        kExclBit | (static_cast<std::uint64_t>(me) + 1) << 32;
    std::uint64_t expected = 0;
    // The winning CAS is the acquire: everything the previous holder did
    // before its release store is visible past this point.
    while (!word.compare_exchange_weak(expected, mine,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
      if (wd > 0 && ms_since(start) > wd) lock_stuck(ctx, me, target, wd);
      backoff.pause();
      expected = 0;
    }
  } else {
    std::uint64_t cur = word.load(std::memory_order_relaxed);
    for (;;) {
      if ((cur & kExclBit) != 0) {
        if (wd > 0 && ms_since(start) > wd) lock_stuck(ctx, me, target, wd);
        backoff.pause();
        cur = word.load(std::memory_order_relaxed);
        continue;
      }
      if (word.compare_exchange_weak(cur, cur + 1, std::memory_order_acquire,
                                     std::memory_order_relaxed)) {
        break;
      }
    }
  }
  held = kind == LockKind::exclusive ? 2 : 1;
  lock_t0_[static_cast<std::size_t>(me) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(target)] = t0;
  emit(hls::SyncEvent::Kind::rma_lock, ctx, me, target, 0, 0,
       kind == LockKind::exclusive, 0);
#if HLSMPC_OBS_ENABLED
  if (opts_.obs != nullptr) {
    opts_.obs->count(task_of(ctx, me), obs::Counter::rma_locks);
  }
#endif
}

void Win::unlock(ult::TaskContext& ctx, int me, int target) {
  check_me(me, "Win::unlock");
  region(target, "Win::unlock");
  const std::size_t h =
      static_cast<std::size_t>(me) * static_cast<std::size_t>(n_) +
      static_cast<std::size_t>(target);
  if (held_[h] == 0) {
    throw MpiError("Win::unlock: rank " + std::to_string(me) +
                   " holds no lock on rank " + std::to_string(target) +
                   " of window '" + opts_.name + "'");
  }
  const bool excl = held_[h] == 2;
  // Emit before the releasing store so the log order of unlock -> next
  // lock matches the happens-before edge the store creates.
  emit(hls::SyncEvent::Kind::rma_unlock, ctx, me, target, 0, 0, excl, 0);
  ctx.sync_point("rma:unlock");
  std::atomic<std::uint64_t>& word =
      slots_[static_cast<std::size_t>(target)].lockword;
  if (excl) {
    word.store(0, std::memory_order_release);
  } else {
    // The decrement is part of the release sequence headed by the last
    // exclusive release: a writer's later acquire CAS from 0 synchronizes
    // with every reader's decrement (C++20 [intro.races]).
    word.fetch_sub(1, std::memory_order_release);
  }
  held_[h] = 0;
#if HLSMPC_OBS_ENABLED
  if (opts_.obs != nullptr) {
    const int task = task_of(ctx, me);
    obs::Event e;
    e.kind = obs::EventKind::rma_epoch;
    e.task = task;
    e.cpu = ctx.cpu();
    e.instance = id_;
    e.t0 = lock_t0_[h];
    e.t1 = opts_.obs->now();
    e.arg = excl ? 2 : 1;
    e.arg2 = target;
    opts_.obs->record(e);
  }
#endif
}

std::uint64_t Win::fence_epochs(int rank) const {
  region(rank, "Win::fence_epochs");
  return slots_[static_cast<std::size_t>(rank)].epoch.load(
      std::memory_order_acquire);
}

void Win::fence_stuck(const ult::TaskContext& ctx, int me, std::uint64_t need,
                      long long waited_ms) {
  std::ostringstream os;
  os << "Win::fence stuck on window '" << opts_.name << "': rank " << me
     << " waited " << waited_ms << " ms for epoch " << need << "; missing:";
  std::uint64_t mask = 0;
  for (int r = 0; r < n_; ++r) {
    const std::uint64_t have =
        slots_[static_cast<std::size_t>(r)].epoch.load(
            std::memory_order_acquire);
    if (have >= need) continue;
    os << " rank " << r << " (at epoch " << have << ")";
    if (r < 64) mask |= std::uint64_t{1} << r;
  }
#if HLSMPC_OBS_ENABLED
  if (opts_.obs != nullptr) {
    obs::Event e;
    e.kind = obs::EventKind::watchdog;
    e.task = task_of(ctx, me);
    e.cpu = ctx.cpu();
    e.instance = id_;
    e.t0 = e.t1 = opts_.obs->now();
    e.arg = static_cast<std::int64_t>(waited_ms);
    e.arg2 = static_cast<std::int64_t>(mask);
    opts_.obs->record(e);
  }
#else
  (void)ctx;
#endif
  throw MpiError(os.str());
}

void Win::lock_stuck(const ult::TaskContext& ctx, int me, int target,
                     long long waited_ms) {
  const std::uint64_t word =
      slots_[static_cast<std::size_t>(target)].lockword.load(
          std::memory_order_acquire);
  std::ostringstream os;
  os << "Win::lock stuck on window '" << opts_.name << "': rank " << me
     << " waited " << waited_ms << " ms for rank " << target
     << "'s lock word; ";
  std::uint64_t mask = 0;
  if ((word & kExclBit) != 0) {
    const int owner = static_cast<int>((word >> 32) & 0x7fffffff) - 1;
    os << "held exclusively by rank " << owner;
    if (owner >= 0 && owner < 64) mask |= std::uint64_t{1} << owner;
  } else {
    os << "held shared by " << (word & 0xffffffff) << " reader(s)";
  }
#if HLSMPC_OBS_ENABLED
  if (opts_.obs != nullptr) {
    obs::Event e;
    e.kind = obs::EventKind::watchdog;
    e.task = task_of(ctx, me);
    e.cpu = ctx.cpu();
    e.instance = id_;
    e.t0 = e.t1 = opts_.obs->now();
    e.arg = static_cast<std::int64_t>(waited_ms);
    e.arg2 = static_cast<std::int64_t>(mask);
    opts_.obs->record(e);
  }
#else
  (void)ctx;
#endif
  throw MpiError(os.str());
}

}  // namespace hlsmpc::mpi::rma

#endif  // HLSMPC_RMA_ENABLED
