// Per-rank message matching structures (runtime-internal).
//
// Thread-based MPI: all ranks of a node share one address space, so a
// send is either (a) a direct copy into an already-posted receive buffer,
// (b) an eager copy into a leased buffer queued as "unexpected", or
// (c) for large messages, a rendezvous record pointing at the sender's
// buffer, copied when the receive is posted and only then completing the
// sender. Matching follows MPI's non-overtaking rule: queues are scanned
// front to back, so messages from the same (source, tag, context) match
// in order.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>

#include "mpi/buffers.hpp"
#include "mpi/types.hpp"

namespace hlsmpc::mpi {

struct PostedRecv {
  void* buf = nullptr;
  std::size_t capacity = 0;
  int src = kAnySource;
  int tag = kAnyTag;
  int context = 0;
  std::shared_ptr<RequestState> req;
};

struct UnexpectedMsg {
  int src = 0;
  int tag = 0;
  int context = 0;
  std::size_t bytes = 0;
  /// Eager protocol: the payload copy.
  BufferManager::Lease payload;
  /// Rendezvous protocol: sender's buffer; valid until sender_req is
  /// completed by the receiver after copying.
  const void* rdv_src = nullptr;
  std::shared_ptr<RequestState> sender_req;

  bool is_rendezvous() const { return sender_req != nullptr; }
  bool matches(int want_src, int want_tag, int want_ctx) const {
    return context == want_ctx &&
           (want_src == kAnySource || want_src == src) &&
           (want_tag == kAnyTag || want_tag == tag);
  }
};

struct Mailbox {
  std::mutex mu;
  std::deque<UnexpectedMsg> unexpected;
  std::deque<PostedRecv> posted;
};

/// Node-wide message-path statistics (observable in tests and benches).
struct TransportStats {
  std::atomic<std::uint64_t> messages{0};
  std::atomic<std::uint64_t> bytes{0};
  std::atomic<std::uint64_t> eager_sends{0};
  std::atomic<std::uint64_t> rendezvous_sends{0};
  /// Copies skipped because source and destination buffers were the same
  /// address (HLS-shared image trick, paper §V.B.3).
  std::atomic<std::uint64_t> copies_elided{0};
  /// Collective calls served by the shared-memory engine (one per rank
  /// entering such a call; zero mailbox messages are sent for these).
  std::atomic<std::uint64_t> shm_collectives{0};
  /// Bytes memcpy'd by the shared-memory collective engine. For a bcast of
  /// B bytes to n ranks this is (n-1)*B — against the p2p binomial tree's
  /// per-hop eager/rendezvous copies it is the "fewer copies" evidence the
  /// benches assert.
  std::atomic<std::uint64_t> shm_copied_bytes{0};
  /// Collective calls that took the fragmented pipelined large-message
  /// path (one per rank entering such a call).
  std::atomic<std::uint64_t> shm_pipelined_collectives{0};
  /// Fragments published by the pipelined path (contribution and result
  /// channels combined).
  std::atomic<std::uint64_t> shm_fragments{0};
  /// Registration-cache outcomes: a hit means the (buffer, length) pair's
  /// fragment geometry and attach block were reused from the per-rank
  /// cache; a miss re-resolved and possibly evicted.
  std::atomic<std::uint64_t> reg_cache_hits{0};
  std::atomic<std::uint64_t> reg_cache_misses{0};
};

}  // namespace hlsmpc::mpi
