// Collective operations, implemented over the p2p engine in a dedicated
// context so they can never match application point-to-point traffic.
//
// Algorithms target intra-node scale (<= a few dozen ranks): dissemination
// barrier, binomial bcast/reduce, linear gather/scatter, chain scan.
#include <cstring>
#include <vector>

#include "mpi/comm.hpp"
#include "mpi/runtime.hpp"
#include "obs/recorder.hpp"

namespace hlsmpc::mpi {

namespace {

#if HLSMPC_OBS_ENABLED
/// RAII span for one collective call: bumps coll_ops on entry, records a
/// `collective` event covering the whole call on destruction. Composite
/// collectives (allreduce, allgather, ...) nest their phases' spans inside
/// their own; a trace viewer renders them as nested slices.
class CollScope {
 public:
  CollScope(Runtime& rt, obs::CollOp op, const ult::TaskContext& ctx,
            std::int64_t bytes)
      : obs_(rt.obs()),
        op_(op),
        task_(ctx.task_id()),
        cpu_(ctx.cpu()),
        bytes_(bytes) {
    if (obs_ == nullptr) return;
    obs_->count(task_, obs::Counter::coll_ops);
    t0_ = obs_->now();
  }
  CollScope(const CollScope&) = delete;
  CollScope& operator=(const CollScope&) = delete;
  ~CollScope() {
    if (obs_ == nullptr) return;
    obs::Event e;
    e.kind = obs::EventKind::collective;
    e.task = task_;
    e.cpu = cpu_;
    e.t0 = t0_;
    e.t1 = obs_->now();
    e.arg = static_cast<std::int64_t>(op_);
    e.arg2 = bytes_;
    obs_->record(e);
  }

 private:
  obs::Recorder* obs_;
  obs::CollOp op_;
  int task_;
  int cpu_;
  std::int64_t bytes_;
  std::uint64_t t0_ = 0;
};
#define HLSMPC_OBS_COLL(op, bytes)                      \
  CollScope obs_coll_scope_(*rt_, obs::CollOp::op, ctx, \
                            static_cast<std::int64_t>(bytes))
#else
#define HLSMPC_OBS_COLL(op, bytes) (void)0
#endif

}  // namespace

void Comm::barrier(ult::TaskContext& ctx) {
  HLSMPC_OBS_COLL(barrier, 0);
  const int me = rank(ctx);
  const int n = size();
  const int tag = next_coll_tag(me);
  if (n == 1) return;
  // Dissemination: after ceil(log2 n) rounds every rank has transitively
  // heard from every other rank.
  for (int step = 1; step < n; step <<= 1) {
    const int dst = (me + step) % n;
    const int src = (me - step % n + n) % n;
    Request r = irecv_ctx(ctx, nullptr, 0, src, tag, coll_context_);
    Request s = isend_ctx(ctx, nullptr, 0, dst, tag, coll_context_);
    wait(ctx, s);
    wait(ctx, r);
  }
}

void Comm::bcast(ult::TaskContext& ctx, void* buf, std::size_t bytes,
                 int root) {
  HLSMPC_OBS_COLL(bcast, bytes);
  check_rank(root, "bcast");
  const int me = rank(ctx);
  const int n = size();
  const int tag = next_coll_tag(me);
  if (n == 1) return;
  const int vr = (me - root + n) % n;  // rank relative to root

  // Binomial tree: receive from the parent, then forward to children.
  int mask = 1;
  while (mask < n) {
    if (vr & mask) {
      const int parent = (vr - mask + root) % n;
      recv_ctx(ctx, buf, bytes, parent, tag, coll_context_, nullptr);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vr + mask < n) {
      const int child = (vr + mask + root) % n;
      send_ctx(ctx, buf, bytes, child, tag, coll_context_);
    }
    mask >>= 1;
  }
}

void Comm::reduce(ult::TaskContext& ctx, const void* sendbuf, void* recvbuf,
                  std::size_t count, std::size_t elem_bytes,
                  const ReduceFn& fn, int root) {
  HLSMPC_OBS_COLL(reduce, count * elem_bytes);
  check_rank(root, "reduce");
  const int me = rank(ctx);
  const int n = size();
  const int tag = next_coll_tag(me);
  const std::size_t bytes = count * elem_bytes;

  // Local accumulator: root may reduce in place into recvbuf; others use a
  // scratch buffer. sendbuf == recvbuf (in-place reduction) is allowed.
  std::vector<std::byte> scratch;
  void* acc;
  if (me == root && recvbuf != nullptr) {
    acc = recvbuf;
  } else {
    scratch.resize(bytes);
    acc = scratch.data();
  }
  if (bytes > 0 && acc != sendbuf) std::memcpy(acc, sendbuf, bytes);

  std::vector<std::byte> incoming(bytes);
  const int vr = (me - root + n) % n;
  for (int mask = 1; mask < n; mask <<= 1) {
    if ((vr & mask) == 0) {
      const int partner_vr = vr | mask;
      if (partner_vr < n) {
        const int partner = (partner_vr + root) % n;
        recv_ctx(ctx, incoming.data(), bytes, partner, tag, coll_context_,
                 nullptr);
        fn(acc, incoming.data(), count);
      }
    } else {
      const int parent = ((vr & ~mask) + root) % n;
      send_ctx(ctx, acc, bytes, parent, tag, coll_context_);
      break;
    }
  }
}

void Comm::allreduce(ult::TaskContext& ctx, const void* sendbuf,
                     void* recvbuf, std::size_t count, std::size_t elem_bytes,
                     const ReduceFn& fn) {
  HLSMPC_OBS_COLL(allreduce, count * elem_bytes);
  reduce(ctx, sendbuf, recvbuf, count, elem_bytes, fn, 0);
  bcast(ctx, recvbuf, count * elem_bytes, 0);
}

void Comm::gather(ult::TaskContext& ctx, const void* sendbuf,
                  std::size_t bytes, void* recvbuf, int root) {
  HLSMPC_OBS_COLL(gather, bytes);
  std::vector<std::size_t> counts(static_cast<std::size_t>(size()), bytes);
  std::vector<std::size_t> displs(static_cast<std::size_t>(size()));
  for (int r = 0; r < size(); ++r) {
    displs[static_cast<std::size_t>(r)] = static_cast<std::size_t>(r) * bytes;
  }
  gatherv(ctx, sendbuf, bytes, recvbuf, counts, displs, root);
}

void Comm::gatherv(ult::TaskContext& ctx, const void* sendbuf,
                   std::size_t bytes, void* recvbuf,
                   std::span<const std::size_t> counts,
                   std::span<const std::size_t> displs, int root) {
  HLSMPC_OBS_COLL(gatherv, bytes);
  check_rank(root, "gatherv");
  const int me = rank(ctx);
  const int n = size();
  if (counts.size() != static_cast<std::size_t>(n) ||
      displs.size() != static_cast<std::size_t>(n)) {
    throw MpiError("gatherv: counts/displs must have one entry per rank");
  }
  const int tag = next_coll_tag(me);
  if (me == root) {
    auto* out = static_cast<std::byte*>(recvbuf);
    // Post every receive first so senders complete without serialising on
    // the root's loop order; the self block is a plain (elidable) copy.
    std::vector<Request> reqs;
    reqs.reserve(static_cast<std::size_t>(n - 1));
    for (int r = 0; r < n; ++r) {
      if (r == me) continue;
      reqs.push_back(irecv_ctx(ctx, out + displs[static_cast<std::size_t>(r)],
                               counts[static_cast<std::size_t>(r)], r, tag,
                               coll_context_));
    }
    if (bytes != counts[static_cast<std::size_t>(me)]) {
      throw MpiError("gatherv: send size disagrees with counts[rank]");
    }
    void* self_dst = out + displs[static_cast<std::size_t>(me)];
    if (self_dst != sendbuf && bytes > 0) {
      std::memcpy(self_dst, sendbuf, bytes);
    } else if (self_dst == sendbuf) {
      rt_->stats().copies_elided.fetch_add(1, std::memory_order_relaxed);
    }
    for (Request& r : reqs) wait(ctx, r);
  } else {
    if (bytes != counts[static_cast<std::size_t>(me)]) {
      throw MpiError("gatherv: send size disagrees with counts[rank]");
    }
    send_ctx(ctx, sendbuf, bytes, root, tag, coll_context_);
  }
}

void Comm::scatter(ult::TaskContext& ctx, const void* sendbuf,
                   std::size_t bytes, void* recvbuf, int root) {
  HLSMPC_OBS_COLL(scatter, bytes);
  check_rank(root, "scatter");
  const int me = rank(ctx);
  const int n = size();
  const int tag = next_coll_tag(me);
  if (me == root) {
    const auto* in = static_cast<const std::byte*>(sendbuf);
    for (int r = 0; r < n; ++r) {
      const std::byte* block = in + static_cast<std::size_t>(r) * bytes;
      if (r == me) {
        if (recvbuf != block && bytes > 0) std::memcpy(recvbuf, block, bytes);
      } else {
        send_ctx(ctx, block, bytes, r, tag, coll_context_);
      }
    }
  } else {
    recv_ctx(ctx, recvbuf, bytes, root, tag, coll_context_, nullptr);
  }
}

void Comm::allgather(ult::TaskContext& ctx, const void* sendbuf,
                     std::size_t bytes, void* recvbuf) {
  HLSMPC_OBS_COLL(allgather, bytes);
  // Gather to rank 0, then broadcast the assembled vector. Two internal
  // collectives; per-rank tag counters advance identically on all ranks.
  gather(ctx, sendbuf, bytes, recvbuf, 0);
  bcast(ctx, recvbuf, bytes * static_cast<std::size_t>(size()), 0);
}

void Comm::alltoall(ult::TaskContext& ctx, const void* sendbuf,
                    std::size_t bytes_per_rank, void* recvbuf) {
  HLSMPC_OBS_COLL(alltoall, bytes_per_rank);
  const int me = rank(ctx);
  const int n = size();
  const int tag = next_coll_tag(me);
  const auto* in = static_cast<const std::byte*>(sendbuf);
  auto* out = static_cast<std::byte*>(recvbuf);
  // Self block.
  if (bytes_per_rank > 0) {
    std::memcpy(out + static_cast<std::size_t>(me) * bytes_per_rank,
                in + static_cast<std::size_t>(me) * bytes_per_rank,
                bytes_per_rank);
  }
  // Rotated pairwise exchange: at step s talk to me+s (send) / me-s (recv).
  for (int step = 1; step < n; ++step) {
    const int dst = (me + step) % n;
    const int src = (me - step + n) % n;
    Request r = irecv_ctx(ctx,
                          out + static_cast<std::size_t>(src) * bytes_per_rank,
                          bytes_per_rank, src, tag, coll_context_);
    Request s = isend_ctx(ctx,
                          in + static_cast<std::size_t>(dst) * bytes_per_rank,
                          bytes_per_rank, dst, tag, coll_context_);
    wait(ctx, s);
    wait(ctx, r);
  }
}

void Comm::scan(ult::TaskContext& ctx, const void* sendbuf, void* recvbuf,
                std::size_t count, std::size_t elem_bytes,
                const ReduceFn& fn) {
  HLSMPC_OBS_COLL(scan, count * elem_bytes);
  const int me = rank(ctx);
  const int n = size();
  const int tag = next_coll_tag(me);
  const std::size_t bytes = count * elem_bytes;
  if (bytes > 0 && recvbuf != sendbuf) std::memcpy(recvbuf, sendbuf, bytes);
  // Chain: receive the prefix of ranks [0, me), fold own value in, pass on.
  if (me > 0) {
    std::vector<std::byte> prefix(bytes);
    recv_ctx(ctx, prefix.data(), bytes, me - 1, tag, coll_context_, nullptr);
    fn(recvbuf, prefix.data(), count);
  }
  if (me + 1 < n) {
    send_ctx(ctx, recvbuf, bytes, me + 1, tag, coll_context_);
  }
}

void Comm::exscan(ult::TaskContext& ctx, const void* sendbuf, void* recvbuf,
                  std::size_t count, std::size_t elem_bytes,
                  const ReduceFn& fn) {
  HLSMPC_OBS_COLL(exscan, count * elem_bytes);
  const int me = rank(ctx);
  const int n = size();
  const int tag = next_coll_tag(me);
  const std::size_t bytes = count * elem_bytes;
  // Chain carrying the inclusive prefix; each rank hands its successor
  // prefix(0..me) but keeps prefix(0..me-1) for itself. Rank 0's recvbuf
  // is untouched (MPI_Exscan semantics).
  std::vector<std::byte> inclusive(bytes);
  if (bytes > 0) std::memcpy(inclusive.data(), sendbuf, bytes);
  if (me > 0) {
    recv_ctx(ctx, recvbuf, bytes, me - 1, tag, coll_context_, nullptr);
    fn(inclusive.data(), recvbuf, count);
  }
  if (me + 1 < n) {
    send_ctx(ctx, inclusive.data(), bytes, me + 1, tag, coll_context_);
  }
}

void Comm::reduce_scatter_block(ult::TaskContext& ctx, const void* sendbuf,
                                void* recvbuf, std::size_t count,
                                std::size_t elem_bytes, const ReduceFn& fn) {
  HLSMPC_OBS_COLL(reduce_scatter, count * elem_bytes);
  const int me = rank(ctx);
  const int n = size();
  const std::size_t block = count * elem_bytes;
  // Reduce the full vector to rank 0, then scatter the blocks. Simple and
  // correct at node scale; both phases use their own collective tags.
  std::vector<std::byte> full(me == 0 ? block * static_cast<std::size_t>(n)
                                      : 0);
  reduce(ctx, sendbuf, me == 0 ? full.data() : nullptr,
         count * static_cast<std::size_t>(n), elem_bytes, fn, 0);
  scatter(ctx, me == 0 ? full.data() : nullptr, block, recvbuf, 0);
}

}  // namespace hlsmpc::mpi
