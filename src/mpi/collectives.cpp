// Collective operations: a dispatch layer over two engines.
//
// When a communicator has a shared-memory engine (HLSMPC_COLL_SHM and >= 2
// ranks), data-moving collectives route to it — zero-copy reads between
// ranks of one address space, see coll_shm.hpp. The p2p algorithms below
// remain the fallback (engine compiled out or disabled, size-1 comms, and
// gather/gatherv/scatter, which keep their posted-receive form). They run
// in a dedicated context so they can never match application
// point-to-point traffic, and target intra-node scale (<= a few dozen
// ranks): dissemination barrier, binomial bcast/reduce, linear
// gather/scatter, chain scan.
#include <cstring>
#include <vector>

#include "mpi/coll_algo.hpp"
#include "mpi/coll_shm.hpp"
#include "mpi/comm.hpp"
#include "mpi/runtime.hpp"
#include "obs/recorder.hpp"

namespace hlsmpc::mpi {

namespace {

#if HLSMPC_OBS_ENABLED
/// RAII span for one collective call: bumps coll_ops on entry, records a
/// `collective` event covering the whole call on destruction. Composite
/// collectives (allreduce, allgather, ...) nest their phases' spans inside
/// their own; a trace viewer renders them as nested slices. The event's
/// arg packs the op together with the algorithm that actually served the
/// call (set_alg; defaults to p2p).
class CollScope {
 public:
  CollScope(Runtime& rt, obs::CollOp op, const ult::TaskContext& ctx,
            std::int64_t bytes)
      : obs_(rt.obs()),
        op_(op),
        task_(ctx.task_id()),
        cpu_(ctx.cpu()),
        bytes_(bytes) {
    if (obs_ == nullptr) return;
    obs_->count(task_, obs::Counter::coll_ops);
    t0_ = obs_->now();
  }
  CollScope(const CollScope&) = delete;
  CollScope& operator=(const CollScope&) = delete;
  ~CollScope() {
    if (obs_ == nullptr) return;
    obs::Event e;
    e.kind = obs::EventKind::collective;
    e.task = task_;
    e.cpu = cpu_;
    e.t0 = t0_;
    e.t1 = obs_->now();
    e.arg = obs::coll_event_arg(op_, alg_);
    e.arg2 = bytes_;
    obs_->record(e);
  }

  void set_alg(obs::CollAlg alg) {
    alg_ = alg;
    if (obs_ != nullptr && alg != obs::CollAlg::p2p) {
      obs_->count(task_, obs::Counter::coll_shm_ops);
      if (alg == obs::CollAlg::shm_pipelined) {
        obs_->count(task_, obs::Counter::coll_shm_pipelined_ops);
      }
    }
  }

 private:
  obs::Recorder* obs_;
  obs::CollOp op_;
  obs::CollAlg alg_ = obs::CollAlg::p2p;
  int task_;
  int cpu_;
  std::int64_t bytes_;
  std::uint64_t t0_ = 0;
};
#define HLSMPC_OBS_COLL(op, bytes)                      \
  CollScope obs_coll_scope_(*rt_, obs::CollOp::op, ctx, \
                            static_cast<std::int64_t>(bytes))
#define HLSMPC_OBS_COLL_ALG(alg) obs_coll_scope_.set_alg(alg)
#else
#define HLSMPC_OBS_COLL(op, bytes) (void)0
#define HLSMPC_OBS_COLL_ALG(alg) (void)(alg)
#endif

}  // namespace

void Comm::barrier(ult::TaskContext& ctx) {
  HLSMPC_OBS_COLL(barrier, 0);
  const int me = rank(ctx);
  const int n = size();
  const int tag = next_coll_tag(me);
  if (n == 1) return;
#if HLSMPC_COLL_SHM_ENABLED
  if (shm_ != nullptr) {
    HLSMPC_OBS_COLL_ALG(shm_->barrier_alg());
    shm_->barrier(ctx, me);
    return;
  }
#endif
  // Dissemination: after ceil(log2 n) rounds every rank has transitively
  // heard from every other rank.
  for (int step = 1; step < n; step <<= 1) {
    const int dst = coll::dissemination_dst(me, step, n);
    const int src = coll::dissemination_src(me, step, n);
    Request r = irecv_ctx(ctx, nullptr, 0, src, tag, coll_context_);
    Request s = isend_ctx(ctx, nullptr, 0, dst, tag, coll_context_);
    wait(ctx, s);
    wait(ctx, r);
  }
}

void Comm::bcast(ult::TaskContext& ctx, void* buf, std::size_t bytes,
                 int root) {
  HLSMPC_OBS_COLL(bcast, bytes);
  check_rank(root, "bcast");
  const int me = rank(ctx);
  const int n = size();
  const int tag = next_coll_tag(me);
  if (n == 1) return;
#if HLSMPC_COLL_SHM_ENABLED
  if (shm_ != nullptr) {
    HLSMPC_OBS_COLL_ALG(shm_->select(bytes));
    shm_->bcast(ctx, me, buf, bytes, root);
    return;
  }
#endif
  const int vr = (me - root + n) % n;  // rank relative to root

  // Binomial tree: receive from the parent, then forward to children.
  int mask = 1;
  while (mask < n) {
    if (vr & mask) {
      const int parent = (vr - mask + root) % n;
      recv_ctx(ctx, buf, bytes, parent, tag, coll_context_, nullptr);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vr + mask < n) {
      const int child = (vr + mask + root) % n;
      send_ctx(ctx, buf, bytes, child, tag, coll_context_);
    }
    mask >>= 1;
  }
}

void Comm::reduce(ult::TaskContext& ctx, const void* sendbuf, void* recvbuf,
                  std::size_t count, std::size_t elem_bytes,
                  const ReduceFn& fn, int root) {
  HLSMPC_OBS_COLL(reduce, count * elem_bytes);
  check_rank(root, "reduce");
  const int me = rank(ctx);
  const int n = size();
  const int tag = next_coll_tag(me);
  const std::size_t bytes = count * elem_bytes;
#if HLSMPC_COLL_SHM_ENABLED
  if (shm_ != nullptr) {
    HLSMPC_OBS_COLL_ALG(shm_->select(bytes));
    shm_->reduce(ctx, me, sendbuf, recvbuf, count, elem_bytes, fn, root);
    return;
  }
#endif

  // Local accumulator: rank 0 with root 0 may reduce in place into
  // recvbuf; everyone else uses a scratch buffer. sendbuf == recvbuf
  // (in-place reduction) is allowed.
  std::vector<std::byte> scratch;
  void* acc;
  if (me == 0 && root == 0 && recvbuf != nullptr) {
    acc = recvbuf;
  } else {
    scratch.resize(bytes);
    acc = scratch.data();
  }
  if (bytes > 0 && acc != sendbuf) std::memcpy(acc, sendbuf, bytes);

  // Binomial tree in TRUE rank order: pairs fold the higher rank's partial
  // into the lower rank's accumulator as the right operand, so rank 0 ends
  // with v_0 (+) v_1 (+) ... (+) v_{n-1}. (Rotating the tree around the
  // root — the previous scheme — folds v_root (+) ... (+) v_{n-1} (+) v_0
  // (+) ..., which is wrong for non-commutative operators.) When root != 0
  // the result takes one extra hop from rank 0 to the root.
  std::vector<std::byte> incoming(bytes);
  for (int mask = 1; mask < n; mask <<= 1) {
    if ((me & mask) == 0) {
      const int partner = me | mask;
      if (partner < n) {
        recv_ctx(ctx, incoming.data(), bytes, partner, tag, coll_context_,
                 nullptr);
        fn(acc, incoming.data(), count);
      }
    } else {
      const int parent = me & ~mask;
      send_ctx(ctx, acc, bytes, parent, tag, coll_context_);
      break;
    }
  }
  if (root != 0) {
    // Distinct (src, tag) from every tree message arriving at these two
    // ranks: rank 0 never sends inside the tree and the root's tree
    // partners all differ from rank 0.
    if (me == 0) {
      send_ctx(ctx, acc, bytes, root, tag, coll_context_);
    } else if (me == root) {
      recv_ctx(ctx, recvbuf, bytes, 0, tag, coll_context_, nullptr);
    }
  }
}

void Comm::allreduce(ult::TaskContext& ctx, const void* sendbuf,
                     void* recvbuf, std::size_t count, std::size_t elem_bytes,
                     const ReduceFn& fn) {
  HLSMPC_OBS_COLL(allreduce, count * elem_bytes);
#if HLSMPC_COLL_SHM_ENABLED
  if (shm_ != nullptr) {
    HLSMPC_OBS_COLL_ALG(shm_->select(count * elem_bytes));
    shm_->allreduce(ctx, rank(ctx), sendbuf, recvbuf, count, elem_bytes, fn);
    return;
  }
#endif
  reduce(ctx, sendbuf, recvbuf, count, elem_bytes, fn, 0);
  bcast(ctx, recvbuf, count * elem_bytes, 0);
}

void Comm::gather(ult::TaskContext& ctx, const void* sendbuf,
                  std::size_t bytes, void* recvbuf, int root) {
  HLSMPC_OBS_COLL(gather, bytes);
  std::vector<std::size_t> counts(static_cast<std::size_t>(size()), bytes);
  std::vector<std::size_t> displs(static_cast<std::size_t>(size()));
  for (int r = 0; r < size(); ++r) {
    displs[static_cast<std::size_t>(r)] = static_cast<std::size_t>(r) * bytes;
  }
  gatherv(ctx, sendbuf, bytes, recvbuf, counts, displs, root);
}

void Comm::gatherv(ult::TaskContext& ctx, const void* sendbuf,
                   std::size_t bytes, void* recvbuf,
                   std::span<const std::size_t> counts,
                   std::span<const std::size_t> displs, int root) {
  HLSMPC_OBS_COLL(gatherv, bytes);
  check_rank(root, "gatherv");
  const int me = rank(ctx);
  const int n = size();
  if (counts.size() != static_cast<std::size_t>(n) ||
      displs.size() != static_cast<std::size_t>(n)) {
    throw MpiError("gatherv: counts/displs must have one entry per rank");
  }
  const int tag = next_coll_tag(me);
  if (me == root) {
    auto* out = static_cast<std::byte*>(recvbuf);
    // Post every receive first so senders complete without serialising on
    // the root's loop order; the self block is a plain (elidable) copy.
    std::vector<Request> reqs;
    reqs.reserve(static_cast<std::size_t>(n - 1));
    for (int r = 0; r < n; ++r) {
      if (r == me) continue;
      reqs.push_back(irecv_ctx(ctx, out + displs[static_cast<std::size_t>(r)],
                               counts[static_cast<std::size_t>(r)], r, tag,
                               coll_context_));
    }
    if (bytes != counts[static_cast<std::size_t>(me)]) {
      throw MpiError("gatherv: send size disagrees with counts[rank]");
    }
    void* self_dst = out + displs[static_cast<std::size_t>(me)];
    if (self_dst != sendbuf && bytes > 0) {
      std::memcpy(self_dst, sendbuf, bytes);
    } else if (self_dst == sendbuf) {
      rt_->stats().copies_elided.fetch_add(1, std::memory_order_relaxed);
    }
    for (Request& r : reqs) wait(ctx, r);
  } else {
    if (bytes != counts[static_cast<std::size_t>(me)]) {
      throw MpiError("gatherv: send size disagrees with counts[rank]");
    }
    send_ctx(ctx, sendbuf, bytes, root, tag, coll_context_);
  }
}

void Comm::scatter(ult::TaskContext& ctx, const void* sendbuf,
                   std::size_t bytes, void* recvbuf, int root) {
  HLSMPC_OBS_COLL(scatter, bytes);
  check_rank(root, "scatter");
  const int me = rank(ctx);
  const int n = size();
  const int tag = next_coll_tag(me);
  if (me == root) {
    const auto* in = static_cast<const std::byte*>(sendbuf);
    for (int r = 0; r < n; ++r) {
      const std::byte* block = in + static_cast<std::size_t>(r) * bytes;
      if (r == me) {
        if (recvbuf != block && bytes > 0) std::memcpy(recvbuf, block, bytes);
      } else {
        send_ctx(ctx, block, bytes, r, tag, coll_context_);
      }
    }
  } else {
    recv_ctx(ctx, recvbuf, bytes, root, tag, coll_context_, nullptr);
  }
}

void Comm::allgather(ult::TaskContext& ctx, const void* sendbuf,
                     std::size_t bytes, void* recvbuf) {
  HLSMPC_OBS_COLL(allgather, bytes);
#if HLSMPC_COLL_SHM_ENABLED
  if (shm_ != nullptr) {
    HLSMPC_OBS_COLL_ALG(shm_->select(bytes));
    shm_->allgather(ctx, rank(ctx), sendbuf, bytes, recvbuf);
    return;
  }
#endif
  // Gather to rank 0, then broadcast the assembled vector. Two internal
  // collectives; per-rank tag counters advance identically on all ranks.
  gather(ctx, sendbuf, bytes, recvbuf, 0);
  bcast(ctx, recvbuf, bytes * static_cast<std::size_t>(size()), 0);
}

void Comm::alltoall(ult::TaskContext& ctx, const void* sendbuf,
                    std::size_t bytes_per_rank, void* recvbuf) {
  HLSMPC_OBS_COLL(alltoall, bytes_per_rank);
  const int me = rank(ctx);
  const int n = size();
  const int tag = next_coll_tag(me);
#if HLSMPC_COLL_SHM_ENABLED
  if (shm_ != nullptr) {
    HLSMPC_OBS_COLL_ALG(
        shm_->select(bytes_per_rank * static_cast<std::size_t>(n)));
    shm_->alltoall(ctx, me, sendbuf, bytes_per_rank, recvbuf);
    return;
  }
#endif
  const auto* in = static_cast<const std::byte*>(sendbuf);
  auto* out = static_cast<std::byte*>(recvbuf);
  // Self block.
  if (bytes_per_rank > 0) {
    std::memcpy(out + static_cast<std::size_t>(me) * bytes_per_rank,
                in + static_cast<std::size_t>(me) * bytes_per_rank,
                bytes_per_rank);
  }
  // Rotated pairwise exchange: at step s talk to me+s (send) / me-s (recv).
  for (int step = 1; step < n; ++step) {
    const int dst = (me + step) % n;
    const int src = (me - step + n) % n;
    Request r = irecv_ctx(ctx,
                          out + static_cast<std::size_t>(src) * bytes_per_rank,
                          bytes_per_rank, src, tag, coll_context_);
    Request s = isend_ctx(ctx,
                          in + static_cast<std::size_t>(dst) * bytes_per_rank,
                          bytes_per_rank, dst, tag, coll_context_);
    wait(ctx, s);
    wait(ctx, r);
  }
}

void Comm::scan(ult::TaskContext& ctx, const void* sendbuf, void* recvbuf,
                std::size_t count, std::size_t elem_bytes,
                const ReduceFn& fn) {
  HLSMPC_OBS_COLL(scan, count * elem_bytes);
  const int me = rank(ctx);
  const int n = size();
  const int tag = next_coll_tag(me);
  const std::size_t bytes = count * elem_bytes;
#if HLSMPC_COLL_SHM_ENABLED
  if (shm_ != nullptr) {
    HLSMPC_OBS_COLL_ALG(shm_->select(bytes));
    shm_->scan(ctx, me, sendbuf, recvbuf, count, elem_bytes, fn);
    return;
  }
#endif
  // Chain: receive the prefix of ranks [0, me), fold own value in AS THE
  // RIGHT OPERAND — prefix (+) own, in rank order — and pass the result
  // on. (Folding fn(own, prefix) computes own (+) prefix, which is only
  // the same thing for commutative operators.)
  if (me == 0) {
    if (bytes > 0 && recvbuf != sendbuf) std::memcpy(recvbuf, sendbuf, bytes);
  } else {
    // Receiving the prefix into recvbuf may clobber sendbuf (in-place
    // call); snapshot own contribution first if so.
    const void* own = sendbuf;
    std::vector<std::byte> own_copy;
    if (recvbuf == sendbuf && bytes > 0) {
      own_copy.assign(static_cast<const std::byte*>(sendbuf),
                      static_cast<const std::byte*>(sendbuf) + bytes);
      own = own_copy.data();
    }
    recv_ctx(ctx, recvbuf, bytes, me - 1, tag, coll_context_, nullptr);
    fn(recvbuf, own, count);
  }
  if (me + 1 < n) {
    send_ctx(ctx, recvbuf, bytes, me + 1, tag, coll_context_);
  }
}

void Comm::exscan(ult::TaskContext& ctx, const void* sendbuf, void* recvbuf,
                  std::size_t count, std::size_t elem_bytes,
                  const ReduceFn& fn) {
  HLSMPC_OBS_COLL(exscan, count * elem_bytes);
  const int me = rank(ctx);
  const int n = size();
  const int tag = next_coll_tag(me);
  const std::size_t bytes = count * elem_bytes;
#if HLSMPC_COLL_SHM_ENABLED
  if (shm_ != nullptr) {
    HLSMPC_OBS_COLL_ALG(shm_->select(bytes));
    shm_->exscan(ctx, me, sendbuf, recvbuf, count, elem_bytes, fn);
    return;
  }
#endif
  // Chain carrying the inclusive prefix; each rank hands its successor
  // prefix(0..me) but keeps prefix(0..me-1) for itself. Rank 0's recvbuf
  // is untouched (MPI_Exscan semantics). The inclusive prefix must fold as
  // prefix (+) own — own as the RIGHT operand — or non-commutative
  // operators see their contributions out of rank order.
  std::vector<std::byte> inclusive(bytes);
  if (me == 0) {
    if (bytes > 0) std::memcpy(inclusive.data(), sendbuf, bytes);
  } else {
    const void* own = sendbuf;
    std::vector<std::byte> own_copy;
    if (recvbuf == sendbuf && bytes > 0) {
      own_copy.assign(static_cast<const std::byte*>(sendbuf),
                      static_cast<const std::byte*>(sendbuf) + bytes);
      own = own_copy.data();
    }
    recv_ctx(ctx, recvbuf, bytes, me - 1, tag, coll_context_, nullptr);
    if (me + 1 < n) {
      if (bytes > 0) std::memcpy(inclusive.data(), recvbuf, bytes);
      fn(inclusive.data(), own, count);
    }
  }
  if (me + 1 < n) {
    send_ctx(ctx, inclusive.data(), bytes, me + 1, tag, coll_context_);
  }
}

void Comm::reduce_scatter_block(ult::TaskContext& ctx, const void* sendbuf,
                                void* recvbuf, std::size_t count,
                                std::size_t elem_bytes, const ReduceFn& fn) {
  HLSMPC_OBS_COLL(reduce_scatter, count * elem_bytes);
  const int me = rank(ctx);
  const int n = size();
  const std::size_t block = count * elem_bytes;
#if HLSMPC_COLL_SHM_ENABLED
  if (shm_ != nullptr) {
    HLSMPC_OBS_COLL_ALG(shm_->select(block * static_cast<std::size_t>(n)));
    shm_->reduce_scatter_block(ctx, me, sendbuf, recvbuf, count, elem_bytes,
                               fn);
    return;
  }
#endif
  // Reduce the full vector to rank 0, then scatter the blocks. Simple and
  // correct at node scale; both phases use their own collective tags.
  std::vector<std::byte> full(me == 0 ? block * static_cast<std::size_t>(n)
                                      : 0);
  reduce(ctx, sendbuf, me == 0 ? full.data() : nullptr,
         count * static_cast<std::size_t>(n), elem_bytes, fn, 0);
  scatter(ctx, me == 0 ? full.data() : nullptr, block, recvbuf, 0);
}

}  // namespace hlsmpc::mpi
