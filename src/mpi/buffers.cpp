#include "mpi/buffers.hpp"

#include <stdexcept>

namespace hlsmpc::mpi {

BufferManager::BufferManager(const BufferConfig& cfg, int local_ranks,
                             int total_ranks, memtrack::Tracker& tracker)
    : cfg_(cfg), tracker_(&tracker) {
  if (local_ranks < 1 || total_ranks < local_ranks) {
    throw std::invalid_argument("BufferManager: bad rank counts");
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (cfg_.kind == BufferPolicyKind::per_pair) {
    // Aggressive policy: endpoint state for every (local rank, job peer)
    // connection reserved up front — footprint scales with the job size.
    pair_reservation_bytes_ = static_cast<std::size_t>(local_ranks) *
                              static_cast<std::size_t>(total_ranks - 1) *
                              cfg_.per_pair_bytes;
    pair_reservation_ = std::make_unique<std::byte[]>(pair_reservation_bytes_);
    tracker_->on_alloc(memtrack::Category::runtime_buffers,
                       pair_reservation_bytes_);
  }
  grow(cfg_.pool_initial);
}

BufferManager::~BufferManager() {
  std::lock_guard<std::mutex> lk(mu_);
  tracker_->on_free(memtrack::Category::runtime_buffers,
                    storage_.size() * cfg_.eager_buffer_bytes +
                        pair_reservation_bytes_);
}

void BufferManager::grow(int count) {
  for (int i = 0; i < count; ++i) {
    storage_.push_back(std::make_unique<std::byte[]>(cfg_.eager_buffer_bytes));
    free_.push_back(storage_.back().get());
    tracker_->on_alloc(memtrack::Category::runtime_buffers,
                       cfg_.eager_buffer_bytes);
  }
}

BufferManager::Lease BufferManager::acquire(std::size_t bytes) {
  if (bytes > cfg_.eager_buffer_bytes) {
    throw std::logic_error(
        "BufferManager::acquire: message exceeds eager threshold; use "
        "rendezvous");
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (free_.empty()) grow(1);
  std::byte* data = free_.front();
  free_.pop_front();
  ++leased_;
  return Lease(this, data, cfg_.eager_buffer_bytes);
}

void BufferManager::give_back(std::byte* data) {
  std::lock_guard<std::mutex> lk(mu_);
  free_.push_back(data);
  --leased_;
}

void BufferManager::Lease::release() {
  if (mgr_ != nullptr) {
    mgr_->give_back(data_);
    mgr_ = nullptr;
    data_ = nullptr;
    size_ = 0;
  }
}

std::size_t BufferManager::bytes_reserved() const {
  std::lock_guard<std::mutex> lk(mu_);
  return storage_.size() * cfg_.eager_buffer_bytes + pair_reservation_bytes_;
}

int BufferManager::leased() const {
  std::lock_guard<std::mutex> lk(mu_);
  return leased_;
}

}  // namespace hlsmpc::mpi
