// Umbrella header: the complete public MPI-layer surface in one include.
//
//   #include "mpi/mpi.hpp"
//
// pulls in, bottom-up (see the layering diagram in comm.hpp):
//
//   types.hpp          Status/Request, error taxonomy, CollConfig, Op
//   transport.hpp      the Transport interface every byte crosses
//   shm_transport.hpp  intra-node mailbox transport (eager + rendezvous)
//   sim_fabric.hpp     deterministic simulated inter-node fabric
//   tcp_transport.hpp  stream-socket fabric (self-gated on HLSMPC_TCP)
//   runtime.hpp        per-node Runtime: ranks, buffers, world Comm
//   comm.hpp           Comm: p2p + collectives for one node
//   rma.hpp            one-sided windows (self-gated on HLSMPC_RMA)
//   cluster.hpp        SimCluster/ClusterComm: multi-node hierarchy
//
// detail/mailbox.hpp is deliberately absent: mpi::detail is transport
// implementation state, not API. Code outside src/mpi that names it is a
// layering bug.
#pragma once

#include "mpi/types.hpp"
#include "mpi/transport.hpp"
#include "mpi/shm_transport.hpp"
#include "mpi/sim_fabric.hpp"
#include "mpi/tcp_transport.hpp"
#include "mpi/runtime.hpp"
#include "mpi/comm.hpp"
#include "mpi/rma.hpp"
#include "mpi/cluster.hpp"
