// Synchronization-tracing hook interface.
//
// The paper's conclusion proposes detecting HLS-eligible variables by
// retrieving "during one execution of the code, all memory accesses to
// global variables augmented with the synchronizations induced by the MPI
// calls". The runtime exposes exactly those synchronizations through this
// interface: every point-to-point completion is reported (collectives are
// implemented over p2p, so their synchronization structure is captured
// for free). hb::RuntimeTracer implements the interface and assembles an
// hb::Trace for the eligibility analyzer.
#pragma once

namespace hlsmpc::mpi {

class TraceHook {
 public:
  virtual ~TraceHook() = default;
  /// A send initiated by `task` to `peer_task` (global task ids) in the
  /// given communicator context.
  virtual void on_send(int task, int peer_task, int context, int tag) = 0;
  /// A receive completed by `task` from `peer_task` (resolved source).
  virtual void on_recv(int task, int peer_task, int context, int tag) = 0;
};

}  // namespace hlsmpc::mpi
