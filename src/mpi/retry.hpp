// Transient-failure retry policy: bounded exponential backoff with jitter.
//
// Transports distinguish two failure bands (fault/error.hpp):
//
//   transient — EINTR, EAGAIN, a partial write, an injected link flap
//     that heals. Worth retrying: the op is re-issued after a bounded
//     backoff, and only the *attempt budget* running out reclassifies the
//     failure as persistent.
//   persistent — the budget is exhausted (or the peer is positively known
//     dead). Surfaces as TransportError(transport_exhausted) or
//     NodeDeadError; cluster supervision escalates it to node poison.
//
// Backoff is exponential with a multiplicative cap and deterministic
// xorshift jitter (seeded per backoff object), so two ranks retrying the
// same flapping link do not stampede in lockstep. Cooperative contexts
// (fibers under the deterministic executor) never sleep — they yield,
// which keeps every retry interleaving explorable and replayable; the
// backoff arithmetic still runs so the attempt accounting is identical
// across executor back ends.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

#include "fault/error.hpp"
#include "ult/task_context.hpp"

namespace hlsmpc::mpi {

struct RetryPolicy {
  /// Total tries for one operation, including the first. Exhaustion
  /// reclassifies the failure as persistent.
  int max_attempts = 8;
  /// Backoff before retry k (1-based) is base * 2^(k-1), capped, +/- up
  /// to 25% jitter.
  std::chrono::microseconds backoff_base{50};
  std::chrono::microseconds backoff_cap{2000};
};

/// True when `code` names a condition a bounded retry may clear.
inline bool transient_error(hlsmpc::ErrorCode code) {
  return code == hlsmpc::ErrorCode::transport_exhausted ||
         code == hlsmpc::ErrorCode::out_of_memory;
}

/// Per-operation backoff state. Cheap to construct (two words); make one
/// per op, call wait() before each retry.
class RetryBackoff {
 public:
  explicit RetryBackoff(const RetryPolicy& policy,
                        std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ull)
      : policy_(&policy),
        // xorshift state must be nonzero.
        rng_(jitter_seed | 1u) {}

  /// Back off before retry `attempt` (1-based). Preemptive contexts
  /// sleep; cooperative ones yield so the deterministic executor keeps
  /// full control of the interleaving.
  void wait(ult::TaskContext& ctx, int attempt) {
    if (ctx.cooperative()) {
      ctx.yield();
      return;
    }
    auto d = policy_->backoff_base;
    for (int i = 1; i < attempt && d < policy_->backoff_cap; ++i) d *= 2;
    if (d > policy_->backoff_cap) d = policy_->backoff_cap;
    // +/- 25% deterministic jitter (xorshift64*).
    rng_ ^= rng_ >> 12;
    rng_ ^= rng_ << 25;
    rng_ ^= rng_ >> 27;
    const std::uint64_t r = rng_ * 0x2545f4914f6cdd1dull;
    const auto quarter = d / 4;
    const auto jitter = quarter.count() > 0
                            ? std::chrono::microseconds(
                                  static_cast<std::int64_t>(
                                      r % static_cast<std::uint64_t>(
                                              2 * quarter.count() + 1)) -
                                  quarter.count())
                            : std::chrono::microseconds(0);
    std::this_thread::sleep_for(d + jitter);
  }

 private:
  const RetryPolicy* policy_;
  std::uint64_t rng_;
};

}  // namespace hlsmpc::mpi
