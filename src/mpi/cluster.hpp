// Simulated multi-node cluster with node-leader hierarchical collectives.
//
// The MPI+MPI hierarchical structure of Eleliemy & Ciorba (PAPERS.md)
// composed from this repo's two tiers:
//
//   intra-node tier: each node is a full mpi::Runtime — one address
//     space, ShmCollEngine collectives, ShmTransport p2p (PR 5/7).
//   inter-node tier: node leaders (local rank 0) exchange over a
//     Transport — here the deterministic SimFabricTransport, so
//     multi-node schedules are explorable with src/check's executor.
//
// Global rank g of a cluster with R ranks per node lives on node g/R as
// local rank g%R (node-major order). All nodes are hosted in this
// process: node runtimes provide the local tier, while their run() is
// never called — the cluster drives one executor with nranks() tasks and
// hands each a per-call local context when it enters node-level calls.
//
// Fold-order contract (comm.hpp): contributions combine in ascending
// GLOBAL rank order with the accumulator as the left operand. Node-major
// rank order factors that fold exactly: the local tier produces per-node
// partials P_n = v_{nR} (+) ... (+) v_{nR+R-1} in local rank order, and
// the leader tier folds P_0 (+) P_1 (+) ... (+) P_{N-1} in ascending
// node order (binomial tree in TRUE node order: the lower node applies
// the higher partner's partial as the RIGHT operand). Associativity is
// all that regrouping needs — commutativity is never required.
//
// Dead-node supervision: a leader whose fabric exchange fails declares
// the peer node unreachable (SimFabricTransport::kill_node), finishes its
// local phases so co-resident ranks are not stranded mid-collective, and
// every rank then throws NodeDeadError naming the FIRST unreachable node
// from the collective's exit check.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "mpi/runtime.hpp"
#include "mpi/sim_fabric.hpp"

namespace hlsmpc::mpi {

class SimCluster;

struct ClusterOptions {
  int nnodes = 2;
  int ranks_per_node = 1;
  /// Executor hosting the cluster-global tasks (SimCluster::run).
  ExecutorKind executor = ExecutorKind::thread;
  int fiber_workers = 0;
  /// Per-node runtime tuning.
  BufferConfig buffers;
  CollConfig coll;
  /// Fabric capacity bounds (0 = unlimited).
  TransportLimits fabric_limits;
  /// Cluster-level observability recorder; task ids are cluster-global
  /// ranks. Node runtimes record nothing (their local ids would collide).
  obs::Recorder* obs = nullptr;
};

/// The cluster-global communicator: one object shared by all global
/// ranks. Global p2p rides the fabric; collectives are hierarchical
/// (local tier + leader tier, see the file comment).
class ClusterComm {
 public:
  ClusterComm(SimCluster& cluster);
  ClusterComm(const ClusterComm&) = delete;
  ClusterComm& operator=(const ClusterComm&) = delete;

  int size() const { return nranks_; }
  int nnodes() const { return nnodes_; }
  int ranks_per_node() const { return rpn_; }
  /// Cluster-global rank of the calling task.
  int rank(const ult::TaskContext& ctx) const { return ctx.task_id(); }
  int node_of(int grank) const { return grank / rpn_; }
  int local_of(int grank) const { return grank % rpn_; }
  int leader_of(int node) const { return node * rpn_; }
  /// The intra-node world communicator of `node` (local rank space).
  Comm& node_comm(int node) const;
  SimFabricTransport& fabric() const { return *fabric_; }
  /// First node observed unreachable, or -1 while all are alive.
  int first_dead_node() const { return fabric_->first_dead_node(); }

  // ---- global point to point (global ranks, over the fabric) ----
  void send(ult::TaskContext& ctx, const void* buf, std::size_t bytes,
            int dst, int tag);
  void recv(ult::TaskContext& ctx, void* buf, std::size_t capacity, int src,
            int tag, Status* status = nullptr);

  // ---- hierarchical collectives (global ranks) ----
  void barrier(ult::TaskContext& ctx);
  void bcast(ult::TaskContext& ctx, void* buf, std::size_t bytes, int root);
  /// recvbuf is significant at the global root only.
  void reduce(ult::TaskContext& ctx, const void* sendbuf, void* recvbuf,
              std::size_t count, std::size_t elem_bytes, const ReduceFn& fn,
              int root);
  void allreduce(ult::TaskContext& ctx, const void* sendbuf, void* recvbuf,
                 std::size_t count, std::size_t elem_bytes,
                 const ReduceFn& fn);
  /// recvbuf holds size()*bytes, ordered by global rank.
  void allgather(ult::TaskContext& ctx, const void* sendbuf,
                 std::size_t bytes, void* recvbuf);

  // ---- typed convenience ----
  template <typename T>
  T bcast_value(ult::TaskContext& ctx, T v, int root) {
    bcast(ctx, &v, sizeof(T), root);
    return v;
  }
  template <typename T>
  void allreduce(ult::TaskContext& ctx, std::span<const T> in,
                 std::span<T> out, Op op) {
    allreduce(ctx, in.data(), out.data(), in.size(), sizeof(T),
              make_reduce_fn<T>(op));
  }
  template <typename T>
  T allreduce_value(ult::TaskContext& ctx, const T& v, Op op) {
    T out{};
    allreduce(ctx, &v, &out, 1, sizeof(T), make_reduce_fn<T>(op));
    return out;
  }

 private:
  /// Leader-tier exchange primitives with dead-node containment: a
  /// failure records/declares the peer node unreachable and returns
  /// false; callers push on (subsequent fabric ops fail fast against the
  /// poisoned fabric) so local phases still run and nobody strands
  /// co-resident ranks.
  bool coll_send(ult::TaskContext& ctx, int g_me, int dst_g, const void* buf,
                 std::size_t bytes, int tag);
  bool coll_recv(ult::TaskContext& ctx, int g_me, int src_g, void* buf,
                 std::size_t capacity, int tag);
  /// Leader-tier binomial fold to node 0 in TRUE node order; `acc` is the
  /// caller's node partial, overwritten with the folded prefix at
  /// receiving nodes. Returns false on containment.
  bool leader_fold(ult::TaskContext& ctx, int node, void* acc,
                   std::size_t count, std::size_t elem_bytes,
                   const ReduceFn& fn, int tag);
  /// Leader-tier binomial bcast rooted at `root_node` (virtual-node
  /// rotation).
  bool leader_bcast(ult::TaskContext& ctx, int node, void* buf,
                    std::size_t bytes, int root_node, int tag);
  /// Fresh tag for the caller's next collective (all ranks enter
  /// collectives in the same order, so per-rank counters agree).
  int next_coll_tag(int grank);
  /// Throws NodeDeadError naming the first unreachable node, if any.
  void check_alive(const char* what) const;
  void count_coll(int grank);

  SimCluster* cluster_;
  SimFabricTransport* fabric_;
  std::vector<Comm*> node_world_;
  int nnodes_ = 0;
  int rpn_ = 0;
  int nranks_ = 0;
  std::vector<std::uint32_t> coll_seq_;  // per global rank
  obs::Recorder* obs_ = nullptr;
};

class SimCluster {
 public:
  explicit SimCluster(ClusterOptions opts);
  ~SimCluster();
  SimCluster(const SimCluster&) = delete;
  SimCluster& operator=(const SimCluster&) = delete;

  int nnodes() const { return opts_.nnodes; }
  int ranks_per_node() const { return opts_.ranks_per_node; }
  int nranks() const { return opts_.nnodes * opts_.ranks_per_node; }
  SimFabricTransport& fabric() { return *fabric_; }
  Runtime& node_runtime(int node);
  ClusterComm& comm() { return *comm_; }
  /// The cluster-level recorder from ClusterOptions (may be null).
  obs::Recorder* obs() const { return opts_.obs; }

  using Body = std::function<void(ClusterComm&, ult::TaskContext&)>;
  /// Run `body` once per cluster-global rank on the cluster's executor.
  void run(const Body& body);
  /// Same, on a caller-provided executor — check::DeterministicExecutor
  /// here makes the whole multi-node schedule explorable/replayable.
  void run_on(ult::Executor& exec, const Body& body);

 private:
  ClusterOptions opts_;
  topo::Machine machine_;
  std::vector<std::unique_ptr<Runtime>> nodes_;
  std::unique_ptr<SimFabricTransport> fabric_;
  std::unique_ptr<ult::Executor> executor_;
  std::unique_ptr<ClusterComm> comm_;
};

}  // namespace hlsmpc::mpi
