// Simulated multi-node cluster with node-leader hierarchical collectives.
//
// The MPI+MPI hierarchical structure of Eleliemy & Ciorba (PAPERS.md)
// composed from this repo's two tiers:
//
//   intra-node tier: each node is a full mpi::Runtime — one address
//     space, ShmCollEngine collectives, ShmTransport p2p (PR 5/7).
//   inter-node tier: node leaders (local rank 0) exchange over a
//     Transport — here the deterministic SimFabricTransport, so
//     multi-node schedules are explorable with src/check's executor.
//
// Global rank g of a cluster with R ranks per node lives on node g/R as
// local rank g%R (node-major order). All nodes are hosted in this
// process: node runtimes provide the local tier, while their run() is
// never called — the cluster drives one executor with nranks() tasks and
// hands each a per-call local context when it enters node-level calls.
//
// Fold-order contract (comm.hpp): contributions combine in ascending
// GLOBAL rank order with the accumulator as the left operand. Node-major
// rank order factors that fold exactly: the local tier produces per-node
// partials P_n = v_{nR} (+) ... (+) v_{nR+R-1} in local rank order, and
// the leader tier folds the partials of the LIVE nodes in ascending node
// order (binomial tree in true survivor-position order: the lower
// position applies the higher partner's partial as the RIGHT operand).
// Associativity is all that regrouping needs — commutativity is never
// required. The contract survives shrinking because ascending position in
// the live view IS ascending node id, so the fold over survivors is the
// exact ascending-global-rank fold over surviving contributions.
//
// Dead-node supervision and recovery (PR 9): the communicator carries a
// LIVE VIEW — the ascending list of member nodes plus an epoch — and
// every collective runs over the view it snapshots at entry. A leader
// whose fabric exchange fails declares the peer node unreachable
// (SimFabricTransport::kill_node) and pushes on; co-resident ranks decide
// death together at fused NODE GATES (entry and exit of every
// collective): a local barrier, local rank 0 publishing the fabric's
// poison verdict, a second barrier, then every rank of the node reads the
// same verdict and they all throw NodeDeadError together or all proceed.
// The gates are what make a death recoverable — no rank can strand its
// co-residents inside a node-level phase, so after everyone has thrown,
// the node runtimes are quiescent and survivors may run shrink().
//
// shrink() (collective over survivors) runs the coordinator agreement of
// mpi/recover.hpp on the leader tier, installs the shrunken view
// (epoch+1), heals the fabric's poison, resets the node's collective
// control blocks and restarts collective tag numbering under the new
// epoch. respawn() re-creates a dead node's runtime between run()s and
// readmits it into the view, so a warm-restarted replacement (typically
// restored from an hls checkpoint) rejoins the job.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "mpi/retry.hpp"
#include "mpi/runtime.hpp"
#include "mpi/sim_fabric.hpp"

#ifndef HLSMPC_RECOVERY_ENABLED
#define HLSMPC_RECOVERY_ENABLED 1
#endif

namespace hlsmpc::mpi {

class SimCluster;

struct ClusterOptions {
  int nnodes = 2;
  int ranks_per_node = 1;
  /// Executor hosting the cluster-global tasks (SimCluster::run).
  ExecutorKind executor = ExecutorKind::thread;
  int fiber_workers = 0;
  /// Per-node runtime tuning.
  BufferConfig buffers;
  CollConfig coll;
  /// Fabric capacity bounds (0 = unlimited).
  TransportLimits fabric_limits;
  /// Transient-failure budget of the fabric's flapping links.
  RetryPolicy fabric_retry;
  /// Per-round receive deadline of the shrink agreement. Expiry DECLARES
  /// the silent peer dead (recover.hpp), so keep it far above the
  /// fabric's round-trip time; tests shorten it to keep timeouts cheap.
  std::chrono::milliseconds shrink_round_timeout{2000};
  /// Cluster-level observability recorder; task ids are cluster-global
  /// ranks. Node runtimes record nothing (their local ids would collide).
  obs::Recorder* obs = nullptr;
};

#if HLSMPC_RECOVERY_ENABLED
/// What ClusterComm::shrink() agreed on, identical on every survivor.
struct ShrinkReport {
  /// Epoch of the freshly installed view.
  std::uint64_t epoch = 0;
  /// Nodes the agreement excluded (bit n = node n), cumulative over the
  /// members the entering view still contained.
  std::uint64_t dead_mask = 0;
  /// Agreement attempts used (1 = no coordinator failed over).
  int attempts = 1;
  /// Surviving member nodes, ascending.
  std::vector<int> live;
};
#endif

/// The cluster-global communicator: one object shared by all global
/// ranks. Global p2p rides the fabric; collectives are hierarchical
/// (local tier + leader tier, see the file comment) and run over the
/// live view snapshot taken at entry.
class ClusterComm {
 public:
  ClusterComm(SimCluster& cluster);
  ClusterComm(const ClusterComm&) = delete;
  ClusterComm& operator=(const ClusterComm&) = delete;

  /// Ranks currently in the job: live nodes times ranks_per_node (the
  /// full world while nothing died; shrinks after a recovery).
  int size() const {
    std::lock_guard<std::mutex> lk(view_mu_);
    return static_cast<int>(view_->live.size()) * rpn_;
  }
  int nnodes() const { return nnodes_; }
  int ranks_per_node() const { return rpn_; }
  /// Cluster-global rank of the calling task (world numbering: ranks keep
  /// their ids across shrinks, the view only decides who participates).
  int rank(const ult::TaskContext& ctx) const { return ctx.task_id(); }
  int node_of(int grank) const { return grank / rpn_; }
  int local_of(int grank) const { return grank % rpn_; }
  int leader_of(int node) const { return node * rpn_; }
  /// The intra-node world communicator of `node` (local rank space).
  Comm& node_comm(int node) const;
  SimFabricTransport& fabric() const { return *fabric_; }
  /// First node observed unreachable, or -1 while all are alive.
  int first_dead_node() const { return fabric_->first_dead_node(); }
  /// Epoch of the current live view (bumped by shrink() and readmit()).
  std::uint64_t view_epoch() const {
    std::lock_guard<std::mutex> lk(view_mu_);
    return view_->epoch;
  }
  /// Member nodes of the current live view, ascending.
  std::vector<int> live_nodes() const {
    std::lock_guard<std::mutex> lk(view_mu_);
    return view_->live;
  }

  // ---- global point to point (global ranks, over the fabric) ----
  void send(ult::TaskContext& ctx, const void* buf, std::size_t bytes,
            int dst, int tag);
  void recv(ult::TaskContext& ctx, void* buf, std::size_t capacity, int src,
            int tag, Status* status = nullptr);

  // ---- hierarchical collectives (global ranks, live view) ----
  void barrier(ult::TaskContext& ctx);
  void bcast(ult::TaskContext& ctx, void* buf, std::size_t bytes, int root);
  /// recvbuf is significant at the global root only.
  void reduce(ult::TaskContext& ctx, const void* sendbuf, void* recvbuf,
              std::size_t count, std::size_t elem_bytes, const ReduceFn& fn,
              int root);
  void allreduce(ult::TaskContext& ctx, const void* sendbuf, void* recvbuf,
                 std::size_t count, std::size_t elem_bytes,
                 const ReduceFn& fn);
  /// recvbuf holds size()*bytes: the blocks of the LIVE ranks, compacted
  /// in ascending global-rank order (dead nodes leave no gap).
  void allgather(ult::TaskContext& ctx, const void* sendbuf,
                 std::size_t bytes, void* recvbuf);

#if HLSMPC_RECOVERY_ENABLED
  /// Recover from a NodeDeadError: collective over every rank of every
  /// surviving node (the dead node's ranks have unwound through the
  /// gates). Leaders run the recover.hpp agreement on the set of dead
  /// members, the shrunken view (epoch+1) is installed, the fabric poison
  /// healed, node collective state reset and collective tags restarted
  /// under the new epoch. Throws NodeDeadError if THIS node was declared
  /// dead by the survivors (false suspicion counts as death — rejoin via
  /// respawn), MpiError if the agreement could not converge.
  ///
  /// Resuming after shrink(): the transport level is clean (epoch-tagged
  /// collectives cannot match stale traffic), but a collective that was
  /// in flight when the death hit may have completed on some survivors
  /// and not others — as in ULFM, agreeing on application progress (e.g.
  /// bcasting an iteration counter) is the caller's job.
  ShrinkReport shrink(ult::TaskContext& ctx);
  /// Readmit `node` after SimCluster::respawn re-created its runtime:
  /// re-inserts it into the view (epoch+1), rebinds its node communicator
  /// and restarts collective tag numbering. Quiescent only (between
  /// run()s).
  void readmit(int node);
#endif

  // ---- typed convenience ----
  template <typename T>
  T bcast_value(ult::TaskContext& ctx, T v, int root) {
    bcast(ctx, &v, sizeof(T), root);
    return v;
  }
  template <typename T>
  void allreduce(ult::TaskContext& ctx, std::span<const T> in,
                 std::span<T> out, Op op) {
    allreduce(ctx, in.data(), out.data(), in.size(), sizeof(T),
              make_reduce_fn<T>(op));
  }
  template <typename T>
  T allreduce_value(ult::TaskContext& ctx, const T& v, Op op) {
    T out{};
    allreduce(ctx, &v, &out, 1, sizeof(T), make_reduce_fn<T>(op));
    return out;
  }

 private:
  /// The membership a collective runs over: ascending live node ids plus
  /// the epoch namespacing its collective tags. Immutable once published;
  /// swapped under view_mu_ by shrink()/readmit().
  struct View {
    std::uint64_t epoch = 0;
    std::vector<int> live;
  };
  /// Per-node fused-gate verdict slot (own cache line: every rank of the
  /// node polls it between the gate's barriers).
  struct alignas(64) GateSlot {
    std::atomic<int> verdict{-1};
    /// Bumped by the node's local rank 0 inside shrink() once the
    /// engine reset is complete; co-resident ranks spin on it before
    /// touching the engine again. reset_collectives() is quiescent-only,
    /// so releasing the node through the engine itself would race.
    std::atomic<std::uint32_t> reset_gen{0};
  };

  std::shared_ptr<const View> snapshot_view() const {
    std::lock_guard<std::mutex> lk(view_mu_);
    return view_;
  }
  /// Position of `node` in the view's live list, or -1 when excluded.
  static int pos_of(const View& v, int node);
  /// Fused node gate: local barrier, local rank 0 publishes the fabric's
  /// poison verdict, local barrier, everyone reads it — so all ranks of a
  /// node throw NodeDeadError together or all proceed together.
  void node_gate(ult::TaskContext& lctx, Comm& nc, int node,
                 const char* what);
  /// Leader-tier exchange primitives with dead-node containment: a
  /// failure records/declares the peer node unreachable and returns
  /// false; callers push on (subsequent fabric ops fail fast against the
  /// poisoned fabric) so local phases still run and nobody strands
  /// co-resident ranks.
  bool coll_send(ult::TaskContext& ctx, int g_me, int dst_g, const void* buf,
                 std::size_t bytes, int tag);
  bool coll_recv(ult::TaskContext& ctx, int g_me, int src_g, void* buf,
                 std::size_t capacity, int tag);
  /// Leader-tier binomial fold over the view's live positions (ascending
  /// position = ascending node), result at live[0]'s leader; `acc` is the
  /// caller's node partial, overwritten with the folded prefix at
  /// receiving nodes. Returns false on containment.
  bool leader_fold(ult::TaskContext& ctx, int pos, const View& v, void* acc,
                   std::size_t count, std::size_t elem_bytes,
                   const ReduceFn& fn, int tag);
  /// Leader-tier binomial bcast rooted at live position `root_pos`
  /// (virtual-position rotation).
  bool leader_bcast(ult::TaskContext& ctx, int pos, const View& v, void* buf,
                    std::size_t bytes, int root_pos, int tag);
  /// Fresh tag for the caller's next collective, namespaced by the view
  /// epoch (all ranks enter collectives in the same order and epochs
  /// change only at collectives' edges, so per-rank counters agree and
  /// pre-shrink stragglers can never match post-shrink collectives).
  int next_coll_tag(int grank, std::uint64_t epoch);
#if HLSMPC_RECOVERY_ENABLED
  /// Swap in the post-agreement view; first leader wins (keyed on the
  /// epoch the agreement ran under), later leaders see the installed one.
  void install_view(std::uint64_t expected_epoch, std::uint64_t dead_mask);
#endif
  void count_coll(int grank);

  SimCluster* cluster_;
  SimFabricTransport* fabric_;
  std::vector<Comm*> node_world_;
  int nnodes_ = 0;
  int rpn_ = 0;
  int nranks_ = 0;
  std::vector<std::uint32_t> coll_seq_;  // per global rank
  mutable std::mutex view_mu_;
  std::shared_ptr<const View> view_;
  std::unique_ptr<GateSlot[]> gate_;
  std::chrono::milliseconds shrink_round_timeout_{2000};
  obs::Recorder* obs_ = nullptr;
};

class SimCluster {
 public:
  explicit SimCluster(ClusterOptions opts);
  ~SimCluster();
  SimCluster(const SimCluster&) = delete;
  SimCluster& operator=(const SimCluster&) = delete;

  int nnodes() const { return opts_.nnodes; }
  int ranks_per_node() const { return opts_.ranks_per_node; }
  int nranks() const { return opts_.nnodes * opts_.ranks_per_node; }
  SimFabricTransport& fabric() { return *fabric_; }
  Runtime& node_runtime(int node);
  ClusterComm& comm() { return *comm_; }
  const ClusterOptions& options() const { return opts_; }
  /// The cluster-level recorder from ClusterOptions (may be null).
  obs::Recorder* obs() const { return opts_.obs; }

#if HLSMPC_RECOVERY_ENABLED
  /// Replace a dead node with a fresh runtime (the simulated analogue of
  /// spawning a replacement process) and readmit it into the
  /// communicator's view. Quiescent only — call between run()s; the
  /// replacement starts blank, warm restarts rehydrate it from an hls
  /// checkpoint inside the next run. Fault site "cluster:respawn"
  /// (operand = node) models the replacement failing to launch. Throws
  /// MpiError when `node` is not dead.
  void respawn(int node);
#endif

  using Body = std::function<void(ClusterComm&, ult::TaskContext&)>;
  /// Run `body` once per cluster-global rank on the cluster's executor.
  void run(const Body& body);
  /// Same, on a caller-provided executor — check::DeterministicExecutor
  /// here makes the whole multi-node schedule explorable/replayable.
  void run_on(ult::Executor& exec, const Body& body);

 private:
  ClusterOptions opts_;
  topo::Machine machine_;
  std::vector<std::unique_ptr<Runtime>> nodes_;
  std::unique_ptr<SimFabricTransport> fabric_;
  std::unique_ptr<ult::Executor> executor_;
  std::unique_ptr<ClusterComm> comm_;
};

}  // namespace hlsmpc::mpi
