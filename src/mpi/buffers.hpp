// Eager-buffer management with pluggable allocation policy.
//
// Tables II-IV of the paper show that plain MPC consumes 100-300 MB less
// per node than Open MPI, a gap the authors attribute to "a less
// aggressive policy on communication buffers". We reproduce both policies
// behind one interface:
//
//  - Pooled (MPC-like): a node-wide free list of eager buffers that grows
//    on demand and is reused across all rank pairs.
//  - PerPair (Open-MPI-like): every local rank pre-allocates a fixed set
//    of eager buffers per peer at startup (peers include ranks on other
//    nodes, so the reservation grows with the job size).
//
// All reservations are charged to the node Tracker under
// Category::runtime_buffers so the benchmark tables see them.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "memtrack/memtrack.hpp"

namespace hlsmpc::mpi {

enum class BufferPolicyKind { pooled, per_pair };

struct BufferConfig {
  BufferPolicyKind kind = BufferPolicyKind::pooled;
  /// Size of one eager buffer; messages up to this size are sent eagerly,
  /// larger ones go through the rendezvous protocol.
  std::size_t eager_buffer_bytes = 8 * 1024;
  /// Pooled: buffers allocated up front.
  int pool_initial = 16;
  /// PerPair: bytes reserved per (local rank, job peer) connection at
  /// startup — endpoint state plus preposted buffers. This is what makes
  /// the Open-MPI-like row's footprint grow with the job size in the
  /// paper's tables.
  std::size_t per_pair_bytes = 1024;
};

class BufferManager {
 public:
  /// `local_ranks` ranks live on this node; each sees `total_ranks - 1`
  /// peers (job-wide) for the per-pair reservation model.
  BufferManager(const BufferConfig& cfg, int local_ranks, int total_ranks,
                memtrack::Tracker& tracker);
  ~BufferManager();
  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// RAII lease of one eager buffer. Returned to the free list on destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(BufferManager* mgr, std::byte* data, std::size_t size)
        : mgr_(mgr), data_(data), size_(size) {}
    Lease(Lease&& o) noexcept { swap(o); }
    Lease& operator=(Lease&& o) noexcept {
      if (this != &o) {
        release();
        swap(o);
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    std::byte* data() { return data_; }
    const std::byte* data() const { return data_; }
    std::size_t size() const { return size_; }
    explicit operator bool() const { return data_ != nullptr; }
    void release();

   private:
    void swap(Lease& o) {
      std::swap(mgr_, o.mgr_);
      std::swap(data_, o.data_);
      std::swap(size_, o.size_);
    }
    BufferManager* mgr_ = nullptr;
    std::byte* data_ = nullptr;
    std::size_t size_ = 0;
  };

  /// Acquire a buffer able to hold `bytes` (must be <= eager threshold).
  /// Grows the reservation if the free list is empty.
  Lease acquire(std::size_t bytes);

  std::size_t eager_threshold() const { return cfg_.eager_buffer_bytes; }
  /// Bytes currently reserved from the system (free or leased buffers
  /// plus the per-pair connection reservation).
  std::size_t bytes_reserved() const;
  /// Buffers currently leased out.
  int leased() const;

 private:
  friend class Lease;
  void grow(int count);  // caller holds mu_
  void give_back(std::byte* data);

  BufferConfig cfg_;
  memtrack::Tracker* tracker_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<std::byte[]>> storage_;
  std::deque<std::byte*> free_;
  std::unique_ptr<std::byte[]> pair_reservation_;
  std::size_t pair_reservation_bytes_ = 0;
  int leased_ = 0;
};

}  // namespace hlsmpc::mpi
