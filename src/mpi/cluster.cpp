#include "mpi/cluster.hpp"

#include <cstring>
#include <thread>

#include "mpi/coll_algo.hpp"
#include "obs/recorder.hpp"

namespace hlsmpc::mpi {

namespace {

/// Fabric context ids: user p2p and collective internals must not match
/// each other's messages.
constexpr int kP2pContext = 0;
constexpr int kCollContext = 1;

/// Per-call view of a cluster-global task as a node-local one: node-level
/// Comm calls derive the rank from ctx.task_id(), which must be the LOCAL
/// id there. Scheduling behaviour (yield, cooperativeness, schedule hook)
/// forwards to the real context, so blocking local collectives remain
/// explorable under the deterministic executor — its hook tracks the
/// running fiber itself and ignores the context object's identity.
class LocalCtx final : public ult::TaskContext {
 public:
  LocalCtx(ult::TaskContext& outer, int local_id) : outer_(&outer) {
    set_task_id(local_id);
    set_cpu(outer.cpu());
    set_schedule_hook(outer.schedule_hook());
  }
  void yield() override { outer_->yield(); }
  bool cooperative() const override { return outer_->cooperative(); }

 private:
  ult::TaskContext* outer_;
};

}  // namespace

// ---------------------------------------------------------------------------
// SimCluster

SimCluster::SimCluster(ClusterOptions opts)
    : opts_(opts), machine_(topo::Machine::nehalem_ex(2)) {
  if (opts_.nnodes <= 0 || opts_.ranks_per_node <= 0) {
    throw MpiError("SimCluster: nnodes and ranks_per_node must be positive");
  }
  SimFabricTransport::Options fo;
  fo.nranks = nranks();
  fo.ranks_per_node = opts_.ranks_per_node;
  fo.limits = opts_.fabric_limits;
  fabric_ = std::make_unique<SimFabricTransport>(fo);

  nodes_.reserve(static_cast<std::size_t>(opts_.nnodes));
  for (int n = 0; n < opts_.nnodes; ++n) {
    Options o;
    o.nranks = opts_.ranks_per_node;
    o.buffers = opts_.buffers;
    // The per-pair eager reservation model sizes buffers for the whole
    // job, exactly what total_ranks is for.
    o.total_ranks = nranks();
    o.coll = opts_.coll;
    // Node runtimes never record: their local task ids would collide
    // across nodes. Cluster-level recording uses global ids (obs()).
    o.obs = nullptr;
    nodes_.push_back(std::make_unique<Runtime>(machine_, o));
  }

  switch (opts_.executor) {
    case ExecutorKind::thread:
      executor_ = std::make_unique<ult::ThreadExecutor>();
      break;
    case ExecutorKind::fiber: {
      int workers = opts_.fiber_workers;
      if (workers <= 0) {
        const int hw =
            static_cast<int>(std::thread::hardware_concurrency());
        workers = std::min(machine_.num_cpus(), std::max(hw, 1));
      }
      auto fe = std::make_unique<ult::FiberExecutor>(workers);
#if HLSMPC_OBS_ENABLED
      fe->set_obs(opts_.obs);
#endif
      executor_ = std::move(fe);
      break;
    }
  }
  comm_ = std::make_unique<ClusterComm>(*this);
}

SimCluster::~SimCluster() = default;

Runtime& SimCluster::node_runtime(int node) {
  if (node < 0 || node >= opts_.nnodes) {
    throw MpiError("node_runtime: bad node " + std::to_string(node));
  }
  return *nodes_[static_cast<std::size_t>(node)];
}

void SimCluster::run(const Body& body) { run_on(*executor_, body); }

void SimCluster::run_on(ult::Executor& exec, const Body& body) {
  const int n = nranks();
  std::vector<int> pins(static_cast<std::size_t>(n));
  for (int g = 0; g < n; ++g) {
    pins[static_cast<std::size_t>(g)] =
        nodes_[static_cast<std::size_t>(g / opts_.ranks_per_node)]
            ->cpu_of_rank(g % opts_.ranks_per_node);
  }
  exec.run(n, pins, [&](ult::TaskContext& ctx) { body(*comm_, ctx); });
}

// ---------------------------------------------------------------------------
// ClusterComm

ClusterComm::ClusterComm(SimCluster& cluster)
    : cluster_(&cluster),
      fabric_(&cluster.fabric()),
      nnodes_(cluster.nnodes()),
      rpn_(cluster.ranks_per_node()),
      nranks_(cluster.nranks()),
      coll_seq_(static_cast<std::size_t>(cluster.nranks()), 0) {
  node_world_.reserve(static_cast<std::size_t>(nnodes_));
  for (int n = 0; n < nnodes_; ++n) {
    node_world_.push_back(&cluster.node_runtime(n).world());
  }
#if HLSMPC_OBS_ENABLED
  obs_ = cluster.obs();
#endif
}

Comm& ClusterComm::node_comm(int node) const {
  if (node < 0 || node >= nnodes_) {
    throw MpiError("node_comm: bad node " + std::to_string(node));
  }
  return *node_world_[static_cast<std::size_t>(node)];
}

int ClusterComm::next_coll_tag(int grank) {
  // Per-rank counters agree because all ranks enter collectives on this
  // comm in the same order (MPI requirement); wraparound is harmless, a
  // tag only disambiguates calls close in time.
  const std::uint32_t seq = coll_seq_[static_cast<std::size_t>(grank)]++;
  return static_cast<int>(seq & 0x7fffffffu);
}

void ClusterComm::check_alive(const char* what) const {
  const int d = fabric_->first_dead_node();
  if (d >= 0) {
    throw NodeDeadError(d, std::string(what) + ": node " +
                               std::to_string(d) + " unreachable");
  }
}

void ClusterComm::count_coll(int grank) {
#if HLSMPC_OBS_ENABLED
  if (obs_ != nullptr) obs_->count(grank, obs::Counter::coll_ops);
#else
  (void)grank;
#endif
}

// ---- global p2p ----

void ClusterComm::send(ult::TaskContext& ctx, const void* buf,
                       std::size_t bytes, int dst, int tag) {
  if (dst < 0 || dst >= nranks_) {
    throw MpiError("cluster send: bad rank " + std::to_string(dst));
  }
  if (tag < 0 || tag > kMaxUserTag) {
    throw MpiError("cluster send: bad tag " + std::to_string(tag));
  }
  const int me = rank(ctx);
  Request r = fabric_->isend(ctx, me, dst, dst, buf, bytes, tag, kP2pContext);
  transport_wait(ctx, r);
#if HLSMPC_OBS_ENABLED
  if (obs_ != nullptr) obs_->count(me, obs::Counter::net_sends);
#endif
}

void ClusterComm::recv(ult::TaskContext& ctx, void* buf, std::size_t capacity,
                       int src, int tag, Status* status) {
  if (src != kAnySource && (src < 0 || src >= nranks_)) {
    throw MpiError("cluster recv: bad rank " + std::to_string(src));
  }
  if (tag != kAnyTag && (tag < 0 || tag > kMaxUserTag)) {
    throw MpiError("cluster recv: bad tag " + std::to_string(tag));
  }
  const int me = rank(ctx);
  Request r = fabric_->irecv(ctx, me, buf, capacity, src, tag, kP2pContext);
  transport_wait(ctx, r, status);
#if HLSMPC_OBS_ENABLED
  if (obs_ != nullptr) obs_->count(me, obs::Counter::net_recvs);
#endif
}

// ---- leader-tier primitives ----

bool ClusterComm::coll_send(ult::TaskContext& ctx, int g_me, int dst_g,
                            const void* buf, std::size_t bytes, int tag) {
  try {
    Request r =
        fabric_->isend(ctx, g_me, dst_g, dst_g, buf, bytes, tag, kCollContext);
    transport_wait(ctx, r);
  } catch (const NodeDeadError&) {
    return false;
  } catch (const TransportError&) {
    // The link failed but the peer was not (yet) known dead: declare the
    // node we could not reach unreachable, so the whole job tears down
    // naming it (dead-rank supervision lifted to nodes).
    fabric_->kill_node(node_of(dst_g));
    return false;
  }
#if HLSMPC_OBS_ENABLED
  if (obs_ != nullptr) obs_->count(g_me, obs::Counter::net_sends);
#endif
  return true;
}

bool ClusterComm::coll_recv(ult::TaskContext& ctx, int g_me, int src_g,
                            void* buf, std::size_t capacity, int tag) {
  try {
    Request r = fabric_->irecv(ctx, g_me, buf, capacity, src_g, tag,
                               kCollContext);
    transport_wait(ctx, r);
  } catch (const NodeDeadError&) {
    return false;
  } catch (const TransportError&) {
    fabric_->kill_node(node_of(src_g));
    return false;
  }
#if HLSMPC_OBS_ENABLED
  if (obs_ != nullptr) obs_->count(g_me, obs::Counter::net_recvs);
#endif
  return true;
}

bool ClusterComm::leader_fold(ult::TaskContext& ctx, int node, void* acc,
                              std::size_t count, std::size_t elem_bytes,
                              const ReduceFn& fn, int tag) {
  // Binomial reduce tree in TRUE node order (the PR 5 contract lifted to
  // the leader tier): the lower node of each pair holds the fold of a
  // contiguous node range ending right before its partner's range, so it
  // applies the partner's partial as the RIGHT operand. Result lands at
  // node 0's leader.
  const int g_me = leader_of(node);
  const std::size_t bytes = count * elem_bytes;
  bool ok = true;
  std::vector<std::byte> partner(bytes);
  for (int mask = 1; mask < nnodes_; mask <<= 1) {
    if ((node & mask) != 0) {
      if (!coll_send(ctx, g_me, leader_of(node - mask), acc, bytes, tag)) {
        ok = false;
      }
      break;
    }
    const int src_node = node + mask;
    if (src_node < nnodes_) {
      if (coll_recv(ctx, g_me, leader_of(src_node), partner.data(), bytes,
                    tag)) {
        fn(acc, partner.data(), count);
      } else {
        ok = false;
      }
    }
  }
  return ok;
}

bool ClusterComm::leader_bcast(ult::TaskContext& ctx, int node, void* buf,
                               std::size_t bytes, int root_node, int tag) {
  // Binomial bcast over virtual node ids rotated so root_node is virtual
  // 0 (rotation is legal here: bcast has no fold order to preserve).
  const int g_me = leader_of(node);
  const int vme = (node - root_node + nnodes_) % nnodes_;
  bool ok = true;
  int mask = 1;
  while (mask < nnodes_) {
    if ((vme & mask) != 0) {
      const int src = (vme - mask + root_node) % nnodes_;
      if (!coll_recv(ctx, g_me, leader_of(src), buf, bytes, tag)) ok = false;
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vme + mask < nnodes_) {
      const int dst = (vme + mask + root_node) % nnodes_;
      if (!coll_send(ctx, g_me, leader_of(dst), buf, bytes, tag)) ok = false;
    }
    mask >>= 1;
  }
  return ok;
}

// ---- hierarchical collectives ----

void ClusterComm::barrier(ult::TaskContext& ctx) {
  const int g = rank(ctx);
  const int node = node_of(g);
  const int tag = next_coll_tag(g);
  count_coll(g);
  check_alive("cluster barrier");
  LocalCtx lctx(ctx, local_of(g));
  Comm& nc = node_comm(node);
  // Local arrival: after this, every rank of the node has entered.
  nc.barrier(lctx);
  if (local_of(g) == 0) {
    // Leader dissemination over nodes: after ceil(log2 N) rounds each
    // leader has transitively heard from every node.
    for (int step = 1; step < nnodes_; step <<= 1) {
      const int dst = coll::dissemination_dst(node, step, nnodes_);
      const int src = coll::dissemination_src(node, step, nnodes_);
      coll_send(ctx, g, leader_of(dst), nullptr, 0, tag);
      coll_recv(ctx, g, leader_of(src), nullptr, 0, tag);
    }
  }
  // Local release: nobody leaves before its leader heard from all nodes.
  nc.barrier(lctx);
  check_alive("cluster barrier");
}

void ClusterComm::bcast(ult::TaskContext& ctx, void* buf, std::size_t bytes,
                        int root) {
  if (root < 0 || root >= nranks_) {
    throw MpiError("cluster bcast: bad root " + std::to_string(root));
  }
  const int g = rank(ctx);
  const int node = node_of(g);
  const int root_node = node_of(root);
  const int tag = next_coll_tag(g);
  count_coll(g);
  check_alive("cluster bcast");
  LocalCtx lctx(ctx, local_of(g));
  Comm& nc = node_comm(node);
  if (node == root_node) {
    // Root's node first shares locally (this is what puts the payload in
    // the leader's hands), then its leader feeds the leader tier.
    nc.bcast(lctx, buf, bytes, local_of(root));
    if (local_of(g) == 0) {
      leader_bcast(ctx, node, buf, bytes, root_node, tag);
    }
  } else {
    if (local_of(g) == 0) {
      leader_bcast(ctx, node, buf, bytes, root_node, tag);
    }
    nc.bcast(lctx, buf, bytes, 0);
  }
  check_alive("cluster bcast");
}

void ClusterComm::reduce(ult::TaskContext& ctx, const void* sendbuf,
                         void* recvbuf, std::size_t count,
                         std::size_t elem_bytes, const ReduceFn& fn,
                         int root) {
  if (root < 0 || root >= nranks_) {
    throw MpiError("cluster reduce: bad root " + std::to_string(root));
  }
  const int g = rank(ctx);
  const int node = node_of(g);
  const int tag = next_coll_tag(g);
  const std::size_t bytes = count * elem_bytes;
  count_coll(g);
  check_alive("cluster reduce");
  LocalCtx lctx(ctx, local_of(g));
  Comm& nc = node_comm(node);

  // Local tier: fold the node's contributions (ascending local = ascending
  // global within the node) into the leader's partial.
  std::vector<std::byte> partial;
  if (local_of(g) == 0) partial.resize(bytes);
  nc.reduce(lctx, sendbuf, local_of(g) == 0 ? partial.data() : nullptr,
            count, elem_bytes, fn, 0);

  if (local_of(g) == 0) {
    // Leader tier: fold per-node partials to node 0 in true node order.
    leader_fold(ctx, node, partial.data(), count, elem_bytes, fn, tag);
    if (node == 0) {
      // Deliver node 0's folded total to the global root.
      if (g == root) {
        if (bytes > 0) std::memcpy(recvbuf, partial.data(), bytes);
      } else {
        coll_send(ctx, g, root, partial.data(), bytes, tag);
      }
    }
  }
  if (g == root && g != leader_of(0)) {
    coll_recv(ctx, g, leader_of(0), recvbuf, bytes, tag);
  }
  check_alive("cluster reduce");
}

void ClusterComm::allreduce(ult::TaskContext& ctx, const void* sendbuf,
                            void* recvbuf, std::size_t count,
                            std::size_t elem_bytes, const ReduceFn& fn) {
  const int g = rank(ctx);
  const int node = node_of(g);
  const int tag = next_coll_tag(g);
  count_coll(g);
  check_alive("cluster allreduce");
  LocalCtx lctx(ctx, local_of(g));
  Comm& nc = node_comm(node);

  // Local reduce into the leader's recvbuf, leader fold to node 0, leader
  // bcast of the total, local bcast — reduce+bcast with the leader's
  // recvbuf as the accumulator throughout, so no extra staging buffer.
  nc.reduce(lctx, sendbuf, local_of(g) == 0 ? recvbuf : nullptr, count,
            elem_bytes, fn, 0);
  if (local_of(g) == 0) {
    leader_fold(ctx, node, recvbuf, count, elem_bytes, fn, tag);
    leader_bcast(ctx, node, recvbuf, count * elem_bytes, 0, tag);
  }
  nc.bcast(lctx, recvbuf, count * elem_bytes, 0);
  check_alive("cluster allreduce");
}

void ClusterComm::allgather(ult::TaskContext& ctx, const void* sendbuf,
                            std::size_t bytes, void* recvbuf) {
  const int g = rank(ctx);
  const int node = node_of(g);
  const int tag = next_coll_tag(g);
  const std::size_t node_block = static_cast<std::size_t>(rpn_) * bytes;
  count_coll(g);
  check_alive("cluster allgather");
  LocalCtx lctx(ctx, local_of(g));
  Comm& nc = node_comm(node);

  auto* out = static_cast<std::byte*>(recvbuf);
  // Local tier: the leader gathers its node's block in place, at the
  // node's slot of the global-rank-ordered result.
  nc.gather(lctx, sendbuf, bytes,
            local_of(g) == 0 ? out + static_cast<std::size_t>(node) *
                                         node_block
                             : nullptr,
            0);
  if (local_of(g) == 0 && nnodes_ > 1) {
    // Leader tier: linear block exchange. Fabric sends complete
    // immediately (always-copy), so send-all-then-receive-all cannot
    // deadlock.
    for (int p = 0; p < nnodes_; ++p) {
      if (p == node) continue;
      coll_send(ctx, g, leader_of(p),
                out + static_cast<std::size_t>(node) * node_block,
                node_block, tag);
    }
    for (int p = 0; p < nnodes_; ++p) {
      if (p == node) continue;
      coll_recv(ctx, g, leader_of(p),
                out + static_cast<std::size_t>(p) * node_block, node_block,
                tag);
    }
  }
  // Local tier: share the assembled result.
  nc.bcast(lctx, recvbuf, static_cast<std::size_t>(nranks_) * bytes, 0);
  check_alive("cluster allgather");
}

}  // namespace hlsmpc::mpi
