#include "mpi/cluster.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <thread>

#include "fault/injector.hpp"
#include "mpi/coll_algo.hpp"
#include "obs/recorder.hpp"

#if HLSMPC_RECOVERY_ENABLED
#include "mpi/recover.hpp"
#endif

namespace hlsmpc::mpi {

namespace {

/// Fabric context ids: user p2p and collective internals must not match
/// each other's messages.
constexpr int kP2pContext = 0;
constexpr int kCollContext = 1;

/// Per-call view of a cluster-global task as a node-local one: node-level
/// Comm calls derive the rank from ctx.task_id(), which must be the LOCAL
/// id there. Scheduling behaviour (yield, cooperativeness, schedule hook)
/// forwards to the real context, so blocking local collectives remain
/// explorable under the deterministic executor — its hook tracks the
/// running fiber itself and ignores the context object's identity.
class LocalCtx final : public ult::TaskContext {
 public:
  LocalCtx(ult::TaskContext& outer, int local_id) : outer_(&outer) {
    set_task_id(local_id);
    set_cpu(outer.cpu());
    set_schedule_hook(outer.schedule_hook());
  }
  void yield() override { outer_->yield(); }
  bool cooperative() const override { return outer_->cooperative(); }

 private:
  ult::TaskContext* outer_;
};

}  // namespace

// ---------------------------------------------------------------------------
// SimCluster

SimCluster::SimCluster(ClusterOptions opts)
    : opts_(opts), machine_(topo::Machine::nehalem_ex(2)) {
  if (opts_.nnodes <= 0 || opts_.ranks_per_node <= 0) {
    throw MpiError("SimCluster: nnodes and ranks_per_node must be positive");
  }
  SimFabricTransport::Options fo;
  fo.nranks = nranks();
  fo.ranks_per_node = opts_.ranks_per_node;
  fo.limits = opts_.fabric_limits;
  fo.retry = opts_.fabric_retry;
  fo.obs = opts_.obs;
  fabric_ = std::make_unique<SimFabricTransport>(fo);

  nodes_.reserve(static_cast<std::size_t>(opts_.nnodes));
  for (int n = 0; n < opts_.nnodes; ++n) {
    Options o;
    o.nranks = opts_.ranks_per_node;
    o.buffers = opts_.buffers;
    // The per-pair eager reservation model sizes buffers for the whole
    // job, exactly what total_ranks is for.
    o.total_ranks = nranks();
    o.coll = opts_.coll;
    // Node runtimes never record: their local task ids would collide
    // across nodes. Cluster-level recording uses global ids (obs()).
    o.obs = nullptr;
    nodes_.push_back(std::make_unique<Runtime>(machine_, o));
  }

  switch (opts_.executor) {
    case ExecutorKind::thread:
      executor_ = std::make_unique<ult::ThreadExecutor>();
      break;
    case ExecutorKind::fiber: {
      int workers = opts_.fiber_workers;
      if (workers <= 0) {
        const int hw =
            static_cast<int>(std::thread::hardware_concurrency());
        workers = std::min(machine_.num_cpus(), std::max(hw, 1));
      }
      auto fe = std::make_unique<ult::FiberExecutor>(workers);
#if HLSMPC_OBS_ENABLED
      fe->set_obs(opts_.obs);
#endif
      executor_ = std::move(fe);
      break;
    }
  }
  comm_ = std::make_unique<ClusterComm>(*this);
}

SimCluster::~SimCluster() = default;

Runtime& SimCluster::node_runtime(int node) {
  if (node < 0 || node >= opts_.nnodes) {
    throw MpiError("node_runtime: bad node " + std::to_string(node));
  }
  return *nodes_[static_cast<std::size_t>(node)];
}

#if HLSMPC_RECOVERY_ENABLED
void SimCluster::respawn(int node) {
  if (node < 0 || node >= opts_.nnodes) {
    throw MpiError("respawn: bad node " + std::to_string(node));
  }
  if (!fabric_->node_dead(node)) {
    throw MpiError("respawn: node " + std::to_string(node) +
                   " is not dead");
  }
  if (fault::should_fail("cluster:respawn", node)) {
    throw MpiError("respawn: injected launch failure for node " +
                   std::to_string(node));
  }
  // A replacement process: brand-new runtime, empty storage — warm
  // restarts rehydrate it from a checkpoint inside the next run().
  Options o;
  o.nranks = opts_.ranks_per_node;
  o.buffers = opts_.buffers;
  o.total_ranks = nranks();
  o.coll = opts_.coll;
  o.obs = nullptr;
  nodes_[static_cast<std::size_t>(node)] =
      std::make_unique<Runtime>(machine_, o);
  fabric_->revive_node(node);
  comm_->readmit(node);
}
#endif  // HLSMPC_RECOVERY_ENABLED

void SimCluster::run(const Body& body) { run_on(*executor_, body); }

void SimCluster::run_on(ult::Executor& exec, const Body& body) {
  const int n = nranks();
  std::vector<int> pins(static_cast<std::size_t>(n));
  for (int g = 0; g < n; ++g) {
    pins[static_cast<std::size_t>(g)] =
        nodes_[static_cast<std::size_t>(g / opts_.ranks_per_node)]
            ->cpu_of_rank(g % opts_.ranks_per_node);
  }
  exec.run(n, pins, [&](ult::TaskContext& ctx) { body(*comm_, ctx); });
}

// ---------------------------------------------------------------------------
// ClusterComm

ClusterComm::ClusterComm(SimCluster& cluster)
    : cluster_(&cluster),
      fabric_(&cluster.fabric()),
      nnodes_(cluster.nnodes()),
      rpn_(cluster.ranks_per_node()),
      nranks_(cluster.nranks()),
      coll_seq_(static_cast<std::size_t>(cluster.nranks()), 0),
      shrink_round_timeout_(cluster.options().shrink_round_timeout) {
  node_world_.reserve(static_cast<std::size_t>(nnodes_));
  for (int n = 0; n < nnodes_; ++n) {
    node_world_.push_back(&cluster.node_runtime(n).world());
  }
  auto v = std::make_shared<View>();
  v->live.resize(static_cast<std::size_t>(nnodes_));
  std::iota(v->live.begin(), v->live.end(), 0);
  view_ = std::move(v);
  gate_ = std::make_unique<GateSlot[]>(static_cast<std::size_t>(nnodes_));
#if HLSMPC_OBS_ENABLED
  obs_ = cluster.obs();
#endif
}

Comm& ClusterComm::node_comm(int node) const {
  if (node < 0 || node >= nnodes_) {
    throw MpiError("node_comm: bad node " + std::to_string(node));
  }
  return *node_world_[static_cast<std::size_t>(node)];
}

int ClusterComm::pos_of(const View& v, int node) {
  const auto it = std::lower_bound(v.live.begin(), v.live.end(), node);
  if (it == v.live.end() || *it != node) return -1;
  return static_cast<int>(it - v.live.begin());
}

int ClusterComm::next_coll_tag(int grank, std::uint64_t epoch) {
  // Per-rank counters agree because all ranks enter collectives on this
  // comm in the same order (MPI requirement). The epoch in the high bits
  // keeps any straggler of a pre-shrink collective from matching a
  // post-shrink one; low-bits wraparound is harmless, a tag only
  // disambiguates calls close in time.
  const std::uint32_t seq = coll_seq_[static_cast<std::size_t>(grank)]++;
  return static_cast<int>(((static_cast<std::uint32_t>(epoch) & 0x7fu)
                           << 24) |
                          (seq & 0xffffffu));
}

void ClusterComm::node_gate(ult::TaskContext& lctx, Comm& nc, int node,
                            const char* what) {
  // Fused verdict: between two local barriers, the node's local rank 0
  // publishes the fabric's poison state and EVERY rank of the node acts
  // on that one value — so co-resident ranks all throw or all proceed,
  // and a throwing node is never stranded mid-local-phase. (The next
  // gate's opening barrier orders any later verdict write after every
  // read of this one, so one slot per node suffices.)
  nc.barrier(lctx);
  std::atomic<int>& v = gate_[static_cast<std::size_t>(node)].verdict;
  if (lctx.task_id() == 0) {
    v.store(fabric_->poisoned_node(), std::memory_order_release);
  }
  nc.barrier(lctx);
  const int dead = v.load(std::memory_order_acquire);
  if (dead >= 0) {
    throw NodeDeadError(dead, std::string(what) + ": node " +
                                  std::to_string(dead) + " unreachable");
  }
}

void ClusterComm::count_coll(int grank) {
#if HLSMPC_OBS_ENABLED
  if (obs_ != nullptr) obs_->count(grank, obs::Counter::coll_ops);
#else
  (void)grank;
#endif
}

// ---- global p2p ----

void ClusterComm::send(ult::TaskContext& ctx, const void* buf,
                       std::size_t bytes, int dst, int tag) {
  if (dst < 0 || dst >= nranks_) {
    throw MpiError("cluster send: bad rank " + std::to_string(dst));
  }
  if (tag < 0 || tag > kMaxUserTag) {
    throw MpiError("cluster send: bad tag " + std::to_string(tag));
  }
  const int me = rank(ctx);
  Request r = fabric_->isend(ctx, me, dst, dst, buf, bytes, tag, kP2pContext);
  transport_wait(ctx, r);
#if HLSMPC_OBS_ENABLED
  if (obs_ != nullptr) obs_->count(me, obs::Counter::net_sends);
#endif
}

void ClusterComm::recv(ult::TaskContext& ctx, void* buf, std::size_t capacity,
                       int src, int tag, Status* status) {
  if (src != kAnySource && (src < 0 || src >= nranks_)) {
    throw MpiError("cluster recv: bad rank " + std::to_string(src));
  }
  if (tag != kAnyTag && (tag < 0 || tag > kMaxUserTag)) {
    throw MpiError("cluster recv: bad tag " + std::to_string(tag));
  }
  const int me = rank(ctx);
  Request r = fabric_->irecv(ctx, me, buf, capacity, src, tag, kP2pContext);
  transport_wait(ctx, r, status);
#if HLSMPC_OBS_ENABLED
  if (obs_ != nullptr) obs_->count(me, obs::Counter::net_recvs);
#endif
}

// ---- leader-tier primitives ----

bool ClusterComm::coll_send(ult::TaskContext& ctx, int g_me, int dst_g,
                            const void* buf, std::size_t bytes, int tag) {
  try {
    Request r =
        fabric_->isend(ctx, g_me, dst_g, dst_g, buf, bytes, tag, kCollContext);
    transport_wait(ctx, r);
  } catch (const NodeDeadError& e) {
    // Re-arm the episode poison when the failure names a node that died
    // in an EARLIER, already-healed episode (kill_node re-poisons then;
    // it is a no-op while the naming episode is still open) — the gates
    // must see a verdict, or co-resident ranks would sail past.
    fabric_->kill_node(e.node());
    return false;
  } catch (const TransportError&) {
    // The link failed but the peer was not (yet) known dead: declare the
    // node we could not reach unreachable, so supervision names it
    // (dead-rank supervision lifted to nodes).
    fabric_->kill_node(node_of(dst_g));
    return false;
  }
#if HLSMPC_OBS_ENABLED
  if (obs_ != nullptr) obs_->count(g_me, obs::Counter::net_sends);
#endif
  return true;
}

bool ClusterComm::coll_recv(ult::TaskContext& ctx, int g_me, int src_g,
                            void* buf, std::size_t capacity, int tag) {
  try {
    Request r = fabric_->irecv(ctx, g_me, buf, capacity, src_g, tag,
                               kCollContext);
    transport_wait(ctx, r);
  } catch (const NodeDeadError& e) {
    fabric_->kill_node(e.node());
    return false;
  } catch (const TransportError&) {
    fabric_->kill_node(node_of(src_g));
    return false;
  }
#if HLSMPC_OBS_ENABLED
  if (obs_ != nullptr) obs_->count(g_me, obs::Counter::net_recvs);
#endif
  return true;
}

bool ClusterComm::leader_fold(ult::TaskContext& ctx, int pos, const View& v,
                              void* acc, std::size_t count,
                              std::size_t elem_bytes, const ReduceFn& fn,
                              int tag) {
  // Binomial reduce tree in TRUE live-position order (the PR 5 contract
  // lifted to the leader tier): the lower position of each pair holds the
  // fold of a contiguous survivor range ending right before its partner's
  // range, so it applies the partner's partial as the RIGHT operand.
  // Ascending position is ascending node id, so the result — landing at
  // live[0]'s leader — is the exact ascending-global-rank fold over the
  // surviving contributions.
  const int npos = static_cast<int>(v.live.size());
  const int g_me = leader_of(v.live[static_cast<std::size_t>(pos)]);
  const std::size_t bytes = count * elem_bytes;
  bool ok = true;
  std::vector<std::byte> partner(bytes);
  for (int mask = 1; mask < npos; mask <<= 1) {
    if ((pos & mask) != 0) {
      const int dst = v.live[static_cast<std::size_t>(pos - mask)];
      if (!coll_send(ctx, g_me, leader_of(dst), acc, bytes, tag)) {
        ok = false;
      }
      break;
    }
    const int src_pos = pos + mask;
    if (src_pos < npos) {
      const int src = v.live[static_cast<std::size_t>(src_pos)];
      if (coll_recv(ctx, g_me, leader_of(src), partner.data(), bytes, tag)) {
        fn(acc, partner.data(), count);
      } else {
        ok = false;
      }
    }
  }
  return ok;
}

bool ClusterComm::leader_bcast(ult::TaskContext& ctx, int pos, const View& v,
                               void* buf, std::size_t bytes, int root_pos,
                               int tag) {
  // Binomial bcast over virtual positions rotated so root_pos is virtual
  // 0 (rotation is legal here: bcast has no fold order to preserve).
  const int npos = static_cast<int>(v.live.size());
  const int g_me = leader_of(v.live[static_cast<std::size_t>(pos)]);
  const int vme = (pos - root_pos + npos) % npos;
  bool ok = true;
  int mask = 1;
  while (mask < npos) {
    if ((vme & mask) != 0) {
      const int src =
          v.live[static_cast<std::size_t>((vme - mask + root_pos) % npos)];
      if (!coll_recv(ctx, g_me, leader_of(src), buf, bytes, tag)) ok = false;
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vme + mask < npos) {
      const int dst =
          v.live[static_cast<std::size_t>((vme + mask + root_pos) % npos)];
      if (!coll_send(ctx, g_me, leader_of(dst), buf, bytes, tag)) ok = false;
    }
    mask >>= 1;
  }
  return ok;
}

// ---- hierarchical collectives ----

void ClusterComm::barrier(ult::TaskContext& ctx) {
  const int g = rank(ctx);
  const int node = node_of(g);
  count_coll(g);
  const auto view = snapshot_view();
  const int tag = next_coll_tag(g, view->epoch);
  const int pos = pos_of(*view, node);
  if (pos < 0) {
    throw NodeDeadError(node, "cluster barrier: node " +
                                  std::to_string(node) +
                                  " was excluded by shrink");
  }
  LocalCtx lctx(ctx, local_of(g));
  Comm& nc = node_comm(node);
  // The gates themselves provide local arrival and release, so the
  // barrier body is just the leader dissemination.
  node_gate(lctx, nc, node, "cluster barrier");
  if (local_of(g) == 0) {
    // Leader dissemination over live positions: after ceil(log2 N) rounds
    // each leader has transitively heard from every live node.
    const int npos = static_cast<int>(view->live.size());
    for (int step = 1; step < npos; step <<= 1) {
      const int dst = view->live[static_cast<std::size_t>(
          coll::dissemination_dst(pos, step, npos))];
      const int src = view->live[static_cast<std::size_t>(
          coll::dissemination_src(pos, step, npos))];
      coll_send(ctx, g, leader_of(dst), nullptr, 0, tag);
      coll_recv(ctx, g, leader_of(src), nullptr, 0, tag);
    }
  }
  node_gate(lctx, nc, node, "cluster barrier");
}

void ClusterComm::bcast(ult::TaskContext& ctx, void* buf, std::size_t bytes,
                        int root) {
  if (root < 0 || root >= nranks_) {
    throw MpiError("cluster bcast: bad root " + std::to_string(root));
  }
  const int g = rank(ctx);
  const int node = node_of(g);
  const int root_node = node_of(root);
  count_coll(g);
  const auto view = snapshot_view();
  const int tag = next_coll_tag(g, view->epoch);
  const int pos = pos_of(*view, node);
  if (pos < 0) {
    throw NodeDeadError(node, "cluster bcast: node " + std::to_string(node) +
                                  " was excluded by shrink");
  }
  const int root_pos = pos_of(*view, root_node);
  if (root_pos < 0) {
    throw NodeDeadError(root_node, "cluster bcast: root node " +
                                       std::to_string(root_node) +
                                       " was excluded by shrink");
  }
  LocalCtx lctx(ctx, local_of(g));
  Comm& nc = node_comm(node);
  node_gate(lctx, nc, node, "cluster bcast");
  if (node == root_node) {
    // Root's node first shares locally (this is what puts the payload in
    // the leader's hands), then its leader feeds the leader tier.
    nc.bcast(lctx, buf, bytes, local_of(root));
    if (local_of(g) == 0) {
      leader_bcast(ctx, pos, *view, buf, bytes, root_pos, tag);
    }
  } else {
    if (local_of(g) == 0) {
      leader_bcast(ctx, pos, *view, buf, bytes, root_pos, tag);
    }
    nc.bcast(lctx, buf, bytes, 0);
  }
  node_gate(lctx, nc, node, "cluster bcast");
}

void ClusterComm::reduce(ult::TaskContext& ctx, const void* sendbuf,
                         void* recvbuf, std::size_t count,
                         std::size_t elem_bytes, const ReduceFn& fn,
                         int root) {
  if (root < 0 || root >= nranks_) {
    throw MpiError("cluster reduce: bad root " + std::to_string(root));
  }
  const int g = rank(ctx);
  const int node = node_of(g);
  const std::size_t bytes = count * elem_bytes;
  count_coll(g);
  const auto view = snapshot_view();
  const int tag = next_coll_tag(g, view->epoch);
  const int pos = pos_of(*view, node);
  if (pos < 0) {
    throw NodeDeadError(node, "cluster reduce: node " + std::to_string(node) +
                                  " was excluded by shrink");
  }
  if (pos_of(*view, node_of(root)) < 0) {
    throw NodeDeadError(node_of(root), "cluster reduce: root node " +
                                           std::to_string(node_of(root)) +
                                           " was excluded by shrink");
  }
  LocalCtx lctx(ctx, local_of(g));
  Comm& nc = node_comm(node);
  node_gate(lctx, nc, node, "cluster reduce");

  // Local tier: fold the node's contributions (ascending local = ascending
  // global within the node) into the leader's partial.
  std::vector<std::byte> partial;
  if (local_of(g) == 0) partial.resize(bytes);
  nc.reduce(lctx, sendbuf, local_of(g) == 0 ? partial.data() : nullptr,
            count, elem_bytes, fn, 0);

  const int root_leader = leader_of(view->live[0]);
  if (local_of(g) == 0) {
    // Leader tier: fold live-node partials to live[0] in true position
    // order.
    leader_fold(ctx, pos, *view, partial.data(), count, elem_bytes, fn, tag);
    if (pos == 0) {
      // Deliver the folded total to the global root.
      if (g == root) {
        if (bytes > 0) std::memcpy(recvbuf, partial.data(), bytes);
      } else {
        coll_send(ctx, g, root, partial.data(), bytes, tag);
      }
    }
  }
  if (g == root && g != root_leader) {
    coll_recv(ctx, g, root_leader, recvbuf, bytes, tag);
  }
  node_gate(lctx, nc, node, "cluster reduce");
}

void ClusterComm::allreduce(ult::TaskContext& ctx, const void* sendbuf,
                            void* recvbuf, std::size_t count,
                            std::size_t elem_bytes, const ReduceFn& fn) {
  const int g = rank(ctx);
  const int node = node_of(g);
  count_coll(g);
  const auto view = snapshot_view();
  const int tag = next_coll_tag(g, view->epoch);
  const int pos = pos_of(*view, node);
  if (pos < 0) {
    throw NodeDeadError(node, "cluster allreduce: node " +
                                  std::to_string(node) +
                                  " was excluded by shrink");
  }
  LocalCtx lctx(ctx, local_of(g));
  Comm& nc = node_comm(node);
  node_gate(lctx, nc, node, "cluster allreduce");

  // Local reduce into the leader's recvbuf, leader fold to live[0],
  // leader bcast of the total, local bcast — reduce+bcast with the
  // leader's recvbuf as the accumulator throughout, so no extra staging
  // buffer.
  nc.reduce(lctx, sendbuf, local_of(g) == 0 ? recvbuf : nullptr, count,
            elem_bytes, fn, 0);
  if (local_of(g) == 0) {
    leader_fold(ctx, pos, *view, recvbuf, count, elem_bytes, fn, tag);
    leader_bcast(ctx, pos, *view, recvbuf, count * elem_bytes, 0, tag);
  }
  nc.bcast(lctx, recvbuf, count * elem_bytes, 0);
  node_gate(lctx, nc, node, "cluster allreduce");
}

void ClusterComm::allgather(ult::TaskContext& ctx, const void* sendbuf,
                            std::size_t bytes, void* recvbuf) {
  const int g = rank(ctx);
  const int node = node_of(g);
  const std::size_t node_block = static_cast<std::size_t>(rpn_) * bytes;
  count_coll(g);
  const auto view = snapshot_view();
  const int tag = next_coll_tag(g, view->epoch);
  const int pos = pos_of(*view, node);
  if (pos < 0) {
    throw NodeDeadError(node, "cluster allgather: node " +
                                  std::to_string(node) +
                                  " was excluded by shrink");
  }
  const int npos = static_cast<int>(view->live.size());
  LocalCtx lctx(ctx, local_of(g));
  Comm& nc = node_comm(node);
  node_gate(lctx, nc, node, "cluster allgather");

  auto* out = static_cast<std::byte*>(recvbuf);
  // Local tier: the leader gathers its node's block in place, at the
  // node's POSITION slot of the live-rank-ordered result (dead nodes
  // leave no gap — the output is compacted by survivor position).
  nc.gather(lctx, sendbuf, bytes,
            local_of(g) == 0
                ? out + static_cast<std::size_t>(pos) * node_block
                : nullptr,
            0);
  if (local_of(g) == 0 && npos > 1) {
    // Leader tier: linear block exchange. Fabric sends complete
    // immediately (always-copy), so send-all-then-receive-all cannot
    // deadlock.
    for (int p = 0; p < npos; ++p) {
      if (p == pos) continue;
      coll_send(ctx, g, leader_of(view->live[static_cast<std::size_t>(p)]),
                out + static_cast<std::size_t>(pos) * node_block, node_block,
                tag);
    }
    for (int p = 0; p < npos; ++p) {
      if (p == pos) continue;
      coll_recv(ctx, g, leader_of(view->live[static_cast<std::size_t>(p)]),
                out + static_cast<std::size_t>(p) * node_block, node_block,
                tag);
    }
  }
  // Local tier: share the assembled result.
  nc.bcast(lctx, recvbuf, static_cast<std::size_t>(npos) * node_block, 0);
  node_gate(lctx, nc, node, "cluster allgather");
}

// ---- shrink and recover ----

#if HLSMPC_RECOVERY_ENABLED

void ClusterComm::install_view(std::uint64_t expected_epoch,
                               std::uint64_t dead_mask) {
  std::lock_guard<std::mutex> lk(view_mu_);
  if (view_->epoch != expected_epoch) return;  // another leader won
  auto v = std::make_shared<View>();
  v->epoch = expected_epoch + 1;
  for (int n : view_->live) {
    if ((dead_mask >> n & 1u) == 0) v->live.push_back(n);
  }
  view_ = std::move(v);
}

ShrinkReport ClusterComm::shrink(ult::TaskContext& ctx) {
  const int g = rank(ctx);
  const int node = node_of(g);
  const auto view = snapshot_view();
  if (pos_of(*view, node) < 0) {
    throw NodeDeadError(node, "shrink: node " + std::to_string(node) +
                                  " was excluded by an earlier shrink");
  }
  LocalCtx lctx(ctx, local_of(g));
  Comm& nc = node_comm(node);
  // Sample the reset generation BEFORE the quiescing barrier: the leader
  // bumps it after the barrier, so sampling first guarantees every rank
  // holds the pre-shrink value and cannot miss the bump.
  std::atomic<std::uint32_t>& reset_gen =
      gate_[static_cast<std::size_t>(node)].reset_gen;
  const std::uint32_t gen0 = reset_gen.load(std::memory_order_acquire);
  // Quiesce the node: after this barrier every co-resident rank has
  // unwound from the failed collective (the gates guarantee they threw
  // together) and is inside shrink.
  nc.barrier(lctx);

  struct Pod {
    std::uint64_t mask = 0;
    std::uint64_t epoch = 0;
    std::int32_t attempts = 0;
    std::int32_t status = 0;  // 0 ok, 1 self declared dead, 2 no agreement
  } pod;
  if (local_of(g) == 0) {
    try {
      recover::FabricRecoveryChannel ch(*fabric_, node);
      recover::ShrinkConfig cfg;
      cfg.round_timeout = shrink_round_timeout_;
      cfg.epoch = static_cast<std::uint32_t>(view->epoch);
      const recover::ShrinkDecision dec =
          recover::shrink_agree(ctx, ch, node, view->live, cfg);
      install_view(view->epoch, dec.dead_mask);
      fabric_->heal(dec.dead_mask);
      // Rebuild the node's collective control blocks. The gates kept them
      // consistent (local phases never abort halfway), so this is a cheap
      // belt-and-suspenders re-zeroing, and it also clears any stale
      // intra-node unexpected traffic.
      cluster_->node_runtime(node).reset_collectives();
      pod.mask = dec.dead_mask;
      pod.epoch = view->epoch + 1;
      pod.attempts = dec.attempts;
#if HLSMPC_OBS_ENABLED
      if (obs_ != nullptr) {
        obs_->count(g, obs::Counter::recoveries);
        obs::Event e;
        e.kind = obs::EventKind::recovery;
        e.task = g;
        e.cpu = ctx.cpu();
        e.t0 = e.t1 = obs_->now();
        e.arg = static_cast<std::int64_t>(dec.dead_mask);
        e.arg2 = dec.attempts;
        obs_->record(e);
      }
#endif
    } catch (const NodeDeadError&) {
      pod.status = 1;
    } catch (const MpiError&) {
      pod.status = 2;
    }
    // Release the node only now: reset_collectives() is quiescent-only,
    // and without this gate a co-resident rank could already be waiting
    // inside the pod bcast when the engine is re-zeroed under it —
    // wiping its arrival and wedging the node. Bumped on the failure
    // paths too (no reset happened, but the waiters must still wake).
    reset_gen.store(gen0 + 1, std::memory_order_release);
  } else {
    while (reset_gen.load(std::memory_order_acquire) == gen0) {
      ctx.yield();
    }
  }
  nc.bcast(lctx, &pod, sizeof(pod), 0);
  nc.barrier(lctx);
  if (pod.status == 1) {
    throw NodeDeadError(node, "shrink: node " + std::to_string(node) +
                                  " was declared dead by the survivors");
  }
  if (pod.status == 2) {
    throw MpiError("shrink: agreement did not converge");
  }
  // Restart collective numbering under the new epoch — every survivor
  // rank resets its own counter here, inside the collective, so the
  // counters stay in lockstep.
  coll_seq_[static_cast<std::size_t>(g)] = 0;

  ShrinkReport rep;
  rep.epoch = pod.epoch;
  rep.dead_mask = pod.mask;
  rep.attempts = pod.attempts;
  for (int n : view->live) {
    if ((pod.mask >> n & 1u) == 0) rep.live.push_back(n);
  }
  return rep;
}

void ClusterComm::readmit(int node) {
  std::lock_guard<std::mutex> lk(view_mu_);
  auto v = std::make_shared<View>();
  v->epoch = view_->epoch + 1;
  v->live = view_->live;
  const auto it = std::lower_bound(v->live.begin(), v->live.end(), node);
  if (it == v->live.end() || *it != node) v->live.insert(it, node);
  view_ = std::move(v);
  // The respawned node's runtime is brand new — rebind its world comm.
  node_world_[static_cast<std::size_t>(node)] =
      &cluster_->node_runtime(node).world();
  // Everybody starts the next run with fresh collective numbering (the
  // epoch bump keeps any earlier traffic unmatchable anyway).
  std::fill(coll_seq_.begin(), coll_seq_.end(), 0);
}

#endif  // HLSMPC_RECOVERY_ENABLED

}  // namespace hlsmpc::mpi
