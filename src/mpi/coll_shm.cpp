#include "mpi/coll_shm.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <unordered_set>

#include "topo/scope_map.hpp"

namespace hlsmpc::mpi {

ShmCollEngine::ShmCollEngine(const topo::Machine& machine,
                             std::vector<int> rank_cpus, CollConfig cfg,
                             TransportStats* stats)
    : n_(static_cast<int>(rank_cpus.size())),
      cfg_(cfg),
      stats_(stats),
      slots_(rank_cpus.size()),
      priv_(rank_cpus.size()) {
  if (n_ < 2) {
    throw MpiError("ShmCollEngine: communicator needs >= 2 ranks");
  }
  for (int cpu : rank_cpus) {
    if (cpu < 0 || cpu >= machine.num_cpus()) {
      throw MpiError("ShmCollEngine: rank pinned outside the machine");
    }
  }
  Level flat;
  auto everyone = std::make_unique<Group>();
  everyone->members.resize(static_cast<std::size_t>(n_));
  std::iota(everyone->members.begin(), everyone->members.end(), 0);
  flat.groups.push_back(std::move(everyone));
  flat.group_of.assign(static_cast<std::size_t>(n_), 0);
  flat_.push_back(std::move(flat));
  hier_ = build_hier(machine, rank_cpus);
}

ShmCollEngine::Plan ShmCollEngine::build_hier(
    const topo::Machine& machine, const std::vector<int>& rank_cpus) const {
  const topo::DenseScopeTable scopes(machine);
  Plan plan;
  // Active ranks (ascending) still synchronizing at the current level, and
  // each rank's current representative: the leader whose ascent stands in
  // for it. group_of at every level is containment by this leader chain.
  std::vector<int> active(static_cast<std::size_t>(n_));
  std::iota(active.begin(), active.end(), 0);
  std::vector<int> lead(static_cast<std::size_t>(n_));
  std::iota(lead.begin(), lead.end(), 0);

  for (int sid : scopes.widening_chain()) {
    if (active.size() == 1) break;
    // Partition the active ranks by scope instance. The reduction folds
    // in ascending rank order, so a group must be a consecutive run of
    // active ranks — an instance that reappears after its run closed
    // (wrapped pinning) disqualifies the whole level.
    std::vector<std::vector<int>> cells;
    std::unordered_set<int> closed;
    int prev_inst = -1;
    bool contiguous = true;
    for (int r : active) {
      const int inst =
          scopes.instance_of(sid, rank_cpus[static_cast<std::size_t>(r)]);
      if (!cells.empty() && inst == prev_inst) {
        cells.back().push_back(r);
        continue;
      }
      if (closed.count(inst) != 0) {
        contiguous = false;
        break;
      }
      if (prev_inst != -1) closed.insert(prev_inst);
      cells.push_back({r});
      prev_inst = inst;
    }
    if (!contiguous) continue;
    if (cells.size() == active.size()) continue;  // nothing merged here

    Level lv;
    lv.group_of.assign(static_cast<std::size_t>(n_), -1);
    std::vector<int> cell_of_active(static_cast<std::size_t>(n_), -1);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      for (int r : cells[i]) {
        cell_of_active[static_cast<std::size_t>(r)] = static_cast<int>(i);
      }
      auto g = std::make_unique<Group>();
      g->members = cells[i];
      lv.groups.push_back(std::move(g));
    }
    std::vector<int> next_active;
    next_active.reserve(cells.size());
    for (const auto& cell : cells) next_active.push_back(cell.front());
    for (int r = 0; r < n_; ++r) {
      const int cell =
          cell_of_active[static_cast<std::size_t>(lead[static_cast<std::size_t>(r)])];
      lv.group_of[static_cast<std::size_t>(r)] = cell;
      lead[static_cast<std::size_t>(r)] = cells[static_cast<std::size_t>(cell)].front();
    }
    plan.push_back(std::move(lv));
    active = std::move(next_active);
  }

  if (plan.empty() || active.size() > 1) {
    // Defensive catch-all (the node scope always merges, so this is only
    // reachable if the chain itself degenerates): one top group of the
    // remaining representatives.
    Level lv;
    auto g = std::make_unique<Group>();
    g->members = active;
    lv.groups.push_back(std::move(g));
    lv.group_of.assign(static_cast<std::size_t>(n_), 0);
    plan.push_back(std::move(lv));
  }
  return plan;
}

std::vector<std::vector<int>> ShmCollEngine::level_groups(int level) const {
  const Level& lv = hier_.at(static_cast<std::size_t>(level));
  std::vector<std::vector<int>> out;
  out.reserve(lv.groups.size());
  for (const auto& g : lv.groups) out.push_back(g->members);
  return out;
}

std::uint64_t ShmCollEngine::begin(int me) {
  if (stats_ != nullptr) {
    stats_->shm_collectives.fetch_add(1, std::memory_order_relaxed);
  }
  // Every rank bumps on every collective (MPI's matched-call ordering
  // rule), so the private counter IS the publication sequence number every
  // peer expects — no shared counter, no negotiation.
  return ++priv_[static_cast<std::size_t>(me)].seq;
}

void ShmCollEngine::wait_seq(const std::atomic<std::uint64_t>& w,
                             std::uint64_t seq, ult::TaskContext& ctx) const {
  if (w.load(std::memory_order_acquire) >= seq) return;
  // Spin/yield only, never std::atomic::wait: publishers deliberately do
  // not notify (a futex wake per publication would dwarf the copy for
  // small payloads), so parking here could sleep forever.
  ult::Backoff backoff(ctx);
  while (w.load(std::memory_order_acquire) < seq) backoff.pause();
}

void ShmCollEngine::copy_bytes(void* dst, const void* src, std::size_t bytes) {
  if (dst == src) {
    if (stats_ != nullptr) {
      stats_->copies_elided.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  std::memcpy(dst, src, bytes);
  if (stats_ != nullptr) {
    stats_->shm_copied_bytes.fetch_add(bytes, std::memory_order_relaxed);
  }
}

const void* ShmCollEngine::publish_contrib(int me, const void* p,
                                           std::size_t bytes, bool stage,
                                           std::uint64_t seq) {
  Slot& s = slots_[static_cast<std::size_t>(me)];
  const void* pub = p;
  if (stage) {
    void* dst;
    if (bytes <= kInlineBytes) {
      dst = s.inline_buf;
    } else {
      auto& scratch = priv_[static_cast<std::size_t>(me)].scratch;
      if (scratch.size() < bytes) scratch.resize(bytes);
      dst = scratch.data();
    }
    copy_bytes(dst, p, bytes);
    pub = dst;
  }
  s.ptr.store(pub, std::memory_order_relaxed);
  // The release store orders the payload (and the ptr) before the sequence
  // word; wait_seq's acquire load on the other side completes the edge.
  s.seq.store(seq, std::memory_order_release);
  return pub;
}

void ShmCollEngine::publish_result(int me, const void* p, std::uint64_t seq) {
  Slot& s = slots_[static_cast<std::size_t>(me)];
  s.acc_ptr.store(p, std::memory_order_relaxed);
  s.acc_seq.store(seq, std::memory_order_release);
}

void ShmCollEngine::plan_barrier(Plan& plan, ult::TaskContext& ctx, int me) {
  const int levels = static_cast<int>(plan.size());
  int held = 0;  // levels [0, held) are claimed by this rank
  for (int l = 0; l < levels; ++l) {
    Level& lv = plan[l];
    Group& g = *lv.groups[static_cast<std::size_t>(
        lv.group_of[static_cast<std::size_t>(me)])];
    const bool top = (l + 1 == levels);
    const int expected = static_cast<int>(g.members.size());
    // Below the top the effective last arriver holds the episode open and
    // ascends; at the top it flips the sense, which is what releases the
    // whole tree (through the cascade below).
    const bool won =
        g.bar.arrive(ctx, [expected] { return expected; }, /*hold_last=*/!top);
    if (!won || top) break;
    held = l + 1;
  }
  // Release wide -> narrow. A rank freshly released from a level-l group
  // may immediately start the next collective's barrier and ascend; this
  // order guarantees every wider group on its path has already flipped, so
  // its new arrival never lands on a still-claimed episode (release()
  // would wipe it).
  for (int l = held - 1; l >= 0; --l) {
    Level& lv = plan[l];
    lv.groups[static_cast<std::size_t>(
                  lv.group_of[static_cast<std::size_t>(me)])]
        ->bar.release();
  }
}

std::byte* ShmCollEngine::plan_reduce(Plan& plan, ult::TaskContext& ctx,
                                      int me, const void* sendbuf,
                                      std::size_t count,
                                      std::size_t elem_bytes,
                                      const ReduceFn& fn, std::uint64_t seq,
                                      void* rank0_acc, bool stage) {
  const std::size_t bytes = count * elem_bytes;
  Level& leaf = plan[0];
  Group& g = *leaf.groups[static_cast<std::size_t>(
      leaf.group_of[static_cast<std::size_t>(me)])];
  if (me != g.members.front()) {
    // Non-leader: publish the contribution and leave; the caller's
    // completion barrier keeps sendbuf stable until the leader folded it.
    publish_contrib(me, sendbuf, bytes, stage, seq);
    return nullptr;
  }

  // Leaf leader: fold the group in ascending rank order, accumulator as
  // the left operand — the associative-only contract. Rank 0 may fold
  // straight into the caller's result buffer.
  std::byte* acc;
  if (rank0_acc != nullptr && me == 0) {
    acc = static_cast<std::byte*>(rank0_acc);
  } else {
    auto& scratch = priv_[static_cast<std::size_t>(me)].scratch;
    if (scratch.size() < bytes) scratch.resize(bytes);
    acc = scratch.data();
  }
  copy_bytes(acc, sendbuf, bytes);  // elided when acc == sendbuf
  for (std::size_t i = 1; i < g.members.size(); ++i) {
    const int r = g.members[i];
    const Slot& s = slots_[static_cast<std::size_t>(r)];
    wait_seq(s.seq, seq, ctx);
    fn(acc, peer_contrib(r), count);
  }

  // Ascend: at each wider level the cell's lowest rank keeps folding the
  // other representatives' partials (each a contiguous, adjacent rank
  // range, so ascending member order preserves global rank order); a
  // representative that is not its cell's leader publishes its partial
  // for the leader and stops.
  for (std::size_t l = 1; l < plan.size(); ++l) {
    Level& lv = plan[l];
    Group& cell = *lv.groups[static_cast<std::size_t>(
        lv.group_of[static_cast<std::size_t>(me)])];
    if (me != cell.members.front()) {
      publish_result(me, acc, seq);
      return nullptr;
    }
    for (std::size_t i = 1; i < cell.members.size(); ++i) {
      const int r = cell.members[i];
      const Slot& s = slots_[static_cast<std::size_t>(r)];
      wait_seq(s.acc_seq, seq, ctx);
      fn(acc, peer_result(r), count);
    }
  }
  // Only rank 0 can lead every level (leaders are group minima).
  publish_result(me, acc, seq);
  return acc;
}

void ShmCollEngine::barrier(ult::TaskContext& ctx, int me) {
  begin(me);
  plan_barrier(hier_, ctx, me);
}

void ShmCollEngine::bcast(ult::TaskContext& ctx, int me, void* buf,
                          std::size_t bytes, int root) {
  const std::uint64_t seq = begin(me);
  if (bytes == 0) return;
  const bool stage = select(bytes) == obs::CollAlg::shm_flat;
  if (me == root) {
    publish_contrib(me, buf, bytes, stage, seq);
    // Readers never wait for each other — the root alone absorbs the
    // completion by counting acknowledgements (cumulative across every
    // bcast this rank ever rooted; publication of the next one is gated
    // right here, so the counters stay aligned).
    Priv& p = priv_[static_cast<std::size_t>(me)];
    p.acks_expected += static_cast<std::uint64_t>(n_ - 1);
    wait_seq(slots_[static_cast<std::size_t>(me)].acks, p.acks_expected, ctx);
  } else {
    Slot& rs = slots_[static_cast<std::size_t>(root)];
    wait_seq(rs.seq, seq, ctx);
    copy_bytes(buf, peer_contrib(root), bytes);
    // Release RMW: the root's acquire of the final count sees every
    // reader's copy complete (release-sequence chain through the RMWs).
    rs.acks.fetch_add(1, std::memory_order_release);
  }
}

void ShmCollEngine::reduce(ult::TaskContext& ctx, int me, const void* sendbuf,
                           void* recvbuf, std::size_t count,
                           std::size_t elem_bytes, const ReduceFn& fn,
                           int root) {
  const std::uint64_t seq = begin(me);
  if (count == 0) return;
  const std::size_t bytes = count * elem_bytes;
  const obs::CollAlg alg = select(bytes);
  Plan& plan = plan_for(alg);
  void* rank0_acc = (me == 0 && root == 0) ? recvbuf : nullptr;
  plan_reduce(plan, ctx, me, sendbuf, count, elem_bytes, fn, seq, rank0_acc,
              alg == obs::CollAlg::shm_flat);
  if (me == root && root != 0) {
    const Slot& s0 = slots_[0];
    wait_seq(s0.acc_seq, seq, ctx);
    copy_bytes(recvbuf, peer_result(0), bytes);
  }
  plan_barrier(plan, ctx, me);
}

void ShmCollEngine::allreduce(ult::TaskContext& ctx, int me,
                              const void* sendbuf, void* recvbuf,
                              std::size_t count, std::size_t elem_bytes,
                              const ReduceFn& fn) {
  const std::uint64_t seq = begin(me);
  if (count == 0) return;
  const std::size_t bytes = count * elem_bytes;
  const obs::CollAlg alg = select(bytes);
  Plan& plan = plan_for(alg);
  void* rank0_acc = (me == 0) ? recvbuf : nullptr;
  plan_reduce(plan, ctx, me, sendbuf, count, elem_bytes, fn, seq, rank0_acc,
              alg == obs::CollAlg::shm_flat);
  if (me != 0) {
    // The acquire on rank 0's result sequence chains through every fold
    // that consumed this rank's sendbuf, so writing recvbuf here is safe
    // even when it aliases sendbuf.
    const Slot& s0 = slots_[0];
    wait_seq(s0.acc_seq, seq, ctx);
    copy_bytes(recvbuf, peer_result(0), bytes);
  }
  plan_barrier(plan, ctx, me);
}

void ShmCollEngine::allgather(ult::TaskContext& ctx, int me,
                              const void* sendbuf, std::size_t bytes,
                              void* recvbuf) {
  const std::uint64_t seq = begin(me);
  if (bytes == 0) return;
  const obs::CollAlg alg = select(bytes);
  publish_contrib(me, sendbuf, bytes, alg == obs::CollAlg::shm_flat, seq);
  std::byte* out = static_cast<std::byte*>(recvbuf);
  for (int r = 0; r < n_; ++r) {
    if (r == me) {
      copy_bytes(out + static_cast<std::size_t>(me) * bytes, sendbuf, bytes);
      continue;
    }
    const Slot& s = slots_[static_cast<std::size_t>(r)];
    wait_seq(s.seq, seq, ctx);
    copy_bytes(out + static_cast<std::size_t>(r) * bytes, peer_contrib(r),
               bytes);
  }
  plan_barrier(plan_for(alg), ctx, me);
}

void ShmCollEngine::alltoall(ult::TaskContext& ctx, int me,
                             const void* sendbuf, std::size_t bytes_per_rank,
                             void* recvbuf) {
  const std::uint64_t seq = begin(me);
  if (bytes_per_rank == 0) return;
  const std::size_t total = bytes_per_rank * static_cast<std::size_t>(n_);
  const obs::CollAlg alg = select(total);
  publish_contrib(me, sendbuf, total, alg == obs::CollAlg::shm_flat, seq);
  const std::byte* own = static_cast<const std::byte*>(sendbuf);
  std::byte* out = static_cast<std::byte*>(recvbuf);
  const std::size_t mine = static_cast<std::size_t>(me) * bytes_per_rank;
  for (int r = 0; r < n_; ++r) {
    const std::size_t block = static_cast<std::size_t>(r) * bytes_per_rank;
    if (r == me) {
      copy_bytes(out + mine, own + mine, bytes_per_rank);
      continue;
    }
    const Slot& s = slots_[static_cast<std::size_t>(r)];
    wait_seq(s.seq, seq, ctx);
    copy_bytes(out + block,
               static_cast<const std::byte*>(peer_contrib(r)) + mine,
               bytes_per_rank);
  }
  plan_barrier(plan_for(alg), ctx, me);
}

void ShmCollEngine::scan(ult::TaskContext& ctx, int me, const void* sendbuf,
                         void* recvbuf, std::size_t count,
                         std::size_t elem_bytes, const ReduceFn& fn) {
  const std::uint64_t seq = begin(me);
  if (count == 0) return;
  const std::size_t bytes = count * elem_bytes;
  const obs::CollAlg alg = select(bytes);
  // Always staged: each rank folds into recvbuf, which MPI allows to alias
  // sendbuf — peers must read the pre-fold snapshot.
  publish_contrib(me, sendbuf, bytes, /*stage=*/true, seq);
  if (me == 0) {
    copy_bytes(recvbuf, sendbuf, bytes);  // elided in-place
  } else {
    const Slot& s0 = slots_[0];
    wait_seq(s0.seq, seq, ctx);
    copy_bytes(recvbuf, peer_contrib(0), bytes);
    for (int r = 1; r <= me; ++r) {
      const Slot& s = slots_[static_cast<std::size_t>(r)];
      wait_seq(s.seq, seq, ctx);
      fn(recvbuf, peer_contrib(r), count);
    }
  }
  plan_barrier(plan_for(alg), ctx, me);
}

void ShmCollEngine::exscan(ult::TaskContext& ctx, int me, const void* sendbuf,
                           void* recvbuf, std::size_t count,
                           std::size_t elem_bytes, const ReduceFn& fn) {
  const std::uint64_t seq = begin(me);
  if (count == 0) return;
  const std::size_t bytes = count * elem_bytes;
  const obs::CollAlg alg = select(bytes);
  publish_contrib(me, sendbuf, bytes, /*stage=*/true, seq);
  // Rank 0's recvbuf is undefined for exscan and stays untouched.
  if (me > 0) {
    const Slot& s0 = slots_[0];
    wait_seq(s0.seq, seq, ctx);
    copy_bytes(recvbuf, peer_contrib(0), bytes);
    for (int r = 1; r < me; ++r) {
      const Slot& s = slots_[static_cast<std::size_t>(r)];
      wait_seq(s.seq, seq, ctx);
      fn(recvbuf, peer_contrib(r), count);
    }
  }
  plan_barrier(plan_for(alg), ctx, me);
}

void ShmCollEngine::reduce_scatter_block(ult::TaskContext& ctx, int me,
                                         const void* sendbuf, void* recvbuf,
                                         std::size_t count,
                                         std::size_t elem_bytes,
                                         const ReduceFn& fn) {
  const std::uint64_t seq = begin(me);
  if (count == 0) return;
  const std::size_t total = count * static_cast<std::size_t>(n_);
  const std::size_t block_bytes = count * elem_bytes;
  const obs::CollAlg alg = select(total * elem_bytes);
  Plan& plan = plan_for(alg);
  const std::byte* acc =
      plan_reduce(plan, ctx, me, sendbuf, total, elem_bytes, fn, seq,
                  /*rank0_acc=*/nullptr, alg == obs::CollAlg::shm_flat);
  if (acc == nullptr) {
    const Slot& s0 = slots_[0];
    wait_seq(s0.acc_seq, seq, ctx);
    acc = static_cast<const std::byte*>(peer_result(0));
  }
  copy_bytes(recvbuf, acc + static_cast<std::size_t>(me) * block_bytes,
             block_bytes);
  plan_barrier(plan, ctx, me);
}

}  // namespace hlsmpc::mpi
