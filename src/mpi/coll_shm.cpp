#include "mpi/coll_shm.hpp"

#if HLSMPC_COLL_SHM_ENABLED

#include <algorithm>
#include <cstring>
#include <limits>
#include <numeric>
#include <unordered_set>

#include "topo/scope_map.hpp"

namespace hlsmpc::mpi {

ShmCollEngine::ShmCollEngine(const topo::Machine& machine,
                             std::vector<int> rank_cpus, CollConfig cfg,
                             TransportStats* stats)
    : n_(static_cast<int>(rank_cpus.size())),
      cfg_(cfg),
      stats_(stats),
      slots_(rank_cpus.size()),
      priv_(rank_cpus.size()) {
  if (n_ < 2) {
    throw MpiError("ShmCollEngine: communicator needs >= 2 ranks");
  }
  for (int cpu : rank_cpus) {
    if (cpu < 0 || cpu >= machine.num_cpus()) {
      throw MpiError("ShmCollEngine: rank pinned outside the machine");
    }
  }
#if !HLSMPC_COLL_PIPELINE_ENABLED
  // Pipeline kill switch: no payload is ever strictly above SIZE_MAX, so
  // the selector degenerates to the two-way staged/zero-copy choice.
  cfg_.pipeline_threshold = std::numeric_limits<std::size_t>::max();
#endif
  if (cfg_.fragment_bytes == 0) cfg_.fragment_bytes = 1;
  Level flat;
  auto everyone = std::make_unique<Group>();
  everyone->members.resize(static_cast<std::size_t>(n_));
  std::iota(everyone->members.begin(), everyone->members.end(), 0);
  flat.groups.push_back(std::move(everyone));
  flat.group_of.assign(static_cast<std::size_t>(n_), 0);
  flat_.push_back(std::move(flat));
  hier_ = build_hier(machine, rank_cpus);
}

ShmCollEngine::Plan ShmCollEngine::build_hier(
    const topo::Machine& machine, const std::vector<int>& rank_cpus) const {
  const topo::DenseScopeTable scopes(machine);
  Plan plan;
  // Active ranks (ascending) still synchronizing at the current level, and
  // each rank's current representative: the leader whose ascent stands in
  // for it. group_of at every level is containment by this leader chain.
  std::vector<int> active(static_cast<std::size_t>(n_));
  std::iota(active.begin(), active.end(), 0);
  std::vector<int> lead(static_cast<std::size_t>(n_));
  std::iota(lead.begin(), lead.end(), 0);

  for (int sid : scopes.widening_chain()) {
    if (active.size() == 1) break;
    // Partition the active ranks by scope instance. The reduction folds
    // in ascending rank order, so a group must be a consecutive run of
    // active ranks — an instance that reappears after its run closed
    // (wrapped pinning) disqualifies the whole level.
    std::vector<std::vector<int>> cells;
    std::unordered_set<int> closed;
    int prev_inst = -1;
    bool contiguous = true;
    for (int r : active) {
      const int inst =
          scopes.instance_of(sid, rank_cpus[static_cast<std::size_t>(r)]);
      if (!cells.empty() && inst == prev_inst) {
        cells.back().push_back(r);
        continue;
      }
      if (closed.count(inst) != 0) {
        contiguous = false;
        break;
      }
      if (prev_inst != -1) closed.insert(prev_inst);
      cells.push_back({r});
      prev_inst = inst;
    }
    if (!contiguous) continue;
    if (cells.size() == active.size()) continue;  // nothing merged here

    Level lv;
    lv.group_of.assign(static_cast<std::size_t>(n_), -1);
    std::vector<int> cell_of_active(static_cast<std::size_t>(n_), -1);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      for (int r : cells[i]) {
        cell_of_active[static_cast<std::size_t>(r)] = static_cast<int>(i);
      }
      auto g = std::make_unique<Group>();
      g->members = cells[i];
      lv.groups.push_back(std::move(g));
    }
    std::vector<int> next_active;
    next_active.reserve(cells.size());
    for (const auto& cell : cells) next_active.push_back(cell.front());
    for (int r = 0; r < n_; ++r) {
      const int cell =
          cell_of_active[static_cast<std::size_t>(lead[static_cast<std::size_t>(r)])];
      lv.group_of[static_cast<std::size_t>(r)] = cell;
      lead[static_cast<std::size_t>(r)] = cells[static_cast<std::size_t>(cell)].front();
    }
    plan.push_back(std::move(lv));
    active = std::move(next_active);
  }

  if (plan.empty() || active.size() > 1) {
    // Defensive catch-all (the node scope always merges, so this is only
    // reachable if the chain itself degenerates): one top group of the
    // remaining representatives.
    Level lv;
    auto g = std::make_unique<Group>();
    g->members = active;
    lv.groups.push_back(std::move(g));
    lv.group_of.assign(static_cast<std::size_t>(n_), 0);
    plan.push_back(std::move(lv));
  }
  return plan;
}

std::vector<std::vector<int>> ShmCollEngine::level_groups(int level) const {
  const Level& lv = hier_.at(static_cast<std::size_t>(level));
  std::vector<std::vector<int>> out;
  out.reserve(lv.groups.size());
  for (const auto& g : lv.groups) out.push_back(g->members);
  return out;
}

ShmCollEngine::FragGeom ShmCollEngine::frag_geom(std::size_t count,
                                                 std::size_t elem_bytes) const {
  FragGeom g;
  if (count == 0) return g;
  std::size_t fe =
      elem_bytes != 0 ? cfg_.fragment_bytes / elem_bytes : cfg_.fragment_bytes;
  if (fe == 0) fe = 1;  // one oversized element per fragment
  if (fe > count) fe = count;
  g.frag_elems = fe;
  g.nfrags = static_cast<std::uint32_t>((count + fe - 1) / fe);
  return g;
}

void ShmCollEngine::invalidate_registrations() {
  for (Priv& p : priv_) {
    for (Registration& r : p.reg) r = Registration{};
    p.reg_stamp = 0;
    p.reg_cpu = -1;
  }
}

void ShmCollEngine::reset() {
  // Quiescent callers only: every rank's publication/consumption of the
  // previous collective has completed (ClusterComm::shrink brackets this
  // with local barriers, which also order these plain writes against the
  // ranks' later accesses).
  for (Slot& s : slots_) {
    s.seq.store(0, std::memory_order_relaxed);
    s.ptr.store(nullptr, std::memory_order_relaxed);
    s.acc_seq.store(0, std::memory_order_relaxed);
    s.acc_ptr.store(nullptr, std::memory_order_relaxed);
    s.acks.store(0, std::memory_order_relaxed);
    s.frag.store(0, std::memory_order_relaxed);
    s.acc_frag.store(0, std::memory_order_relaxed);
  }
  for (Priv& p : priv_) {
    p.seq = 0;
    p.acks_expected = 0;
    p.frag_base = 0;
  }
  invalidate_registrations();
}

ShmCollEngine::Registration& ShmCollEngine::resolve_registration(
    ult::TaskContext& ctx, int me, const void* addr, std::size_t count,
    std::size_t elem_bytes) {
  Priv& p = priv_[static_cast<std::size_t>(me)];
  if (p.reg_cpu != ctx.cpu()) {
    // First lookup, or the rank migrated since these entries were
    // resolved: the attach blocks are warm in another CPU's cache domain,
    // so flush the whole set — the invalidate-on-migrate discipline of
    // the per-task address cache.
    for (Registration& r : p.reg) r = Registration{};
    p.reg_cpu = ctx.cpu();
  }
  Registration* victim = &p.reg[0];
  for (Registration& r : p.reg) {
    if (r.stamp != 0 && r.addr == addr && r.count == count &&
        r.elem_bytes == elem_bytes) {
      r.stamp = ++p.reg_stamp;
      if (stats_ != nullptr) {
        stats_->reg_cache_hits.fetch_add(1, std::memory_order_relaxed);
      }
      return r;
    }
    if (r.stamp < victim->stamp) victim = &r;
  }
  if (stats_ != nullptr) {
    stats_->reg_cache_misses.fetch_add(1, std::memory_order_relaxed);
  }
  // Evict the least-recently-used way but keep its block's capacity: the
  // storage is what the cache exists to keep stable.
  victim->addr = addr;
  victim->count = count;
  victim->elem_bytes = elem_bytes;
  victim->geom = frag_geom(count, elem_bytes);
  victim->stamp = ++p.reg_stamp;
  return *victim;
}

std::byte* ShmCollEngine::reg_block(Registration& reg, std::size_t bytes) {
  if (reg.block.size() < bytes) reg.block.resize(bytes);
  return reg.block.data();
}

std::uint64_t ShmCollEngine::begin(int me) {
  if (stats_ != nullptr) {
    stats_->shm_collectives.fetch_add(1, std::memory_order_relaxed);
  }
  // Every rank bumps on every collective (MPI's matched-call ordering
  // rule), so the private counter IS the publication sequence number every
  // peer expects — no shared counter, no negotiation.
  return ++priv_[static_cast<std::size_t>(me)].seq;
}

ShmCollEngine::FragGeom ShmCollEngine::begin_pipelined(
    std::size_t count, std::size_t elem_bytes) {
  if (stats_ != nullptr) {
    stats_->shm_pipelined_collectives.fetch_add(1, std::memory_order_relaxed);
  }
  return frag_geom(count, elem_bytes);
}

void ShmCollEngine::wait_seq(const std::atomic<std::uint64_t>& w,
                             std::uint64_t seq, ult::TaskContext& ctx) const {
  if (w.load(std::memory_order_acquire) >= seq) return;
  // Spin/yield only, never std::atomic::wait: publishers deliberately do
  // not notify (a futex wake per publication would dwarf the copy for
  // small payloads), so parking here could sleep forever.
  ult::Backoff backoff(ctx);
  while (w.load(std::memory_order_acquire) < seq) backoff.pause();
}

void ShmCollEngine::copy_bytes(void* dst, const void* src, std::size_t bytes) {
  if (dst == src) {
    if (stats_ != nullptr) {
      stats_->copies_elided.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  std::memcpy(dst, src, bytes);
  if (stats_ != nullptr) {
    stats_->shm_copied_bytes.fetch_add(bytes, std::memory_order_relaxed);
  }
}

const void* ShmCollEngine::publish_contrib(int me, const void* p,
                                           std::size_t bytes, bool stage,
                                           std::uint64_t seq) {
  Slot& s = slots_[static_cast<std::size_t>(me)];
  const void* pub = p;
  if (stage) {
    void* dst;
    if (bytes <= kInlineBytes) {
      dst = s.inline_buf;
    } else {
      auto& scratch = priv_[static_cast<std::size_t>(me)].scratch;
      if (scratch.size() < bytes) scratch.resize(bytes);
      dst = scratch.data();
    }
    copy_bytes(dst, p, bytes);
    pub = dst;
  }
  s.ptr.store(pub, std::memory_order_relaxed);
  // The release store orders the payload (and the ptr) before the sequence
  // word; wait_seq's acquire load on the other side completes the edge.
  s.seq.store(seq, std::memory_order_release);
  return pub;
}

void ShmCollEngine::publish_result(int me, const void* p, std::uint64_t seq) {
  Slot& s = slots_[static_cast<std::size_t>(me)];
  s.acc_ptr.store(p, std::memory_order_relaxed);
  s.acc_seq.store(seq, std::memory_order_release);
}

void ShmCollEngine::publish_frag(ult::TaskContext& ctx,
                                 std::atomic<std::uint64_t>& w,
                                 std::uint64_t value) {
  // Explorer preemption point between producing a fragment and making it
  // visible — ScheduleExplorer sweeps fragment publication orders through
  // here (and a mutation that hoists the store above the production is
  // exactly the seeded bug the explorer test catches).
  ctx.sync_point("coll:frag-publish");
  w.store(value, std::memory_order_release);
}

void ShmCollEngine::count_frags(std::uint32_t nfrags) {
  // One batched bump per call instead of one atomic RMW per published
  // fragment: the stat sits on the producer's critical path.
  if (stats_ != nullptr && nfrags != 0) {
    stats_->shm_fragments.fetch_add(nfrags, std::memory_order_relaxed);
  }
}

void ShmCollEngine::drain_frags(ult::TaskContext& ctx,
                                const std::atomic<std::uint64_t>& w,
                                std::uint64_t base, const FragGeom& geom,
                                std::size_t elem_bytes, std::size_t bytes,
                                const std::atomic<const void*>& srcp,
                                std::byte* dst) {
  std::uint32_t f = 0;
  wait_seq(w, base + 1, ctx);
  // Only now is the producer's pointer store visible (it precedes the
  // first release in program order); loading it before the acquire would
  // read null or a stale registration from an earlier call.
  const std::byte* src =
      static_cast<const std::byte*>(srcp.load(std::memory_order_relaxed));
  while (f < geom.nfrags) {
    wait_seq(w, base + f + 1, ctx);
    // Everything the producer has published by now is consumed as one
    // contiguous span (the acquire above orders the payload reads).
    std::uint64_t avail = w.load(std::memory_order_acquire) - base;
    if (avail > geom.nfrags) avail = geom.nfrags;
    const std::size_t off =
        static_cast<std::size_t>(f) * geom.frag_elems * elem_bytes;
    const std::size_t end = std::min(
        bytes, static_cast<std::size_t>(avail) * geom.frag_elems * elem_bytes);
    copy_bytes(dst + off, src + off, end - off);
    f = static_cast<std::uint32_t>(avail);
  }
}

void ShmCollEngine::plan_barrier(Plan& plan, ult::TaskContext& ctx, int me) {
  const int levels = static_cast<int>(plan.size());
  int held = 0;  // levels [0, held) are claimed by this rank
  for (int l = 0; l < levels; ++l) {
    Level& lv = plan[l];
    Group& g = *lv.groups[static_cast<std::size_t>(
        lv.group_of[static_cast<std::size_t>(me)])];
    const bool top = (l + 1 == levels);
    const int expected = static_cast<int>(g.members.size());
    // Below the top the effective last arriver holds the episode open and
    // ascends; at the top it flips the sense, which is what releases the
    // whole tree (through the cascade below).
    const bool won =
        g.bar.arrive(ctx, [expected] { return expected; }, /*hold_last=*/!top);
    if (!won || top) break;
    held = l + 1;
  }
  // Release wide -> narrow. A rank freshly released from a level-l group
  // may immediately start the next collective's barrier and ascend; this
  // order guarantees every wider group on its path has already flipped, so
  // its new arrival never lands on a still-claimed episode (release()
  // would wipe it).
  for (int l = held - 1; l >= 0; --l) {
    Level& lv = plan[l];
    lv.groups[static_cast<std::size_t>(
                  lv.group_of[static_cast<std::size_t>(me)])]
        ->bar.release();
  }
}

std::byte* ShmCollEngine::plan_reduce(Plan& plan, ult::TaskContext& ctx,
                                      int me, const void* sendbuf,
                                      std::size_t count,
                                      std::size_t elem_bytes,
                                      const ReduceFn& fn, std::uint64_t seq,
                                      void* rank0_acc, bool stage) {
  const std::size_t bytes = count * elem_bytes;
  Level& leaf = plan[0];
  Group& g = *leaf.groups[static_cast<std::size_t>(
      leaf.group_of[static_cast<std::size_t>(me)])];
  if (me != g.members.front()) {
    // Non-leader: publish the contribution and leave; the caller's
    // completion barrier keeps sendbuf stable until the leader folded it.
    publish_contrib(me, sendbuf, bytes, stage, seq);
    return nullptr;
  }

  // Leaf leader: fold the group in ascending rank order, accumulator as
  // the left operand — the associative-only contract. Rank 0 may fold
  // straight into the caller's result buffer.
  std::byte* acc;
  if (rank0_acc != nullptr && me == 0) {
    acc = static_cast<std::byte*>(rank0_acc);
  } else {
    auto& scratch = priv_[static_cast<std::size_t>(me)].scratch;
    if (scratch.size() < bytes) scratch.resize(bytes);
    acc = scratch.data();
  }
  copy_bytes(acc, sendbuf, bytes);  // elided when acc == sendbuf
  for (std::size_t i = 1; i < g.members.size(); ++i) {
    const int r = g.members[i];
    const Slot& s = slots_[static_cast<std::size_t>(r)];
    wait_seq(s.seq, seq, ctx);
    fn(acc, peer_contrib(r), count);
  }

  // Ascend: at each wider level the cell's lowest rank keeps folding the
  // other representatives' partials (each a contiguous, adjacent rank
  // range, so ascending member order preserves global rank order); a
  // representative that is not its cell's leader publishes its partial
  // for the leader and stops.
  for (std::size_t l = 1; l < plan.size(); ++l) {
    Level& lv = plan[l];
    Group& cell = *lv.groups[static_cast<std::size_t>(
        lv.group_of[static_cast<std::size_t>(me)])];
    if (me != cell.members.front()) {
      publish_result(me, acc, seq);
      return nullptr;
    }
    for (std::size_t i = 1; i < cell.members.size(); ++i) {
      const int r = cell.members[i];
      const Slot& s = slots_[static_cast<std::size_t>(r)];
      wait_seq(s.acc_seq, seq, ctx);
      fn(acc, peer_result(r), count);
    }
  }
  // Only rank 0 can lead every level (leaders are group minima).
  publish_result(me, acc, seq);
  return acc;
}

std::uint32_t ShmCollEngine::yield_stride(const FragGeom& geom,
                                          std::size_t elem_bytes) const {
  if (!cfg_.pipeline_yield) return 0;
  constexpr std::size_t kYieldWindowBytes = 128 * 1024;
  const std::size_t frag_bytes =
      std::max<std::size_t>(geom.frag_elems * elem_bytes, 1);
  return static_cast<std::uint32_t>(
      std::max<std::size_t>(kYieldWindowBytes / frag_bytes, 1));
}

std::byte* ShmCollEngine::plan_reduce_pipelined(ult::TaskContext& ctx, int me,
                                                const void* sendbuf,
                                                std::size_t count,
                                                std::size_t elem_bytes,
                                                const ReduceFn& fn,
                                                void* rank0_acc) {
  // Pipelined reductions always run over the topology tree: the overlap
  // comes from a leader forwarding fragment f up a level while the level
  // below still folds fragment f+1.
  Plan& plan = hier_;
  const std::size_t bytes = count * elem_bytes;
  const FragGeom geom = frag_geom(count, elem_bytes);
  const std::uint32_t ystride = yield_stride(geom, elem_bytes);
  const std::uint64_t base = priv_[static_cast<std::size_t>(me)].frag_base;
  Slot& my = slots_[static_cast<std::size_t>(me)];

  Level& leaf = plan[0];
  Group& g = *leaf.groups[static_cast<std::size_t>(
      leaf.group_of[static_cast<std::size_t>(me)])];
  if (me != g.members.front()) {
    // Non-leader: the whole send buffer is ready at entry, so publish the
    // pointer and every fragment with a single release store of the final
    // fragment value (covering values are satisfied by wait_seq's `>=`).
    // The completion barrier keeps sendbuf stable until folded.
    my.ptr.store(sendbuf, std::memory_order_relaxed);
    publish_frag(ctx, my.frag, base + geom.nfrags);
    count_frags(geom.nfrags);
    return nullptr;
  }

  // Leaf leader: fold fragment by fragment — inside a fragment the fold
  // is the usual ascending rank order with the accumulator as the left
  // operand (associative-only contract), and a completed accumulator
  // fragment is release-published immediately so the cell leader one
  // level up forwards it while this rank folds the next one. Rank 0
  // folds straight into the caller's result buffer; other leaders fold
  // into the send buffer's registered attach block (stable across calls,
  // so repeated collectives on one buffer reuse warm storage).
  std::byte* acc;
  if (rank0_acc != nullptr && me == 0) {
    acc = static_cast<std::byte*>(rank0_acc);
  } else {
    Registration& reg =
        resolve_registration(ctx, me, sendbuf, count, elem_bytes);
    acc = reg_block(reg, bytes);
  }
  // Highest level whose cell this rank leads; it folds levels
  // [1, top_led] into each fragment before publishing it, so a published
  // fragment always carries the rank's whole subtree.
  std::size_t top_led = 0;
  for (std::size_t l = 1; l < plan.size(); ++l) {
    Level& lv = plan[l];
    Group& cell = *lv.groups[static_cast<std::size_t>(
        lv.group_of[static_cast<std::size_t>(me)])];
    if (me != cell.members.front()) break;
    top_led = l;
  }
  my.acc_ptr.store(acc, std::memory_order_relaxed);
  // Leaf members publish their whole buffer with a single release store at
  // entry (above), so one wait per member for the covering value stands in
  // for every per-fragment wait the fold loop would otherwise issue.
  for (std::size_t i = 1; i < g.members.size(); ++i) {
    wait_seq(slots_[static_cast<std::size_t>(g.members[i])].frag,
             base + geom.nfrags, ctx);
  }
  const std::byte* src = static_cast<const std::byte*>(sendbuf);
  for (std::uint32_t f = 0; f < geom.nfrags; ++f) {
    const std::size_t e0 = static_cast<std::size_t>(f) * geom.frag_elems;
    const std::size_t ne = std::min(geom.frag_elems, count - e0);
    const std::size_t off = e0 * elem_bytes;
    const std::size_t fb = ne * elem_bytes;
    copy_bytes(acc + off, src + off, fb);  // elided when acc aliases sendbuf
    for (std::size_t i = 1; i < g.members.size(); ++i) {
      const int r = g.members[i];
      fn(acc + off, static_cast<const std::byte*>(peer_contrib(r)) + off, ne);
    }
    for (std::size_t l = 1; l <= top_led; ++l) {
      Level& lv = plan[l];
      Group& cell = *lv.groups[static_cast<std::size_t>(
          lv.group_of[static_cast<std::size_t>(me)])];
      for (std::size_t i = 1; i < cell.members.size(); ++i) {
        const int r = cell.members[i];
        const Slot& s = slots_[static_cast<std::size_t>(r)];
        wait_seq(s.acc_frag, base + f + 1, ctx);
        fn(acc + off, static_cast<const std::byte*>(peer_result(r)) + off,
           ne);
      }
    }
    publish_frag(ctx, my.acc_frag, base + f + 1);
    // Give consumers a chance to drain published fragments while they are
    // cache-hot (on cooperative executors this is what realizes the
    // interleave: a producer that never blocks would otherwise finish the
    // whole buffer before any consumer runs). Yielding per fragment costs
    // a full scheduler round trip through every waiting rank, so yields
    // fire per ~128 KB window instead: fragments stay small enough to keep
    // the fold's accumulator L1-resident while consumers wake with a
    // window's worth of L2-hot fragments to batch-copy.
    if (ystride != 0 && (f + 1) % ystride == 0) ctx.yield();
  }
  count_frags(geom.nfrags);
  // Only rank 0 leads every level (leaders are group minima); everyone
  // else's accumulator was consumed by the cell leader at top_led + 1.
  return (top_led + 1 == plan.size()) ? acc : nullptr;
}

const std::byte* ShmCollEngine::publish_staged_pipelined(
    ult::TaskContext& ctx, int me, const void* sendbuf, std::size_t count,
    std::size_t elem_bytes) {
  const std::size_t bytes = count * elem_bytes;
  const FragGeom geom = frag_geom(count, elem_bytes);
  const std::uint32_t ystride = yield_stride(geom, elem_bytes);
  Registration& reg = resolve_registration(ctx, me, sendbuf, count, elem_bytes);
  std::byte* st = reg_block(reg, bytes);
  Slot& my = slots_[static_cast<std::size_t>(me)];
  my.ptr.store(st, std::memory_order_relaxed);
  const std::uint64_t base = priv_[static_cast<std::size_t>(me)].frag_base;
  const std::byte* src = static_cast<const std::byte*>(sendbuf);
  for (std::uint32_t f = 0; f < geom.nfrags; ++f) {
    const std::size_t off = static_cast<std::size_t>(f) * geom.frag_elems *
                            elem_bytes;
    const std::size_t fb = std::min(bytes - off, geom.frag_elems * elem_bytes);
    copy_bytes(st + off, src + off, fb);
    publish_frag(ctx, my.frag, base + f + 1);
    if (ystride != 0 && (f + 1) % ystride == 0) ctx.yield();
  }
  count_frags(geom.nfrags);
  return st;
}

void ShmCollEngine::barrier(ult::TaskContext& ctx, int me) {
  begin(me);
  plan_barrier(hier_, ctx, me);
}

void ShmCollEngine::bcast(ult::TaskContext& ctx, int me, void* buf,
                          std::size_t bytes, int root) {
  const std::uint64_t seq = begin(me);
  if (bytes == 0) return;
  const obs::CollAlg alg = select(bytes);
  if (alg == obs::CollAlg::shm_pipelined) {
    const FragGeom geom = begin_pipelined(bytes, 1);
    Priv& p = priv_[static_cast<std::size_t>(me)];
    const std::uint64_t base = p.frag_base;
    if (me == root) {
      // The source is fully available at entry: publish every fragment
      // with one release store. Readers copy fragment-sized pieces (each
      // wait satisfied instantly), keeping the working set cache-sized.
      Slot& s = slots_[static_cast<std::size_t>(me)];
      s.ptr.store(buf, std::memory_order_relaxed);
      publish_frag(ctx, s.frag, base + geom.nfrags);
      count_frags(geom.nfrags);
      p.acks_expected += static_cast<std::uint64_t>(n_ - 1);
      wait_seq(s.acks, p.acks_expected, ctx);
    } else {
      Slot& rs = slots_[static_cast<std::size_t>(root)];
      drain_frags(ctx, rs.frag, base, geom, 1, bytes, rs.ptr,
                  static_cast<std::byte*>(buf));
      rs.acks.fetch_add(1, std::memory_order_release);
    }
    p.frag_base += geom.nfrags;
    return;
  }
  const bool stage = alg == obs::CollAlg::shm_flat;
  if (me == root) {
    publish_contrib(me, buf, bytes, stage, seq);
    // Readers never wait for each other — the root alone absorbs the
    // completion by counting acknowledgements (cumulative across every
    // bcast this rank ever rooted; publication of the next one is gated
    // right here, so the counters stay aligned).
    Priv& p = priv_[static_cast<std::size_t>(me)];
    p.acks_expected += static_cast<std::uint64_t>(n_ - 1);
    wait_seq(slots_[static_cast<std::size_t>(me)].acks, p.acks_expected, ctx);
  } else {
    Slot& rs = slots_[static_cast<std::size_t>(root)];
    wait_seq(rs.seq, seq, ctx);
    copy_bytes(buf, peer_contrib(root), bytes);
    // Release RMW: the root's acquire of the final count sees every
    // reader's copy complete (release-sequence chain through the RMWs).
    rs.acks.fetch_add(1, std::memory_order_release);
  }
}

void ShmCollEngine::reduce(ult::TaskContext& ctx, int me, const void* sendbuf,
                           void* recvbuf, std::size_t count,
                           std::size_t elem_bytes, const ReduceFn& fn,
                           int root) {
  const std::uint64_t seq = begin(me);
  if (count == 0) return;
  const std::size_t bytes = count * elem_bytes;
  const obs::CollAlg alg = select(bytes);
  if (alg == obs::CollAlg::shm_pipelined) {
    const FragGeom geom = begin_pipelined(count, elem_bytes);
    const std::uint64_t base = priv_[static_cast<std::size_t>(me)].frag_base;
    std::byte* acc = plan_reduce_pipelined(
        ctx, me, sendbuf, count, elem_bytes, fn,
        (me == 0 && root == 0) ? recvbuf : nullptr);
    if (me == root && acc == nullptr) {
      // Non-zero root: drain rank 0's result fragment by fragment while
      // later fragments are still being reduced.
      drain_frags(ctx, slots_[0].acc_frag, base, geom, elem_bytes, bytes,
                  slots_[0].acc_ptr, static_cast<std::byte*>(recvbuf));
    }
    priv_[static_cast<std::size_t>(me)].frag_base += geom.nfrags;
    plan_barrier(hier_, ctx, me);
    return;
  }
  Plan& plan = plan_for(alg);
  void* rank0_acc = (me == 0 && root == 0) ? recvbuf : nullptr;
  plan_reduce(plan, ctx, me, sendbuf, count, elem_bytes, fn, seq, rank0_acc,
              alg == obs::CollAlg::shm_flat);
  if (me == root && root != 0) {
    const Slot& s0 = slots_[0];
    wait_seq(s0.acc_seq, seq, ctx);
    copy_bytes(recvbuf, peer_result(0), bytes);
  }
  plan_barrier(plan, ctx, me);
}

void ShmCollEngine::allreduce(ult::TaskContext& ctx, int me,
                              const void* sendbuf, void* recvbuf,
                              std::size_t count, std::size_t elem_bytes,
                              const ReduceFn& fn) {
  const std::uint64_t seq = begin(me);
  if (count == 0) return;
  const std::size_t bytes = count * elem_bytes;
  const obs::CollAlg alg = select(bytes);
  if (alg == obs::CollAlg::shm_pipelined) {
    // The reduce and bcast phases interleave per fragment: a consumer
    // copies result fragment f out of rank 0's accumulator as soon as its
    // per-fragment publication lands, while fragments f+1.. are still
    // folding up the tree.
    const FragGeom geom = begin_pipelined(count, elem_bytes);
    const std::uint64_t base = priv_[static_cast<std::size_t>(me)].frag_base;
    std::byte* acc = plan_reduce_pipelined(ctx, me, sendbuf, count,
                                           elem_bytes, fn,
                                           me == 0 ? recvbuf : nullptr);
    if (acc == nullptr) {
      // The acquire on each result fragment chains through every fold
      // that consumed this rank's sendbuf fragment, so writing recvbuf
      // fragment f here is safe even when recvbuf aliases sendbuf.
      drain_frags(ctx, slots_[0].acc_frag, base, geom, elem_bytes, bytes,
                  slots_[0].acc_ptr, static_cast<std::byte*>(recvbuf));
    }
    priv_[static_cast<std::size_t>(me)].frag_base += geom.nfrags;
    plan_barrier(hier_, ctx, me);
    return;
  }
  Plan& plan = plan_for(alg);
  void* rank0_acc = (me == 0) ? recvbuf : nullptr;
  plan_reduce(plan, ctx, me, sendbuf, count, elem_bytes, fn, seq, rank0_acc,
              alg == obs::CollAlg::shm_flat);
  if (me != 0) {
    // The acquire on rank 0's result sequence chains through every fold
    // that consumed this rank's sendbuf, so writing recvbuf here is safe
    // even when it aliases sendbuf.
    const Slot& s0 = slots_[0];
    wait_seq(s0.acc_seq, seq, ctx);
    copy_bytes(recvbuf, peer_result(0), bytes);
  }
  plan_barrier(plan, ctx, me);
}

void ShmCollEngine::allgather(ult::TaskContext& ctx, int me,
                              const void* sendbuf, std::size_t bytes,
                              void* recvbuf) {
  const std::uint64_t seq = begin(me);
  if (bytes == 0) return;
  const obs::CollAlg alg = select(bytes);
  if (alg == obs::CollAlg::shm_pipelined) {
    const FragGeom geom = begin_pipelined(bytes, 1);
    Priv& p = priv_[static_cast<std::size_t>(me)];
    const std::uint64_t base = p.frag_base;
    Slot& my = slots_[static_cast<std::size_t>(me)];
    my.ptr.store(sendbuf, std::memory_order_relaxed);
    publish_frag(ctx, my.frag, base + geom.nfrags);
    count_frags(geom.nfrags);
    std::byte* out = static_cast<std::byte*>(recvbuf);
    for (int r = 0; r < n_; ++r) {
      std::byte* dst = out + static_cast<std::size_t>(r) * bytes;
      if (r == me) {
        copy_bytes(dst, sendbuf, bytes);
        continue;
      }
      const Slot& s = slots_[static_cast<std::size_t>(r)];
      drain_frags(ctx, s.frag, base, geom, 1, bytes, s.ptr, dst);
    }
    p.frag_base += geom.nfrags;
    plan_barrier(hier_, ctx, me);
    return;
  }
  publish_contrib(me, sendbuf, bytes, alg == obs::CollAlg::shm_flat, seq);
  std::byte* out = static_cast<std::byte*>(recvbuf);
  for (int r = 0; r < n_; ++r) {
    if (r == me) {
      copy_bytes(out + static_cast<std::size_t>(me) * bytes, sendbuf, bytes);
      continue;
    }
    const Slot& s = slots_[static_cast<std::size_t>(r)];
    wait_seq(s.seq, seq, ctx);
    copy_bytes(out + static_cast<std::size_t>(r) * bytes, peer_contrib(r),
               bytes);
  }
  plan_barrier(plan_for(alg), ctx, me);
}

void ShmCollEngine::alltoall(ult::TaskContext& ctx, int me,
                             const void* sendbuf, std::size_t bytes_per_rank,
                             void* recvbuf) {
  const std::uint64_t seq = begin(me);
  if (bytes_per_rank == 0) return;
  const std::size_t total = bytes_per_rank * static_cast<std::size_t>(n_);
  // A rank's block reads are scattered (one slice per peer), so there is
  // no in-order fragment stream to pipeline: payloads above the small
  // threshold — pipelined-selected ones included — go monolithic
  // zero-copy.
  const obs::CollAlg alg = select(total);
  publish_contrib(me, sendbuf, total, alg == obs::CollAlg::shm_flat, seq);
  const std::byte* own = static_cast<const std::byte*>(sendbuf);
  std::byte* out = static_cast<std::byte*>(recvbuf);
  const std::size_t mine = static_cast<std::size_t>(me) * bytes_per_rank;
  for (int r = 0; r < n_; ++r) {
    const std::size_t block = static_cast<std::size_t>(r) * bytes_per_rank;
    if (r == me) {
      copy_bytes(out + mine, own + mine, bytes_per_rank);
      continue;
    }
    const Slot& s = slots_[static_cast<std::size_t>(r)];
    wait_seq(s.seq, seq, ctx);
    copy_bytes(out + block,
               static_cast<const std::byte*>(peer_contrib(r)) + mine,
               bytes_per_rank);
  }
  plan_barrier(plan_for(alg), ctx, me);
}

void ShmCollEngine::scan(ult::TaskContext& ctx, int me, const void* sendbuf,
                         void* recvbuf, std::size_t count,
                         std::size_t elem_bytes, const ReduceFn& fn) {
  const std::uint64_t seq = begin(me);
  if (count == 0) return;
  const std::size_t bytes = count * elem_bytes;
  const obs::CollAlg alg = select(bytes);
  if (alg == obs::CollAlg::shm_pipelined) {
    // Staged fragment-wise: each rank snapshots its send buffer into the
    // buffer's registration block, publishing fragments as they land, so
    // rank r can fold prefix fragment f while rank r+1's staging of
    // fragment f+1 is still in flight. Staging completes before any fold
    // writes recvbuf, which keeps in-place calls safe.
    const FragGeom geom = begin_pipelined(count, elem_bytes);
    const std::uint64_t base = priv_[static_cast<std::size_t>(me)].frag_base;
    publish_staged_pipelined(ctx, me, sendbuf, count, elem_bytes);
    if (me == 0) {
      copy_bytes(recvbuf, sendbuf, bytes);  // elided in-place
    } else {
      std::byte* out = static_cast<std::byte*>(recvbuf);
      for (std::uint32_t f = 0; f < geom.nfrags; ++f) {
        const std::size_t e0 = static_cast<std::size_t>(f) * geom.frag_elems;
        const std::size_t ne = std::min(geom.frag_elems, count - e0);
        const std::size_t off = e0 * elem_bytes;
        const Slot& s0 = slots_[0];
        wait_seq(s0.frag, base + f + 1, ctx);
        copy_bytes(out + off,
                   static_cast<const std::byte*>(peer_contrib(0)) + off,
                   ne * elem_bytes);
        for (int r = 1; r <= me; ++r) {
          const Slot& s = slots_[static_cast<std::size_t>(r)];
          wait_seq(s.frag, base + f + 1, ctx);
          fn(out + off,
             static_cast<const std::byte*>(peer_contrib(r)) + off, ne);
        }
      }
    }
    priv_[static_cast<std::size_t>(me)].frag_base += geom.nfrags;
    plan_barrier(hier_, ctx, me);
    return;
  }
  // Always staged: each rank folds into recvbuf, which MPI allows to alias
  // sendbuf — peers must read the pre-fold snapshot.
  publish_contrib(me, sendbuf, bytes, /*stage=*/true, seq);
  if (me == 0) {
    copy_bytes(recvbuf, sendbuf, bytes);  // elided in-place
  } else {
    const Slot& s0 = slots_[0];
    wait_seq(s0.seq, seq, ctx);
    copy_bytes(recvbuf, peer_contrib(0), bytes);
    for (int r = 1; r <= me; ++r) {
      const Slot& s = slots_[static_cast<std::size_t>(r)];
      wait_seq(s.seq, seq, ctx);
      fn(recvbuf, peer_contrib(r), count);
    }
  }
  plan_barrier(plan_for(alg), ctx, me);
}

void ShmCollEngine::exscan(ult::TaskContext& ctx, int me, const void* sendbuf,
                           void* recvbuf, std::size_t count,
                           std::size_t elem_bytes, const ReduceFn& fn) {
  const std::uint64_t seq = begin(me);
  if (count == 0) return;
  const std::size_t bytes = count * elem_bytes;
  const obs::CollAlg alg = select(bytes);
  if (alg == obs::CollAlg::shm_pipelined) {
    const FragGeom geom = begin_pipelined(count, elem_bytes);
    const std::uint64_t base = priv_[static_cast<std::size_t>(me)].frag_base;
    publish_staged_pipelined(ctx, me, sendbuf, count, elem_bytes);
    // Rank 0's recvbuf is undefined for exscan and stays untouched.
    if (me > 0) {
      std::byte* out = static_cast<std::byte*>(recvbuf);
      for (std::uint32_t f = 0; f < geom.nfrags; ++f) {
        const std::size_t e0 = static_cast<std::size_t>(f) * geom.frag_elems;
        const std::size_t ne = std::min(geom.frag_elems, count - e0);
        const std::size_t off = e0 * elem_bytes;
        const Slot& s0 = slots_[0];
        wait_seq(s0.frag, base + f + 1, ctx);
        copy_bytes(out + off,
                   static_cast<const std::byte*>(peer_contrib(0)) + off,
                   ne * elem_bytes);
        for (int r = 1; r < me; ++r) {
          const Slot& s = slots_[static_cast<std::size_t>(r)];
          wait_seq(s.frag, base + f + 1, ctx);
          fn(out + off,
             static_cast<const std::byte*>(peer_contrib(r)) + off, ne);
        }
      }
    }
    priv_[static_cast<std::size_t>(me)].frag_base += geom.nfrags;
    plan_barrier(hier_, ctx, me);
    return;
  }
  publish_contrib(me, sendbuf, bytes, /*stage=*/true, seq);
  // Rank 0's recvbuf is undefined for exscan and stays untouched.
  if (me > 0) {
    const Slot& s0 = slots_[0];
    wait_seq(s0.seq, seq, ctx);
    copy_bytes(recvbuf, peer_contrib(0), bytes);
    for (int r = 1; r < me; ++r) {
      const Slot& s = slots_[static_cast<std::size_t>(r)];
      wait_seq(s.seq, seq, ctx);
      fn(recvbuf, peer_contrib(r), count);
    }
  }
  plan_barrier(plan_for(alg), ctx, me);
}

void ShmCollEngine::reduce_scatter_block(ult::TaskContext& ctx, int me,
                                         const void* sendbuf, void* recvbuf,
                                         std::size_t count,
                                         std::size_t elem_bytes,
                                         const ReduceFn& fn) {
  const std::uint64_t seq = begin(me);
  if (count == 0) return;
  const std::size_t total = count * static_cast<std::size_t>(n_);
  const std::size_t block_bytes = count * elem_bytes;
  const obs::CollAlg alg = select(total * elem_bytes);
  if (alg == obs::CollAlg::shm_pipelined) {
    const FragGeom geom = begin_pipelined(total, elem_bytes);
    const std::uint64_t base = priv_[static_cast<std::size_t>(me)].frag_base;
    const std::byte* acc = plan_reduce_pipelined(ctx, me, sendbuf, total,
                                                 elem_bytes, fn,
                                                 /*rank0_acc=*/nullptr);
    if (acc == nullptr) {
      // Wait only for the fragments covering this rank's block — low
      // ranks' blocks complete earliest, so the scatter itself pipelines.
      const std::size_t last_elem =
          static_cast<std::size_t>(me) * count + count - 1;
      const std::uint32_t fl =
          static_cast<std::uint32_t>(last_elem / geom.frag_elems);
      const Slot& s0 = slots_[0];
      wait_seq(s0.acc_frag, base + fl + 1, ctx);
      acc = static_cast<const std::byte*>(peer_result(0));
    }
    copy_bytes(recvbuf, acc + static_cast<std::size_t>(me) * block_bytes,
               block_bytes);
    priv_[static_cast<std::size_t>(me)].frag_base += geom.nfrags;
    plan_barrier(hier_, ctx, me);
    return;
  }
  Plan& plan = plan_for(alg);
  const std::byte* acc =
      plan_reduce(plan, ctx, me, sendbuf, total, elem_bytes, fn, seq,
                  /*rank0_acc=*/nullptr, alg == obs::CollAlg::shm_flat);
  if (acc == nullptr) {
    const Slot& s0 = slots_[0];
    wait_seq(s0.acc_seq, seq, ctx);
    acc = static_cast<const std::byte*>(peer_result(0));
  }
  copy_bytes(recvbuf, acc + static_cast<std::size_t>(me) * block_bytes,
             block_bytes);
  plan_barrier(plan, ctx, me);
}

}  // namespace hlsmpc::mpi

#endif  // HLSMPC_COLL_SHM_ENABLED
