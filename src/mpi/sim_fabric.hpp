// Deterministic simulated inter-node fabric.
//
// Endpoints are cluster-global ranks partitioned into nodes of
// `ranks_per_node` consecutive ranks (node-major global order). The
// fabric models a network, not shared memory:
//
//   - Every send is a copy. No rendezvous, no same-address elision — the
//     payload is captured into an owned buffer at send time (or copied
//     straight into a posted receive), exactly like bytes leaving through
//     a NIC. Sends therefore always complete immediately (buffered
//     semantics).
//   - Capacity is bounded per endpoint when Options::limits says so; an
//     exhausted queue refuses the send with
//     TransportError(transport_exhausted) before enqueuing anything.
//   - Schedule points: isend/irecv announce themselves through
//     ctx.sync_point("fabric:send"/"fabric:recv") *before* touching the
//     mailbox, so check::DeterministicExecutor and ScheduleExplorer can
//     interleave inter-node protocol steps and replay/shrink schedules.
//   - Fault injection: the sites "fabric:send" and "fabric:recv"
//     (fault/injector.hpp) make link failures deterministically reachable.
//   - Dead nodes: kill_node(n) simulates a whole node dropping off the
//     network. Traffic to/from it fails with NodeDeadError, receives
//     already posted against its ranks are completed with an error naming
//     it, and first_dead_node() reports the first node observed dead —
//     the name cluster-level supervision propagates.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "mpi/detail/mailbox.hpp"
#include "mpi/transport.hpp"

namespace hlsmpc::mpi {

class SimFabricTransport : public Transport {
 public:
  struct Options {
    /// Total endpoints (cluster-global ranks); must be a multiple of
    /// ranks_per_node.
    int nranks = 0;
    int ranks_per_node = 1;
    /// Per-endpoint unexpected-queue bounds (0 = unlimited).
    TransportLimits limits;
  };

  explicit SimFabricTransport(Options opts);

  const char* name() const override { return "sim_fabric"; }
  int nendpoints() const override {
    return static_cast<int>(mailboxes_.size());
  }
  int nnodes() const { return nnodes_; }
  int ranks_per_node() const { return opts_.ranks_per_node; }
  int node_of(int ep) const { return ep / opts_.ranks_per_node; }

  /// On the fabric the sender's rank label IS its endpoint id (cluster
  /// ranks are global on both sides); `src` doubles as the origin
  /// endpoint for dead-node accounting.
  Request isend(ult::TaskContext& ctx, int src, int dst_ep, int dst,
                const void* buf, std::size_t bytes, int tag,
                int context) override;
  Request irecv(ult::TaskContext& ctx, int me_ep, void* buf,
                std::size_t capacity, int src, int tag, int context) override;
  bool iprobe(int me_ep, int src, int tag, int context,
              Status* status) override;

  /// Simulate node `node` dropping off the network. A node death is fatal
  /// to the whole job (ErrorCode::node_unreachable is in the fatal band):
  /// the fabric is poisoned — every subsequent send/recv anywhere throws
  /// NodeDeadError naming the first dead node, and every already-posted
  /// receive at a live endpoint is completed with that error so blocked
  /// waiters unblock instead of deadlocking on a silent peer. Idempotent.
  void kill_node(int node);
  bool node_dead(int node) const {
    return dead_[static_cast<std::size_t>(node)].load(
        std::memory_order_acquire);
  }
  /// First node observed dead, or -1. This is the node cluster
  /// supervision names when it tears a job down.
  int first_dead_node() const {
    return first_dead_.load(std::memory_order_acquire);
  }

 private:
  detail::Mailbox& mailbox(int ep, const char* what);
  void throw_node_dead(int node, const char* what) const;

  Options opts_;
  int nnodes_ = 0;
  std::vector<std::unique_ptr<detail::Mailbox>> mailboxes_;
  std::unique_ptr<std::atomic<bool>[]> dead_;
  std::atomic<int> first_dead_{-1};
};

}  // namespace hlsmpc::mpi
