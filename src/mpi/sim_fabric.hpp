// Deterministic simulated inter-node fabric.
//
// Endpoints are cluster-global ranks partitioned into nodes of
// `ranks_per_node` consecutive ranks (node-major global order). The
// fabric models a network, not shared memory:
//
//   - Every send is a copy. No rendezvous, no same-address elision — the
//     payload is captured into an owned buffer at send time (or copied
//     straight into a posted receive), exactly like bytes leaving through
//     a NIC. Sends therefore always complete immediately (buffered
//     semantics).
//   - Capacity is bounded per endpoint when Options::limits says so; an
//     exhausted queue refuses the send with
//     TransportError(transport_exhausted) before enqueuing anything.
//   - Schedule points: isend/irecv announce themselves through
//     ctx.sync_point("fabric:send"/"fabric:recv") *before* touching the
//     mailbox, so check::DeterministicExecutor and ScheduleExplorer can
//     interleave inter-node protocol steps and replay/shrink schedules.
//   - Fault injection: "fabric:send"/"fabric:recv" fail an op outright
//     (hard link failure); "fabric:flap" (and the programmatic
//     flap_link()) model a TRANSIENT link failure — the op retries with
//     bounded backoff and either outlasts the flap or, after
//     Options::retry.max_attempts, reports transport_exhausted so the
//     caller classifies the link as persistently down.
//   - Dead nodes: kill_node(n) simulates a whole node dropping off the
//     network. It sets n's dead flag, POISONS the fabric (every ordinary
//     send/recv anywhere throws NodeDeadError naming the poison node) and
//     error-completes posted receives so blocked waiters unblock. Unlike
//     the pre-recovery fabric the poison is an *episode*, not a death
//     sentence: recovery traffic (context == kRecoveryContext) bypasses
//     the poison check, the shrink agreement runs over the poisoned
//     fabric, and heal() lifts the poison once the survivors agreed to
//     exclude the dead member. Per-node dead flags persist across heal —
//     traffic to a dead node keeps failing with its name — until
//     revive_node() readmits a respawned replacement.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "mpi/detail/mailbox.hpp"
#include "mpi/retry.hpp"
#include "mpi/transport.hpp"

namespace hlsmpc::obs {
class Recorder;
}  // namespace hlsmpc::obs

namespace hlsmpc::mpi {

class SimFabricTransport : public Transport {
 public:
  struct Options {
    /// Total endpoints (cluster-global ranks); must be a multiple of
    /// ranks_per_node.
    int nranks = 0;
    int ranks_per_node = 1;
    /// Per-endpoint unexpected-queue bounds (0 = unlimited).
    TransportLimits limits;
    /// Transient-failure budget for flapping links.
    RetryPolicy retry;
    /// Cluster-level recorder (task ids are cluster-global ranks); when
    /// given, each transient-retry bumps Counter::net_retries for the
    /// retrying rank.
    obs::Recorder* obs = nullptr;
  };

  explicit SimFabricTransport(Options opts);

  const char* name() const override { return "sim_fabric"; }
  int nendpoints() const override {
    return static_cast<int>(mailboxes_.size());
  }
  int nnodes() const { return nnodes_; }
  int ranks_per_node() const { return opts_.ranks_per_node; }
  int node_of(int ep) const { return ep / opts_.ranks_per_node; }

  /// On the fabric the sender's rank label IS its endpoint id (cluster
  /// ranks are global on both sides); `src` doubles as the origin
  /// endpoint for dead-node accounting.
  Request isend(ult::TaskContext& ctx, int src, int dst_ep, int dst,
                const void* buf, std::size_t bytes, int tag,
                int context) override;
  Request irecv(ult::TaskContext& ctx, int me_ep, void* buf,
                std::size_t capacity, int src, int tag, int context) override;
  bool iprobe(int me_ep, int src, int tag, int context,
              Status* status) override;

  /// Simulate node `node` dropping off the network: sets its dead flag,
  /// poisons the fabric for ordinary traffic, and completes every posted
  /// receive that can no longer be served — all ordinary-context posts
  /// (their senders will refuse against the poison), plus recovery-
  /// context posts whose source lives on a node now known dead (recovery
  /// receives between LIVE nodes stay posted: their senders bypass the
  /// poison and will still deliver). Idempotent per death; calling it
  /// again after heal() re-poisons, which is exactly what supervision
  /// wants when a survivor touches a node that died in an earlier
  /// episode.
  void kill_node(int node);
  bool node_dead(int node) const {
    return dead_[static_cast<std::size_t>(node)].load(
        std::memory_order_acquire);
  }
  /// First node EVER observed dead, or -1 — the name historical
  /// supervision reports; survives heal()/revive_node().
  int first_dead_node() const {
    return first_dead_.load(std::memory_order_acquire);
  }
  /// Node whose death poisons ordinary traffic right now, or -1 when the
  /// fabric is healthy (no death yet, or the episode was heal()ed).
  int poisoned_node() const {
    return poison_.load(std::memory_order_acquire);
  }

  /// Lift the poison of the current episode, provided the poisoning node
  /// is in `agreed_dead_mask` (bit n = node n): the survivors' shrink
  /// agreement accounted for it, ordinary traffic may resume. A death the
  /// agreement did NOT cover keeps the fabric poisoned — the next episode
  /// starts immediately. Dead flags are untouched.
  void heal(std::uint64_t agreed_dead_mask);

  /// Readmit a respawned replacement for `node`: clears its dead flag,
  /// drops whatever is queued at its endpoints (a replacement starts with
  /// an empty NIC), lifts the poison if it named this node, and
  /// recomputes first_dead_node() from the remaining dead flags. Must be
  /// quiescent (no in-flight ops touching the node) — SimCluster calls it
  /// between run()s.
  void revive_node(int node);

  /// Programmatic transient failure: the next `ops` operations touching
  /// `node` (sends towards it, receives at it) fail transiently, then the
  /// link heals. Ops observing the flap retry under Options::retry, so a
  /// flap shorter than the budget is invisible to callers apart from
  /// stats().link_flaps.
  void flap_link(int node, int ops);

 private:
  detail::Mailbox& mailbox(int ep, const char* what);
  void throw_node_dead(int node, const char* what) const;
  /// Consume one flap token for `node`; true while the link is flapping.
  bool link_flapping(int node);
  /// Bounded retry against flap sites; throws transport_exhausted when
  /// the budget runs out. `site_index` is the injection-site operand.
  void ride_out_flaps(ult::TaskContext& ctx, int node, int site_index,
                      const char* what);
  void sweep_posted(int dead_node);

  Options opts_;
  int nnodes_ = 0;
  std::vector<std::unique_ptr<detail::Mailbox>> mailboxes_;
  std::unique_ptr<std::atomic<bool>[]> dead_;
  std::unique_ptr<std::atomic<int>[]> flap_ops_;
  std::atomic<int> first_dead_{-1};
  std::atomic<int> poison_{-1};
};

}  // namespace hlsmpc::mpi
