// Pure peer-selection math of the p2p collective algorithms, extracted so
// tests can pin the algebra (pairing, ranges) without running a runtime.
#pragma once

namespace hlsmpc::mpi::coll {

/// Dissemination barrier: at `step` (a power of two, 0 < step < n) rank
/// `me` notifies dst and hears from src; after ceil(log2 n) steps every
/// rank has transitively heard from every other rank. The two are exact
/// mirrors — dissemination_src(dissemination_dst(me)) == me — which is
/// what makes every send matched by exactly one posted receive. (An
/// earlier spelling `(me - step % n + n) % n` parsed as `me - (step % n)`
/// and was only accidentally correct because step < n.)
constexpr int dissemination_dst(int me, int step, int n) {
  return (me + step) % n;
}
constexpr int dissemination_src(int me, int step, int n) {
  return (me - step + n) % n;
}

}  // namespace hlsmpc::mpi::coll
