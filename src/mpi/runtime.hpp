// Node runtime: hosts the MPI tasks of one computational node.
//
// Mirrors MPC's design (paper §IV): MPI tasks share one address space and
// are pinned to hardware threads of the machine's topology; the executor
// back end chooses between kernel threads and user-level fibers. The
// runtime owns the communicator registry, the intra-node ShmTransport
// (transport.hpp), the eager buffer manager and the memory tracker the
// benchmarks read.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "memtrack/memtrack.hpp"
#include "mpi/buffers.hpp"
#include "mpi/comm.hpp"
#include "mpi/trace_hook.hpp"
#include "mpi/transport.hpp"
#include "obs/event.hpp"
#include "topo/topology.hpp"
#include "ult/scheduler.hpp"

namespace hlsmpc::obs {
class Recorder;
}  // namespace hlsmpc::obs

namespace hlsmpc::mpi {

enum class ExecutorKind { thread, fiber };

struct Options {
  int nranks = 0;  ///< 0 = one rank per hardware thread.
  BufferConfig buffers;
  ExecutorKind executor = ExecutorKind::thread;
  /// Fiber back end: kernel threads carrying the fibers. 0 = one per
  /// machine cpu, capped at the host's hardware concurrency.
  int fiber_workers = 0;
  /// Job-wide rank count for the per-pair buffer reservation model
  /// (ranks on other nodes of the cluster). 0 = nranks (single node job).
  int total_ranks = 0;
  /// Charged per task to Category::runtime_other (descriptor + stack).
  std::size_t per_task_overhead_bytes = 64 * 1024;
  /// Observability recorder for p2p/collective counters and events plus
  /// scheduler context switches; typically shared with the HLS runtime
  /// (mpc::Node does). Null = no MPI-side recording. Ignored when the
  /// layer is compiled out (HLSMPC_OBS=OFF).
  obs::Recorder* obs = nullptr;
  /// Shared-memory collective engine tuning; ignored when the engine is
  /// compiled out (HLSMPC_COLL_SHM=OFF). Runtime construction applies the
  /// HLSMPC_COLL_* environment overrides on top (coll_config_from_env).
  CollConfig coll;
};

/// Apply the HLSMPC_COLL_* environment overrides to `base` and return the
/// result, range-clamped to sane values:
///   HLSMPC_COLL_SHM=0|1                  enable_shm
///   HLSMPC_COLL_SMALL_THRESHOLD=<bytes>  staged/zero-copy crossover,
///                                        clamped to [0, 1 MiB]
///   HLSMPC_COLL_PIPELINE_THRESHOLD=<bytes>
///                                        pipelined-path crossover, clamped
///                                        up to small_threshold; 0 means
///                                        "never pipeline" (SIZE_MAX)
///   HLSMPC_COLL_FRAGMENT_BYTES=<bytes>   fragment size, clamped to
///                                        [1 KiB, 16 MiB]
///   HLSMPC_COLL_PIPELINE_YIELD=0|1       producer yield while publishing
/// Unset or unparsable variables leave the corresponding field untouched.
CollConfig coll_config_from_env(CollConfig base);

class Runtime {
 public:
  /// If `tracker` is null the runtime owns a private one.
  Runtime(const topo::Machine& machine, Options opts,
          memtrack::Tracker* tracker = nullptr);
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Run `body` once per rank to completion (the whole MPI program).
  /// May be called repeatedly; communicators created by split/dup in a
  /// previous run stay registered.
  void run(const std::function<void(Comm&, ult::TaskContext&)>& body);

  Comm& world() { return *world_; }
  int nranks() const { return nranks_; }
  const topo::Machine& machine() const { return machine_; }
  memtrack::Tracker& tracker() { return *tracker_; }
  BufferManager& buffers() { return *buffers_; }
  /// The intra-node transport every Comm of this runtime sends through.
  Transport& transport() { return *transport_; }
  TransportStats& stats() { return transport_->stats(); }
  const CollConfig& coll_config() const { return opts_.coll; }
  /// Cpu each rank is pinned to (rank-major round robin over the machine).
  int cpu_of_rank(int rank) const;

  /// Recovery hook: re-zero every registered communicator's shared-memory
  /// collective engine and drain the intra-node transport's mailboxes —
  /// the clean slate ClusterComm::shrink installs on surviving nodes.
  /// Quiescent callers only (no rank inside a collective or with a
  /// pending p2p operation).
  void reset_collectives();

  /// Attach a synchronization tracer (nullptr to detach). The hook sees
  /// every p2p completion; it must outlive subsequent run() calls.
  void set_trace_hook(TraceHook* hook) { trace_hook_ = hook; }
  TraceHook* trace_hook() const { return trace_hook_; }

  /// The recorder passed via Options; nullptr when unset or when the
  /// observability layer is compiled out.
#if HLSMPC_OBS_ENABLED
  obs::Recorder* obs() const { return obs_; }
#else
  obs::Recorder* obs() const { return nullptr; }
#endif

  // -- internals used by Comm --
  int alloc_context();
  Comm& register_comm(std::unique_ptr<Comm> comm);
#if HLSMPC_RMA_ENABLED
  /// Take ownership of a collectively created RMA window (Comm::win_create
  /// registers through here; windows outlive the creating run() call until
  /// released).
  rma::Win& register_win(std::unique_ptr<rma::Win> win);
  /// Destroy a registered window (Comm::win_free). No-op for unknown wins.
  void release_win(rma::Win& win);
#endif

 private:
  topo::Machine machine_;
  Options opts_;
  std::unique_ptr<memtrack::Tracker> owned_tracker_;
  memtrack::Tracker* tracker_;
  std::unique_ptr<BufferManager> buffers_;
  std::unique_ptr<Transport> transport_;
  std::vector<std::unique_ptr<Comm>> comms_;
#if HLSMPC_RMA_ENABLED
  std::vector<std::unique_ptr<rma::Win>> wins_;  // guarded by comms_mu_
#endif
  std::mutex comms_mu_;
  std::atomic<int> next_context_{0};
  TraceHook* trace_hook_ = nullptr;
#if HLSMPC_OBS_ENABLED
  obs::Recorder* obs_ = nullptr;
#endif
  Comm* world_ = nullptr;
  int nranks_ = 0;
  std::unique_ptr<ult::Executor> executor_;
};

}  // namespace hlsmpc::mpi
