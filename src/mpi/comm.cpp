#include "mpi/comm.hpp"

#include <algorithm>
#include <map>

#include "mpi/coll_shm.hpp"
#include "mpi/rma.hpp"
#include "mpi/runtime.hpp"

namespace hlsmpc::mpi {

Comm::Comm(Runtime& rt, std::vector<int> group, int pt2pt_context,
           int coll_context, std::string name)
    : rt_(&rt),
      group_(std::move(group)),
      pt2pt_context_(pt2pt_context),
      coll_context_(coll_context),
      name_(std::move(name)),
      coll_seq_(group_.size(), 0) {
  if (group_.empty()) throw MpiError("Comm: empty group");
  rank_of_task_.assign(static_cast<std::size_t>(rt.nranks()), -1);
  for (std::size_t r = 0; r < group_.size(); ++r) {
    const int task = group_[r];
    if (task < 0 || task >= rt.nranks()) {
      throw MpiError("Comm: group member outside the runtime");
    }
    if (rank_of_task_[static_cast<std::size_t>(task)] != -1) {
      throw MpiError("Comm: duplicate task in group");
    }
    rank_of_task_[static_cast<std::size_t>(task)] = static_cast<int>(r);
  }
#if HLSMPC_COLL_SHM_ENABLED
  // The engine attaches here so split/dup-created communicators get one
  // automatically. Its leader tree follows where this comm's members are
  // actually pinned, not their rank numbers.
  if (rt.coll_config().enable_shm && size() > 1) {
    std::vector<int> cpus(group_.size());
    for (std::size_t r = 0; r < group_.size(); ++r) {
      cpus[r] = rt.cpu_of_rank(group_[r]);
    }
    shm_ = std::make_unique<ShmCollEngine>(rt.machine(), std::move(cpus),
                                           rt.coll_config(), &rt.stats());
  }
#endif
}

Comm::~Comm() = default;

int Comm::rank(const ult::TaskContext& ctx) const {
  const int task = ctx.task_id();
  if (task < 0 || task >= static_cast<int>(rank_of_task_.size()) ||
      rank_of_task_[static_cast<std::size_t>(task)] == -1) {
    throw MpiError("Comm::rank: calling task is not a member of '" + name_ +
                   "'");
  }
  return rank_of_task_[static_cast<std::size_t>(task)];
}

bool Comm::contains(int task_id) const {
  return task_id >= 0 && task_id < static_cast<int>(rank_of_task_.size()) &&
         rank_of_task_[static_cast<std::size_t>(task_id)] != -1;
}

int Comm::global_task(int rank) const {
  return group_[static_cast<std::size_t>(rank)];
}

void Comm::check_rank(int r, const char* what) const {
  if (r < 0 || r >= size()) {
    throw MpiError(std::string(what) + ": rank " + std::to_string(r) +
                   " out of range for '" + name_ + "' of size " +
                   std::to_string(size()));
  }
}

void Comm::check_tag(int tag) const {
  if (tag < 0 || tag > kMaxUserTag) {
    throw MpiError("invalid tag " + std::to_string(tag));
  }
}

int Comm::next_coll_tag(int rank) {
  // All ranks issue the same sequence of collectives on a communicator
  // (MPI ordering rule), so these per-rank counters stay in agreement and
  // yield one fresh tag per collective operation.
  const std::uint32_t seq = coll_seq_[static_cast<std::size_t>(rank)]++;
  return static_cast<int>(seq % (1u << 20));
}

Comm& Comm::split(ult::TaskContext& ctx, int color, int key) {
  if (color < 0) throw MpiError("Comm::split: color must be >= 0");
  const int me = rank(ctx);
  const int n = size();

  // Gather everyone's (color, key) — identical information on all ranks.
  struct ColorKey {
    int color, key;
  };
  const ColorKey mine{color, key};
  std::vector<ColorKey> all(static_cast<std::size_t>(n));
  allgather(ctx, &mine, sizeof(ColorKey), all.data());

  // Tasks share the address space, so rank 0 can build the new Comm
  // objects once and publish each rank's pointer through a bcast — the
  // thread-based equivalent of agreeing on a context id.
  std::vector<Comm*> comm_of_rank(static_cast<std::size_t>(n), nullptr);
  if (me == 0) {
    std::map<int, std::vector<std::pair<int, int>>> by_color;  // key, old rank
    for (int r = 0; r < n; ++r) {
      const ColorKey& ck = all[static_cast<std::size_t>(r)];
      by_color[ck.color].push_back({ck.key, r});
    }
    for (auto& [c, members] : by_color) {
      std::sort(members.begin(), members.end());
      std::vector<int> group;
      group.reserve(members.size());
      for (const auto& [k, old_rank] : members) {
        group.push_back(global_task(old_rank));
      }
      auto child = std::make_unique<Comm>(
          *rt_, std::move(group), rt_->alloc_context(), rt_->alloc_context(),
          name_ + "/split(" + std::to_string(c) + ")");
      Comm& ref = rt_->register_comm(std::move(child));
      for (const auto& [k, old_rank] : members) {
        comm_of_rank[static_cast<std::size_t>(old_rank)] = &ref;
      }
    }
  }
  bcast(ctx, comm_of_rank.data(), comm_of_rank.size() * sizeof(Comm*), 0);
  return *comm_of_rank[static_cast<std::size_t>(me)];
}

Comm& Comm::dup(ult::TaskContext& ctx) { return split(ctx, 0, rank(ctx)); }

#if HLSMPC_RMA_ENABLED
rma::Win& Comm::win_create(ult::TaskContext& ctx, void* base,
                           std::size_t bytes, const rma::WinOptions& opts) {
  const int me = rank(ctx);
  const int n = size();

  // Gather every rank's exposed region — identical vectors on all ranks.
  const rma::MemRegion mine{base, bytes};
  std::vector<rma::MemRegion> regions(static_cast<std::size_t>(n));
  allgather(ctx, &mine, sizeof(rma::MemRegion), regions.data());

  // Same publication scheme as split(): one address space, so rank 0
  // builds the shared Win once and bcasts the pointer.
  rma::Win* win = nullptr;
  if (me == 0) {
    rma::WinOptions o = opts;
    if (o.obs == nullptr) o.obs = rt_->obs();
    win = &rt_->register_win(
        std::make_unique<rma::Win>(std::move(regions), std::move(o)));
  }
  bcast(ctx, &win, sizeof(win), 0);
  return *win;
}

rma::Win& Comm::win_create(ult::TaskContext& ctx, void* base,
                           std::size_t bytes) {
  return win_create(ctx, base, bytes, rma::WinOptions{});
}

void Comm::win_free(ult::TaskContext& ctx, rma::Win& win) {
  const int me = rank(ctx);
  // Quiesce: order every outstanding access before destruction.
  win.fence(ctx, me);
  // A rank can exit its fence while a peer is still polling the epoch
  // words, so destruction must wait for every rank to leave the window
  // entirely — that is what this comm barrier adds over the fence.
  barrier(ctx);
  if (me == 0) rt_->release_win(win);
}
#endif  // HLSMPC_RMA_ENABLED

}  // namespace hlsmpc::mpi
