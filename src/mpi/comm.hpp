// Communicators: the MPI-facing API of the runtime.
//
// One Comm object is shared by all its member tasks (they live in one
// address space); per-call rank is derived from the calling task's
// context. The byte-oriented core (send/recv/collectives on void*) is
// implemented in p2p.cpp / collectives.cpp; typed templates below forward
// to it. Every operation takes the caller's TaskContext so blocking waits
// cooperate with the fiber scheduler.
//
// Layering (top down — include mpi/mpi.hpp to get the whole public
// surface):
//
//   ClusterComm (cluster.hpp)   multi-node view: node-leader hierarchical
//       |                       collectives, global p2p over the fabric
//   Comm (this file)            intra-node MPI surface; delegates small/
//       |                       large collectives to ShmCollEngine
//   Transport (transport.hpp)   the only way bytes move between ranks:
//       |                       isend/irecv/iprobe + TransportStats
//   ShmTransport | SimFabricTransport | TcpTransport
//                               intra-node mailboxes; a deterministic,
//                               explorable multi-node fabric; real
//                               sockets for multi-process runs
//
// detail/mailbox.hpp (namespace mpi::detail) is the matching-engine
// state shared by the transport implementations; nothing above the
// Transport interface may include it.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "mpi/types.hpp"
#include "ult/task_context.hpp"

#ifndef HLSMPC_RMA_ENABLED
#define HLSMPC_RMA_ENABLED 1
#endif

namespace hlsmpc::mpi {

class Runtime;
class ShmCollEngine;

#if HLSMPC_RMA_ENABLED
namespace rma {
class Win;
struct WinOptions;
}  // namespace rma
#endif

class Comm {
 public:
  /// Built by Runtime (world) or by split/dup; not user-constructible.
  Comm(Runtime& rt, std::vector<int> group, int pt2pt_context,
       int coll_context, std::string name);
  ~Comm();
  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  int size() const { return static_cast<int>(group_.size()); }
  int rank(const ult::TaskContext& ctx) const;
  bool contains(int task_id) const;
  const std::string& name() const { return name_; }
  Runtime& runtime() { return *rt_; }

  // ---- point to point (byte oriented) ----
  void send(ult::TaskContext& ctx, const void* buf, std::size_t bytes,
            int dst, int tag);
  void recv(ult::TaskContext& ctx, void* buf, std::size_t capacity, int src,
            int tag, Status* status = nullptr);
  Request isend(ult::TaskContext& ctx, const void* buf, std::size_t bytes,
                int dst, int tag);
  Request irecv(ult::TaskContext& ctx, void* buf, std::size_t capacity,
                int src, int tag);
  void wait(ult::TaskContext& ctx, Request& req, Status* status = nullptr);
  bool test(Request& req, Status* status = nullptr);
  /// Wait for every request (invalid entries are skipped).
  void waitall(ult::TaskContext& ctx, std::span<Request> reqs);
  /// Wait until one request completes; returns its index (the request is
  /// invalidated). Throws if all requests are invalid.
  int waitany(ult::TaskContext& ctx, std::span<Request> reqs,
              Status* status = nullptr);
  /// Nonblocking probe for a matching unexpected message.
  bool iprobe(ult::TaskContext& ctx, int src, int tag, Status* status);
  void probe(ult::TaskContext& ctx, int src, int tag, Status* status);
  void sendrecv(ult::TaskContext& ctx, const void* sendbuf,
                std::size_t send_bytes, int dst, int sendtag, void* recvbuf,
                std::size_t recv_capacity, int src, int recvtag,
                Status* status = nullptr);

  // ---- collectives (byte oriented) ----
  //
  // ReduceFn convention (all reduction collectives): `fn(inout, in, count)`
  // folds with the ACCUMULATOR AS THE LEFT OPERAND, and contributions are
  // combined in ascending rank order — the result of rank k's reduction is
  // v_0 (+) v_1 (+) ... (+) v_k with the parenthesization free. The
  // operator must be associative; it need NOT be commutative (MPI's
  // MPI_Op_create contract), and both the p2p and shared-memory engines
  // preserve operand order.
  void barrier(ult::TaskContext& ctx);
  void bcast(ult::TaskContext& ctx, void* buf, std::size_t bytes, int root);
  /// Elementwise reduction of `count` elements of `elem_bytes` each.
  void reduce(ult::TaskContext& ctx, const void* sendbuf, void* recvbuf,
              std::size_t count, std::size_t elem_bytes, const ReduceFn& fn,
              int root);
  void allreduce(ult::TaskContext& ctx, const void* sendbuf, void* recvbuf,
                 std::size_t count, std::size_t elem_bytes,
                 const ReduceFn& fn);
  void gather(ult::TaskContext& ctx, const void* sendbuf, std::size_t bytes,
              void* recvbuf, int root);
  void gatherv(ult::TaskContext& ctx, const void* sendbuf, std::size_t bytes,
               void* recvbuf, std::span<const std::size_t> counts,
               std::span<const std::size_t> displs, int root);
  void scatter(ult::TaskContext& ctx, const void* sendbuf, std::size_t bytes,
               void* recvbuf, int root);
  void allgather(ult::TaskContext& ctx, const void* sendbuf,
                 std::size_t bytes, void* recvbuf);
  void alltoall(ult::TaskContext& ctx, const void* sendbuf,
                std::size_t bytes_per_rank, void* recvbuf);
  /// Inclusive prefix scan: rank k receives v_0 (+) ... (+) v_k, folded in
  /// rank order (see the ReduceFn convention above).
  void scan(ult::TaskContext& ctx, const void* sendbuf, void* recvbuf,
            std::size_t count, std::size_t elem_bytes, const ReduceFn& fn);
  /// Exclusive prefix scan: rank k > 0 receives v_0 (+) ... (+) v_{k-1};
  /// rank 0's recvbuf is left untouched (MPI semantics for MPI_Exscan).
  void exscan(ult::TaskContext& ctx, const void* sendbuf, void* recvbuf,
              std::size_t count, std::size_t elem_bytes, const ReduceFn& fn);
  /// Reduce `size()*count` elements, scatter `count` per rank
  /// (MPI_Reduce_scatter_block).
  void reduce_scatter_block(ult::TaskContext& ctx, const void* sendbuf,
                            void* recvbuf, std::size_t count,
                            std::size_t elem_bytes, const ReduceFn& fn);

  /// Shared-memory collective engine serving this comm, or nullptr (size-1
  /// comm, disabled via CollConfig, or compiled out). Exposed for tests
  /// and diagnostics.
  ShmCollEngine* shm_engine() const { return shm_.get(); }

  // ---- communicator management ----
  /// Collective. Ranks with the same color land in the same new
  /// communicator, ordered by (key, old rank). Returns the caller's new
  /// communicator (same object for all members of a color).
  Comm& split(ult::TaskContext& ctx, int color, int key);
  Comm& dup(ult::TaskContext& ctx);

#if HLSMPC_RMA_ENABLED
  // ---- one-sided (RMA) windows ----
  /// Collective. Exposes each rank's [base, base+bytes) for one-sided
  /// access by every member of this comm (ranks may expose different
  /// sizes, including zero). The window lives in the runtime's registry
  /// until win_free; one Win object is shared by all ranks. The overload
  /// without options inherits the runtime's obs recorder; `opts` lets
  /// callers attach a SyncObserver / watchdog (opts.obs == nullptr is
  /// replaced by the runtime's recorder).
  rma::Win& win_create(ult::TaskContext& ctx, void* base, std::size_t bytes,
                       const rma::WinOptions& opts);
  rma::Win& win_create(ult::TaskContext& ctx, void* base, std::size_t bytes);
  /// Collective. Quiesces the window with a final fence, then destroys
  /// it. The reference is dead for every rank after this returns.
  void win_free(ult::TaskContext& ctx, rma::Win& win);
#endif

  // ---- typed convenience ----
  template <typename T>
  void send(ult::TaskContext& ctx, std::span<const T> data, int dst, int tag) {
    send(ctx, data.data(), data.size_bytes(), dst, tag);
  }
  template <typename T>
  void send_value(ult::TaskContext& ctx, const T& v, int dst, int tag) {
    send(ctx, &v, sizeof(T), dst, tag);
  }
  template <typename T>
  void recv(ult::TaskContext& ctx, std::span<T> data, int src, int tag,
            Status* status = nullptr) {
    recv(ctx, data.data(), data.size_bytes(), src, tag, status);
  }
  template <typename T>
  T recv_value(ult::TaskContext& ctx, int src, int tag,
               Status* status = nullptr) {
    T v{};
    recv(ctx, &v, sizeof(T), src, tag, status);
    return v;
  }
  template <typename T>
  void bcast(ult::TaskContext& ctx, std::span<T> data, int root) {
    bcast(ctx, data.data(), data.size_bytes(), root);
  }
  template <typename T>
  T bcast_value(ult::TaskContext& ctx, T v, int root) {
    bcast(ctx, &v, sizeof(T), root);
    return v;
  }
  template <typename T>
  void reduce(ult::TaskContext& ctx, std::span<const T> in, std::span<T> out,
              Op op, int root) {
    reduce(ctx, in.data(), out.data(), in.size(), sizeof(T),
           make_reduce_fn<T>(op), root);
  }
  template <typename T>
  void allreduce(ult::TaskContext& ctx, std::span<const T> in,
                 std::span<T> out, Op op) {
    allreduce(ctx, in.data(), out.data(), in.size(), sizeof(T),
              make_reduce_fn<T>(op));
  }
  template <typename T>
  T allreduce_value(ult::TaskContext& ctx, const T& v, Op op) {
    T out{};
    allreduce(ctx, &v, &out, 1, sizeof(T), make_reduce_fn<T>(op));
    return out;
  }
  template <typename T>
  T scan_value(ult::TaskContext& ctx, const T& v, Op op) {
    T out{};
    scan(ctx, &v, &out, 1, sizeof(T), make_reduce_fn<T>(op));
    return out;
  }
  template <typename T>
  T exscan_value(ult::TaskContext& ctx, const T& v, Op op, T identity = T{}) {
    T out = identity;
    exscan(ctx, &v, &out, 1, sizeof(T), make_reduce_fn<T>(op));
    return out;
  }
  /// Allreduce with a user-defined elementwise combiner (the MPI_Op_create
  /// analogue). `combine(inout, in)` must be associative; commutativity is
  /// NOT required — contributions fold in ascending rank order with the
  /// accumulator as the left operand.
  template <typename T, typename Fn>
  void allreduce_custom(ult::TaskContext& ctx, std::span<const T> in,
                        std::span<T> out, Fn combine) {
    ReduceFn fn = [combine](void* a, const void* b, std::size_t count) {
      T* x = static_cast<T*>(a);
      const T* y = static_cast<const T*>(b);
      for (std::size_t i = 0; i < count; ++i) combine(x[i], y[i]);
    };
    allreduce(ctx, in.data(), out.data(), in.size(), sizeof(T), fn);
  }

 private:
  friend class Runtime;

  /// Internal send with explicit context id (collectives use coll_context_).
  void send_ctx(ult::TaskContext& ctx, const void* buf, std::size_t bytes,
                int dst, int tag, int context);
  Request isend_ctx(ult::TaskContext& ctx, const void* buf, std::size_t bytes,
                    int dst, int tag, int context);
  void recv_ctx(ult::TaskContext& ctx, void* buf, std::size_t capacity,
                int src, int tag, int context, Status* status);
  Request irecv_ctx(ult::TaskContext& ctx, void* buf, std::size_t capacity,
                    int src, int tag, int context);

  int global_task(int rank) const;
  void check_rank(int rank, const char* what) const;
  void check_tag(int tag) const;
  /// Fresh tag for the caller's next collective on this comm. All ranks
  /// call collectives on a comm in the same order (MPI requirement), so
  /// per-rank counters agree.
  int next_coll_tag(int rank);

  Runtime* rt_;
  std::vector<int> group_;         // rank -> global task id
  std::vector<int> rank_of_task_;  // global task id -> rank (-1 if absent)
  int pt2pt_context_;
  int coll_context_;
  std::string name_;
  std::vector<std::uint32_t> coll_seq_;  // per rank
  /// Topology-aware shared-memory collective engine (null when the p2p
  /// algorithms serve this comm; see shm_engine()).
  std::unique_ptr<ShmCollEngine> shm_;
};

}  // namespace hlsmpc::mpi
