// Basic types of the MPI-subset runtime.
//
// The runtime is byte-oriented (everything is MPI_BYTE underneath, as in a
// real implementation's progress engine); typed convenience wrappers live
// on Comm. Requests are shared completion records: blocking calls are
// nonblocking calls plus wait, exactly the MPI formulation.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <type_traits>

namespace hlsmpc::mpi {

/// Wildcards, same semantics as MPI_ANY_SOURCE / MPI_ANY_TAG.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Largest tag value an application may use (small internal headroom is
/// reserved above it for collective protocols).
inline constexpr int kMaxUserTag = 1 << 24;

class MpiError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct Status {
  int source = kAnySource;
  int tag = kAnyTag;
  std::size_t bytes = 0;
};

/// Completion record shared between the initiating task and the peer that
/// completes the operation.
struct RequestState {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Status status;
  /// Non-empty if the operation failed (e.g. truncation); surfaced as an
  /// MpiError from wait()/test() in the initiating task.
  std::string error;
  /// >= 0 when the failure is a dead peer *node* (transport-level
  /// supervision): transport_wait() rethrows these as NodeDeadError so
  /// cluster code can name the first unreachable node.
  int error_node = -1;
  /// Tracing metadata: receives are reported to the TraceHook at wait()
  /// time (when the synchronization takes effect and the source is
  /// resolved).
  bool trace_is_recv = false;
  int trace_context = -1;

  void complete(const Status& st) {
    {
      std::lock_guard<std::mutex> lk(mu);
      status = st;
      done = true;
    }
    cv.notify_all();
  }

  void complete_error(std::string message, int dead_node = -1) {
    {
      std::lock_guard<std::mutex> lk(mu);
      error = std::move(message);
      error_node = dead_node;
      done = true;
    }
    cv.notify_all();
  }
};

/// Handle to an in-flight nonblocking operation. Copyable (shared state);
/// wait/test live on Comm because they need the task context.
class Request {
 public:
  Request() = default;
  explicit Request(std::shared_ptr<RequestState> st) : st_(std::move(st)) {}

  bool valid() const { return st_ != nullptr; }
  std::shared_ptr<RequestState>& state() { return st_; }

 private:
  std::shared_ptr<RequestState> st_;
};

/// Built-in reduction operators (MPI_SUM and friends).
enum class Op { sum, prod, min, max, land, lor, band, bor };

template <typename T>
void apply_op(Op op, T& inout, const T& in) {
  switch (op) {
    case Op::sum:
      inout = static_cast<T>(inout + in);
      return;
    case Op::prod:
      inout = static_cast<T>(inout * in);
      return;
    case Op::min:
      if (in < inout) inout = in;
      return;
    case Op::max:
      if (inout < in) inout = in;
      return;
    case Op::land:
      inout = static_cast<T>(inout && in);
      return;
    case Op::lor:
      inout = static_cast<T>(inout || in);
      return;
    case Op::band:
      if constexpr (std::is_integral_v<T>) {
        inout = static_cast<T>(inout & in);
        return;
      }
      break;
    case Op::bor:
      if constexpr (std::is_integral_v<T>) {
        inout = static_cast<T>(inout | in);
        return;
      }
      break;
  }
  throw MpiError("apply_op: bitwise op on non-integral type");
}

/// Type-erased elementwise reduction `inout[i] = op(inout[i], in[i])`,
/// what the untyped collective engine calls back into.
using ReduceFn =
    std::function<void(void* inout, const void* in, std::size_t count)>;

/// Collective-engine tuning (Runtime Options::coll). The shared-memory
/// engine exploits the fact that all ranks of a node live in one address
/// space: collectives move data through a per-communicator shared control
/// block instead of mailbox messages. The compile-time switch
/// HLSMPC_COLL_SHM (macro HLSMPC_COLL_SHM_ENABLED) removes the dispatch
/// entirely, keeping the p2p fallback algorithms buildable and testable.
struct CollConfig {
  /// Route collectives through the shared-memory engine when a
  /// communicator has >= 2 ranks. Off = always the p2p algorithms
  /// (useful for correctness diffing).
  bool enable_shm = true;
  /// Payloads <= this many bytes take the staged flat path (one copy into
  /// an inline cache-line-padded slot, flat completion barrier); larger
  /// payloads are read zero-copy from the publishing rank's own buffer
  /// under the hierarchical barrier. Must agree across ranks (it is
  /// per-runtime, so it does).
  std::size_t small_threshold = 1024;
  /// Payloads strictly above this many bytes take the pipelined path:
  /// buffers are split into `fragment_bytes` fragments with per-fragment
  /// release-publish sequence numbers, so leaders forward fragment k up
  /// the topology tree while children still produce fragment k+1 and the
  /// reduce and bcast phases of allreduce interleave per fragment.
  /// SIZE_MAX restores the PR 5 two-way selector (and the
  /// HLSMPC_COLL_PIPELINE=OFF build forces exactly that). The staged arm
  /// wins ties: bytes <= small_threshold is checked first. The default
  /// selects pipelining only where fragment-sized working sets beat the
  /// monolithic fold's cache behaviour: below ~256 KB per rank the whole
  /// collective already fits in L2 on current parts and the two paths
  /// measure even, so the crossover sits past that point.
  std::size_t pipeline_threshold = 256 * 1024;
  /// Fragment granularity of the pipelined path (clamped to >= 1 element).
  /// Cache-friendly sizes (8–64KB) keep a fragment plus its accumulator
  /// resident in L1/L2 across the whole tree fold; 32 KB measured best on
  /// the multi-megabyte payloads the selector sends here.
  std::size_t fragment_bytes = 32 * 1024;
  /// Yield the producing task periodically while publishing result
  /// fragments (once per ~128 KB window, not per fragment — a yield is a
  /// full scheduler round trip through every waiting rank). On
  /// cooperative (fiber) executors this is what makes the pipeline real:
  /// consumers batch-drain a window of fragments while they are still
  /// cache-hot instead of after the producer finished the entire buffer.
  bool pipeline_yield = true;
};

template <typename T>
ReduceFn make_reduce_fn(Op op) {
  return [op](void* inout, const void* in, std::size_t count) {
    T* a = static_cast<T*>(inout);
    const T* b = static_cast<const T*>(in);
    for (std::size_t i = 0; i < count; ++i) apply_op(op, a[i], b[i]);
  };
}

}  // namespace hlsmpc::mpi
