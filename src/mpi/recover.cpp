#include "mpi/recover.hpp"

#if HLSMPC_RECOVERY_ENABLED

#include <cstring>
#include <string>

namespace hlsmpc::mpi::recover {

namespace {

/// On-the-wire protocol message. Fixed-width fields, moved verbatim (both
/// transports connect processes of one build on one host).
struct WireMsg {
  std::uint32_t kind = 0;
  std::uint32_t attempt = 0;
  std::uint64_t mask = 0;
};
constexpr std::uint32_t kMask = 1;   ///< participant -> coordinator
constexpr std::uint32_t kFinal = 2;  ///< coordinator -> participants

constexpr std::uint64_t bit(int n) { return std::uint64_t{1} << n; }

/// Tag namespacing: (epoch, attempt, phase) so neither an earlier attempt
/// nor an earlier episode can satisfy this round's matches.
int shrink_tag(std::uint32_t epoch, int attempt, int phase) {
  return static_cast<int>(((epoch & 0x3ffu) << 20) |
                          ((static_cast<std::uint32_t>(attempt) & 0xffffu)
                           << 4) |
                          (static_cast<std::uint32_t>(phase) & 0xfu));
}

ShrinkDecision make_decision(std::uint64_t mask, int attempts,
                             const std::vector<int>& members) {
  ShrinkDecision d;
  d.dead_mask = mask;
  d.attempts = attempts;
  for (int n : members) {
    if ((mask & bit(n)) == 0) d.live.push_back(n);
  }
  return d;
}

}  // namespace

// ---------------------------------------------------------------------------
// FabricRecoveryChannel

bool FabricRecoveryChannel::send(ult::TaskContext& ctx, int dst_node,
                                 const void* buf, std::size_t bytes,
                                 int tag) {
  try {
    Request r = fabric_->isend(ctx, leader_ep(me_), leader_ep(dst_node),
                               leader_ep(dst_node), buf, bytes, tag,
                               kRecoveryContext);
    transport_wait(ctx, r);
    return true;
  } catch (const NodeDeadError&) {
    return false;
  } catch (const TransportError&) {
    // Transient budget exhausted towards this peer: persistent failure,
    // classify the peer dead (the escalation contract of retry.hpp).
    fabric_->kill_node(dst_node);
    return false;
  }
}

RecoveryChannel::RecvResult FabricRecoveryChannel::recv(
    ult::TaskContext& ctx, int src_node, void* buf, std::size_t capacity,
    int tag, std::chrono::milliseconds timeout) {
  try {
    Request r = fabric_->irecv(ctx, leader_ep(me_), buf, capacity,
                               leader_ep(src_node), tag, kRecoveryContext);
    if (!transport_wait_for(ctx, r, timeout)) {
      // Silent peer past the deadline: declare it dead (which sweeps the
      // posted receive) and consume the swept completion.
      fabric_->kill_node(src_node);
      try {
        transport_wait(ctx, r);
      } catch (const NodeDeadError&) {
      }
      return RecvResult::timeout;
    }
    return RecvResult::ok;
  } catch (const NodeDeadError&) {
    return RecvResult::dead;
  }
}

// ---------------------------------------------------------------------------
// TcpRecoveryChannel

#if HLSMPC_TCP_ENABLED

bool TcpRecoveryChannel::send(ult::TaskContext& ctx, int dst_node,
                              const void* buf, std::size_t bytes, int tag) {
  try {
    Request r = tcp_->isend(ctx, /*src=*/tcp_->me(), dst_node, dst_node,
                            buf, bytes, tag, kRecoveryContext);
    transport_wait(ctx, r);
    return true;
  } catch (const NodeDeadError&) {
    return false;
  } catch (const TransportError&) {
    tcp_->declare_dead(dst_node);
    return false;
  }
}

RecoveryChannel::RecvResult TcpRecoveryChannel::recv(
    ult::TaskContext& ctx, int src_node, void* buf, std::size_t capacity,
    int tag, std::chrono::milliseconds timeout) {
  try {
    Request r = tcp_->irecv(ctx, tcp_->me(), buf, capacity, src_node, tag,
                            kRecoveryContext);
    if (!transport_wait_for(ctx, r, timeout)) {
      tcp_->declare_dead(src_node);
      try {
        transport_wait(ctx, r);
      } catch (const NodeDeadError&) {
      }
      return RecvResult::timeout;
    }
    return RecvResult::ok;
  } catch (const NodeDeadError&) {
    return RecvResult::dead;
  }
}

#endif  // HLSMPC_TCP_ENABLED

// ---------------------------------------------------------------------------
// shrink_agree

ShrinkDecision shrink_agree(ult::TaskContext& ctx, RecoveryChannel& ch,
                            int me, const std::vector<int>& members,
                            const ShrinkConfig& cfg) {
  if (members.empty() || members.back() >= 64) {
    throw MpiError("shrink: members must be non-empty node ids < 64");
  }
  bool me_member = false;
  for (int n : members) me_member = me_member || n == me;
  if (!me_member) {
    throw MpiError("shrink: node " + std::to_string(me) + " not a member");
  }

  auto suspect_mask = [&] {
    std::uint64_t m = 0;
    for (int n : members) {
      if (ch.node_dead(n)) m |= bit(n);
    }
    return m;
  };

  const int max_attempts = cfg.max_attempts > 0
                               ? cfg.max_attempts
                               : static_cast<int>(members.size()) + 1;
  std::uint64_t mask = 0;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    // One explorable decision point per round: the explorer can land a
    // concurrent death before, between or after any round.
    ctx.sync_point("shrink:round");
    mask |= suspect_mask();
    if ((mask & bit(me)) != 0) {
      throw NodeDeadError(me, "shrink: node " + std::to_string(me) +
                                  " has been declared dead");
    }
    int coord = -1;
    for (int n : members) {
      if ((mask & bit(n)) == 0) {
        coord = n;
        break;
      }
    }
    // me is not suspect, so a coordinator always exists.

    if (coord == me) {
      std::uint64_t uni = mask;
      for (int p : members) {
        if (p == me || (mask & bit(p)) != 0) continue;
        WireMsg in;
        const auto r =
            ch.recv(ctx, p, &in, sizeof(in),
                    shrink_tag(cfg.epoch, attempt, kMask), cfg.round_timeout);
        if (r == RecoveryChannel::RecvResult::ok && in.kind == kMask) {
          uni |= in.mask;
        } else {
          // Dead or silent: both exclude the peer. recv's timeout path
          // already declared it; declare again for the dead path learned
          // via a third party's flag (idempotent).
          ch.declare_dead(p);
          uni |= bit(p);
        }
      }
      // Fold in deaths that landed while gathering.
      uni |= suspect_mask();
      WireMsg fin{kFinal, static_cast<std::uint32_t>(attempt), uni};
      for (int p : members) {
        if (p == me || (uni & bit(p)) != 0) continue;
        // A failed dissemination send means the peer just died; it is not
        // in this verdict's mask, so the next episode (triggered the
        // moment a survivor touches it) will exclude it.
        (void)ch.send(ctx, p, &fin, sizeof(fin),
                      shrink_tag(cfg.epoch, attempt, kFinal));
      }
      return make_decision(uni, attempt, members);
    }

    // Participant: report suspects, await the verdict; a failed
    // coordinator becomes a suspect and the next round elects its
    // successor.
    WireMsg m{kMask, static_cast<std::uint32_t>(attempt), mask};
    if (!ch.send(ctx, coord, &m, sizeof(m),
                 shrink_tag(cfg.epoch, attempt, kMask))) {
      mask |= bit(coord);
      continue;
    }
    WireMsg fin;
    const auto r =
        ch.recv(ctx, coord, &fin, sizeof(fin),
                shrink_tag(cfg.epoch, attempt, kFinal), cfg.round_timeout);
    if (r == RecoveryChannel::RecvResult::ok && fin.kind == kFinal) {
      return make_decision(fin.mask, attempt, members);
    }
    ch.declare_dead(coord);
    mask |= bit(coord);
  }
  throw MpiError("shrink: agreement did not converge within " +
                 std::to_string(max_attempts) + " attempts");
}

// ---------------------------------------------------------------------------
// survivor_allreduce

namespace {

void channel_sendrecv_fail(const char* what, int node) {
  throw MpiError(std::string("survivor_allreduce: ") + what + " node " +
                 std::to_string(node) + " failed");
}

}  // namespace

void survivor_allreduce(ult::TaskContext& ctx, RecoveryChannel& ch,
                        int me_node, const std::vector<int>& live, void* buf,
                        std::size_t count, std::size_t elem_bytes,
                        const ReduceFn& fn, int tag,
                        std::chrono::milliseconds timeout) {
  const int npos = static_cast<int>(live.size());
  int pos = -1;
  for (int i = 0; i < npos; ++i) {
    if (live[static_cast<std::size_t>(i)] == me_node) pos = i;
  }
  if (pos < 0) {
    throw MpiError("survivor_allreduce: node " + std::to_string(me_node) +
                   " not in the live set");
  }
  const std::size_t bytes = count * elem_bytes;
  std::vector<std::byte> partner(bytes);

  // Binomial fold to live[0] in TRUE position order: ascending position is
  // ascending node id, so the lower member of each pair holds the fold of
  // a contiguous survivor range ending right before its partner's range
  // and applies the partner's partial as the RIGHT operand — the exact
  // ascending fold, associativity only.
  for (int step = 1; step < npos; step <<= 1) {
    if ((pos & step) != 0) {
      const int dst = live[static_cast<std::size_t>(pos - step)];
      if (!ch.send(ctx, dst, buf, bytes, tag)) {
        channel_sendrecv_fail("send to", dst);
      }
      break;
    }
    if (pos + step < npos) {
      const int src = live[static_cast<std::size_t>(pos + step)];
      if (ch.recv(ctx, src, partner.data(), bytes, tag, timeout) !=
          RecoveryChannel::RecvResult::ok) {
        channel_sendrecv_fail("recv from", src);
      }
      fn(buf, partner.data(), count);
    }
  }

  // Binomial bcast of the fold from position 0 (no rotation needed).
  int step = 1;
  while (step < npos) {
    if ((pos & step) != 0) {
      const int src = live[static_cast<std::size_t>(pos - step)];
      if (ch.recv(ctx, src, buf, bytes, tag + 1, timeout) !=
          RecoveryChannel::RecvResult::ok) {
        channel_sendrecv_fail("recv from", src);
      }
      break;
    }
    step <<= 1;
  }
  step >>= 1;
  while (step > 0) {
    if (pos + step < npos) {
      const int dst = live[static_cast<std::size_t>(pos + step)];
      if (!ch.send(ctx, dst, buf, bytes, tag + 1)) {
        channel_sendrecv_fail("send to", dst);
      }
    }
    step >>= 1;
  }
}

}  // namespace hlsmpc::mpi::recover

#endif  // HLSMPC_RECOVERY_ENABLED
