// Transport abstraction: where p2p bytes actually move.
//
// Comm implements MPI semantics (ranks, communicators, collectives,
// request lifecycles) and hands every message to a Transport. A transport
// owns a set of *endpoints* (one per communicating entity it serves) and
// provides nonblocking send/recv/probe with the completion semantics the
// shared-memory mailbox has always implied:
//
//   - isend returns a Request that completes when the payload no longer
//     needs the caller's buffer (immediately for eager/copying transports,
//     at match time for rendezvous).
//   - irecv returns a Request completed by whichever side performs the
//     match; Status carries (source, tag, bytes).
//   - Matching is non-overtaking per (source, tag, context).
//   - Completion is signalled through RequestState's mutex/cv, so waiting
//     composes with ult::wait_until on every executor back end.
//
// Implementations:
//   - ShmTransport (shm_transport.hpp): the intra-node engine; endpoints
//     are node-local task ids sharing one address space, with the eager /
//     rendezvous split and the same-address copy elision of paper §V.B.3.
//   - SimFabricTransport (sim_fabric.hpp): a deterministic simulated
//     inter-node fabric; endpoints are cluster-global ranks, every send is
//     a copy, and schedule points are exposed to src/check's deterministic
//     executor so multi-node protocols are explorable and replayable.
//   - TcpTransport (tcp_transport.hpp, HLSMPC_TCP=ON builds only):
//     endpoints are nodes joined by stream sockets for real multi-node
//     runs; peer death surfaces as NodeDeadError.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "fault/error.hpp"
#include "mpi/types.hpp"
#include "ult/task_context.hpp"

namespace hlsmpc::mpi {

/// Node-wide message-path statistics (observable in tests and benches).
struct TransportStats {
  std::atomic<std::uint64_t> messages{0};
  std::atomic<std::uint64_t> bytes{0};
  std::atomic<std::uint64_t> eager_sends{0};
  std::atomic<std::uint64_t> rendezvous_sends{0};
  /// Copies skipped because source and destination buffers were the same
  /// address (HLS-shared image trick, paper §V.B.3).
  std::atomic<std::uint64_t> copies_elided{0};
  /// Collective calls served by the shared-memory engine (one per rank
  /// entering such a call; zero transport messages are sent for these).
  std::atomic<std::uint64_t> shm_collectives{0};
  /// Bytes memcpy'd by the shared-memory collective engine. For a bcast of
  /// B bytes to n ranks this is (n-1)*B — against the p2p binomial tree's
  /// per-hop eager/rendezvous copies it is the "fewer copies" evidence the
  /// benches assert.
  std::atomic<std::uint64_t> shm_copied_bytes{0};
  /// Collective calls that took the fragmented pipelined large-message
  /// path (one per rank entering such a call).
  std::atomic<std::uint64_t> shm_pipelined_collectives{0};
  /// Fragments published by the pipelined path (contribution and result
  /// channels combined).
  std::atomic<std::uint64_t> shm_fragments{0};
  /// Registration-cache outcomes: a hit means the (buffer, length) pair's
  /// fragment geometry and attach block were reused from the per-rank
  /// cache; a miss re-resolved and possibly evicted.
  std::atomic<std::uint64_t> reg_cache_hits{0};
  std::atomic<std::uint64_t> reg_cache_misses{0};
  /// Operations re-issued after a transient failure (EINTR/EAGAIN,
  /// injected link flap). A retried op that eventually succeeds counts
  /// here but nowhere else; exhaustion surfaces as transport_exhausted.
  std::atomic<std::uint64_t> retries{0};
  /// Transient link failures observed (each flap hit, whether or not the
  /// retry budget eventually cleared it).
  std::atomic<std::uint64_t> link_flaps{0};
};

/// Reserved context id for recovery-protocol traffic (mpi/recover.hpp).
/// Fabric transports refuse all ordinary traffic while poisoned by a node
/// death; messages in this context bypass the global poison check (they
/// still fail against per-node dead flags) so surviving nodes can run the
/// shrink agreement over the very fabric that just lost a member.
inline constexpr int kRecoveryContext = 0x7ec0;

/// Capacity bounds on queued unexpected messages, per destination
/// endpoint. 0 = unlimited (the intra-node default: the BufferManager
/// already charges eager payloads to the memory tracker). A bounded
/// transport refuses the send *before* enqueuing anything and throws
/// TransportError(transport_exhausted) — clean degradation, the caller
/// may drain matching receives and retry.
struct TransportLimits {
  std::size_t max_unexpected_msgs = 0;
  std::size_t max_unexpected_bytes = 0;
};

/// Transport failure carrying the structured taxonomy of fault/error.hpp.
class TransportError : public MpiError {
 public:
  TransportError(hlsmpc::ErrorCode code, const std::string& what)
      : MpiError(what), code_(code) {}
  hlsmpc::ErrorCode code() const { return code_; }

 private:
  hlsmpc::ErrorCode code_;
};

/// A whole peer node is unreachable (killed, disconnected, simulated
/// failure). `node()` names the dead node; the transport's
/// first_dead_node() names the *first* node observed dead, which is what
/// cluster-level supervision reports.
class NodeDeadError : public TransportError {
 public:
  NodeDeadError(int node, const std::string& what)
      : TransportError(hlsmpc::ErrorCode::node_unreachable, what),
        node_(node) {}
  int node() const { return node_; }

 private:
  int node_;
};

class Transport {
 public:
  virtual ~Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  virtual const char* name() const = 0;
  /// Number of endpoints this transport serves; endpoint ids are
  /// [0, nendpoints).
  virtual int nendpoints() const = 0;

  /// Nonblocking send of `bytes` from `buf` to endpoint `dst_ep`.
  /// `src` is the sender's rank label stamped on the message: it is what
  /// matching compares against and what the receiver's Status.source
  /// reports (comm-local rank for ShmTransport under a Comm, global rank
  /// for the fabric). `dst` is the destination's rank label, reported in
  /// the sender's own Status.
  virtual Request isend(ult::TaskContext& ctx, int src, int dst_ep, int dst,
                        const void* buf, std::size_t bytes, int tag,
                        int context) = 0;

  /// Nonblocking receive into `buf` at endpoint `me_ep`, matching sender
  /// label `src` (or kAnySource) and `tag` (or kAnyTag) within `context`.
  virtual Request irecv(ult::TaskContext& ctx, int me_ep, void* buf,
                        std::size_t capacity, int src, int tag,
                        int context) = 0;

  /// Nonblocking probe: is a matching unexpected message queued at
  /// `me_ep`? Fills `status` (source, tag, bytes) without consuming it.
  virtual bool iprobe(int me_ep, int src, int tag, int context,
                      Status* status) = 0;

  TransportStats& stats() { return stats_; }

 protected:
  Transport() = default;

  TransportStats stats_;
};

/// Wait for a transport request outside Comm (conformance tests, cluster
/// internals): cooperates with the executor via ult::wait_until, rethrows
/// a dead-node completion as NodeDeadError and anything else as MpiError.
void transport_wait(ult::TaskContext& ctx, Request& req,
                    Status* status = nullptr);

/// Timed variant: gives up after `timeout`, returning false with the
/// request STILL PENDING — the caller must keep the buffer alive and
/// either wait again or escalate (declaring the silent peer dead sweeps
/// the posted receive, after which a final transport_wait consumes the
/// error). Returns true and behaves exactly like transport_wait on
/// completion within the deadline.
bool transport_wait_for(ult::TaskContext& ctx, Request& req,
                        std::chrono::milliseconds timeout,
                        Status* status = nullptr);

}  // namespace hlsmpc::mpi
