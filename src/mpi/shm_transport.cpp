#include "mpi/shm_transport.hpp"

#include <cstring>
#include <string>

#include "fault/injector.hpp"

namespace hlsmpc::mpi {

namespace {

/// Copy that skips the memcpy when source and destination alias — the
/// intra-node optimisation the paper exploits for Tachyon's shared image
/// (§V.B.3): "if the source and the destination are identical ... this
/// copy is not realized".
void copy_payload(void* dst, const void* src, std::size_t bytes,
                  TransportStats& stats) {
  if (bytes == 0) return;
  if (dst == src) {
    stats.copies_elided.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::memcpy(dst, src, bytes);
}

bool posted_matches(const detail::PostedRecv& pr, int src_rank, int tag,
                    int context) {
  return pr.context == context &&
         (pr.src == kAnySource || pr.src == src_rank) &&
         (pr.tag == kAnyTag || pr.tag == tag);
}

}  // namespace

ShmTransport::ShmTransport(int nendpoints, BufferManager& buffers,
                           TransportLimits limits)
    : buffers_(buffers), limits_(limits) {
  mailboxes_.reserve(static_cast<std::size_t>(nendpoints));
  for (int i = 0; i < nendpoints; ++i) {
    mailboxes_.push_back(std::make_unique<detail::Mailbox>());
  }
}

detail::Mailbox& ShmTransport::mailbox(int ep, const char* what) {
  if (ep < 0 || ep >= nendpoints()) {
    throw MpiError(std::string(what) + ": bad endpoint " +
                   std::to_string(ep));
  }
  return *mailboxes_[static_cast<std::size_t>(ep)];
}

void ShmTransport::ride_out_flaps(ult::TaskContext& ctx, int ep,
                                  const char* what) {
  RetryBackoff backoff(retry_, 0x9e3779b97f4a7c15ull ^
                                   static_cast<std::uint64_t>(ep + 1));
  int attempt = 1;
  while (fault::should_fail("shm:flap", ep)) {
    stats_.link_flaps.fetch_add(1, std::memory_order_relaxed);
    if (attempt >= retry_.max_attempts) {
      throw TransportError(
          hlsmpc::ErrorCode::transport_exhausted,
          std::string(what) + ": endpoint " + std::to_string(ep) +
              " still failing after " + std::to_string(attempt) +
              " attempts — transient retry budget exhausted");
    }
    stats_.retries.fetch_add(1, std::memory_order_relaxed);
    backoff.wait(ctx, attempt);
    ++attempt;
  }
}

Request ShmTransport::isend(ult::TaskContext& ctx, int src, int dst_ep,
                            int dst, const void* buf, std::size_t bytes,
                            int tag, int context) {
  ride_out_flaps(ctx, dst_ep, "send");
  stats_.messages.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes.fetch_add(bytes, std::memory_order_relaxed);
  detail::Mailbox& mb = mailbox(dst_ep, "send");
  auto req = std::make_shared<RequestState>();

  std::unique_lock<std::mutex> lk(mb.mu);
  // Fast path: a matching receive is already posted — copy straight into
  // the user buffer (this is what makes thread-based intra-node MPI fast).
  for (auto it = mb.posted.begin(); it != mb.posted.end(); ++it) {
    if (!posted_matches(*it, src, tag, context)) continue;
    detail::PostedRecv pr = *it;
    mb.posted.erase(it);
    lk.unlock();
    if (bytes > pr.capacity) {
      pr.req->complete_error("recv truncated: message of " +
                             std::to_string(bytes) + " bytes into " +
                             std::to_string(pr.capacity) + " byte buffer");
      req->complete_error("send: matching receive buffer too small");
      return Request(req);
    }
    copy_payload(pr.buf, buf, bytes, stats_);
    pr.req->complete(Status{src, tag, bytes});
    req->complete(Status{dst, tag, bytes});
    return Request(req);
  }

  // Capacity check before enqueuing anything: exhaustion is clean
  // degradation (transport.hpp), nothing is mutated past this point.
  if ((limits_.max_unexpected_msgs != 0 &&
       mb.unexpected.size() >= limits_.max_unexpected_msgs) ||
      (limits_.max_unexpected_bytes != 0 &&
       mb.unexpected_bytes + bytes > limits_.max_unexpected_bytes)) {
    throw TransportError(hlsmpc::ErrorCode::transport_exhausted,
                         "send: unexpected-message queue of endpoint " +
                             std::to_string(dst_ep) + " full");
  }

  if (bytes <= buffers_.eager_threshold()) {
    // Eager: copy into a leased buffer; the send completes immediately
    // (buffered-send semantics, like any eager protocol).
    detail::UnexpectedMsg msg;
    msg.src = src;
    msg.tag = tag;
    msg.context = context;
    msg.bytes = bytes;
    msg.payload = buffers_.acquire(bytes);
    if (bytes > 0) std::memcpy(msg.payload.data(), buf, bytes);
    mb.unexpected.push_back(std::move(msg));
    mb.unexpected_bytes += bytes;
    lk.unlock();
    stats_.eager_sends.fetch_add(1, std::memory_order_relaxed);
    req->complete(Status{dst, tag, bytes});
    return Request(req);
  }

  // Rendezvous: leave a descriptor pointing at the caller's buffer; the
  // receiver copies and only then completes this request, so the caller's
  // buffer stays live while the message is in flight.
  detail::UnexpectedMsg msg;
  msg.src = src;
  msg.tag = tag;
  msg.context = context;
  msg.bytes = bytes;
  msg.rdv_src = buf;
  msg.sender_req = req;
  mb.unexpected.push_back(std::move(msg));
  lk.unlock();
  stats_.rendezvous_sends.fetch_add(1, std::memory_order_relaxed);
  return Request(req);
}

Request ShmTransport::irecv(ult::TaskContext& ctx, int me_ep, void* buf,
                            std::size_t capacity, int src, int tag,
                            int context) {
  ride_out_flaps(ctx, me_ep, "recv");
  detail::Mailbox& mb = mailbox(me_ep, "recv");
  auto req = std::make_shared<RequestState>();
  req->trace_is_recv = true;
  req->trace_context = context;

  std::unique_lock<std::mutex> lk(mb.mu);
  for (auto it = mb.unexpected.begin(); it != mb.unexpected.end(); ++it) {
    if (!it->matches(src, tag, context)) continue;
    detail::UnexpectedMsg msg = std::move(*it);
    mb.unexpected.erase(it);
    if (!msg.is_rendezvous()) mb.unexpected_bytes -= msg.bytes;
    lk.unlock();
    if (msg.bytes > capacity) {
      if (msg.is_rendezvous()) {
        msg.sender_req->complete_error("send: receive buffer too small");
      }
      req->complete_error("recv truncated: message of " +
                          std::to_string(msg.bytes) + " bytes into " +
                          std::to_string(capacity) + " byte buffer");
      return Request(req);
    }
    if (msg.is_rendezvous()) {
      copy_payload(buf, msg.rdv_src, msg.bytes, stats_);
      msg.sender_req->complete(Status{/*source=*/-1, msg.tag, msg.bytes});
    } else {
      // Note: no same-address elision here. An eager send completes
      // immediately, so by match time the sender's buffer may be freed
      // and its address legitimately reused — only the payload copy is
      // trustworthy. Same-address elision applies on the synchronous
      // paths (posted-receive match and rendezvous), where the sender's
      // buffer is still live.
      copy_payload(buf, msg.data(), msg.bytes, stats_);
    }
    req->complete(Status{msg.src, msg.tag, msg.bytes});
    return Request(req);
  }

  mb.posted.push_back(
      detail::PostedRecv{buf, capacity, src, tag, context, req});
  return Request(req);
}

void ShmTransport::drain() {
  for (auto& mbp : mailboxes_) {
    detail::Mailbox& mb = *mbp;
    std::deque<detail::UnexpectedMsg> unexpected;
    std::deque<detail::PostedRecv> posted;
    {
      std::lock_guard<std::mutex> lk(mb.mu);
      unexpected.swap(mb.unexpected);
      posted.swap(mb.posted);
      mb.unexpected_bytes = 0;
    }
    for (detail::PostedRecv& pr : posted) {
      pr.req->complete_error("recv: transport drained for recovery");
    }
    for (detail::UnexpectedMsg& msg : unexpected) {
      if (msg.is_rendezvous()) {
        msg.sender_req->complete_error("send: transport drained for recovery");
      }
    }
  }
}

bool ShmTransport::iprobe(int me_ep, int src, int tag, int context,
                          Status* status) {
  detail::Mailbox& mb = mailbox(me_ep, "iprobe");
  std::lock_guard<std::mutex> lk(mb.mu);
  for (const detail::UnexpectedMsg& msg : mb.unexpected) {
    if (msg.matches(src, tag, context)) {
      if (status != nullptr) *status = Status{msg.src, msg.tag, msg.bytes};
      return true;
    }
  }
  return false;
}

}  // namespace hlsmpc::mpi
