#include "mpi/sim_fabric.hpp"

#include <cstring>
#include <string>

#include "fault/injector.hpp"
#include "obs/recorder.hpp"

namespace hlsmpc::mpi {

namespace {

bool posted_matches(const detail::PostedRecv& pr, int src_rank, int tag,
                    int context) {
  return pr.context == context &&
         (pr.src == kAnySource || pr.src == src_rank) &&
         (pr.tag == kAnyTag || pr.tag == tag);
}

}  // namespace

SimFabricTransport::SimFabricTransport(Options opts) : opts_(opts) {
  if (opts_.ranks_per_node <= 0 || opts_.nranks <= 0 ||
      opts_.nranks % opts_.ranks_per_node != 0) {
    throw MpiError("SimFabricTransport: nranks must be a positive multiple "
                   "of ranks_per_node");
  }
  nnodes_ = opts_.nranks / opts_.ranks_per_node;
  mailboxes_.reserve(static_cast<std::size_t>(opts_.nranks));
  for (int i = 0; i < opts_.nranks; ++i) {
    mailboxes_.push_back(std::make_unique<detail::Mailbox>());
  }
  dead_ = std::make_unique<std::atomic<bool>[]>(
      static_cast<std::size_t>(nnodes_));
  flap_ops_ = std::make_unique<std::atomic<int>[]>(
      static_cast<std::size_t>(nnodes_));
  for (int n = 0; n < nnodes_; ++n) {
    dead_[n].store(false);
    flap_ops_[n].store(0);
  }
}

detail::Mailbox& SimFabricTransport::mailbox(int ep, const char* what) {
  if (ep < 0 || ep >= nendpoints()) {
    throw MpiError(std::string(what) + ": bad endpoint " +
                   std::to_string(ep));
  }
  return *mailboxes_[static_cast<std::size_t>(ep)];
}

void SimFabricTransport::throw_node_dead(int node, const char* what) const {
  throw NodeDeadError(node, std::string(what) + ": node " +
                                std::to_string(node) + " unreachable");
}

bool SimFabricTransport::link_flapping(int node) {
  auto& rem = flap_ops_[static_cast<std::size_t>(node)];
  int cur = rem.load(std::memory_order_acquire);
  while (cur > 0) {
    if (rem.compare_exchange_weak(cur, cur - 1,
                                  std::memory_order_acq_rel)) {
      return true;
    }
  }
  return false;
}

void SimFabricTransport::ride_out_flaps(ult::TaskContext& ctx, int node,
                                        int site_index, const char* what) {
  RetryBackoff backoff(opts_.retry,
                       0x9e3779b97f4a7c15ull ^
                           static_cast<std::uint64_t>(ctx.task_id() + 1));
  int attempt = 1;
  while (link_flapping(node) || fault::should_fail("fabric:flap", site_index)) {
    stats_.link_flaps.fetch_add(1, std::memory_order_relaxed);
    if (attempt >= opts_.retry.max_attempts) {
      // Transient budget exhausted: reclassify as persistent. The fabric
      // itself does NOT poison — that escalation (kill_node) belongs to
      // cluster supervision, which knows whether the op was vital.
      throw TransportError(
          hlsmpc::ErrorCode::transport_exhausted,
          std::string(what) + ": link of node " + std::to_string(node) +
              " still failing after " + std::to_string(attempt) +
              " attempts — transient retry budget exhausted");
    }
    stats_.retries.fetch_add(1, std::memory_order_relaxed);
#if HLSMPC_OBS_ENABLED
    if (opts_.obs != nullptr) {
      opts_.obs->count(ctx.task_id(), obs::Counter::net_retries);
    }
#endif
    backoff.wait(ctx, attempt);
    ++attempt;
  }
}

Request SimFabricTransport::isend(ult::TaskContext& ctx, int src, int dst_ep,
                                  int dst, const void* buf, std::size_t bytes,
                                  int tag, int context) {
  // Schedule edge first, with no locks held: the explorer may suspend us
  // here and run the receiver (or the node-killer) before the message
  // exists.
  ctx.sync_point("fabric:send");
  detail::Mailbox& mb = mailbox(dst_ep, "fabric send");
  if (src < 0 || src >= nendpoints()) {
    throw MpiError("fabric send: bad source endpoint " + std::to_string(src));
  }
  ride_out_flaps(ctx, node_of(dst_ep), dst_ep, "fabric send");
  if (fault::should_fail("fabric:send", dst_ep)) {
    throw TransportError(hlsmpc::ErrorCode::transport_exhausted,
                         "fabric send: injected link failure towards node " +
                             std::to_string(node_of(dst_ep)));
  }
  stats_.messages.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes.fetch_add(bytes, std::memory_order_relaxed);
  auto req = std::make_shared<RequestState>();

  std::unique_lock<std::mutex> lk(mb.mu);
  // A node death poisons ordinary traffic so every surviving rank learns
  // the poison node's name instead of deadlocking on a peer that will
  // never answer. Checked UNDER the mailbox lock: kill_node publishes the
  // flags before sweeping each mailbox, so a check inside the lock either
  // sees them or enqueues before the sweep reaches this mailbox — never
  // neither. Recovery traffic bypasses the episode poison (the shrink
  // agreement must run over the poisoned fabric) but never the per-node
  // flags below.
  if (context != kRecoveryContext) {
    if (const int p = poisoned_node(); p >= 0) {
      lk.unlock();
      throw_node_dead(p, "fabric send");
    }
  }
  // Per-node dead flags outlive heal(): traffic to or from a dead node
  // always fails, naming that node (a send cannot reach a dead NIC; a
  // rank whose own node was declared dead must learn the verdict).
  if (node_dead(node_of(dst_ep))) {
    lk.unlock();
    throw_node_dead(node_of(dst_ep), "fabric send");
  }
  if (node_dead(node_of(src))) {
    lk.unlock();
    throw_node_dead(node_of(src), "fabric send");
  }
  for (auto it = mb.posted.begin(); it != mb.posted.end(); ++it) {
    if (!posted_matches(*it, src, tag, context)) continue;
    detail::PostedRecv pr = *it;
    mb.posted.erase(it);
    lk.unlock();
    if (bytes > pr.capacity) {
      pr.req->complete_error("recv truncated: message of " +
                             std::to_string(bytes) + " bytes into " +
                             std::to_string(pr.capacity) + " byte buffer");
      req->complete_error("send: matching receive buffer too small");
      return Request(req);
    }
    // A fabric always moves the bytes — no same-address elision (the
    // buffers live on different nodes in the model, even when the
    // simulation colocates them).
    if (bytes > 0 && pr.buf != buf) std::memcpy(pr.buf, buf, bytes);
    pr.req->complete(Status{src, tag, bytes});
    req->complete(Status{dst, tag, bytes});
    return Request(req);
  }

  if ((opts_.limits.max_unexpected_msgs != 0 &&
       mb.unexpected.size() >= opts_.limits.max_unexpected_msgs) ||
      (opts_.limits.max_unexpected_bytes != 0 &&
       mb.unexpected_bytes + bytes > opts_.limits.max_unexpected_bytes)) {
    throw TransportError(hlsmpc::ErrorCode::transport_exhausted,
                         "fabric send: unexpected-message queue of endpoint " +
                             std::to_string(dst_ep) + " full");
  }

  // Always-eager: capture the payload into an owned buffer ("on the
  // wire") and complete the send immediately.
  detail::UnexpectedMsg msg;
  msg.src = src;
  msg.tag = tag;
  msg.context = context;
  msg.bytes = bytes;
  msg.owned.assign(static_cast<const std::byte*>(buf),
                   static_cast<const std::byte*>(buf) + bytes);
  msg.has_owned = true;
  mb.unexpected.push_back(std::move(msg));
  mb.unexpected_bytes += bytes;
  lk.unlock();
  stats_.eager_sends.fetch_add(1, std::memory_order_relaxed);
  req->complete(Status{dst, tag, bytes});
  return Request(req);
}

Request SimFabricTransport::irecv(ult::TaskContext& ctx, int me_ep, void* buf,
                                  std::size_t capacity, int src, int tag,
                                  int context) {
  ctx.sync_point("fabric:recv");
  detail::Mailbox& mb = mailbox(me_ep, "fabric recv");
  ride_out_flaps(ctx, node_of(me_ep), me_ep, "fabric recv");
  if (fault::should_fail("fabric:recv", me_ep)) {
    throw TransportError(hlsmpc::ErrorCode::transport_exhausted,
                         "fabric recv: injected link failure at endpoint " +
                             std::to_string(me_ep));
  }
  auto req = std::make_shared<RequestState>();
  req->trace_is_recv = true;
  req->trace_context = context;

  std::unique_lock<std::mutex> lk(mb.mu);
  // Under the lock, like isend: either this receive sees the flags here,
  // or it is in `posted` before kill_node's sweep locks this mailbox and
  // gets error-completed by it. A post-sweep orphan recv (the deadlock)
  // is impossible.
  if (context != kRecoveryContext) {
    if (const int p = poisoned_node(); p >= 0) {
      lk.unlock();
      throw_node_dead(p, "fabric recv");
    }
  }
  if (node_dead(node_of(me_ep))) {
    lk.unlock();
    throw_node_dead(node_of(me_ep), "fabric recv");
  }
  for (auto it = mb.unexpected.begin(); it != mb.unexpected.end(); ++it) {
    if (!it->matches(src, tag, context)) continue;
    detail::UnexpectedMsg msg = std::move(*it);
    mb.unexpected.erase(it);
    mb.unexpected_bytes -= msg.bytes;
    lk.unlock();
    if (msg.bytes > capacity) {
      req->complete_error("recv truncated: message of " +
                          std::to_string(msg.bytes) + " bytes into " +
                          std::to_string(capacity) + " byte buffer");
      return Request(req);
    }
    if (msg.bytes > 0) std::memcpy(buf, msg.data(), msg.bytes);
    req->complete(Status{msg.src, msg.tag, msg.bytes});
    return Request(req);
  }

  if (src != kAnySource && (src < 0 || src >= nendpoints())) {
    lk.unlock();
    throw MpiError("fabric recv: bad source endpoint " + std::to_string(src));
  }
  // Nothing queued from a dead source will ever arrive: refuse the post
  // (delivered bytes above are still served — they made it off the wire
  // before the death).
  if (src != kAnySource && node_dead(node_of(src))) {
    lk.unlock();
    throw_node_dead(node_of(src), "fabric recv");
  }
  mb.posted.push_back(
      detail::PostedRecv{buf, capacity, src, tag, context, req});
  return Request(req);
}

bool SimFabricTransport::iprobe(int me_ep, int src, int tag, int context,
                                Status* status) {
  detail::Mailbox& mb = mailbox(me_ep, "fabric iprobe");
  std::lock_guard<std::mutex> lk(mb.mu);
  for (const detail::UnexpectedMsg& msg : mb.unexpected) {
    if (msg.matches(src, tag, context)) {
      if (status != nullptr) *status = Status{msg.src, msg.tag, msg.bytes};
      return true;
    }
  }
  return false;
}

void SimFabricTransport::sweep_posted(int dead_node) {
  // Every ordinary posted receive is now doomed: either its sender is
  // dead, or its sender will hit the poison check and never transmit.
  // That includes receives posted at the DEAD node's own endpoints — all
  // ranks are hosted in this process, and a rank whose node was declared
  // dead (e.g. after an injected link failure, where the node's task is
  // in fact still running) must unblock and learn the verdict rather
  // than wait forever. Recovery-context receives between LIVE nodes stay
  // posted: their senders bypass the poison, the bytes will still come —
  // sweeping them would wipe the shrink agreement's protocol state on
  // every secondary death. Only recovery receives whose source node is
  // now dead complete, with an error naming THAT node so the agreement
  // learns exactly which peer to exclude.
  const int poison = poisoned_node() >= 0 ? poisoned_node() : dead_node;
  for (int ep = 0; ep < nendpoints(); ++ep) {
    detail::Mailbox& mb = *mailboxes_[static_cast<std::size_t>(ep)];
    std::deque<detail::PostedRecv> doomed;
    {
      std::lock_guard<std::mutex> lk(mb.mu);
      for (auto it = mb.posted.begin(); it != mb.posted.end();) {
        const bool recovery = it->context == kRecoveryContext;
        const bool src_dead = it->src != kAnySource &&
                              node_dead(node_of(it->src));
        if (!recovery || src_dead) {
          doomed.push_back(*it);
          it = mb.posted.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (detail::PostedRecv& pr : doomed) {
      const int name = pr.context == kRecoveryContext && pr.src != kAnySource
                           ? node_of(pr.src)
                           : poison;
      pr.req->complete_error(
          "fabric recv: node " + std::to_string(name) + " unreachable",
          name);
    }
  }
}

void SimFabricTransport::kill_node(int node) {
  if (node < 0 || node >= nnodes_) {
    throw MpiError("kill_node: bad node " + std::to_string(node));
  }
  bool expected = false;
  const bool newly_dead =
      dead_[static_cast<std::size_t>(node)].compare_exchange_strong(
          expected, true, std::memory_order_acq_rel);
  int want = -1;
  first_dead_.compare_exchange_strong(want, node,
                                      std::memory_order_acq_rel);
  want = -1;
  const bool newly_poisoned = poison_.compare_exchange_strong(
      want, node, std::memory_order_acq_rel);
  // Sweep on a fresh death (unblock its pending peers) and on a
  // re-poison after heal (a survivor touched a node that died in an
  // earlier episode: receives posted since the heal must unblock too).
  // An already-dead, already-poisoned node needs neither — the episode
  // that set the poison swept.
  if (newly_dead || newly_poisoned) sweep_posted(node);
}

void SimFabricTransport::heal(std::uint64_t agreed_dead_mask) {
  int p = poison_.load(std::memory_order_acquire);
  while (p >= 0 && p < 64 && ((agreed_dead_mask >> p) & 1u) != 0) {
    if (poison_.compare_exchange_weak(p, -1, std::memory_order_acq_rel)) {
      return;
    }
    // CAS failure reloaded p: a concurrent death re-poisoned with a node
    // the agreement may not cover — loop re-checks the mask.
  }
}

void SimFabricTransport::revive_node(int node) {
  if (node < 0 || node >= nnodes_) {
    throw MpiError("revive_node: bad node " + std::to_string(node));
  }
  // Quiescent by contract (between SimCluster::run()s): plain stores.
  dead_[static_cast<std::size_t>(node)].store(false,
                                              std::memory_order_release);
  const int lo = node * opts_.ranks_per_node;
  for (int ep = lo; ep < lo + opts_.ranks_per_node; ++ep) {
    detail::Mailbox& mb = *mailboxes_[static_cast<std::size_t>(ep)];
    std::lock_guard<std::mutex> lk(mb.mu);
    mb.unexpected.clear();
    mb.unexpected_bytes = 0;
    mb.posted.clear();
  }
  int p = node;
  poison_.compare_exchange_strong(p, -1, std::memory_order_acq_rel);
  // first_dead_ names the first node of the *current* dead set; with this
  // node readmitted, recompute (or clear) it.
  int first = -1;
  for (int n = 0; n < nnodes_; ++n) {
    if (node_dead(n)) {
      first = n;
      break;
    }
  }
  first_dead_.store(first, std::memory_order_release);
}

void SimFabricTransport::flap_link(int node, int ops) {
  if (node < 0 || node >= nnodes_) {
    throw MpiError("flap_link: bad node " + std::to_string(node));
  }
  flap_ops_[static_cast<std::size_t>(node)].store(
      ops, std::memory_order_release);
}

void transport_wait(ult::TaskContext& ctx, Request& req, Status* status) {
  auto st = req.state();
  if (!st) throw MpiError("transport_wait: invalid request");
  std::unique_lock<std::mutex> lk(st->mu);
  ult::wait_until(ctx, lk, st->cv, [&] { return st->done; });
  if (!st->error.empty()) {
    if (st->error_node >= 0) throw NodeDeadError(st->error_node, st->error);
    throw MpiError(st->error);
  }
  if (status != nullptr) *status = st->status;
  lk.unlock();
  req.state().reset();
}

bool transport_wait_for(ult::TaskContext& ctx, Request& req,
                        std::chrono::milliseconds timeout, Status* status) {
  auto st = req.state();
  if (!st) throw MpiError("transport_wait_for: invalid request");
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock<std::mutex> lk(st->mu);
  if (ctx.cooperative()) {
    // Deterministic executors own the interleaving: poll-and-yield, with
    // the wall clock only bounding a genuinely silent peer (in the
    // simulated fabric a death error-completes the request promptly, so
    // this deadline never fires under exploration).
    while (!st->done) {
      if (std::chrono::steady_clock::now() >= deadline) return false;
      lk.unlock();
      ctx.yield();
      lk.lock();
    }
  } else {
    while (!st->done) {
      if (st->cv.wait_until(lk, deadline) == std::cv_status::timeout &&
          !st->done) {
        return false;
      }
    }
  }
  if (!st->error.empty()) {
    if (st->error_node >= 0) throw NodeDeadError(st->error_node, st->error);
    throw MpiError(st->error);
  }
  if (status != nullptr) *status = st->status;
  lk.unlock();
  req.state().reset();
  return true;
}

}  // namespace hlsmpc::mpi
