#include "mpi/sim_fabric.hpp"

#include <cstring>
#include <string>

#include "fault/injector.hpp"

namespace hlsmpc::mpi {

namespace {

bool posted_matches(const detail::PostedRecv& pr, int src_rank, int tag,
                    int context) {
  return pr.context == context &&
         (pr.src == kAnySource || pr.src == src_rank) &&
         (pr.tag == kAnyTag || pr.tag == tag);
}

}  // namespace

SimFabricTransport::SimFabricTransport(Options opts) : opts_(opts) {
  if (opts_.ranks_per_node <= 0 || opts_.nranks <= 0 ||
      opts_.nranks % opts_.ranks_per_node != 0) {
    throw MpiError("SimFabricTransport: nranks must be a positive multiple "
                   "of ranks_per_node");
  }
  nnodes_ = opts_.nranks / opts_.ranks_per_node;
  mailboxes_.reserve(static_cast<std::size_t>(opts_.nranks));
  for (int i = 0; i < opts_.nranks; ++i) {
    mailboxes_.push_back(std::make_unique<detail::Mailbox>());
  }
  dead_ = std::make_unique<std::atomic<bool>[]>(
      static_cast<std::size_t>(nnodes_));
  for (int n = 0; n < nnodes_; ++n) dead_[n].store(false);
}

detail::Mailbox& SimFabricTransport::mailbox(int ep, const char* what) {
  if (ep < 0 || ep >= nendpoints()) {
    throw MpiError(std::string(what) + ": bad endpoint " +
                   std::to_string(ep));
  }
  return *mailboxes_[static_cast<std::size_t>(ep)];
}

void SimFabricTransport::throw_node_dead(int node, const char* what) const {
  throw NodeDeadError(node, std::string(what) + ": node " +
                                std::to_string(node) + " unreachable");
}

Request SimFabricTransport::isend(ult::TaskContext& ctx, int src, int dst_ep,
                                  int dst, const void* buf, std::size_t bytes,
                                  int tag, int context) {
  // Schedule edge first, with no locks held: the explorer may suspend us
  // here and run the receiver (or the node-killer) before the message
  // exists.
  ctx.sync_point("fabric:send");
  detail::Mailbox& mb = mailbox(dst_ep, "fabric send");
  if (src < 0 || src >= nendpoints()) {
    throw MpiError("fabric send: bad source endpoint " + std::to_string(src));
  }
  if (fault::should_fail("fabric:send", dst_ep)) {
    throw TransportError(hlsmpc::ErrorCode::transport_exhausted,
                         "fabric send: injected link failure towards node " +
                             std::to_string(node_of(dst_ep)));
  }
  stats_.messages.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes.fetch_add(bytes, std::memory_order_relaxed);
  auto req = std::make_shared<RequestState>();

  std::unique_lock<std::mutex> lk(mb.mu);
  // A node death is fatal to the whole job (fault/error.hpp taxonomy):
  // the fabric refuses all further traffic so every surviving rank learns
  // the name of the first unreachable node instead of deadlocking on a
  // peer that will never answer. Checked UNDER the mailbox lock:
  // kill_node publishes the dead flag before sweeping each mailbox, so a
  // check inside the lock either sees the flag or enqueues before the
  // sweep reaches this mailbox — never neither.
  if (const int d = first_dead_node(); d >= 0) {
    lk.unlock();
    throw_node_dead(d, "fabric send");
  }
  for (auto it = mb.posted.begin(); it != mb.posted.end(); ++it) {
    if (!posted_matches(*it, src, tag, context)) continue;
    detail::PostedRecv pr = *it;
    mb.posted.erase(it);
    lk.unlock();
    if (bytes > pr.capacity) {
      pr.req->complete_error("recv truncated: message of " +
                             std::to_string(bytes) + " bytes into " +
                             std::to_string(pr.capacity) + " byte buffer");
      req->complete_error("send: matching receive buffer too small");
      return Request(req);
    }
    // A fabric always moves the bytes — no same-address elision (the
    // buffers live on different nodes in the model, even when the
    // simulation colocates them).
    if (bytes > 0 && pr.buf != buf) std::memcpy(pr.buf, buf, bytes);
    pr.req->complete(Status{src, tag, bytes});
    req->complete(Status{dst, tag, bytes});
    return Request(req);
  }

  if ((opts_.limits.max_unexpected_msgs != 0 &&
       mb.unexpected.size() >= opts_.limits.max_unexpected_msgs) ||
      (opts_.limits.max_unexpected_bytes != 0 &&
       mb.unexpected_bytes + bytes > opts_.limits.max_unexpected_bytes)) {
    throw TransportError(hlsmpc::ErrorCode::transport_exhausted,
                         "fabric send: unexpected-message queue of endpoint " +
                             std::to_string(dst_ep) + " full");
  }

  // Always-eager: capture the payload into an owned buffer ("on the
  // wire") and complete the send immediately.
  detail::UnexpectedMsg msg;
  msg.src = src;
  msg.tag = tag;
  msg.context = context;
  msg.bytes = bytes;
  msg.owned.assign(static_cast<const std::byte*>(buf),
                   static_cast<const std::byte*>(buf) + bytes);
  msg.has_owned = true;
  mb.unexpected.push_back(std::move(msg));
  mb.unexpected_bytes += bytes;
  lk.unlock();
  stats_.eager_sends.fetch_add(1, std::memory_order_relaxed);
  req->complete(Status{dst, tag, bytes});
  return Request(req);
}

Request SimFabricTransport::irecv(ult::TaskContext& ctx, int me_ep, void* buf,
                                  std::size_t capacity, int src, int tag,
                                  int context) {
  ctx.sync_point("fabric:recv");
  detail::Mailbox& mb = mailbox(me_ep, "fabric recv");
  if (fault::should_fail("fabric:recv", me_ep)) {
    throw TransportError(hlsmpc::ErrorCode::transport_exhausted,
                         "fabric recv: injected link failure at endpoint " +
                             std::to_string(me_ep));
  }
  auto req = std::make_shared<RequestState>();
  req->trace_is_recv = true;
  req->trace_context = context;

  std::unique_lock<std::mutex> lk(mb.mu);
  // Under the lock, like isend: either this receive sees the dead flag
  // here, or it is in `posted` before kill_node's sweep locks this
  // mailbox and gets error-completed by it. A post-sweep orphan recv
  // (the deadlock) is impossible.
  if (const int d = first_dead_node(); d >= 0) {
    lk.unlock();
    throw_node_dead(d, "fabric recv");
  }
  for (auto it = mb.unexpected.begin(); it != mb.unexpected.end(); ++it) {
    if (!it->matches(src, tag, context)) continue;
    detail::UnexpectedMsg msg = std::move(*it);
    mb.unexpected.erase(it);
    mb.unexpected_bytes -= msg.bytes;
    lk.unlock();
    if (msg.bytes > capacity) {
      req->complete_error("recv truncated: message of " +
                          std::to_string(msg.bytes) + " bytes into " +
                          std::to_string(capacity) + " byte buffer");
      return Request(req);
    }
    if (msg.bytes > 0) std::memcpy(buf, msg.data(), msg.bytes);
    req->complete(Status{msg.src, msg.tag, msg.bytes});
    return Request(req);
  }

  if (src != kAnySource && (src < 0 || src >= nendpoints())) {
    lk.unlock();
    throw MpiError("fabric recv: bad source endpoint " + std::to_string(src));
  }
  mb.posted.push_back(
      detail::PostedRecv{buf, capacity, src, tag, context, req});
  return Request(req);
}

bool SimFabricTransport::iprobe(int me_ep, int src, int tag, int context,
                                Status* status) {
  detail::Mailbox& mb = mailbox(me_ep, "fabric iprobe");
  std::lock_guard<std::mutex> lk(mb.mu);
  for (const detail::UnexpectedMsg& msg : mb.unexpected) {
    if (msg.matches(src, tag, context)) {
      if (status != nullptr) *status = Status{msg.src, msg.tag, msg.bytes};
      return true;
    }
  }
  return false;
}

void SimFabricTransport::kill_node(int node) {
  if (node < 0 || node >= nnodes_) {
    throw MpiError("kill_node: bad node " + std::to_string(node));
  }
  bool expected = false;
  if (!dead_[static_cast<std::size_t>(node)].compare_exchange_strong(
          expected, true, std::memory_order_acq_rel)) {
    return;  // already dead
  }
  int want = -1;
  first_dead_.compare_exchange_strong(want, node,
                                      std::memory_order_acq_rel);
  const int first = first_dead_.load(std::memory_order_acquire);

  // Every posted receive is now doomed: either its sender is dead, or its
  // sender will hit the poisoned-fabric check and never transmit. That
  // includes receives posted at the DEAD node's own endpoints — all ranks
  // are hosted in this process, and a rank whose node was declared dead
  // (e.g. after an injected link failure, where the node's task is in
  // fact still running) must unblock and learn the verdict rather than
  // wait forever. Complete them all with an error naming the first
  // unreachable node so blocked waiters unblock deterministically.
  for (int ep = 0; ep < nendpoints(); ++ep) {
    detail::Mailbox& mb = *mailboxes_[static_cast<std::size_t>(ep)];
    std::deque<detail::PostedRecv> doomed;
    {
      std::lock_guard<std::mutex> lk(mb.mu);
      doomed.swap(mb.posted);
    }
    for (detail::PostedRecv& pr : doomed) {
      pr.req->complete_error(
          "fabric recv: node " + std::to_string(first) + " unreachable",
          first);
    }
  }
}

void transport_wait(ult::TaskContext& ctx, Request& req, Status* status) {
  auto st = req.state();
  if (!st) throw MpiError("transport_wait: invalid request");
  std::unique_lock<std::mutex> lk(st->mu);
  ult::wait_until(ctx, lk, st->cv, [&] { return st->done; });
  if (!st->error.empty()) {
    if (st->error_node >= 0) throw NodeDeadError(st->error_node, st->error);
    throw MpiError(st->error);
  }
  if (status != nullptr) *status = st->status;
  lk.unlock();
  req.state().reset();
}

}  // namespace hlsmpc::mpi
