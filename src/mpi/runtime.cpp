#include "mpi/runtime.hpp"

#include <cstdlib>
#include <numeric>
#include <thread>

#include "mpi/coll_shm.hpp"
#include "mpi/rma.hpp"
#include "mpi/shm_transport.hpp"

namespace hlsmpc::mpi {

namespace {

/// Parse env var `name` as a non-negative integer into `out`; unset or
/// unparsable values leave `out` untouched.
void env_size(const char* name, std::size_t& out) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0') return;
  out = static_cast<std::size_t>(parsed);
}

void env_bool(const char* name, bool& out) {
  std::size_t v = out ? 1 : 0;
  env_size(name, v);
  out = v != 0;
}

std::size_t clamp_size(std::size_t v, std::size_t lo, std::size_t hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

}  // namespace

CollConfig coll_config_from_env(CollConfig base) {
  env_bool("HLSMPC_COLL_SHM", base.enable_shm);
  env_size("HLSMPC_COLL_SMALL_THRESHOLD", base.small_threshold);
  base.small_threshold = clamp_size(base.small_threshold, 0, 1u << 20);
  env_size("HLSMPC_COLL_PIPELINE_THRESHOLD", base.pipeline_threshold);
  if (base.pipeline_threshold == 0) {
    // 0 = never pipeline (the documented spelling of SIZE_MAX).
    base.pipeline_threshold = SIZE_MAX;
  }
  // The staged arm wins ties at small_threshold; a pipeline crossover
  // below it would carve out an unreachable selector band.
  if (base.pipeline_threshold < base.small_threshold) {
    base.pipeline_threshold = base.small_threshold;
  }
  env_size("HLSMPC_COLL_FRAGMENT_BYTES", base.fragment_bytes);
  base.fragment_bytes = clamp_size(base.fragment_bytes, 1u << 10, 16u << 20);
  env_bool("HLSMPC_COLL_PIPELINE_YIELD", base.pipeline_yield);
  return base;
}

Runtime::Runtime(const topo::Machine& machine, Options opts,
                 memtrack::Tracker* tracker)
    : machine_(machine), opts_(opts) {
  opts_.coll = coll_config_from_env(opts_.coll);
#if HLSMPC_OBS_ENABLED
  obs_ = opts_.obs;
#endif
  if (tracker != nullptr) {
    tracker_ = tracker;
  } else {
    owned_tracker_ = std::make_unique<memtrack::Tracker>();
    tracker_ = owned_tracker_.get();
  }
  nranks_ = opts_.nranks > 0 ? opts_.nranks : machine_.num_cpus();
  const int total = opts_.total_ranks > 0 ? opts_.total_ranks : nranks_;
  if (total < nranks_) {
    throw MpiError("Runtime: total_ranks smaller than local nranks");
  }
  buffers_ = std::make_unique<BufferManager>(opts_.buffers, nranks_, total,
                                             *tracker_);
  transport_ = std::make_unique<ShmTransport>(nranks_, *buffers_);
  tracker_->on_alloc(memtrack::Category::runtime_other,
                     static_cast<std::size_t>(nranks_) *
                         opts_.per_task_overhead_bytes);

  std::vector<int> world_group(static_cast<std::size_t>(nranks_));
  std::iota(world_group.begin(), world_group.end(), 0);
  auto world = std::make_unique<Comm>(*this, std::move(world_group),
                                      alloc_context(), alloc_context(),
                                      "world");
  world_ = &register_comm(std::move(world));

  switch (opts_.executor) {
    case ExecutorKind::thread:
      executor_ = std::make_unique<ult::ThreadExecutor>();
      break;
    case ExecutorKind::fiber: {
      int workers = opts_.fiber_workers;
      if (workers <= 0) {
        const int hw =
            static_cast<int>(std::thread::hardware_concurrency());
        workers = std::min(machine_.num_cpus(), std::max(hw, 1));
      }
      auto fe = std::make_unique<ult::FiberExecutor>(workers);
#if HLSMPC_OBS_ENABLED
      fe->set_obs(obs_);
#endif
      executor_ = std::move(fe);
      break;
    }
  }
}

Runtime::~Runtime() {
  tracker_->on_free(memtrack::Category::runtime_other,
                    static_cast<std::size_t>(nranks_) *
                        opts_.per_task_overhead_bytes);
}

int Runtime::cpu_of_rank(int rank) const {
  if (rank < 0 || rank >= nranks_) {
    throw MpiError("cpu_of_rank: bad rank");
  }
  return rank % machine_.num_cpus();
}

int Runtime::alloc_context() { return next_context_.fetch_add(1); }

Comm& Runtime::register_comm(std::unique_ptr<Comm> comm) {
  std::lock_guard<std::mutex> lk(comms_mu_);
  comms_.push_back(std::move(comm));
  return *comms_.back();
}

void Runtime::reset_collectives() {
  {
    std::lock_guard<std::mutex> lk(comms_mu_);
    for (auto& c : comms_) {
      if (ShmCollEngine* e = c->shm_engine()) e->reset();
    }
  }
  if (auto* shm = dynamic_cast<ShmTransport*>(transport_.get())) {
    shm->drain();
  }
}

#if HLSMPC_RMA_ENABLED
rma::Win& Runtime::register_win(std::unique_ptr<rma::Win> win) {
  std::lock_guard<std::mutex> lk(comms_mu_);
  wins_.push_back(std::move(win));
  return *wins_.back();
}

void Runtime::release_win(rma::Win& win) {
  std::lock_guard<std::mutex> lk(comms_mu_);
  for (auto it = wins_.begin(); it != wins_.end(); ++it) {
    if (it->get() == &win) {
      wins_.erase(it);
      return;
    }
  }
}
#endif

void Runtime::run(const std::function<void(Comm&, ult::TaskContext&)>& body) {
  std::vector<int> pins(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    pins[static_cast<std::size_t>(r)] = cpu_of_rank(r);
  }
  executor_->run(nranks_, pins,
                 [&](ult::TaskContext& ctx) { body(*world_, ctx); });
}

}  // namespace hlsmpc::mpi
