#include "mpi/runtime.hpp"

#include <numeric>
#include <thread>

#include "mpi/rma.hpp"

namespace hlsmpc::mpi {

Runtime::Runtime(const topo::Machine& machine, Options opts,
                 memtrack::Tracker* tracker)
    : machine_(machine), opts_(opts) {
#if HLSMPC_OBS_ENABLED
  obs_ = opts_.obs;
#endif
  if (tracker != nullptr) {
    tracker_ = tracker;
  } else {
    owned_tracker_ = std::make_unique<memtrack::Tracker>();
    tracker_ = owned_tracker_.get();
  }
  nranks_ = opts_.nranks > 0 ? opts_.nranks : machine_.num_cpus();
  const int total = opts_.total_ranks > 0 ? opts_.total_ranks : nranks_;
  if (total < nranks_) {
    throw MpiError("Runtime: total_ranks smaller than local nranks");
  }
  buffers_ = std::make_unique<BufferManager>(opts_.buffers, nranks_, total,
                                             *tracker_);
  mailboxes_.reserve(static_cast<std::size_t>(nranks_));
  for (int i = 0; i < nranks_; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  tracker_->on_alloc(memtrack::Category::runtime_other,
                     static_cast<std::size_t>(nranks_) *
                         opts_.per_task_overhead_bytes);

  std::vector<int> world_group(static_cast<std::size_t>(nranks_));
  std::iota(world_group.begin(), world_group.end(), 0);
  auto world = std::make_unique<Comm>(*this, std::move(world_group),
                                      alloc_context(), alloc_context(),
                                      "world");
  world_ = &register_comm(std::move(world));

  switch (opts_.executor) {
    case ExecutorKind::thread:
      executor_ = std::make_unique<ult::ThreadExecutor>();
      break;
    case ExecutorKind::fiber: {
      int workers = opts_.fiber_workers;
      if (workers <= 0) {
        const int hw =
            static_cast<int>(std::thread::hardware_concurrency());
        workers = std::min(machine_.num_cpus(), std::max(hw, 1));
      }
      auto fe = std::make_unique<ult::FiberExecutor>(workers);
#if HLSMPC_OBS_ENABLED
      fe->set_obs(obs_);
#endif
      executor_ = std::move(fe);
      break;
    }
  }
}

Runtime::~Runtime() {
  tracker_->on_free(memtrack::Category::runtime_other,
                    static_cast<std::size_t>(nranks_) *
                        opts_.per_task_overhead_bytes);
}

int Runtime::cpu_of_rank(int rank) const {
  if (rank < 0 || rank >= nranks_) {
    throw MpiError("cpu_of_rank: bad rank");
  }
  return rank % machine_.num_cpus();
}

Mailbox& Runtime::mailbox(int task_id) {
  if (task_id < 0 || task_id >= nranks_) {
    throw MpiError("mailbox: bad task id");
  }
  return *mailboxes_[static_cast<std::size_t>(task_id)];
}

int Runtime::alloc_context() { return next_context_.fetch_add(1); }

Comm& Runtime::register_comm(std::unique_ptr<Comm> comm) {
  std::lock_guard<std::mutex> lk(comms_mu_);
  comms_.push_back(std::move(comm));
  return *comms_.back();
}

#if HLSMPC_RMA_ENABLED
rma::Win& Runtime::register_win(std::unique_ptr<rma::Win> win) {
  std::lock_guard<std::mutex> lk(comms_mu_);
  wins_.push_back(std::move(win));
  return *wins_.back();
}

void Runtime::release_win(rma::Win& win) {
  std::lock_guard<std::mutex> lk(comms_mu_);
  for (auto it = wins_.begin(); it != wins_.end(); ++it) {
    if (it->get() == &win) {
      wins_.erase(it);
      return;
    }
  }
}
#endif

void Runtime::run(const std::function<void(Comm&, ult::TaskContext&)>& body) {
  std::vector<int> pins(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    pins[static_cast<std::size_t>(r)] = cpu_of_rank(r);
  }
  executor_->run(nranks_, pins,
                 [&](ult::TaskContext& ctx) { body(*world_, ctx); });
}

}  // namespace hlsmpc::mpi
