// Intra-node shared-memory transport: the mailbox matching engine.
//
// All endpoints live in one address space (thread-based MPI, paper §IV),
// so a send is a memcpy at worst and nothing at best: a matching posted
// receive is filled directly, small messages go eager through leased
// buffers, large ones rendezvous on the sender's buffer, and a copy whose
// source and destination alias is elided outright (§V.B.3).
#pragma once

#include <memory>
#include <vector>

#include "mpi/buffers.hpp"
#include "mpi/detail/mailbox.hpp"
#include "mpi/retry.hpp"
#include "mpi/transport.hpp"

namespace hlsmpc::mpi {

class ShmTransport : public Transport {
 public:
  /// `buffers` backs the eager protocol and must outlive the transport.
  /// Default limits are unbounded: eager payloads are charged to the
  /// node's memory tracker through the BufferManager.
  ShmTransport(int nendpoints, BufferManager& buffers,
               TransportLimits limits = {});

  const char* name() const override { return "shm"; }
  int nendpoints() const override {
    return static_cast<int>(mailboxes_.size());
  }

  Request isend(ult::TaskContext& ctx, int src, int dst_ep, int dst,
                const void* buf, std::size_t bytes, int tag,
                int context) override;
  Request irecv(ult::TaskContext& ctx, int me_ep, void* buf,
                std::size_t capacity, int src, int tag, int context) override;
  bool iprobe(int me_ep, int src, int tag, int context,
              Status* status) override;

  /// Recovery hook: empty every mailbox. Posted receives error-complete
  /// ("drained"), pending rendezvous senders likewise, queued eager
  /// payloads are released. Quiescent callers only
  /// (Runtime::reset_collectives) — a clean slate for the next epoch.
  void drain();

 private:
  detail::Mailbox& mailbox(int ep, const char* what);
  /// Bounded retry against the "shm:flap" injection site (a transiently
  /// failing intra-node channel — e.g. a briefly exhausted buffer pool);
  /// throws transport_exhausted once the budget runs out.
  void ride_out_flaps(ult::TaskContext& ctx, int ep, const char* what);

  BufferManager& buffers_;
  TransportLimits limits_;
  RetryPolicy retry_;
  std::vector<std::unique_ptr<detail::Mailbox>> mailboxes_;
};

}  // namespace hlsmpc::mpi
