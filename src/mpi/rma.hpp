// One-sided RMA windows (MPI-3 subset) over the node's shared address
// space.
//
// The paper's HLS scopes make intra-node sharing a plain load/store; a
// window backed by scope storage (hls::Runtime::rma_backing) or any other
// per-rank memory turns put/get into a single memmove plus epoch
// bookkeeping — no message, no second copy. Two epoch models carry the
// acquire/release edges:
//
//  - Active target: fence(). Each rank owns a cache-line-padded epoch
//    word; a fence release-publishes the rank's incremented epoch (after
//    all its accesses of the closing epoch) and acquire-polls every peer
//    up to that epoch. The counter exchange is the flat per-rank-word
//    variant of the shared-memory collective engine's episode barrier,
//    chosen over the single shared word so a stuck fence can name exactly
//    which ranks are missing and the race checker gets one publication
//    edge per rank. See DESIGN.md §12 for the memory-ordering argument.
//
//  - Passive target: lock()/unlock(), shared or exclusive, on a per-rank
//    lock word in the same padded control block (the per-rank-slot
//    pattern of coll_shm). Exclusive acquisition CASes the free word;
//    shared acquisition increments the reader count while no writer holds
//    it. Acquire on the winning CAS and release on the unlock store chain
//    critical sections on one target into happens-before order.
//
// Wait loops use ult::Backoff (never std::atomic::wait): cooperative
// contexts yield every probe, so the deterministic schedule explorer can
// interpose on every wait edge, and the opt-in watchdog deadline stays
// checkable. With an hls::SyncObserver installed every op and epoch step
// is emitted as a SyncEvent for check::HlsChecker; with an obs::Recorder
// the ops land in op/byte counters and epoch episodes.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hls/sync.hpp"  // SyncEvent/SyncObserver (header-only use here)
#include "mpi/types.hpp"
#include "obs/event.hpp"
#include "ult/task_context.hpp"

#ifndef HLSMPC_RMA_ENABLED
#define HLSMPC_RMA_ENABLED 1
#endif

#if HLSMPC_RMA_ENABLED

namespace hlsmpc::obs {
class Recorder;
}  // namespace hlsmpc::obs

namespace hlsmpc::mpi::rma {

/// One rank's exposed window region.
struct MemRegion {
  void* base = nullptr;
  std::size_t bytes = 0;
};

enum class LockKind { shared, exclusive };

struct WinOptions {
  /// Receives one SyncEvent per op/epoch step (the race checker installs
  /// itself here). Must outlive the window.
  hls::SyncObserver* observer = nullptr;
  /// Op + byte counters and epoch episodes; ignored when the
  /// observability layer is compiled out.
  obs::Recorder* obs = nullptr;
  /// A fence or lock wait stuck longer than this throws MpiError naming
  /// the missing ranks / the current holder (and emits an
  /// obs::EventKind::watchdog event). 0 = off.
  int watchdog_ms = 0;
  std::string name = "win";
};

/// One window: per-rank memory regions plus the shared epoch/lock control
/// block. Shared by all ranks (one address space); per-call rank identity
/// is the `me` argument, each rank passing its own. Constructible
/// standalone (tests, schedule exploration) or collectively through
/// Comm::win_create.
class Win {
 public:
  Win(std::vector<MemRegion> regions, WinOptions opts = {});
  Win(const Win&) = delete;
  Win& operator=(const Win&) = delete;

  int size() const { return n_; }
  int id() const { return id_; }
  const std::string& name() const { return opts_.name; }
  void* base(int rank) const { return region(rank, "Win::base").base; }
  std::size_t bytes(int rank) const {
    return region(rank, "Win::bytes").bytes;
  }

  // ---- one-sided data movement (same-node: a single memmove) ----
  // Legal only inside an epoch (between fences, or holding a lock on
  // `target`); the checker flags conflicting accesses no epoch orders.
  void put(ult::TaskContext& ctx, int me, const void* src,
           std::size_t nbytes, int target, std::size_t target_offset);
  void get(ult::TaskContext& ctx, int me, void* dst, std::size_t nbytes,
           int target, std::size_t target_offset);
  /// Elementwise `fn(target_region + offset, src, count)` — the ReduceFn
  /// left-operand contract of comm.hpp: the target is the accumulator and
  /// the LEFT operand, so non-commutative operators fold contributions in
  /// the order the epochs serialize them.
  void accumulate(ult::TaskContext& ctx, int me, const void* src,
                  std::size_t count, std::size_t elem_bytes,
                  const ReduceFn& fn, int target, std::size_t target_offset);

  // ---- active-target epochs ----
  /// Collective over all window ranks. Closes the calling rank's epoch
  /// (release) and opens the next once every rank reached it (acquire):
  /// all accesses before any rank's fence happen-before all accesses
  /// after any rank's fence.
  void fence(ult::TaskContext& ctx, int me);

  // ---- passive-target epochs ----
  /// Acquire `target`'s lock word. Exclusive excludes everyone; shared
  /// admits concurrent readers and excludes writers. A rank holds at most
  /// one lock per target; lock/unlock pairs on one target order their
  /// critical sections.
  void lock(ult::TaskContext& ctx, int me, LockKind kind, int target);
  void unlock(ult::TaskContext& ctx, int me, int target);

  /// Completed fence epochs of `rank` (diagnostics/tests).
  std::uint64_t fence_epochs(int rank) const;

 private:
  /// Per-rank control slot: fence epoch word and lock word on separate
  /// cache lines (a fence storm must not bounce the lock line and vice
  /// versa), padded so neighbouring ranks never share a line.
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> epoch{0};
    std::byte pad0_[64 - sizeof(std::atomic<std::uint64_t>)];
    /// 0 = free; kExclBit | (owner+1) << 32 = held exclusively;
    /// otherwise the low 32 bits count shared readers.
    std::atomic<std::uint64_t> lockword{0};
    std::byte pad1_[64 - sizeof(std::atomic<std::uint64_t>)];
  };
  static_assert(sizeof(void*) <= 8, "slot layout assumes 64-bit");

  static constexpr std::uint64_t kExclBit = std::uint64_t{1} << 63;

  const MemRegion& region(int rank, const char* what) const;
  void check_me(int me, const char* what) const;
  void check_range(int target, std::size_t offset, std::size_t nbytes,
                   const char* what) const;
  /// Event task id: the runtime task when the context carries one (checker
  /// task ids), else the window rank (standalone contexts).
  static int task_of(const ult::TaskContext& ctx, int me) {
    return ctx.task_id() >= 0 ? ctx.task_id() : me;
  }
  void emit(hls::SyncEvent::Kind kind, const ult::TaskContext& ctx, int me,
            int target, std::uint64_t offset, std::uint64_t nbytes,
            bool excl, std::uint64_t epoch) const;
  void record_op(const ult::TaskContext& ctx, int me, obs::RmaOp op,
                 std::uint64_t nbytes, std::uint64_t t0) const;
  [[noreturn]] void fence_stuck(const ult::TaskContext& ctx, int me,
                                std::uint64_t need, long long waited_ms);
  [[noreturn]] void lock_stuck(const ult::TaskContext& ctx, int me,
                               int target, long long waited_ms);

  std::vector<MemRegion> regions_;
  WinOptions opts_;
  int n_ = 0;
  int id_ = 0;
  std::unique_ptr<Slot[]> slots_;
  /// held_[me * n_ + target]: 0 = none, 1 = shared, 2 = exclusive.
  /// Each entry is written only by rank `me`.
  std::vector<std::uint8_t> held_;
  /// Lock-acquire timestamp per (me, target) for the rma_epoch episode
  /// emitted at unlock. Written only by rank `me`.
  std::vector<std::uint64_t> lock_t0_;
};

}  // namespace hlsmpc::mpi::rma

#endif  // HLSMPC_RMA_ENABLED
