// TCP/stream-socket transport: the fabric arm for real multi-process and
// multi-host deployments.
//
// One endpoint per NODE (unlike the simulated fabric, whose endpoints are
// ranks): the cluster's leader tier is the only traffic that crosses
// nodes, so the socket mesh carries node-to-node frames and the `src`
// label inside the frame disambiguates ranks. The transport is handed
// pre-connected stream sockets (Options::fds) — connection establishment
// is the launcher's job; tests use socketpair(2), a deployment would use
// connect/accept over TCP. Framing is a fixed little-endian header
// {src, tag, context, bytes} followed by the payload.
//
// A background receiver thread polls all peer sockets and feeds the local
// matching engine, completing RequestStates directly (both executor back
// ends already wait through ult::wait_until, so a completion from a
// foreign thread is the normal case, exactly like a peer rank's thread in
// the shm transport). Sends are synchronous full writes under a per-peer
// mutex: a completed send means the bytes entered the kernel's buffer
// (buffered-send semantics, same contract as the other transports).
//
// Dead-node detection: EOF or a connection error on the socket of node n
// (a SIGKILLed peer process closes its sockets; a dead host resets) marks
// n unreachable, poisons the transport and error-completes every posted
// receive that can no longer be served — the same episode-poison
// containment model as SimFabricTransport, so ClusterComm-style
// supervision works unchanged on top. Recovery traffic
// (context == kRecoveryContext, src labels = NODE ids by contract)
// bypasses the poison so survivors can run the shrink agreement; heal()
// lifts the poison once the agreement covered the death, and per-node
// dead flags persist so a dead peer keeps failing by name.
//
// Transient-vs-dead classification: EINTR, EAGAIN/EWOULDBLOCK and partial
// reads/writes are retried in place (poll()-waiting for readiness up to
// Options::io_deadline_ms, counting stats().retries); only EOF, a socket
// error, or the deadline expiring classify the peer as dead.
//
// The whole file sits behind the HLSMPC_TCP kill switch: an OFF build
// compiles no socket code into the MPI archive (tcp_off_symbol_check).
#pragma once

#include "mpi/transport.hpp"

#if HLSMPC_TCP_ENABLED

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "mpi/detail/mailbox.hpp"

namespace hlsmpc::mpi {

class TcpTransport final : public Transport {
 public:
  struct Options {
    /// This process's node id in [0, nendpoints).
    int me = 0;
    /// Total nodes in the mesh.
    int nendpoints = 0;
    /// fds[n] = connected stream socket to node n; fds[me] is ignored
    /// (self-sends stay in process). The transport takes ownership and
    /// closes them on destruction.
    std::vector<int> fds;
    /// Per-endpoint unexpected-queue bounds (0 = unlimited).
    TransportLimits limits;
    /// Per-operation socket I/O deadline: how long one send/recv may
    /// poll()-wait for readiness across EAGAIN/partial transfers before
    /// the peer is classified dead. <= 0 waits forever (pre-recovery
    /// behaviour).
    int io_deadline_ms = 5000;
  };

  explicit TcpTransport(Options opts);
  ~TcpTransport() override;

  const char* name() const override { return "tcp"; }
  int nendpoints() const override { return opts_.nendpoints; }
  int me() const { return opts_.me; }

  /// `dst_ep` is the destination NODE; only me()'s own mailbox can be
  /// received from (`me_ep` must equal me()).
  Request isend(ult::TaskContext& ctx, int src, int dst_ep, int dst,
                const void* buf, std::size_t bytes, int tag,
                int context) override;
  Request irecv(ult::TaskContext& ctx, int me_ep, void* buf,
                std::size_t capacity, int src, int tag, int context) override;
  bool iprobe(int me_ep, int src, int tag, int context,
              Status* status) override;

  /// First node EVER observed unreachable (EOF/reset on its socket), or
  /// -1; survives heal().
  int first_dead_node() const {
    return first_dead_.load(std::memory_order_acquire);
  }
  bool node_dead(int node) const {
    return dead_[static_cast<std::size_t>(node)].load(
        std::memory_order_acquire);
  }
  /// Node whose death poisons ordinary traffic right now, or -1 when
  /// healthy (no death yet, or the episode was heal()ed).
  int poisoned_node() const {
    return poison_.load(std::memory_order_acquire);
  }
  /// Classify `node` as dead from above (recovery timeout escalation: a
  /// peer that missed its agreement deadline is treated as failed). Same
  /// effect as an observed EOF: dead flag, poison, sweep.
  void declare_dead(int node);
  /// Lift the current episode's poison, provided the poisoning node is
  /// covered by `agreed_dead_mask` (bit n = node n). Dead flags persist.
  void heal(std::uint64_t agreed_dead_mask);

 private:
  struct Peer {
    int fd = -1;
    std::mutex send_mu;  // frames from concurrent tasks must not interleave
  };

  void receiver_loop();
  /// Deliver one inbound message (or a local self-send) to the matching
  /// engine. Returns false on exhaustion (bounded unexpected queue).
  bool deliver(int src_label, int tag, int context,
               std::vector<std::byte> payload);
  void mark_dead(int node);
  void check_poisoned(const char* what) const;

  Options opts_;
  std::vector<std::unique_ptr<Peer>> peers_;
  detail::Mailbox inbox_;
  std::unique_ptr<std::atomic<bool>[]> dead_;
  std::atomic<int> first_dead_{-1};
  std::atomic<int> poison_{-1};
  std::atomic<bool> stop_{false};
  int wake_pipe_[2] = {-1, -1};
  std::thread receiver_;
};

}  // namespace hlsmpc::mpi

#endif  // HLSMPC_TCP_ENABLED
