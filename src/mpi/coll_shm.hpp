// Topology-aware shared-memory collective engine.
//
// All MPI tasks of a node share one address space (paper §IV), so a
// collective never needs to move bytes through mailbox messages: ranks can
// read each other's buffers directly once publication is ordered. This
// engine — in the spirit of XHC's hierarchical shared-memory collectives —
// gives every communicator a shared control block of cache-line-padded
// per-rank slots and runs leader-based algorithms over the machine's
// topology levels (core -> cache levels -> NUMA -> node):
//
//  - bcast: single-copy. The root release-publishes (pointer, sequence);
//    every reader acquires the sequence, memcpys straight out of the
//    root's buffer (or elides the copy when the addresses match — the
//    HLS shared-image trick) and acknowledges with one release RMW. The
//    root only waits for the acknowledgement count; readers never wait
//    for each other.
//  - reduce/allreduce/reduce_scatter_block: per-scope tree reduction.
//    Members publish their send buffers; the lowest rank of each leaf
//    group folds them in ascending rank order into an accumulator,
//    leaders combine upward along the topology tree, and rank 0 publishes
//    the result. Folding in ascending rank order with the accumulator as
//    the left operand means only associativity is required of the
//    ReduceFn — never commutativity.
//  - allgather/alltoall: every rank publishes its send buffer and copies
//    each peer's block directly, replacing the rank-0 gather+bcast funnel.
//  - scan/exscan: each rank publishes a staged copy (staging makes
//    in-place recvbuf == sendbuf calls safe) and folds ranks [0, me] /
//    [0, me) locally in rank order.
//  - barrier: the hierarchical sense-reversing machinery extracted from
//    hls::SyncManager (ult::EpisodeBarrier): arrive inside the narrowest
//    group, one representative ascends per level, releases cascade back
//    down.
//
// Publication protocol: each rank's entry into a collective bumps a
// private call counter; MPI's ordering rule (all ranks issue the same
// collectives on a communicator in the same order) keeps these counters
// in lockstep, so the counter value doubles as the publication sequence
// number every peer waits for. Published data stays untouched until every
// consumer signalled — a completion barrier for most ops, the
// acknowledgement count for bcast — which is what makes buffer reuse in
// the very next collective safe.
//
// An algorithm selector picks per call: payloads <= small_threshold take
// the staged flat path (one copy through an inline slot, flat completion
// barrier); mid-size payloads go zero-copy under the hierarchical barrier;
// payloads above pipeline_threshold take the *pipelined* path — XHC-style
// data-wise pipelining, where the buffer is split into cache-friendly
// fragments and every slot carries per-fragment publication counts next to
// the per-call sequence word. A leaf leader folds fragment k across its
// group and release-publishes it the moment it is complete, so the cell
// leader one level up forwards fragment k while the leaf is still folding
// fragment k+1; inside allreduce the consumers likewise copy result
// fragment k out of rank 0's accumulator while later fragments are still
// being reduced — reduce and bcast interleave per fragment instead of
// running back-to-back. Fragment publication counts are *absolute*: every
// pipelined call advances a private frag_base by its fragment count on
// every rank (MPI's matched-call ordering keeps the bases in lockstep),
// and fragment f of a call is published as frag_base + f + 1, so the
// values a slot's fragment words take are monotone across calls even
// though only some ranks physically publish in any one call — which is
// what keeps wait_seq's `>=` comparison safe on lagging slots (DESIGN.md
// §13 gives the full argument).
//
// A per-rank registration cache (8-way, LRU) maps (buffer, count,
// elem_bytes) to the resolved fragment geometry plus a stable attach
// block (the accumulator / staging storage for that buffer), so repeated
// collectives on the same buffers skip re-resolution and reuse
// cache-warm storage. Entries are tagged with the CPU they were resolved
// on and flushed wholesale when the rank migrates (same discipline as the
// per-task address cache of PR 2).
//
// The p2p algorithms in collectives.cpp remain as dispatch fallback
// (size-1 comms, engine disabled, ops the engine does not implement).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "mpi/transport.hpp"
#include "mpi/types.hpp"
#include "obs/event.hpp"
#include "topo/topology.hpp"
#include "ult/episode_barrier.hpp"
#include "ult/task_context.hpp"

#ifndef HLSMPC_COLL_PIPELINE_ENABLED
#define HLSMPC_COLL_PIPELINE_ENABLED 1
#endif

namespace hlsmpc::mpi {

class ShmCollEngine {
 public:
  /// Staging capacity of a slot; payloads up to this size travel through
  /// the control block itself instead of a heap buffer on the flat path.
  static constexpr std::size_t kInlineBytes = 1024;

  /// `rank_cpus[r]` = hardware thread rank r is pinned to (how the leader
  /// tree maps ranks onto the machine's sharing domains).
  ShmCollEngine(const topo::Machine& machine, std::vector<int> rank_cpus,
                CollConfig cfg, TransportStats* stats);
  ShmCollEngine(const ShmCollEngine&) = delete;
  ShmCollEngine& operator=(const ShmCollEngine&) = delete;

  int size() const { return n_; }
  /// Levels of the hierarchical plan (1 = degenerate/flat tree: no
  /// topology level merged contiguous rank ranges).
  int num_levels() const { return static_cast<int>(hier_.size()); }
  /// Rank groups at hierarchical level `l`, each ascending; members[0] of
  /// a group is its leader. Exposed for tests and diagnostics.
  std::vector<std::vector<int>> level_groups(int level) const;

  /// Algorithm for a payload of `bytes` published per rank. Deterministic
  /// in (bytes, config), so every rank of a call picks the same one. The
  /// staged arm wins ties when pipeline_threshold < small_threshold.
  obs::CollAlg select(std::size_t bytes) const {
    if (bytes <= cfg_.small_threshold) return obs::CollAlg::shm_flat;
    if (bytes > cfg_.pipeline_threshold) return obs::CollAlg::shm_pipelined;
    return obs::CollAlg::shm_hier;
  }

  /// Fragment geometry of the pipelined path for one payload, identical on
  /// every rank (derived from the call shape and config only).
  struct FragGeom {
    std::size_t frag_elems = 0;  ///< elements per fragment (last may be short)
    std::uint32_t nfrags = 0;
  };
  FragGeom frag_geom(std::size_t count, std::size_t elem_bytes) const;

  /// Drop every rank's registration-cache entries (test/diagnostic hook;
  /// callers must be quiescent — between collectives). Migration flushes
  /// a rank's own entries automatically via the CPU tag.
  void invalidate_registrations();
  /// Recovery hook: re-zero the whole control block — publication
  /// sequences, pointers, acks, fragment counts, private counters and
  /// registration caches — back to its initial state. Callers must be
  /// quiescent (ClusterComm::shrink runs it between its local barriers).
  /// EpisodeBarrier state is deliberately untouched: the fused node gates
  /// guarantee a local phase either runs to completion or is never
  /// entered, so every barrier episode is already consistent.
  void reset();
  obs::CollAlg barrier_alg() const {
    return hier_.size() > 1 ? obs::CollAlg::shm_hier : obs::CollAlg::shm_flat;
  }

  // Collective bodies. `me` is the caller's rank on the owning
  // communicator; every member must call (MPI semantics). Buffers follow
  // the Comm byte-oriented API.
  void barrier(ult::TaskContext& ctx, int me);
  void bcast(ult::TaskContext& ctx, int me, void* buf, std::size_t bytes,
             int root);
  void reduce(ult::TaskContext& ctx, int me, const void* sendbuf,
              void* recvbuf, std::size_t count, std::size_t elem_bytes,
              const ReduceFn& fn, int root);
  void allreduce(ult::TaskContext& ctx, int me, const void* sendbuf,
                 void* recvbuf, std::size_t count, std::size_t elem_bytes,
                 const ReduceFn& fn);
  void allgather(ult::TaskContext& ctx, int me, const void* sendbuf,
                 std::size_t bytes, void* recvbuf);
  void alltoall(ult::TaskContext& ctx, int me, const void* sendbuf,
                std::size_t bytes_per_rank, void* recvbuf);
  void scan(ult::TaskContext& ctx, int me, const void* sendbuf, void* recvbuf,
            std::size_t count, std::size_t elem_bytes, const ReduceFn& fn);
  void exscan(ult::TaskContext& ctx, int me, const void* sendbuf,
              void* recvbuf, std::size_t count, std::size_t elem_bytes,
              const ReduceFn& fn);
  void reduce_scatter_block(ult::TaskContext& ctx, int me,
                            const void* sendbuf, void* recvbuf,
                            std::size_t count, std::size_t elem_bytes,
                            const ReduceFn& fn);

 private:
  /// Per-rank slot of the shared control block. Channels live on separate
  /// cache lines so readers polling a sequence word do not collide with
  /// the publisher's payload staging.
  struct alignas(64) Slot {
    // Contribution channel: this rank's published input buffer.
    std::atomic<std::uint64_t> seq{0};
    std::atomic<const void*> ptr{nullptr};
    std::byte pad0[64 - 2 * sizeof(void*)];
    // Result channel: this rank's accumulator (tree reduction partials
    // ascending the tree; rank 0's slot carries the final result).
    std::atomic<std::uint64_t> acc_seq{0};
    std::atomic<const void*> acc_ptr{nullptr};
    std::byte pad1[64 - 2 * sizeof(void*)];
    // Cumulative count of readers done with this rank's publication
    // (bcast acknowledgements).
    std::atomic<std::uint64_t> acks{0};
    std::byte pad2[64 - sizeof(std::uint64_t)];
    // Pipelined-path fragment publication counts, absolute across calls
    // (frag_base + fragments published so far). `frag` gates the
    // contribution channel's fragments, `acc_frag` the result channel's;
    // each is the release word ordering that channel's payload — the
    // per-call seq words above are not used by pipelined consumers.
    std::atomic<std::uint64_t> frag{0};
    std::byte pad3[64 - sizeof(std::uint64_t)];
    std::atomic<std::uint64_t> acc_frag{0};
    std::byte pad4[64 - sizeof(std::uint64_t)];
    // Staging area for the small/flat path.
    std::byte inline_buf[kInlineBytes];
  };

  /// One barrier group: its member ranks (ascending; members[0] leads)
  /// and the episode barrier they synchronize on.
  struct Group {
    std::vector<int> members;
    ult::EpisodeBarrier bar;
  };
  struct Level {
    std::vector<std::unique_ptr<Group>> groups;
    /// rank -> index of the group containing it (by leader-chain
    /// containment; defined for every rank at every level).
    std::vector<int> group_of;
  };
  /// Narrow -> wide list of levels; the last level has a single group.
  using Plan = std::vector<Level>;

  /// One registration-cache entry: the resolved fragment geometry and the
  /// stable attach block (accumulator / staging storage) for a buffer the
  /// rank keeps issuing collectives on.
  struct Registration {
    const void* addr = nullptr;
    std::size_t count = 0;
    std::size_t elem_bytes = 0;
    FragGeom geom;
    std::vector<std::byte> block;  ///< sized lazily, survives eviction reuse
    std::uint64_t stamp = 0;       ///< LRU clock; 0 = empty way
  };
  static constexpr std::size_t kRegWays = 8;

  /// Per-rank private state, written only by its own rank.
  struct alignas(64) Priv {
    std::uint64_t seq = 0;            ///< collectives entered on this comm
    std::uint64_t acks_expected = 0;  ///< cumulative acks owed as bcast root
    std::vector<std::byte> scratch;   ///< accumulator / staging, grows only
    /// Base of this rank's fragment numbering: advanced by the fragment
    /// count of every pipelined call (by every rank, published or not),
    /// so the bases stay in lockstep and fragment words stay monotone.
    std::uint64_t frag_base = 0;
    /// Registration cache (see Registration). reg_cpu tags the CPU the
    /// entries were resolved on; a mismatch at lookup means the rank
    /// migrated and flushes the set.
    std::array<Registration, kRegWays> reg;
    std::uint64_t reg_stamp = 0;
    int reg_cpu = -1;
  };

  Plan build_hier(const topo::Machine& machine,
                  const std::vector<int>& rank_cpus) const;
  Plan& plan_for(obs::CollAlg alg) {
    return alg == obs::CollAlg::shm_flat ? flat_ : hier_;
  }

  std::uint64_t begin(int me);
  void wait_seq(const std::atomic<std::uint64_t>& w, std::uint64_t seq,
                ult::TaskContext& ctx) const;
  /// Publish this rank's contribution; with `stage` the payload is copied
  /// into the slot's inline buffer (or scratch when it does not fit) so
  /// the caller may immediately reuse/overwrite `p`. Returns the
  /// published pointer.
  const void* publish_contrib(int me, const void* p, std::size_t bytes,
                              bool stage, std::uint64_t seq);
  void publish_result(int me, const void* p, std::uint64_t seq);
  const void* peer_contrib(int r) const {
    return slots_[static_cast<std::size_t>(r)].ptr.load(
        std::memory_order_relaxed);
  }
  const void* peer_result(int r) const {
    return slots_[static_cast<std::size_t>(r)].acc_ptr.load(
        std::memory_order_relaxed);
  }
  void copy_bytes(void* dst, const void* src, std::size_t bytes);

  /// Hierarchical barrier over `plan`: arrive in the level-0 group; each
  /// group's effective last arriver ascends holding the episode open, the
  /// top level flips, and releases cascade back down (the N-level
  /// generalization of SyncManager's two-level shared-cache barrier).
  void plan_barrier(Plan& plan, ult::TaskContext& ctx, int me);
  /// Tree reduction over `plan` in ascending rank order. Every rank
  /// publishes (staged when `stage`); leaf leaders fold their group,
  /// partials combine upward. Returns the final accumulator on rank 0
  /// (== `rank0_acc` when that is non-null), nullptr elsewhere.
  std::byte* plan_reduce(Plan& plan, ult::TaskContext& ctx, int me,
                         const void* sendbuf, std::size_t count,
                         std::size_t elem_bytes, const ReduceFn& fn,
                         std::uint64_t seq, void* rank0_acc, bool stage);

  /// Registration-cache lookup for (addr, count, elem_bytes) on rank `me`;
  /// resolves geometry and evicts LRU on miss, flushes on migration.
  Registration& resolve_registration(ult::TaskContext& ctx, int me,
                                     const void* addr, std::size_t count,
                                     std::size_t elem_bytes);
  /// The registration's attach block, grown to `bytes` on first use.
  std::byte* reg_block(Registration& reg, std::size_t bytes);
  /// Release-publish a fragment word value (with an explorer sync point
  /// between payload production and publication).
  void publish_frag(ult::TaskContext& ctx, std::atomic<std::uint64_t>& w,
                    std::uint64_t value);
  /// Batched shm_fragments stat bump (once per call, not per fragment).
  void count_frags(std::uint32_t nfrags);
  /// Producer yield cadence in fragments: 0 when pipeline_yield is off,
  /// otherwise one yield per ~128 KB of published fragments. Yielding per
  /// fragment costs a scheduler round trip through every waiting rank,
  /// which at default fragment sizes erases the cache win.
  std::uint32_t yield_stride(const FragGeom& geom,
                             std::size_t elem_bytes) const;
  /// Consumer side of the fragment protocol: copy the producer's fragments
  /// into `dst` as `w` publishes them, batching every already-published
  /// fragment into one contiguous span copy (one wait per batch and
  /// longer streams for the hardware prefetcher, instead of one wait and
  /// one small memcpy per fragment). The source pointer is read from
  /// `srcp` only after the first fragment's acquire — the producer stores
  /// it before the first release, so loading it any earlier races.
  void drain_frags(ult::TaskContext& ctx, const std::atomic<std::uint64_t>& w,
                   std::uint64_t base, const FragGeom& geom,
                   std::size_t elem_bytes, std::size_t bytes,
                   const std::atomic<const void*>& srcp, std::byte* dst);
  /// Fragmented tree reduction over the hierarchical plan: non-leaders
  /// publish their buffer zero-copy with all fragments at once; leaders
  /// fold and release-publish per fragment, interleaving tree levels.
  /// Returns the final accumulator on rank 0, nullptr elsewhere. Callers
  /// advance frag_base and run the completion barrier.
  std::byte* plan_reduce_pipelined(ult::TaskContext& ctx, int me,
                                   const void* sendbuf, std::size_t count,
                                   std::size_t elem_bytes, const ReduceFn& fn,
                                   void* rank0_acc);
  /// Fragment-wise staged publication for scan/exscan: stages `sendbuf`
  /// into the buffer's registration block fragment by fragment, publishing
  /// each as it lands. Returns the staged base pointer.
  const std::byte* publish_staged_pipelined(ult::TaskContext& ctx, int me,
                                            const void* sendbuf,
                                            std::size_t count,
                                            std::size_t elem_bytes);
  /// Entry bookkeeping shared by every pipelined op body: bumps the
  /// pipelined-call stat and returns the geometry. The body reads its
  /// frag_base before publishing and advances it by nfrags once its own
  /// waits are issued (every rank advances, published or not).
  FragGeom begin_pipelined(std::size_t count, std::size_t elem_bytes);

  int n_;
  CollConfig cfg_;
  TransportStats* stats_;
  std::vector<Slot> slots_;
  std::vector<Priv> priv_;
  Plan flat_;  ///< single group of all ranks
  Plan hier_;  ///< topology leader tree (>= 1 level)
};

}  // namespace hlsmpc::mpi
