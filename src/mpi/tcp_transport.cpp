#include "mpi/tcp_transport.hpp"

#if HLSMPC_TCP_ENABLED

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace hlsmpc::mpi {

namespace {

// 20-byte little-endian frame header. Serialized field by field: a packed
// struct would work on every platform we build on, but explicit
// serialization keeps the wire format independent of ABI padding rules.
constexpr std::size_t kHeaderBytes = 20;

void put_u32(std::byte* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
  }
}

std::uint32_t get_u32(const std::byte* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

void encode_header(std::byte* p, int src, int tag, int context,
                   std::uint64_t bytes) {
  put_u32(p, static_cast<std::uint32_t>(src));
  put_u32(p + 4, static_cast<std::uint32_t>(tag));
  put_u32(p + 8, static_cast<std::uint32_t>(context));
  put_u32(p + 12, static_cast<std::uint32_t>(bytes & 0xffffffffu));
  put_u32(p + 16, static_cast<std::uint32_t>(bytes >> 32));
}

/// Remaining milliseconds until `deadline`, for poll(); negative
/// deadline_ms disables the deadline entirely (-1 = poll forever).
int remaining_ms(std::chrono::steady_clock::time_point deadline,
                 bool bounded) {
  if (!bounded) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

/// Wait until `fd` is ready for `events` (POLLIN/POLLOUT) or the deadline
/// passes. True = ready; false = timed out or socket error.
bool wait_ready(int fd, short events,
                std::chrono::steady_clock::time_point deadline,
                bool bounded) {
  for (;;) {
    pollfd pf{fd, events, 0};
    const int left = remaining_ms(deadline, bounded);
    if (bounded && left == 0) return false;
    const int rc = ::poll(&pf, 1, left);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (rc == 0) return false;  // deadline expired: peer too slow = dead
    if ((pf.revents & (POLLERR | POLLNVAL)) != 0) return false;
    return true;
  }
}

/// Write all of buf to a stream socket, riding out the transient band —
/// EINTR (signal storms), EAGAIN/EWOULDBLOCK (full socket buffer: poll
/// for writability) and partial writes — up to `deadline`. Each re-issue
/// after a transient failure bumps stats.retries, so signal/backpressure
/// churn is observable. MSG_NOSIGNAL: a dead peer must surface as EPIPE,
/// not a process-killing SIGPIPE.
bool full_send(int fd, const void* buf, std::size_t bytes,
               std::chrono::steady_clock::time_point deadline, bool bounded,
               TransportStats& stats) {
  const char* p = static_cast<const char*>(buf);
  const std::size_t total = bytes;
  while (bytes > 0) {
    const ssize_t n = ::send(fd, p, bytes, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        stats.retries.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        stats.retries.fetch_add(1, std::memory_order_relaxed);
        if (!wait_ready(fd, POLLOUT, deadline, bounded)) return false;
        continue;
      }
      return false;
    }
    if (static_cast<std::size_t>(n) < bytes && bytes < total) {
      // A short write past the first chunk means the kernel buffer filled
      // mid-frame: a re-issue, not normal chunking of the first call.
      stats.retries.fetch_add(1, std::memory_order_relaxed);
    }
    p += n;
    bytes -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Read exactly `bytes`, riding out EINTR/EAGAIN like full_send. False on
/// EOF, error or deadline (all mean: peer gone).
bool full_recv(int fd, void* buf, std::size_t bytes,
               std::chrono::steady_clock::time_point deadline, bool bounded,
               TransportStats& stats) {
  char* p = static_cast<char*>(buf);
  while (bytes > 0) {
    const ssize_t n = ::recv(fd, p, bytes, 0);
    if (n < 0 && errno == EINTR) {
      stats.retries.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      stats.retries.fetch_add(1, std::memory_order_relaxed);
      if (!wait_ready(fd, POLLIN, deadline, bounded)) return false;
      continue;
    }
    if (n <= 0) return false;
    p += n;
    bytes -= static_cast<std::size_t>(n);
  }
  return true;
}

bool unexpected_matches_posted(const detail::PostedRecv& pr, int src,
                               int tag, int context) {
  return pr.context == context &&
         (pr.src == kAnySource || pr.src == src) &&
         (pr.tag == kAnyTag || pr.tag == tag);
}

}  // namespace

TcpTransport::TcpTransport(Options opts) : opts_(std::move(opts)) {
  if (opts_.nendpoints <= 0 || opts_.me < 0 ||
      opts_.me >= opts_.nendpoints ||
      opts_.fds.size() != static_cast<std::size_t>(opts_.nendpoints)) {
    throw MpiError("TcpTransport: inconsistent mesh options");
  }
  peers_.reserve(opts_.fds.size());
  for (int fd : opts_.fds) {
    auto p = std::make_unique<Peer>();
    p->fd = fd;
    peers_.push_back(std::move(p));
  }
  dead_ = std::make_unique<std::atomic<bool>[]>(
      static_cast<std::size_t>(opts_.nendpoints));
  for (int n = 0; n < opts_.nendpoints; ++n) dead_[n].store(false);
  if (::pipe(wake_pipe_) != 0) {
    throw MpiError("TcpTransport: wake pipe creation failed");
  }
  receiver_ = std::thread([this] { receiver_loop(); });
}

TcpTransport::~TcpTransport() {
  stop_.store(true, std::memory_order_release);
  const char w = 'x';
  (void)!::write(wake_pipe_[1], &w, 1);
  if (receiver_.joinable()) receiver_.join();
  for (std::size_t n = 0; n < peers_.size(); ++n) {
    if (static_cast<int>(n) != opts_.me && peers_[n]->fd >= 0) {
      ::close(peers_[n]->fd);
    }
  }
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
}

void TcpTransport::check_poisoned(const char* what) const {
  const int d = poisoned_node();
  if (d >= 0) {
    throw NodeDeadError(d, std::string(what) + ": node " +
                               std::to_string(d) + " unreachable");
  }
}

void TcpTransport::mark_dead(int node) {
  bool expected = false;
  const bool newly_dead =
      dead_[static_cast<std::size_t>(node)].compare_exchange_strong(
          expected, true, std::memory_order_acq_rel);
  int want = -1;
  first_dead_.compare_exchange_strong(want, node, std::memory_order_acq_rel);
  want = -1;
  const bool newly_poisoned = poison_.compare_exchange_strong(
      want, node, std::memory_order_acq_rel);
  if (!newly_dead && !newly_poisoned) return;
  const int p = poisoned_node() >= 0 ? poisoned_node() : node;

  // Same containment model as the simulated fabric: a node death poisons
  // the transport and blocked receives unblock with the poisoning node's
  // name instead of waiting on a peer that will never answer. Recovery-
  // context receives (src labels are NODE ids by contract) are spared
  // while their source node lives: their senders bypass the poison and
  // will still deliver, and sweeping them would wipe the shrink
  // agreement's protocol state on every secondary death.
  std::deque<detail::PostedRecv> doomed;
  {
    std::lock_guard<std::mutex> lk(inbox_.mu);
    for (auto it = inbox_.posted.begin(); it != inbox_.posted.end();) {
      const bool recovery = it->context == kRecoveryContext;
      const bool src_dead =
          it->src != kAnySource && it->src >= 0 &&
          it->src < opts_.nendpoints && node_dead(it->src);
      if (!recovery || src_dead) {
        doomed.push_back(*it);
        it = inbox_.posted.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (detail::PostedRecv& pr : doomed) {
    const int name =
        pr.context == kRecoveryContext && pr.src != kAnySource ? pr.src : p;
    pr.req->complete_error(
        "tcp recv: node " + std::to_string(name) + " unreachable", name);
  }
}

void TcpTransport::declare_dead(int node) {
  if (node < 0 || node >= opts_.nendpoints) {
    throw MpiError("tcp declare_dead: bad node " + std::to_string(node));
  }
  mark_dead(node);
}

void TcpTransport::heal(std::uint64_t agreed_dead_mask) {
  int p = poison_.load(std::memory_order_acquire);
  while (p >= 0 && p < 64 && ((agreed_dead_mask >> p) & 1u) != 0) {
    if (poison_.compare_exchange_weak(p, -1, std::memory_order_acq_rel)) {
      return;
    }
  }
}

bool TcpTransport::deliver(int src_label, int tag, int context,
                           std::vector<std::byte> payload) {
  const std::size_t bytes = payload.size();
  std::unique_lock<std::mutex> lk(inbox_.mu);
  for (auto it = inbox_.posted.begin(); it != inbox_.posted.end(); ++it) {
    if (!unexpected_matches_posted(*it, src_label, tag, context)) continue;
    detail::PostedRecv pr = *it;
    inbox_.posted.erase(it);
    lk.unlock();
    if (bytes > pr.capacity) {
      pr.req->complete_error("recv truncated: message of " +
                             std::to_string(bytes) + " bytes into " +
                             std::to_string(pr.capacity) + " byte buffer");
      return true;
    }
    if (bytes > 0) std::memcpy(pr.buf, payload.data(), bytes);
    pr.req->complete(Status{src_label, tag, bytes});
    return true;
  }
  if ((opts_.limits.max_unexpected_msgs != 0 &&
       inbox_.unexpected.size() >= opts_.limits.max_unexpected_msgs) ||
      (opts_.limits.max_unexpected_bytes != 0 &&
       inbox_.unexpected_bytes + bytes > opts_.limits.max_unexpected_bytes)) {
    return false;
  }
  detail::UnexpectedMsg msg;
  msg.src = src_label;
  msg.tag = tag;
  msg.context = context;
  msg.bytes = bytes;
  msg.owned = std::move(payload);
  msg.has_owned = true;
  inbox_.unexpected.push_back(std::move(msg));
  inbox_.unexpected_bytes += bytes;
  return true;
}

void TcpTransport::receiver_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    std::vector<pollfd> fds;
    std::vector<int> nodes;
    fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    for (int n = 0; n < opts_.nendpoints; ++n) {
      if (n == opts_.me || node_dead(n) || peers_[n]->fd < 0) continue;
      fds.push_back(pollfd{peers_[n]->fd, POLLIN, 0});
      nodes.push_back(n);
    }
    if (fds.size() == 1 && nodes.empty()) return;  // nothing left to watch
    const int rc = ::poll(fds.data(), fds.size(), /*timeout_ms=*/-1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[0].revents & POLLIN) != 0) return;  // destructor wake-up
    for (std::size_t i = 1; i < fds.size(); ++i) {
      const int node = nodes[i - 1];
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const bool bounded = opts_.io_deadline_ms > 0;
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(bounded ? opts_.io_deadline_ms : 0);
      std::byte header[kHeaderBytes];
      if (!full_recv(fds[i].fd, header, kHeaderBytes, deadline, bounded,
                     stats_)) {
        mark_dead(node);  // EOF/reset: the peer process or host is gone
        continue;
      }
      const int src = static_cast<int>(get_u32(header));
      const int tag = static_cast<int>(get_u32(header + 4));
      const int context = static_cast<int>(get_u32(header + 8));
      const std::uint64_t bytes =
          get_u32(header + 12) |
          (static_cast<std::uint64_t>(get_u32(header + 16)) << 32);
      std::vector<std::byte> payload(static_cast<std::size_t>(bytes));
      if (bytes > 0 && !full_recv(fds[i].fd, payload.data(), payload.size(),
                                  deadline, bounded, stats_)) {
        mark_dead(node);  // died mid-frame
        continue;
      }
      stats_.bytes.fetch_add(bytes, std::memory_order_relaxed);
      if (!deliver(src, tag, context, std::move(payload))) {
        // Bounded inbox overflow on inbound traffic: there is no sender
        // to refuse (the bytes already crossed the wire), so treat the
        // link as failed rather than drop silently.
        mark_dead(node);
      }
    }
  }
}

Request TcpTransport::isend(ult::TaskContext& ctx, int src, int dst_ep,
                            int dst, const void* buf, std::size_t bytes,
                            int tag, int context) {
  ctx.sync_point("tcp:send");
  if (dst_ep < 0 || dst_ep >= opts_.nendpoints) {
    throw MpiError("tcp send: bad endpoint " + std::to_string(dst_ep));
  }
  if (context != kRecoveryContext) check_poisoned("tcp send");
  if (node_dead(dst_ep)) {
    throw NodeDeadError(dst_ep, "tcp send: node " + std::to_string(dst_ep) +
                                    " unreachable");
  }
  stats_.messages.fetch_add(1, std::memory_order_relaxed);
  auto req = std::make_shared<RequestState>();

  if (dst_ep == opts_.me) {
    // Self-delivery stays in process; bounded-queue exhaustion is a
    // refusable send here, matching the other transports.
    std::vector<std::byte> payload(bytes);
    if (bytes > 0) std::memcpy(payload.data(), buf, bytes);
    if (!deliver(src, tag, context, std::move(payload))) {
      throw TransportError(hlsmpc::ErrorCode::transport_exhausted,
                           "tcp send: local unexpected queue full");
    }
    stats_.bytes.fetch_add(bytes, std::memory_order_relaxed);
    stats_.eager_sends.fetch_add(1, std::memory_order_relaxed);
    req->complete(Status{dst, tag, bytes});
    return Request(req);
  }

  Peer& peer = *peers_[static_cast<std::size_t>(dst_ep)];
  std::byte header[kHeaderBytes];
  encode_header(header, src, tag, context, bytes);
  const bool bounded = opts_.io_deadline_ms > 0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(bounded ? opts_.io_deadline_ms : 0);
  bool ok;
  {
    std::lock_guard<std::mutex> lk(peer.send_mu);
    ok = full_send(peer.fd, header, kHeaderBytes, deadline, bounded,
                   stats_) &&
         (bytes == 0 ||
          full_send(peer.fd, buf, bytes, deadline, bounded, stats_));
  }
  if (!ok) {
    mark_dead(dst_ep);
    // Ordinary traffic reports the poisoning node (first-episode: the
    // first dead node, matching pre-recovery behaviour); recovery traffic
    // names the peer that actually failed so the agreement can suspect it.
    const int name =
        context == kRecoveryContext || poisoned_node() < 0 ? dst_ep
                                                           : poisoned_node();
    throw NodeDeadError(name, "tcp send: node " + std::to_string(name) +
                                  " unreachable");
  }
  stats_.bytes.fetch_add(bytes, std::memory_order_relaxed);
  stats_.eager_sends.fetch_add(1, std::memory_order_relaxed);
  req->complete(Status{dst, tag, bytes});
  return Request(req);
}

Request TcpTransport::irecv(ult::TaskContext& ctx, int me_ep, void* buf,
                            std::size_t capacity, int src, int tag,
                            int context) {
  ctx.sync_point("tcp:recv");
  if (me_ep != opts_.me) {
    throw MpiError("tcp recv: endpoint " + std::to_string(me_ep) +
                   " is not this process (me=" + std::to_string(opts_.me) +
                   ")");
  }
  auto req = std::make_shared<RequestState>();
  req->trace_is_recv = true;
  req->trace_context = context;

  std::unique_lock<std::mutex> lk(inbox_.mu);
  // Poison check under the inbox lock (same reasoning as the simulated
  // fabric): mark_dead publishes the flag before sweeping, so this recv
  // either sees it here or is swept. Recovery traffic bypasses the
  // episode poison but never the per-node dead flags (below).
  if (context != kRecoveryContext) {
    const int d = poisoned_node();
    if (d >= 0) {
      lk.unlock();
      throw NodeDeadError(d, "tcp recv: node " + std::to_string(d) +
                                 " unreachable");
    }
  }
  for (auto it = inbox_.unexpected.begin(); it != inbox_.unexpected.end();
       ++it) {
    if (!it->matches(src, tag, context)) continue;
    detail::UnexpectedMsg msg = std::move(*it);
    inbox_.unexpected.erase(it);
    inbox_.unexpected_bytes -= msg.bytes;
    lk.unlock();
    if (msg.bytes > capacity) {
      req->complete_error("recv truncated: message of " +
                          std::to_string(msg.bytes) + " bytes into " +
                          std::to_string(capacity) + " byte buffer");
      return Request(req);
    }
    if (msg.bytes > 0) std::memcpy(buf, msg.data(), msg.bytes);
    req->complete(Status{msg.src, msg.tag, msg.bytes});
    return Request(req);
  }
  // A recovery receive from a positively-dead node would wait forever:
  // refuse the post, naming the dead peer (already-delivered bytes are
  // still served above). Ordinary receives rely on the poison; their src
  // labels are RANK labels, not node ids, so no per-node check applies.
  if (context == kRecoveryContext && src != kAnySource && src >= 0 &&
      src < opts_.nendpoints && node_dead(src)) {
    lk.unlock();
    throw NodeDeadError(src, "tcp recv: node " + std::to_string(src) +
                                 " unreachable");
  }
  inbox_.posted.push_back(
      detail::PostedRecv{buf, capacity, src, tag, context, req});
  return Request(req);
}

bool TcpTransport::iprobe(int me_ep, int src, int tag, int context,
                          Status* status) {
  if (me_ep != opts_.me) {
    throw MpiError("tcp iprobe: endpoint " + std::to_string(me_ep) +
                   " is not this process");
  }
  std::lock_guard<std::mutex> lk(inbox_.mu);
  for (const detail::UnexpectedMsg& msg : inbox_.unexpected) {
    if (msg.matches(src, tag, context)) {
      if (status != nullptr) *status = Status{msg.src, msg.tag, msg.bytes};
      return true;
    }
  }
  return false;
}

}  // namespace hlsmpc::mpi

#endif  // HLSMPC_TCP_ENABLED
