// Point-to-point layer: MPI semantics over the Transport abstraction.
//
// Comm validates arguments, stamps rank labels, and feeds the trace /
// obs hooks; the actual matching and byte movement happen inside the
// runtime's Transport (shm_transport.cpp for the intra-node engine).
#include "mpi/comm.hpp"
#include "mpi/runtime.hpp"
#include "obs/recorder.hpp"

namespace hlsmpc::mpi {

namespace {

#if HLSMPC_OBS_ENABLED
/// Instant p2p event (send initiated / receive completed), mirroring the
/// TraceHook callbacks so obs sinks see the same stream hb::RuntimeTracer
/// consumes.
void obs_p2p(obs::Recorder* obs, obs::EventKind kind, int task, int cpu,
             int peer, int context, int tag) {
  if (obs == nullptr) return;
  obs->count(task, kind == obs::EventKind::p2p_send
                       ? obs::Counter::p2p_sends
                       : obs::Counter::p2p_recvs);
  obs::Event e;
  e.kind = kind;
  e.task = task;
  e.cpu = cpu;
  e.t0 = e.t1 = obs->now();
  e.arg = peer;
  e.arg2 = (static_cast<std::int64_t>(context) << 32) |
           static_cast<std::int64_t>(static_cast<std::uint32_t>(tag));
  obs->record(e);
}
#endif

}  // namespace

Request Comm::isend_ctx(ult::TaskContext& ctx, const void* buf,
                        std::size_t bytes, int dst, int tag, int context) {
  check_rank(dst, "send");
  const int me = rank(ctx);
  if (TraceHook* hook = rt_->trace_hook()) {
    hook->on_send(ctx.task_id(), global_task(dst), context, tag);
  }
#if HLSMPC_OBS_ENABLED
  obs_p2p(rt_->obs(), obs::EventKind::p2p_send, ctx.task_id(), ctx.cpu(),
          global_task(dst), context, tag);
#endif
  // The message is stamped with the sender's comm-local rank (matching is
  // per communicator via the context id); the endpoint is the
  // destination's node-local task id, which indexes the shm mailboxes.
  return rt_->transport().isend(ctx, me, global_task(dst), dst, buf, bytes,
                                tag, context);
}

Request Comm::irecv_ctx(ult::TaskContext& ctx, void* buf,
                        std::size_t capacity, int src, int tag, int context) {
  if (src != kAnySource) check_rank(src, "recv");
  return rt_->transport().irecv(ctx, ctx.task_id(), buf, capacity, src, tag,
                                context);
}

Request Comm::isend(ult::TaskContext& ctx, const void* buf, std::size_t bytes,
                    int dst, int tag) {
  check_tag(tag);
  return isend_ctx(ctx, buf, bytes, dst, tag, pt2pt_context_);
}

Request Comm::irecv(ult::TaskContext& ctx, void* buf, std::size_t capacity,
                    int src, int tag) {
  if (tag != kAnyTag) check_tag(tag);
  return irecv_ctx(ctx, buf, capacity, src, tag, pt2pt_context_);
}

void Comm::wait(ult::TaskContext& ctx, Request& req, Status* status) {
  auto st = req.state();
  if (!st) throw MpiError("wait: invalid request");
  {
    std::unique_lock<std::mutex> lk(st->mu);
    ult::wait_until(ctx, lk, st->cv, [&] { return st->done; });
    if (!st->error.empty()) throw MpiError(st->error);
    if (status != nullptr) *status = st->status;
  }
  if (st->trace_is_recv && st->status.source >= 0) {
    if (TraceHook* hook = rt_->trace_hook()) {
      hook->on_recv(ctx.task_id(), global_task(st->status.source),
                    st->trace_context, st->status.tag);
    }
#if HLSMPC_OBS_ENABLED
    obs_p2p(rt_->obs(), obs::EventKind::p2p_recv, ctx.task_id(), ctx.cpu(),
            global_task(st->status.source), st->trace_context,
            st->status.tag);
#endif
  }
  req.state().reset();
}

void Comm::waitall(ult::TaskContext& ctx, std::span<Request> reqs) {
  // Waiting in order is correct: completion is monotone and every wait
  // blocks cooperatively.
  for (Request& r : reqs) {
    if (r.valid()) wait(ctx, r);
  }
}

int Comm::waitany(ult::TaskContext& ctx, std::span<Request> reqs,
                  Status* status) {
  bool any_valid = false;
  for (const Request& r : reqs) any_valid |= r.valid();
  if (!any_valid) throw MpiError("waitany: no active requests");
  while (true) {
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (!reqs[i].valid()) continue;
      auto st = reqs[i].state();
      bool done;
      {
        std::lock_guard<std::mutex> lk(st->mu);
        done = st->done;
        if (done && !st->error.empty()) throw MpiError(st->error);
        if (done && status != nullptr) *status = st->status;
      }
      if (done) {
        // Route through wait() for the tracing side effects.
        wait(ctx, reqs[i]);
        return static_cast<int>(i);
      }
    }
    ctx.yield();
  }
}

bool Comm::test(Request& req, Status* status) {
  auto st = req.state();
  if (!st) throw MpiError("test: invalid request");
  std::lock_guard<std::mutex> lk(st->mu);
  if (!st->done) return false;
  if (!st->error.empty()) throw MpiError(st->error);
  if (status != nullptr) *status = st->status;
  return true;
}

void Comm::send(ult::TaskContext& ctx, const void* buf, std::size_t bytes,
                int dst, int tag) {
  check_tag(tag);
  Request req = isend_ctx(ctx, buf, bytes, dst, tag, pt2pt_context_);
  wait(ctx, req);
}

void Comm::send_ctx(ult::TaskContext& ctx, const void* buf, std::size_t bytes,
                    int dst, int tag, int context) {
  Request req = isend_ctx(ctx, buf, bytes, dst, tag, context);
  wait(ctx, req);
}

void Comm::recv(ult::TaskContext& ctx, void* buf, std::size_t capacity,
                int src, int tag, Status* status) {
  if (tag != kAnyTag) check_tag(tag);
  Request req = irecv_ctx(ctx, buf, capacity, src, tag, pt2pt_context_);
  wait(ctx, req, status);
}

void Comm::recv_ctx(ult::TaskContext& ctx, void* buf, std::size_t capacity,
                    int src, int tag, int context, Status* status) {
  Request req = irecv_ctx(ctx, buf, capacity, src, tag, context);
  wait(ctx, req, status);
}

bool Comm::iprobe(ult::TaskContext& ctx, int src, int tag, Status* status) {
  if (src != kAnySource) check_rank(src, "iprobe");
  return rt_->transport().iprobe(ctx.task_id(), src, tag, pt2pt_context_,
                                 status);
}

void Comm::probe(ult::TaskContext& ctx, int src, int tag, Status* status) {
  while (!iprobe(ctx, src, tag, status)) ctx.yield();
}

void Comm::sendrecv(ult::TaskContext& ctx, const void* sendbuf,
                    std::size_t send_bytes, int dst, int sendtag,
                    void* recvbuf, std::size_t recv_capacity, int src,
                    int recvtag, Status* status) {
  // Post both sides before waiting: the MPI-mandated deadlock-free shape.
  Request r = irecv(ctx, recvbuf, recv_capacity, src, recvtag);
  Request s = isend(ctx, sendbuf, send_bytes, dst, sendtag);
  wait(ctx, s);
  wait(ctx, r, status);
}

}  // namespace hlsmpc::mpi
