// Point-to-point engine: eager / rendezvous protocols over shared memory.
#include <cstring>

#include "mpi/comm.hpp"
#include "mpi/runtime.hpp"
#include "obs/recorder.hpp"

namespace hlsmpc::mpi {

namespace {

#if HLSMPC_OBS_ENABLED
/// Instant p2p event (send initiated / receive completed), mirroring the
/// TraceHook callbacks so obs sinks see the same stream hb::RuntimeTracer
/// consumes.
void obs_p2p(obs::Recorder* obs, obs::EventKind kind, int task, int cpu,
             int peer, int context, int tag) {
  if (obs == nullptr) return;
  obs->count(task, kind == obs::EventKind::p2p_send
                       ? obs::Counter::p2p_sends
                       : obs::Counter::p2p_recvs);
  obs::Event e;
  e.kind = kind;
  e.task = task;
  e.cpu = cpu;
  e.t0 = e.t1 = obs->now();
  e.arg = peer;
  e.arg2 = (static_cast<std::int64_t>(context) << 32) |
           static_cast<std::int64_t>(static_cast<std::uint32_t>(tag));
  obs->record(e);
}
#endif

/// Copy that skips the memcpy when source and destination alias — the
/// intra-node optimisation the paper exploits for Tachyon's shared image
/// (§V.B.3): "if the source and the destination are identical ... this
/// copy is not realized".
void copy_payload(void* dst, const void* src, std::size_t bytes,
                  TransportStats& stats) {
  if (bytes == 0) return;
  if (dst == src) {
    stats.copies_elided.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::memcpy(dst, src, bytes);
}

bool posted_matches(const PostedRecv& pr, int src_rank, int tag,
                    int context) {
  return pr.context == context &&
         (pr.src == kAnySource || pr.src == src_rank) &&
         (pr.tag == kAnyTag || pr.tag == tag);
}

}  // namespace

Request Comm::isend_ctx(ult::TaskContext& ctx, const void* buf,
                        std::size_t bytes, int dst, int tag, int context) {
  check_rank(dst, "send");
  const int me = rank(ctx);
  TransportStats& stats = rt_->stats();
  stats.messages.fetch_add(1, std::memory_order_relaxed);
  stats.bytes.fetch_add(bytes, std::memory_order_relaxed);
  if (TraceHook* hook = rt_->trace_hook()) {
    hook->on_send(ctx.task_id(), global_task(dst), context, tag);
  }
#if HLSMPC_OBS_ENABLED
  obs_p2p(rt_->obs(), obs::EventKind::p2p_send, ctx.task_id(), ctx.cpu(),
          global_task(dst), context, tag);
#endif

  Mailbox& mb = rt_->mailbox(global_task(dst));
  auto req = std::make_shared<RequestState>();

  std::unique_lock<std::mutex> lk(mb.mu);
  // Fast path: a matching receive is already posted — copy straight into
  // the user buffer (this is what makes thread-based intra-node MPI fast).
  for (auto it = mb.posted.begin(); it != mb.posted.end(); ++it) {
    if (!posted_matches(*it, me, tag, context)) continue;
    PostedRecv pr = *it;
    mb.posted.erase(it);
    lk.unlock();
    if (bytes > pr.capacity) {
      pr.req->complete_error("recv truncated: message of " +
                             std::to_string(bytes) + " bytes into " +
                             std::to_string(pr.capacity) + " byte buffer");
      req->complete_error("send: matching receive buffer too small");
      return Request(req);
    }
    copy_payload(pr.buf, buf, bytes, stats);
    pr.req->complete(Status{me, tag, bytes});
    req->complete(Status{dst, tag, bytes});
    return Request(req);
  }

  if (bytes <= rt_->buffers().eager_threshold()) {
    // Eager: copy into a leased buffer; the send completes immediately
    // (buffered-send semantics, like any eager protocol).
    UnexpectedMsg msg;
    msg.src = me;
    msg.tag = tag;
    msg.context = context;
    msg.bytes = bytes;
    msg.payload = rt_->buffers().acquire(bytes);
    if (bytes > 0) std::memcpy(msg.payload.data(), buf, bytes);
    mb.unexpected.push_back(std::move(msg));
    lk.unlock();
    stats.eager_sends.fetch_add(1, std::memory_order_relaxed);
    req->complete(Status{dst, tag, bytes});
    return Request(req);
  }

  // Rendezvous: leave a descriptor pointing at the caller's buffer; the
  // receiver copies and only then completes this request, so the caller's
  // buffer stays live while the message is in flight.
  UnexpectedMsg msg;
  msg.src = me;
  msg.tag = tag;
  msg.context = context;
  msg.bytes = bytes;
  msg.rdv_src = buf;
  msg.sender_req = req;
  mb.unexpected.push_back(std::move(msg));
  lk.unlock();
  stats.rendezvous_sends.fetch_add(1, std::memory_order_relaxed);
  return Request(req);
}

Request Comm::irecv_ctx(ult::TaskContext& ctx, void* buf,
                        std::size_t capacity, int src, int tag, int context) {
  if (src != kAnySource) check_rank(src, "recv");
  TransportStats& stats = rt_->stats();
  Mailbox& mb = rt_->mailbox(ctx.task_id());
  auto req = std::make_shared<RequestState>();
  req->trace_is_recv = true;
  req->trace_context = context;

  std::unique_lock<std::mutex> lk(mb.mu);
  for (auto it = mb.unexpected.begin(); it != mb.unexpected.end(); ++it) {
    if (!it->matches(src, tag, context)) continue;
    UnexpectedMsg msg = std::move(*it);
    mb.unexpected.erase(it);
    lk.unlock();
    if (msg.bytes > capacity) {
      if (msg.is_rendezvous()) {
        msg.sender_req->complete_error("send: receive buffer too small");
      }
      req->complete_error("recv truncated: message of " +
                          std::to_string(msg.bytes) + " bytes into " +
                          std::to_string(capacity) + " byte buffer");
      return Request(req);
    }
    if (msg.is_rendezvous()) {
      copy_payload(buf, msg.rdv_src, msg.bytes, stats);
      msg.sender_req->complete(Status{/*source=*/-1, msg.tag, msg.bytes});
    } else {
      // Note: no same-address elision here. An eager send completes
      // immediately, so by match time the sender's buffer may be freed
      // and its address legitimately reused — only the payload copy is
      // trustworthy. Same-address elision applies on the synchronous
      // paths (posted-receive match and rendezvous), where the sender's
      // buffer is still live.
      copy_payload(buf, msg.payload.data(), msg.bytes, stats);
    }
    req->complete(Status{msg.src, msg.tag, msg.bytes});
    return Request(req);
  }

  mb.posted.push_back(PostedRecv{buf, capacity, src, tag, context, req});
  return Request(req);
}

Request Comm::isend(ult::TaskContext& ctx, const void* buf, std::size_t bytes,
                    int dst, int tag) {
  check_tag(tag);
  return isend_ctx(ctx, buf, bytes, dst, tag, pt2pt_context_);
}

Request Comm::irecv(ult::TaskContext& ctx, void* buf, std::size_t capacity,
                    int src, int tag) {
  if (tag != kAnyTag) check_tag(tag);
  return irecv_ctx(ctx, buf, capacity, src, tag, pt2pt_context_);
}

void Comm::wait(ult::TaskContext& ctx, Request& req, Status* status) {
  auto st = req.state();
  if (!st) throw MpiError("wait: invalid request");
  {
    std::unique_lock<std::mutex> lk(st->mu);
    ult::wait_until(ctx, lk, st->cv, [&] { return st->done; });
    if (!st->error.empty()) throw MpiError(st->error);
    if (status != nullptr) *status = st->status;
  }
  if (st->trace_is_recv && st->status.source >= 0) {
    if (TraceHook* hook = rt_->trace_hook()) {
      hook->on_recv(ctx.task_id(), global_task(st->status.source),
                    st->trace_context, st->status.tag);
    }
#if HLSMPC_OBS_ENABLED
    obs_p2p(rt_->obs(), obs::EventKind::p2p_recv, ctx.task_id(), ctx.cpu(),
            global_task(st->status.source), st->trace_context,
            st->status.tag);
#endif
  }
  req.state().reset();
}

void Comm::waitall(ult::TaskContext& ctx, std::span<Request> reqs) {
  // Waiting in order is correct: completion is monotone and every wait
  // blocks cooperatively.
  for (Request& r : reqs) {
    if (r.valid()) wait(ctx, r);
  }
}

int Comm::waitany(ult::TaskContext& ctx, std::span<Request> reqs,
                  Status* status) {
  bool any_valid = false;
  for (const Request& r : reqs) any_valid |= r.valid();
  if (!any_valid) throw MpiError("waitany: no active requests");
  while (true) {
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (!reqs[i].valid()) continue;
      auto st = reqs[i].state();
      bool done;
      {
        std::lock_guard<std::mutex> lk(st->mu);
        done = st->done;
        if (done && !st->error.empty()) throw MpiError(st->error);
        if (done && status != nullptr) *status = st->status;
      }
      if (done) {
        // Route through wait() for the tracing side effects.
        wait(ctx, reqs[i]);
        return static_cast<int>(i);
      }
    }
    ctx.yield();
  }
}

bool Comm::test(Request& req, Status* status) {
  auto st = req.state();
  if (!st) throw MpiError("test: invalid request");
  std::lock_guard<std::mutex> lk(st->mu);
  if (!st->done) return false;
  if (!st->error.empty()) throw MpiError(st->error);
  if (status != nullptr) *status = st->status;
  return true;
}

void Comm::send(ult::TaskContext& ctx, const void* buf, std::size_t bytes,
                int dst, int tag) {
  check_tag(tag);
  Request req = isend_ctx(ctx, buf, bytes, dst, tag, pt2pt_context_);
  wait(ctx, req);
}

void Comm::send_ctx(ult::TaskContext& ctx, const void* buf, std::size_t bytes,
                    int dst, int tag, int context) {
  Request req = isend_ctx(ctx, buf, bytes, dst, tag, context);
  wait(ctx, req);
}

void Comm::recv(ult::TaskContext& ctx, void* buf, std::size_t capacity,
                int src, int tag, Status* status) {
  if (tag != kAnyTag) check_tag(tag);
  Request req = irecv_ctx(ctx, buf, capacity, src, tag, pt2pt_context_);
  wait(ctx, req, status);
}

void Comm::recv_ctx(ult::TaskContext& ctx, void* buf, std::size_t capacity,
                    int src, int tag, int context, Status* status) {
  Request req = irecv_ctx(ctx, buf, capacity, src, tag, context);
  wait(ctx, req, status);
}

bool Comm::iprobe(ult::TaskContext& ctx, int src, int tag, Status* status) {
  if (src != kAnySource) check_rank(src, "iprobe");
  Mailbox& mb = rt_->mailbox(ctx.task_id());
  std::lock_guard<std::mutex> lk(mb.mu);
  for (const UnexpectedMsg& msg : mb.unexpected) {
    if (msg.matches(src, tag, pt2pt_context_)) {
      if (status != nullptr) *status = Status{msg.src, msg.tag, msg.bytes};
      return true;
    }
  }
  return false;
}

void Comm::probe(ult::TaskContext& ctx, int src, int tag, Status* status) {
  while (!iprobe(ctx, src, tag, status)) ctx.yield();
}

void Comm::sendrecv(ult::TaskContext& ctx, const void* sendbuf,
                    std::size_t send_bytes, int dst, int sendtag,
                    void* recvbuf, std::size_t recv_capacity, int src,
                    int recvtag, Status* status) {
  // Post both sides before waiting: the MPI-mandated deadlock-free shape.
  Request r = irecv(ctx, recvbuf, recv_capacity, src, recvtag);
  Request s = isend(ctx, sendbuf, send_bytes, dst, sendtag);
  wait(ctx, s);
  wait(ctx, r, status);
}

}  // namespace hlsmpc::mpi
