// Per-endpoint message matching structures (transport-internal).
//
// This header is implementation detail of the Transport layer: only
// Transport implementations (ShmTransport, SimFabricTransport) may
// include it. Application- and Comm-level code talks to mpi/transport.hpp.
//
// The matching model is MPI's: a send is either (a) a direct copy into an
// already-posted receive buffer, (b) an eager copy queued as "unexpected",
// or (c) for large intra-node messages, a rendezvous record pointing at
// the sender's buffer, copied when the receive is posted and only then
// completing the sender. Matching follows MPI's non-overtaking rule:
// queues are scanned front to back, so messages from the same
// (source, tag, context) match in order.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "mpi/buffers.hpp"
#include "mpi/types.hpp"

namespace hlsmpc::mpi::detail {

struct PostedRecv {
  void* buf = nullptr;
  std::size_t capacity = 0;
  int src = kAnySource;
  int tag = kAnyTag;
  int context = 0;
  std::shared_ptr<RequestState> req;
};

struct UnexpectedMsg {
  int src = 0;
  int tag = 0;
  int context = 0;
  std::size_t bytes = 0;
  /// Eager protocol, shared-memory path: the payload copy lives in a
  /// leased buffer of the node's BufferManager.
  BufferManager::Lease payload;
  /// Eager protocol, fabric path: transports whose endpoints do not share
  /// a BufferManager (SimFabricTransport) own the payload copy outright.
  std::vector<std::byte> owned;
  bool has_owned = false;
  /// Rendezvous protocol: sender's buffer; valid until sender_req is
  /// completed by the receiver after copying.
  const void* rdv_src = nullptr;
  std::shared_ptr<RequestState> sender_req;

  bool is_rendezvous() const { return sender_req != nullptr; }
  const void* data() const { return has_owned ? owned.data() : payload.data(); }
  bool matches(int want_src, int want_tag, int want_ctx) const {
    return context == want_ctx &&
           (want_src == kAnySource || want_src == src) &&
           (want_tag == kAnyTag || want_tag == tag);
  }
};

struct Mailbox {
  std::mutex mu;
  std::deque<UnexpectedMsg> unexpected;
  std::deque<PostedRecv> posted;
  /// Bytes held by queued unexpected messages (eager payloads only; a
  /// rendezvous descriptor parks the bytes in the sender's buffer).
  std::size_t unexpected_bytes = 0;
};

}  // namespace hlsmpc::mpi::detail
