// Shrink-and-recover: the agreement protocol that turns a node death from
// a job-wide abort into a bounded recovery episode.
//
// Shape follows the ULFM fault-tolerance extensions prototyped in MPICH
// (PAPERS.md): survivors of a NodeDeadError run an agreement on the set of
// dead nodes, install a communicator view excluding them, and resume. The
// protocol here is coordinator-based:
//
//   per attempt (ctx.sync_point("shrink:round"), so the ScheduleExplorer
//   can interleave every round):
//     coordinator := lowest member not currently suspect.
//     participants send their suspect-mask to the coordinator and await
//       the final verdict, each with a per-round deadline.
//     the coordinator gathers masks from every non-suspect member; a
//       gather failure (dead / deadline) adds the peer to the suspect set
//       and its bit to the union. It then disseminates kFinal(union) and
//       decides.
//     a participant whose coordinator fails (dead / deadline) suspects it
//       and retries with the next coordinator: attempt+1.
//
//   Termination: every retry adds at least one suspect, so attempts are
//   bounded by the member count. Tags encode (view epoch, attempt, phase)
//   so messages of different attempts or episodes can never match.
//
//   Failure-detection contract: a peer that misses its deadline is
//   DECLARED dead (RecoveryChannel::declare_dead) — false suspicion is
//   treated as real death, the excluded node must rejoin via respawn.
//   With deadlines far above the transports' round-trip times (and both
//   transports completing receives from positively-dead peers promptly,
//   see the sweep rules in sim_fabric.hpp / tcp_transport.hpp), the
//   timeout path is a genuine last resort and survivors converge on one
//   verdict.
//
// All protocol traffic uses kRecoveryContext (transport.hpp): it bypasses
// the transports' episode poison — the agreement must run over the very
// fabric that just lost a member — but still fails fast against per-node
// dead flags.
#pragma once

#include "mpi/transport.hpp"

#ifndef HLSMPC_RECOVERY_ENABLED
#define HLSMPC_RECOVERY_ENABLED 1
#endif

#if HLSMPC_RECOVERY_ENABLED

#include <chrono>
#include <cstdint>
#include <vector>

#include "mpi/sim_fabric.hpp"
#if HLSMPC_TCP_ENABLED
#include "mpi/tcp_transport.hpp"
#endif

namespace hlsmpc::mpi::recover {

struct ShrinkConfig {
  /// Per-round receive deadline. Must be far above the transport's
  /// round-trip time: expiry DECLARES the silent peer dead.
  std::chrono::milliseconds round_timeout{2000};
  /// Attempt budget; 0 derives members+1 (each retry adds a suspect).
  int max_attempts = 0;
  /// Communicator view epoch, namespacing the protocol tags so messages
  /// from an earlier episode can never match this one.
  std::uint32_t epoch = 0;
};

struct ShrinkDecision {
  /// Agreed dead set (bit n = node n).
  std::uint64_t dead_mask = 0;
  /// Attempts the agreement used (1 = no coordinator failed over).
  int attempts = 1;
  /// Surviving members, ascending.
  std::vector<int> live;
};

/// Node-to-node messaging as the agreement sees it: every implementation
/// sends in kRecoveryContext and exposes the transport's per-node death
/// knowledge. Node ids are the transport's node space.
class RecoveryChannel {
 public:
  virtual ~RecoveryChannel() = default;
  RecoveryChannel(const RecoveryChannel&) = delete;
  RecoveryChannel& operator=(const RecoveryChannel&) = delete;

  enum class RecvResult {
    ok,       ///< message received
    dead,     ///< source positively known dead (possibly learned waiting)
    timeout,  ///< deadline expired; the source has been DECLARED dead
  };

  virtual int nnodes() const = 0;
  virtual bool node_dead(int node) const = 0;
  /// Classify `node` dead (timeout escalation / persistent-failure
  /// reclassification).
  virtual void declare_dead(int node) = 0;
  /// Send to `dst_node`; false when the peer is (now) known dead — a
  /// persistent transport failure towards it declares it dead first.
  virtual bool send(ult::TaskContext& ctx, int dst_node, const void* buf,
                    std::size_t bytes, int tag) = 0;
  /// Receive from `src_node` under a deadline.
  virtual RecvResult recv(ult::TaskContext& ctx, int src_node, void* buf,
                          std::size_t capacity, int tag,
                          std::chrono::milliseconds timeout) = 0;

 protected:
  RecoveryChannel() = default;
};

/// Recovery channel over the simulated fabric: node n speaks through its
/// leader endpoint (global rank n * ranks_per_node).
class FabricRecoveryChannel final : public RecoveryChannel {
 public:
  FabricRecoveryChannel(SimFabricTransport& fabric, int me_node)
      : fabric_(&fabric), me_(me_node) {}

  int nnodes() const override { return fabric_->nnodes(); }
  bool node_dead(int node) const override { return fabric_->node_dead(node); }
  void declare_dead(int node) override { fabric_->kill_node(node); }
  bool send(ult::TaskContext& ctx, int dst_node, const void* buf,
            std::size_t bytes, int tag) override;
  RecvResult recv(ult::TaskContext& ctx, int src_node, void* buf,
                  std::size_t capacity, int tag,
                  std::chrono::milliseconds timeout) override;

 private:
  int leader_ep(int node) const { return node * fabric_->ranks_per_node(); }

  SimFabricTransport* fabric_;
  int me_;
};

#if HLSMPC_TCP_ENABLED
/// Recovery channel over the socket mesh: endpoints ARE nodes, and the
/// src labels stamped on recovery frames are node ids (the contract
/// TcpTransport's sweep rule relies on).
class TcpRecoveryChannel final : public RecoveryChannel {
 public:
  explicit TcpRecoveryChannel(TcpTransport& tcp) : tcp_(&tcp) {}

  int nnodes() const override { return tcp_->nendpoints(); }
  bool node_dead(int node) const override { return tcp_->node_dead(node); }
  void declare_dead(int node) override { tcp_->declare_dead(node); }
  bool send(ult::TaskContext& ctx, int dst_node, const void* buf,
            std::size_t bytes, int tag) override;
  RecvResult recv(ult::TaskContext& ctx, int src_node, void* buf,
                  std::size_t capacity, int tag,
                  std::chrono::milliseconds timeout) override;

 private:
  TcpTransport* tcp_;
};
#endif  // HLSMPC_TCP_ENABLED

/// Run the shrink agreement among `members` (ascending node ids, <= 64,
/// containing `me`). Returns the agreed decision; throws NodeDeadError if
/// the local node itself has been declared dead, MpiError if the attempt
/// budget runs out (only possible under pathological false suspicion).
ShrinkDecision shrink_agree(ult::TaskContext& ctx, RecoveryChannel& ch,
                            int me, const std::vector<int>& members,
                            const ShrinkConfig& cfg);

/// Non-hierarchical allreduce among surviving nodes over a recovery
/// channel (binomial fold in ascending position order — live[0] holds the
/// exact ascending fold, only associativity required — then binomial
/// bcast back). One caller per live node; used to validate a shrunken
/// membership end-to-end where no ClusterComm exists (the TCP mesh).
/// Throws MpiError when a survivor fails mid-collective.
void survivor_allreduce(ult::TaskContext& ctx, RecoveryChannel& ch,
                        int me_node, const std::vector<int>& live, void* buf,
                        std::size_t count, std::size_t elem_bytes,
                        const ReduceFn& fn, int tag,
                        std::chrono::milliseconds timeout =
                            std::chrono::milliseconds(10000));

}  // namespace hlsmpc::mpi::recover

#endif  // HLSMPC_RECOVERY_ENABLED
