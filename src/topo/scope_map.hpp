// HLS scope specifications and their mapping onto a Machine.
//
// A scope spec is what appears in the directive: `node`, `numa`,
// `cache [level(L)]` or `core` (paper §II.B.1). Given a machine, a scope
// partitions the cpus into *instances*; tasks pinned to cpus of the same
// instance share one copy of every variable with that scope. Scopes are
// totally ordered by width: core < cache(1) <= ... <= cache(llc) <= numa
// <= node (the paper's "largest scope" rule for `#pragma hls barrier`).
#pragma once

#include <string>

#include "topo/topology.hpp"

namespace hlsmpc::topo {

enum class ScopeKind { core, cache, numa, node };

/// A parsed scope clause. `level` is only meaningful for `cache`; 0 means
/// "last level" (the directive spelling `cache level(llc)`).
struct ScopeSpec {
  ScopeKind kind = ScopeKind::node;
  int level = 0;

  friend bool operator==(const ScopeSpec&, const ScopeSpec&) = default;
};

ScopeSpec node_scope();
ScopeSpec numa_scope();
ScopeSpec cache_scope(int level = 0);  ///< 0 = llc
ScopeSpec core_scope();

std::string to_string(const ScopeSpec& s);

/// Parse "node", "numa", "core", "cache", "cache(2)", "cache(llc)".
/// Throws std::invalid_argument on anything else.
ScopeSpec parse_scope(const std::string& text);

/// Dense, construction-time-frozen enumeration of every scope a machine
/// can express, with precomputed cpu -> instance tables.
///
/// The HLS hot paths (hls_get_addr, barrier/single entry) resolve a scope
/// and a cpu to a scope-instance on every call; doing that through
/// ScopeMap's switch + division math (or worse, through a
/// std::map<scope, ...> keyed lookup) puts avoidable work and, with a map,
/// a lock on the critical path. The set of scopes is fully determined by
/// the machine, so this table assigns each one a small integer id at
/// construction and freezes flat lookup arrays; after that, resolution is
/// one array load and never takes a lock.
///
/// Id layout (machine with L cache levels):
///   0           node
///   1           numa        (one instance per NUMA domain)
///   2           numa(2)     (one instance per socket; same partition as
///                            `numa` when each socket holds one domain)
///   3 .. 2+L    cache(1) .. cache(L)   (resolved levels only)
///   3+L         core
class DenseScopeTable {
 public:
  explicit DenseScopeTable(const Machine& machine);

  int num_scopes() const { return num_scopes_; }
  int num_cpus() const { return ncpus_; }

  /// Dense id of a scope. `level` is the *resolved* cache level (1..L)
  /// for cache scopes, and 0 or 2 for numa (2 = per socket). Throws on a
  /// cache level the machine does not have.
  int id(ScopeKind kind, int level) const;

  /// Human-readable name of a dense id ("node", "numa", "numa_socket",
  /// "cache_L2", "core") for exporters and diagnostics.
  std::string name(int sid) const;

  /// Every dense id ordered narrow -> wide: core, cache(1)..cache(L),
  /// numa, numa(2) (only when sockets hold several NUMA domains), node.
  /// Consumers building containment hierarchies — the MPI shared-memory
  /// collective engine's leader tree — walk this chain and keep the
  /// levels that actually merge instances.
  std::vector<int> widening_chain() const;

  int num_instances(int sid) const {
    return num_instances_[static_cast<std::size_t>(sid)];
  }
  int cpus_per_instance(int sid) const {
    return cpus_per_instance_[static_cast<std::size_t>(sid)];
  }
  /// Precomputed flat lookup; throws on a cpu outside the machine.
  int instance_of(int sid, int cpu) const {
    if (cpu < 0 || cpu >= ncpus_) {
      throw std::out_of_range("DenseScopeTable::instance_of: bad cpu");
    }
    return cpu_to_inst_[static_cast<std::size_t>(sid) *
                            static_cast<std::size_t>(ncpus_) +
                        static_cast<std::size_t>(cpu)];
  }

 private:
  int ncpus_ = 0;
  int ncache_ = 0;
  bool numa2_distinct_ = false;  ///< several NUMA domains per socket?
  int num_scopes_ = 0;
  std::vector<int> num_instances_;       // indexed by sid
  std::vector<int> cpus_per_instance_;   // indexed by sid
  std::vector<int> cpu_to_inst_;         // sid * ncpus + cpu
};

/// Maps scope specs to instance indices on a concrete machine.
class ScopeMap {
 public:
  explicit ScopeMap(const Machine& machine) : machine_(&machine) {}

  const Machine& machine() const { return *machine_; }

  /// Resolve a `cache` spec's level (0 -> llc); identity for other kinds.
  int resolved_cache_level(const ScopeSpec& s) const;

  /// Number of instances of this scope on the machine.
  int num_instances(const ScopeSpec& s) const;

  /// Instance a cpu belongs to.
  int instance_of(const ScopeSpec& s, int cpu) const;

  /// Number of cpus per instance (uniform).
  int cpus_per_instance(const ScopeSpec& s) const;

  /// All cpus in an instance, ascending.
  std::vector<int> cpus_of_instance(const ScopeSpec& s, int inst) const;

  /// True if `a` is at least as wide as `b` (shared by a superset of cpus).
  bool wider_or_equal(const ScopeSpec& a, const ScopeSpec& b) const;

  /// Widest of the two (used by `#pragma hls barrier(list)`).
  ScopeSpec widest(const ScopeSpec& a, const ScopeSpec& b) const;

 private:
  const Machine* machine_;
};

}  // namespace hlsmpc::topo
