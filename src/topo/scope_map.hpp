// HLS scope specifications and their mapping onto a Machine.
//
// A scope spec is what appears in the directive: `node`, `numa`,
// `cache [level(L)]` or `core` (paper §II.B.1). Given a machine, a scope
// partitions the cpus into *instances*; tasks pinned to cpus of the same
// instance share one copy of every variable with that scope. Scopes are
// totally ordered by width: core < cache(1) <= ... <= cache(llc) <= numa
// <= node (the paper's "largest scope" rule for `#pragma hls barrier`).
#pragma once

#include <string>

#include "topo/topology.hpp"

namespace hlsmpc::topo {

enum class ScopeKind { core, cache, numa, node };

/// A parsed scope clause. `level` is only meaningful for `cache`; 0 means
/// "last level" (the directive spelling `cache level(llc)`).
struct ScopeSpec {
  ScopeKind kind = ScopeKind::node;
  int level = 0;

  friend bool operator==(const ScopeSpec&, const ScopeSpec&) = default;
};

ScopeSpec node_scope();
ScopeSpec numa_scope();
ScopeSpec cache_scope(int level = 0);  ///< 0 = llc
ScopeSpec core_scope();

std::string to_string(const ScopeSpec& s);

/// Parse "node", "numa", "core", "cache", "cache(2)", "cache(llc)".
/// Throws std::invalid_argument on anything else.
ScopeSpec parse_scope(const std::string& text);

/// Maps scope specs to instance indices on a concrete machine.
class ScopeMap {
 public:
  explicit ScopeMap(const Machine& machine) : machine_(&machine) {}

  const Machine& machine() const { return *machine_; }

  /// Resolve a `cache` spec's level (0 -> llc); identity for other kinds.
  int resolved_cache_level(const ScopeSpec& s) const;

  /// Number of instances of this scope on the machine.
  int num_instances(const ScopeSpec& s) const;

  /// Instance a cpu belongs to.
  int instance_of(const ScopeSpec& s, int cpu) const;

  /// Number of cpus per instance (uniform).
  int cpus_per_instance(const ScopeSpec& s) const;

  /// All cpus in an instance, ascending.
  std::vector<int> cpus_of_instance(const ScopeSpec& s, int inst) const;

  /// True if `a` is at least as wide as `b` (shared by a superset of cpus).
  bool wider_or_equal(const ScopeSpec& a, const ScopeSpec& b) const;

  /// Widest of the two (used by `#pragma hls barrier(list)`).
  ScopeSpec widest(const ScopeSpec& a, const ScopeSpec& b) const;

 private:
  const Machine* machine_;
};

}  // namespace hlsmpc::topo
