#include "topo/scope_map.hpp"

#include <stdexcept>

namespace hlsmpc::topo {

ScopeSpec node_scope() { return {ScopeKind::node, 0}; }
ScopeSpec numa_scope() { return {ScopeKind::numa, 0}; }
ScopeSpec cache_scope(int level) { return {ScopeKind::cache, level}; }
ScopeSpec core_scope() { return {ScopeKind::core, 0}; }

std::string to_string(const ScopeSpec& s) {
  switch (s.kind) {
    case ScopeKind::node:
      return "node";
    case ScopeKind::numa:
      // level 2 = one copy per socket on machines with several NUMA
      // domains per socket (the directive's optional level clause).
      if (s.level >= 2) return "numa(2)";
      return "numa";
    case ScopeKind::core:
      return "core";
    case ScopeKind::cache:
      if (s.level == 0) return "cache(llc)";
      return "cache(" + std::to_string(s.level) + ")";
  }
  return "?";
}

ScopeSpec parse_scope(const std::string& text) {
  if (text == "node") return node_scope();
  if (text == "numa") return numa_scope();
  if (text == "numa(2)") return ScopeSpec{ScopeKind::numa, 2};
  if (text == "core") return core_scope();
  if (text == "cache" || text == "cache(llc)") return cache_scope(0);
  if (text.rfind("cache(", 0) == 0 && text.back() == ')') {
    const std::string inner = text.substr(6, text.size() - 7);
    try {
      std::size_t pos = 0;
      const int level = std::stoi(inner, &pos);
      if (pos == inner.size() && level >= 1) return cache_scope(level);
    } catch (const std::exception&) {
      // fall through to throw below
    }
  }
  throw std::invalid_argument("parse_scope: unrecognized scope '" + text + "'");
}

DenseScopeTable::DenseScopeTable(const Machine& machine)
    : ncpus_(machine.num_cpus()),
      ncache_(machine.num_cache_levels()),
      numa2_distinct_(machine.desc().numa_per_socket > 1),
      num_scopes_(4 + machine.num_cache_levels()) {
  num_instances_.resize(static_cast<std::size_t>(num_scopes_));
  cpus_per_instance_.resize(static_cast<std::size_t>(num_scopes_));
  cpu_to_inst_.resize(static_cast<std::size_t>(num_scopes_) *
                      static_cast<std::size_t>(ncpus_));
  ScopeMap sm(machine);
  auto fill = [&](int sid, const ScopeSpec& spec) {
    num_instances_[static_cast<std::size_t>(sid)] = sm.num_instances(spec);
    cpus_per_instance_[static_cast<std::size_t>(sid)] =
        sm.cpus_per_instance(spec);
    for (int cpu = 0; cpu < ncpus_; ++cpu) {
      cpu_to_inst_[static_cast<std::size_t>(sid) *
                       static_cast<std::size_t>(ncpus_) +
                   static_cast<std::size_t>(cpu)] = sm.instance_of(spec, cpu);
    }
  };
  fill(0, node_scope());
  fill(1, numa_scope());
  // Slot 2 is always materialized so ids stay dense; when each socket
  // holds one NUMA domain it duplicates slot 1 (and id() maps there).
  fill(2, ScopeSpec{ScopeKind::numa, numa2_distinct_ ? 2 : 0});
  for (int level = 1; level <= ncache_; ++level) {
    fill(2 + level, cache_scope(level));
  }
  fill(3 + ncache_, core_scope());
}

int DenseScopeTable::id(ScopeKind kind, int level) const {
  switch (kind) {
    case ScopeKind::node:
      return 0;
    case ScopeKind::numa:
      return (level >= 2 && numa2_distinct_) ? 2 : 1;
    case ScopeKind::cache:
      if (level < 1 || level > ncache_) {
        throw std::invalid_argument(
            "DenseScopeTable: unresolved or unknown cache level " +
            std::to_string(level));
      }
      return 2 + level;
    case ScopeKind::core:
      return 3 + ncache_;
  }
  throw std::logic_error("DenseScopeTable::id: bad kind");
}

std::string DenseScopeTable::name(int sid) const {
  if (sid == 0) return "node";
  if (sid == 1) return "numa";
  if (sid == 2) return "numa_socket";
  if (sid >= 3 && sid <= 2 + ncache_) {
    return "cache_L" + std::to_string(sid - 2);
  }
  if (sid == 3 + ncache_) return "core";
  return "sid" + std::to_string(sid);
}

std::vector<int> DenseScopeTable::widening_chain() const {
  std::vector<int> chain;
  chain.reserve(static_cast<std::size_t>(num_scopes_));
  chain.push_back(3 + ncache_);  // core
  for (int level = 1; level <= ncache_; ++level) chain.push_back(2 + level);
  chain.push_back(1);                        // numa
  if (numa2_distinct_) chain.push_back(2);   // per-socket, wider than numa
  chain.push_back(0);                        // node
  return chain;
}

int ScopeMap::resolved_cache_level(const ScopeSpec& s) const {
  if (s.kind != ScopeKind::cache) return 0;
  const int level = s.level == 0 ? machine_->llc_level() : s.level;
  if (level < 1 || level > machine_->num_cache_levels()) {
    throw std::invalid_argument("ScopeMap: cache level " +
                                std::to_string(s.level) +
                                " does not exist on " + machine_->name());
  }
  return level;
}

int ScopeMap::num_instances(const ScopeSpec& s) const {
  switch (s.kind) {
    case ScopeKind::node:
      return 1;
    case ScopeKind::numa:
      if (s.level >= 3) {
        throw std::invalid_argument("ScopeMap: numa level must be 1 or 2");
      }
      return s.level == 2 ? machine_->num_sockets() : machine_->num_numa();
    case ScopeKind::core:
      return machine_->num_cores();
    case ScopeKind::cache:
      return machine_->num_cache_instances(resolved_cache_level(s));
  }
  throw std::logic_error("ScopeMap::num_instances: bad kind");
}

int ScopeMap::instance_of(const ScopeSpec& s, int cpu) const {
  switch (s.kind) {
    case ScopeKind::node:
      if (cpu < 0 || cpu >= machine_->num_cpus()) {
        throw std::out_of_range("ScopeMap::instance_of: bad cpu");
      }
      return 0;
    case ScopeKind::numa:
      if (s.level >= 3) {
        throw std::invalid_argument("ScopeMap: numa level must be 1 or 2");
      }
      return s.level == 2 ? machine_->socket_of_cpu(cpu)
                          : machine_->numa_of_cpu(cpu);
    case ScopeKind::core:
      return machine_->core_of_cpu(cpu);
    case ScopeKind::cache:
      return machine_->cache_instance_of_cpu(resolved_cache_level(s), cpu);
  }
  throw std::logic_error("ScopeMap::instance_of: bad kind");
}

int ScopeMap::cpus_per_instance(const ScopeSpec& s) const {
  return machine_->num_cpus() / num_instances(s);
}

std::vector<int> ScopeMap::cpus_of_instance(const ScopeSpec& s, int inst) const {
  const int per = cpus_per_instance(s);
  if (inst < 0 || inst >= num_instances(s)) {
    throw std::out_of_range("ScopeMap::cpus_of_instance: bad instance");
  }
  std::vector<int> cpus(static_cast<std::size_t>(per));
  for (int i = 0; i < per; ++i) cpus[static_cast<std::size_t>(i)] = inst * per + i;
  return cpus;
}

bool ScopeMap::wider_or_equal(const ScopeSpec& a, const ScopeSpec& b) const {
  // Wider scope == fewer instances. All scopes partition cpus into
  // contiguous equal blocks, so block size is a total order.
  return cpus_per_instance(a) >= cpus_per_instance(b);
}

ScopeSpec ScopeMap::widest(const ScopeSpec& a, const ScopeSpec& b) const {
  return wider_or_equal(a, b) ? a : b;
}

}  // namespace hlsmpc::topo
