// Machine topology model.
//
// HLS scopes (node / numa / cache level(L) / core) are defined relative to
// the memory hierarchy of the executing node (paper §II.A, figure 1). This
// module describes that hierarchy: a node contains sockets, each socket one
// or more NUMA domains, each core a stack of caches, and each physical core
// one or more hardware threads (SMT). MPI tasks are pinned to hardware
// threads ("cpus" below), exactly as MPC pins tasks to cores by default.
//
// Cache instances at a given level are identified by an index; consecutive
// cpus share an instance according to the level's sharing degree. The same
// indexing is reused by the cache simulator, the HLS storage manager and
// the hierarchical barrier, so all three agree on who shares what.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace hlsmpc::topo {

/// Description of one cache level (uniform across the machine).
struct CacheLevelDesc {
  int level = 1;                 ///< 1 = closest to the core.
  std::size_t size_bytes = 0;    ///< Capacity of one instance.
  std::size_t line_bytes = 64;   ///< Cache-line size.
  int associativity = 8;         ///< Ways per set.
  int cpus_per_instance = 1;     ///< Sharing degree in hardware threads.
  int latency_cycles = 4;        ///< Hit latency.
};

/// Plain-old description of a node; validated by Machine's constructor.
struct MachineDesc {
  std::string name = "generic";
  int sockets = 1;
  int numa_per_socket = 1;
  int cores_per_numa = 1;
  int threads_per_core = 1;  ///< SMT width.
  std::vector<CacheLevelDesc> caches;  ///< Sorted by level, ascending.
  int memory_latency_cycles = 200;
  /// Peak lines/cycle one memory controller can sustain; used by the cache
  /// simulator's contention model.
  double memory_lines_per_cycle = 0.25;
};

/// Immutable, validated machine topology.
class Machine {
 public:
  explicit Machine(MachineDesc desc);

  /// 4-socket-capable Nehalem-EX node used in the paper's §V.A experiments:
  /// 8 cores per socket, 18 MB shared L3, 256 KB private L2, 32 KB L1.
  /// `capacity_divisor` scales all cache capacities down (working sets in
  /// the benchmarks are scaled by the same factor, preserving ratios).
  static Machine nehalem_ex(int sockets, int capacity_divisor = 1);

  /// 8-core node of the paper's §V.B cluster: 2× Intel Xeon E5462
  /// (Core2 quad-core, 2×6 MB L2 shared per pair of cores, no L3).
  static Machine core2_cluster_node(int capacity_divisor = 1);

  /// Minimal machine for unit tests.
  static Machine generic(int sockets, int cores_per_socket,
                         std::size_t llc_bytes = 1 << 20,
                         int threads_per_core = 1);

  const MachineDesc& desc() const { return desc_; }
  const std::string& name() const { return desc_.name; }

  int num_sockets() const { return desc_.sockets; }
  int num_numa() const { return desc_.sockets * desc_.numa_per_socket; }
  int num_cores() const { return num_numa() * desc_.cores_per_numa; }
  /// Total hardware threads; MPI tasks are pinned to these.
  int num_cpus() const { return num_cores() * desc_.threads_per_core; }
  int threads_per_core() const { return desc_.threads_per_core; }

  int core_of_cpu(int cpu) const;
  int numa_of_cpu(int cpu) const;
  int socket_of_cpu(int cpu) const;

  int num_cache_levels() const { return static_cast<int>(desc_.caches.size()); }
  /// Last level of cache ("llc" in the paper's directive syntax).
  int llc_level() const;
  const CacheLevelDesc& cache_level(int level) const;
  int num_cache_instances(int level) const;
  int cache_instance_of_cpu(int level, int cpu) const;
  /// All cpus sharing cache instance `inst` at `level`, in cpu order.
  std::vector<int> cpus_of_cache_instance(int level, int inst) const;

  std::vector<int> cpus_of_numa(int numa) const;
  std::vector<int> cpus_of_core(int core) const;

 private:
  MachineDesc desc_;
};

}  // namespace hlsmpc::topo
