#include "topo/topology.hpp"

#include <algorithm>

namespace hlsmpc::topo {

namespace {

void validate(const MachineDesc& d) {
  if (d.sockets < 1 || d.numa_per_socket < 1 || d.cores_per_numa < 1 ||
      d.threads_per_core < 1) {
    throw std::invalid_argument("Machine: all structural counts must be >= 1");
  }
  const int cpus =
      d.sockets * d.numa_per_socket * d.cores_per_numa * d.threads_per_core;
  int prev_level = 0;
  int prev_share = 0;
  for (const CacheLevelDesc& c : d.caches) {
    if (c.level != prev_level + 1) {
      throw std::invalid_argument("Machine: cache levels must be 1..N contiguous");
    }
    if (c.size_bytes == 0 || c.line_bytes == 0 || c.associativity < 1) {
      throw std::invalid_argument("Machine: degenerate cache level");
    }
    if ((c.line_bytes & (c.line_bytes - 1)) != 0) {
      throw std::invalid_argument("Machine: cache line size must be a power of two");
    }
    if (c.cpus_per_instance < 1 || cpus % c.cpus_per_instance != 0) {
      throw std::invalid_argument(
          "Machine: cache sharing degree must divide the cpu count");
    }
    if (c.cpus_per_instance < prev_share) {
      throw std::invalid_argument(
          "Machine: outer cache levels must be shared at least as widely");
    }
    prev_level = c.level;
    prev_share = c.cpus_per_instance;
  }
  if (d.caches.empty()) {
    throw std::invalid_argument("Machine: at least one cache level required");
  }
}

std::size_t scaled(std::size_t bytes, int divisor) {
  return std::max<std::size_t>(bytes / static_cast<std::size_t>(divisor), 4096);
}

}  // namespace

Machine::Machine(MachineDesc desc) : desc_(std::move(desc)) { validate(desc_); }

Machine Machine::nehalem_ex(int sockets, int capacity_divisor) {
  MachineDesc d;
  d.name = "nehalem-ex-" + std::to_string(sockets) + "s";
  d.sockets = sockets;
  d.numa_per_socket = 1;  // one NUMA node per socket on Nehalem-EX
  d.cores_per_numa = 8;
  d.threads_per_core = 1;  // paper runs one MPI task per core, SMT off
  d.caches = {
      {.level = 1,
       .size_bytes = scaled(32u << 10, capacity_divisor),
       .line_bytes = 64,
       .associativity = 8,
       .cpus_per_instance = 1,
       .latency_cycles = 4},
      {.level = 2,
       .size_bytes = scaled(256u << 10, capacity_divisor),
       .line_bytes = 64,
       .associativity = 8,
       .cpus_per_instance = 1,
       .latency_cycles = 10},
      {.level = 3,
       .size_bytes = scaled(18u << 20, capacity_divisor),
       .line_bytes = 64,
       .associativity = 16,
       .cpus_per_instance = 8,  // shared by the whole socket
       .latency_cycles = 40},
  };
  d.memory_latency_cycles = 200;
  // One line every 50 cycles: 8 cores of serialized misses (one per ~250
  // cycles each) oversubscribe the channel ~1.6x, which is what caps the
  // paper's no-HLS efficiency around 40 % on the random-table workloads.
  d.memory_lines_per_cycle = 0.02;
  return Machine(d);
}

Machine Machine::core2_cluster_node(int capacity_divisor) {
  // Intel Xeon E5462 (Harpertown/Core2): 4 cores per socket, two 6 MB L2
  // caches per socket, each shared by a pair of cores; no L3.
  MachineDesc d;
  d.name = "core2-2s4c";
  d.sockets = 2;
  d.numa_per_socket = 1;
  d.cores_per_numa = 4;
  d.threads_per_core = 1;
  d.caches = {
      {.level = 1,
       .size_bytes = scaled(32u << 10, capacity_divisor),
       .line_bytes = 64,
       .associativity = 8,
       .cpus_per_instance = 1,
       .latency_cycles = 3},
      {.level = 2,
       .size_bytes = scaled(6u << 20, capacity_divisor),
       .line_bytes = 64,
       .associativity = 24,
       .cpus_per_instance = 2,  // pair-shared
       .latency_cycles = 15},
  };
  d.memory_latency_cycles = 220;
  d.memory_lines_per_cycle = 0.03;
  return Machine(d);
}

Machine Machine::generic(int sockets, int cores_per_socket,
                         std::size_t llc_bytes, int threads_per_core) {
  MachineDesc d;
  d.name = "generic";
  d.sockets = sockets;
  d.numa_per_socket = 1;
  d.cores_per_numa = cores_per_socket;
  d.threads_per_core = threads_per_core;
  const int cpus_per_socket = cores_per_socket * threads_per_core;
  d.caches = {
      {.level = 1,
       .size_bytes = 32u << 10,
       .line_bytes = 64,
       .associativity = 8,
       .cpus_per_instance = threads_per_core,
       .latency_cycles = 4},
      {.level = 2,
       .size_bytes = llc_bytes,
       .line_bytes = 64,
       .associativity = 16,
       .cpus_per_instance = cpus_per_socket,
       .latency_cycles = 30},
  };
  return Machine(d);
}

int Machine::core_of_cpu(int cpu) const {
  if (cpu < 0 || cpu >= num_cpus()) {
    throw std::out_of_range("core_of_cpu: bad cpu index");
  }
  return cpu / desc_.threads_per_core;
}

int Machine::numa_of_cpu(int cpu) const {
  return core_of_cpu(cpu) / desc_.cores_per_numa;
}

int Machine::socket_of_cpu(int cpu) const {
  return numa_of_cpu(cpu) / desc_.numa_per_socket;
}

int Machine::llc_level() const {
  return static_cast<int>(desc_.caches.size());
}

const CacheLevelDesc& Machine::cache_level(int level) const {
  if (level < 1 || level > num_cache_levels()) {
    throw std::out_of_range("cache_level: no such level");
  }
  return desc_.caches[static_cast<std::size_t>(level - 1)];
}

int Machine::num_cache_instances(int level) const {
  return num_cpus() / cache_level(level).cpus_per_instance;
}

int Machine::cache_instance_of_cpu(int level, int cpu) const {
  if (cpu < 0 || cpu >= num_cpus()) {
    throw std::out_of_range("cache_instance_of_cpu: bad cpu index");
  }
  return cpu / cache_level(level).cpus_per_instance;
}

std::vector<int> Machine::cpus_of_cache_instance(int level, int inst) const {
  const int share = cache_level(level).cpus_per_instance;
  if (inst < 0 || inst >= num_cache_instances(level)) {
    throw std::out_of_range("cpus_of_cache_instance: bad instance");
  }
  std::vector<int> cpus(static_cast<std::size_t>(share));
  for (int i = 0; i < share; ++i) cpus[static_cast<std::size_t>(i)] = inst * share + i;
  return cpus;
}

std::vector<int> Machine::cpus_of_numa(int numa) const {
  if (numa < 0 || numa >= num_numa()) {
    throw std::out_of_range("cpus_of_numa: bad numa index");
  }
  const int per = desc_.cores_per_numa * desc_.threads_per_core;
  std::vector<int> cpus(static_cast<std::size_t>(per));
  for (int i = 0; i < per; ++i) cpus[static_cast<std::size_t>(i)] = numa * per + i;
  return cpus;
}

std::vector<int> Machine::cpus_of_core(int core) const {
  if (core < 0 || core >= num_cores()) {
    throw std::out_of_range("cpus_of_core: bad core index");
  }
  std::vector<int> cpus(static_cast<std::size_t>(desc_.threads_per_core));
  for (int i = 0; i < desc_.threads_per_core; ++i) {
    cpus[static_cast<std::size_t>(i)] = core * desc_.threads_per_core + i;
  }
  return cpus;
}

}  // namespace hlsmpc::topo
