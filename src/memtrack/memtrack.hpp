// Byte-exact memory accounting.
//
// The paper measures "memory consumption of the application plus the MPI
// runtime ... every 0.1 s on each node" and reports the time-average and
// max over nodes (§V.B). We reproduce the measurement with an instrumented
// allocator instead of an external probe: every allocation made through a
// Tracker is tagged with the owning rank and a category, so per-node
// consumption is exact and deterministic. A Sampler plays the role of the
// periodic probe and produces the avg/max statistics of the tables.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hlsmpc::memtrack {

/// Where an allocation is charged in the tables' breakdown.
enum class Category {
  app,              ///< Application data private to a rank.
  hls_shared,       ///< HLS storage (one copy per scope instance).
  runtime_buffers,  ///< MPI runtime communication buffers.
  runtime_other,    ///< Runtime metadata (queues, stacks, descriptors).
};

constexpr int kNumCategories = 4;

const char* to_string(Category c);

struct Snapshot {
  std::size_t current_by_category[kNumCategories] = {};
  std::size_t current_total = 0;
  std::size_t peak_total = 0;
};

/// Thread-safe allocation ledger for one simulated node.
class Tracker {
 public:
  Tracker() = default;
  Tracker(const Tracker&) = delete;
  Tracker& operator=(const Tracker&) = delete;

  void on_alloc(Category c, std::size_t bytes);
  void on_free(Category c, std::size_t bytes);

  std::size_t current(Category c) const;
  std::size_t current_total() const;
  std::size_t peak_total() const;
  Snapshot snapshot() const;

 private:
  std::atomic<std::size_t> by_category_[kNumCategories] = {};
  std::atomic<std::size_t> total_{0};
  std::atomic<std::size_t> peak_{0};
};

/// RAII buffer charged to a tracker. Move-only.
class Buffer {
 public:
  Buffer() = default;
  Buffer(Tracker& t, Category c, std::size_t bytes);
  Buffer(Buffer&& other) noexcept;
  Buffer& operator=(Buffer&& other) noexcept;
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;
  ~Buffer();

  std::byte* data() { return data_.get(); }
  const std::byte* data() const { return data_.get(); }
  std::size_t size() const { return size_; }
  explicit operator bool() const { return data_ != nullptr; }

  template <typename T>
  T* as() {
    return reinterpret_cast<T*>(data_.get());
  }

  void reset();

 private:
  std::unique_ptr<std::byte[]> data_;
  std::size_t size_ = 0;
  Tracker* tracker_ = nullptr;
  Category category_ = Category::app;
};

/// Periodic-probe stand-in: call sample() at the points the paper's probe
/// would fire (e.g. once per timestep); report() gives avg/max like the
/// tables. All sizes in bytes; helpers convert to MB (2^20) for display.
class Sampler {
 public:
  explicit Sampler(const Tracker& t) : tracker_(&t) {}

  void sample();
  std::size_t num_samples() const { return samples_.size(); }
  double avg_bytes() const;
  std::size_t max_bytes() const;
  double avg_mb() const { return avg_bytes() / (1024.0 * 1024.0); }
  double max_mb() const { return static_cast<double>(max_bytes()) / (1024.0 * 1024.0); }

 private:
  const Tracker* tracker_;
  std::vector<std::size_t> samples_;
};

}  // namespace hlsmpc::memtrack
