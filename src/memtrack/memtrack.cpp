#include "memtrack/memtrack.hpp"

#include <algorithm>
#include <stdexcept>

namespace hlsmpc::memtrack {

const char* to_string(Category c) {
  switch (c) {
    case Category::app:
      return "app";
    case Category::hls_shared:
      return "hls_shared";
    case Category::runtime_buffers:
      return "runtime_buffers";
    case Category::runtime_other:
      return "runtime_other";
  }
  return "?";
}

void Tracker::on_alloc(Category c, std::size_t bytes) {
  by_category_[static_cast<int>(c)].fetch_add(bytes, std::memory_order_relaxed);
  const std::size_t now =
      total_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  // Lock-free peak update.
  std::size_t prev = peak_.load(std::memory_order_relaxed);
  while (prev < now &&
         !peak_.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
  }
}

void Tracker::on_free(Category c, std::size_t bytes) {
  const std::size_t cat_before = by_category_[static_cast<int>(c)].fetch_sub(
      bytes, std::memory_order_relaxed);
  const std::size_t tot_before =
      total_.fetch_sub(bytes, std::memory_order_relaxed);
  if (cat_before < bytes || tot_before < bytes) {
    throw std::logic_error("Tracker::on_free: freeing more than allocated");
  }
}

std::size_t Tracker::current(Category c) const {
  return by_category_[static_cast<int>(c)].load(std::memory_order_relaxed);
}

std::size_t Tracker::current_total() const {
  return total_.load(std::memory_order_relaxed);
}

std::size_t Tracker::peak_total() const {
  return peak_.load(std::memory_order_relaxed);
}

Snapshot Tracker::snapshot() const {
  Snapshot s;
  for (int i = 0; i < kNumCategories; ++i) {
    s.current_by_category[i] = by_category_[i].load(std::memory_order_relaxed);
  }
  s.current_total = current_total();
  s.peak_total = peak_total();
  return s;
}

Buffer::Buffer(Tracker& t, Category c, std::size_t bytes)
    : data_(new std::byte[bytes]()), size_(bytes), tracker_(&t), category_(c) {
  tracker_->on_alloc(category_, size_);
}

Buffer::Buffer(Buffer&& other) noexcept
    : data_(std::move(other.data_)),
      size_(other.size_),
      tracker_(other.tracker_),
      category_(other.category_) {
  other.size_ = 0;
  other.tracker_ = nullptr;
}

Buffer& Buffer::operator=(Buffer&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = std::move(other.data_);
    size_ = other.size_;
    tracker_ = other.tracker_;
    category_ = other.category_;
    other.size_ = 0;
    other.tracker_ = nullptr;
  }
  return *this;
}

Buffer::~Buffer() { reset(); }

void Buffer::reset() {
  if (tracker_ != nullptr && size_ > 0) {
    tracker_->on_free(category_, size_);
  }
  data_.reset();
  size_ = 0;
  tracker_ = nullptr;
}

void Sampler::sample() { samples_.push_back(tracker_->current_total()); }

double Sampler::avg_bytes() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t s : samples_) sum += static_cast<double>(s);
  return sum / static_cast<double>(samples_.size());
}

std::size_t Sampler::max_bytes() const {
  if (samples_.empty()) return 0;
  return *std::max_element(samples_.begin(), samples_.end());
}

}  // namespace hlsmpc::memtrack
