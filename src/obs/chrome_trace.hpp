// Chrome trace_event export: turns a drained event stream into a JSON
// file loadable by Perfetto (https://ui.perfetto.dev) or chrome://tracing.
//
// Mapping: one process ("hlsmpc"), one named track (tid) per MPI task;
// duration events (barrier episodes, single blocks, migrations, first
// touches, collectives) become complete ("X") slices named by kind and
// scope instance ("barrier node#0"), instant events (nowait, p2p) become
// thread-scoped instants. Timestamps are the recorder's nanosecond axis
// expressed in microseconds, as the format requires.
#pragma once

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "obs/event.hpp"

namespace hlsmpc::obs {

struct TraceNaming {
  /// Maps a dense scope id to a name ("node", "cache L3", ...). Unset or
  /// returning "" falls back to "sid<N>".
  std::function<std::string(int sid)> scope_name;
  std::string process_name = "hlsmpc";
};

void write_chrome_trace(std::ostream& os, const std::vector<Event>& events,
                        const TraceNaming& naming = {});

std::string chrome_trace_json(const std::vector<Event>& events,
                              const TraceNaming& naming = {});

}  // namespace hlsmpc::obs
