#include "obs/recorder.hpp"

#include <algorithm>
#include <stdexcept>

namespace hlsmpc::obs {

const char* to_string(Counter c) {
  switch (c) {
    case Counter::get_addr_warm:
      return "get_addr_warm";
    case Counter::get_addr_cold:
      return "get_addr_cold";
    case Counter::first_touches:
      return "first_touches";
    case Counter::barrier_entries:
      return "barrier_entries";
    case Counter::single_wins:
      return "single_wins";
    case Counter::single_losses:
      return "single_losses";
    case Counter::nowait_claims:
      return "nowait_claims";
    case Counter::nowait_skips:
      return "nowait_skips";
    case Counter::migrations_ok:
      return "migrations_ok";
    case Counter::migrations_rejected:
      return "migrations_rejected";
    case Counter::ctx_switches:
      return "ctx_switches";
    case Counter::coll_ops:
      return "coll_ops";
    case Counter::p2p_sends:
      return "p2p_sends";
    case Counter::p2p_recvs:
      return "p2p_recvs";
    case Counter::coll_shm_ops:
      return "coll_shm_ops";
    case Counter::coll_shm_pipelined_ops:
      return "coll_shm_pipelined_ops";
    case Counter::rma_puts:
      return "rma_puts";
    case Counter::rma_gets:
      return "rma_gets";
    case Counter::rma_accs:
      return "rma_accs";
    case Counter::rma_bytes:
      return "rma_bytes";
    case Counter::rma_fences:
      return "rma_fences";
    case Counter::rma_locks:
      return "rma_locks";
    case Counter::net_sends:
      return "net_sends";
    case Counter::net_recvs:
      return "net_recvs";
    case Counter::net_retries:
      return "net_retries";
    case Counter::recoveries:
      return "recoveries";
    case Counter::ckpt_bytes:
      return "ckpt_bytes";
    case Counter::kCount:
      break;
  }
  return "?";
}

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::barrier:
      return "barrier";
    case EventKind::single_exec:
      return "single_exec";
    case EventKind::single_wait:
      return "single_wait";
    case EventKind::nowait:
      return "nowait";
    case EventKind::migration:
      return "migration";
    case EventKind::first_touch:
      return "first_touch";
    case EventKind::collective:
      return "collective";
    case EventKind::p2p_send:
      return "p2p_send";
    case EventKind::p2p_recv:
      return "p2p_recv";
    case EventKind::ctx_switch:
      return "ctx_switch";
    case EventKind::watchdog:
      return "watchdog";
    case EventKind::rma_op:
      return "rma_op";
    case EventKind::rma_epoch:
      return "rma_epoch";
    case EventKind::recovery:
      return "recovery";
  }
  return "?";
}

const char* to_string(RmaOp op) {
  switch (op) {
    case RmaOp::put:
      return "put";
    case RmaOp::get:
      return "get";
    case RmaOp::accumulate:
      return "accumulate";
  }
  return "?";
}

const char* to_string(CollOp op) {
  switch (op) {
    case CollOp::barrier:
      return "barrier";
    case CollOp::bcast:
      return "bcast";
    case CollOp::reduce:
      return "reduce";
    case CollOp::allreduce:
      return "allreduce";
    case CollOp::gather:
      return "gather";
    case CollOp::gatherv:
      return "gatherv";
    case CollOp::scatter:
      return "scatter";
    case CollOp::allgather:
      return "allgather";
    case CollOp::alltoall:
      return "alltoall";
    case CollOp::scan:
      return "scan";
    case CollOp::exscan:
      return "exscan";
    case CollOp::reduce_scatter:
      return "reduce_scatter";
  }
  return "?";
}

const char* to_string(CollAlg alg) {
  switch (alg) {
    case CollAlg::p2p:
      return "p2p";
    case CollAlg::shm_flat:
      return "shm_flat";
    case CollAlg::shm_hier:
      return "shm_hier";
    case CollAlg::shm_pipelined:
      return "shm_pipelined";
  }
  return "?";
}

Recorder::Recorder(RecorderOptions opts)
    : epoch_(std::chrono::steady_clock::now()),
      num_scopes_(std::max(opts.num_scopes, 0)),
      ring_capacity_(opts.ring_capacity),
      blocks_(static_cast<std::size_t>(std::max(opts.ntasks, 1))) {
  for (TaskBlock& b : blocks_) {
    if (num_scopes_ > 0) {
      b.scope_bytes =
          std::vector<std::atomic<std::uint64_t>>(
              static_cast<std::size_t>(num_scopes_));
      b.scope_touches =
          std::vector<std::atomic<std::uint64_t>>(
              static_cast<std::size_t>(num_scopes_));
    }
    b.ring.resize(ring_capacity_);
  }
}

void Recorder::count_scope_bytes(int task, int sid, std::uint64_t bytes) {
  if (static_cast<unsigned>(task) >= blocks_.size()) return;
  TaskBlock& b = blocks_[static_cast<std::size_t>(task)];
  if (sid < 0 || sid >= num_scopes_) return;
  auto bump = [](std::atomic<std::uint64_t>& c, std::uint64_t n) {
    c.store(c.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
  };
  bump(b.scope_bytes[static_cast<std::size_t>(sid)], bytes);
  bump(b.scope_touches[static_cast<std::size_t>(sid)], 1);
}

void Recorder::record(const Event& e) {
  if (static_cast<unsigned>(e.task) < blocks_.size() && ring_capacity_ > 0) {
    TaskBlock& b = blocks_[static_cast<std::size_t>(e.task)];
    const std::uint64_t n = b.pushed.load(std::memory_order_relaxed);
    b.ring[static_cast<std::size_t>(n % ring_capacity_)] = e;
    // Publish after the slot write so a quiescent reader that acquires
    // `pushed` sees the full entry.
    b.pushed.store(n + 1, std::memory_order_release);
  }
  for (Sink* s : sinks_) s->on_event(e);
}

void Recorder::chain(Sink* s) {
  if (s == nullptr || s == this) return;
  sinks_.push_back(s);
}

Snapshot Recorder::snapshot() const {
  Snapshot s;
  s.tasks.resize(blocks_.size());
  s.total.scope_bytes.assign(static_cast<std::size_t>(num_scopes_), 0);
  s.total.scope_touches.assign(static_cast<std::size_t>(num_scopes_), 0);
  for (std::size_t t = 0; t < blocks_.size(); ++t) {
    const TaskBlock& b = blocks_[t];
    Snapshot::TaskCounters& out = s.tasks[t];
    out.scope_bytes.assign(static_cast<std::size_t>(num_scopes_), 0);
    out.scope_touches.assign(static_cast<std::size_t>(num_scopes_), 0);
    for (int c = 0; c < kNumCounters; ++c) {
      const std::uint64_t v =
          b.counters[static_cast<std::size_t>(c)].load(
              std::memory_order_relaxed);
      out.c[static_cast<std::size_t>(c)] = v;
      s.total.c[static_cast<std::size_t>(c)] += v;
    }
    for (int sc = 0; sc < num_scopes_; ++sc) {
      const std::size_t i = static_cast<std::size_t>(sc);
      out.scope_bytes[i] = b.scope_bytes[i].load(std::memory_order_relaxed);
      out.scope_touches[i] =
          b.scope_touches[i].load(std::memory_order_relaxed);
      s.total.scope_bytes[i] += out.scope_bytes[i];
      s.total.scope_touches[i] += out.scope_touches[i];
    }
  }
  return s;
}

std::vector<Event> Recorder::events() const {
  std::vector<Event> out;
  for (const TaskBlock& b : blocks_) {
    const std::uint64_t pushed = b.pushed.load(std::memory_order_acquire);
    if (ring_capacity_ == 0 || pushed == 0) continue;
    const std::uint64_t kept =
        std::min<std::uint64_t>(pushed, ring_capacity_);
    const std::uint64_t first = pushed - kept;
    for (std::uint64_t i = first; i < pushed; ++i) {
      out.push_back(b.ring[static_cast<std::size_t>(i % ring_capacity_)]);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Event& a, const Event& b) { return a.t0 < b.t0; });
  return out;
}

std::uint64_t Recorder::events_recorded(int task) const {
  if (static_cast<unsigned>(task) >= blocks_.size()) return 0;
  return blocks_[static_cast<std::size_t>(task)].pushed.load(
      std::memory_order_acquire);
}

std::uint64_t Recorder::dropped(int task) const {
  const std::uint64_t pushed = events_recorded(task);
  return pushed > ring_capacity_ ? pushed - ring_capacity_ : 0;
}

}  // namespace hlsmpc::obs
