// Aggregated view of a Recorder's counters at one instant.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/event.hpp"

namespace hlsmpc::obs {

/// Counter totals, per task and aggregated. Produced lock-free by
/// Recorder::snapshot(); safe to take while tasks are running (values are
/// per-counter monotonic, the cross-counter view is only approximately
/// instantaneous).
struct Snapshot {
  struct TaskCounters {
    std::array<std::uint64_t, kNumCounters> c{};
    /// Bytes of storage this task materialized on first touch, per dense
    /// scope id (empty when the recorder was built without scope info).
    std::vector<std::uint64_t> scope_bytes;
    /// First touches per dense scope id.
    std::vector<std::uint64_t> scope_touches;

    std::uint64_t value(Counter ctr) const {
      return c[static_cast<std::size_t>(ctr)];
    }
  };

  std::vector<TaskCounters> tasks;
  TaskCounters total;  ///< element-wise sum over `tasks`

  std::uint64_t value(Counter ctr) const { return total.value(ctr); }
};

/// JSON text dump of a snapshot: {"total": {...}, "tasks": [{...}, ...]}.
/// `scope_names[sid]`, when given, labels the per-scope byte columns
/// (falls back to "sid<N>").
std::string to_json(const Snapshot& s,
                    const std::vector<std::string>& scope_names = {});

}  // namespace hlsmpc::obs
