// Runtime observability: the event and counter vocabulary.
//
// One event stream describes everything the runtime does that is worth
// seeing from outside: synchronization episodes with their latencies
// (barrier enter->release, single block duration, migration stalls),
// storage first touches with the bytes they materialized, MPI traffic and
// collectives, and scheduler context switches. Consumers implement Sink;
// the Recorder (recorder.hpp) is the standard sink that turns the stream
// into per-task counters and bounded ring buffers, and further sinks can
// be chained behind it (the happens-before tracer in src/hb/ is one).
//
// The whole layer sits behind the compile-time switch HLSMPC_OBS (CMake
// option; macro HLSMPC_OBS_ENABLED). When the switch is off the types
// still exist — exporters and offline tools keep compiling — but every
// instrumentation site in the runtime is compiled out, so the hot-path
// numbers of a stripped build are bit-identical to a pre-observability
// build (verified by a symbol check on the hls archive, see tests/).
#pragma once

#include <array>
#include <cstdint>

#ifndef HLSMPC_OBS_ENABLED
#define HLSMPC_OBS_ENABLED 1
#endif

namespace hlsmpc::obs {

/// Monotonically counted runtime facts. Per-task blocks of these are
/// bumped with relaxed single-writer increments (a plain add on x86) so a
/// counter on the warm get_addr path costs ~1 cycle.
enum class Counter : int {
  get_addr_warm,        ///< get_addr served from the per-task address cache
  get_addr_cold,        ///< get_addr that resolved through StorageManager
  first_touches,        ///< module regions this task materialized
  barrier_entries,      ///< barrier directives entered
  single_wins,          ///< single directives where this task ran the block
  single_losses,        ///< single directives where another task ran it
  nowait_claims,        ///< single-nowait sites claimed
  nowait_skips,         ///< single-nowait sites skipped
  migrations_ok,        ///< MPC_Move accepted
  migrations_rejected,  ///< MPC_Move refused by the counter check
  ctx_switches,         ///< fiber resumes on a scheduler worker
  coll_ops,             ///< MPI collective operations entered
  p2p_sends,            ///< point-to-point sends initiated
  p2p_recvs,            ///< point-to-point receives completed
  coll_shm_ops,         ///< collectives served by the shared-memory engine
  coll_shm_pipelined_ops,  ///< shm collectives served by the fragmented
                           ///< pipelined large-message path
  rma_puts,             ///< one-sided puts performed
  rma_gets,             ///< one-sided gets performed
  rma_accs,             ///< one-sided accumulates applied
  rma_bytes,            ///< bytes moved by one-sided ops (put + get + acc)
  rma_fences,           ///< RMA fence epochs completed
  rma_locks,            ///< passive-target RMA locks acquired
  net_sends,            ///< inter-node (fabric/socket) sends initiated
  net_recvs,            ///< inter-node (fabric/socket) receives completed
  net_retries,          ///< inter-node ops re-issued after transient failure
  recoveries,           ///< recovery episodes completed (shrink agreements)
  ckpt_bytes,           ///< bytes written to / read from scope checkpoints
  kCount
};

inline constexpr int kNumCounters = static_cast<int>(Counter::kCount);

const char* to_string(Counter c);

/// What an Event describes. Kinds with a duration span [t0, t1]; instant
/// kinds carry t0 == t1.
enum class EventKind : std::uint8_t {
  barrier,      ///< one barrier episode: enter -> release
  single_exec,  ///< elected executor: enter -> single_done
  single_wait,  ///< non-executor: enter -> release
  nowait,       ///< single-nowait site (instant; flag = claimed)
  migration,    ///< MPC_Move stall: enter -> re-pin (flag = accepted)
  first_touch,  ///< lazy region materialization (arg = bytes)
  collective,   ///< one MPI collective call (arg = CollOp | CollAlg << 8)
  p2p_send,     ///< send initiated (arg = peer task, arg2 = ctx<<32|tag)
  p2p_recv,     ///< receive completed (arg = peer task, arg2 = ctx<<32|tag)
  ctx_switch,   ///< fiber resumed on a worker (arg = worker)
  watchdog,     ///< sync watchdog fired: a barrier/single/RMA epoch stuck
                ///< past the deadline (instant; arg = ms waited, arg2 =
                ///< missing-task bitmask for tasks 0..63)
  rma_op,       ///< one one-sided op: put/get/accumulate (instance =
                ///< window id, arg = RmaOp, arg2 = bytes)
  rma_epoch,    ///< one RMA epoch episode: fence enter -> exit (arg = 0)
                ///< or lock -> unlock (arg = 1 shared / 2 exclusive,
                ///< arg2 = target rank); instance = window id
  recovery,     ///< one recovery episode: NodeDeadError -> shrink agreement
                ///< installed (arg = agreed dead-node bitmask, arg2 =
                ///< agreement attempts used)
};

const char* to_string(EventKind k);

/// One-sided op id carried in Event::arg for EventKind::rma_op.
enum class RmaOp : std::int8_t { put, get, accumulate };

const char* to_string(RmaOp op);

/// Collective operation id carried in Event::arg for EventKind::collective.
enum class CollOp : std::int8_t {
  barrier, bcast, reduce, allreduce, gather, gatherv, scatter, allgather,
  alltoall, scan, exscan, reduce_scatter,
};

const char* to_string(CollOp op);

/// Algorithm the collective dispatcher chose for one call, carried in the
/// second byte of Event::arg for EventKind::collective (the low byte is
/// the CollOp). p2p = mailbox message passing (binomial/dissemination
/// trees); shm_flat = staged copies through the per-comm shared control
/// block with a flat completion barrier; shm_hier = zero-copy reads from
/// published user buffers with the topology-aware hierarchical barrier;
/// shm_pipelined = shm_hier plus data-wise fragmentation — payloads above
/// the pipeline threshold move as cache-friendly fragments with
/// per-fragment release-publish sequence numbers, so tree levels overlap.
enum class CollAlg : std::int8_t { p2p, shm_flat, shm_hier, shm_pipelined };

const char* to_string(CollAlg alg);

inline constexpr std::int64_t coll_event_arg(CollOp op, CollAlg alg) {
  return static_cast<std::int64_t>(op) |
         (static_cast<std::int64_t>(alg) << 8);
}
inline constexpr CollOp coll_op_of(std::int64_t arg) {
  return static_cast<CollOp>(arg & 0xff);
}
inline constexpr CollAlg coll_alg_of(std::int64_t arg) {
  return static_cast<CollAlg>((arg >> 8) & 0xff);
}

/// One observable runtime step. 48 bytes; rings of these are per-task.
struct Event {
  EventKind kind = EventKind::barrier;
  bool flag = false;        ///< nowait: claimed; migration: accepted
  std::int16_t sid = -1;    ///< dense scope id (topo::DenseScopeTable), -1 n/a
  int task = -1;
  int cpu = -1;
  int instance = -1;        ///< scope instance index, -1 when not scoped
  std::uint64_t t0 = 0;     ///< ns since the recorder's epoch
  std::uint64_t t1 = 0;     ///< == t0 for instant events
  std::int64_t arg = 0;     ///< kind-specific payload (bytes, peer, op...)
  std::int64_t arg2 = 0;    ///< secondary payload (p2p: context<<32 | tag)

  std::uint64_t duration_ns() const { return t1 - t0; }
};

/// Receives every recorded event. May be called concurrently from all
/// tasks; implementations synchronize internally. Install sinks before
/// tasks start and keep them alive until the tasks joined.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void on_event(const Event& e) = 0;
};

}  // namespace hlsmpc::obs
