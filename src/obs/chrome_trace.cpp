#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>

namespace hlsmpc::obs {

namespace {

std::string scope_tag(const TraceNaming& naming, const Event& e) {
  if (e.sid < 0) return "";
  std::string name;
  if (naming.scope_name) name = naming.scope_name(e.sid);
  if (name.empty()) name = "sid" + std::to_string(e.sid);
  if (e.instance >= 0) name += "#" + std::to_string(e.instance);
  return name;
}

/// Microsecond timestamp with nanosecond resolution kept in the decimals.
std::string us(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03u",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned>(ns % 1000));
  return buf;
}

const char* category(EventKind k) {
  switch (k) {
    case EventKind::barrier:
    case EventKind::single_exec:
    case EventKind::single_wait:
    case EventKind::nowait:
      return "sync";
    case EventKind::migration:
    case EventKind::ctx_switch:
      return "sched";
    case EventKind::first_touch:
      return "storage";
    case EventKind::collective:
    case EventKind::p2p_send:
    case EventKind::p2p_recv:
      return "mpi";
    case EventKind::watchdog:
      return "fault";
    case EventKind::rma_op:
    case EventKind::rma_epoch:
      return "rma";
  }
  return "?";
}

std::string slice_name(const TraceNaming& naming, const Event& e) {
  std::string name = to_string(e.kind);
  switch (e.kind) {
    case EventKind::nowait:
      name += e.flag ? " claim" : " skip";
      break;
    case EventKind::migration:
      name += e.flag ? " ok" : " rejected";
      break;
    case EventKind::collective:
      name = std::string("coll ") + to_string(coll_op_of(e.arg));
      break;
    case EventKind::p2p_send:
      name += " -> " + std::to_string(e.arg);
      break;
    case EventKind::p2p_recv:
      name += " <- " + std::to_string(e.arg);
      break;
    case EventKind::rma_op:
      name = std::string("rma ") +
             to_string(static_cast<RmaOp>(e.arg));
      break;
    case EventKind::rma_epoch:
      name = e.arg == 0 ? "rma fence"
                        : (e.arg == 1 ? "rma lock shared" : "rma lock excl");
      break;
    default:
      break;
  }
  const std::string tag = scope_tag(naming, e);
  if (!tag.empty()) name += " " + tag;
  return name;
}

void emit_args(std::ostringstream& os, const Event& e) {
  os << "{\"cpu\": " << e.cpu;
  if (e.instance >= 0) os << ", \"instance\": " << e.instance;
  switch (e.kind) {
    case EventKind::first_touch:
      os << ", \"bytes\": " << e.arg;
      break;
    case EventKind::collective:
      if (e.arg2 > 0) os << ", \"bytes\": " << e.arg2;
      os << ", \"alg\": \"" << to_string(coll_alg_of(e.arg)) << "\"";
      break;
    case EventKind::migration:
      os << ", \"new_cpu\": " << e.arg;
      break;
    case EventKind::p2p_send:
    case EventKind::p2p_recv:
      os << ", \"peer\": " << e.arg << ", \"context\": " << (e.arg2 >> 32)
         << ", \"tag\": " << (e.arg2 & 0xffffffff);
      break;
    case EventKind::ctx_switch:
      os << ", \"worker\": " << e.arg;
      break;
    case EventKind::watchdog:
      os << ", \"waited_ms\": " << e.arg << ", \"missing_mask\": " << e.arg2;
      break;
    case EventKind::rma_op:
      os << ", \"bytes\": " << e.arg2;
      break;
    case EventKind::rma_epoch:
      if (e.arg != 0) os << ", \"target\": " << e.arg2;
      break;
    default:
      break;
  }
  os << "}";
}

}  // namespace

void write_chrome_trace(std::ostream& os, const std::vector<Event>& events,
                        const TraceNaming& naming) {
  os << "{\n\"displayTimeUnit\": \"ns\",\n\"traceEvents\": [\n";
  os << "{\"ph\": \"M\", \"pid\": 0, \"name\": \"process_name\", "
        "\"args\": {\"name\": \"" << naming.process_name << "\"}}";
  std::set<int> tasks;
  for (const Event& e : events) {
    if (e.task >= 0) tasks.insert(e.task);
  }
  for (int t : tasks) {
    os << ",\n{\"ph\": \"M\", \"pid\": 0, \"tid\": " << t
       << ", \"name\": \"thread_name\", \"args\": {\"name\": \"task " << t
       << "\"}}";
    // Keep Perfetto's track order aligned with task ids.
    os << ",\n{\"ph\": \"M\", \"pid\": 0, \"tid\": " << t
       << ", \"name\": \"thread_sort_index\", \"args\": {\"sort_index\": "
       << t << "}}";
  }
  for (const Event& e : events) {
    if (e.task < 0) continue;
    std::ostringstream args;
    emit_args(args, e);
    const bool instant = e.t1 <= e.t0;
    os << ",\n{\"ph\": \"" << (instant ? "i" : "X") << "\", \"pid\": 0, "
       << "\"tid\": " << e.task << ", \"ts\": " << us(e.t0);
    if (!instant) os << ", \"dur\": " << us(e.t1 - e.t0);
    if (instant) os << ", \"s\": \"t\"";
    os << ", \"cat\": \"" << category(e.kind) << "\", \"name\": \""
       << slice_name(naming, e) << "\", \"args\": " << args.str() << "}";
  }
  os << "\n]\n}\n";
}

std::string chrome_trace_json(const std::vector<Event>& events,
                              const TraceNaming& naming) {
  std::ostringstream os;
  write_chrome_trace(os, events, naming);
  return os.str();
}

}  // namespace hlsmpc::obs
