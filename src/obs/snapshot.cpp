#include "obs/snapshot.hpp"

#include <sstream>

namespace hlsmpc::obs {

namespace {

std::string scope_label(const std::vector<std::string>& names, int sid) {
  if (sid >= 0 && sid < static_cast<int>(names.size()) &&
      !names[static_cast<std::size_t>(sid)].empty()) {
    return names[static_cast<std::size_t>(sid)];
  }
  return "sid" + std::to_string(sid);
}

void dump_counters(std::ostringstream& os, const Snapshot::TaskCounters& tc,
                   const std::vector<std::string>& scope_names,
                   const char* indent) {
  os << "{";
  bool first = true;
  for (int c = 0; c < kNumCounters; ++c) {
    os << (first ? "" : ",") << "\n" << indent << "  \""
       << to_string(static_cast<Counter>(c)) << "\": "
       << tc.c[static_cast<std::size_t>(c)];
    first = false;
  }
  for (std::size_t s = 0; s < tc.scope_bytes.size(); ++s) {
    const std::string label = scope_label(scope_names, static_cast<int>(s));
    os << ",\n" << indent << "  \"bytes_" << label
       << "\": " << tc.scope_bytes[s];
    os << ",\n" << indent << "  \"touches_" << label
       << "\": " << tc.scope_touches[s];
  }
  os << "\n" << indent << "}";
}

}  // namespace

std::string to_json(const Snapshot& s,
                    const std::vector<std::string>& scope_names) {
  std::ostringstream os;
  os << "{\n  \"total\": ";
  dump_counters(os, s.total, scope_names, "  ");
  os << ",\n  \"tasks\": [";
  for (std::size_t t = 0; t < s.tasks.size(); ++t) {
    os << (t == 0 ? "" : ",") << "\n    ";
    dump_counters(os, s.tasks[t], scope_names, "    ");
  }
  os << "\n  ]\n}";
  return os.str();
}

}  // namespace hlsmpc::obs
