// The standard observability sink: per-task counter blocks and bounded
// per-task event ring buffers.
//
// Layout is built for the writer side: each task owns one cache-line-
// aligned block holding its counters and its ring, and is the only writer
// of that block. Counter bumps are therefore relaxed single-writer
// increments (compiled to a plain add on x86 — no lock prefix, no
// contention), and ring pushes are a store plus a release publish of the
// push count. Readers (snapshot(), events()) aggregate lock-free with
// relaxed/acquire loads; they never block a writer.
//
// Counters are always coherent to read mid-run. Ring *contents* are only
// guaranteed stable when the writing tasks are quiescent (joined or
// between runs): a ring slot being overwritten while events() copies it
// would be torn. All exporters in this repo drain after the run.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "obs/event.hpp"
#include "obs/snapshot.hpp"

namespace hlsmpc::obs {

struct RecorderOptions {
  int ntasks = 1;
  /// Number of dense scope ids (topo::DenseScopeTable::num_scopes()) for
  /// the per-scope-level byte counters; 0 disables them.
  int num_scopes = 0;
  /// Events retained per task; the ring overwrites its oldest entry when
  /// full (dropped() counts the overwrites). 0 disables event recording
  /// entirely — counters keep working.
  std::size_t ring_capacity = 4096;
};

class Recorder final : public Sink {
 public:
  explicit Recorder(RecorderOptions opts);
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  int ntasks() const { return static_cast<int>(blocks_.size()); }
  int num_scopes() const { return num_scopes_; }
  std::size_t ring_capacity() const { return ring_capacity_; }

  /// Nanoseconds since this recorder's construction (steady clock). All
  /// Event timestamps are expressed on this axis.
  std::uint64_t now() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Bump a counter. Single-writer per task: only `task` itself may call
  /// this for its id. Out-of-range tasks are ignored (storage touched
  /// without a task context).
  void count(int task, Counter ctr, std::uint64_t n = 1) {
    if (static_cast<unsigned>(task) >= blocks_.size()) return;
    auto& c = blocks_[static_cast<std::size_t>(task)]
                  .counters[static_cast<std::size_t>(ctr)];
    c.store(c.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
  }

  /// Address of one task's counter cell, or nullptr when `task` is out
  /// of range. For paths too hot even for count()'s bounds check + block
  /// indexing (the warm get_addr path is ~4ns): resolve the cell once at
  /// setup, bump it with a relaxed load/add/store. Single-writer rules
  /// are the caller's to keep — only `task` itself may write the cell.
  std::atomic<std::uint64_t>* counter_cell(int task, Counter ctr) {
    if (static_cast<unsigned>(task) >= blocks_.size()) return nullptr;
    return &blocks_[static_cast<std::size_t>(task)]
                .counters[static_cast<std::size_t>(ctr)];
  }

  /// Read one task's counter (relaxed; safe mid-run). Benchmarks and
  /// tests diff this around a region instead of building a Snapshot.
  std::uint64_t counter(int task, Counter ctr) const {
    if (static_cast<unsigned>(task) >= blocks_.size()) return 0;
    return blocks_[static_cast<std::size_t>(task)]
        .counters[static_cast<std::size_t>(ctr)]
        .load(std::memory_order_relaxed);
  }

  /// Account `bytes` materialized at scope `sid` (plus one first touch).
  void count_scope_bytes(int task, int sid, std::uint64_t bytes);

  /// Append an event to the task's ring (if rings are enabled) and forward
  /// it to every chained sink. Events without a valid task go to sinks
  /// only.
  void record(const Event& e);

  void on_event(const Event& e) override { record(e); }

  /// Forward every record()ed event to `s` as well (call before tasks
  /// run; not synchronized against concurrent record()).
  void chain(Sink* s);

  /// Aggregate all counter blocks (lock-free; safe mid-run).
  Snapshot snapshot() const;

  /// Copy out every retained event, oldest first per task, merged and
  /// sorted by start time. Call only while writers are quiescent.
  std::vector<Event> events() const;

  /// Events pushed by `task` so far (including ones already overwritten).
  std::uint64_t events_recorded(int task) const;
  /// Events of `task` lost to ring overwrite.
  std::uint64_t dropped(int task) const;

 private:
  struct alignas(64) TaskBlock {
    std::array<std::atomic<std::uint64_t>, kNumCounters> counters{};
    std::vector<std::atomic<std::uint64_t>> scope_bytes;    // [sid]
    std::vector<std::atomic<std::uint64_t>> scope_touches;  // [sid]
    std::vector<Event> ring;
    std::atomic<std::uint64_t> pushed{0};
  };

  std::chrono::steady_clock::time_point epoch_;
  int num_scopes_ = 0;
  std::size_t ring_capacity_ = 0;
  std::vector<TaskBlock> blocks_;
  std::vector<Sink*> sinks_;
};

}  // namespace hlsmpc::obs
