#include "cachesim/runner.hpp"

#include <stdexcept>

namespace hlsmpc::cachesim {

Runner::Runner(Hierarchy& hier, std::vector<int> cpus,
               std::vector<std::unique_ptr<CoreStream>> streams)
    : hier_(&hier), cpus_(std::move(cpus)), streams_(std::move(streams)) {
  if (cpus_.size() != streams_.size()) {
    throw std::invalid_argument("Runner: one cpu per stream required");
  }
  for (int cpu : cpus_) {
    if (cpu < 0 || cpu >= hier.machine().num_cpus()) {
      throw std::invalid_argument("Runner: cpu outside the machine");
    }
  }
}

RunResult Runner::run() {
  const std::size_t n = streams_.size();
  RunResult result;
  result.cycles_per_core.assign(n, 0);
  std::vector<bool> alive(n, true);
  std::vector<bool> at_barrier(n, false);
  std::size_t remaining = n;
  std::size_t waiting = 0;

  // Advance the core with the smallest local clock; linear scan is fine
  // for node-scale core counts. Cores parked at a barrier are skipped
  // until every live core arrives, then all clocks align to the max.
  while (remaining > 0) {
    if (waiting == remaining) {
      std::uint64_t t = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (alive[i] && result.cycles_per_core[i] > t) {
          t = result.cycles_per_core[i];
        }
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (alive[i]) {
          result.cycles_per_core[i] = t;
          at_barrier[i] = false;
        }
      }
      waiting = 0;
      continue;
    }
    std::size_t best = 0;
    std::uint64_t best_time = UINT64_MAX;
    for (std::size_t i = 0; i < n; ++i) {
      if (alive[i] && !at_barrier[i] && result.cycles_per_core[i] < best_time) {
        best_time = result.cycles_per_core[i];
        best = i;
      }
    }
    Access a;
    if (!streams_[best]->next(a)) {
      alive[best] = false;
      --remaining;
      continue;
    }
    if (a.is_barrier) {
      at_barrier[best] = true;
      ++waiting;
      continue;
    }
    const std::uint64_t latency =
        hier_->access(cpus_[best], a.addr, a.write, result.cycles_per_core[best]);
    result.cycles_per_core[best] += latency + a.compute_cycles;
    ++result.total_accesses;
  }
  for (std::uint64_t c : result.cycles_per_core) {
    if (c > result.makespan) result.makespan = c;
  }
  return result;
}

}  // namespace hlsmpc::cachesim
