#include "cachesim/cache.hpp"

#include <stdexcept>

namespace hlsmpc::cachesim {

Cache::Cache(std::size_t size_bytes, std::size_t line_bytes,
             int associativity)
    : size_bytes_(size_bytes), assoc_(associativity) {
  if (line_bytes == 0 || associativity < 1) {
    throw std::invalid_argument("Cache: degenerate geometry");
  }
  const std::size_t lines = size_bytes / line_bytes;
  if (lines < static_cast<std::size_t>(associativity)) {
    throw std::invalid_argument("Cache: fewer lines than ways");
  }
  num_sets_ = static_cast<int>(lines / static_cast<std::size_t>(associativity));
  entries_.resize(static_cast<std::size_t>(num_sets_) *
                  static_cast<std::size_t>(assoc_));
}

Cache::Entry* Cache::set_begin(std::uint64_t line) {
  return entries_.data() +
         static_cast<std::size_t>(set_of(line)) *
             static_cast<std::size_t>(assoc_);
}

Cache::AccessResult Cache::access(std::uint64_t line, bool write) {
  Entry* set = set_begin(line);
  ++clock_;
  for (int w = 0; w < assoc_; ++w) {
    Entry& e = set[w];
    if (e.valid && e.tag == line) {
      e.lru = clock_;
      e.dirty = e.dirty || write;
      ++stats_.hits;
      return {.hit = true};
    }
  }
  ++stats_.misses;
  AccessResult r = fill(line, write);
  r.hit = false;
  return r;
}

Cache::AccessResult Cache::fill(std::uint64_t line, bool write) {
  Entry* set = set_begin(line);
  ++clock_;
  // Reuse an existing copy (fill after invalidate race) or a free way.
  Entry* victim = nullptr;
  for (int w = 0; w < assoc_; ++w) {
    Entry& e = set[w];
    if (e.valid && e.tag == line) {
      e.lru = clock_;
      e.dirty = e.dirty || write;
      return {};
    }
    if (!e.valid) {
      victim = &e;
    }
  }
  AccessResult r;
  if (victim == nullptr) {
    victim = &set[0];
    for (int w = 1; w < assoc_; ++w) {
      if (set[w].lru < victim->lru) victim = &set[w];
    }
    r.evicted = true;
    r.victim_line = victim->tag;
    r.victim_dirty = victim->dirty;
    ++stats_.evictions;
    if (victim->dirty) ++stats_.writebacks;
  }
  victim->tag = line;
  victim->valid = true;
  victim->dirty = write;
  victim->lru = clock_;
  return r;
}

bool Cache::contains(std::uint64_t line) const {
  const Entry* set = entries_.data() +
                     static_cast<std::size_t>(set_of(line)) *
                         static_cast<std::size_t>(assoc_);
  for (int w = 0; w < assoc_; ++w) {
    if (set[w].valid && set[w].tag == line) return true;
  }
  return false;
}

bool Cache::invalidate(std::uint64_t line) {
  Entry* set = set_begin(line);
  for (int w = 0; w < assoc_; ++w) {
    Entry& e = set[w];
    if (e.valid && e.tag == line) {
      e.valid = false;
      e.dirty = false;
      ++stats_.invalidations;
      return true;
    }
  }
  return false;
}

}  // namespace hlsmpc::cachesim
