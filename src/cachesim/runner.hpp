// Trace runner: interleaves per-core access streams through a Hierarchy.
//
// Each simulated core owns a stream of (address, write, compute-cycles)
// accesses. The runner always advances the core with the smallest local
// clock, which interleaves concurrent cores the way a real machine's
// simultaneous execution would (and makes socket-level bandwidth
// contention meaningful). The run result's makespan plays the role of the
// parallel execution time in the paper's efficiency numbers, so
//   efficiency = t_seq / t_par
// with t_seq measured by running the same stream on a single core.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cachesim/hierarchy.hpp"

namespace hlsmpc::cachesim {

struct Access {
  std::uint64_t addr = 0;
  bool write = false;
  /// Computation between this access and the next (pipeline work the
  /// access feeds); advances only this core's clock.
  std::uint32_t compute_cycles = 0;
  /// Synchronization point: the core blocks until every live core reaches
  /// a barrier, then all clocks align to the maximum (models the
  /// `single`/`barrier` directives and MPI_Barrier in traced programs).
  /// addr/write/compute_cycles are ignored on barrier records.
  bool is_barrier = false;
};

/// Convenience constructor for barrier records.
inline Access barrier_access() {
  Access a;
  a.is_barrier = true;
  return a;
}

/// A core's memory-access generator. next() returns false at end of
/// stream. Generators are pull-based so arbitrarily long traces never
/// materialize in memory.
class CoreStream {
 public:
  virtual ~CoreStream() = default;
  virtual bool next(Access& out) = 0;
};

/// Stream over a pre-built trace (testing, short workloads).
class VectorStream final : public CoreStream {
 public:
  explicit VectorStream(std::vector<Access> trace)
      : trace_(std::move(trace)) {}
  bool next(Access& out) override {
    if (pos_ >= trace_.size()) return false;
    out = trace_[pos_++];
    return true;
  }

 private:
  std::vector<Access> trace_;
  std::size_t pos_ = 0;
};

/// Stream backed by a generator callback returning false at end.
class FnStream final : public CoreStream {
 public:
  explicit FnStream(std::function<bool(Access&)> fn) : fn_(std::move(fn)) {}
  bool next(Access& out) override { return fn_(out); }

 private:
  std::function<bool(Access&)> fn_;
};

struct RunResult {
  std::vector<std::uint64_t> cycles_per_core;  // local clock at stream end
  std::uint64_t makespan = 0;                  // max over cores
  std::uint64_t total_accesses = 0;
};

class Runner {
 public:
  /// `streams[i]` runs on hardware thread `cpus[i]`.
  Runner(Hierarchy& hier, std::vector<int> cpus,
         std::vector<std::unique_ptr<CoreStream>> streams);

  RunResult run();

 private:
  Hierarchy* hier_;
  std::vector<int> cpus_;
  std::vector<std::unique_ptr<CoreStream>> streams_;
};

}  // namespace hlsmpc::cachesim
