// Multi-level cache hierarchy with write-invalidate coherence and a
// memory-bandwidth queueing model, instantiated from a topo::Machine.
//
// What the HLS experiments need from this model (paper §V.A):
//  - capacity: a table duplicated per core overflows the shared LLC, one
//    shared copy fits;
//  - coherence: a write to a node-scope variable invalidates the copies
//    cached by *other* sockets, a numa-scope copy is only written by its
//    own socket;
//  - bandwidth: cores of a socket share one memory channel, so misses
//    queue (this is what caps the no-HLS parallel efficiency near 40 %).
//
// Accesses are line-granular, inclusive across levels; evictions from the
// LLC back-invalidate inner caches of the same domain. A directory maps
// each resident line to the set of cache instances holding it, so
// invalidations are exact rather than broadcast scans.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cachesim/cache.hpp"
#include "topo/topology.hpp"

namespace hlsmpc::cachesim {

struct HierarchyStats {
  std::vector<CacheStats> per_level;  // aggregated over instances
  std::uint64_t memory_accesses = 0;
  std::uint64_t coherence_invalidations = 0;
};

class Hierarchy {
 public:
  explicit Hierarchy(const topo::Machine& machine);

  const topo::Machine& machine() const { return machine_; }

  /// Allocate a byte region in the simulated address space (line aligned).
  /// Returns the base byte address.
  std::uint64_t alloc_region(std::size_t bytes);

  /// One memory access by the task pinned to `cpu`, issued at local time
  /// `now` (cycles). Returns the access latency in cycles.
  std::uint64_t access(int cpu, std::uint64_t addr, bool write,
                       std::uint64_t now);

  HierarchyStats stats() const;
  void reset_stats();

  std::size_t line_bytes() const { return line_bytes_; }
  int num_levels() const { return static_cast<int>(levels_.size()); }
  const Cache& cache(int level, int instance) const;

 private:
  struct Level {
    std::vector<std::unique_ptr<Cache>> instances;
    int latency = 0;
    int cpus_per_instance = 1;
  };

  using PresenceMask = std::array<std::uint64_t, 4>;

  int flat_index(int level, int instance) const;
  void set_present(PresenceMask& m, int level, int instance) const;
  void clear_present(PresenceMask& m, int level, int instance) const;
  bool any_present(const PresenceMask& m) const;

  void directory_add(std::uint64_t line, int level, int instance);
  void directory_remove(std::uint64_t line, int level, int instance);
  /// Drop the line from all inner (smaller-level) caches inside the
  /// eviction domain of (level, instance) — inclusion maintenance.
  void back_invalidate(std::uint64_t line, int level, int instance);
  /// Write-invalidate: drop the line everywhere except the writer's path.
  void invalidate_other_holders(std::uint64_t line, int writer_cpu);

  topo::Machine machine_;
  std::size_t line_bytes_;
  unsigned line_shift_;
  std::vector<Level> levels_;
  std::vector<int> level_offsets_;  // into flat instance index space
  int total_instances_ = 0;

  std::unordered_map<std::uint64_t, PresenceMask> directory_;

  // Per-socket memory channel: time the channel becomes free again.
  std::vector<std::uint64_t> channel_free_;
  double lines_per_cycle_;
  int memory_latency_;

  std::uint64_t next_region_ = 1 << 20;  // leave page 0 unused
  std::uint64_t coherence_invalidations_ = 0;
  std::uint64_t memory_accesses_ = 0;
};

}  // namespace hlsmpc::cachesim
