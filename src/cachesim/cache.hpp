// Set-associative LRU cache (one instance of one level).
//
// The simulator works at cache-line granularity: addresses passed in are
// *line* numbers (byte address >> line_shift), computed by the Hierarchy.
// Replacement is true LRU per set; a write marks the line dirty so
// write-back traffic can be counted.
#pragma once

#include <cstdint>
#include <vector>

namespace hlsmpc::cachesim {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t invalidations = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

class Cache {
 public:
  Cache(std::size_t size_bytes, std::size_t line_bytes, int associativity);

  struct AccessResult {
    bool hit = false;
    bool evicted = false;
    std::uint64_t victim_line = 0;
    bool victim_dirty = false;
  };

  /// Look up `line`; on miss, insert it, possibly evicting the set's LRU
  /// victim (reported so the hierarchy can keep inclusion and the
  /// directory up to date).
  AccessResult access(std::uint64_t line, bool write);

  /// Insert without lookup (fill path); same eviction reporting.
  AccessResult fill(std::uint64_t line, bool write);

  bool contains(std::uint64_t line) const;
  /// Remove the line if present; returns true if it was (and counts an
  /// invalidation).
  bool invalidate(std::uint64_t line);

  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; }

  int num_sets() const { return num_sets_; }
  int associativity() const { return assoc_; }
  std::size_t size_bytes() const { return size_bytes_; }

 private:
  struct Entry {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  // larger = more recently used
    bool valid = false;
    bool dirty = false;
  };

  Entry* set_begin(std::uint64_t line);
  int set_of(std::uint64_t line) const {
    return static_cast<int>(line % static_cast<std::uint64_t>(num_sets_));
  }

  std::size_t size_bytes_;
  int assoc_;
  int num_sets_;
  std::uint64_t clock_ = 0;
  std::vector<Entry> entries_;  // num_sets_ * assoc_, set-major
  CacheStats stats_;
};

}  // namespace hlsmpc::cachesim
