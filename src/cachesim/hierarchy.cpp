#include "cachesim/hierarchy.hpp"

#include <bit>
#include <stdexcept>

namespace hlsmpc::cachesim {

Hierarchy::Hierarchy(const topo::Machine& machine)
    : machine_(machine),
      line_bytes_(machine.cache_level(1).line_bytes),
      lines_per_cycle_(machine.desc().memory_lines_per_cycle),
      memory_latency_(machine.desc().memory_latency_cycles) {
  line_shift_ = static_cast<unsigned>(std::countr_zero(line_bytes_));
  for (int l = 1; l <= machine.num_cache_levels(); ++l) {
    const topo::CacheLevelDesc& d = machine.cache_level(l);
    if (d.line_bytes != line_bytes_) {
      throw std::invalid_argument(
          "Hierarchy: all levels must share one line size");
    }
    Level level;
    level.latency = d.latency_cycles;
    level.cpus_per_instance = d.cpus_per_instance;
    const int n = machine.num_cache_instances(l);
    for (int i = 0; i < n; ++i) {
      level.instances.push_back(
          std::make_unique<Cache>(d.size_bytes, d.line_bytes,
                                  d.associativity));
    }
    level_offsets_.push_back(total_instances_);
    total_instances_ += n;
    levels_.push_back(std::move(level));
  }
  if (total_instances_ > 256) {
    throw std::invalid_argument(
        "Hierarchy: more than 256 cache instances unsupported");
  }
  channel_free_.assign(static_cast<std::size_t>(machine.num_sockets()), 0);
}

std::uint64_t Hierarchy::alloc_region(std::size_t bytes) {
  const std::uint64_t base = next_region_;
  const std::uint64_t lines =
      (bytes + line_bytes_ - 1) / line_bytes_;
  next_region_ += (lines + 16) * line_bytes_;  // pad to avoid false sharing
  return base;
}

int Hierarchy::flat_index(int level, int instance) const {
  return level_offsets_[static_cast<std::size_t>(level - 1)] + instance;
}

void Hierarchy::set_present(PresenceMask& m, int level, int instance) const {
  const int idx = flat_index(level, instance);
  m[static_cast<std::size_t>(idx >> 6)] |= (std::uint64_t{1} << (idx & 63));
}

void Hierarchy::clear_present(PresenceMask& m, int level,
                              int instance) const {
  const int idx = flat_index(level, instance);
  m[static_cast<std::size_t>(idx >> 6)] &= ~(std::uint64_t{1} << (idx & 63));
}

bool Hierarchy::any_present(const PresenceMask& m) const {
  return (m[0] | m[1] | m[2] | m[3]) != 0;
}

void Hierarchy::directory_add(std::uint64_t line, int level, int instance) {
  PresenceMask& m = directory_[line];
  set_present(m, level, instance);
}

void Hierarchy::directory_remove(std::uint64_t line, int level,
                                 int instance) {
  auto it = directory_.find(line);
  if (it == directory_.end()) return;
  clear_present(it->second, level, instance);
  if (!any_present(it->second)) directory_.erase(it);
}

void Hierarchy::back_invalidate(std::uint64_t line, int level,
                                int instance) {
  // Inclusion: when (level, instance) loses a line, every inner cache
  // whose cpus are covered by this instance must drop it too.
  const int span = levels_[static_cast<std::size_t>(level - 1)]
                       .cpus_per_instance;
  const int first_cpu = instance * span;
  for (int l = 1; l < level; ++l) {
    Level& inner = levels_[static_cast<std::size_t>(l - 1)];
    const int inner_span = inner.cpus_per_instance;
    for (int cpu = first_cpu; cpu < first_cpu + span; cpu += inner_span) {
      const int ii = cpu / inner_span;
      if (inner.instances[static_cast<std::size_t>(ii)]->invalidate(line)) {
        directory_remove(line, l, ii);
      }
    }
  }
}

void Hierarchy::invalidate_other_holders(std::uint64_t line, int writer_cpu) {
  auto it = directory_.find(line);
  if (it == directory_.end()) return;
  const PresenceMask m = it->second;  // copy: we mutate the directory below
  for (int l = 1; l <= num_levels(); ++l) {
    Level& level = levels_[static_cast<std::size_t>(l - 1)];
    const int writer_inst = writer_cpu / level.cpus_per_instance;
    for (int i = 0; i < static_cast<int>(level.instances.size()); ++i) {
      if (i == writer_inst) continue;
      const int idx = flat_index(l, i);
      if ((m[static_cast<std::size_t>(idx >> 6)] >> (idx & 63)) & 1) {
        if (level.instances[static_cast<std::size_t>(i)]->invalidate(line)) {
          directory_remove(line, l, i);
          ++coherence_invalidations_;
        }
      }
    }
  }
}

std::uint64_t Hierarchy::access(int cpu, std::uint64_t addr, bool write,
                                std::uint64_t now) {
  const std::uint64_t line = addr >> line_shift_;
  std::uint64_t cycles = 0;
  int hit_level = 0;  // 0 = memory
  for (int l = 1; l <= num_levels(); ++l) {
    Level& level = levels_[static_cast<std::size_t>(l - 1)];
    const int inst = cpu / level.cpus_per_instance;
    Cache& c = *level.instances[static_cast<std::size_t>(inst)];
    cycles += static_cast<std::uint64_t>(level.latency);
    Cache::AccessResult r = c.access(line, write);
    if (r.evicted) {
      directory_remove(r.victim_line, l, inst);
      back_invalidate(r.victim_line, l, inst);
    }
    if (!r.hit) directory_add(line, l, inst);
    if (r.hit) {
      hit_level = l;
      break;
    }
  }
  if (hit_level == 0) {
    // Miss everywhere: fetch from the socket's memory channel with a
    // simple queueing model — each line occupies the channel for
    // 1 / lines_per_cycle cycles.
    ++memory_accesses_;
    const int socket = machine_.socket_of_cpu(cpu);
    std::uint64_t& free_at = channel_free_[static_cast<std::size_t>(socket)];
    const std::uint64_t issue = now + cycles;
    const std::uint64_t start = issue > free_at ? issue : free_at;
    const std::uint64_t occupancy =
        static_cast<std::uint64_t>(1.0 / lines_per_cycle_);
    free_at = start + occupancy;
    cycles = (start - now) + static_cast<std::uint64_t>(memory_latency_);
  } else if (hit_level > 1) {
    // Fill the line into the inner levels on the path (inclusive).
    for (int l = hit_level - 1; l >= 1; --l) {
      Level& level = levels_[static_cast<std::size_t>(l - 1)];
      const int inst = cpu / level.cpus_per_instance;
      Cache& c = *level.instances[static_cast<std::size_t>(inst)];
      Cache::AccessResult r = c.fill(line, write);
      if (r.evicted) {
        directory_remove(r.victim_line, l, inst);
        back_invalidate(r.victim_line, l, inst);
      }
      directory_add(line, l, inst);
    }
  }
  if (write) invalidate_other_holders(line, cpu);
  return cycles;
}

HierarchyStats Hierarchy::stats() const {
  HierarchyStats s;
  for (const Level& level : levels_) {
    CacheStats agg;
    for (const auto& c : level.instances) {
      const CacheStats& cs = c->stats();
      agg.hits += cs.hits;
      agg.misses += cs.misses;
      agg.evictions += cs.evictions;
      agg.writebacks += cs.writebacks;
      agg.invalidations += cs.invalidations;
    }
    s.per_level.push_back(agg);
  }
  s.memory_accesses = memory_accesses_;
  s.coherence_invalidations = coherence_invalidations_;
  return s;
}

void Hierarchy::reset_stats() {
  for (Level& level : levels_) {
    for (auto& c : level.instances) c->reset_stats();
  }
  memory_accesses_ = 0;
  coherence_invalidations_ = 0;
}

const Cache& Hierarchy::cache(int level, int instance) const {
  return *levels_[static_cast<std::size_t>(level - 1)]
              .instances[static_cast<std::size_t>(instance)];
}

}  // namespace hlsmpc::cachesim
