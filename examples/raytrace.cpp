// Tachyon-style ray tracing with an HLS-shared scene and image
// (paper §V.B.3).
//
// The scene is read-only during rendering and the image's per-task rows
// do not overlap, so both can be node-scope HLS variables. Sharing the
// image also removes the intra-node gather copies on the node hosting
// rank 0: watch the "copies elided" counter.
//
//   $ ./raytrace [width] [height] [frames]
#include <cstdio>
#include <cstdlib>

#include "apps/tachyon/tachyon.hpp"

using namespace hlsmpc;

int main(int argc, char** argv) {
  apps::tachyon::Config cfg;
  cfg.width = argc > 1 ? std::atoi(argv[1]) : 256;
  cfg.height = argc > 2 ? std::atoi(argv[2]) : 256;
  cfg.frames = argc > 3 ? std::atoi(argv[3]) : 2;
  cfg.num_spheres = 48;
  cfg.texture_floats = 1 << 18;

  const topo::Machine machine = topo::Machine::core2_cluster_node();
  std::printf("ray tracing %dx%d, %d frame(s), %d spheres, 8 tasks\n",
              cfg.width, cfg.height, cfg.frames, cfg.num_spheres);

  for (bool hls : {false, true}) {
    cfg.use_hls = hls;
    mpc::NodeOptions opts;
    opts.mpi.nranks = 8;
    mpc::Node node(machine, opts);
    const auto stats = apps::tachyon::run(node, cfg);
    std::printf(
        "%-12s time %6.3fs  avg mem %7.2f MB  checksum %.3f  gather "
        "copies elided %llu\n",
        hls ? "HLS" : "replicated", stats.seconds, stats.avg_mb,
        stats.checksum,
        static_cast<unsigned long long>(stats.gather_copies_elided));
  }
  return 0;
}
