// Decoupling data sharing from the programming-model decomposition
// (paper §I): "The HLS extension allows the programmer to have an HLS
// variable with scope node while its hybrid code has one MPI task per
// socket".
//
// This example runs the hybrid configuration: one MPI task per socket,
// each task driving a team of compute threads (the OpenMP level), while
// the lookup table is an HLS variable with scope *node* — so the two
// sockets' tasks and all their threads share one single copy, something
// plain MPI+OpenMP cannot express without merging everything into one
// task (and paying the Amdahl price the paper describes).
//
//   $ ./hybrid_decoupling
#include <cstdio>
#include <thread>
#include <vector>

#include "mpc/node.hpp"

using namespace hlsmpc;

int main() {
  const topo::Machine machine = topo::Machine::nehalem_ex(2);  // 2 sockets
  mpc::NodeOptions options;
  options.mpi.nranks = 2;  // ONE MPI task per socket (hybrid decomposition)
  mpc::Node node(machine, options);

  constexpr std::size_t kTable = 1 << 15;
  hls::ModuleBuilder mb(node.hls_rt().registry(), "hybrid");
  auto table =
      hls::add_array<double>(mb, "table", kTable, topo::node_scope());
  mb.commit();

  node.run([&](mpi::Comm& world, hls::TaskView& hls) {
    auto& ctx = hls.context();
    const int rank = world.rank(ctx);

    double* t = hls.get(table);
    hls.single({table.handle()}, [&] {
      std::printf("MPI task %d loads the node-shared table once\n", rank);
      for (std::size_t i = 0; i < kTable; ++i) {
        t[i] = static_cast<double>(i % 97);
      }
    });

    // The OpenMP-like level: a team of threads per MPI task, all reading
    // the SAME node-wide copy through the pointer their task resolved.
    constexpr int kThreads = 4;
    std::vector<double> partial(kThreads, 0.0);
    {
      std::vector<std::thread> team;
      for (int w = 0; w < kThreads; ++w) {
        team.emplace_back([&, w] {
          double s = 0;
          for (std::size_t i = static_cast<std::size_t>(w); i < kTable;
               i += kThreads) {
            s += t[i];
          }
          partial[static_cast<std::size_t>(w)] = s;
        });
      }
      for (auto& th : team) th.join();
    }
    double task_sum = 0;
    for (double p : partial) task_sum += p;

    const double node_sum = world.allreduce_value(ctx, task_sum,
                                                  mpi::Op::sum);
    if (rank == 0) {
      std::printf("2 MPI tasks x %d threads all saw the same table; "
                  "node sum %.0f\n",
                  kThreads, node_sum);
      std::printf("table copies on the node: %d (one, despite 2 tasks x %d "
                  "threads)\n",
                  node.hls_rt().storage().copies(table.handle().scope,
                                                 table.handle().module),
                  kThreads);
    }
  });
  return 0;
}
