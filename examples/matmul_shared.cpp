// Listing 4 of the paper: matrix multiplications with a common matrix.
//
// Every MPI task computes C <- A*B + C where B is common to all tasks;
// B's allocation and initialization live inside a `single`, and the
// update variant rewrites B between timesteps. Demonstrates an HLS
// variable holding heap-backed data plus the single/barrier idiom.
//
//   $ ./matmul_shared [n] [timesteps] [update:0|1]
#include <cstdio>
#include <cstdlib>

#include "apps/matmul/matmul.hpp"

using namespace hlsmpc;

int main(int argc, char** argv) {
  apps::matmul::Config cfg;
  cfg.n = argc > 1 ? std::atoi(argv[1]) : 64;
  cfg.timesteps = argc > 2 ? std::atoi(argv[2]) : 2;
  cfg.update_b = argc > 3 && std::atoi(argv[3]) != 0;
  cfg.block = 8;

  const topo::Machine machine = topo::Machine::nehalem_ex(1);
  std::printf("matmul C <- A*B + C, n=%d, %d steps, %s B\n", cfg.n,
              cfg.timesteps, cfg.update_b ? "updating" : "constant");

  for (auto mode : {apps::matmul::Mode::mpi_private,
                    apps::matmul::Mode::hls_node}) {
    mpc::NodeOptions opts;
    opts.mpi.nranks = machine.num_cpus();
    mpc::Node node(machine, opts);
    const double checksum = apps::matmul::run_on_node(node, cfg, mode);
    std::printf("%-12s checksum %.6f   peak node memory %7.2f MB\n",
                to_string(mode), checksum,
                static_cast<double>(node.tracker().peak_total()) / (1 << 20));
  }

  // Also show the simulated cache behaviour (Figure 3's y-axis).
  const topo::Machine scaled = topo::Machine::nehalem_ex(1, 64);
  for (auto mode : {apps::matmul::Mode::sequential,
                    apps::matmul::Mode::mpi_private,
                    apps::matmul::Mode::hls_node}) {
    const auto sim = apps::matmul::simulate(scaled, cfg, mode, 8);
    std::printf("simulated %-12s perf %.3f flops/cycle/task\n",
                to_string(mode), sim.perf);
  }
  return 0;
}
