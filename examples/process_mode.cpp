// HLS under process-based MPI (paper §IV.C).
//
// Forks 8 UNIX processes as MPI tasks. HLS variables live in a shared
// segment mapped at the same virtual address everywhere; a pointer-valued
// HLS variable is filled from the shared heap arena inside a `single`
// (the paper's LD_PRELOAD-malloc scenario), and every process reads the
// data through the identical pointer value.
//
//   $ ./process_mode
#include <cstdio>
#include <unistd.h>

#include "shm/process_node.hpp"

using namespace hlsmpc;

int main() {
  const topo::Machine machine = topo::Machine::core2_cluster_node();
  shm::ProcessNode node(machine, 8);
  node.add_var("table", 2048 * sizeof(double), topo::node_scope());
  node.add_var("B", sizeof(double*), topo::node_scope());

  std::printf("parent pid %d forking 8 task processes...\n", getpid());
  node.run([](shm::ProcessTask& task) {
    auto* table = task.var_as<double>("table");
    if (task.single_enter("table")) {
      std::printf("  [pid %d rank %d] initializes the shared table\n",
                  getpid(), task.rank());
      for (int i = 0; i < 2048; ++i) table[i] = i * 1.5;
      task.single_done("table");
    }

    // Heap-backed HLS variable: allocated from the shared arena.
    auto** b = task.var_as<double*>("B");
    if (task.single_enter("B")) {
      *b = static_cast<double*>(task.shared_malloc(512 * sizeof(double)));
      for (int i = 0; i < 512; ++i) (*b)[i] = table[i] + 0.5;
      task.single_done("B");
    }

    double sum = 0;
    for (int i = 0; i < 512; ++i) sum += (*b)[i];
    std::printf("  [pid %d rank %d] table[100]=%.1f heap sum=%.1f\n",
                getpid(), task.rank(), table[100], sum);

    task.barrier("B");
    if (task.single_enter("B")) {
      task.shared_free(*b);
      task.single_done("B");
    }
  });
  std::printf("all task processes agreed on the shared data.\n");
  return 0;
}
