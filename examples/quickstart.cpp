// Quickstart: share one table between the MPI tasks of a node.
//
// The 60-second tour of the library: build a machine, declare an HLS
// variable (the API form of `#pragma hls node(table)`), run an MPI
// program whose tasks load the table once per node (`#pragma hls single`)
// and then all read the same copy.
//
//   $ ./quickstart
#include <cstdio>

#include "mpc/node.hpp"

using namespace hlsmpc;

int main() {
  // An 8-core node (2 sockets x 4 cores, like the paper's cluster nodes).
  const topo::Machine machine = topo::Machine::core2_cluster_node();

  mpc::NodeOptions options;
  options.mpi.nranks = 8;  // one MPI task per core
  mpc::Node node(machine, options);

  // --- what the compiler would emit for:
  //       double table[4096];
  //       #pragma hls node(table)
  hls::ModuleBuilder mb(node.hls_rt().registry(), "quickstart");
  auto table = hls::add_array<double>(mb, "table", 4096, topo::node_scope());
  mb.commit();

  node.run([&](mpi::Comm& world, hls::TaskView& hls) {
    auto& ctx = hls.context();
    const int rank = world.rank(ctx);

    double* t = hls.get(table);  // hls_get_addr_node(module, offset)

    // #pragma hls single(table)  -- one task per node loads the table.
    hls.single({table.handle()}, [&] {
      std::printf("rank %d loads the table (one task per node)\n", rank);
      for (int i = 0; i < 4096; ++i) t[i] = i * 0.25;
    });

    // Every task reads the same physical copy.
    double sum = 0;
    for (int i = 0; i < 4096; ++i) sum += t[i];

    const double total = world.allreduce_value(ctx, sum, mpi::Op::sum);
    if (rank == 0) {
      std::printf("each rank saw sum %.1f; %d ranks total %.1f\n", sum,
                  world.size(), total);
      std::printf("table copies on the node: %d (8 without HLS)\n",
                  node.hls_rt().storage().copies(table.handle().scope,
                                                 table.handle().module));
      std::printf("HLS bytes allocated: %zu (one copy of 32 KB)\n",
                  node.hls_rt().storage().bytes_allocated());
    }
  });
  return 0;
}
