// Automatic HLS-eligibility detection (paper §III + conclusion).
//
// Records the memory accesses and synchronizations of a small SPMD
// program as an event trace, derives the happens-before relation and
// reports, per global variable, whether it can be shared as-is, needs
// `single`-protected writes, or must stay private — the paper's proposed
// future-work tool built on its formal model.
//
//   $ ./eligibility_advisor
#include <cstdio>

#include "hb/advisor.hpp"

using namespace hlsmpc;

int main() {
  constexpr int kTasks = 4;
  hb::Trace trace(kTasks);

  // A typical SPMD program with three globals:
  //  - eos_table: loaded identically by everyone, then only read;
  //  - timestep_cfg: recomputed identically by everyone each iteration,
  //    but with no barrier between its write and other tasks' reads;
  //  - my_rank: rank-dependent.
  for (int t = 0; t < kTasks; ++t) {
    trace.write(t, "eos_table", 4242);
    trace.write(t, "my_rank", t);
  }
  trace.barrier();
  for (int step = 1; step <= 2; ++step) {
    for (int t = 0; t < kTasks; ++t) {
      trace.write(t, "timestep_cfg", step * 100);
      trace.read(t, "timestep_cfg", step * 100);
      trace.read(t, "eos_table", 4242);
      trace.read(t, "my_rank", t);
    }
    // Neighbour exchange, as an MPI code would do.
    for (int t = 0; t < kTasks; ++t) trace.send(t, (t + 1) % kTasks, step);
    for (int t = 0; t < kTasks; ++t) {
      trace.recv(t, (t - 1 + kTasks) % kTasks, step);
    }
  }

  std::printf("happens-before analysis of %zu events, %d tasks\n\n",
              trace.events().size(), kTasks);
  for (const hb::Advice& a : hb::Advisor::advise(trace)) {
    std::printf("%-14s %-22s spmd-writes=%-3s -> %s\n", a.var.c_str(),
                to_string(a.eligibility), a.spmd_identical_writes ? "yes"
                                                                  : "no",
                to_string(a.recommendation));
    std::printf("    %s\n\n", a.text.c_str());
  }
  return 0;
}
