// Listing 3 of the paper: mesh update with a common table.
//
// A 3-D mesh is updated for T timesteps using values interpolated from a
// common table that is loaded once per node and shared by every MPI task
// (scope node). Run with defaults or pass mesh/table sizes:
//
//   $ ./mesh_table [cells_per_task] [table_cells] [timesteps]
#include <cstdio>
#include <cstdlib>

#include "apps/meshupdate/mesh_update.hpp"

using namespace hlsmpc;

int main(int argc, char** argv) {
  apps::meshupdate::Config cfg;
  cfg.cells_per_task = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4096;
  cfg.table_cells = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 16384;
  cfg.timesteps = argc > 3 ? std::atoi(argv[3]) : 3;

  const topo::Machine machine = topo::Machine::nehalem_ex(2);
  std::printf("mesh update on %s: %zu cells/task, %zu-cell shared table, "
              "%d steps\n",
              machine.name().c_str(), cfg.cells_per_task, cfg.table_cells,
              cfg.timesteps);

  for (auto mode : {apps::meshupdate::Mode::no_hls,
                    apps::meshupdate::Mode::hls_node,
                    apps::meshupdate::Mode::hls_numa}) {
    cfg.mode = mode;
    mpc::NodeOptions opts;
    opts.mpi.nranks = machine.num_cpus();
    mpc::Node node(machine, opts);
    const double checksum = apps::meshupdate::run_on_node(node, cfg);
    std::printf("%-14s checksum %.6f   peak node memory %7.2f MB\n",
                to_string(mode), checksum,
                static_cast<double>(node.tracker().peak_total()) / (1 << 20));
  }
  std::printf("\nSame checksum in all modes (HLS preserves semantics); the "
              "HLS rows allocate 1 table copy per scope instance instead "
              "of one per task.\n");
  return 0;
}
