// 1-D Jacobi relaxation with one-sided halo exchange (mpi/rma.hpp).
//
// Each rank owns a strip of the rod plus two halo cells, and the strip
// lives in HLS scope storage: hls::Runtime::rma_backing registers one
// core-scoped region per rank, and each rank exposes its resolved region
// as its slice of the RMA window. A halo step is then two put() calls —
// every rank writes its boundary cells straight into the neighbours'
// halo slots, single-copy, no matching receive — bracketed by fences
// that carry the release/acquire edges:
//
//   fence | put boundaries into neighbours | fence | relax | fence | ...
//
// The first fence completes the epoch of puts (my halos are filled and
// visible); the second one keeps my halo slots stable while I read them
// (the neighbours' next round of puts starts only after it).
//
//   $ ./halo_exchange
#include <cstdio>
#include <vector>

#include "hls/hls.hpp"
#include "mpi/comm.hpp"
#include "mpi/rma.hpp"
#include "mpi/runtime.hpp"

using namespace hlsmpc;

int main() {
  constexpr int kRanks = 8;
  constexpr int kInterior = 64;  // cells per rank
  constexpr int kIters = 200;
  constexpr double kLeftEnd = 0.0, kRightEnd = 100.0;  // Dirichlet ends

  const topo::Machine machine = topo::Machine::nehalem_ex(2);
  hls::Runtime hls_rt(machine, kRanks);
  const hls::VarHandle backing =
      hls_rt.rma_backing("halo", (kInterior + 2) * sizeof(double));

  mpi::Options o;
  o.nranks = kRanks;
  mpi::Runtime rt(machine, o);
  rt.run([&](mpi::Comm& world, ult::TaskContext& ctx) {
    const int me = world.rank(ctx);
    hls_rt.bind_task(ctx);
    // u[0] and u[kInterior + 1] are the halos; the interior is u[1..64].
    auto* u = static_cast<double*>(hls_rt.get_addr(backing, ctx));
    for (int i = 0; i < kInterior + 2; ++i) u[i] = 0.0;
    if (me == 0) u[0] = kLeftEnd;
    if (me == kRanks - 1) u[kInterior + 1] = kRightEnd;

    mpi::rma::Win& win =
        world.win_create(ctx, u, (kInterior + 2) * sizeof(double));
    const int left = me > 0 ? me - 1 : -1;
    const int right = me + 1 < kRanks ? me + 1 : -1;

    std::vector<double> next(static_cast<std::size_t>(kInterior));
    win.fence(ctx, me);
    for (int it = 0; it < kIters; ++it) {
      if (left >= 0) {
        win.put(ctx, me, &u[1], sizeof(double), left,
                (kInterior + 1) * sizeof(double));
      }
      if (right >= 0) {
        win.put(ctx, me, &u[kInterior], sizeof(double), right, 0);
      }
      win.fence(ctx, me);  // halos filled and published
      for (int i = 1; i <= kInterior; ++i) {
        next[static_cast<std::size_t>(i - 1)] = 0.5 * (u[i - 1] + u[i + 1]);
      }
      for (int i = 1; i <= kInterior; ++i) {
        u[i] = next[static_cast<std::size_t>(i - 1)];
      }
      win.fence(ctx, me);  // halos stable until the next round of puts
    }

    // Reduce the residual against the converged straight line.
    double local = 0.0;
    for (int i = 1; i <= kInterior; ++i) {
      const double x =
          static_cast<double>(me * kInterior + i) /
          static_cast<double>(kRanks * kInterior + 1);
      const double exact = kLeftEnd + (kRightEnd - kLeftEnd) * x;
      const double d = u[i] - exact;
      local += d * d;
    }
    double total = 0.0;
    world.allreduce(ctx, &local, &total, 1, sizeof(double),
                    [](void* inout, const void* in, std::size_t count) {
                      auto* a = static_cast<double*>(inout);
                      auto* b = static_cast<const double*>(in);
                      for (std::size_t i = 0; i < count; ++i) a[i] += b[i];
                    });
    if (me == 0) {
      std::printf("halo exchange: %d ranks x %d cells, %d iterations, "
                  "residual^2 = %.6f\n",
                  kRanks, kInterior, kIters, total);
    }
    world.win_free(ctx, win);
  });
  return 0;
}
