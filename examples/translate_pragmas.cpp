// The compiler half of HLS as a source-to-source tool (paper §IV.A-B).
//
// Feeds the paper's listing-3-style program through the directive
// translator and prints (a) the strip-mode output — what an HLS-unaware
// compiler effectively sees — and (b) the full translation to runtime
// calls, with symbolic module/offset macros for the "linker" to fill.
//
//   $ ./translate_pragmas            # built-in demo program
//   $ ./translate_pragmas file.c     # translate a file
#include <cstdio>
#include <fstream>
#include <sstream>

#include "pragma/rewriter.hpp"

using namespace hlsmpc;

namespace {

const char kDemo[] = R"(double table[1024];
int steps;
#pragma hls node(table)
#pragma hls numa(steps)

int main() {
#pragma hls single(table)
  {
    load_table(table);
  }
  for (int t = 0; t < steps; ++t) {
    compute(table, t);
#pragma hls barrier(table, steps)
  }
  return 0;
}
)";

}  // namespace

int main(int argc, char** argv) {
  std::string source = kDemo;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    source = ss.str();
  }

  std::printf("==== input ====\n%s\n", source.c_str());

  const auto stripped = pragma::rewrite(source, pragma::RewriteMode::strip);
  std::printf("==== strip mode (HLS-unaware compiler) ====\n%s\n\n",
              stripped.ok ? stripped.text.c_str() : "(errors)");

  const auto translated = pragma::rewrite(source);
  if (!translated.ok) {
    std::printf("==== diagnostics ====\n");
    for (const auto& d : translated.diagnostics) {
      std::printf("line %d: %s: %s\n", d.line, d.error ? "error" : "warning",
                  d.message.c_str());
    }
    return 1;
  }
  std::printf("==== translated (-fhls) ====\n%s\n", translated.text.c_str());
  std::printf("\nHLS variables:\n");
  for (const auto& v : translated.variables) {
    std::printf("  %-8s scope %-10s declared line %d\n", v.name.c_str(),
                topo::to_string(v.scope).c_str(), v.declared_line);
  }
  return 0;
}
