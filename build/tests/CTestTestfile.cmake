# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_topo[1]_include.cmake")
include("/root/repo/build/tests/test_memtrack[1]_include.cmake")
include("/root/repo/build/tests/test_ult[1]_include.cmake")
include("/root/repo/build/tests/test_mpi[1]_include.cmake")
include("/root/repo/build/tests/test_hls[1]_include.cmake")
include("/root/repo/build/tests/test_cachesim[1]_include.cmake")
include("/root/repo/build/tests/test_shm[1]_include.cmake")
include("/root/repo/build/tests/test_hb[1]_include.cmake")
include("/root/repo/build/tests/test_pragma[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_tracer[1]_include.cmake")
include("/root/repo/build/tests/test_cachesim_model[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_sbll[1]_include.cmake")
