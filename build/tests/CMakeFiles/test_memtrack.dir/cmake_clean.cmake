file(REMOVE_RECURSE
  "CMakeFiles/test_memtrack.dir/test_memtrack.cpp.o"
  "CMakeFiles/test_memtrack.dir/test_memtrack.cpp.o.d"
  "test_memtrack"
  "test_memtrack.pdb"
  "test_memtrack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memtrack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
