# Empty dependencies file for test_memtrack.
# This may be replaced when dependencies are built.
