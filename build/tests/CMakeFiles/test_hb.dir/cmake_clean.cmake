file(REMOVE_RECURSE
  "CMakeFiles/test_hb.dir/test_hb.cpp.o"
  "CMakeFiles/test_hb.dir/test_hb.cpp.o.d"
  "test_hb"
  "test_hb.pdb"
  "test_hb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
