file(REMOVE_RECURSE
  "CMakeFiles/test_cachesim_model.dir/test_cachesim_model.cpp.o"
  "CMakeFiles/test_cachesim_model.dir/test_cachesim_model.cpp.o.d"
  "test_cachesim_model"
  "test_cachesim_model.pdb"
  "test_cachesim_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cachesim_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
