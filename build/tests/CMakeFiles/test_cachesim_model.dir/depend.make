# Empty dependencies file for test_cachesim_model.
# This may be replaced when dependencies are built.
