# Empty compiler generated dependencies file for test_sbll.
# This may be replaced when dependencies are built.
