file(REMOVE_RECURSE
  "CMakeFiles/test_sbll.dir/test_sbll.cpp.o"
  "CMakeFiles/test_sbll.dir/test_sbll.cpp.o.d"
  "test_sbll"
  "test_sbll.pdb"
  "test_sbll[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sbll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
