file(REMOVE_RECURSE
  "CMakeFiles/test_pragma.dir/test_pragma.cpp.o"
  "CMakeFiles/test_pragma.dir/test_pragma.cpp.o.d"
  "test_pragma"
  "test_pragma.pdb"
  "test_pragma[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pragma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
