file(REMOVE_RECURSE
  "CMakeFiles/process_mode.dir/process_mode.cpp.o"
  "CMakeFiles/process_mode.dir/process_mode.cpp.o.d"
  "process_mode"
  "process_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/process_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
