# Empty dependencies file for process_mode.
# This may be replaced when dependencies are built.
