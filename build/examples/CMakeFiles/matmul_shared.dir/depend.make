# Empty dependencies file for matmul_shared.
# This may be replaced when dependencies are built.
