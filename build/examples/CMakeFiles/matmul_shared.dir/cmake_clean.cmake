file(REMOVE_RECURSE
  "CMakeFiles/matmul_shared.dir/matmul_shared.cpp.o"
  "CMakeFiles/matmul_shared.dir/matmul_shared.cpp.o.d"
  "matmul_shared"
  "matmul_shared.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matmul_shared.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
