# Empty compiler generated dependencies file for eligibility_advisor.
# This may be replaced when dependencies are built.
