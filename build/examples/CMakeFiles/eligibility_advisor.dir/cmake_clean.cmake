file(REMOVE_RECURSE
  "CMakeFiles/eligibility_advisor.dir/eligibility_advisor.cpp.o"
  "CMakeFiles/eligibility_advisor.dir/eligibility_advisor.cpp.o.d"
  "eligibility_advisor"
  "eligibility_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eligibility_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
