# Empty compiler generated dependencies file for translate_pragmas.
# This may be replaced when dependencies are built.
