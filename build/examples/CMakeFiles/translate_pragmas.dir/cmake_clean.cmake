file(REMOVE_RECURSE
  "CMakeFiles/translate_pragmas.dir/translate_pragmas.cpp.o"
  "CMakeFiles/translate_pragmas.dir/translate_pragmas.cpp.o.d"
  "translate_pragmas"
  "translate_pragmas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translate_pragmas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
