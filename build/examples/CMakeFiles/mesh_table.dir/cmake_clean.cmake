file(REMOVE_RECURSE
  "CMakeFiles/mesh_table.dir/mesh_table.cpp.o"
  "CMakeFiles/mesh_table.dir/mesh_table.cpp.o.d"
  "mesh_table"
  "mesh_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
