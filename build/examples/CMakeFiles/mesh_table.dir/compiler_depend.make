# Empty compiler generated dependencies file for mesh_table.
# This may be replaced when dependencies are built.
