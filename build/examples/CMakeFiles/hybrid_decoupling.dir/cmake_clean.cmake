file(REMOVE_RECURSE
  "CMakeFiles/hybrid_decoupling.dir/hybrid_decoupling.cpp.o"
  "CMakeFiles/hybrid_decoupling.dir/hybrid_decoupling.cpp.o.d"
  "hybrid_decoupling"
  "hybrid_decoupling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_decoupling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
