# Empty compiler generated dependencies file for hybrid_decoupling.
# This may be replaced when dependencies are built.
