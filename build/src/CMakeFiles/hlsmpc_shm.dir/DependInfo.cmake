
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/shm/arena.cpp" "src/CMakeFiles/hlsmpc_shm.dir/shm/arena.cpp.o" "gcc" "src/CMakeFiles/hlsmpc_shm.dir/shm/arena.cpp.o.d"
  "/root/repo/src/shm/process_node.cpp" "src/CMakeFiles/hlsmpc_shm.dir/shm/process_node.cpp.o" "gcc" "src/CMakeFiles/hlsmpc_shm.dir/shm/process_node.cpp.o.d"
  "/root/repo/src/shm/segment.cpp" "src/CMakeFiles/hlsmpc_shm.dir/shm/segment.cpp.o" "gcc" "src/CMakeFiles/hlsmpc_shm.dir/shm/segment.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
