# Empty compiler generated dependencies file for hlsmpc_shm.
# This may be replaced when dependencies are built.
