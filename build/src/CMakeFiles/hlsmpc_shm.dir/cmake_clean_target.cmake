file(REMOVE_RECURSE
  "libhlsmpc_shm.a"
)
