file(REMOVE_RECURSE
  "CMakeFiles/hlsmpc_shm.dir/shm/arena.cpp.o"
  "CMakeFiles/hlsmpc_shm.dir/shm/arena.cpp.o.d"
  "CMakeFiles/hlsmpc_shm.dir/shm/process_node.cpp.o"
  "CMakeFiles/hlsmpc_shm.dir/shm/process_node.cpp.o.d"
  "CMakeFiles/hlsmpc_shm.dir/shm/segment.cpp.o"
  "CMakeFiles/hlsmpc_shm.dir/shm/segment.cpp.o.d"
  "libhlsmpc_shm.a"
  "libhlsmpc_shm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlsmpc_shm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
