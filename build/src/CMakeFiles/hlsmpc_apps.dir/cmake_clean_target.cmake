file(REMOVE_RECURSE
  "libhlsmpc_apps.a"
)
