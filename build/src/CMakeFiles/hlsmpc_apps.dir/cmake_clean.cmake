file(REMOVE_RECURSE
  "CMakeFiles/hlsmpc_apps.dir/apps/eulermhd/eulermhd.cpp.o"
  "CMakeFiles/hlsmpc_apps.dir/apps/eulermhd/eulermhd.cpp.o.d"
  "CMakeFiles/hlsmpc_apps.dir/apps/gadget/gadget.cpp.o"
  "CMakeFiles/hlsmpc_apps.dir/apps/gadget/gadget.cpp.o.d"
  "CMakeFiles/hlsmpc_apps.dir/apps/matmul/matmul.cpp.o"
  "CMakeFiles/hlsmpc_apps.dir/apps/matmul/matmul.cpp.o.d"
  "CMakeFiles/hlsmpc_apps.dir/apps/meshupdate/mesh_update.cpp.o"
  "CMakeFiles/hlsmpc_apps.dir/apps/meshupdate/mesh_update.cpp.o.d"
  "CMakeFiles/hlsmpc_apps.dir/apps/tachyon/tachyon.cpp.o"
  "CMakeFiles/hlsmpc_apps.dir/apps/tachyon/tachyon.cpp.o.d"
  "libhlsmpc_apps.a"
  "libhlsmpc_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlsmpc_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
