# Empty compiler generated dependencies file for hlsmpc_apps.
# This may be replaced when dependencies are built.
