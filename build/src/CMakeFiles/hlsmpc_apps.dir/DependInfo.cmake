
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/eulermhd/eulermhd.cpp" "src/CMakeFiles/hlsmpc_apps.dir/apps/eulermhd/eulermhd.cpp.o" "gcc" "src/CMakeFiles/hlsmpc_apps.dir/apps/eulermhd/eulermhd.cpp.o.d"
  "/root/repo/src/apps/gadget/gadget.cpp" "src/CMakeFiles/hlsmpc_apps.dir/apps/gadget/gadget.cpp.o" "gcc" "src/CMakeFiles/hlsmpc_apps.dir/apps/gadget/gadget.cpp.o.d"
  "/root/repo/src/apps/matmul/matmul.cpp" "src/CMakeFiles/hlsmpc_apps.dir/apps/matmul/matmul.cpp.o" "gcc" "src/CMakeFiles/hlsmpc_apps.dir/apps/matmul/matmul.cpp.o.d"
  "/root/repo/src/apps/meshupdate/mesh_update.cpp" "src/CMakeFiles/hlsmpc_apps.dir/apps/meshupdate/mesh_update.cpp.o" "gcc" "src/CMakeFiles/hlsmpc_apps.dir/apps/meshupdate/mesh_update.cpp.o.d"
  "/root/repo/src/apps/tachyon/tachyon.cpp" "src/CMakeFiles/hlsmpc_apps.dir/apps/tachyon/tachyon.cpp.o" "gcc" "src/CMakeFiles/hlsmpc_apps.dir/apps/tachyon/tachyon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hlsmpc_mpc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hlsmpc_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hlsmpc_memtrack.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hlsmpc_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hlsmpc_ult.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hlsmpc_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hlsmpc_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
