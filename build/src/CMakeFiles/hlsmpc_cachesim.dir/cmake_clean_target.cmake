file(REMOVE_RECURSE
  "libhlsmpc_cachesim.a"
)
