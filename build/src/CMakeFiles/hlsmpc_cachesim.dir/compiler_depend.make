# Empty compiler generated dependencies file for hlsmpc_cachesim.
# This may be replaced when dependencies are built.
