file(REMOVE_RECURSE
  "CMakeFiles/hlsmpc_cachesim.dir/cachesim/cache.cpp.o"
  "CMakeFiles/hlsmpc_cachesim.dir/cachesim/cache.cpp.o.d"
  "CMakeFiles/hlsmpc_cachesim.dir/cachesim/hierarchy.cpp.o"
  "CMakeFiles/hlsmpc_cachesim.dir/cachesim/hierarchy.cpp.o.d"
  "CMakeFiles/hlsmpc_cachesim.dir/cachesim/runner.cpp.o"
  "CMakeFiles/hlsmpc_cachesim.dir/cachesim/runner.cpp.o.d"
  "libhlsmpc_cachesim.a"
  "libhlsmpc_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlsmpc_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
