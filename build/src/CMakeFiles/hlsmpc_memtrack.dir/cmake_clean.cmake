file(REMOVE_RECURSE
  "CMakeFiles/hlsmpc_memtrack.dir/memtrack/memtrack.cpp.o"
  "CMakeFiles/hlsmpc_memtrack.dir/memtrack/memtrack.cpp.o.d"
  "libhlsmpc_memtrack.a"
  "libhlsmpc_memtrack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlsmpc_memtrack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
