# Empty compiler generated dependencies file for hlsmpc_memtrack.
# This may be replaced when dependencies are built.
