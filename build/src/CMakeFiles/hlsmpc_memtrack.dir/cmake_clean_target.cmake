file(REMOVE_RECURSE
  "libhlsmpc_memtrack.a"
)
