# Empty dependencies file for hlsmpc_mpi.
# This may be replaced when dependencies are built.
