file(REMOVE_RECURSE
  "CMakeFiles/hlsmpc_mpi.dir/mpi/buffers.cpp.o"
  "CMakeFiles/hlsmpc_mpi.dir/mpi/buffers.cpp.o.d"
  "CMakeFiles/hlsmpc_mpi.dir/mpi/collectives.cpp.o"
  "CMakeFiles/hlsmpc_mpi.dir/mpi/collectives.cpp.o.d"
  "CMakeFiles/hlsmpc_mpi.dir/mpi/comm.cpp.o"
  "CMakeFiles/hlsmpc_mpi.dir/mpi/comm.cpp.o.d"
  "CMakeFiles/hlsmpc_mpi.dir/mpi/p2p.cpp.o"
  "CMakeFiles/hlsmpc_mpi.dir/mpi/p2p.cpp.o.d"
  "CMakeFiles/hlsmpc_mpi.dir/mpi/runtime.cpp.o"
  "CMakeFiles/hlsmpc_mpi.dir/mpi/runtime.cpp.o.d"
  "libhlsmpc_mpi.a"
  "libhlsmpc_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlsmpc_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
