file(REMOVE_RECURSE
  "libhlsmpc_mpi.a"
)
