
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpi/buffers.cpp" "src/CMakeFiles/hlsmpc_mpi.dir/mpi/buffers.cpp.o" "gcc" "src/CMakeFiles/hlsmpc_mpi.dir/mpi/buffers.cpp.o.d"
  "/root/repo/src/mpi/collectives.cpp" "src/CMakeFiles/hlsmpc_mpi.dir/mpi/collectives.cpp.o" "gcc" "src/CMakeFiles/hlsmpc_mpi.dir/mpi/collectives.cpp.o.d"
  "/root/repo/src/mpi/comm.cpp" "src/CMakeFiles/hlsmpc_mpi.dir/mpi/comm.cpp.o" "gcc" "src/CMakeFiles/hlsmpc_mpi.dir/mpi/comm.cpp.o.d"
  "/root/repo/src/mpi/p2p.cpp" "src/CMakeFiles/hlsmpc_mpi.dir/mpi/p2p.cpp.o" "gcc" "src/CMakeFiles/hlsmpc_mpi.dir/mpi/p2p.cpp.o.d"
  "/root/repo/src/mpi/runtime.cpp" "src/CMakeFiles/hlsmpc_mpi.dir/mpi/runtime.cpp.o" "gcc" "src/CMakeFiles/hlsmpc_mpi.dir/mpi/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hlsmpc_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hlsmpc_ult.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hlsmpc_memtrack.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
