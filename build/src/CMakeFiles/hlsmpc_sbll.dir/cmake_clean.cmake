file(REMOVE_RECURSE
  "CMakeFiles/hlsmpc_sbll.dir/sbll/page_merge.cpp.o"
  "CMakeFiles/hlsmpc_sbll.dir/sbll/page_merge.cpp.o.d"
  "libhlsmpc_sbll.a"
  "libhlsmpc_sbll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlsmpc_sbll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
