# Empty compiler generated dependencies file for hlsmpc_sbll.
# This may be replaced when dependencies are built.
