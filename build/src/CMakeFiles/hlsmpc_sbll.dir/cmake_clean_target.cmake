file(REMOVE_RECURSE
  "libhlsmpc_sbll.a"
)
