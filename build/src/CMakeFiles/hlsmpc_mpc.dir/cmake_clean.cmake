file(REMOVE_RECURSE
  "CMakeFiles/hlsmpc_mpc.dir/mpc/node.cpp.o"
  "CMakeFiles/hlsmpc_mpc.dir/mpc/node.cpp.o.d"
  "libhlsmpc_mpc.a"
  "libhlsmpc_mpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlsmpc_mpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
