# Empty compiler generated dependencies file for hlsmpc_mpc.
# This may be replaced when dependencies are built.
