file(REMOVE_RECURSE
  "libhlsmpc_mpc.a"
)
