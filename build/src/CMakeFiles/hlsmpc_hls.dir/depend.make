# Empty dependencies file for hlsmpc_hls.
# This may be replaced when dependencies are built.
