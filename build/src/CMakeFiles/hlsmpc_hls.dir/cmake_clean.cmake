file(REMOVE_RECURSE
  "CMakeFiles/hlsmpc_hls.dir/hls/registry.cpp.o"
  "CMakeFiles/hlsmpc_hls.dir/hls/registry.cpp.o.d"
  "CMakeFiles/hlsmpc_hls.dir/hls/runtime.cpp.o"
  "CMakeFiles/hlsmpc_hls.dir/hls/runtime.cpp.o.d"
  "CMakeFiles/hlsmpc_hls.dir/hls/storage.cpp.o"
  "CMakeFiles/hlsmpc_hls.dir/hls/storage.cpp.o.d"
  "CMakeFiles/hlsmpc_hls.dir/hls/sync.cpp.o"
  "CMakeFiles/hlsmpc_hls.dir/hls/sync.cpp.o.d"
  "libhlsmpc_hls.a"
  "libhlsmpc_hls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlsmpc_hls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
