
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hls/registry.cpp" "src/CMakeFiles/hlsmpc_hls.dir/hls/registry.cpp.o" "gcc" "src/CMakeFiles/hlsmpc_hls.dir/hls/registry.cpp.o.d"
  "/root/repo/src/hls/runtime.cpp" "src/CMakeFiles/hlsmpc_hls.dir/hls/runtime.cpp.o" "gcc" "src/CMakeFiles/hlsmpc_hls.dir/hls/runtime.cpp.o.d"
  "/root/repo/src/hls/storage.cpp" "src/CMakeFiles/hlsmpc_hls.dir/hls/storage.cpp.o" "gcc" "src/CMakeFiles/hlsmpc_hls.dir/hls/storage.cpp.o.d"
  "/root/repo/src/hls/sync.cpp" "src/CMakeFiles/hlsmpc_hls.dir/hls/sync.cpp.o" "gcc" "src/CMakeFiles/hlsmpc_hls.dir/hls/sync.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hlsmpc_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hlsmpc_memtrack.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
