file(REMOVE_RECURSE
  "libhlsmpc_hls.a"
)
