file(REMOVE_RECURSE
  "libhlsmpc_ult.a"
)
