# Empty compiler generated dependencies file for hlsmpc_ult.
# This may be replaced when dependencies are built.
