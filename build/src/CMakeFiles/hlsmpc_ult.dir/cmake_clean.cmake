file(REMOVE_RECURSE
  "CMakeFiles/hlsmpc_ult.dir/ult/fiber.cpp.o"
  "CMakeFiles/hlsmpc_ult.dir/ult/fiber.cpp.o.d"
  "CMakeFiles/hlsmpc_ult.dir/ult/scheduler.cpp.o"
  "CMakeFiles/hlsmpc_ult.dir/ult/scheduler.cpp.o.d"
  "libhlsmpc_ult.a"
  "libhlsmpc_ult.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlsmpc_ult.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
