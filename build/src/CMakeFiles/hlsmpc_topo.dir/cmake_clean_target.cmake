file(REMOVE_RECURSE
  "libhlsmpc_topo.a"
)
