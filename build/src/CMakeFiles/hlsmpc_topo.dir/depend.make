# Empty dependencies file for hlsmpc_topo.
# This may be replaced when dependencies are built.
