file(REMOVE_RECURSE
  "CMakeFiles/hlsmpc_topo.dir/topo/scope_map.cpp.o"
  "CMakeFiles/hlsmpc_topo.dir/topo/scope_map.cpp.o.d"
  "CMakeFiles/hlsmpc_topo.dir/topo/topology.cpp.o"
  "CMakeFiles/hlsmpc_topo.dir/topo/topology.cpp.o.d"
  "libhlsmpc_topo.a"
  "libhlsmpc_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlsmpc_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
