file(REMOVE_RECURSE
  "CMakeFiles/hlsmpc_pragma.dir/pragma/lexer.cpp.o"
  "CMakeFiles/hlsmpc_pragma.dir/pragma/lexer.cpp.o.d"
  "CMakeFiles/hlsmpc_pragma.dir/pragma/parser.cpp.o"
  "CMakeFiles/hlsmpc_pragma.dir/pragma/parser.cpp.o.d"
  "CMakeFiles/hlsmpc_pragma.dir/pragma/rewriter.cpp.o"
  "CMakeFiles/hlsmpc_pragma.dir/pragma/rewriter.cpp.o.d"
  "libhlsmpc_pragma.a"
  "libhlsmpc_pragma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlsmpc_pragma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
