file(REMOVE_RECURSE
  "libhlsmpc_pragma.a"
)
