
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pragma/lexer.cpp" "src/CMakeFiles/hlsmpc_pragma.dir/pragma/lexer.cpp.o" "gcc" "src/CMakeFiles/hlsmpc_pragma.dir/pragma/lexer.cpp.o.d"
  "/root/repo/src/pragma/parser.cpp" "src/CMakeFiles/hlsmpc_pragma.dir/pragma/parser.cpp.o" "gcc" "src/CMakeFiles/hlsmpc_pragma.dir/pragma/parser.cpp.o.d"
  "/root/repo/src/pragma/rewriter.cpp" "src/CMakeFiles/hlsmpc_pragma.dir/pragma/rewriter.cpp.o" "gcc" "src/CMakeFiles/hlsmpc_pragma.dir/pragma/rewriter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
