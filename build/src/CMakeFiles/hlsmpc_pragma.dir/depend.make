# Empty dependencies file for hlsmpc_pragma.
# This may be replaced when dependencies are built.
