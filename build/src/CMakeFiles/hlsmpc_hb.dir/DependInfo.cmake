
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hb/advisor.cpp" "src/CMakeFiles/hlsmpc_hb.dir/hb/advisor.cpp.o" "gcc" "src/CMakeFiles/hlsmpc_hb.dir/hb/advisor.cpp.o.d"
  "/root/repo/src/hb/analyzer.cpp" "src/CMakeFiles/hlsmpc_hb.dir/hb/analyzer.cpp.o" "gcc" "src/CMakeFiles/hlsmpc_hb.dir/hb/analyzer.cpp.o.d"
  "/root/repo/src/hb/runtime_tracer.cpp" "src/CMakeFiles/hlsmpc_hb.dir/hb/runtime_tracer.cpp.o" "gcc" "src/CMakeFiles/hlsmpc_hb.dir/hb/runtime_tracer.cpp.o.d"
  "/root/repo/src/hb/trace.cpp" "src/CMakeFiles/hlsmpc_hb.dir/hb/trace.cpp.o" "gcc" "src/CMakeFiles/hlsmpc_hb.dir/hb/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
