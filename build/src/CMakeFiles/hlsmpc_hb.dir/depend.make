# Empty dependencies file for hlsmpc_hb.
# This may be replaced when dependencies are built.
