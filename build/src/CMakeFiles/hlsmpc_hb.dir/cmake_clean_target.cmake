file(REMOVE_RECURSE
  "libhlsmpc_hb.a"
)
