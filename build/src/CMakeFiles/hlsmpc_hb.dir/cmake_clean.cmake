file(REMOVE_RECURSE
  "CMakeFiles/hlsmpc_hb.dir/hb/advisor.cpp.o"
  "CMakeFiles/hlsmpc_hb.dir/hb/advisor.cpp.o.d"
  "CMakeFiles/hlsmpc_hb.dir/hb/analyzer.cpp.o"
  "CMakeFiles/hlsmpc_hb.dir/hb/analyzer.cpp.o.d"
  "CMakeFiles/hlsmpc_hb.dir/hb/runtime_tracer.cpp.o"
  "CMakeFiles/hlsmpc_hb.dir/hb/runtime_tracer.cpp.o.d"
  "CMakeFiles/hlsmpc_hb.dir/hb/trace.cpp.o"
  "CMakeFiles/hlsmpc_hb.dir/hb/trace.cpp.o.d"
  "libhlsmpc_hb.a"
  "libhlsmpc_hb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlsmpc_hb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
