# Empty dependencies file for bench_table4_tachyon.
# This may be replaced when dependencies are built.
