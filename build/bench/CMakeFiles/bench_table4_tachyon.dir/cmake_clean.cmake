file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_tachyon.dir/bench_table4_tachyon.cpp.o"
  "CMakeFiles/bench_table4_tachyon.dir/bench_table4_tachyon.cpp.o.d"
  "bench_table4_tachyon"
  "bench_table4_tachyon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_tachyon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
