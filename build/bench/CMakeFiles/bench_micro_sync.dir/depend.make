# Empty dependencies file for bench_micro_sync.
# This may be replaced when dependencies are built.
