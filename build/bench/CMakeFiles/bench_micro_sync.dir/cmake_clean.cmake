file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_sync.dir/bench_micro_sync.cpp.o"
  "CMakeFiles/bench_micro_sync.dir/bench_micro_sync.cpp.o.d"
  "bench_micro_sync"
  "bench_micro_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
