file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_eulermhd.dir/bench_table2_eulermhd.cpp.o"
  "CMakeFiles/bench_table2_eulermhd.dir/bench_table2_eulermhd.cpp.o.d"
  "bench_table2_eulermhd"
  "bench_table2_eulermhd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_eulermhd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
