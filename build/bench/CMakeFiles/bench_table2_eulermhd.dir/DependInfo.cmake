
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2_eulermhd.cpp" "bench/CMakeFiles/bench_table2_eulermhd.dir/bench_table2_eulermhd.cpp.o" "gcc" "bench/CMakeFiles/bench_table2_eulermhd.dir/bench_table2_eulermhd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hlsmpc_shm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hlsmpc_hb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hlsmpc_pragma.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hlsmpc_sbll.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hlsmpc_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hlsmpc_mpc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hlsmpc_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hlsmpc_ult.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hlsmpc_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hlsmpc_memtrack.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hlsmpc_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hlsmpc_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
