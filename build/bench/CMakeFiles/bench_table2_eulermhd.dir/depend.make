# Empty dependencies file for bench_table2_eulermhd.
# This may be replaced when dependencies are built.
