# Empty compiler generated dependencies file for bench_table3_gadget.
# This may be replaced when dependencies are built.
