# Empty dependencies file for bench_ablation_scopes.
# This may be replaced when dependencies are built.
