file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_scopes.dir/bench_ablation_scopes.cpp.o"
  "CMakeFiles/bench_ablation_scopes.dir/bench_ablation_scopes.cpp.o.d"
  "bench_ablation_scopes"
  "bench_ablation_scopes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_scopes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
