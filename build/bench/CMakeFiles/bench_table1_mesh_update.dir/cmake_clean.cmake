file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_mesh_update.dir/bench_table1_mesh_update.cpp.o"
  "CMakeFiles/bench_table1_mesh_update.dir/bench_table1_mesh_update.cpp.o.d"
  "bench_table1_mesh_update"
  "bench_table1_mesh_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_mesh_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
