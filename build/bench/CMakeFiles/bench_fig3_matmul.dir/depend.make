# Empty dependencies file for bench_fig3_matmul.
# This may be replaced when dependencies are built.
