file(REMOVE_RECURSE
  "CMakeFiles/bench_sbll_vs_hls.dir/bench_sbll_vs_hls.cpp.o"
  "CMakeFiles/bench_sbll_vs_hls.dir/bench_sbll_vs_hls.cpp.o.d"
  "bench_sbll_vs_hls"
  "bench_sbll_vs_hls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sbll_vs_hls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
