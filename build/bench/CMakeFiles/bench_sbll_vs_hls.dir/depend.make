# Empty dependencies file for bench_sbll_vs_hls.
# This may be replaced when dependencies are built.
