// One-sided RMA engine benchmarks.
//
// The put/get path is the paper's same-node claim in its smallest form:
// a transfer into another rank's exposed region is one memmove plus an
// epoch check, so BM_Put/BM_Get must track BM_RawMemcpy (the acceptance
// gate holds the 64 KB put within 2x of the raw copy loop). These run on
// a standalone two-rank window driven from one thread — no executor, no
// scheduler noise, just the engine.
//
// BM_HaloExchangeStep is the epoch cost in context: 8 fiber ranks doing
// the halo_exchange example's round (two boundary puts + two fences),
// reported as rank 0's wall time per round (manual time; job spawn/join
// excluded), the way bench_coll measures collectives.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <vector>

#include "mpi/rma.hpp"
#include "mpi/runtime.hpp"
#include "topo/topology.hpp"

using namespace hlsmpc;
using ult::TaskContext;

namespace {

constexpr int kHaloRanks = 8;
constexpr int kHaloCells = 64;  // doubles per rank, plus 2 halo slots
constexpr int kRounds = 64;
constexpr int kWarmup = 4;

void BM_RawMemcpy(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> src(bytes, 0xA5);
  std::vector<std::uint8_t> dst(bytes);
  for (auto _ : state) {
    std::memcpy(dst.data(), src.data(), bytes);
    benchmark::DoNotOptimize(dst.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}

void BM_Put(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> src(bytes, 0xA5);
  std::vector<std::uint8_t> mine(64), theirs(bytes);
  mpi::rma::Win win({{mine.data(), mine.size()}, {theirs.data(), bytes}});
  ult::ThreadTaskContext ctx;
  for (auto _ : state) {
    win.put(ctx, 0, src.data(), bytes, 1, 0);
    benchmark::DoNotOptimize(theirs.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}

void BM_Get(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> dst(bytes);
  std::vector<std::uint8_t> mine(64), theirs(bytes);
  mpi::rma::Win win({{mine.data(), mine.size()}, {theirs.data(), bytes}});
  ult::ThreadTaskContext ctx;
  for (auto _ : state) {
    win.get(ctx, 0, dst.data(), bytes, 1, 0);
    benchmark::DoNotOptimize(dst.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}

void BM_HaloExchangeStep(benchmark::State& state) {
  const topo::Machine machine = topo::Machine::nehalem_ex(2);
  mpi::Options o;
  o.nranks = kHaloRanks;
  o.executor = mpi::ExecutorKind::fiber;
  for (auto _ : state) {
    mpi::Runtime rt(machine, o);
    std::atomic<std::int64_t> ns{0};
    std::vector<std::vector<double>> strips(
        kHaloRanks, std::vector<double>(kHaloCells + 2, 1.0));
    rt.run([&](mpi::Comm& world, TaskContext& ctx) {
      const int me = world.rank(ctx);
      auto& u = strips[static_cast<std::size_t>(me)];
      mpi::rma::Win& win =
          world.win_create(ctx, u.data(), u.size() * sizeof(double));
      const int left = me > 0 ? me - 1 : -1;
      const int right = me + 1 < kHaloRanks ? me + 1 : -1;
      const auto round = [&] {
        if (left >= 0) {
          win.put(ctx, me, &u[1], sizeof(double), left,
                  (kHaloCells + 1) * sizeof(double));
        }
        if (right >= 0) {
          win.put(ctx, me, &u[kHaloCells], sizeof(double), right, 0);
        }
        win.fence(ctx, me);  // halos published
        u[1] += u[0];
        u[kHaloCells] += u[kHaloCells + 1];
        win.fence(ctx, me);  // halos stable for the next round
      };
      win.fence(ctx, me);
      for (int k = 0; k < kWarmup; ++k) round();
      world.barrier(ctx);
      const auto t0 = std::chrono::steady_clock::now();
      for (int k = 0; k < kRounds; ++k) round();
      const auto t1 = std::chrono::steady_clock::now();
      if (me == 0) {
        ns.store(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                     .count());
      }
      world.win_free(ctx, win);
    });
    state.SetIterationTime(static_cast<double>(ns.load()) * 1e-9 / kRounds);
  }
}

}  // namespace

BENCHMARK(BM_RawMemcpy)->Arg(256)->Arg(4096)->Arg(65536);
BENCHMARK(BM_Put)->Arg(256)->Arg(4096)->Arg(65536);
BENCHMARK(BM_Get)->Arg(256)->Arg(4096)->Arg(65536);
BENCHMARK(BM_HaloExchangeStep)->UseManualTime();

// main: bench/gbench_main.cpp (stamps hlsmpc_build_type into the context)
