// Recovery-path benchmarks: what a failure costs, and what insurance
// costs when nothing fails.
//
// Two acceptance bounds, both enforced by check_recover_ratio.py as
// within-run ratios in the PR 7 noisy-host style (interleaved reps,
// gate on each side's MINIMUM — external load only ever inflates a
// measurement, so the min over several interleaved reps is the
// machine-intrinsic cost):
//
//   - BM_RestoreVsMemcpy: rehydrating a 4 MiB scope checkpoint from the
//     page cache is file open + header/CRC walk + one copy into
//     storage, so it must stay within 4x of a raw memcpy of the same
//     payload (counter restore_ratio_best).
//   - BM_ShrinkVsBarrier: a full shrink on a 4-node x 2-rank cluster —
//     node quiesce, leader agreement over the fabric, view install,
//     engine reset, pod broadcast — must stay within 50x of one
//     cluster barrier on the same topology (counter
//     shrink_ratio_best). Shrink is off the steady-state path, but 50
//     barriers is where "recover" would stop beating "restart".
//
// The committed BENCH_recover.json baseline holds only the
// bandwidth-bound read-side points cross-run (BM_CheckpointRestore and
// BM_CkptMemcpy at 4 MiB); BM_CheckpointSave fsyncs — its absolute
// number belongs to the host's storage stack, not this code — and the
// barrier/shrink points are microsecond-scale, so all three are
// candidate-only, covered by the ratio gate instead.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "hls/checkpoint.hpp"
#include "hls/hls.hpp"
#include "mpi/cluster.hpp"
#include "topo/topology.hpp"

using namespace hlsmpc;
using ult::TaskContext;

namespace {

// ---- checkpoint/restore bandwidth ----

std::string fresh_dir(const std::string& name) {
  const char* base = std::getenv("TMPDIR");
  const std::string dir =
      std::string(base != nullptr ? base : "/tmp") + "/" + name;
  std::system(("rm -rf '" + dir + "'").c_str());
  return dir;
}

/// One node-scope array of `bytes` — a single materialized region, so
/// the measured payload is the requested size, not a scope sweep.
hls::VarHandle register_blob(hls::Runtime& rt, std::size_t bytes) {
  hls::ModuleBuilder mb(rt.registry(), "bench");
  auto blob = hls::add_array<std::uint8_t>(mb, "blob", bytes,
                                           topo::node_scope());
  mb.commit();
  return blob.handle();
}

void fill_blob(hls::Runtime& rt, const hls::VarHandle& h) {
  auto* p = static_cast<std::uint8_t*>(rt.storage().get_addr(h, 0));
  for (std::size_t i = 0; i < h.size; ++i) {
    p[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
}

void BM_CheckpointSave(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const topo::Machine m = topo::Machine::nehalem_ex(2);
  hls::Runtime rt(m, 1);
  const hls::VarHandle h = register_blob(rt, bytes);
  fill_blob(rt, h);
  hls::CheckpointStore store({fresh_dir("bench_recover_save")});
  for (auto _ : state) {
    rt.checkpoint(store, topo::node_scope());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_CheckpointSave)->Arg(65536)->Arg(4 << 20);

void BM_CheckpointRestore(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const topo::Machine m = topo::Machine::nehalem_ex(2);
  hls::Runtime rt(m, 1);
  const hls::VarHandle h = register_blob(rt, bytes);
  fill_blob(rt, h);
  hls::CheckpointStore store({fresh_dir("bench_recover_restore")});
  rt.checkpoint(store, topo::node_scope());
  for (auto _ : state) {
    rt.restore(store, topo::node_scope());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_CheckpointRestore)->Arg(65536)->Arg(4 << 20);

void BM_CkptMemcpy(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> src(bytes, 0xA5);
  std::vector<std::uint8_t> dst(bytes);
  for (auto _ : state) {
    std::memcpy(dst.data(), src.data(), bytes);
    benchmark::DoNotOptimize(dst.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_CkptMemcpy)->Arg(65536)->Arg(4 << 20);

/// The gated bound, interleaved rep by rep: seconds per 4 MiB restore
/// vs seconds per 4 MiB memcpy, ratio of minimums.
void BM_RestoreVsMemcpy(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  constexpr int kReps = 7;
  constexpr int kRounds = 4;
  const topo::Machine m = topo::Machine::nehalem_ex(2);
  hls::Runtime rt(m, 1);
  const hls::VarHandle h = register_blob(rt, bytes);
  fill_blob(rt, h);
  hls::CheckpointStore store({fresh_dir("bench_recover_ratio")});
  rt.checkpoint(store, topo::node_scope());
  std::vector<std::uint8_t> src(bytes, 0xA5);
  std::vector<std::uint8_t> dst(bytes);
  for (auto _ : state) {
    double restore_min = std::numeric_limits<double>::infinity();
    double memcpy_min = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < kReps; ++rep) {
      auto t0 = std::chrono::steady_clock::now();
      for (int k = 0; k < kRounds; ++k) {
        std::memcpy(dst.data(), src.data(), bytes);
        benchmark::DoNotOptimize(dst.data());
        benchmark::ClobberMemory();
      }
      auto t1 = std::chrono::steady_clock::now();
      for (int k = 0; k < kRounds; ++k) {
        rt.restore(store, topo::node_scope());
        benchmark::ClobberMemory();
      }
      auto t2 = std::chrono::steady_clock::now();
      const double mc =
          std::chrono::duration<double>(t1 - t0).count() / kRounds;
      const double rs =
          std::chrono::duration<double>(t2 - t1).count() / kRounds;
      memcpy_min = std::min(memcpy_min, mc);
      restore_min = std::min(restore_min, rs);
    }
    state.SetIterationTime(restore_min);
    state.counters["restore_us"] = benchmark::Counter(restore_min * 1e6);
    state.counters["memcpy_us"] = benchmark::Counter(memcpy_min * 1e6);
    state.counters["restore_ratio_best"] =
        benchmark::Counter(restore_min / memcpy_min);
  }
}
BENCHMARK(BM_RestoreVsMemcpy)->Arg(4 << 20)->UseManualTime()->Iterations(1);

// ---- shrink latency ----

constexpr int kNodes = 4;
constexpr int kRpn = 2;

mpi::ClusterOptions cluster_opts() {
  mpi::ClusterOptions o;
  o.nnodes = kNodes;
  o.ranks_per_node = kRpn;
  // Fiber executor, like bench_coll: cooperative scheduling on carrier
  // threads keeps the numbers about the protocol's data movement, not
  // kernel scheduler thrash on oversubscribed CI hosts.
  o.executor = mpi::ExecutorKind::fiber;
  return o;
}

/// Seconds per cluster barrier round, one freshly booted cluster.
double barrier_round_seconds(int rounds) {
  mpi::SimCluster cluster(cluster_opts());
  std::atomic<std::int64_t> ns{0};
  cluster.run([&](mpi::ClusterComm& comm, TaskContext& ctx) {
    for (int k = 0; k < 4; ++k) comm.barrier(ctx);
    const auto t0 = std::chrono::steady_clock::now();
    for (int k = 0; k < rounds; ++k) comm.barrier(ctx);
    const auto t1 = std::chrono::steady_clock::now();
    if (comm.rank(ctx) == 0) {
      ns.store(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                   .count());
    }
  });
  return static_cast<double>(ns.load()) * 1e-9 / rounds;
}

/// Seconds for one shrink() excluding a killed node, one freshly booted
/// cluster (a shrink rebuilds the view, so it cannot repeat in-run).
/// Measured on global rank 0 from the post-unwind entry to the rebuilt
/// communicator: quiesce barrier, leader agreement over the fabric,
/// view install + engine reset, pod broadcast.
double shrink_seconds() {
  mpi::SimCluster cluster(cluster_opts());
  const int victim = kNodes - 1;
  std::atomic<std::int64_t> ns{0};
  cluster.run([&](mpi::ClusterComm& comm, TaskContext& ctx) {
    const int g = comm.rank(ctx);
    if (comm.node_of(g) == victim) {
      if (comm.local_of(g) == 0) comm.fabric().kill_node(victim);
      return;
    }
    try {
      comm.barrier(ctx);
    } catch (const mpi::NodeDeadError&) {
    }
    const auto t0 = std::chrono::steady_clock::now();
    comm.shrink(ctx);
    const auto t1 = std::chrono::steady_clock::now();
    if (g == 0) {
      ns.store(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                   .count());
    }
  });
  return static_cast<double>(ns.load()) * 1e-9;
}

void BM_ClusterBarrier(benchmark::State& state) {
  constexpr int kRounds = 64;
  for (auto _ : state) {
    state.SetIterationTime(barrier_round_seconds(kRounds));
  }
}
BENCHMARK(BM_ClusterBarrier)->UseManualTime()->Iterations(3);

void BM_ClusterShrink(benchmark::State& state) {
  for (auto _ : state) {
    state.SetIterationTime(shrink_seconds());
  }
}
BENCHMARK(BM_ClusterShrink)->UseManualTime()->Iterations(3);

/// The gated bound, interleaved rep by rep: one shrink vs one barrier
/// round on the same 4x2 topology, ratio of minimums.
void BM_ShrinkVsBarrier(benchmark::State& state) {
  constexpr int kReps = 5;
  constexpr int kRounds = 64;
  for (auto _ : state) {
    double barrier_min = std::numeric_limits<double>::infinity();
    double shrink_min = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < kReps; ++rep) {
      barrier_min = std::min(barrier_min, barrier_round_seconds(kRounds));
      shrink_min = std::min(shrink_min, shrink_seconds());
    }
    state.SetIterationTime(shrink_min);
    state.counters["shrink_us"] = benchmark::Counter(shrink_min * 1e6);
    state.counters["barrier_us"] = benchmark::Counter(barrier_min * 1e6);
    state.counters["shrink_ratio_best"] =
        benchmark::Counter(shrink_min / barrier_min);
  }
}
BENCHMARK(BM_ShrinkVsBarrier)->UseManualTime()->Iterations(1);

}  // namespace

// main: bench/gbench_main.cpp (stamps hlsmpc_build_type into the context)
