// Shared main for the google-benchmark binaries. The stock
// library_build_type context key reports how the *benchmark library* was
// compiled — the system package here is a debug build, so it says "debug"
// no matter what flags this repo builds with. Stamp the build type of the
// benchmark binary itself so bench/compare.py can refuse to gate timings
// from genuinely unoptimized builds without tripping on the library's.
#include <benchmark/benchmark.h>

int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("hlsmpc_build_type", "release");
#else
  benchmark::AddCustomContext("hlsmpc_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
