#!/usr/bin/env python3
"""Diff two benchmark JSON runs and flag regressions.

Usage: compare.py BASELINE.json CANDIDATE.json [--threshold PCT]

Accepts google-benchmark's --benchmark_format=json output
(bench_micro_sync) and bench_fig3_matmul's --json output. Benchmarks are
matched by "name"; for each name present in both runs the script prints
the relative change of its metric:

  - "real_time" (google-benchmark): lower is better;
  - "perf" (fig3, flops/cycle): higher is better.

A change worse than --threshold (default 10%) is flagged as a REGRESSION
and makes the script exit 1, so it can gate a CI job:

  ./build-bench/bench/bench_micro_sync --benchmark_format=json > new.json
  python3 bench/compare.py BENCH_micro_sync.json new.json

A baseline benchmark missing from the candidate is an error too (a
renamed or dropped benchmark silently passing is how gates rot);
--allow-missing downgrades it to a note. A file that does not look like
a benchmark run at all (no "benchmarks" array, or entries without the
expected metric fields) exits 2.

A run from an unoptimized build exits 2 as well: timings from -O0 code
gate nothing. The binaries stamp "hlsmpc_build_type" into the run
context (see bench/gbench_main.cpp — the stock "library_build_type" key
reports how the *benchmark library* was compiled, which on hosts with a
debug-built system package says "debug" for every run); when the stamp
is absent, library_build_type is the fallback, so old baselines recorded
before the stamp existed are rejected until regenerated. Runs without
any "context" object (fig3's counter format) skip the check.

Observability counters (bench_micro_sync emits them as user counters,
fig3 as a "counters" object) are compared when a benchmark carries them
in both runs; drift is reported but only fails with --check-counters.
"""

import argparse
import json
import sys


class SchemaError(Exception):
    pass


# google-benchmark's own per-run fields; every other numeric field is a
# user counter (state.counters[...]).
_GBENCH_FIELDS = {
    "name", "run_name", "run_type", "family_index",
    "per_family_instance_index", "repetitions", "repetition_index",
    "threads", "iterations", "real_time", "cpu_time", "time_unit",
    "aggregate_name", "aggregate_unit", "big_o", "rms",
    "bytes_per_second", "items_per_second",
}


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or not isinstance(
            doc.get("benchmarks"), list):
        raise SchemaError(f"{path}: no \"benchmarks\" array — not a "
                          "benchmark run")
    ctx = doc.get("context")
    if isinstance(ctx, dict):
        build = ctx.get("hlsmpc_build_type", ctx.get("library_build_type"))
        if build == "debug":
            raise SchemaError(
                f"{path}: context reports a debug build — unoptimized "
                "timings cannot serve as a baseline or candidate "
                "(rebuild with the bench preset)")
    metrics = {}
    counters = {}
    for b in doc["benchmarks"]:
        if not isinstance(b, dict):
            raise SchemaError(f"{path}: non-object entry in \"benchmarks\"")
        name = b.get("name")
        if name is None or b.get("run_type") == "aggregate":
            continue
        if "real_time" in b:
            metrics[name] = ("real_time", float(b["real_time"]), False)
            ctr = {k: float(v) for k, v in b.items()
                   if k not in _GBENCH_FIELDS
                   and isinstance(v, (int, float))}
        elif "perf" in b:
            metrics[name] = ("perf", float(b["perf"]), True)
            ctr = {k: float(v) for k, v in b.get("counters", {}).items()
                   if isinstance(v, (int, float))}
        else:
            raise SchemaError(f"{path}: benchmark \"{name}\" has neither "
                              "\"real_time\" nor \"perf\"")
        if ctr:
            counters[name] = ctr
    if not metrics:
        raise SchemaError(f"{path}: \"benchmarks\" array holds no "
                          "comparable entries")
    return metrics, counters


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="regression threshold in percent (default 10)")
    ap.add_argument("--allow-missing", action="store_true",
                    help="baseline benchmarks absent from the candidate "
                         "are a note, not an error")
    ap.add_argument("--check-counters", action="store_true",
                    help="counter drift between runs is an error")
    args = ap.parse_args()

    try:
        base, base_ctr = load(args.baseline)
        cand, cand_ctr = load(args.candidate)
    except (OSError, json.JSONDecodeError, SchemaError) as e:
        print(f"compare.py: {e}", file=sys.stderr)
        return 2
    common = [n for n in base if n in cand]
    if not common:
        print("compare.py: no common benchmark names between the two runs",
              file=sys.stderr)
        return 2

    failures = []
    regressions = []
    width = max(len(n) for n in common)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'candidate':>12}  "
          f"{'change':>8}")
    for name in common:
        metric, old, higher_better = base[name]
        cand_metric, new, _ = cand[name]
        if cand_metric != metric:
            print(f"{name:<{width}}  metric mismatch "
                  f"({metric} vs {cand_metric})")
            failures.append(f"{name}: metric changed {metric} -> "
                            f"{cand_metric}")
            continue
        if old == 0:
            print(f"{name:<{width}}  baseline is zero, skipped")
            continue
        # Normalize so positive pct always means "got worse".
        pct = ((old - new) / old if higher_better else (new - old) / old) * 100
        flag = ""
        if pct > args.threshold:
            flag = "  REGRESSION"
            regressions.append((name, pct))
        elif pct < -args.threshold:
            flag = "  improved"
        print(f"{name:<{width}}  {old:>12.3f}  {new:>12.3f}  {pct:>+7.1f}%"
              f"{flag}")

    drifted = []
    for name in common:
        shared = sorted(set(base_ctr.get(name, {}))
                        & set(cand_ctr.get(name, {})))
        for key in shared:
            old, new = base_ctr[name][key], cand_ctr[name][key]
            if old != new:
                drifted.append(f"{name}.{key}: {old:g} -> {new:g}")
    if drifted:
        print(f"\ncounter drift ({len(drifted)}):")
        for d in drifted:
            print(f"  {d}")
        if args.check_counters:
            failures.extend(drifted)

    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))
    if only_base:
        if args.allow_missing:
            print(f"only in baseline (allowed): {', '.join(only_base)}")
        else:
            print(f"MISSING from candidate: {', '.join(only_base)}",
                  file=sys.stderr)
            failures.extend(f"{n}: missing from candidate"
                            for n in only_base)
    if only_cand:
        print(f"only in candidate: {', '.join(only_cand)}")

    if regressions:
        print(f"\n{len(regressions)} regression(s) worse than "
              f"{args.threshold:.0f}%:", file=sys.stderr)
        for name, pct in regressions:
            print(f"  {name}: {pct:+.1f}%", file=sys.stderr)
    if failures:
        print(f"{len(failures)} other failure(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
    if regressions or failures:
        return 1
    print(f"\nno regressions worse than {args.threshold:.0f}% "
          f"({len(common)} benchmarks compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
