#!/usr/bin/env python3
"""Diff two benchmark JSON runs and flag regressions.

Usage: compare.py BASELINE.json CANDIDATE.json [--threshold PCT]

Accepts google-benchmark's --benchmark_format=json output
(bench_micro_sync) and bench_fig3_matmul's --json output. Benchmarks are
matched by "name"; for each name present in both runs the script prints
the relative change of its metric:

  - "real_time" (google-benchmark): lower is better;
  - "perf" (fig3, flops/cycle): higher is better.

A change worse than --threshold (default 10%) is flagged as a REGRESSION
and makes the script exit nonzero, so it can gate a CI job:

  ./build-bench/bench/bench_micro_sync --benchmark_format=json > new.json
  python3 bench/compare.py BENCH_micro_sync.json new.json
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        name = b.get("name")
        if name is None or b.get("run_type") == "aggregate":
            continue
        if "real_time" in b:
            out[name] = ("real_time", float(b["real_time"]), False)
        elif "perf" in b:
            out[name] = ("perf", float(b["perf"]), True)
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="regression threshold in percent (default 10)")
    args = ap.parse_args()

    try:
        base = load(args.baseline)
        cand = load(args.candidate)
    except (OSError, json.JSONDecodeError) as e:
        print(f"compare.py: {e}", file=sys.stderr)
        return 2
    common = [n for n in base if n in cand]
    if not common:
        print("compare.py: no common benchmark names between the two runs",
              file=sys.stderr)
        return 2

    regressions = []
    width = max(len(n) for n in common)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'candidate':>12}  "
          f"{'change':>8}")
    for name in common:
        metric, old, higher_better = base[name]
        cand_metric, new, _ = cand[name]
        if cand_metric != metric:
            print(f"{name:<{width}}  metric mismatch "
                  f"({metric} vs {cand_metric}), skipped")
            continue
        if old == 0:
            print(f"{name:<{width}}  baseline is zero, skipped")
            continue
        # Normalize so positive pct always means "got worse".
        pct = ((old - new) / old if higher_better else (new - old) / old) * 100
        flag = ""
        if pct > args.threshold:
            flag = "  REGRESSION"
            regressions.append((name, pct))
        elif pct < -args.threshold:
            flag = "  improved"
        print(f"{name:<{width}}  {old:>12.3f}  {new:>12.3f}  {pct:>+7.1f}%"
              f"{flag}")

    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))
    if only_base:
        print(f"only in baseline: {', '.join(only_base)}")
    if only_cand:
        print(f"only in candidate: {', '.join(only_cand)}")

    if regressions:
        print(f"\n{len(regressions)} regression(s) worse than "
              f"{args.threshold:.0f}%:", file=sys.stderr)
        for name, pct in regressions:
            print(f"  {name}: {pct:+.1f}%", file=sys.stderr)
        return 1
    print(f"\nno regressions worse than {args.threshold:.0f}% "
          f"({len(common)} benchmarks compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
