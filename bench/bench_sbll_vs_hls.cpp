// Quantifies the paper's §VI comparison with SBLLmalloc: automatic page
// merging reaches a similar steady-state footprint for read-only shared
// data, but (a) pays scan + copy-on-write overhead, (b) loses sharing at
// page granularity, and (c) collapses badly when the shared data is
// updated every step — while HLS with a `single` keeps one copy at zero
// overhead and lets the user pick the scope.
//
// Workload: the mesh-update app's memory structure — an 8-rank node, one
// shared table, one private mesh per rank — over T timesteps with one
// scanner pass per step.
//
// Usage: bench_sbll_vs_hls
#include <cstdio>

#include "sbll/page_merge.hpp"

using namespace hlsmpc;

namespace {

struct Outcome {
  double avg_mb;
  std::uint64_t overhead_cycles;
};

Outcome run_sbll(bool update_table, std::size_t table_bytes,
                 std::size_t mesh_bytes, int steps) {
  sbll::PageMergeModel m;
  const int table = m.add_region(table_bytes, 8);
  const int mesh = m.add_region(mesh_bytes, 8);

  double sum_mb = 0;
  for (int step = 0; step < steps; ++step) {
    if (update_table && step > 0) {
      // The SPMD update: every rank rewrites its copy identically.
      for (int rank = 0; rank < 8; ++rank) {
        m.write(table, rank, 0, table_bytes, 100 + step, false);
      }
    }
    // Each rank updates its own mesh (rank-dependent content).
    for (int rank = 0; rank < 8; ++rank) {
      m.write(mesh, rank, 0, mesh_bytes, 100 + step, true);
    }
    m.scan();
    sum_mb += static_cast<double>(m.physical_bytes()) / (1 << 20);
  }
  return {sum_mb / steps, m.stats().overhead_cycles};
}

}  // namespace

int main() {
  constexpr std::size_t kTable = 2u << 20;  // 2 MB shared table
  constexpr std::size_t kMesh = 512u << 10;  // 512 KB private mesh per rank
  constexpr int kSteps = 10;

  // HLS: the table exists once (declared node scope), meshes stay
  // private; no scanning, no faults.
  const double hls_mb =
      static_cast<double>(kTable + 8 * kMesh) / (1 << 20);
  // Plain MPI: everything replicated.
  const double plain_mb =
      static_cast<double>(8 * (kTable + kMesh)) / (1 << 20);

  std::printf("HLS vs SBLLmalloc-style page merging (8-rank node, 2 MB "
              "table + 8 x 512 KB private mesh, %d steps)\n\n", kSteps);
  std::printf("%-26s %12s %18s\n", "configuration", "avg MB/node",
              "overhead cycles");
  std::printf("%-26s %12.2f %18s\n", "plain MPI", plain_mb, "0");
  std::printf("%-26s %12.2f %18s\n", "HLS node scope", hls_mb, "0");
  const Outcome ro = run_sbll(false, kTable, kMesh, kSteps);
  std::printf("%-26s %12.2f %18llu\n", "SBLLmalloc, table const", ro.avg_mb,
              static_cast<unsigned long long>(ro.overhead_cycles));
  const Outcome up = run_sbll(true, kTable, kMesh, kSteps);
  std::printf("%-26s %12.2f %18llu\n", "SBLLmalloc, table updated",
              up.avg_mb, static_cast<unsigned long long>(up.overhead_cycles));

  std::printf(
      "\nreading (paper §VI): page merging approaches the HLS footprint "
      "for constant data but pays scan/fault overhead; with the table "
      "updated each step it oscillates between merged and split and the "
      "overhead grows, while the HLS single keeps one copy for free.\n");
  return 0;
}
