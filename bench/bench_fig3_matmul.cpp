// Reproduces Figure 3: "Performance improvement due to cache footprint
// reduction on the matrix multiplication benchmark on 4 Nehalem-EX."
//
// For a sweep of matrix sizes, prints the normalized performance
// (flops/cycle per task) of sequential / plain MPI / HLS node / HLS numa,
// for the no-update and update variants. Expected shape: all series equal
// while everything fits in cache; MPI falls off first (B duplicated);
// HLS tracks sequential longer; the gap is maximal where MPI goes off
// cache and narrows for very large sizes; with updates, numa beats node
// at sizes where B could stay cached between timesteps.
//
// Usage: bench_fig3_matmul [--quick] [--sockets N] [--json] [--trace FILE]
//   --json emits the sweep in google-benchmark's JSON shape (a
//   "benchmarks" array with one entry per (variant, mode, N), metric in
//   "perf", higher is better) so bench/compare.py can diff runs. The
//   N=32 entries additionally carry a "counters" object with the obs
//   totals of a *real* runtime execution of that configuration (empty
//   when HLSMPC_OBS=OFF) — deterministic episode counts compare.py
//   diffs alongside the perf metric.
//   --trace FILE runs the update/hls_numa configuration on the runtime
//   and writes its event stream as a Chrome trace_event JSON, loadable
//   in Perfetto (https://ui.perfetto.dev).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "apps/matmul/matmul.hpp"

using namespace hlsmpc;
using apps::matmul::Config;
using apps::matmul::Mode;

namespace {

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::sequential:
      return "sequential";
    case Mode::mpi_private:
      return "mpi";
    case Mode::hls_node:
      return "hls_node";
    case Mode::hls_numa:
      return "hls_numa";
  }
  return "?";
}

/// The sweep point whose JSON entries carry runtime counters: present in
/// both the quick and the full size list, small enough that the real
/// execution is cheap next to the cache-simulated sweep.
constexpr int kObsN = 32;

/// Execute `cfg` for real on an mpc::Node and return the node-wide obs
/// counter totals as JSON object text ("{}" when the observability layer
/// is compiled out). When `trace_path` is non-empty, also drain the event
/// stream into a Chrome trace_event file there.
std::string run_real_counters(const topo::Machine& machine, Config cfg,
                              Mode mode, const std::string& trace_path) {
  mpc::Node node(machine, {});
  apps::matmul::run_on_node(node, cfg, mode);
  obs::Recorder* rec = node.obs();
  if (rec == nullptr) return "{}";
  const obs::Snapshot snap = rec->snapshot();
  std::string out = "{";
  for (int c = 0; c < obs::kNumCounters; ++c) {
    out += (c == 0 ? "" : ", ");
    out += std::string("\"") + obs::to_string(static_cast<obs::Counter>(c)) +
           "\": " + std::to_string(snap.value(static_cast<obs::Counter>(c)));
  }
  out += "}";
  if (!trace_path.empty()) {
    const topo::DenseScopeTable& scopes = node.hls_rt().registry().scopes();
    obs::TraceNaming naming;
    naming.process_name = "bench_fig3_matmul";
    naming.scope_name = [&scopes](int sid) { return scopes.name(sid); };
    std::ofstream f(trace_path);
    obs::write_chrome_trace(f, rec->events(), naming);
    std::fprintf(stderr, "wrote Chrome trace to %s (%zu events)\n",
                 trace_path.c_str(), rec->events().size());
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool json = false;
  int sockets = 4;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--sockets") == 0 && i + 1 < argc) {
      sockets = std::atoi(argv[++i]);
    }
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    }
  }
  constexpr int kScale = 64;
  const topo::Machine machine = topo::Machine::nehalem_ex(sockets, kScale);
  const int ntasks = machine.num_cpus();

  std::vector<int> sizes = {16, 24, 32, 48, 64, 96, 128, 160};
  if (quick) sizes = {16, 32, 64, 96};

  if (!json) {
    std::printf("Figure 3 reproduction: matmul C <- A*B + C, shared B\n");
    std::printf("machine: %s (x1/%d capacity), %d tasks; perf = flops/cycle"
                "/task\n",
                machine.name().c_str(), kScale, ntasks);
  } else {
    std::printf("{\n  \"benchmarks\": [");
  }
  bool first_entry = true;
  for (bool update : {false, true}) {
    if (!json) {
      std::printf("\n-- %s version --\n", update ? "update" : "no-update");
      std::printf("%6s %12s %12s %12s %12s\n", "N", "sequential", "MPI",
                  "HLS node", "HLS numa");
    }
    for (int n : sizes) {
      Config cfg;
      cfg.n = n;
      cfg.block = 8;
      cfg.timesteps = quick ? 2 : 3;
      cfg.update_b = update;
      double perf[4];
      int i = 0;
      for (Mode mode : {Mode::sequential, Mode::mpi_private, Mode::hls_node,
                        Mode::hls_numa}) {
        perf[i] = apps::matmul::simulate(machine, cfg, mode, ntasks).perf;
        if (json) {
          const std::string name = std::string("fig3/") +
                                   (update ? "update" : "noupdate") + "/" +
                                   mode_name(mode) + "/N:" + std::to_string(n);
          std::string counters;
          if (n == kObsN && mode != Mode::sequential) {
            counters =
                ", \"counters\": " + run_real_counters(machine, cfg, mode, "");
          }
          std::printf("%s\n    {\"name\": \"%s\", \"perf\": %.6f%s}",
                      first_entry ? "" : ",", name.c_str(), perf[i],
                      counters.c_str());
          first_entry = false;
        }
        ++i;
      }
      if (!json) {
        std::printf("%6d %12.3f %12.3f %12.3f %12.3f\n", n, perf[0], perf[1],
                    perf[2], perf[3]);
      }
    }
  }
  if (!trace_path.empty()) {
    Config cfg;
    cfg.n = kObsN;
    cfg.block = 8;
    cfg.timesteps = quick ? 2 : 3;
    cfg.update_b = true;
    run_real_counters(machine, cfg, Mode::hls_numa, trace_path);
  }
  if (json) {
    std::printf("\n  ]\n}\n");
  } else {
    std::printf(
        "\nexpected shape (paper, fig. 3): MPI falls off cache first; HLS "
        "follows sequential; gap max at the MPI falloff point; update: numa "
        ">= node at small sizes.\n");
  }
  return 0;
}
