// Ablation of the HLS scope choice (paper §II.A, figure 1): the same
// mesh-update workload under every scope the directive set offers, on the
// simulated 4-socket machine. Shows the memory-versus-performance
// tradeoff the scope clause exists for:
//  - node:   1 table copy (max memory gain), writer invalidations cross
//            sockets in the update variant;
//  - numa / cache(llc): one copy per socket — same cache behaviour as
//            node for reads, no cross-socket invalidation on update;
//  - core:   one copy per core = no sharing (equivalent to plain MPI).
//
// Usage: bench_ablation_scopes [--quick]
#include <cstdio>
#include <cstring>

#include "apps/meshupdate/mesh_update.hpp"
#include "topo/scope_map.hpp"

using namespace hlsmpc;
using apps::meshupdate::Config;
using apps::meshupdate::Mode;

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  constexpr int kScale = 64;
  const topo::Machine machine = topo::Machine::nehalem_ex(4, kScale);
  const topo::ScopeMap sm(machine);
  const int ntasks = machine.num_cpus();
  const std::size_t table_cells = (8u << 20) / kScale / sizeof(double);
  const double table_mb =
      static_cast<double>(table_cells * sizeof(double)) / (1 << 20);

  std::printf("Scope ablation: mesh update, %d tasks on %s\n\n", ntasks,
              machine.name().c_str());
  std::printf("%-16s %8s %12s | %12s %12s\n", "scope", "copies",
              "table MB", "eff (no-upd)", "eff (upd)");

  struct Row {
    Mode mode;
    const char* scope_name;
    int copies;
  };
  const Row rows[] = {
      {Mode::hls_node, "node", 1},
      {Mode::hls_numa, "numa", sm.num_instances(topo::numa_scope())},
      {Mode::hls_cache_llc, "cache(llc)",
       sm.num_instances(topo::cache_scope(0))},
      {Mode::hls_core, "core", sm.num_instances(topo::core_scope())},
      {Mode::no_hls, "(private/MPI)", ntasks},
  };
  for (const Row& row : rows) {
    double eff[2];
    for (int upd = 0; upd < 2; ++upd) {
      Config cfg;
      cfg.mode = row.mode;
      cfg.update_table = upd == 1;
      cfg.cells_per_task = quick ? 2048 : 8192;
      cfg.table_cells = table_cells;
      cfg.timesteps = quick ? 2 : 3;
      eff[upd] = apps::meshupdate::simulate(machine, cfg, ntasks).efficiency;
    }
    std::printf("%-16s %8d %12.2f | %11.0f%% %11.0f%%\n", row.scope_name,
                row.copies, row.copies * table_mb, 100 * eff[0],
                100 * eff[1]);
  }
  std::printf(
      "\nreading: memory falls as the scope widens; the update column "
      "shows the locality price of the widest scope (node) that figure 1 "
      "of the paper illustrates.\n");
  return 0;
}
