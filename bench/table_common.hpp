// Shared scaffolding for the Table II-IV reproductions: the three runtime
// configurations compared in the paper and the row printer.
#pragma once

#include <cstdio>

#include "mpc/node.hpp"

namespace hlsmpc::benchtab {

enum class RuntimeConfig { mpc_hls, mpc, open_mpi_like };

inline const char* to_string(RuntimeConfig c) {
  switch (c) {
    case RuntimeConfig::mpc_hls:
      return "MPC HLS";
    case RuntimeConfig::mpc:
      return "MPC";
    case RuntimeConfig::open_mpi_like:
      return "Open MPI*";
  }
  return "?";
}

/// Node options for one of the paper's three rows. `total_ranks` drives
/// the per-pair reservation of the Open-MPI-like buffer policy.
inline mpc::NodeOptions node_options(RuntimeConfig c, int local_ranks,
                                     int total_ranks) {
  mpc::NodeOptions o;
  o.mpi.nranks = local_ranks;
  o.mpi.total_ranks = total_ranks;
  switch (c) {
    case RuntimeConfig::mpc_hls:
    case RuntimeConfig::mpc:
      o.mpi.buffers.kind = mpi::BufferPolicyKind::pooled;
      break;
    case RuntimeConfig::open_mpi_like:
      // The aggressive per-peer reservation the paper attributes the
      // MPC-vs-OpenMPI memory gap to (§V.B.1).
      o.mpi.buffers.kind = mpi::BufferPolicyKind::per_pair;
      break;
  }
  return o;
}

inline bool uses_hls(RuntimeConfig c) { return c == RuntimeConfig::mpc_hls; }

inline void print_header(const char* title) {
  std::printf("%s\n", title);
  std::printf("%8s  %-10s %9s %15s %15s\n", "# cores", "MPI", "time (s)",
              "avg. mem. (MB)", "max. mem. (MB)");
}

inline void print_row(int cores, RuntimeConfig c, double seconds,
                      double avg_mb, double max_mb) {
  std::printf("%8d  %-10s %9.2f %15.1f %15.1f\n", cores, to_string(c),
              seconds, avg_mb, max_mb);
}

}  // namespace hlsmpc::benchtab
