#!/usr/bin/env python3
"""Check bench_transport's fabric-overhead bound: a 64 KB simulated-fabric
send+recv round (owned-buffer capture + copy-out + locking) within 8x of
a raw memcpy at the same size.

Usage: check_transport_ratio.py CANDIDATE.json [--max-ratio 8.0]

Both sides come from the same benchmark run, so the check is immune to
the absolute-timing noise that makes cross-run gates on microsecond
kernels flaky: whatever the machine's state, the fabric round and the
memcpy saw it equally.
"""

import argparse
import json
import sys

FABRIC = "BM_FabricSendRecv/65536"
MEMCPY = "BM_RawMemcpy/65536"


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("candidate")
    ap.add_argument("--max-ratio", type=float, default=8.0)
    args = ap.parse_args()

    with open(args.candidate) as f:
        doc = json.load(f)
    times = {b["name"]: b["real_time"] for b in doc.get("benchmarks", [])
             if isinstance(b, dict) and "real_time" in b}
    missing = [n for n in (FABRIC, MEMCPY) if n not in times]
    if missing:
        print(f"check_transport_ratio: missing benchmarks: "
              f"{', '.join(missing)}")
        return 2
    ratio = times[FABRIC] / times[MEMCPY]
    verdict = "ok" if ratio <= args.max_ratio else "REGRESSION"
    print(f"{FABRIC} = {ratio:.2f}x {MEMCPY} "
          f"(bound {args.max_ratio:.2f}x)  {verdict}")
    return 0 if ratio <= args.max_ratio else 1


if __name__ == "__main__":
    sys.exit(main())
