// Transport-layer benchmarks: the byte-moving floor under every p2p call
// and every leader-tier collective.
//
// BM_ShmSendRecv drives the intra-node mailbox transport (eager below
// the rendezvous threshold, rendezvous above) and BM_FabricSendRecv the
// simulated inter-node fabric (always-eager: one owned-buffer capture on
// send, one copy out on match), both as a single-thread send→recv→wait
// round so the measurement is the matching engine and the copies, not
// scheduler noise.
//
// The acceptance bound is a within-run ratio, like bench_rma's: a 64 KB
// fabric transfer is two memcpys plus an allocation and two lock
// acquisitions, so it must stay within a small factor of BM_RawMemcpy at
// the same size (check_transport_ratio.py, default 8x). Both sides of
// the ratio come from one run, so machine load cancels out; the
// committed BENCH_transport.json baseline holds only the 64 KB
// bandwidth-bound points cross-run (the 4 KB points are candidate-only —
// sub-microsecond kernels jitter past any useful threshold on a shared
// VM).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "memtrack/memtrack.hpp"
#include "mpi/shm_transport.hpp"
#include "mpi/sim_fabric.hpp"

using namespace hlsmpc;

namespace {

class BenchCtx final : public ult::TaskContext {
 public:
  explicit BenchCtx(int id) { set_task_id(id); }
  void yield() override { std::this_thread::yield(); }
  bool cooperative() const override { return false; }
};

void wait(ult::TaskContext& ctx, mpi::Request req) {
  mpi::transport_wait(ctx, req);
}

void BM_RawMemcpy(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> src(bytes, 0xA5);
  std::vector<std::uint8_t> dst(bytes);
  for (auto _ : state) {
    std::memcpy(dst.data(), src.data(), bytes);
    benchmark::DoNotOptimize(dst.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}

void BM_ShmSendRecv(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  memtrack::Tracker tracker;
  mpi::BufferManager bufs(mpi::BufferConfig{}, 2, 2, tracker);
  mpi::ShmTransport t(2, bufs);
  BenchCtx c0(0), c1(1);
  std::vector<std::uint8_t> src(bytes, 0xA5);
  std::vector<std::uint8_t> dst(bytes);
  for (auto _ : state) {
    mpi::Request s = t.isend(c0, 0, 1, 1, src.data(), bytes, 7, 0);
    wait(c1, t.irecv(c1, 1, dst.data(), bytes, 0, 7, 0));
    wait(c0, std::move(s));
    benchmark::DoNotOptimize(dst.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}

void BM_FabricSendRecv(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  mpi::SimFabricTransport::Options fo;
  fo.nranks = 2;
  fo.ranks_per_node = 1;
  mpi::SimFabricTransport t(fo);
  BenchCtx c0(0), c1(1);
  std::vector<std::uint8_t> src(bytes, 0xA5);
  std::vector<std::uint8_t> dst(bytes);
  for (auto _ : state) {
    wait(c0, t.isend(c0, 0, 1, 1, src.data(), bytes, 7, 0));
    wait(c1, t.irecv(c1, 1, dst.data(), bytes, 0, 7, 0));
    benchmark::DoNotOptimize(dst.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}

}  // namespace

BENCHMARK(BM_RawMemcpy)->Arg(4096)->Arg(65536);
BENCHMARK(BM_ShmSendRecv)->Arg(4096)->Arg(65536);
BENCHMARK(BM_FabricSendRecv)->Arg(4096)->Arg(65536);
