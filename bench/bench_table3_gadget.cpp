// Reproduces Table III: "Execution time and memory consumption for
// Gadget-2" at 256 cores.
//
// The HLS variable is the Ewald-summation correction table (paper: 33 MB,
// scaled 1/64 here => 512 KB, a 40^3 grid of doubles); expected per-node
// gain ~ 7 x table on 8-core nodes.
//
// Usage: bench_table3_gadget [--quick]
#include <cstring>

#include "apps/gadget/gadget.hpp"
#include "table_common.hpp"

using namespace hlsmpc;
using benchtab::RuntimeConfig;

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const topo::Machine machine = topo::Machine::core2_cluster_node();

  benchtab::print_header(
      "Table III reproduction: Gadget-2 (33 MB Ewald table scaled 1/64; "
      "8-core nodes)");
  const int cores = 256;
  for (RuntimeConfig rc : {RuntimeConfig::mpc_hls, RuntimeConfig::mpc,
                           RuntimeConfig::open_mpi_like}) {
    apps::gadget::Config cfg;
    cfg.ewald_dim = 40;  // 40^3 doubles = 512 KB = 33 MB / 64
    cfg.particles_per_rank = quick ? 1024 : 4096;
    cfg.timesteps = quick ? 2 : 3;
    cfg.total_ranks = cores;
    cfg.use_hls = benchtab::uses_hls(rc);
    mpc::Node node(machine, benchtab::node_options(rc, 8, cores));
    const auto stats = apps::gadget::run(node, cfg);
    benchtab::print_row(cores, rc, stats.seconds, stats.avg_mb,
                        stats.max_mb);
  }
  std::printf(
      "\npaper (MB, unscaled): HLS 703/747, MPC 938/988, OpenMPI 1731/1742;"
      " expected HLS gain ~ 7 x 33/64 MB = %.1f MB here.\n",
      7.0 * 33.0 / 64.0);
  return 0;
}
