// Reproduces Table II: "Execution time and memory consumption for
// EulerMHD" at 256 / 512 / 736 cores.
//
// One 8-core node of the cluster is simulated; the job's total core count
// sizes each rank's share of the fixed global mesh (weak mesh shrinks as
// cores grow, which is why the paper's per-node memory *decreases* with
// core count) and the Open-MPI-like per-pair buffer reservation (which is
// why that row grows relative to MPC). The EOS table (paper: 128 MB,
// scaled 1/64 here) is the HLS variable; expected per-node gain is 7x the
// table.
//
// Usage: bench_table2_eulermhd [--quick]
#include <cstring>

#include "apps/eulermhd/eulermhd.hpp"
#include "table_common.hpp"

using namespace hlsmpc;
using benchtab::RuntimeConfig;

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const topo::Machine machine = topo::Machine::core2_cluster_node();
  constexpr int kScale = 64;

  benchtab::print_header(
      "Table II reproduction: EulerMHD (mesh 4096^2 and 128 MB EOS table, "
      "both scaled 1/64; 8-core nodes)");
  for (int cores : {256, 512, 736}) {
    for (RuntimeConfig rc : {RuntimeConfig::mpc_hls, RuntimeConfig::mpc,
                             RuntimeConfig::open_mpi_like}) {
      apps::eulermhd::Config cfg;
      // Global mesh 4096 x 4096 scaled by 1/16 in cells => 1024 x 1024
      // (kept larger than the 1/64 table scale so the compute phase is
      // long enough to time).
      cfg.global_nx = 1024;
      cfg.global_ny = 1024;
      // 128 MB table / 64 = 2 MB => 512 x 512 doubles.
      cfg.eos_dim = 512;
      cfg.timesteps = quick ? 4 : 30;
      cfg.total_ranks = cores;
      cfg.use_hls = benchtab::uses_hls(rc);
      mpc::Node node(machine, benchtab::node_options(rc, 8, cores));
      const auto stats = apps::eulermhd::run(node, cfg);
      benchtab::print_row(cores, rc, stats.seconds, stats.avg_mb,
                          stats.max_mb);
    }
    std::printf("\n");
  }
  std::printf(
      "paper (MB, unscaled): 256 cores: HLS 651/672, MPC 1570/1590, "
      "OpenMPI 1715/1786; expected HLS gain ~ 7 x table = %.0f MB here.\n",
      7.0 * (128.0 / kScale));
  return 0;
}
