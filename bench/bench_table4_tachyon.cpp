// Reproduces Table IV: "Execution time and memory consumption for
// Tachyon" at 736 cores.
//
// The HLS variables are the scene (paper: 377 MB) and the full image
// (4000^2 pixels, 183 MB), both scaled 1/64. Beyond the memory gain, the
// paper reports *faster* execution with HLS because task 0's intra-node
// gather copies disappear (source == destination in the shared image);
// the elided-copy count is printed to show that effect.
//
// Usage: bench_table4_tachyon [--quick]
#include <cstring>

#include "apps/tachyon/tachyon.hpp"
#include "table_common.hpp"

using namespace hlsmpc;
using benchtab::RuntimeConfig;

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const topo::Machine machine = topo::Machine::core2_cluster_node();

  benchtab::print_header(
      "Table IV reproduction: Tachyon (scene 377 MB + image 4000^2, both "
      "scaled 1/64; 8-core nodes; node of task 0)");
  const int cores = 736;
  for (RuntimeConfig rc : {RuntimeConfig::mpc_hls, RuntimeConfig::mpc,
                           RuntimeConfig::open_mpi_like}) {
    apps::tachyon::Config cfg;
    // Image 4000^2 -> 500^2 (1/64 pixels); scene 377 MB -> ~5.9 MB.
    cfg.width = 500;
    cfg.height = 500;
    cfg.num_spheres = 64;
    cfg.texture_floats = (377u << 20) / 64 / sizeof(float) -
                         64 * 48 / sizeof(float);
    cfg.frames = quick ? 2 : 4;
    cfg.total_ranks = cores;
    cfg.use_hls = benchtab::uses_hls(rc);
    mpc::Node node(machine, benchtab::node_options(rc, 8, cores));
    const auto stats = apps::tachyon::run(node, cfg);
    benchtab::print_row(cores, rc, stats.seconds, stats.avg_mb,
                        stats.max_mb);
    std::printf("%35s gather copies elided: %llu\n", "",
                static_cast<unsigned long long>(stats.gather_copies_elided));
  }
  std::printf(
      "\npaper (MB, unscaled): HLS 748/931, MPC 4786/4975, OpenMPI "
      "4885/5118; expected HLS gain ~ 7 x 560/64 MB = %.0f MB here; HLS "
      "row is also the fastest (intra-node copy elision).\n",
      7.0 * 560.0 / 64.0);
  return 0;
}
